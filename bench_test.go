// Benchmarks regenerating the paper's evaluation artifacts at a reduced
// scale (use cmd/simevo-bench for full tables):
//
//	BenchmarkProfileShare  — Section 4 operator profile (serial engine)
//	BenchmarkTable1*       — Type I vs serial (slowdown, flat in p)
//	BenchmarkTable2*       — Type II wire+power (fixed vs random rows)
//	BenchmarkTable3*       — Type II wire+power+delay
//	BenchmarkTable4*       — Type III retry-threshold sweep
//
// Each benchmark reports the paper-relevant quantities as custom metrics:
// virtual seconds of cluster time (virt-s/op), achieved quality (mu), and
// for parallel runs the speedup against a serial run of the same scale.
package simevo_test

import (
	"testing"

	"simevo"
)

const benchSeed = 2006

func benchConfig(obj simevo.Objectives, iters int) simevo.Config {
	cfg := simevo.DefaultConfig(obj)
	cfg.MaxIters = iters
	cfg.Seed = benchSeed
	return cfg
}

func serialBaseline(b *testing.B, ckt *simevo.Circuit, cfg simevo.Config) *simevo.SerialResult {
	b.Helper()
	placer, err := simevo.NewPlacer(ckt, cfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := placer.RunSerial()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkProfileShare regenerates the Section 4 profiling result: the
// fraction of serial runtime spent in the Allocation operator (the paper
// reports ~98%). Reported as alloc-share.
func BenchmarkProfileShare(b *testing.B) {
	ckt := simevo.MustBenchmark("s1196")
	for i := 0; i < b.N; i++ {
		res := serialBaseline(b, ckt, benchConfig(simevo.WirePower, 60))
		_, _, alloc := res.Profile.Shares()
		b.ReportMetric(alloc, "alloc-share")
	}
}

// --- Table 1: Type I ---

func benchTable1(b *testing.B, procs int) {
	ckt := simevo.MustBenchmark("s1196")
	cfg := benchConfig(simevo.WirePower, 60)
	serial := serialBaseline(b, ckt, cfg)
	net := simevo.FastEthernet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		placer, err := simevo.NewPlacer(ckt, cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := placer.RunTypeI(simevo.ParallelOptions{Procs: procs, Net: &net})
		if err != nil {
			b.Fatal(err)
		}
		if res.BestMu != serial.BestMu {
			b.Fatalf("Type I diverged from serial: %v vs %v", res.BestMu, serial.BestMu)
		}
		b.ReportMetric(res.VirtualTime.Seconds(), "virt-s/op")
		b.ReportMetric(res.VirtualTime.Seconds()/serial.Runtime.Seconds(), "slowdown")
	}
}

func BenchmarkTable1_TypeI_p2(b *testing.B) { benchTable1(b, 2) }
func BenchmarkTable1_TypeI_p3(b *testing.B) { benchTable1(b, 3) }
func BenchmarkTable1_TypeI_p5(b *testing.B) { benchTable1(b, 5) }

// --- Tables 2 and 3: Type II ---

func benchTable2(b *testing.B, obj simevo.Objectives, procs int, pattern simevo.RowPattern) {
	ckt := simevo.MustBenchmark("s1238")
	iters := 70
	if obj == simevo.WirePowerDelay {
		iters = 50
	}
	serial := serialBaseline(b, ckt, benchConfig(obj, iters))
	parCfg := benchConfig(obj, iters+iters/7*(procs-2))
	net := simevo.FastEthernet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		placer, err := simevo.NewPlacer(ckt, parCfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := placer.RunTypeII(simevo.ParallelOptions{
			Procs:    procs,
			Net:      &net,
			Pattern:  pattern,
			TargetMu: serial.BestMu,
		})
		if err != nil {
			b.Fatal(err)
		}
		t := res.VirtualTime
		if res.ReachedTarget {
			t = res.TimeToTarget
		}
		b.ReportMetric(t.Seconds(), "virt-s/op")
		b.ReportMetric(serial.Runtime.Seconds()/t.Seconds(), "speedup")
		b.ReportMetric(res.BestMu/serial.BestMu, "quality-frac")
	}
}

func BenchmarkTable2_Fixed_p2(b *testing.B) {
	benchTable2(b, simevo.WirePower, 2, simevo.FixedRows())
}
func BenchmarkTable2_Fixed_p5(b *testing.B) {
	benchTable2(b, simevo.WirePower, 5, simevo.FixedRows())
}
func BenchmarkTable2_Random_p2(b *testing.B) {
	benchTable2(b, simevo.WirePower, 2, simevo.RandomRows(benchSeed))
}
func BenchmarkTable2_Random_p5(b *testing.B) {
	benchTable2(b, simevo.WirePower, 5, simevo.RandomRows(benchSeed))
}

func BenchmarkTable3_Fixed_p3(b *testing.B) {
	benchTable2(b, simevo.WirePowerDelay, 3, simevo.FixedRows())
}
func BenchmarkTable3_Random_p3(b *testing.B) {
	benchTable2(b, simevo.WirePowerDelay, 3, simevo.RandomRows(benchSeed))
}

// --- Table 4: Type III ---

func benchTable4(b *testing.B, procs, retry int) {
	ckt := simevo.MustBenchmark("s1494")
	cfg := benchConfig(simevo.WirePower, 50)
	serial := serialBaseline(b, ckt, cfg)
	net := simevo.FastEthernet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		placer, err := simevo.NewPlacer(ckt, cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := placer.RunTypeIII(simevo.ParallelOptions{Procs: procs, Net: &net, Retry: retry})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.VirtualTime.Seconds(), "virt-s/op")
		b.ReportMetric(res.VirtualTime.Seconds()/serial.Runtime.Seconds(), "time-ratio")
		b.ReportMetric(res.BestMu/serial.BestMu, "quality-frac")
	}
}

func BenchmarkTable4_Retry5_p3(b *testing.B)  { benchTable4(b, 3, 5) }
func BenchmarkTable4_Retry20_p3(b *testing.B) { benchTable4(b, 3, 20) }
func BenchmarkTable4_Retry20_p5(b *testing.B) { benchTable4(b, 5, 20) }

// --- engine micro-benchmarks ---

// BenchmarkSerialIteration measures one full SimE iteration (evaluation +
// selection + allocation) on the paper's smallest circuit.
func BenchmarkSerialIteration(b *testing.B) {
	ckt := simevo.MustBenchmark("s1238")
	cfg := benchConfig(simevo.WirePower, b.N+1)
	placer, err := simevo.NewPlacer(ckt, cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Run exactly b.N iterations through the public API.
	cfg.MaxIters = b.N
	placer2, err := simevo.NewPlacer(ckt, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := placer2.RunSerial(); err != nil {
		b.Fatal(err)
	}
	_ = placer
}

// BenchmarkThreeObjectiveIteration includes the timing-analysis substrate.
func BenchmarkThreeObjectiveIteration(b *testing.B) {
	ckt := simevo.MustBenchmark("s1238")
	cfg := benchConfig(simevo.WirePowerDelay, b.N)
	placer, err := simevo.NewPlacer(ckt, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := placer.RunSerial(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProblemSetup measures the placement-independent precomputation
// (activities, levelization, μ normalization).
func BenchmarkProblemSetup(b *testing.B) {
	ckt := simevo.MustBenchmark("s1196")
	cfg := benchConfig(simevo.WirePower, 10)
	for i := 0; i < b.N; i++ {
		if _, err := simevo.NewPlacer(ckt, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCircuitGeneration measures synthetic benchmark synthesis.
func BenchmarkCircuitGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := simevo.Benchmark("s1196"); err != nil {
			b.Fatal(err)
		}
	}
}
