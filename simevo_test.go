package simevo_test

import (
	"strings"
	"testing"

	"simevo"
)

func TestBenchmarkCatalog(t *testing.T) {
	names := simevo.BenchmarkNames()
	if len(names) != 5 {
		t.Fatalf("catalog has %d circuits, want 5", len(names))
	}
	wantCells := map[string]int{
		"s1196": 561, "s1238": 540, "s1488": 667, "s1494": 661, "s3330": 1561,
	}
	for _, n := range names {
		ckt, err := simevo.Benchmark(n)
		if err != nil {
			t.Fatalf("Benchmark(%s): %v", n, err)
		}
		if got := ckt.NumCells(); got != wantCells[n] {
			t.Errorf("%s: %d cells, want %d", n, got, wantCells[n])
		}
	}
}

func TestBenchRoundTripThroughPublicAPI(t *testing.T) {
	ckt := simevo.MustBenchmark("s1238")
	var sb strings.Builder
	if err := ckt.WriteBench(&sb); err != nil {
		t.Fatal(err)
	}
	again, err := simevo.LoadBench("s1238-rt", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	a, b := ckt.Stats(), again.Stats()
	a.Name, b.Name = "", ""
	if a != b {
		t.Fatalf("round-trip changed stats:\n%+v\n%+v", a, b)
	}
}

func TestGeneratePublic(t *testing.T) {
	ckt, err := simevo.Generate(simevo.GenerateParams{
		Name: "custom", Gates: 100, DFFs: 5, PIs: 6, POs: 6, Depth: 8, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ckt.NumCells() != 105 {
		t.Fatalf("NumCells = %d, want 105", ckt.NumCells())
	}
}

func TestSerialRunPublicAPI(t *testing.T) {
	ckt := simevo.MustBenchmark("s1238")
	cfg := simevo.DefaultConfig(simevo.WirePower)
	cfg.MaxIters = 25
	cfg.Seed = 11
	placer, err := simevo.NewPlacer(ckt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := placer.RunSerial()
	if err != nil {
		t.Fatal(err)
	}
	if res.BestMu <= 0 || res.BestMu > 1 {
		t.Fatalf("μ = %v", res.BestMu)
	}
	if res.Runtime <= 0 {
		t.Fatal("runtime not measured")
	}
	if res.BestCosts.Wire >= placer.InitialCosts().Wire {
		t.Fatal("no wirelength improvement over initial placement")
	}
}

func TestParallelRunsPublicAPI(t *testing.T) {
	ckt := simevo.MustBenchmark("s1238")
	cfg := simevo.DefaultConfig(simevo.WirePower)
	cfg.MaxIters = 8
	cfg.Seed = 11
	placer, err := simevo.NewPlacer(ckt, cfg)
	if err != nil {
		t.Fatal(err)
	}

	no := false
	net := simevo.IdealNet()
	base := simevo.ParallelOptions{Procs: 3, Net: &net, MeasureCompute: &no}

	t1, err := placer.RunTypeI(base)
	if err != nil {
		t.Fatalf("Type I: %v", err)
	}
	serial, err := placer.RunSerial()
	if err != nil {
		t.Fatal(err)
	}
	if t1.BestMu != serial.BestMu {
		t.Fatalf("Type I μ %v != serial %v (trajectory invariant)", t1.BestMu, serial.BestMu)
	}

	o2 := base
	o2.Pattern = simevo.RandomRows(7)
	t2, err := placer.RunTypeII(o2)
	if err != nil {
		t.Fatalf("Type II: %v", err)
	}
	if t2.BestMu <= 0 {
		t.Fatal("Type II produced no quality")
	}

	o3 := base
	o3.Retry = 3
	t3, err := placer.RunTypeIII(o3)
	if err != nil {
		t.Fatalf("Type III: %v", err)
	}
	if t3.BestMu <= 0 {
		t.Fatal("Type III produced no quality")
	}
}

func TestProfileSharesExposed(t *testing.T) {
	// The paper's Section 4 profile (allocation ≈ 98%) describes from-
	// scratch trial evaluation — the DisableIncremental reference mode.
	// The default incremental engine deliberately breaks this profile;
	// cmd/simevo-bench -baseline records both sides.
	ckt := simevo.MustBenchmark("s1238")
	cfg := simevo.DefaultConfig(simevo.WirePower)
	cfg.MaxIters = 10
	cfg.DisableIncremental = true
	placer, err := simevo.NewPlacer(ckt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := placer.RunSerial()
	if err != nil {
		t.Fatal(err)
	}
	_, _, alloc := res.Profile.Shares()
	if alloc < 0.5 {
		t.Fatalf("allocation share %.2f, want dominant (paper Section 4)", alloc)
	}
}

func TestLoadBenchRejectsGarbage(t *testing.T) {
	if _, err := simevo.LoadBench("bad", strings.NewReader("not a bench file")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestMetricsPublicAPI(t *testing.T) {
	ckt := simevo.MustBenchmark("s1238")
	cfg := simevo.DefaultConfig(simevo.WirePower)
	cfg.MaxIters = 15
	placer, err := simevo.NewPlacer(ckt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := placer.RunSerial()
	if err != nil {
		t.Fatal(err)
	}
	cong := simevo.EstimateCongestion(res.Best, 8)
	if cong.Peak <= 0 {
		t.Fatal("no congestion demand")
	}
	rows := simevo.ComputeRowStats(res.Best)
	if rows.Rows <= 0 || rows.AvgWidth <= 0 {
		t.Fatalf("row stats malformed: %+v", rows)
	}
	wl := simevo.WirelengthByEstimator(res.Best)
	if wl["steiner"] < wl["hpwl"] || wl["rmst"] < wl["hpwl"] {
		t.Fatalf("estimator ordering violated: %+v", wl)
	}
}
