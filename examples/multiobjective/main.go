// Multiobjective: three-objective placement (wirelength, power, delay)
// with the fuzzy cost breakdown and the Section 4 operator profile.
//
// This is the paper's full problem formulation: minimize interconnect
// wirelength, switching power, and critical-path delay simultaneously,
// with layout width as a constraint, aggregated by the fuzzy OWA operator
// into a single quality μ(s).
package main

import (
	"fmt"
	"log"

	"simevo"
)

func main() {
	ckt, err := simevo.Benchmark("s1238")
	if err != nil {
		log.Fatal(err)
	}

	cfg := simevo.DefaultConfig(simevo.WirePowerDelay)
	cfg.MaxIters = 250
	cfg.Seed = 7

	placer, err := simevo.NewPlacer(ckt, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("placing %s (%d cells) for %s\n\n", ckt.Name(), ckt.NumCells(), cfg.Objectives)

	res, err := placer.RunSerial()
	if err != nil {
		log.Fatal(err)
	}

	init := placer.InitialCosts()
	best := res.BestCosts
	fmt.Println("objective     initial      best     improvement")
	fmt.Printf("wirelength  %9.0f %9.0f        %.2fx\n", init.Wire, best.Wire, init.Wire/best.Wire)
	fmt.Printf("power       %9.1f %9.1f        %.2fx\n", init.Power, best.Power, init.Power/best.Power)
	fmt.Printf("delay       %9.1f %9.1f        %.2fx\n", init.Delay, best.Delay, init.Delay/best.Delay)
	fmt.Printf("\nμ(s) = %.3f (best found at iteration %d of %d)\n", res.BestMu, res.BestIter, res.Iters)

	// The paper's Section 4 finding: allocation dominates the runtime.
	e, s, a := res.Profile.Shares()
	fmt.Printf("\noperator profile: allocation %.1f%%, evaluation %.1f%%, selection %.1f%%\n",
		a*100, e*100, s*100)

	// Convergence sketch: μ every 25 iterations.
	fmt.Println("\nμ(s) trace:")
	for i := 0; i < len(res.MuTrace); i += 25 {
		fmt.Printf("  iter %4d: %.3f %s\n", i, res.MuTrace[i], bar(res.MuTrace[i]))
	}
}

func bar(mu float64) string {
	n := int(mu * 40)
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
