// Cluster: the Type II (domain decomposition) strategy on both transports.
//
// Part 1 sweeps the processor count on the simulated MPI cluster and
// reports the virtual-time speedup — a miniature of the paper's Table 2
// for one circuit. The cluster is simulated in virtual time: each rank's
// real compute is measured while it exclusively holds the CPU, and message
// passing is charged per a fast-Ethernet LogP model, so the reported times
// are what a wall clock would show on the paper's 8-node Pentium-4 fabric.
//
// Part 2 shows the delta codec: Type II broadcasts ship moved-cell deltas
// that patch the slaves' warm incremental net state; against the reference
// full-placement broadcasts the master sends measurably fewer bytes while
// following bitwise the same trajectory.
//
// Part 3 runs the same strategy over the real TCP transport — a
// coordinator hub plus two workers on localhost (in-process goroutines
// here; `simevo-worker` processes in production, see README "Cluster") —
// and checks the result matches the simulated run exactly.
//
// Parts 2-3 use module-internal packages; outside this module the same
// functionality is reachable through the simevo-run -cluster, simevo-serve
// -cluster-listen, and simevo-worker binaries.
package main

import (
	"context"
	"fmt"
	"log"

	"simevo"

	"simevo/internal/core"
	"simevo/internal/fuzzy"
	"simevo/internal/gen"
	"simevo/internal/parallel"
	"simevo/internal/service/jobs"
	"simevo/internal/transport"
)

func main() {
	ckt, err := simevo.Benchmark("s1494")
	if err != nil {
		log.Fatal(err)
	}

	cfg := simevo.DefaultConfig(simevo.WirePower)
	cfg.MaxIters = 300
	cfg.Seed = 2006

	placer, err := simevo.NewPlacer(ckt, cfg)
	if err != nil {
		log.Fatal(err)
	}

	serial, err := placer.RunSerial()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: serial SimE  μ=%.3f  time=%.2fs\n\n",
		ckt.Name(), serial.BestMu, serial.Runtime.Seconds())

	net := simevo.FastEthernet()
	fmt.Println("p   pattern  μ(s)    time(s)  speedup  quality%")
	for _, pattern := range []simevo.RowPattern{simevo.FixedRows(), simevo.RandomRows(2006)} {
		for p := 2; p <= 5; p++ {
			// The paper adds iterations as processors are added, because
			// the decomposed search needs more of them to converge.
			cfg2 := cfg
			cfg2.MaxIters = 350 + 50*(p-2)
			placer2, err := simevo.NewPlacer(ckt, cfg2)
			if err != nil {
				log.Fatal(err)
			}
			res, err := placer2.RunTypeII(simevo.ParallelOptions{
				Procs:    p,
				Net:      &net,
				Pattern:  pattern,
				TargetMu: serial.BestMu,
			})
			if err != nil {
				log.Fatal(err)
			}
			t := res.VirtualTime
			if res.ReachedTarget {
				t = res.TimeToTarget
			}
			fmt.Printf("%d   %-7s  %.3f  %7.2f  %6.2fx   %5.1f%%\n",
				p, pattern.Name(), res.BestMu, t.Seconds(),
				serial.Runtime.Seconds()/t.Seconds(),
				100*res.BestMu/serial.BestMu)
		}
	}

	deltaCodecDemo()
	tcpTransportDemo()
}

// deltaCodecDemo compares the master's broadcast traffic with and without
// the Type II delta codec on the simulated cluster.
func deltaCodecDemo() {
	fmt.Println("\nType II broadcast bytes (s1494, p=3, 120 iterations):")
	run := func(full bool) *parallel.Result {
		prob := exampleProblem()
		opt := parallel.Options{Procs: 3, FullBroadcast: full}
		res, err := parallel.RunTypeII(prob, opt)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	fullRes := run(true)
	deltaRes := run(false)
	fullB, deltaB := fullRes.RankStats[0].BytesSent, deltaRes.RankStats[0].BytesSent
	fmt.Printf("  full placements: %7d bytes from the master\n", fullB)
	fmt.Printf("  moved-cell deltas: %5d bytes (%.0f%% of full), μ %.4f vs %.4f (identical: %v)\n",
		deltaB, 100*float64(deltaB)/float64(fullB), deltaRes.BestMu, fullRes.BestMu,
		deltaRes.BestMu == fullRes.BestMu)
}

// tcpTransportDemo forms a real TCP cluster on localhost — a coordinator
// hub and two workers — and runs the same Type II job over it.
func tcpTransportDemo() {
	fmt.Println("\nType II over the TCP transport (localhost, 3 ranks):")
	hub, err := transport.Listen("127.0.0.1:0", "")
	if err != nil {
		log.Fatal(err)
	}
	defer hub.Close()
	for i := 0; i < 2; i++ {
		w, err := transport.Join(context.Background(), hub.Addr().String(), "")
		if err != nil {
			log.Fatal(err)
		}
		go w.Serve(context.Background(), func(t transport.Transport) error {
			return jobs.ServeRank(context.Background(), t)
		})
	}
	group, err := hub.Acquire(context.Background(), 2)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := jobs.Spec{
		Circuit: "s1494", Strategy: "type2", Procs: 3,
		MaxIters: 120, Seed: 2006, Transport: jobs.TransportTCP,
	}.Normalize()
	if err != nil {
		log.Fatal(err)
	}
	res, err := jobs.RunSpecOn(context.Background(), group, spec, nil)
	group.Close()
	if err != nil {
		log.Fatal(err)
	}
	sim := func() *parallel.Result {
		prob := exampleProblem()
		out, err := parallel.RunTypeII(prob, parallel.Options{Procs: 3})
		if err != nil {
			log.Fatal(err)
		}
		return out
	}()
	fmt.Printf("  tcp: μ=%.4f in %.2fs wall;  simulated same-seed μ=%.4f (identical: %v)\n",
		res.BestMu, res.VirtualTimeMS/1000, sim.BestMu, res.BestMu == sim.BestMu)
}

// exampleProblem builds the s1494 problem exactly as the service does, so
// the simulated and TCP runs share one trajectory.
func exampleProblem() *core.Problem {
	ckt, err := gen.Benchmark("s1494")
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig(fuzzy.WirePower)
	cfg.MaxIters = 120
	cfg.Seed = 2006
	cfg.DisableMuTrace = true
	prob, err := core.NewProblem(ckt, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return prob
}
