// Cluster: Type II (domain decomposition) placement on the simulated
// MPI cluster, sweeping the processor count and reporting the virtual-time
// speedup — a miniature of the paper's Table 2 for one circuit.
//
// The cluster is simulated in virtual time: each rank's real compute is
// measured while it exclusively holds the CPU, and message passing is
// charged per a fast-Ethernet LogP model, so the reported times are what a
// wall clock would show on the paper's 8-node Pentium-4 cluster fabric.
package main

import (
	"fmt"
	"log"

	"simevo"
)

func main() {
	ckt, err := simevo.Benchmark("s1494")
	if err != nil {
		log.Fatal(err)
	}

	cfg := simevo.DefaultConfig(simevo.WirePower)
	cfg.MaxIters = 300
	cfg.Seed = 2006

	placer, err := simevo.NewPlacer(ckt, cfg)
	if err != nil {
		log.Fatal(err)
	}

	serial, err := placer.RunSerial()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: serial SimE  μ=%.3f  time=%.2fs\n\n",
		ckt.Name(), serial.BestMu, serial.Runtime.Seconds())

	net := simevo.FastEthernet()
	fmt.Println("p   pattern  μ(s)    time(s)  speedup  quality%")
	for _, pattern := range []simevo.RowPattern{simevo.FixedRows(), simevo.RandomRows(2006)} {
		for p := 2; p <= 5; p++ {
			// The paper adds iterations as processors are added, because
			// the decomposed search needs more of them to converge.
			cfg2 := cfg
			cfg2.MaxIters = 350 + 50*(p-2)
			placer2, err := simevo.NewPlacer(ckt, cfg2)
			if err != nil {
				log.Fatal(err)
			}
			res, err := placer2.RunTypeII(simevo.ParallelOptions{
				Procs:    p,
				Net:      &net,
				Pattern:  pattern,
				TargetMu: serial.BestMu,
			})
			if err != nil {
				log.Fatal(err)
			}
			t := res.VirtualTime
			if res.ReachedTarget {
				t = res.TimeToTarget
			}
			fmt.Printf("%d   %-7s  %.3f  %7.2f  %6.2fx   %5.1f%%\n",
				p, pattern.Name(), res.BestMu, t.Seconds(),
				serial.Runtime.Seconds()/t.Seconds(),
				100*res.BestMu/serial.BestMu)
		}
	}
}
