// Strategies: run all three of the paper's parallelization strategies on
// the same circuit and compare them — a one-screen summary of the paper's
// conclusions.
//
//   - Type I distributes only the evaluation step; communication overhead
//     and duplicated computation make it slower than serial.
//   - Type II divides the dominant allocation step across row domains and
//     is the only strategy with real speedup.
//   - Type III runs cooperating independent searches; no workload division
//     means serial-like runtimes, but quality can edge past serial.
package main

import (
	"fmt"
	"log"

	"simevo"
)

func main() {
	ckt, err := simevo.Benchmark("s1238")
	if err != nil {
		log.Fatal(err)
	}

	cfg := simevo.DefaultConfig(simevo.WirePower)
	cfg.MaxIters = 250
	cfg.Seed = 2006

	placer, err := simevo.NewPlacer(ckt, cfg)
	if err != nil {
		log.Fatal(err)
	}

	serial, err := placer.RunSerial()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s, %d cells, %d iterations, objectives %s\n\n",
		ckt.Name(), ckt.NumCells(), cfg.MaxIters, cfg.Objectives)
	fmt.Printf("%-22s  μ=%.3f  time=%6.2fs  (baseline)\n",
		"serial", serial.BestMu, serial.Runtime.Seconds())

	net := simevo.FastEthernet()
	const p = 4

	t1, err := placer.RunTypeI(simevo.ParallelOptions{Procs: p, Net: &net})
	if err != nil {
		log.Fatal(err)
	}
	show("Type I (low-level)", t1, serial)

	t2, err := placer.RunTypeII(simevo.ParallelOptions{
		Procs: p, Net: &net, Pattern: simevo.RandomRows(2006),
	})
	if err != nil {
		log.Fatal(err)
	}
	show("Type II (random rows)", t2, serial)

	t3, err := placer.RunTypeIII(simevo.ParallelOptions{Procs: p, Net: &net, Retry: 100})
	if err != nil {
		log.Fatal(err)
	}
	show("Type III (retry 100)", t3, serial)

	fmt.Println("\npaper's conclusion: only Type II divides the allocation workload;")
	fmt.Println("Type I pays communication for ~1% of the work; Type III matches serial")
	fmt.Println("runtime because cooperating searches do not divide work at all.")
}

func show(name string, res *simevo.ParallelResult, serial *simevo.SerialResult) {
	speedup := serial.Runtime.Seconds() / res.VirtualTime.Seconds()
	fmt.Printf("%-22s  μ=%.3f  time=%6.2fs  speedup %.2fx\n",
		name, res.BestMu, res.VirtualTime.Seconds(), speedup)
}
