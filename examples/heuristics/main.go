// Heuristics: SimE against the classic metaheuristics the paper's Section 7
// references — simulated annealing, tabu search and a genetic algorithm —
// on the same two-objective placement problem with the same quality
// measure μ(s). The comparison uses the public API for SimE and the
// simevo-bench tool's "compare" experiment for the full table; this example
// shows the serial SimE result beside its own history so users can judge
// budget parity.
package main

import (
	"fmt"
	"log"

	"simevo"
)

func main() {
	ckt, err := simevo.Benchmark("s1196")
	if err != nil {
		log.Fatal(err)
	}

	// SimE at three move budgets: SimE converges in very few iterations
	// compared to move-based heuristics because every iteration relocates
	// a whole population of badly-placed cells at once.
	for _, iters := range []int{50, 150, 400} {
		cfg := simevo.DefaultConfig(simevo.WirePower)
		cfg.MaxIters = iters
		cfg.Seed = 2006
		placer, err := simevo.NewPlacer(ckt, cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := placer.RunSerial()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("SimE %4d iterations: μ=%.3f  wire %.0f  (%.2fs, best at iter %d)\n",
			iters, res.BestMu, res.BestCosts.Wire, res.Runtime.Seconds(), res.BestIter)
	}

	fmt.Println("\nfor the full cross-heuristic table (SA, TS, GA, serial and parallel):")
	fmt.Println("  go run ./cmd/simevo-bench -table compare -scale tiny")
}
