// Quickstart: place one benchmark circuit with serial SimE and print the
// solution quality.
package main

import (
	"fmt"
	"log"

	"simevo"
)

func main() {
	// Load one of the paper's ISCAS-89 test cases (synthetic equivalent).
	ckt, err := simevo.Benchmark("s1196")
	if err != nil {
		log.Fatal(err)
	}

	// Optimize wirelength and power for 200 iterations.
	cfg := simevo.DefaultConfig(simevo.WirePower)
	cfg.MaxIters = 200
	cfg.Seed = 42

	placer, err := simevo.NewPlacer(ckt, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := placer.RunSerial()
	if err != nil {
		log.Fatal(err)
	}

	init := placer.InitialCosts()
	fmt.Printf("circuit: %s (%d cells, %d nets)\n", ckt.Name(), ckt.NumCells(), ckt.NumNets())
	fmt.Printf("initial wirelength: %.0f   final: %.0f  (%.2fx better)\n",
		init.Wire, res.BestCosts.Wire, init.Wire/res.BestCosts.Wire)
	fmt.Printf("initial power:      %.1f   final: %.1f  (%.2fx better)\n",
		init.Power, res.BestCosts.Power, init.Power/res.BestCosts.Power)
	fmt.Printf("solution quality μ(s) = %.3f after %d iterations (%.2f s)\n",
		res.BestMu, res.Iters, res.Runtime.Seconds())
}
