// simevo-run places one benchmark circuit with a chosen strategy and
// prints the resulting quality, costs, and runtime.
//
// Usage:
//
//	simevo-run -ckt s1196 -strategy serial -iters 350
//	simevo-run -ckt s3330 -strategy type2 -procs 4 -pattern random -objectives wpd
//	simevo-run -ckt s1238 -strategy type3 -procs 4 -retry 100
//
// Parallel strategies run on the in-process virtual-time cluster by
// default. With -cluster they run across real OS processes over TCP:
//
//	simevo-run -ckt s1196 -strategy type2 -procs 3 -cluster spawn
//	simevo-run -ckt s1196 -strategy type2 -procs 3 -cluster listen=:9090
//	simevo-run -join host:9090        (worker process; simevo-worker works too)
//
// "spawn" forks procs-1 local worker processes (re-executing this binary
// with -join); "listen=ADDR" waits for external workers to join. Same-seed
// runs produce identical placements on either transport.
//
// -metrics-addr starts a debug HTTP listener serving GET /metrics
// (Prometheus text exposition) and /debug/pprof/ for any mode, including
// -cluster masters and -join workers.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"simevo"
	"simevo/internal/telemetry"
)

func main() {
	ckt := flag.String("ckt", "s1196", "benchmark circuit ("+strings.Join(simevo.BenchmarkNames(), ", ")+") or a .bench file path")
	aux := flag.String("aux", "", "Bookshelf/ISPD .aux benchmark to place instead of -ckt")
	strategy := flag.String("strategy", "serial", "serial | type1 | type2 | type3")
	objectives := flag.String("objectives", "wp", "wp (wirelength+power) | wpd (+delay) | wpc (+congestion) | wpdc (+delay+congestion)")
	iters := flag.Int("iters", 350, "SimE iterations")
	seed := flag.Uint64("seed", 2006, "random seed")
	procs := flag.Int("procs", 3, "cluster size for parallel strategies")
	pattern := flag.String("pattern", "fixed", "type2 row pattern: fixed | random")
	retry := flag.Int("retry", 100, "type3 retry threshold")
	syncExchange := flag.Bool("sync-exchange", false, "type3: use the legacy blocking exchange protocol instead of the async epoch-tagged one")
	diversify := flag.Bool("diversify", false, "type3: give each searcher a distinct allocation order")
	clustered := flag.Bool("clustered-start", false, "start from the connectivity-clustered placement instead of the uniform-random deal")
	ideal := flag.Bool("ideal-net", false, "use a zero-cost interconnect instead of fast Ethernet")
	cluster := flag.String("cluster", "", `run parallel ranks as real processes: "spawn" or "listen=ADDR"`)
	join := flag.String("join", "", "run as a cluster worker joining this coordinator address, then exit")
	token := flag.String("token", "", "shared-secret cluster join token (coordinator and workers must agree)")
	metricsAddr := flag.String("metrics-addr", "", "debug HTTP listen address for /metrics and /debug/pprof/ (empty disables)")
	flag.Parse()

	if *metricsAddr != "" {
		maddr, err := telemetry.ServeDebug(*metricsAddr)
		if err != nil {
			log.Fatalf("simevo-run: metrics listener: %v", err)
		}
		fmt.Printf("metrics listening on %s\n", maddr)
	}
	if *join != "" {
		runWorker(*join, *token)
		return
	}
	if *cluster != "" {
		runCluster(*cluster, *ckt, *strategy, *objectives, *iters, *seed, *procs, *pattern, *retry, *syncExchange, *token)
		return
	}

	var circuit *simevo.Circuit
	var err error
	if *aux != "" {
		circuit, err = simevo.LoadBookshelf(*aux)
	} else {
		circuit, err = loadCircuit(*ckt)
	}
	fatal(err)

	var obj simevo.Objectives
	switch *objectives {
	case "wp":
		obj = simevo.WirePower
	case "wpd":
		obj = simevo.WirePowerDelay
	case "wpc":
		obj = simevo.WirePowerCongest
	case "wpdc":
		obj = simevo.WirePowerDelayCongest
	default:
		fatal(fmt.Errorf("unknown objectives %q", *objectives))
	}

	cfg := simevo.DefaultConfig(obj)
	cfg.MaxIters = *iters
	cfg.Seed = *seed
	cfg.ClusteredStart = *clustered
	if rows := circuit.RowsHint(); rows > 0 {
		cfg.NumRows = rows
	}
	placer, err := simevo.NewPlacer(circuit, cfg)
	fatal(err)

	net := simevo.FastEthernet()
	if *ideal {
		net = simevo.IdealNet()
	}
	opt := simevo.ParallelOptions{Procs: *procs, Net: &net, Retry: *retry,
		SyncExchange: *syncExchange, Diversify: *diversify}
	if *pattern == "random" {
		opt.Pattern = simevo.RandomRows(*seed)
	} else {
		opt.Pattern = simevo.FixedRows()
	}

	fmt.Printf("circuit %s: %d cells, %d nets; objectives %s; %d iterations\n",
		circuit.Name(), circuit.NumCells(), circuit.NumNets(), obj, *iters)
	init := placer.InitialCosts()
	fmt.Printf("initial costs: wire %.0f  power %.1f  delay %.1f  congestion %.2f\n",
		init.Wire, init.Power, init.Delay, init.Congest)

	switch *strategy {
	case "serial":
		res, err := placer.RunSerial()
		fatal(err)
		report(res.BestMu, res.BestCosts, res.Runtime.Seconds())
		fmt.Printf("profile: %s\n", res.Profile)
		fmt.Printf("%s\n", simevo.EstimateCongestion(res.Best, 0))
		fmt.Printf("%s\n", simevo.ComputeRowStats(res.Best))
		for name, wl := range simevo.WirelengthByEstimator(res.Best) {
			fmt.Printf("wirelength[%s] = %.0f\n", name, wl)
		}
	case "type1":
		res, err := placer.RunTypeI(opt)
		fatal(err)
		report(res.BestMu, res.BestCosts, res.VirtualTime.Seconds())
	case "type2":
		res, err := placer.RunTypeII(opt)
		fatal(err)
		report(res.BestMu, res.BestCosts, res.VirtualTime.Seconds())
	case "type3":
		res, err := placer.RunTypeIII(opt)
		fatal(err)
		report(res.BestMu, res.BestCosts, res.VirtualTime.Seconds())
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}
}

func loadCircuit(name string) (*simevo.Circuit, error) {
	for _, n := range simevo.BenchmarkNames() {
		if n == name {
			return simevo.Benchmark(name)
		}
	}
	return simevo.LoadBenchFile(name)
}

func report(mu float64, costs simevo.Costs, seconds float64) {
	fmt.Printf("best μ(s) = %.3f\n", mu)
	fmt.Printf("best costs: wire %.0f  power %.1f  delay %.1f  congestion %.2f\n",
		costs.Wire, costs.Power, costs.Delay, costs.Congest)
	fmt.Printf("runtime: %.2f s\n", seconds)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "simevo-run: %v\n", err)
		os.Exit(1)
	}
}
