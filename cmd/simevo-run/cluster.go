package main

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"simevo"
	"simevo/internal/service/jobs"
	"simevo/internal/transport"
)

// runWorker serves one coordinator as a cluster rank and exits — the
// -join mode that "spawn" relies on (a dedicated simevo-worker binary does
// the same job with re-join support).
func runWorker(addr, token string) {
	w, err := transport.Join(context.Background(), addr, token)
	fatal(err)
	err = w.Serve(context.Background(), func(t transport.Transport) error {
		return jobs.ServeRank(context.Background(), t)
	})
	fatal(err)
}

// runCluster executes a parallel strategy with real worker processes: this
// process is the coordinator and rank 0; the remaining ranks join over TCP.
func runCluster(mode, ckt, strategy, objectives string, iters int, seed uint64, procs int, pattern string, retry int, syncExchange bool, token string) {
	spec := jobs.Spec{
		Strategy:     strategy,
		MaxIters:     iters,
		Seed:         seed,
		Procs:        procs,
		Pattern:      pattern,
		Retry:        retry,
		SyncExchange: syncExchange,
		Transport:    jobs.TransportTCP,
	}
	switch objectives {
	case "wp":
		spec.Objectives = "wire+power"
	case "wpd":
		spec.Objectives = "wire+power+delay"
	default:
		fatal(fmt.Errorf("unknown objectives %q", objectives))
	}
	if isBenchmark(ckt) {
		spec.Circuit = ckt
	} else {
		blob, err := os.ReadFile(ckt)
		fatal(err)
		spec.Bench = string(blob)
	}
	norm, err := spec.Normalize()
	fatal(err)
	if norm.Transport != jobs.TransportTCP {
		fatal(fmt.Errorf("strategy %q does not run on a cluster (pick type1, type2, or type3)", strategy))
	}

	addr := "127.0.0.1:0"
	spawn := false
	switch {
	case mode == "spawn":
		spawn = true
	case strings.HasPrefix(mode, "listen="):
		addr = strings.TrimPrefix(mode, "listen=")
	default:
		fatal(fmt.Errorf(`unknown -cluster mode %q (use "spawn" or "listen=ADDR")`, mode))
	}

	hub, err := transport.Listen(addr, token)
	fatal(err)
	defer hub.Close()
	fmt.Printf("coordinator listening on %s\n", hub.Addr())

	workers := norm.Procs - 1
	if spawn {
		self, err := os.Executable()
		fatal(err)
		for i := 0; i < workers; i++ {
			cmd := exec.Command(self, "-join", hub.Addr().String(), "-token", token)
			cmd.Stdout = os.Stderr
			cmd.Stderr = os.Stderr
			fatal(cmd.Start())
			// The workers exit when the coordinator dismisses them (or the
			// connection drops); reaping is detached from the run.
			go cmd.Wait()
		}
	} else {
		fmt.Printf("waiting for %d workers (simevo-worker -join %s)\n", workers, hub.Addr())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	group, err := hub.Acquire(ctx, workers)
	fatal(err)
	fmt.Printf("cluster formed: %d ranks (this process is rank 0)\n", group.Size())

	res, err := jobs.RunSpecOn(context.Background(), group, norm, nil)
	group.Close()
	fatal(err)

	if res.Degraded {
		fmt.Printf("degraded: ranks %v failed mid-run; finished on survivors\n", res.FailedRanks)
	}
	fmt.Printf("best μ(s) = %.3f\n", res.BestMu)
	fmt.Printf("best costs: wire %.0f  power %.1f  delay %.1f  congestion %.2f\n",
		res.Wire, res.Power, res.Delay, res.Congest)
	fmt.Printf("runtime: %.2f s\n", res.VirtualTimeMS/1000)
}

func isBenchmark(name string) bool {
	for _, n := range simevo.BenchmarkNames() {
		if n == name {
			return true
		}
	}
	return false
}
