// circuitgen generates synthetic ISCAS-89-equivalent circuits and dumps
// them in .bench format, or prints the statistics of catalog/benchmark
// files.
//
// Usage:
//
//	circuitgen -ckt s1196 -o s1196.bench     # dump a catalog circuit
//	circuitgen -stats s1196                  # print its statistics
//	circuitgen -gates 800 -dff 40 -o my.bench
//	circuitgen -cells 50000 -seed 7 -o big.bench   # scale-tier generation
//	circuitgen -preset large -o large.bench        # the 100k-cell tier
package main

import (
	"flag"
	"fmt"
	"os"

	"simevo"
)

func main() {
	ckt := flag.String("ckt", "", "catalog circuit to dump (s1196, s1238, s1488, s1494, s3330)")
	statsOf := flag.String("stats", "", "print statistics of a catalog circuit or .bench file")
	out := flag.String("o", "", "output .bench path (default stdout)")
	gates := flag.Int("gates", 0, "custom generation: combinational gate count")
	dff := flag.Int("dff", 0, "custom generation: flip-flop count")
	pis := flag.Int("pi", 8, "custom generation: primary inputs")
	pos := flag.Int("po", 8, "custom generation: primary outputs")
	depth := flag.Int("depth", 12, "custom generation: logic depth")
	seed := flag.Uint64("seed", 1, "custom generation: seed")
	cells := flag.Int("cells", 0, "scale-tier generation: movable cell count (ISCAS-89 profile; uses -seed)")
	preset := flag.String("preset", "", "scale-tier preset: large (100k cells, seed 1)")
	flag.Parse()

	switch {
	case *preset != "":
		if *preset != "large" {
			fatal(fmt.Errorf("unknown preset %q (have large)", *preset))
		}
		c, err := simevo.Generate(simevo.ScaledParams("large", simevo.LargeCells, *seed))
		fatal(err)
		fatal(dump(c, *out))
	case *cells > 0:
		c, err := simevo.Generate(simevo.ScaledParams(fmt.Sprintf("c%d", *cells), *cells, *seed))
		fatal(err)
		fatal(dump(c, *out))
	case *statsOf != "":
		c, err := load(*statsOf)
		fatal(err)
		fmt.Println(c.Stats())
	case *ckt != "":
		c, err := simevo.Benchmark(*ckt)
		fatal(err)
		fatal(dump(c, *out))
	case *gates > 0:
		c, err := simevo.Generate(simevo.GenerateParams{
			Name: "custom", Gates: *gates, DFFs: *dff, PIs: *pis, POs: *pos,
			Depth: *depth, Seed: *seed,
		})
		fatal(err)
		fatal(dump(c, *out))
	default:
		fmt.Fprintln(os.Stderr, "circuitgen: nothing to do; see -h")
		os.Exit(2)
	}
}

func load(name string) (*simevo.Circuit, error) {
	for _, n := range simevo.BenchmarkNames() {
		if n == name {
			return simevo.Benchmark(name)
		}
	}
	return simevo.LoadBenchFile(name)
}

func dump(c *simevo.Circuit, path string) error {
	if path == "" {
		return c.WriteBench(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.WriteBench(f)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "circuitgen: %v\n", err)
		os.Exit(1)
	}
}
