// Command simevo-worker is a cluster rank: it joins a coordinator (a
// simevo-serve instance started with -cluster-listen, or a simevo-run
// -cluster master), parks in the worker pool, and serves one rank of each
// parallel placement job the coordinator assigns — receiving the job spec
// over the wire, rebuilding the identical problem locally, and running the
// Type I/II/III slave protocol over TCP.
//
// Usage:
//
//	simevo-worker -join host:9090 [-token SECRET] [-retry 5s] [-retry-max 1m] [-metrics-addr :9091]
//
// -metrics-addr starts a debug HTTP listener serving GET /metrics
// (Prometheus text exposition) and /debug/pprof/ so each rank's engine
// phase timings, transport traffic, and live profiles are scrapeable
// while jobs run.
//
// The worker keeps serving jobs on one connection until the coordinator
// dismisses it or the connection drops; with -retry it then re-joins,
// which lets workers outlive coordinator restarts. Consecutive failed
// attempts back off exponentially from -retry up to -retry-max, with
// jitter so a worker fleet does not stampede a restarting coordinator;
// a successful join resets the backoff. -token presents the
// coordinator's shared-secret join token (required whenever the
// coordinator was started with one); a mismatch is rejected without a
// response, surfacing here as a dropped connection.
package main

import (
	"context"
	"flag"
	"log"
	"math/rand"
	"os/signal"
	"syscall"
	"time"

	"simevo/internal/service/jobs"
	"simevo/internal/telemetry"
	"simevo/internal/transport"
)

func main() {
	join := flag.String("join", "", "coordinator address (host:port), required")
	token := flag.String("token", "", "shared-secret join token (must match the coordinator's)")
	retry := flag.Duration("retry", 0, "re-join after connection loss, starting from this wait and backing off exponentially (0 = exit)")
	retryMax := flag.Duration("retry-max", time.Minute, "cap on the exponential re-join backoff")
	metricsAddr := flag.String("metrics-addr", "", "debug HTTP listen address for /metrics and /debug/pprof/ (empty disables)")
	flag.Parse()
	if *join == "" {
		log.Fatal("simevo-worker: -join address is required")
	}
	if *metricsAddr != "" {
		maddr, err := telemetry.ServeDebug(*metricsAddr)
		if err != nil {
			log.Fatalf("simevo-worker: metrics listener: %v", err)
		}
		log.Printf("simevo-worker: metrics listening on %s", maddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	attempt := 0
	for {
		joined, err := serveOnce(ctx, *join, *token)
		switch {
		case err == nil:
			log.Print("simevo-worker: dismissed by coordinator")
			return
		case ctx.Err() != nil:
			log.Print("simevo-worker: interrupted")
			return
		case *retry <= 0:
			log.Fatalf("simevo-worker: %v", err)
		}
		if joined {
			// The handshake worked and the connection lived for a while:
			// this failure starts a fresh backoff ladder.
			attempt = 0
		}
		attempt++
		wait := transport.Backoff(attempt, *retry, *retryMax, rand.Float64)
		log.Printf("simevo-worker: %v; re-joining in %v", err, wait.Round(time.Millisecond))
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return
		}
	}
}

// serveOnce joins the coordinator and serves jobs until dismissal or
// connection loss; joined reports whether the handshake succeeded, which
// resets the caller's backoff ladder.
func serveOnce(ctx context.Context, addr, token string) (joined bool, _ error) {
	w, err := transport.Join(ctx, addr, token)
	if err != nil {
		return false, err
	}
	log.Printf("simevo-worker: joined coordinator at %s", addr)
	return true, w.Serve(ctx, func(t transport.Transport) error {
		log.Printf("simevo-worker: serving rank %d/%d", t.Rank(), t.Size())
		err := jobs.ServeRank(ctx, t)
		if err != nil {
			log.Printf("simevo-worker: rank %d failed: %v", t.Rank(), err)
		} else {
			log.Printf("simevo-worker: rank %d done", t.Rank())
		}
		return err
	})
}
