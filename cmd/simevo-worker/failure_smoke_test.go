package main

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestClusterSmokeWorkerFailure is the end-to-end degraded-mode check: a
// real coordinator with three worker processes starts a Type II run, one
// worker is SIGKILLed mid-run, and the coordinator must still finish with
// a valid placement, reporting the lost rank on stdout. CI runs it in the
// multi-process smoke job.
func TestClusterSmokeWorkerFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke skipped in -short mode")
	}
	dir := t.TempDir()
	runBin := filepath.Join(dir, "simevo-run")
	workerBin := filepath.Join(dir, "simevo-worker")
	for bin, pkg := range map[string]string{runBin: "simevo/cmd/simevo-run", workerBin: "simevo/cmd/simevo-worker"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	// Enough iterations that the run is still in flight when the worker
	// dies a few hundred milliseconds after the cluster forms.
	args := []string{"-ckt", "s1196", "-strategy", "type2", "-procs", "4", "-iters", "800", "-seed", "2006",
		"-cluster", "listen=127.0.0.1:0"}
	coord := exec.Command(runBin, args...)
	coord.Stderr = os.Stderr
	stdout, err := coord.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()

	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	deadline := time.After(120 * time.Second)
	waitLine := func(prefix string) string {
		for {
			select {
			case line, ok := <-lines:
				if !ok {
					t.Fatalf("coordinator exited before printing %q", prefix)
				}
				if strings.HasPrefix(line, prefix) {
					return line
				}
			case <-deadline:
				t.Fatalf("timed out waiting for %q", prefix)
			}
		}
	}
	addr := strings.TrimSpace(strings.TrimPrefix(waitLine("coordinator listening on "), "coordinator listening on "))

	workers := make([]*exec.Cmd, 3)
	for i := range workers {
		w := exec.Command(workerBin, "-join", addr)
		w.Stderr = os.Stderr
		if err := w.Start(); err != nil {
			t.Fatalf("starting worker %d: %v", i, err)
		}
		defer w.Process.Kill()
		go w.Wait()
		workers[i] = w
	}

	waitLine("cluster formed")
	// Let the run get going, then kill one rank outright (no clean
	// shutdown, no dying breath on the socket).
	time.Sleep(200 * time.Millisecond)
	if err := workers[1].Process.Kill(); err != nil {
		t.Fatal(err)
	}

	// Drain stdout to EOF before calling Wait: Wait closes the pipe and
	// would race the scanner out of the output tail.
	var out []string
	for open := true; open; {
		select {
		case line, ok := <-lines:
			if !ok {
				open = false
				break
			}
			out = append(out, line)
		case <-deadline:
			t.Fatal("timed out waiting for the degraded run to finish")
		}
	}
	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator failed after losing a worker: %v\n%s", err, strings.Join(out, "\n"))
	}

	joined := strings.Join(out, "\n")
	if !strings.Contains(joined, "degraded: ranks") {
		t.Fatalf("no degradation report in output:\n%s", joined)
	}
	if !strings.Contains(joined, "best μ(s)") || !strings.Contains(joined, "best costs") {
		t.Fatalf("degraded run produced no result lines:\n%s", joined)
	}
	t.Logf("degraded cluster run finished: %s", joined[strings.Index(joined, "degraded"):])
}
