package main

import (
	"bufio"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestClusterMetricsSmoke is the end-to-end observability check: it
// launches a real TCP cluster (coordinator + two worker processes), each
// with a -metrics-addr debug listener, and scrapes both /metrics
// endpoints while the placement runs — asserting the Prometheus text
// exposition is served with the right content type and carries the
// engine phase histograms on every rank plus the per-rank transport
// counters on the coordinator. CI runs it in the cluster-smoke job.
func TestClusterMetricsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke skipped in -short mode")
	}
	dir := t.TempDir()
	runBin := filepath.Join(dir, "simevo-run")
	workerBin := filepath.Join(dir, "simevo-worker")
	for bin, pkg := range map[string]string{runBin: "simevo/cmd/simevo-run", workerBin: "simevo/cmd/simevo-worker"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	// Oversized iteration budget: the test scrapes mid-run and kills the
	// processes once the assertions pass, so the run must outlive it.
	args := []string{"-ckt", "s1196", "-strategy", "type2", "-procs", "3", "-iters", "100000",
		"-cluster", "listen=127.0.0.1:0", "-metrics-addr", "127.0.0.1:0"}
	coord := exec.Command(runBin, args...)
	coord.Stderr = os.Stderr
	stdout, err := coord.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()

	deadline := time.After(120 * time.Second)
	coordLines := scanLines(stdout)
	coordMetrics := awaitAddr(t, coordLines, "metrics listening on ", deadline)
	clusterAddr := awaitAddr(t, coordLines, "coordinator listening on ", deadline)
	go func() { // keep the pipe drained for the rest of the run
		for range coordLines {
		}
	}()

	var workerMetrics []string
	for i := 0; i < 2; i++ {
		w := exec.Command(workerBin, "-join", clusterAddr, "-metrics-addr", "127.0.0.1:0")
		stderr, err := w.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Start(); err != nil {
			t.Fatalf("starting worker %d: %v", i, err)
		}
		defer w.Process.Kill()
		go w.Wait()
		lines := scanLines(stderr)
		workerMetrics = append(workerMetrics, awaitAddr(t, lines, "metrics listening on ", deadline))
		go func() {
			for range lines {
			}
		}()
	}

	// Poll the endpoints until the run has visibly progressed everywhere:
	// the first scrape can legitimately race the first iteration, so only
	// a persistent miss fails.
	checks := []struct {
		name, addr string
		want       []string
	}{
		{"coordinator", coordMetrics, []string{
			"# TYPE simevo_engine_phase_ns histogram",
			`simevo_engine_phase_ns_bucket{phase="allocate",le="+Inf"}`,
			`simevo_scan_vacancies_total`,
			`simevo_transport_rank_messages_total{rank="1",dir="sent"}`,
			`simevo_transport_rank_bytes_total{rank="2",dir="recv"}`,
			`simevo_exchange_round_ns_count{strategy="type2"}`,
		}},
		{"worker 1", workerMetrics[0], []string{
			"# TYPE simevo_engine_phase_ns histogram",
			`simevo_engine_phase_ns_bucket{phase="allocate",le="+Inf"}`,
			`simevo_transport_frames_total{dir="sent"}`,
			`simevo_transport_bytes_total{dir="recv"}`,
		}},
		{"worker 2", workerMetrics[1], []string{
			"# TYPE simevo_engine_phase_ns histogram",
			`simevo_transport_bytes_total{dir="sent"}`,
		}},
	}
	for _, chk := range checks {
		var text, missing string
		for {
			text = scrape(t, chk.addr)
			missing = ""
			for _, want := range chk.want {
				if !nonzeroSeries(text, want) {
					missing = want
					break
				}
			}
			if missing == "" {
				break
			}
			select {
			case <-deadline:
				t.Fatalf("%s /metrics never showed %q; last scrape:\n%s", chk.name, missing, text)
			case <-time.After(200 * time.Millisecond):
			}
		}
		t.Logf("%s /metrics ok (%d bytes)", chk.name, len(text))
	}
}

// scanLines streams a pipe's lines into a channel.
func scanLines(r io.Reader) chan string {
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	return lines
}

// awaitAddr waits for a line containing marker and returns what follows it.
func awaitAddr(t *testing.T, lines chan string, marker string, deadline <-chan time.Time) string {
	t.Helper()
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("process exited before printing %q", marker)
			}
			if i := strings.Index(line, marker); i >= 0 {
				return strings.TrimSpace(line[i+len(marker):])
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %q", marker)
		}
	}
}

// scrape GETs /metrics and verifies the exposition content type.
func scrape(t *testing.T, addr string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scraping %s: %v", addr, err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("scraping %s: content type %q is not text exposition v0.0.4", addr, ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s metrics: %v", addr, err)
	}
	return string(body)
}

// nonzeroSeries reports whether text has a line for the series prefix
// with a value other than 0 — comment markers (# HELP / # TYPE) only
// need to be present.
func nonzeroSeries(text, prefix string) bool {
	if strings.HasPrefix(prefix, "#") {
		return strings.Contains(text, prefix)
	}
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[1] != "0" {
			return true
		}
	}
	return false
}
