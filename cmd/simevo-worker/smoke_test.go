package main

import (
	"bufio"
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestClusterSmokeMultiProcess is the end-to-end cluster check: it builds
// the real binaries, launches a coordinator plus two simevo-worker
// processes on localhost, runs a small Type II placement over TCP, and
// asserts the result matches the same-seed single-process (simulated
// transport) run line for line. CI runs it as the multi-process smoke job.
func TestClusterSmokeMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke skipped in -short mode")
	}
	dir := t.TempDir()
	runBin := filepath.Join(dir, "simevo-run")
	workerBin := filepath.Join(dir, "simevo-worker")
	for bin, pkg := range map[string]string{runBin: "simevo/cmd/simevo-run", workerBin: "simevo/cmd/simevo-worker"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	args := []string{"-ckt", "s1196", "-strategy", "type2", "-procs", "3", "-iters", "40", "-seed", "2006"}
	const token = "smoke-secret" // exercises the shared-secret join auth end to end

	// Coordinator: listen on an ephemeral port and report it on stdout.
	coord := exec.Command(runBin, append(args, "-cluster", "listen=127.0.0.1:0", "-token", token)...)
	coord.Stderr = os.Stderr
	stdout, err := coord.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()

	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	addr := ""
	deadline := time.After(60 * time.Second)
	var clusterOut []string
	for addr == "" {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("coordinator exited before announcing its address")
			}
			if rest, found := strings.CutPrefix(line, "coordinator listening on "); found {
				addr = strings.TrimSpace(rest)
			}
		case <-deadline:
			t.Fatal("timed out waiting for the coordinator address")
		}
	}

	// Two worker processes join; the coordinator is rank 0 of 3.
	for i := 0; i < 2; i++ {
		w := exec.Command(workerBin, "-join", addr, "-token", token)
		w.Stderr = os.Stderr
		if err := w.Start(); err != nil {
			t.Fatalf("starting worker %d: %v", i, err)
		}
		defer w.Process.Kill()
		go w.Wait()
	}

	// Drain stdout to EOF before calling Wait: Wait closes the pipe and
	// would race the scanner out of the output tail.
	for open := true; open; {
		select {
		case line, ok := <-lines:
			if !ok {
				open = false
				break
			}
			clusterOut = append(clusterOut, line)
		case <-deadline:
			t.Fatal("timed out waiting for the cluster run")
		}
	}
	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator failed: %v\n%s", err, strings.Join(clusterOut, "\n"))
	}

	// Reference: the same seed on the in-process simulated transport.
	var simOut bytes.Buffer
	sim := exec.Command(runBin, args...)
	sim.Stdout = &simOut
	sim.Stderr = os.Stderr
	if err := sim.Run(); err != nil {
		t.Fatalf("simulated run failed: %v", err)
	}

	want := resultLines(t, strings.Split(simOut.String(), "\n"))
	got := resultLines(t, clusterOut)
	for _, key := range []string{"best μ(s)", "best costs"} {
		if got[key] == "" || got[key] != want[key] {
			t.Errorf("cluster %q = %q, simulated %q", key, got[key], want[key])
		}
	}
	if !t.Failed() {
		t.Logf("TCP cluster run matches simulated run: %s | %s", got["best μ(s)"], got["best costs"])
	}
}

func resultLines(t *testing.T, lines []string) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, line := range lines {
		for _, key := range []string{"best μ(s)", "best costs"} {
			if strings.HasPrefix(line, key) {
				out[key] = strings.TrimSpace(line)
			}
		}
	}
	if len(out) != 2 {
		t.Fatalf("result lines missing from output:\n%s", strings.Join(lines, "\n"))
	}
	return out
}
