// simevo-profile regenerates the paper's Section 4 experiment: the share
// of serial runtime spent in each SimE operator, for the two-objective and
// three-objective versions of the algorithm.
//
// Usage:
//
//	simevo-profile -ckt s1196 -iters 350
package main

import (
	"flag"
	"fmt"
	"os"

	"simevo"
)

func main() {
	ckt := flag.String("ckt", "s1196", "benchmark circuit")
	iters := flag.Int("iters", 350, "SimE iterations")
	seed := flag.Uint64("seed", 2006, "random seed")
	flag.Parse()

	circuit, err := simevo.Benchmark(*ckt)
	fatal(err)

	fmt.Printf("%s: %d cells — operator runtime shares (paper Section 4: allocation ~98%%)\n",
		circuit.Name(), circuit.NumCells())
	for _, obj := range []simevo.Objectives{simevo.WirePower, simevo.WirePowerDelay} {
		cfg := simevo.DefaultConfig(obj)
		cfg.MaxIters = *iters
		cfg.Seed = *seed
		placer, err := simevo.NewPlacer(circuit, cfg)
		fatal(err)
		res, err := placer.RunSerial()
		fatal(err)
		e, s, a := res.Profile.Shares()
		fmt.Printf("%-18s alloc %5.1f%%  eval %5.1f%%  select %5.1f%%  (total %.2fs, μ=%.3f)\n",
			obj, a*100, e*100, s*100, res.Profile.Total().Seconds(), res.BestMu)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "simevo-profile: %v\n", err)
		os.Exit(1)
	}
}
