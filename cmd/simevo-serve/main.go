// Command simevo-serve runs the placement-as-a-service HTTP server: a JSON
// API over the SimE engine, its three parallel strategies, and the SA/GA/TS
// comparison metaheuristics, backed by a bounded worker pool and an LRU
// result cache.
//
// Usage:
//
//	simevo-serve [-addr :8080] [-workers 2] [-queue 64] [-cache 128] \
//	             [-cluster-listen :9090] [-cluster-token SECRET]
//
// With -cluster-listen the server also runs a cluster coordinator:
// simevo-worker processes that join it serve parallel jobs submitted with
// "transport": "tcp", each worker holding one rank of the run while the
// server is rank 0. -cluster-token requires workers to present the same
// shared-secret join token (constant-time compared) before they may park
// — set it on any coordinator reachable beyond a trusted host.
//
// Endpoints:
//
//	POST   /v1/jobs            submit a placement job
//	GET    /v1/jobs            list jobs
//	GET    /v1/jobs/{id}        job status + result
//	GET    /v1/jobs/{id}/stream live progress (server-sent events)
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/benchmarks      built-in benchmark catalog
//	GET    /healthz            liveness + pool occupancy
//	GET    /metrics            Prometheus text exposition (v0.0.4)
//	GET    /debug/pprof/       live CPU/heap/goroutine profiling
//
// Example:
//
//	curl -s localhost:8080/v1/jobs -d '{"circuit":"s1196","strategy":"serial","max_iters":100}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"simevo/internal/service/api"
	"simevo/internal/service/jobs"
	"simevo/internal/telemetry"
	"simevo/internal/transport"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	workers := flag.Int("workers", 2, "concurrent placement runs")
	queue := flag.Int("queue", 64, "submission queue depth")
	cache := flag.Int("cache", 128, "LRU result-cache entries (negative disables)")
	maxJobs := flag.Int("max-jobs", 1024, "retained job records")
	clusterAddr := flag.String("cluster-listen", "", "TCP address for simevo-worker registration (empty disables cluster jobs)")
	clusterToken := flag.String("cluster-token", "", "shared-secret join token workers must present (empty leaves the coordinator open)")
	joinTimeout := flag.Duration("cluster-join-timeout", 10*time.Second, "deadline for a worker's join handshake")
	hbInterval := flag.Duration("cluster-heartbeat-interval", 3*time.Second, "liveness ping period to parked and working ranks (negative disables)")
	hbTimeout := flag.Duration("cluster-heartbeat-timeout", 12*time.Second, "silence after which a worker counts as hung and is dropped (negative disables)")
	journalPath := flag.String("journal", "", "append-only JSONL job journal replayed on restart (empty disables)")
	flag.Parse()

	var hub *transport.Hub
	if *clusterAddr != "" {
		var err error
		hub, err = transport.ListenConfig(*clusterAddr, *clusterToken, transport.Config{
			JoinTimeout:       *joinTimeout,
			HeartbeatInterval: *hbInterval,
			HeartbeatTimeout:  *hbTimeout,
		})
		if err != nil {
			log.Fatalf("simevo-serve: cluster listener: %v", err)
		}
		defer hub.Close()
		log.Printf("simevo-serve cluster coordinator on %s", hub.Addr())
		h := hub
		telemetry.Default.GaugeFunc("simevo_cluster_workers_parked",
			"Idle simevo-worker processes parked at the cluster hub.",
			func() float64 { return float64(len(h.WorkerDetails())) })
	}
	var journal *jobs.Journal
	if *journalPath != "" {
		var err error
		journal, err = jobs.OpenJournal(*journalPath)
		if err != nil {
			log.Fatalf("simevo-serve: %v", err)
		}
		defer journal.Close()
		log.Printf("simevo-serve job journal at %s", *journalPath)
	}
	mgr := jobs.NewManager(jobs.Options{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheSize:  *cache,
		MaxJobs:    *maxJobs,
		Hub:        hub,
		Journal:    journal,
	})
	mux := http.NewServeMux()
	mux.Handle("/", api.New(mgr).Handler())
	telemetry.AttachDebug(mux)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("simevo-serve listening on %s (%d workers, queue %d, cache %d)",
		*addr, *workers, *queue, *cache)

	select {
	case err := <-errc:
		log.Fatalf("simevo-serve: %v", err)
	case <-ctx.Done():
	}

	log.Print("simevo-serve: shutting down")
	// Close the manager first: running jobs cancel within one iteration,
	// which ends open SSE streams with their terminal event, so Shutdown
	// below has no long-lived connections to wait out.
	mgr.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("simevo-serve: shutdown: %v", err)
	}
}
