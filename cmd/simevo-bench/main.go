// simevo-bench regenerates the paper's evaluation artifacts (the Section 4
// profile and Tables 1-4) on the simulated cluster.
//
// Usage:
//
//	simevo-bench                 # all experiments, quick scale (iters/10)
//	simevo-bench -table 2       # only Table 2
//	simevo-bench -scale paper   # full paper-scale iteration counts
//	simevo-bench -scale tiny    # smoke scale
//	simevo-bench -baseline BENCH_baseline.json
//	                            # record the incremental-engine perf
//	                            # baseline (and nothing else)
//	simevo-bench -baseline BENCH_baseline.json -objectives wire+power+delay
//	                            # restrict the baseline to one objective
//	                            # mode (default: both paper modes plus the
//	                            # congestion-enabled mode and the 100k-cell
//	                            # "large" scale entry, with per-objective
//	                            # phase timings for wpd/wpdc)
//	simevo-bench -check-baseline BENCH_baseline.json -cpuprofile gate.prof \
//	             -out-baseline measured_baseline.json
//	                            # -cpuprofile/-memprofile cover gate runs
//	                            # too: a regressed gate is exactly the run
//	                            # worth profiling; -out-baseline writes the
//	                            # freshly measured numbers for artifact upload
//
// Baselines embed each kept run's engine telemetry counters (iterations,
// incremental vs rebuild evals, scan prune statistics) under "telemetry"
// so perf regressions can be triaged against the recorded work counts.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"simevo/internal/experiments"
)

func main() {
	table := flag.String("table", "all", `experiment to run: "profile", "1".."4", "compare", or "all"`)
	scale := flag.String("scale", "quick", `experiment scale: "paper", "quick", or "tiny"`)
	baseline := flag.String("baseline", "", "write the incremental-engine perf baseline JSON to this path and exit")
	objectives := flag.String("objectives", "",
		"objective modes the -baseline measurement covers (comma-separated: wire+power, wire+power+delay, wire+power+delay+congestion, large, exchange; empty = all)")
	check := flag.String("check-baseline", "", "re-measure and fail if the incremental/scratch speedup regressed >15% against the baseline JSON at this path (covers every mode the file records)")
	outBaseline := flag.String("out-baseline", "", "with -check-baseline: also write the freshly measured baseline JSON to this path (uploaded as a CI artifact)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	// run's failures return an exit code instead of calling os.Exit so the
	// deferred profile writers always flush — a regressed bench gate run
	// is exactly the one worth profiling.
	os.Exit(run(*table, *scale, *baseline, *objectives, *check, *outBaseline, *cpuprofile, *memprofile))
}

func run(table, scale, baseline, objectives, check, outBaseline, cpuprofile, memprofile string) int {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simevo-bench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "simevo-bench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if memprofile != "" {
		defer func() {
			f, err := os.Create(memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "simevo-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "simevo-bench: %v\n", err)
			}
		}()
	}

	if check != "" {
		if err := experiments.CheckBaseline(check, outBaseline, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "simevo-bench: %v\n", err)
			return 1
		}
		return 0
	}
	if baseline != "" {
		if err := experiments.WriteBaseline(baseline, objectives, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "simevo-bench: %v\n", err)
			return 1
		}
		return 0
	}

	var sc experiments.Scale
	switch scale {
	case "paper":
		sc = experiments.PaperScale()
	case "quick":
		sc = experiments.QuickScale()
	case "tiny":
		sc = experiments.TinyScale()
	default:
		fmt.Fprintf(os.Stderr, "simevo-bench: unknown scale %q\n", scale)
		return 2
	}

	var err error
	switch table {
	case "profile":
		err = experiments.Profile(sc, os.Stdout)
	case "1":
		err = experiments.Table1(sc, os.Stdout)
	case "2":
		err = experiments.Table2(sc, os.Stdout)
	case "3":
		err = experiments.Table3(sc, os.Stdout)
	case "4":
		err = experiments.Table4(sc, os.Stdout)
	case "compare":
		err = experiments.Comparison(sc, os.Stdout)
	case "all":
		err = experiments.All(sc, os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "simevo-bench: unknown table %q\n", table)
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "simevo-bench: %v\n", err)
		return 1
	}
	return 0
}
