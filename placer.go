package simevo

import (
	"context"
	"time"

	"simevo/internal/core"
	"simevo/internal/parallel"
)

// IterStats reports one iteration's outcome; see core.IterStats.
type IterStats = core.IterStats

// Progress receives per-iteration statistics while a run executes. For the
// parallel strategies the callback runs on a cluster rank goroutine, so it
// must be fast and safe for concurrent use.
type Progress = core.Progress

// Placer binds a circuit to a SimE configuration and runs the serial
// algorithm or any of the paper's three parallel strategies. A Placer can
// run any number of independent experiments; each run starts from the same
// canonical initial placement derived from Config.Seed, as in the paper.
type Placer struct {
	prob *core.Problem
}

// NewPlacer validates the configuration and precomputes the shared problem
// data (switching activities, timing levelization, μ normalization).
func NewPlacer(c *Circuit, cfg Config) (*Placer, error) {
	prob, err := core.NewProblem(c.ckt, cfg)
	if err != nil {
		return nil, err
	}
	return &Placer{prob: prob}, nil
}

// Config returns the validated configuration in use.
func (p *Placer) Config() Config { return p.prob.Cfg }

// InitialCosts returns the objective costs of the canonical initial
// placement that μ(s) is normalized against.
func (p *Placer) InitialCosts() Costs { return p.prob.Ref }

// SerialResult pairs the serial engine result with its measured runtime.
type SerialResult struct {
	*Result
	// Runtime is the wall-clock time of the run. The serial algorithm is
	// single-threaded, so this is directly comparable with the virtual
	// time reported for parallel runs.
	Runtime time.Duration
}

// RunSerial executes the serial SimE algorithm (the paper's Figure 1).
func (p *Placer) RunSerial() (*SerialResult, error) {
	return p.RunSerialContext(context.Background(), nil)
}

// RunSerialContext is RunSerial with cooperative cancellation and
// per-iteration progress reporting. A cancelled context stops the run
// between iterations and the best-so-far result is returned (inspect
// ctx.Err() for the reason). progress may be nil.
func (p *Placer) RunSerialContext(ctx context.Context, progress Progress) (*SerialResult, error) {
	eng := p.prob.NewEngine(0)
	start := time.Now()
	res := eng.RunContext(ctx, progress)
	return &SerialResult{Result: res, Runtime: time.Since(start)}, nil
}

// RunTypeI executes the low-level parallelization (paper Section 6.1):
// distributed cost/goodness evaluation with master-side selection and
// allocation. The trajectory is identical to RunSerial for the same seed.
func (p *Placer) RunTypeI(opt ParallelOptions) (*ParallelResult, error) {
	return parallel.RunTypeI(p.prob, opt)
}

// RunTypeIContext is RunTypeI with cooperative cancellation and progress
// reporting (equivalent to setting opt.Context and opt.Progress).
func (p *Placer) RunTypeIContext(ctx context.Context, opt ParallelOptions, progress Progress) (*ParallelResult, error) {
	opt.Context, opt.Progress = ctx, progress
	return parallel.RunTypeI(p.prob, opt)
}

// RunTypeII executes the row-domain decomposition (paper Section 6.2).
func (p *Placer) RunTypeII(opt ParallelOptions) (*ParallelResult, error) {
	return parallel.RunTypeII(p.prob, opt)
}

// RunTypeIIContext is RunTypeII with cooperative cancellation and progress
// reporting (equivalent to setting opt.Context and opt.Progress).
func (p *Placer) RunTypeIIContext(ctx context.Context, opt ParallelOptions, progress Progress) (*ParallelResult, error) {
	opt.Context, opt.Progress = ctx, progress
	return parallel.RunTypeII(p.prob, opt)
}

// RunTypeIII executes cooperating parallel searches with a central best
// store (paper Section 6.3).
func (p *Placer) RunTypeIII(opt ParallelOptions) (*ParallelResult, error) {
	return parallel.RunTypeIII(p.prob, opt)
}

// RunTypeIIIContext is RunTypeIII with cooperative cancellation and
// progress reporting (equivalent to setting opt.Context and opt.Progress).
func (p *Placer) RunTypeIIIContext(ctx context.Context, opt ParallelOptions, progress Progress) (*ParallelResult, error) {
	opt.Context, opt.Progress = ctx, progress
	return parallel.RunTypeIII(p.prob, opt)
}
