package simevo_test

import (
	"fmt"

	"simevo"
)

// ExampleNewPlacer places a small synthetic circuit and reports whether the
// optimizer improved on the initial solution.
func ExampleNewPlacer() {
	ckt, err := simevo.Generate(simevo.GenerateParams{
		Name: "demo", Gates: 80, DFFs: 4, PIs: 6, POs: 6, Depth: 8, Seed: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	cfg := simevo.DefaultConfig(simevo.WirePower)
	cfg.MaxIters = 40
	cfg.Seed = 7
	placer, err := simevo.NewPlacer(ckt, cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := placer.RunSerial()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("improved:", res.BestCosts.Wire < placer.InitialCosts().Wire)
	fmt.Println("quality in range:", res.BestMu > 0 && res.BestMu <= 1)
	// Output:
	// improved: true
	// quality in range: true
}

// ExampleBenchmark lists the paper's test cases.
func ExampleBenchmark() {
	for _, name := range simevo.BenchmarkNames() {
		ckt, err := simevo.Benchmark(name)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("%s: %d cells\n", name, ckt.NumCells())
	}
	// Output:
	// s1196: 561 cells
	// s1238: 540 cells
	// s1488: 667 cells
	// s1494: 661 cells
	// s3330: 1561 cells
}
