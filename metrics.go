package simevo

import (
	"simevo/internal/layout"
	"simevo/internal/metrics"
)

// Placement is a completed cell placement (as returned in results' Best
// fields).
type Placement = layout.Placement

// Congestion is a bin-based routing-demand map; see metrics.Congestion.
type Congestion = metrics.Congestion

// RowStats summarizes row utilization; see metrics.RowStats.
type RowStats = metrics.RowStats

// EstimateCongestion builds a routing-congestion estimate for a placement
// with roughly nx bins across the die width (nx <= 0 selects 16).
func EstimateCongestion(p *Placement, nx int) *Congestion {
	return metrics.EstimateCongestion(p, nx)
}

// ComputeRowStats gathers row-utilization statistics for a placement.
func ComputeRowStats(p *Placement) RowStats {
	return metrics.ComputeRowStats(p)
}

// WirelengthByEstimator reports a placement's total net length under every
// available estimator (hpwl, steiner, rmst) — useful for estimator
// ablations.
func WirelengthByEstimator(p *Placement) map[string]float64 {
	return metrics.WirelengthByEstimator(p)
}
