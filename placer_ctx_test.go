package simevo_test

import (
	"context"
	"testing"

	"simevo"
)

// TestRunSerialContextCancel exercises the public cancellable API: a
// context cancelled from the progress callback stops the run within one
// iteration and keeps the best-so-far result.
func TestRunSerialContextCancel(t *testing.T) {
	ckt, err := simevo.Generate(simevo.GenerateParams{
		Name: "ctx-t", Gates: 120, DFFs: 8, PIs: 6, POs: 6, Depth: 8, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := simevo.DefaultConfig(simevo.WirePower)
	cfg.MaxIters = 500
	cfg.Seed = 42
	placer, err := simevo.NewPlacer(ckt, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var iters int
	res, err := placer.RunSerialContext(ctx, func(simevo.IterStats) {
		iters++
		if iters == 5 {
			cancel()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 5 {
		t.Fatalf("cancelled run executed %d iterations, want 5", res.Iters)
	}
	if res.Best == nil || res.BestMu <= 0 {
		t.Fatalf("cancelled run lost its best-so-far result: %+v", res.Result)
	}
}
