package simevo

import (
	"simevo/internal/core"
	"simevo/internal/fuzzy"
	"simevo/internal/mpi"
	"simevo/internal/parallel"
)

// Objectives selects the cost terms to optimize.
type Objectives = fuzzy.Objectives

// Objective constants. The paper evaluates WirePower (Tables 1-2) and
// WirePowerDelay (Table 3); Congest adds the RUDY-style routing-demand
// overflow term this implementation layers on top.
const (
	Wire                  = fuzzy.Wire
	Power                 = fuzzy.Power
	Delay                 = fuzzy.Delay
	Congest               = fuzzy.Congest
	WirePower             = fuzzy.WirePower
	WirePowerDelay        = fuzzy.WirePowerDelay
	WirePowerCongest      = fuzzy.WirePowerCongest
	WirePowerDelayCongest = fuzzy.WirePowerDelayCongest
)

// Costs carries raw objective costs (wirelength, power, delay).
type Costs = fuzzy.Costs

// Config parameterizes a SimE run; see core.Config for field documentation.
type Config = core.Config

// DefaultConfig returns paper-aligned defaults for an objective set.
func DefaultConfig(obj Objectives) Config { return core.DefaultConfig(obj) }

// Result reports a serial run; see core.Result.
type Result = core.Result

// Profile reports operator time shares (the paper's Section 4 experiment).
type Profile = core.Profile

// NetModel is the cluster interconnect cost model; see mpi.NetModel.
type NetModel = mpi.NetModel

// FastEthernet models the paper's MPICH-over-100Mbit interconnect.
func FastEthernet() NetModel { return mpi.FastEthernet() }

// IdealNet models a zero-cost interconnect (shared-memory ablation).
func IdealNet() NetModel { return mpi.Ideal() }

// ParallelOptions configures a parallel run; see parallel.Options.
type ParallelOptions = parallel.Options

// ParallelResult reports a parallel run; see parallel.Result.
type ParallelResult = parallel.Result

// RankStats is per-rank virtual-time accounting; see mpi.RankStats.
type RankStats = mpi.RankStats

// RowPattern assigns placement rows to ranks in Type II runs.
type RowPattern = parallel.RowPattern

// FixedRows returns the Kling-Banerjee alternating row pattern.
func FixedRows() RowPattern { return parallel.FixedPattern{} }

// RandomRows returns the random-permutation row pattern with its own
// deterministic stream.
func RandomRows(seed uint64) RowPattern { return parallel.NewRandomPattern(seed) }
