// Package simevo is a Go implementation of parallel Simulated Evolution
// (SimE) for multiobjective VLSI standard-cell placement, reproducing
//
//	Sait, Ali, Zaidi: "Evaluating Parallel Simulated Evolution Strategies
//	for VLSI Cell Placement", IPDPS 2006.
//
// The library provides:
//
//   - a gate-level circuit model with an ISCAS-89 (.bench) parser and a
//     synthetic benchmark generator reproducing the paper's test cases;
//   - cost substrates: Steiner-tree wirelength, switching-activity power,
//     static-timing delay, and the fuzzy aggregation μ(s);
//   - the serial SimE engine (evaluation, biasless selection, sorted
//     individual best-fit allocation);
//   - the paper's three parallelization strategies (Type I low-level,
//     Type II row-domain decomposition with fixed/random patterns, Type
//     III cooperating parallel searches) running on a virtual-time
//     message-passing cluster with a LogP-style fast-Ethernet model;
//   - a placement-as-a-service layer (cmd/simevo-serve backed by
//     internal/service): a JSON HTTP API with a bounded worker pool, an
//     LRU result cache, server-sent-event progress streams, and
//     cooperative job cancellation over every strategy above plus the
//     SA/GA/TS comparison metaheuristics.
//
// Long-running calls have Context variants (RunSerialContext,
// RunTypeIContext, ...) that accept cooperative cancellation and a
// per-iteration Progress callback; a cancelled run returns its best-so-far
// result.
//
// Quick start:
//
//	ckt, _ := simevo.Benchmark("s1196")
//	cfg := simevo.DefaultConfig(simevo.WirePower)
//	cfg.MaxIters = 350
//	placer, _ := simevo.NewPlacer(ckt, cfg)
//	res, _ := placer.RunSerial()
//	fmt.Printf("μ(s) = %.3f\n", res.BestMu)
package simevo

import (
	"fmt"
	"io"
	"os"

	"simevo/internal/format"
	"simevo/internal/gen"
	"simevo/internal/netlist"
)

// Circuit is a gate-level design ready for placement.
type Circuit struct {
	ckt      *netlist.Circuit
	rowsHint int
}

// Name returns the circuit's name.
func (c *Circuit) Name() string { return c.ckt.Name }

// NumCells returns the number of movable cells (gates + flip-flops),
// the paper's "Cells" column.
func (c *Circuit) NumCells() int { return c.ckt.NumMovable() }

// NumNets returns the number of signal nets.
func (c *Circuit) NumNets() int { return c.ckt.NumNets() }

// Stats returns the circuit's structural statistics.
func (c *Circuit) Stats() CircuitStats { return netlist.ComputeStats(c.ckt) }

// CircuitStats summarizes a circuit; see netlist.Stats.
type CircuitStats = netlist.Stats

// WriteBench writes the circuit in ISCAS-89 .bench format.
func (c *Circuit) WriteBench(w io.Writer) error { return netlist.WriteBench(w, c.ckt) }

// LoadBench parses a circuit in ISCAS-89 .bench format.
func LoadBench(name string, r io.Reader) (*Circuit, error) {
	ckt, err := netlist.ParseBench(name, r)
	if err != nil {
		return nil, err
	}
	return &Circuit{ckt: ckt}, nil
}

// LoadBenchFile parses a .bench file from disk.
func LoadBenchFile(path string) (*Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadBench(path, f)
}

// Benchmark returns one of the paper's five ISCAS-89 test cases as a
// synthetic, statistically equivalent circuit (see DESIGN.md for the
// substitution rationale). Generation is deterministic.
func Benchmark(name string) (*Circuit, error) {
	ckt, err := gen.Benchmark(name)
	if err != nil {
		return nil, err
	}
	return &Circuit{ckt: ckt}, nil
}

// BenchmarkNames lists the available benchmark circuits in the order the
// paper's tables use.
func BenchmarkNames() []string { return gen.Catalog() }

// GenerateParams parameterizes synthetic circuit generation; see gen.Params.
type GenerateParams = gen.Params

// Generate synthesizes a circuit with the given structural statistics.
func Generate(p GenerateParams) (*Circuit, error) {
	ckt, err := gen.Generate(p)
	if err != nil {
		return nil, err
	}
	return &Circuit{ckt: ckt}, nil
}

// LargeCells is the movable-cell count of the "large" scale-tier preset
// (circuitgen -preset large, the benchmark harness's large-circuit entry).
const LargeCells = gen.LargeCells

// ScaledParams derives generation parameters for an arbitrary cell count,
// extrapolating the ISCAS-89 structural profile of the bundled benchmarks.
// Generation from the result is deterministic in (cells, seed).
func ScaledParams(name string, cells int, seed uint64) GenerateParams {
	return gen.ScaledParams(name, cells, seed)
}

// LoadBookshelf ingests a Bookshelf/ISPD placement benchmark (.aux naming
// the .nodes/.nets/.pl/.scl set). Movable nodes become function-unknown
// Macro cells, terminals become I/O pads where their pin shape allows, and
// the .scl core rows fix the placement row count (see RowsHint).
func LoadBookshelf(auxPath string) (*Circuit, error) {
	d, _, err := format.LoadAux(auxPath)
	if err != nil {
		return nil, err
	}
	return &Circuit{ckt: d.Ckt, rowsHint: d.NumRows()}, nil
}

// RowsHint returns the row count the circuit's source format prescribes
// (Bookshelf .scl core rows), or 0 when the format leaves it free.
func (c *Circuit) RowsHint() int { return c.rowsHint }

// MustBenchmark is Benchmark for tests and examples; it panics on error.
func MustBenchmark(name string) *Circuit {
	c, err := Benchmark(name)
	if err != nil {
		panic(fmt.Sprintf("simevo: %v", err))
	}
	return c
}
