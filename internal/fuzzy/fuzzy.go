// Package fuzzy implements the fuzzy-logic aggregation that the paper (via
// Sait-Khan 2003, reference [9]) uses to combine wirelength, power and
// delay into a single solution quality μ(s) ∈ [0, 1], with 1 representing
// an optimal solution, and to combine per-cell goodness values.
//
// Each objective j contributes a membership value μ_j from its cost ratio
// x_j = Cost_j / LowerBound_j through a piecewise-linear membership
// function that is 1 at the lower bound and falls to 0 at a per-objective
// goal ratio. Memberships are aggregated with an ordered weighted average
// (OWA) operator that interpolates between the strict "AND" (minimum) and
// the arithmetic mean:
//
//	μ = β·min(μ_1..μ_k) + (1−β)·avg(μ_1..μ_k)
//
// The layout-width constraint is handled as a crisp penalty on μ.
package fuzzy

import (
	"fmt"
	"math"
)

// Objectives is a bit set of active optimization objectives.
type Objectives uint8

// Objective bits. The paper evaluates two combinations: wirelength+power
// (Tables 1, 2) and wirelength+power+delay (Table 3). Congest is the
// post-paper routability term (RUDY bin-grid overflow, internal/congest).
const (
	Wire Objectives = 1 << iota
	Power
	Delay
	Congest
)

// The paper's two objective sets, plus the congestion-extended variants.
const (
	WirePower             = Wire | Power
	WirePowerDelay        = Wire | Power | Delay
	WirePowerCongest      = Wire | Power | Congest
	WirePowerDelayCongest = Wire | Power | Delay | Congest
)

// Has reports whether all bits of x are active.
func (o Objectives) Has(x Objectives) bool { return o&x == x }

// Count returns the number of active objectives.
func (o Objectives) Count() int {
	n := 0
	for b := Objectives(1); b != 0 && b <= Congest; b <<= 1 {
		if o&b != 0 {
			n++
		}
	}
	return n
}

// String names the objective set.
func (o Objectives) String() string {
	switch o {
	case Wire:
		return "wire"
	case Power:
		return "power"
	case Delay:
		return "delay"
	case Congest:
		return "congestion"
	case WirePower:
		return "wire+power"
	case WirePowerDelay:
		return "wire+power+delay"
	case WirePowerCongest:
		return "wire+power+congestion"
	case WirePowerDelayCongest:
		return "wire+power+delay+congestion"
	}
	return fmt.Sprintf("Objectives(%#x)", uint8(o))
}

// Membership is a decreasing piecewise-linear membership function over cost
// ratios: Eval(x) = 1 for x <= 1, 0 for x >= Goal, linear in between.
type Membership struct {
	// Goal is the ratio at which membership reaches zero; must be > 1.
	Goal float64
}

// Eval returns the membership of cost ratio x.
func (m Membership) Eval(x float64) float64 {
	if math.IsNaN(x) {
		return 0
	}
	if x <= 1 {
		return 1
	}
	if x >= m.Goal {
		return 0
	}
	return (m.Goal - x) / (m.Goal - 1)
}

// OWA is the ordered-weighted-average aggregation operator.
type OWA struct {
	// Beta in [0, 1] weights the minimum; 1-Beta weights the mean. Beta=1
	// is the pure fuzzy AND; Beta=0 the plain average.
	Beta float64
}

// Aggregate combines membership values. It returns 0 for an empty input.
func (o OWA) Aggregate(vals ...float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	min, sum := vals[0], 0.0
	for _, v := range vals {
		if v < min {
			min = v
		}
		sum += v
	}
	return o.Beta*min + (1-o.Beta)*sum/float64(len(vals))
}

// Goals holds the per-objective membership goal ratios.
type Goals struct {
	Wire, Power, Delay, Congest Membership
}

// DefaultGoals returns the goal factors used to normalize μ(s). The engine
// sets each objective's lower bound to (initial cost) / Goal, so membership
// is 0 at the initial random placement and reaches 1 once the cost has
// improved by the goal factor. The defaults are calibrated from converged
// SimE runs (wirelength and power improve ~2.3x, delay ~2.1x) so final
// solutions land in the 0.5-0.8 μ band the paper's tables report.
func DefaultGoals() Goals {
	return Goals{
		Wire:  Membership{Goal: 4.0},
		Power: Membership{Goal: 4.0},
		Delay: Membership{Goal: 3.2},
		// Congestion overflow starts far above its converged value on a
		// random placement (hot bins dissolve as wirelength spreads), so
		// its goal ratio is the loosest.
		Congest: Membership{Goal: 6.0},
	}
}

// Costs carries a solution's raw objective costs.
type Costs struct {
	Wire, Power, Delay, Congest float64
}

// Ratio divides costs by lower bounds component-wise. Zero bounds yield
// ratio 1 (degenerate objectives are considered met).
func Ratio(c, lower Costs) Costs {
	div := func(a, b float64) float64 {
		if b <= 0 {
			return 1
		}
		return a / b
	}
	return Costs{
		Wire:    div(c.Wire, lower.Wire),
		Power:   div(c.Power, lower.Power),
		Delay:   div(c.Delay, lower.Delay),
		Congest: div(c.Congest, lower.Congest),
	}
}

// Eval computes the solution quality μ(s).
//
// widthViolation is the fractional width-constraint excess (0 when the
// constraint holds); it scales μ down crisply, so infeasible layouts are
// dominated by any feasible one of similar cost.
func Eval(obj Objectives, ratios Costs, goals Goals, owa OWA, widthViolation float64) float64 {
	var ms []float64
	if obj.Has(Wire) {
		ms = append(ms, goals.Wire.Eval(ratios.Wire))
	}
	if obj.Has(Power) {
		ms = append(ms, goals.Power.Eval(ratios.Power))
	}
	if obj.Has(Delay) {
		ms = append(ms, goals.Delay.Eval(ratios.Delay))
	}
	if obj.Has(Congest) {
		ms = append(ms, goals.Congest.Eval(ratios.Congest))
	}
	mu := owa.Aggregate(ms...)
	if widthViolation > 0 {
		mu /= 1 + widthViolation
	}
	return mu
}
