package fuzzy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMembershipShape(t *testing.T) {
	m := Membership{Goal: 3}
	cases := []struct{ x, want float64 }{
		{0.5, 1}, {1, 1}, {2, 0.5}, {3, 0}, {10, 0},
	}
	for _, tc := range cases {
		if got := m.Eval(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Eval(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestMembershipMonotoneDecreasing(t *testing.T) {
	m := Membership{Goal: 2.5}
	prop := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if a > b {
			a, b = b, a
		}
		return m.Eval(a) >= m.Eval(b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMembershipNaN(t *testing.T) {
	m := Membership{Goal: 2}
	if got := m.Eval(math.NaN()); got != 0 {
		t.Fatalf("Eval(NaN) = %v, want 0", got)
	}
}

func TestOWAExtremes(t *testing.T) {
	vals := []float64{0.2, 0.6, 1.0}
	if got := (OWA{Beta: 1}).Aggregate(vals...); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("pure-min OWA = %v, want 0.2", got)
	}
	if got := (OWA{Beta: 0}).Aggregate(vals...); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("pure-mean OWA = %v, want 0.6", got)
	}
	mid := (OWA{Beta: 0.5}).Aggregate(vals...)
	if math.Abs(mid-0.4) > 1e-12 {
		t.Fatalf("OWA(0.5) = %v, want 0.4", mid)
	}
}

func TestOWABetweenMinAndMean(t *testing.T) {
	prop := func(beta float64, raw []float64) bool {
		beta = math.Mod(math.Abs(beta), 1)
		if len(raw) == 0 {
			return (OWA{Beta: beta}).Aggregate() == 0
		}
		vals := make([]float64, len(raw))
		min, sum := math.Inf(1), 0.0
		for i, v := range raw {
			vals[i] = math.Mod(math.Abs(v), 1)
			if vals[i] < min {
				min = vals[i]
			}
			sum += vals[i]
		}
		mean := sum / float64(len(vals))
		got := (OWA{Beta: beta}).Aggregate(vals...)
		return got >= min-1e-9 && got <= mean+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOWAMonotone(t *testing.T) {
	// Raising any membership must not lower the aggregate.
	o := OWA{Beta: 0.7}
	base := o.Aggregate(0.3, 0.5, 0.7)
	up := o.Aggregate(0.4, 0.5, 0.7)
	if up < base {
		t.Fatalf("OWA decreased when a membership rose: %v -> %v", base, up)
	}
}

func TestObjectivesSet(t *testing.T) {
	if !WirePower.Has(Wire) || !WirePower.Has(Power) || WirePower.Has(Delay) {
		t.Fatal("WirePower bits wrong")
	}
	if WirePowerDelay.Count() != 3 {
		t.Fatalf("Count = %d, want 3", WirePowerDelay.Count())
	}
	if WirePower.Count() != 2 {
		t.Fatalf("Count = %d, want 2", WirePower.Count())
	}
	if WirePower.String() != "wire+power" {
		t.Fatalf("String = %q", WirePower.String())
	}
	if WirePowerDelay.String() != "wire+power+delay" {
		t.Fatalf("String = %q", WirePowerDelay.String())
	}
}

func TestRatio(t *testing.T) {
	r := Ratio(Costs{Wire: 20, Power: 6, Delay: 9}, Costs{Wire: 10, Power: 3, Delay: 3})
	if r.Wire != 2 || r.Power != 2 || r.Delay != 3 {
		t.Fatalf("Ratio = %+v", r)
	}
	// Zero lower bound degenerates to ratio 1.
	r = Ratio(Costs{Wire: 5}, Costs{})
	if r.Wire != 1 || r.Power != 1 || r.Delay != 1 {
		t.Fatalf("zero-bound Ratio = %+v, want all 1", r)
	}
}

func TestEvalPerfectSolution(t *testing.T) {
	mu := Eval(WirePowerDelay, Costs{Wire: 1, Power: 1, Delay: 1}, DefaultGoals(), OWA{Beta: 0.7}, 0)
	if mu != 1 {
		t.Fatalf("μ at lower bounds = %v, want 1", mu)
	}
}

func TestEvalUsesOnlyActiveObjectives(t *testing.T) {
	goals := DefaultGoals()
	owa := OWA{Beta: 0.7}
	// Terrible delay ratio must not affect the two-objective score.
	r := Costs{Wire: 1.2, Power: 1.2, Delay: 1000}
	mu2 := Eval(WirePower, r, goals, owa, 0)
	r.Delay = 1
	mu2b := Eval(WirePower, r, goals, owa, 0)
	if mu2 != mu2b {
		t.Fatalf("inactive delay objective affected μ: %v vs %v", mu2, mu2b)
	}
	mu3 := Eval(WirePowerDelay, Costs{Wire: 1.2, Power: 1.2, Delay: 1000}, goals, owa, 0)
	if mu3 >= mu2 {
		t.Fatalf("bad delay should hurt three-objective μ: %v vs %v", mu3, mu2)
	}
}

func TestEvalWidthPenalty(t *testing.T) {
	goals := DefaultGoals()
	owa := OWA{Beta: 0.7}
	r := Costs{Wire: 1.5, Power: 1.5, Delay: 1.5}
	ok := Eval(WirePowerDelay, r, goals, owa, 0)
	bad := Eval(WirePowerDelay, r, goals, owa, 0.5)
	if bad >= ok {
		t.Fatalf("width violation did not lower μ: %v vs %v", bad, ok)
	}
	if want := ok / 1.5; math.Abs(bad-want) > 1e-12 {
		t.Fatalf("penalty μ = %v, want %v", bad, want)
	}
}

func TestEvalRange(t *testing.T) {
	prop := func(w, p, d, viol float64) bool {
		r := Costs{
			Wire:  1 + math.Mod(math.Abs(w), 10),
			Power: 1 + math.Mod(math.Abs(p), 10),
			Delay: 1 + math.Mod(math.Abs(d), 10),
		}
		v := math.Mod(math.Abs(viol), 2)
		mu := Eval(WirePowerDelay, r, DefaultGoals(), OWA{Beta: 0.7}, v)
		return mu >= 0 && mu <= 1 && !math.IsNaN(mu)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvalMonotoneInCost(t *testing.T) {
	goals := DefaultGoals()
	owa := OWA{Beta: 0.7}
	prev := math.Inf(1)
	for x := 1.0; x <= 5.0; x += 0.25 {
		mu := Eval(WirePowerDelay, Costs{Wire: x, Power: x, Delay: x}, goals, owa, 0)
		if mu > prev+1e-12 {
			t.Fatalf("μ increased as all costs worsened at x=%v", x)
		}
		prev = mu
	}
}
