package experiments

import (
	"strings"
	"testing"
)

// smokeScale is even smaller than TinyScale: single circuit, minimal
// iterations, so the whole harness runs in seconds.
func smokeScale() Scale {
	s := TinyScale()
	s.Label = "smoke"
	s.Div = 200
	s.Circuits = []string{"s1238"}
	s.T4Circuits = []string{"s1238"}
	s.Procs = []int{2, 3}
	s.T4Procs = []int{3}
	s.Retries = []int{3}
	return s
}

func TestScalesWellFormed(t *testing.T) {
	for _, sc := range []Scale{PaperScale(), QuickScale(), TinyScale()} {
		if sc.Div < 1 {
			t.Fatalf("%s: bad Div", sc.Label)
		}
		if len(sc.Circuits) == 0 || len(sc.Procs) == 0 || len(sc.Retries) == 0 {
			t.Fatalf("%s: empty experiment lists", sc.Label)
		}
	}
	p := PaperScale()
	if p.serialIters2() != 3500 || p.serialIters3() != 5000 || p.t3Iters() != 2500 {
		t.Fatal("paper serial iteration counts wrong")
	}
	if p.parIters2(2) != 4000 || p.parIters2(5) != 5500 {
		t.Fatalf("paper Table 2 parallel iterations wrong: %d, %d", p.parIters2(2), p.parIters2(5))
	}
	if p.parIters3(2) != 6000 || p.parIters3(5) != 9000 {
		t.Fatalf("paper Table 3 parallel iterations wrong: %d, %d", p.parIters3(2), p.parIters3(5))
	}
}

func TestProfileSmoke(t *testing.T) {
	var sb strings.Builder
	if err := Profile(smokeScale(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Section 4", "wire+power", "wire+power+delay", "Alloc%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("profile output missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Smoke(t *testing.T) {
	var sb strings.Builder
	if err := Table1(smokeScale(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table 1", "s1238", "540", "p=2", "p=3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Smoke(t *testing.T) {
	var sb strings.Builder
	if err := Table2(smokeScale(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table 2", "s1238", "F p=2", "R p=3", "mu(s)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 2 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable3Smoke(t *testing.T) {
	var sb strings.Builder
	if err := Table3(smokeScale(), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table 3") {
		t.Fatalf("table 3 output malformed:\n%s", sb.String())
	}
}

func TestComparisonSmoke(t *testing.T) {
	var sb strings.Builder
	if err := Comparison(smokeScale(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"SimE serial", "SA parallel", "TS parallel", "GA parallel"} {
		if !strings.Contains(out, want) {
			t.Fatalf("comparison output missing %q:\n%s", want, out)
		}
	}
}

func TestTable4Smoke(t *testing.T) {
	var sb strings.Builder
	if err := Table4(smokeScale(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table 4", "s1238", "Retry", "p=3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 4 output missing %q:\n%s", want, out)
		}
	}
}
