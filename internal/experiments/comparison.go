package experiments

import (
	"fmt"
	"io"

	"simevo/internal/core"
	"simevo/internal/fuzzy"
	"simevo/internal/metaheur"
	"simevo/internal/parallel"
	"simevo/internal/stats"
)

type parallelResult = parallel.Result

// runTypeII4 runs a p=4 random-pattern Type II placement against a quality
// target.
func runTypeII4(prob *core.Problem, sc Scale, target float64) (*parallelResult, error) {
	return parallel.RunTypeII(prob, parallel.Options{
		Procs:    4,
		Net:      &sc.Net,
		Pattern:  parallel.NewRandomPattern(sc.Seed),
		TargetMu: target,
	})
}

// Comparison runs the Section 7 cross-heuristic experiment: SimE against
// the SA, TS and GA baselines (serial and parallel) on the same
// two-objective problem with comparable move budgets, reporting μ(s) and
// runtime. The paper's qualitative claims: cooperative parallel search
// suits SA (and GA), Type I candidate-list division suits TS, while SimE
// profits from Type II domain decomposition.
func Comparison(sc Scale, w io.Writer) error {
	tb := stats.NewTable(
		fmt.Sprintf("Section 7 comparison — heuristics on wire+power (%s scale)", sc.Label),
		"Ckt", "Heuristic", "mu(s)", "Time", "Notes")

	for _, name := range sc.Circuits {
		iters := sc.serialIters2()
		prob, err := sc.problem(name, fuzzy.WirePower, iters)
		if err != nil {
			return err
		}
		n := prob.Ckt.NumMovable()
		// Budget parity: SimE evaluates ~n cells and reallocates ~n/3 per
		// iteration; give the move-based heuristics n moves per SimE
		// iteration and the GA an equivalent number of full evaluations.
		moves := iters * n
		gaPop := 24
		gaGens := max(5, moves/(gaPop*n/8))

		serial, serialTime := runSerial(prob)
		tb.AddRow(name, "SimE serial", f3(serial.BestMu), stats.Seconds(serialTime), "baseline")

		if res, err := parallel2(sc, name, serial.BestMu); err != nil {
			return err
		} else {
			t := res.VirtualTime
			note := "Type II p=4 random"
			if res.ReachedTarget {
				t = res.TimeToTarget
				note += " (time to serial mu)"
			}
			tb.AddRow("", "SimE Type II", f3(res.BestMu), stats.Seconds(t), note)
		}

		sa, err := metaheur.RunSA(prob, metaheur.SAConfig{Moves: moves, Seed: sc.Seed})
		if err != nil {
			return err
		}
		tb.AddRow("", "SA serial", f3(sa.BestMu), stats.Seconds(sa.Runtime), fmt.Sprintf("%d moves", sa.Moves))

		psa, err := metaheur.RunParallelSA(prob, metaheur.ParallelSAConfig{
			SA: metaheur.SAConfig{Moves: moves, Seed: sc.Seed}, Procs: 4, Net: &sc.Net,
		})
		if err != nil {
			return err
		}
		tb.AddRow("", "SA parallel", f3(psa.BestMu), stats.Seconds(psa.VirtualTime), "AMMC p=4")

		tsIters := max(10, moves/64)
		ts, err := metaheur.RunTS(prob, metaheur.TSConfig{Iters: tsIters, Seed: sc.Seed})
		if err != nil {
			return err
		}
		tb.AddRow("", "TS serial", f3(ts.BestMu), stats.Seconds(ts.Runtime), fmt.Sprintf("%d iters", tsIters))

		pts, err := metaheur.RunParallelTS(prob, metaheur.ParallelTSConfig{
			TS: metaheur.TSConfig{Iters: tsIters, Seed: sc.Seed}, Procs: 4, Net: &sc.Net,
		})
		if err != nil {
			return err
		}
		tb.AddRow("", "TS parallel", f3(pts.BestMu), stats.Seconds(pts.VirtualTime), "Type I p=4")

		ga, err := metaheur.RunGA(prob, metaheur.GAConfig{Pop: gaPop, Generations: gaGens, Seed: sc.Seed})
		if err != nil {
			return err
		}
		tb.AddRow("", "GA serial", f3(ga.BestMu), stats.Seconds(ga.Runtime), fmt.Sprintf("%d gens", gaGens))

		pga, err := metaheur.RunParallelGA(prob, metaheur.ParallelGAConfig{
			GA:    metaheur.GAConfig{Pop: gaPop, Generations: gaGens, Seed: sc.Seed},
			Procs: 4, Net: &sc.Net,
		})
		if err != nil {
			return err
		}
		tb.AddRow("", "GA parallel", f3(pga.BestMu), stats.Seconds(pga.VirtualTime), "islands p=4")
	}
	_, err := fmt.Fprintln(w, tb)
	return err
}

func parallel2(sc Scale, name string, target float64) (*parallelResult, error) {
	prob, err := sc.problem(name, fuzzy.WirePower, sc.parIters2(4))
	if err != nil {
		return nil, err
	}
	return runTypeII4(prob, sc, target)
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
