package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"simevo/internal/congest"
	"simevo/internal/core"
	"simevo/internal/fuzzy"
	"simevo/internal/gen"
	"simevo/internal/layout"
	"simevo/internal/mpi"
	"simevo/internal/parallel"
	"simevo/internal/telemetry"
)

// Baseline captures the incremental-vs-from-scratch performance of the
// engine's hot paths at the BenchmarkProfileShare scale (s1196, 60
// iterations), so future PRs have a recorded perf trajectory. The
// top-level fields measure the paper's two-objective (wire+power) mode;
// WirePowerDelay adds the three-objective mode whose evaluation runs the
// full cost pipeline — summation-tree power and dirty-cone STA — against
// the full-recompute reference. simevo-bench -baseline writes it as JSON
// (BENCH_baseline.json at the repo root).
type Baseline struct {
	Circuit   string `json:"circuit"`
	Objective string `json:"objective"`
	Iters     int    `json:"iters"`
	Seed      uint64 `json:"seed"`

	// Incremental is the default engine; Scratch is the
	// DisableIncremental reference — the paper-faithful from-scratch
	// evaluation the pre-incremental engine used.
	Incremental BaselineRun `json:"incremental"`
	Scratch     BaselineRun `json:"scratch"`

	// AllocSpeedup and TotalSpeedup compare scratch vs incremental.
	AllocSpeedup float64 `json:"alloc_speedup"`
	TotalSpeedup float64 `json:"total_speedup"`

	// TrajectoryMatch records the tentpole invariant: both modes must
	// reach the identical best solution (bitwise equal μ).
	TrajectoryMatch bool `json:"trajectory_match"`

	// GoMaxProcs and EvalWorkers record the measurement context: the
	// incremental run fans goodness evaluation (and the vacancy scan)
	// across the engine pool when more than one CPU is available, and
	// the numbers are only comparable at similar parallelism.
	GoMaxProcs  int `json:"gomaxprocs"`
	EvalWorkers int `json:"eval_workers"`

	// WirePowerDelay is the three-objective mode measurement (nil when
	// the baseline was recorded with -objectives excluding it).
	WirePowerDelay *ModeBaseline `json:"wire_power_delay,omitempty"`

	// WirePowerDelayCongest is the four-objective mode: the full cost
	// pipeline plus the incremental congestion bin grid (nil when the
	// baseline was recorded with -objectives excluding it).
	WirePowerDelayCongest *ModeBaseline `json:"wire_power_delay_congest,omitempty"`

	// LargeCircuit is the scale-tier entry: one incremental run on the
	// generated 100k-cell circuit with congestion active. Its ns/iter is
	// informational (host wall clock); the best μ is the host-independent
	// gate — the trajectory on the large tier must stay bitwise stable.
	LargeCircuit *LargeCircuitBaseline `json:"large_circuit,omitempty"`

	// AsyncExchange is the Type III exchange-overhead entry: the same
	// 4-rank simulated cluster run under the legacy blocking protocol and
	// the asynchronous epoch-tagged one. The p50 ratio is the tentpole
	// gate (async must stay at least asyncExchangeMinSpeedup times
	// cheaper per exchange segment); the async best μ is the
	// host-independent determinism gate.
	AsyncExchange *ExchangeBaseline `json:"async_exchange,omitempty"`

	// ScanRates records, per bundled benchmark circuit, how the sharded
	// vacancy scan disposed of its candidates over a short incremental
	// run — the deterministic work counters behind the wall-clock numbers
	// above, reproducible across hosts.
	ScanRates map[string]*CircuitScanRates `json:"scan_rates,omitempty"`
}

// CircuitScanRates is one circuit's scan-prune profile: each rate is the
// fraction of Candidates (live vacancies offered across every per-cell
// scan) disposed of by that mechanism. SkippedBucket counts candidates
// never visited at all — whole rows or bucket tails cut wholesale — and
// Scored the survivors that paid for a full trial evaluation; the four
// rates plus Scored sum to ~1.
type CircuitScanRates struct {
	Objective     string  `json:"objective"`
	Iters         int     `json:"iters"`
	Candidates    uint64  `json:"candidates"`
	SkippedBucket float64 `json:"skipped_bucket"`
	PrunedBBox    float64 `json:"pruned_bbox"`
	PrunedSuffix  float64 `json:"pruned_suffix"`
	BailedExact   float64 `json:"bailed_exact"`
	Scored        float64 `json:"scored"`
	RowsVisited   uint64  `json:"rows_visited"`
}

// LargeCircuitBaseline records the scale-tier measurement. BestMu,
// Congest, and CongestPeak are deterministic for (cells, gen seed, run
// seed) and gate the large-circuit trajectory bitwise across hosts;
// NsPerIter is wall clock. ClusteredStart records that the run used the
// connectivity-clustered initial placement, and CongestBins the
// resolution-matched grid. The overflow cost (Congest) only fires when a
// bin exceeds twice the average demand; measured at 100k cells, the
// clustered start packs nets so tightly that demand flattens *below* that
// threshold at every resolution, so the gate also records the peak bin
// demand — a nonzero, bitwise-deterministic congestion signal that moves
// with any change to the demand accounting or the search trajectory even
// when the overflow cost is zero.
type LargeCircuitBaseline struct {
	Circuit        string  `json:"circuit"`
	Cells          int     `json:"cells"`
	GenSeed        uint64  `json:"gen_seed"`
	Objective      string  `json:"objective"`
	Iters          int     `json:"iters"`
	Seed           uint64  `json:"seed"`
	ClusteredStart bool    `json:"clustered_start"`
	CongestBins    int     `json:"congest_bins"`
	NsPerIter      float64 `json:"ns_per_iter"`
	BestMu         float64 `json:"best_mu"`
	Congest        float64 `json:"congest"`
	CongestPeak    float64 `json:"congest_peak"`
}

// ExchangeBaseline records the Type III exchange-overhead measurement on
// the 4-rank simulated cluster: one run per protocol, identical problem
// and seed, compute measurement off. The per-protocol p50 is the median
// timed exchange segment — for the sync protocol a blocking
// request/reply round trip plus the O(n) adoption rebuild, for the async
// protocol a post, a poll issue, a news application, or a speculation
// restore. Both runs share the gate host's wall clock, so their ratio is
// host-comparable the way the incremental-vs-scratch speedups are. The
// best μ values are virtual-time deterministic and gate bitwise.
type ExchangeBaseline struct {
	Circuit         string  `json:"circuit"`
	Objective       string  `json:"objective"`
	Procs           int     `json:"procs"`
	Iters           int     `json:"iters"`
	Seed            uint64  `json:"seed"`
	Retry           int     `json:"retry"`
	SyncP50Ns       int64   `json:"sync_p50_ns"`
	AsyncP50Ns      int64   `json:"async_p50_ns"`
	P50Speedup      float64 `json:"p50_speedup"`
	SyncBestMu      float64 `json:"sync_best_mu"`
	AsyncBestMu     float64 `json:"async_best_mu"`
	AsyncPosted     int     `json:"async_posted"`
	AsyncAdopted    int     `json:"async_adopted"`
	AsyncRejected   int     `json:"async_rejected"`
	AsyncRestores   int     `json:"async_restores"`
	AsyncStoreEpoch uint64  `json:"async_store_epoch"`
}

// ModeBaseline is one objective set's incremental-vs-scratch measurement.
type ModeBaseline struct {
	Objective       string      `json:"objective"`
	Incremental     BaselineRun `json:"incremental"`
	Scratch         BaselineRun `json:"scratch"`
	TotalSpeedup    float64     `json:"total_speedup"`
	TrajectoryMatch bool        `json:"trajectory_match"`
}

// BaselineRun is one mode's measurement. ObjectivePhases breaks the cost
// pipeline's evaluation down per objective (ns/iter keyed by objective
// name) — for the delay mode it shows how much of the iteration the
// dirty-cone STA actually costs against its full-recompute counterpart.
type BaselineRun struct {
	NsPerIter      float64 `json:"ns_per_iter"`
	EvalNsPerIter  float64 `json:"eval_ns_per_iter"`
	AllocNsPerIter float64 `json:"alloc_ns_per_iter"`
	AllocShare     float64 `json:"alloc_share"`
	// Allocation sub-phase split (ns/iter): per-cell trial preparation,
	// the vacancy scans themselves, and the commit/bookkeeping tail.
	AllocPrepNsPerIter   float64            `json:"alloc_prep_ns_per_iter"`
	AllocScanNsPerIter   float64            `json:"alloc_scan_ns_per_iter"`
	AllocCommitNsPerIter float64            `json:"alloc_commit_ns_per_iter"`
	BestMu               float64            `json:"best_mu"`
	ObjectivePhases      map[string]float64 `json:"objective_phase_ns_per_iter,omitempty"`
	// Telemetry records the engine's phase counters for the kept run.
	// The work counters (iterations, evals, dirty nets, prune and cache
	// statistics) are deterministic and reproducible across hosts; the
	// *_ns phase timings are this host's wall clock.
	Telemetry *telemetry.EngineSnapshot `json:"telemetry,omitempty"`
}

const (
	baselineCircuit = "s1196"
	baselineIters   = 60
	baselineSeed    = 2006
)

// measureMode runs one (objective set, mode) configuration and reports
// the timings, best μ, and best-placement fingerprint.
func measureMode(obj fuzzy.Objectives, scratch bool, evalWorkers int) (BaselineRun, uint64, error) {
	ckt, err := gen.Benchmark(baselineCircuit)
	if err != nil {
		return BaselineRun{}, 0, err
	}
	cfg := core.DefaultConfig(obj)
	cfg.MaxIters = baselineIters
	cfg.Seed = baselineSeed
	cfg.DisableIncremental = scratch
	if !scratch {
		cfg.EvalWorkers = evalWorkers
	}
	prob, err := core.NewProblem(ckt, cfg)
	if err != nil {
		return BaselineRun{}, 0, err
	}
	eng := prob.NewEngine(0)
	start := time.Now()
	res := eng.Run()
	total := time.Since(start)
	p := eng.Profile()
	_, _, allocShare := p.Shares()
	phases := make(map[string]float64)
	for name, d := range eng.CostPhases() {
		phases[name] = float64(d.Nanoseconds()) / baselineIters
	}
	tel := res.Telemetry
	return BaselineRun{
		NsPerIter:            float64(total.Nanoseconds()) / baselineIters,
		EvalNsPerIter:        float64(p.Eval.Nanoseconds()) / baselineIters,
		AllocNsPerIter:       float64(p.Alloc.Nanoseconds()) / baselineIters,
		AllocShare:           allocShare,
		AllocPrepNsPerIter:   float64(tel.AllocPrepNs) / baselineIters,
		AllocScanNsPerIter:   float64(tel.AllocScanNs) / baselineIters,
		AllocCommitNsPerIter: float64(tel.AllocCommitNs) / baselineIters,
		BestMu:               res.BestMu,
		ObjectivePhases:      phases,
		Telemetry:            &tel,
	}, res.Best.Fingerprint(), nil
}

// scanRateIters keeps the per-circuit scan-rate measurement short: the
// rates stabilize within a few iterations and the s3330 wpd run is the
// expensive end of the sweep.
const scanRateIters = 12

// measureScanRates profiles the sharded scan's prune behaviour on every
// bundled circuit with the incremental engine. The counters are
// deterministic for a (circuit, objective, seed) triple, so the recorded
// rates are comparable across hosts and over time.
func measureScanRates(obj fuzzy.Objectives) (map[string]*CircuitScanRates, error) {
	rates := make(map[string]*CircuitScanRates)
	for _, name := range gen.Catalog() {
		ckt, err := gen.Benchmark(name)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig(obj)
		cfg.MaxIters = scanRateIters
		cfg.Seed = baselineSeed
		prob, err := core.NewProblem(ckt, cfg)
		if err != nil {
			return nil, err
		}
		res := prob.NewEngine(0).Run()
		tel := res.Telemetry
		cand := tel.ScanVacancies + tel.ScanSkippedBucket
		r := &CircuitScanRates{
			Objective:   obj.String(),
			Iters:       scanRateIters,
			Candidates:  cand,
			RowsVisited: tel.ScanRowsVisited,
		}
		if cand > 0 {
			r.SkippedBucket = float64(tel.ScanSkippedBucket) / float64(cand)
			r.PrunedBBox = float64(tel.ScanPrunedBBox) / float64(cand)
			r.PrunedSuffix = float64(tel.ScanPrunedSuffix) / float64(cand)
			r.BailedExact = float64(tel.ScanBailedExact) / float64(cand)
			r.Scored = float64(tel.ScanScored) / float64(cand)
		}
		rates[name] = r
	}
	return rates, nil
}

// measureModeBest repeats a measurement and keeps the fastest run — the
// standard noise floor for wall-clock microbenchmarks. Solution quality is
// identical across repetitions (the run is deterministic), so only the
// timings differ.
func measureModeBest(obj fuzzy.Objectives, scratch bool, evalWorkers int) (BaselineRun, uint64, error) {
	const reps = 3
	r, fp, err := measureMode(obj, scratch, evalWorkers)
	if err != nil {
		return r, fp, err
	}
	for i := 1; i < reps; i++ {
		r2, _, err := measureMode(obj, scratch, evalWorkers)
		if err != nil {
			return r, fp, err
		}
		if r2.NsPerIter < r.NsPerIter {
			r = r2
		}
	}
	return r, fp, nil
}

// measureObjectiveMode measures both engine modes for one objective set.
func measureObjectiveMode(obj fuzzy.Objectives, evalWorkers int) (*ModeBaseline, error) {
	inc, incFP, err := measureModeBest(obj, false, evalWorkers)
	if err != nil {
		return nil, err
	}
	scr, scrFP, err := measureModeBest(obj, true, evalWorkers)
	if err != nil {
		return nil, err
	}
	return &ModeBaseline{
		Objective:       obj.String(),
		Incremental:     inc,
		Scratch:         scr,
		TotalSpeedup:    scr.NsPerIter / inc.NsPerIter,
		TrajectoryMatch: inc.BestMu == scr.BestMu && incFP == scrFP,
	}, nil
}

// MeasureBaseline runs both modes for the requested objective sets and
// assembles the report. The incremental engine mode is measured as it
// ships: EvalWorkers engages the parallel goodness evaluation when the
// host has more than one CPU (the trajectory is bitwise identical either
// way — only the wall clock changes). The scratch reference stays serial.
// objectives selects from "wire+power", "wire+power+delay",
// "wire+power+delay+congestion", and "large" (the 100k-cell scale-tier
// entry); "" measures all of them.
func MeasureBaseline(objectives string) (*Baseline, error) {
	evalWorkers := runtime.GOMAXPROCS(0)
	if evalWorkers > 8 {
		evalWorkers = 8
	}
	if evalWorkers <= 1 {
		evalWorkers = 0
	}
	return measureBaselineWith(evalWorkers, objectives)
}

// baselineModes selects which baseline sections to measure.
type baselineModes struct {
	wp, wpd, wpdc bool
	large         bool
	exchange      bool
}

// parseObjectiveModes maps the -objectives flag to the measured sections.
// "" selects everything.
func parseObjectiveModes(objectives string) (baselineModes, error) {
	if objectives == "" {
		return baselineModes{wp: true, wpd: true, wpdc: true, large: true, exchange: true}, nil
	}
	var m baselineModes
	for _, o := range strings.Split(objectives, ",") {
		switch strings.TrimSpace(strings.ToLower(o)) {
		case "wire+power", "wp":
			m.wp = true
		case "wire+power+delay", "wpd":
			m.wpd = true
		case "wire+power+delay+congestion", "wpdc":
			m.wpdc = true
		case "large":
			m.large = true
		case "exchange":
			m.exchange = true
		case "":
		default:
			return baselineModes{}, fmt.Errorf("experiments: unknown objective mode %q (have wire+power, wire+power+delay, wire+power+delay+congestion, large, exchange)", o)
		}
	}
	if !m.wp && !m.wpd && !m.wpdc && !m.large && !m.exchange {
		return baselineModes{}, fmt.Errorf("experiments: no objective mode selected")
	}
	return m, nil
}

/// largeCircuitIters keeps the scale-tier entry affordable: the 100k-cell
// iteration costs seconds of wall clock, and two iterations exercise both
// the from-cold first evaluation and a full steady-state step.
const largeCircuitIters = 2

// largeCongestBins is the scale tier's congestion-grid column count. The
// package default (16 columns) is matched to the kilocell ISCAS tier; at
// 100k cells it averages so much area into each bin that no starting
// placement — uniform or clustered — ever crosses the 2x-average overflow
// threshold. 64 columns resolves demand at roughly cluster granularity
// while keeping the per-evaluation finish pass (one scan over NX·NY bins)
// negligible next to the allocation work.
const largeCongestBins = 64

// measureLargeCircuit runs the incremental engine on the generated
// 100k-cell tier with congestion active. One rep — the gate consumes the
// deterministic μ, not the wall clock.
func measureLargeCircuit(evalWorkers int) (*LargeCircuitBaseline, error) {
	ckt, err := gen.Generate(gen.ScaledParams("large", gen.LargeCells, 1))
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(fuzzy.WirePowerCongest)
	cfg.MaxIters = largeCircuitIters
	cfg.Seed = baselineSeed
	cfg.EvalWorkers = evalWorkers
	// Non-uniform start for the scale tier. Note the measured congestion
	// behaviour is the opposite of the intuition that clustering creates
	// hotspots: clustering shrinks net bounding boxes, which *flattens*
	// bbox-spread demand (peak/avg stays under 2x at every grid
	// resolution probed up to 192 columns), while the uniform-random deal
	// overlaps 100k die-spanning boxes at the die center and overflows
	// once the grid resolves it (64+ columns). The clustered start is
	// kept because it is the realistic warm start and shifts the μ
	// trajectory the gate pins; congestion discrimination comes from the
	// peak-demand record below, which is nonzero regardless of start.
	cfg.ClusteredStart = true
	cfg.CongestBins = largeCongestBins
	prob, err := core.NewProblem(ckt, cfg)
	if err != nil {
		return nil, err
	}
	eng := prob.NewEngine(0)
	start := time.Now()
	res := eng.Run()
	total := time.Since(start)
	// Re-derive the congestion grid over the best placement to record the
	// peak bin demand. Same spec the engines used (cfg.NumRows is 0 here,
	// so the engine rows are layout.DefaultNumRows).
	grid := congest.New(ckt, congest.SpecFor(ckt, layout.DefaultNumRows(ckt), largeCongestBins),
		congest.PlacementSource{P: res.Best})
	grid.Silence()
	grid.Full(nil)
	return &LargeCircuitBaseline{
		Circuit:        "large",
		Cells:          gen.LargeCells,
		GenSeed:        1,
		Objective:      fuzzy.WirePowerCongest.String(),
		Iters:          largeCircuitIters,
		Seed:           baselineSeed,
		ClusteredStart: true,
		CongestBins:    largeCongestBins,
		NsPerIter:      float64(total.Nanoseconds()) / largeCircuitIters,
		BestMu:         res.BestMu,
		Congest:        res.BestCosts.Congest,
		CongestPeak:    grid.Peak(),
	}, nil
}

// Exchange-bench parameters: enough iterations at a tight retry budget
// that every searcher performs several store consultations, on the same
// pinned circuit and seed as the rest of the baseline.
const (
	exchangeIters = 40
	exchangeRetry = 5
	exchangeProcs = 4
)

// asyncExchangeMinSpeedup is the tentpole gate: the async protocol's p50
// exchange segment must be at least this many times cheaper than the sync
// protocol's blocking round trip, measured back to back on the gate host.
const asyncExchangeMinSpeedup = 2.0

// measureExchange runs the Type III exchange bench once per protocol on
// the simulated 4-rank cluster with compute measurement off, so the
// schedules — and the recorded best μ values — are virtual-time
// deterministic across hosts. Only the p50 segment timings are wall clock.
func measureExchange() (*ExchangeBaseline, error) {
	run := func(sync bool) (*parallel.Result, error) {
		ckt, err := gen.Benchmark(baselineCircuit)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig(fuzzy.WirePower)
		cfg.MaxIters = exchangeIters
		cfg.Seed = baselineSeed
		prob, err := core.NewProblem(ckt, cfg)
		if err != nil {
			return nil, err
		}
		net := mpi.FastEthernet()
		off := false
		return parallel.RunTypeIII(prob, parallel.Options{
			Procs:          exchangeProcs,
			Net:            &net,
			MeasureCompute: &off,
			Retry:          exchangeRetry,
			SyncExchange:   sync,
		})
	}
	syncRes, err := run(true)
	if err != nil {
		return nil, err
	}
	asyncRes, err := run(false)
	if err != nil {
		return nil, err
	}
	b := &ExchangeBaseline{
		Circuit:     baselineCircuit,
		Objective:   fuzzy.WirePower.String(),
		Procs:       exchangeProcs,
		Iters:       exchangeIters,
		Seed:        baselineSeed,
		Retry:       exchangeRetry,
		SyncP50Ns:   syncRes.Exchange.P50RoundNs(),
		AsyncP50Ns:  asyncRes.Exchange.P50RoundNs(),
		SyncBestMu:  syncRes.BestMu,
		AsyncBestMu: asyncRes.BestMu,
	}
	if ex := asyncRes.Exchange; ex != nil {
		b.AsyncPosted = ex.Posted
		b.AsyncAdopted = ex.Adopted
		b.AsyncRejected = ex.Rejected
		b.AsyncRestores = ex.Restores
		b.AsyncStoreEpoch = ex.StoreEpoch
	}
	if b.AsyncP50Ns > 0 {
		b.P50Speedup = float64(b.SyncP50Ns) / float64(b.AsyncP50Ns)
	}
	return b, nil
}

// measureBaselineWith measures at a pinned evaluation fan-out, so the
// bench gate can reproduce the committed baseline's configuration.
func measureBaselineWith(evalWorkers int, objectives string) (*Baseline, error) {
	m, err := parseObjectiveModes(objectives)
	if err != nil {
		return nil, err
	}
	wp, wpd := m.wp, m.wpd
	b := &Baseline{
		Circuit:     baselineCircuit,
		Objective:   "wire+power",
		Iters:       baselineIters,
		Seed:        baselineSeed,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		EvalWorkers: evalWorkers,
	}
	if !wp {
		// Without the wire+power measurement the legacy top-level fields
		// stay zero; blank the objective label so the file cannot be
		// misread as recording a diverged wp trajectory.
		b.Objective = ""
	} else {
		mode, err := measureObjectiveMode(fuzzy.WirePower, evalWorkers)
		if err != nil {
			return nil, err
		}
		b.Incremental = mode.Incremental
		b.Scratch = mode.Scratch
		b.AllocSpeedup = mode.Scratch.AllocNsPerIter / mode.Incremental.AllocNsPerIter
		b.TotalSpeedup = mode.TotalSpeedup
		b.TrajectoryMatch = mode.TrajectoryMatch
	}
	if wpd {
		mode, err := measureObjectiveMode(fuzzy.WirePowerDelay, evalWorkers)
		if err != nil {
			return nil, err
		}
		b.WirePowerDelay = mode
	}
	if m.wpdc {
		mode, err := measureObjectiveMode(fuzzy.WirePowerDelayCongest, evalWorkers)
		if err != nil {
			return nil, err
		}
		b.WirePowerDelayCongest = mode
	}
	if m.large {
		large, err := measureLargeCircuit(evalWorkers)
		if err != nil {
			return nil, err
		}
		b.LargeCircuit = large
	}
	if m.exchange {
		ex, err := measureExchange()
		if err != nil {
			return nil, err
		}
		b.AsyncExchange = ex
	}
	// Scan-prune rates for the most scan-bound selected mode: wpd when
	// measured (the mode the delay-aware bounds exist for), wp otherwise.
	rateObj := fuzzy.WirePower
	if wpd {
		rateObj = fuzzy.WirePowerDelay
	}
	rates, err := measureScanRates(rateObj)
	if err != nil {
		return nil, err
	}
	b.ScanRates = rates
	return b, nil
}

// CheckTolerance is the bench-regression gate: CheckBaseline fails when
// a measured incremental-over-scratch speedup falls more than this
// fraction below the committed baseline's.
const CheckTolerance = 0.15

// Tentpole allocation gates. wpdFlatScanNsPerIter is the committed wpd
// incremental ns/iter of the flat free-list scan (PR 6, reference host);
// the committed baseline must show the bucketed scan at least
// wpdMinSpeedupVsFlat times faster. The floor is 1.5x, not the 2x-plus
// the steady-state step benchmark shows: the baseline protocol averages
// only the first 60 iterations, where the selection sets — and with them
// the vacancy pools every scan covers — are at their largest and the
// per-cell prep (RemoveCell pin edits, trial compilation, envelope
// construction) is at its heaviest relative to the pruned scan, so the
// equal-protocol ratio on the single-CPU reference host lands at
// ~1.55x (1.93ms vs 3.00ms) with ±6% run-to-run noise. The alloc-share
// ceiling depends on what the gate host can reach: a multi-core runner
// engages the pooled per-cell fan-out and is held to wpdAllocShareGate;
// a single-CPU runner cannot fan out, and with evaluation and selection
// already O(dirty)-cheap its allocation share has a structural floor
// (~0.80 measured serial on the reference host) — it is held to
// wpdAllocShareGateSerial so scan regressions still fail without
// penalizing hardware that cannot reach the parallel target.
const (
	wpdFlatScanNsPerIter    = 3004821.0
	wpdMinSpeedupVsFlat     = 1.5
	wpdAllocShareGate       = 0.60
	wpdAllocShareGateSerial = 0.88
)

// CheckBaseline re-measures the baseline and compares it against the
// committed JSON at path: the solution trajectories must be unchanged
// (identical best μ, all recorded modes matching) and the
// incremental-over-scratch speedups — for every objective mode the
// committed file records — must not have regressed by more than
// CheckTolerance. The wpd section additionally carries the allocation
// tentpole gates (see gateWpdAllocation); a recorded large-circuit entry
// gates the scale-tier trajectory bitwise (see gateLargeCircuit).
// The committed file's telemetry key sets must be a
// subset of the current schema: added counters are tolerated, removed
// ones fail the gate. The measurement is pinned to the committed
// baseline's parallelism (GOMAXPROCS and EvalWorkers are restored from
// the JSON), so a serial baseline is never compared against a multi-core
// run or vice versa; per-core speed differences between hosts remain —
// refresh the baseline from an environment comparable to the gate's.
// When outPath is non-empty the freshly measured baseline is written
// there (the CI gate uploads it as an artifact beside the cpuprofile).
// Used by the CI bench gate.
func CheckBaseline(path, outPath string, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var ref Baseline
	if err := json.Unmarshal(data, &ref); err != nil {
		return fmt.Errorf("experiments: parsing %s: %w", path, err)
	}
	if err := checkTelemetryKeys(data); err != nil {
		return err
	}
	if ref.GoMaxProcs > 0 && ref.GoMaxProcs != runtime.GOMAXPROCS(0) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(ref.GoMaxProcs))
	}
	// Gate exactly the modes the committed file records: a baseline
	// written with -objectives wire+power+delay carries zero-valued
	// top-level wire+power fields, which must not be measured against.
	wpRecorded := ref.Incremental.NsPerIter > 0
	var modes []string
	if wpRecorded {
		modes = append(modes, "wire+power")
	}
	if ref.WirePowerDelay != nil {
		modes = append(modes, "wire+power+delay")
	}
	if ref.WirePowerDelayCongest != nil {
		modes = append(modes, "wire+power+delay+congestion")
	}
	if ref.LargeCircuit != nil {
		modes = append(modes, "large")
	}
	if ref.AsyncExchange != nil {
		modes = append(modes, "exchange")
	}
	if len(modes) == 0 {
		return fmt.Errorf("experiments: %s records no objective mode to gate", path)
	}
	got, err := measureBaselineWith(ref.EvalWorkers, strings.Join(modes, ","))
	if err != nil {
		return err
	}
	// Gate on the incremental-over-scratch speedup, not absolute wall
	// clock: both runs share the host, so per-core speed differences
	// between the machine that recorded the baseline and the one running
	// the gate cancel out. The absolute ns/iter is still printed for the
	// log trail.
	if wpRecorded {
		wp := ModeBaseline{Objective: "wire+power",
			Incremental: ref.Incremental, Scratch: ref.Scratch,
			TotalSpeedup: ref.TotalSpeedup, TrajectoryMatch: ref.TrajectoryMatch}
		gotWP := ModeBaseline{Incremental: got.Incremental,
			TotalSpeedup: got.TotalSpeedup, TrajectoryMatch: got.TrajectoryMatch}
		if err := gateMode(w, &wp, &gotWP, ref.GoMaxProcs, got.GoMaxProcs); err != nil {
			return err
		}
	}
	if ref.WirePowerDelay != nil {
		if err := gateMode(w, ref.WirePowerDelay, got.WirePowerDelay, 0, 0); err != nil {
			return err
		}
		if err := gateWpdAllocation(w, ref.WirePowerDelay, got.WirePowerDelay, got.GoMaxProcs); err != nil {
			return err
		}
	}
	if ref.WirePowerDelayCongest != nil {
		if err := gateMode(w, ref.WirePowerDelayCongest, got.WirePowerDelayCongest, 0, 0); err != nil {
			return err
		}
	}
	if ref.LargeCircuit != nil {
		if err := gateLargeCircuit(w, ref.LargeCircuit, got.LargeCircuit); err != nil {
			return err
		}
	}
	if ref.AsyncExchange != nil {
		if err := gateAsyncExchange(w, ref.AsyncExchange, got.AsyncExchange); err != nil {
			return err
		}
	}
	if outPath != "" {
		out, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			return err
		}
		out = append(out, '\n')
		if err := os.WriteFile(outPath, out, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "bench gate: measured baseline written to %s\n", outPath)
	}
	fmt.Fprintln(w, "bench gate: ok")
	return nil
}

// gateWpdAllocation enforces the allocation tentpole on the wpd section:
// the committed iteration must show the bucketed-scan win over the PR-6
// flat scan (both numbers recorded on the same reference-host lineage),
// and the measured allocation share must stay under the ceiling the gate
// host can actually reach (see the gate constants above).
func gateWpdAllocation(w io.Writer, ref, got *ModeBaseline, gotProcs int) error {
	if ref.Incremental.NsPerIter*wpdMinSpeedupVsFlat > wpdFlatScanNsPerIter {
		return fmt.Errorf("experiments: committed wpd incremental %.0f ns/iter is not >=%.1fx faster than the PR-6 flat scan (%.0f ns/iter)",
			ref.Incremental.NsPerIter, wpdMinSpeedupVsFlat, wpdFlatScanNsPerIter)
	}
	limit, kind := wpdAllocShareGate, "parallel"
	if gotProcs <= 1 {
		limit, kind = wpdAllocShareGateSerial, "serial"
	}
	fmt.Fprintf(w, "bench gate [wire+power+delay]: alloc share %.3f (%s limit %.2f), committed %.2fx over the PR-6 flat scan\n",
		got.Incremental.AllocShare, kind, limit, wpdFlatScanNsPerIter/ref.Incremental.NsPerIter)
	if got.Incremental.AllocShare >= limit {
		return fmt.Errorf("experiments: wpd alloc share %.3f breached the %s gate %.2f",
			got.Incremental.AllocShare, kind, limit)
	}
	return nil
}

// gateLargeCircuit holds the scale-tier trajectory bitwise: μ (and the
// congestion cost) on the generated 100k circuit are deterministic for the
// recorded (cells, gen seed, run seed), so any drift means the engine's
// search behaviour changed at scale. The ns/iter is printed but not gated
// — it is the recording host's wall clock.
func gateLargeCircuit(w io.Writer, ref, got *LargeCircuitBaseline) error {
	fmt.Fprintf(w, "bench gate [large]: %d cells, %d iters; committed %.0f ns/iter, measured %.0f ns/iter (informational); best-mu %.6f\n",
		ref.Cells, ref.Iters, ref.NsPerIter, got.NsPerIter, got.BestMu)
	if got.BestMu != ref.BestMu {
		return fmt.Errorf("experiments: large-circuit best mu changed: committed %v, measured %v",
			ref.BestMu, got.BestMu)
	}
	if got.Congest != ref.Congest {
		return fmt.Errorf("experiments: large-circuit congestion cost changed: committed %v, measured %v",
			ref.Congest, got.Congest)
	}
	// The overflow cost can legitimately be zero (the clustered start
	// flattens demand below the 2x-average threshold); the peak bin demand
	// never is, so it is the signal that actually discriminates congestion
	// accounting at scale.
	if got.CongestPeak != ref.CongestPeak {
		return fmt.Errorf("experiments: large-circuit peak congestion demand changed: committed %v, measured %v",
			ref.CongestPeak, got.CongestPeak)
	}
	return nil
}

// gateAsyncExchange enforces the async-exchange tentpole. The p50 ratio
// gates on the *measured* pair — both protocols run back to back on the
// gate host, so per-core speed differences cancel exactly like the
// incremental-vs-scratch speedups — and the async best μ (plus the
// exchange activity counters, all virtual-time deterministic) gate
// bitwise against the committed file.
func gateAsyncExchange(w io.Writer, ref, got *ExchangeBaseline) error {
	fmt.Fprintf(w, "bench gate [exchange]: committed sync p50 %d ns vs async p50 %d ns (%.1fx); measured %d vs %d ns (%.1fx), async best-mu %.6f\n",
		ref.SyncP50Ns, ref.AsyncP50Ns, ref.P50Speedup,
		got.SyncP50Ns, got.AsyncP50Ns, got.P50Speedup, got.AsyncBestMu)
	if got.AsyncBestMu != ref.AsyncBestMu {
		return fmt.Errorf("experiments: async exchange best mu changed: committed %v, measured %v",
			ref.AsyncBestMu, got.AsyncBestMu)
	}
	if got.SyncBestMu != ref.SyncBestMu {
		return fmt.Errorf("experiments: sync exchange best mu changed: committed %v, measured %v",
			ref.SyncBestMu, got.SyncBestMu)
	}
	if got.AsyncPosted != ref.AsyncPosted || got.AsyncAdopted != ref.AsyncAdopted ||
		got.AsyncRejected != ref.AsyncRejected || got.AsyncRestores != ref.AsyncRestores ||
		got.AsyncStoreEpoch != ref.AsyncStoreEpoch {
		return fmt.Errorf("experiments: async exchange activity changed: committed posted=%d adopted=%d rejected=%d restores=%d epoch=%d, measured posted=%d adopted=%d rejected=%d restores=%d epoch=%d",
			ref.AsyncPosted, ref.AsyncAdopted, ref.AsyncRejected, ref.AsyncRestores, ref.AsyncStoreEpoch,
			got.AsyncPosted, got.AsyncAdopted, got.AsyncRejected, got.AsyncRestores, got.AsyncStoreEpoch)
	}
	if got.AsyncP50Ns > 0 && float64(got.SyncP50Ns) < asyncExchangeMinSpeedup*float64(got.AsyncP50Ns) {
		return fmt.Errorf("experiments: async exchange p50 %d ns is not >=%.1fx cheaper than sync %d ns",
			got.AsyncP50Ns, asyncExchangeMinSpeedup, got.SyncP50Ns)
	}
	return nil
}

// checkTelemetryKeys asserts every telemetry key the committed baseline
// records still exists in the current EngineSnapshot schema. Keys the
// current schema has that the file lacks are fine — counters are added
// as instrumentation grows, and an old baseline must not fail the gate
// for it — but a recorded key with no current counterpart means a
// counter was removed, which silently breaks every consumer of the
// committed file.
func checkTelemetryKeys(data []byte) error {
	type section struct {
		Telemetry map[string]json.RawMessage `json:"telemetry"`
	}
	type modeSections struct {
		Incremental section `json:"incremental"`
		Scratch     section `json:"scratch"`
	}
	var raw struct {
		Incremental           section       `json:"incremental"`
		Scratch               section       `json:"scratch"`
		WirePowerDelay        *modeSections `json:"wire_power_delay"`
		WirePowerDelayCongest *modeSections `json:"wire_power_delay_congest"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("experiments: parsing telemetry sections: %w", err)
	}
	schemaJSON, err := json.Marshal(&telemetry.EngineSnapshot{})
	if err != nil {
		return err
	}
	schema := map[string]json.RawMessage{}
	if err := json.Unmarshal(schemaJSON, &schema); err != nil {
		return err
	}
	check := func(name string, keys map[string]json.RawMessage) error {
		var missing []string
		for k := range keys {
			if _, ok := schema[k]; !ok {
				missing = append(missing, k)
			}
		}
		if len(missing) == 0 {
			return nil
		}
		sort.Strings(missing)
		return fmt.Errorf("experiments: %s telemetry records keys the current schema no longer produces: %v (added keys are tolerated; removed keys break the baseline)",
			name, missing)
	}
	if err := check("incremental", raw.Incremental.Telemetry); err != nil {
		return err
	}
	if err := check("scratch", raw.Scratch.Telemetry); err != nil {
		return err
	}
	if raw.WirePowerDelay != nil {
		if err := check("wire_power_delay.incremental", raw.WirePowerDelay.Incremental.Telemetry); err != nil {
			return err
		}
		if err := check("wire_power_delay.scratch", raw.WirePowerDelay.Scratch.Telemetry); err != nil {
			return err
		}
	}
	if raw.WirePowerDelayCongest != nil {
		if err := check("wire_power_delay_congest.incremental", raw.WirePowerDelayCongest.Incremental.Telemetry); err != nil {
			return err
		}
		if err := check("wire_power_delay_congest.scratch", raw.WirePowerDelayCongest.Scratch.Telemetry); err != nil {
			return err
		}
	}
	return nil
}

// gateMode applies the three per-mode gates — unchanged trajectory,
// unchanged best μ, speedup within tolerance — to one objective set.
func gateMode(w io.Writer, ref, got *ModeBaseline, refProcs, gotProcs int) error {
	name := ref.Objective
	procs := ""
	if refProcs > 0 {
		procs = fmt.Sprintf(" (gomaxprocs %d→%d)", refProcs, gotProcs)
	}
	fmt.Fprintf(w, "bench gate [%s]: committed %.0f ns/iter at %.2fx over scratch; measured %.0f ns/iter at %.2fx, best-mu %.6f%s\n",
		name, ref.Incremental.NsPerIter, ref.TotalSpeedup,
		got.Incremental.NsPerIter, got.TotalSpeedup, got.Incremental.BestMu, procs)
	if !got.TrajectoryMatch {
		return fmt.Errorf("experiments: %s incremental/scratch trajectories diverged", name)
	}
	if got.Incremental.BestMu != ref.Incremental.BestMu {
		return fmt.Errorf("experiments: %s best mu changed: committed %v, measured %v",
			name, ref.Incremental.BestMu, got.Incremental.BestMu)
	}
	if ref.TotalSpeedup > 0 && got.TotalSpeedup < ref.TotalSpeedup/(1+CheckTolerance) {
		return fmt.Errorf("experiments: %s speedup over scratch regressed: committed %.2fx, measured %.2fx (> %.0f%% tolerance)",
			name, ref.TotalSpeedup, got.TotalSpeedup, CheckTolerance*100)
	}
	return nil
}

// WriteBaseline measures the baseline for the requested objective modes
// ("" = all), writes it as JSON to path, and prints a summary table.
func WriteBaseline(path, objectives string, w io.Writer) error {
	b, err := MeasureBaseline(objectives)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "baseline: %s, %d iters, seed %d\n", b.Circuit, b.Iters, b.Seed)
	row := func(name string, r BaselineRun) {
		fmt.Fprintf(w, "  %-24s %14.0f %14.0f %12.3f %8.4f\n",
			name, r.NsPerIter, r.AllocNsPerIter, r.AllocShare, r.BestMu)
	}
	fmt.Fprintf(w, "  %-24s %14s %14s %12s %8s\n", "mode", "ns/iter", "alloc-ns/iter", "alloc-share", "best-mu")
	if b.Objective != "" {
		row("wp incremental", b.Incremental)
		row("wp scratch", b.Scratch)
		fmt.Fprintf(w, "  wire+power: alloc speedup %.2fx, total speedup %.2fx, trajectory match %v\n",
			b.AllocSpeedup, b.TotalSpeedup, b.TrajectoryMatch)
	}
	if m := b.WirePowerDelay; m != nil {
		row("wpd incremental", m.Incremental)
		row("wpd scratch", m.Scratch)
		fmt.Fprintf(w, "  wire+power+delay: total speedup %.2fx, trajectory match %v\n",
			m.TotalSpeedup, m.TrajectoryMatch)
		fmt.Fprintf(w, "  wpd objective phases (ns/iter, incremental vs scratch):\n")
		for _, name := range []string{"wire", "power", "delay"} {
			fmt.Fprintf(w, "    %-8s %12.0f %12.0f\n", name,
				m.Incremental.ObjectivePhases[name], m.Scratch.ObjectivePhases[name])
		}
	}
	if m := b.WirePowerDelayCongest; m != nil {
		row("wpdc incremental", m.Incremental)
		row("wpdc scratch", m.Scratch)
		fmt.Fprintf(w, "  wire+power+delay+congestion: total speedup %.2fx, trajectory match %v\n",
			m.TotalSpeedup, m.TrajectoryMatch)
		fmt.Fprintf(w, "  wpdc objective phases (ns/iter, incremental vs scratch):\n")
		for _, name := range []string{"wire", "power", "delay", "congestion"} {
			fmt.Fprintf(w, "    %-12s %12.0f %12.0f\n", name,
				m.Incremental.ObjectivePhases[name], m.Scratch.ObjectivePhases[name])
		}
	}
	if l := b.LargeCircuit; l != nil {
		fmt.Fprintf(w, "  large circuit: %d cells (%s), %d iters, clustered start %v, %d congest bins, %.0f ns/iter, best μ %.6f, congestion %.2f (peak demand %.1f)\n",
			l.Cells, l.Objective, l.Iters, l.ClusteredStart, l.CongestBins, l.NsPerIter, l.BestMu, l.Congest, l.CongestPeak)
	}
	if e := b.AsyncExchange; e != nil {
		fmt.Fprintf(w, "  async exchange: %d ranks, %d iters, retry %d; sync p50 %d ns vs async p50 %d ns (%.1fx); async μ %.6f (posted %d, adopted %d, rejected %d, restores %d, epoch %d)\n",
			e.Procs, e.Iters, e.Retry, e.SyncP50Ns, e.AsyncP50Ns, e.P50Speedup,
			e.AsyncBestMu, e.AsyncPosted, e.AsyncAdopted, e.AsyncRejected, e.AsyncRestores, e.AsyncStoreEpoch)
	}
	if len(b.ScanRates) > 0 {
		fmt.Fprintf(w, "  scan prune rates (%d iters, fraction of candidates):\n", scanRateIters)
		fmt.Fprintf(w, "    %-8s %12s %8s %8s %8s %8s %8s\n",
			"circuit", "candidates", "skipped", "bbox", "suffix", "exact", "scored")
		names := make([]string, 0, len(b.ScanRates))
		for n := range b.ScanRates {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			r := b.ScanRates[n]
			fmt.Fprintf(w, "    %-8s %12d %8.3f %8.3f %8.3f %8.3f %8.3f\n",
				n, r.Candidates, r.SkippedBucket, r.PrunedBBox, r.PrunedSuffix, r.BailedExact, r.Scored)
		}
	}
	fmt.Fprintf(w, "  written to %s\n", path)
	return nil
}
