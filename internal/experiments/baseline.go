package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"simevo/internal/core"
	"simevo/internal/fuzzy"
	"simevo/internal/gen"
)

// Baseline captures the incremental-vs-from-scratch performance of the
// engine's hot paths at the BenchmarkProfileShare scale (s1196, the
// wire+power objective, 60 iterations), so future PRs have a recorded
// perf trajectory. simevo-bench -baseline writes it as JSON
// (BENCH_baseline.json at the repo root).
type Baseline struct {
	Circuit   string `json:"circuit"`
	Objective string `json:"objective"`
	Iters     int    `json:"iters"`
	Seed      uint64 `json:"seed"`

	// Incremental is the default engine; Scratch is the
	// DisableIncremental reference — the paper-faithful from-scratch
	// evaluation the pre-incremental engine used.
	Incremental BaselineRun `json:"incremental"`
	Scratch     BaselineRun `json:"scratch"`

	// AllocSpeedup and TotalSpeedup compare scratch vs incremental.
	AllocSpeedup float64 `json:"alloc_speedup"`
	TotalSpeedup float64 `json:"total_speedup"`

	// TrajectoryMatch records the tentpole invariant: both modes must
	// reach the identical best solution (bitwise equal μ).
	TrajectoryMatch bool `json:"trajectory_match"`
}

// BaselineRun is one mode's measurement.
type BaselineRun struct {
	NsPerIter      float64 `json:"ns_per_iter"`
	EvalNsPerIter  float64 `json:"eval_ns_per_iter"`
	AllocNsPerIter float64 `json:"alloc_ns_per_iter"`
	AllocShare     float64 `json:"alloc_share"`
	BestMu         float64 `json:"best_mu"`
}

// MeasureBaseline runs both modes and assembles the report.
func MeasureBaseline() (*Baseline, error) {
	const (
		circuit = "s1196"
		iters   = 60
		seed    = 2006
	)
	run := func(scratch bool) (BaselineRun, uint64, error) {
		ckt, err := gen.Benchmark(circuit)
		if err != nil {
			return BaselineRun{}, 0, err
		}
		cfg := core.DefaultConfig(fuzzy.WirePower)
		cfg.MaxIters = iters
		cfg.Seed = seed
		cfg.DisableIncremental = scratch
		prob, err := core.NewProblem(ckt, cfg)
		if err != nil {
			return BaselineRun{}, 0, err
		}
		eng := prob.NewEngine(0)
		start := time.Now()
		res := eng.Run()
		total := time.Since(start)
		p := eng.Profile()
		_, _, allocShare := p.Shares()
		return BaselineRun{
			NsPerIter:      float64(total.Nanoseconds()) / iters,
			EvalNsPerIter:  float64(p.Eval.Nanoseconds()) / iters,
			AllocNsPerIter: float64(p.Alloc.Nanoseconds()) / iters,
			AllocShare:     allocShare,
			BestMu:         res.BestMu,
		}, res.Best.Fingerprint(), nil
	}

	inc, incFP, err := run(false)
	if err != nil {
		return nil, err
	}
	scr, scrFP, err := run(true)
	if err != nil {
		return nil, err
	}
	return &Baseline{
		Circuit:         circuit,
		Objective:       "wire+power",
		Iters:           iters,
		Seed:            seed,
		Incremental:     inc,
		Scratch:         scr,
		AllocSpeedup:    scr.AllocNsPerIter / inc.AllocNsPerIter,
		TotalSpeedup:    scr.NsPerIter / inc.NsPerIter,
		TrajectoryMatch: inc.BestMu == scr.BestMu && incFP == scrFP,
	}, nil
}

// WriteBaseline measures the baseline, writes it as JSON to path, and
// prints a summary table.
func WriteBaseline(path string, w io.Writer) error {
	b, err := MeasureBaseline()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "baseline: %s, %s, %d iters, seed %d\n", b.Circuit, b.Objective, b.Iters, b.Seed)
	fmt.Fprintf(w, "  %-12s %14s %14s %12s %8s\n", "mode", "ns/iter", "alloc-ns/iter", "alloc-share", "best-mu")
	row := func(name string, r BaselineRun) {
		fmt.Fprintf(w, "  %-12s %14.0f %14.0f %12.3f %8.4f\n",
			name, r.NsPerIter, r.AllocNsPerIter, r.AllocShare, r.BestMu)
	}
	row("incremental", b.Incremental)
	row("scratch", b.Scratch)
	fmt.Fprintf(w, "  alloc speedup %.2fx, total speedup %.2fx, trajectory match %v\n",
		b.AllocSpeedup, b.TotalSpeedup, b.TrajectoryMatch)
	fmt.Fprintf(w, "  written to %s\n", path)
	return nil
}
