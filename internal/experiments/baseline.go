package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"simevo/internal/core"
	"simevo/internal/fuzzy"
	"simevo/internal/gen"
	"simevo/internal/telemetry"
)

// Baseline captures the incremental-vs-from-scratch performance of the
// engine's hot paths at the BenchmarkProfileShare scale (s1196, 60
// iterations), so future PRs have a recorded perf trajectory. The
// top-level fields measure the paper's two-objective (wire+power) mode;
// WirePowerDelay adds the three-objective mode whose evaluation runs the
// full cost pipeline — summation-tree power and dirty-cone STA — against
// the full-recompute reference. simevo-bench -baseline writes it as JSON
// (BENCH_baseline.json at the repo root).
type Baseline struct {
	Circuit   string `json:"circuit"`
	Objective string `json:"objective"`
	Iters     int    `json:"iters"`
	Seed      uint64 `json:"seed"`

	// Incremental is the default engine; Scratch is the
	// DisableIncremental reference — the paper-faithful from-scratch
	// evaluation the pre-incremental engine used.
	Incremental BaselineRun `json:"incremental"`
	Scratch     BaselineRun `json:"scratch"`

	// AllocSpeedup and TotalSpeedup compare scratch vs incremental.
	AllocSpeedup float64 `json:"alloc_speedup"`
	TotalSpeedup float64 `json:"total_speedup"`

	// TrajectoryMatch records the tentpole invariant: both modes must
	// reach the identical best solution (bitwise equal μ).
	TrajectoryMatch bool `json:"trajectory_match"`

	// GoMaxProcs and EvalWorkers record the measurement context: the
	// incremental run fans goodness evaluation (and the vacancy scan)
	// across the engine pool when more than one CPU is available, and
	// the numbers are only comparable at similar parallelism.
	GoMaxProcs  int `json:"gomaxprocs"`
	EvalWorkers int `json:"eval_workers"`

	// WirePowerDelay is the three-objective mode measurement (nil when
	// the baseline was recorded with -objectives excluding it).
	WirePowerDelay *ModeBaseline `json:"wire_power_delay,omitempty"`
}

// ModeBaseline is one objective set's incremental-vs-scratch measurement.
type ModeBaseline struct {
	Objective       string      `json:"objective"`
	Incremental     BaselineRun `json:"incremental"`
	Scratch         BaselineRun `json:"scratch"`
	TotalSpeedup    float64     `json:"total_speedup"`
	TrajectoryMatch bool        `json:"trajectory_match"`
}

// BaselineRun is one mode's measurement. ObjectivePhases breaks the cost
// pipeline's evaluation down per objective (ns/iter keyed by objective
// name) — for the delay mode it shows how much of the iteration the
// dirty-cone STA actually costs against its full-recompute counterpart.
type BaselineRun struct {
	NsPerIter       float64            `json:"ns_per_iter"`
	EvalNsPerIter   float64            `json:"eval_ns_per_iter"`
	AllocNsPerIter  float64            `json:"alloc_ns_per_iter"`
	AllocShare      float64            `json:"alloc_share"`
	BestMu          float64            `json:"best_mu"`
	ObjectivePhases map[string]float64 `json:"objective_phase_ns_per_iter,omitempty"`
	// Telemetry records the engine's phase counters for the kept run.
	// The work counters (iterations, evals, dirty nets, prune and cache
	// statistics) are deterministic and reproducible across hosts; the
	// *_ns phase timings are this host's wall clock.
	Telemetry *telemetry.EngineSnapshot `json:"telemetry,omitempty"`
}

const (
	baselineCircuit = "s1196"
	baselineIters   = 60
	baselineSeed    = 2006
)

// measureMode runs one (objective set, mode) configuration and reports
// the timings, best μ, and best-placement fingerprint.
func measureMode(obj fuzzy.Objectives, scratch bool, evalWorkers int) (BaselineRun, uint64, error) {
	ckt, err := gen.Benchmark(baselineCircuit)
	if err != nil {
		return BaselineRun{}, 0, err
	}
	cfg := core.DefaultConfig(obj)
	cfg.MaxIters = baselineIters
	cfg.Seed = baselineSeed
	cfg.DisableIncremental = scratch
	if !scratch {
		cfg.EvalWorkers = evalWorkers
	}
	prob, err := core.NewProblem(ckt, cfg)
	if err != nil {
		return BaselineRun{}, 0, err
	}
	eng := prob.NewEngine(0)
	start := time.Now()
	res := eng.Run()
	total := time.Since(start)
	p := eng.Profile()
	_, _, allocShare := p.Shares()
	phases := make(map[string]float64)
	for name, d := range eng.CostPhases() {
		phases[name] = float64(d.Nanoseconds()) / baselineIters
	}
	tel := res.Telemetry
	return BaselineRun{
		NsPerIter:       float64(total.Nanoseconds()) / baselineIters,
		EvalNsPerIter:   float64(p.Eval.Nanoseconds()) / baselineIters,
		AllocNsPerIter:  float64(p.Alloc.Nanoseconds()) / baselineIters,
		AllocShare:      allocShare,
		BestMu:          res.BestMu,
		ObjectivePhases: phases,
		Telemetry:       &tel,
	}, res.Best.Fingerprint(), nil
}

// measureModeBest repeats a measurement and keeps the fastest run — the
// standard noise floor for wall-clock microbenchmarks. Solution quality is
// identical across repetitions (the run is deterministic), so only the
// timings differ.
func measureModeBest(obj fuzzy.Objectives, scratch bool, evalWorkers int) (BaselineRun, uint64, error) {
	const reps = 3
	r, fp, err := measureMode(obj, scratch, evalWorkers)
	if err != nil {
		return r, fp, err
	}
	for i := 1; i < reps; i++ {
		r2, _, err := measureMode(obj, scratch, evalWorkers)
		if err != nil {
			return r, fp, err
		}
		if r2.NsPerIter < r.NsPerIter {
			r = r2
		}
	}
	return r, fp, nil
}

// measureObjectiveMode measures both engine modes for one objective set.
func measureObjectiveMode(obj fuzzy.Objectives, evalWorkers int) (*ModeBaseline, error) {
	inc, incFP, err := measureModeBest(obj, false, evalWorkers)
	if err != nil {
		return nil, err
	}
	scr, scrFP, err := measureModeBest(obj, true, evalWorkers)
	if err != nil {
		return nil, err
	}
	return &ModeBaseline{
		Objective:       obj.String(),
		Incremental:     inc,
		Scratch:         scr,
		TotalSpeedup:    scr.NsPerIter / inc.NsPerIter,
		TrajectoryMatch: inc.BestMu == scr.BestMu && incFP == scrFP,
	}, nil
}

// MeasureBaseline runs both modes for the requested objective sets and
// assembles the report. The incremental engine mode is measured as it
// ships: EvalWorkers engages the parallel goodness evaluation when the
// host has more than one CPU (the trajectory is bitwise identical either
// way — only the wall clock changes). The scratch reference stays serial.
// objectives holds "wire+power" and/or "wire+power+delay" ("" measures
// both).
func MeasureBaseline(objectives string) (*Baseline, error) {
	evalWorkers := runtime.GOMAXPROCS(0)
	if evalWorkers > 8 {
		evalWorkers = 8
	}
	if evalWorkers <= 1 {
		evalWorkers = 0
	}
	return measureBaselineWith(evalWorkers, objectives)
}

// parseObjectiveModes maps the -objectives flag to the measured sets.
func parseObjectiveModes(objectives string) (wp, wpd bool, err error) {
	if objectives == "" {
		return true, true, nil
	}
	for _, o := range strings.Split(objectives, ",") {
		switch strings.TrimSpace(strings.ToLower(o)) {
		case "wire+power", "wp":
			wp = true
		case "wire+power+delay", "wpd":
			wpd = true
		case "":
		default:
			return false, false, fmt.Errorf("experiments: unknown objective mode %q (have wire+power, wire+power+delay)", o)
		}
	}
	if !wp && !wpd {
		return false, false, fmt.Errorf("experiments: no objective mode selected")
	}
	return wp, wpd, nil
}

// measureBaselineWith measures at a pinned evaluation fan-out, so the
// bench gate can reproduce the committed baseline's configuration.
func measureBaselineWith(evalWorkers int, objectives string) (*Baseline, error) {
	wp, wpd, err := parseObjectiveModes(objectives)
	if err != nil {
		return nil, err
	}
	b := &Baseline{
		Circuit:     baselineCircuit,
		Objective:   "wire+power",
		Iters:       baselineIters,
		Seed:        baselineSeed,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		EvalWorkers: evalWorkers,
	}
	if !wp {
		// Without the wire+power measurement the legacy top-level fields
		// stay zero; blank the objective label so the file cannot be
		// misread as recording a diverged wp trajectory.
		b.Objective = ""
	} else {
		mode, err := measureObjectiveMode(fuzzy.WirePower, evalWorkers)
		if err != nil {
			return nil, err
		}
		b.Incremental = mode.Incremental
		b.Scratch = mode.Scratch
		b.AllocSpeedup = mode.Scratch.AllocNsPerIter / mode.Incremental.AllocNsPerIter
		b.TotalSpeedup = mode.TotalSpeedup
		b.TrajectoryMatch = mode.TrajectoryMatch
	}
	if wpd {
		mode, err := measureObjectiveMode(fuzzy.WirePowerDelay, evalWorkers)
		if err != nil {
			return nil, err
		}
		b.WirePowerDelay = mode
	}
	return b, nil
}

// CheckTolerance is the bench-regression gate: CheckBaseline fails when
// a measured incremental-over-scratch speedup falls more than this
// fraction below the committed baseline's.
const CheckTolerance = 0.15

// CheckBaseline re-measures the baseline and compares it against the
// committed JSON at path: the solution trajectories must be unchanged
// (identical best μ, both modes matching) and the incremental-over-scratch
// speedups — for wire+power and, when the committed file records it, for
// wire+power+delay — must not have regressed by more than CheckTolerance.
// The measurement is pinned to the committed baseline's parallelism
// (GOMAXPROCS and EvalWorkers are restored from the JSON), so a serial
// baseline is never compared against a multi-core run or vice versa;
// per-core speed differences between hosts remain — refresh the baseline
// from an environment comparable to the gate's. Used by the CI bench
// gate.
func CheckBaseline(path string, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var ref Baseline
	if err := json.Unmarshal(data, &ref); err != nil {
		return fmt.Errorf("experiments: parsing %s: %w", path, err)
	}
	if ref.GoMaxProcs > 0 && ref.GoMaxProcs != runtime.GOMAXPROCS(0) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(ref.GoMaxProcs))
	}
	// Gate exactly the modes the committed file records: a baseline
	// written with -objectives wire+power+delay carries zero-valued
	// top-level wire+power fields, which must not be measured against.
	wpRecorded := ref.Incremental.NsPerIter > 0
	var modes []string
	if wpRecorded {
		modes = append(modes, "wire+power")
	}
	if ref.WirePowerDelay != nil {
		modes = append(modes, "wire+power+delay")
	}
	if len(modes) == 0 {
		return fmt.Errorf("experiments: %s records no objective mode to gate", path)
	}
	got, err := measureBaselineWith(ref.EvalWorkers, strings.Join(modes, ","))
	if err != nil {
		return err
	}
	// Gate on the incremental-over-scratch speedup, not absolute wall
	// clock: both runs share the host, so per-core speed differences
	// between the machine that recorded the baseline and the one running
	// the gate cancel out. The absolute ns/iter is still printed for the
	// log trail.
	if wpRecorded {
		wp := ModeBaseline{Objective: "wire+power",
			Incremental: ref.Incremental, Scratch: ref.Scratch,
			TotalSpeedup: ref.TotalSpeedup, TrajectoryMatch: ref.TrajectoryMatch}
		gotWP := ModeBaseline{Incremental: got.Incremental,
			TotalSpeedup: got.TotalSpeedup, TrajectoryMatch: got.TrajectoryMatch}
		if err := gateMode(w, &wp, &gotWP, ref.GoMaxProcs, got.GoMaxProcs); err != nil {
			return err
		}
	}
	if ref.WirePowerDelay != nil {
		if err := gateMode(w, ref.WirePowerDelay, got.WirePowerDelay, 0, 0); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "bench gate: ok")
	return nil
}

// gateMode applies the three per-mode gates — unchanged trajectory,
// unchanged best μ, speedup within tolerance — to one objective set.
func gateMode(w io.Writer, ref, got *ModeBaseline, refProcs, gotProcs int) error {
	name := ref.Objective
	procs := ""
	if refProcs > 0 {
		procs = fmt.Sprintf(" (gomaxprocs %d→%d)", refProcs, gotProcs)
	}
	fmt.Fprintf(w, "bench gate [%s]: committed %.0f ns/iter at %.2fx over scratch; measured %.0f ns/iter at %.2fx, best-mu %.6f%s\n",
		name, ref.Incremental.NsPerIter, ref.TotalSpeedup,
		got.Incremental.NsPerIter, got.TotalSpeedup, got.Incremental.BestMu, procs)
	if !got.TrajectoryMatch {
		return fmt.Errorf("experiments: %s incremental/scratch trajectories diverged", name)
	}
	if got.Incremental.BestMu != ref.Incremental.BestMu {
		return fmt.Errorf("experiments: %s best mu changed: committed %v, measured %v",
			name, ref.Incremental.BestMu, got.Incremental.BestMu)
	}
	if ref.TotalSpeedup > 0 && got.TotalSpeedup < ref.TotalSpeedup/(1+CheckTolerance) {
		return fmt.Errorf("experiments: %s speedup over scratch regressed: committed %.2fx, measured %.2fx (> %.0f%% tolerance)",
			name, ref.TotalSpeedup, got.TotalSpeedup, CheckTolerance*100)
	}
	return nil
}

// WriteBaseline measures the baseline for the requested objective modes
// ("" = both), writes it as JSON to path, and prints a summary table.
func WriteBaseline(path, objectives string, w io.Writer) error {
	b, err := MeasureBaseline(objectives)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "baseline: %s, %d iters, seed %d\n", b.Circuit, b.Iters, b.Seed)
	row := func(name string, r BaselineRun) {
		fmt.Fprintf(w, "  %-24s %14.0f %14.0f %12.3f %8.4f\n",
			name, r.NsPerIter, r.AllocNsPerIter, r.AllocShare, r.BestMu)
	}
	fmt.Fprintf(w, "  %-24s %14s %14s %12s %8s\n", "mode", "ns/iter", "alloc-ns/iter", "alloc-share", "best-mu")
	if b.Objective != "" {
		row("wp incremental", b.Incremental)
		row("wp scratch", b.Scratch)
		fmt.Fprintf(w, "  wire+power: alloc speedup %.2fx, total speedup %.2fx, trajectory match %v\n",
			b.AllocSpeedup, b.TotalSpeedup, b.TrajectoryMatch)
	}
	if m := b.WirePowerDelay; m != nil {
		row("wpd incremental", m.Incremental)
		row("wpd scratch", m.Scratch)
		fmt.Fprintf(w, "  wire+power+delay: total speedup %.2fx, trajectory match %v\n",
			m.TotalSpeedup, m.TrajectoryMatch)
		fmt.Fprintf(w, "  wpd objective phases (ns/iter, incremental vs scratch):\n")
		for _, name := range []string{"wire", "power", "delay"} {
			fmt.Fprintf(w, "    %-8s %12.0f %12.0f\n", name,
				m.Incremental.ObjectivePhases[name], m.Scratch.ObjectivePhases[name])
		}
	}
	fmt.Fprintf(w, "  written to %s\n", path)
	return nil
}
