package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"simevo/internal/core"
	"simevo/internal/fuzzy"
	"simevo/internal/gen"
)

// Baseline captures the incremental-vs-from-scratch performance of the
// engine's hot paths at the BenchmarkProfileShare scale (s1196, the
// wire+power objective, 60 iterations), so future PRs have a recorded
// perf trajectory. simevo-bench -baseline writes it as JSON
// (BENCH_baseline.json at the repo root).
type Baseline struct {
	Circuit   string `json:"circuit"`
	Objective string `json:"objective"`
	Iters     int    `json:"iters"`
	Seed      uint64 `json:"seed"`

	// Incremental is the default engine; Scratch is the
	// DisableIncremental reference — the paper-faithful from-scratch
	// evaluation the pre-incremental engine used.
	Incremental BaselineRun `json:"incremental"`
	Scratch     BaselineRun `json:"scratch"`

	// AllocSpeedup and TotalSpeedup compare scratch vs incremental.
	AllocSpeedup float64 `json:"alloc_speedup"`
	TotalSpeedup float64 `json:"total_speedup"`

	// TrajectoryMatch records the tentpole invariant: both modes must
	// reach the identical best solution (bitwise equal μ).
	TrajectoryMatch bool `json:"trajectory_match"`

	// GoMaxProcs and EvalWorkers record the measurement context: the
	// incremental run fans goodness evaluation (and the vacancy scan)
	// across the engine pool when more than one CPU is available, and
	// the numbers are only comparable at similar parallelism.
	GoMaxProcs  int `json:"gomaxprocs"`
	EvalWorkers int `json:"eval_workers"`
}

// BaselineRun is one mode's measurement.
type BaselineRun struct {
	NsPerIter      float64 `json:"ns_per_iter"`
	EvalNsPerIter  float64 `json:"eval_ns_per_iter"`
	AllocNsPerIter float64 `json:"alloc_ns_per_iter"`
	AllocShare     float64 `json:"alloc_share"`
	BestMu         float64 `json:"best_mu"`
}

// MeasureBaseline runs both modes and assembles the report. The
// incremental engine mode is measured as it ships: EvalWorkers engages
// the parallel goodness evaluation when the host has more than one CPU
// (the trajectory is bitwise identical either way — only the wall clock
// changes). The scratch reference stays serial.
func MeasureBaseline() (*Baseline, error) {
	evalWorkers := runtime.GOMAXPROCS(0)
	if evalWorkers > 8 {
		evalWorkers = 8
	}
	if evalWorkers <= 1 {
		evalWorkers = 0
	}
	return measureBaselineWith(evalWorkers)
}

// measureBaselineWith measures at a pinned evaluation fan-out, so the
// bench gate can reproduce the committed baseline's configuration.
func measureBaselineWith(evalWorkers int) (*Baseline, error) {
	const (
		circuit = "s1196"
		iters   = 60
		seed    = 2006
	)
	run := func(scratch bool) (BaselineRun, uint64, error) {
		ckt, err := gen.Benchmark(circuit)
		if err != nil {
			return BaselineRun{}, 0, err
		}
		cfg := core.DefaultConfig(fuzzy.WirePower)
		cfg.MaxIters = iters
		cfg.Seed = seed
		cfg.DisableIncremental = scratch
		if !scratch {
			cfg.EvalWorkers = evalWorkers
		}
		prob, err := core.NewProblem(ckt, cfg)
		if err != nil {
			return BaselineRun{}, 0, err
		}
		eng := prob.NewEngine(0)
		start := time.Now()
		res := eng.Run()
		total := time.Since(start)
		p := eng.Profile()
		_, _, allocShare := p.Shares()
		return BaselineRun{
			NsPerIter:      float64(total.Nanoseconds()) / iters,
			EvalNsPerIter:  float64(p.Eval.Nanoseconds()) / iters,
			AllocNsPerIter: float64(p.Alloc.Nanoseconds()) / iters,
			AllocShare:     allocShare,
			BestMu:         res.BestMu,
		}, res.Best.Fingerprint(), nil
	}

	// Each mode is measured several times and the fastest run kept — the
	// standard noise floor for wall-clock microbenchmarks. Solution
	// quality is identical across repetitions (the run is deterministic),
	// so only the timings differ.
	const reps = 3
	best := func(scratch bool) (BaselineRun, uint64, error) {
		r, fp, err := run(scratch)
		if err != nil {
			return r, fp, err
		}
		for i := 1; i < reps; i++ {
			r2, _, err := run(scratch)
			if err != nil {
				return r, fp, err
			}
			if r2.NsPerIter < r.NsPerIter {
				r = r2
			}
		}
		return r, fp, nil
	}
	inc, incFP, err := best(false)
	if err != nil {
		return nil, err
	}
	scr, scrFP, err := best(true)
	if err != nil {
		return nil, err
	}
	return &Baseline{
		Circuit:         circuit,
		Objective:       "wire+power",
		Iters:           iters,
		Seed:            seed,
		Incremental:     inc,
		Scratch:         scr,
		AllocSpeedup:    scr.AllocNsPerIter / inc.AllocNsPerIter,
		TotalSpeedup:    scr.NsPerIter / inc.NsPerIter,
		TrajectoryMatch: inc.BestMu == scr.BestMu && incFP == scrFP,
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		EvalWorkers:     evalWorkers,
	}, nil
}

// CheckTolerance is the bench-regression gate: CheckBaseline fails when
// the measured incremental-over-scratch speedup falls more than this
// fraction below the committed baseline's.
const CheckTolerance = 0.15

// CheckBaseline re-measures the baseline and compares it against the
// committed JSON at path: the solution trajectory must be unchanged
// (identical best μ, both modes matching) and the incremental-engine
// ns/iter must not have regressed by more than CheckTolerance. The
// measurement is pinned to the committed baseline's parallelism
// (GOMAXPROCS and EvalWorkers are restored from the JSON), so a serial
// baseline is never compared against a multi-core run or vice versa;
// per-core speed differences between hosts remain — refresh the baseline
// from an environment comparable to the gate's. Used by the CI bench
// gate.
func CheckBaseline(path string, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var ref Baseline
	if err := json.Unmarshal(data, &ref); err != nil {
		return fmt.Errorf("experiments: parsing %s: %w", path, err)
	}
	if ref.GoMaxProcs > 0 && ref.GoMaxProcs != runtime.GOMAXPROCS(0) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(ref.GoMaxProcs))
	}
	got, err := measureBaselineWith(ref.EvalWorkers)
	if err != nil {
		return err
	}
	// Gate on the incremental-over-scratch speedup, not absolute wall
	// clock: both runs share the host, so per-core speed differences
	// between the machine that recorded the baseline and the one running
	// the gate cancel out. The absolute ns/iter is still printed for the
	// log trail.
	fmt.Fprintf(w, "bench gate: committed %.0f ns/iter at %.2fx over scratch (gomaxprocs %d); measured %.0f ns/iter at %.2fx (gomaxprocs %d), best-mu %.6f\n",
		ref.Incremental.NsPerIter, ref.TotalSpeedup, ref.GoMaxProcs,
		got.Incremental.NsPerIter, got.TotalSpeedup, got.GoMaxProcs, got.Incremental.BestMu)
	if !got.TrajectoryMatch {
		return fmt.Errorf("experiments: incremental/scratch trajectories diverged")
	}
	if got.Incremental.BestMu != ref.Incremental.BestMu {
		return fmt.Errorf("experiments: best mu changed: committed %v, measured %v",
			ref.Incremental.BestMu, got.Incremental.BestMu)
	}
	if ref.TotalSpeedup > 0 && got.TotalSpeedup < ref.TotalSpeedup/(1+CheckTolerance) {
		return fmt.Errorf("experiments: speedup over scratch regressed: committed %.2fx, measured %.2fx (> %.0f%% tolerance)",
			ref.TotalSpeedup, got.TotalSpeedup, CheckTolerance*100)
	}
	fmt.Fprintln(w, "bench gate: ok")
	return nil
}

// WriteBaseline measures the baseline, writes it as JSON to path, and
// prints a summary table.
func WriteBaseline(path string, w io.Writer) error {
	b, err := MeasureBaseline()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "baseline: %s, %s, %d iters, seed %d\n", b.Circuit, b.Objective, b.Iters, b.Seed)
	fmt.Fprintf(w, "  %-12s %14s %14s %12s %8s\n", "mode", "ns/iter", "alloc-ns/iter", "alloc-share", "best-mu")
	row := func(name string, r BaselineRun) {
		fmt.Fprintf(w, "  %-12s %14.0f %14.0f %12.3f %8.4f\n",
			name, r.NsPerIter, r.AllocNsPerIter, r.AllocShare, r.BestMu)
	}
	row("incremental", b.Incremental)
	row("scratch", b.Scratch)
	fmt.Fprintf(w, "  alloc speedup %.2fx, total speedup %.2fx, trajectory match %v\n",
		b.AllocSpeedup, b.TotalSpeedup, b.TrajectoryMatch)
	fmt.Fprintf(w, "  written to %s\n", path)
	return nil
}
