// Package experiments regenerates the paper's evaluation artifacts: the
// Section 4 runtime profile and Tables 1-4. Each experiment prints a text
// table in the paper's layout; EXPERIMENTS.md records paper-vs-measured
// values produced by this harness.
//
// Iteration counts follow the paper at Scale.Div == 1 (Table 2: serial
// 3500, parallel 4000 + 500 per extra processor; Table 3: serial 5000,
// parallel 6000 + 1000; Table 4: 2500 everywhere). Scaled-down runs divide
// every count by Scale.Div, which preserves the comparisons (all runs in a
// table shrink together) while keeping the harness fast.
package experiments

import (
	"fmt"
	"io"
	"time"

	"simevo/internal/core"
	"simevo/internal/fuzzy"
	"simevo/internal/gen"
	"simevo/internal/mpi"
	"simevo/internal/netlist"
	"simevo/internal/parallel"
	"simevo/internal/stats"
)

// Scale selects experiment sizes.
type Scale struct {
	Label string
	// Div divides every iteration count (1 = paper scale).
	Div int
	// Circuits for Tables 1-3; T4Circuits for Table 4.
	Circuits   []string
	T4Circuits []string
	// Procs for Tables 1-3 (paper: 2..5); T4Procs for Table 4 (paper:
	// 3..5, one rank is the central store).
	Procs   []int
	T4Procs []int
	// Retries for Table 4 (paper: 50, 100, 150, 200).
	Retries []int
	Seed    uint64
	// Net is the interconnect model (paper: MPICH over fast Ethernet).
	Net mpi.NetModel
}

// PaperScale reproduces the paper's exact experiment sizes. Expect multi-
// hour runtimes on the s3330 rows, as in the original.
func PaperScale() Scale {
	return Scale{
		Label:      "paper",
		Div:        1,
		Circuits:   []string{"s1196", "s1488", "s1494", "s1238", "s3330"},
		T4Circuits: []string{"s1494", "s1238"},
		Procs:      []int{2, 3, 4, 5},
		T4Procs:    []int{3, 4, 5},
		Retries:    []int{50, 100, 150, 200},
		Seed:       2006,
		Net:        mpi.FastEthernet(),
	}
}

// QuickScale divides iteration counts by 10: minutes instead of hours,
// same qualitative shapes.
func QuickScale() Scale {
	s := PaperScale()
	s.Label = "quick (iterations / 10)"
	s.Div = 10
	return s
}

// TinyScale is a smoke-test scale for CI and Go benchmarks.
func TinyScale() Scale {
	s := PaperScale()
	s.Label = "tiny (iterations / 50, two circuits)"
	s.Div = 50
	s.Circuits = []string{"s1238", "s1196"}
	s.T4Circuits = []string{"s1238"}
	s.Procs = []int{2, 3, 5}
	s.T4Procs = []int{3, 5}
	s.Retries = []int{5, 20}
	return s
}

func (s Scale) div(iters int) int {
	d := s.Div
	if d < 1 {
		d = 1
	}
	v := iters / d
	if v < 5 {
		v = 5
	}
	return v
}

// Paper iteration counts (Section 6.2, 6.3).
func (s Scale) serialIters2() int   { return s.div(3500) }
func (s Scale) parIters2(p int) int { return s.div(4000 + 500*(p-2)) }
func (s Scale) serialIters3() int   { return s.div(5000) }
func (s Scale) parIters3(p int) int { return s.div(6000 + 1000*(p-2)) }
func (s Scale) t3Iters() int        { return s.div(2500) }
func (s Scale) problem(name string, obj fuzzy.Objectives, iters int) (*core.Problem, error) {
	ckt, err := gen.Benchmark(name)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(obj)
	cfg.MaxIters = iters
	cfg.Seed = s.Seed
	return core.NewProblem(ckt, cfg)
}

// runSerial executes the serial engine and measures its wall time (the
// serial algorithm is single-threaded, so wall time is directly comparable
// with the parallel virtual times).
func runSerial(prob *core.Problem) (*core.Result, time.Duration) {
	eng := prob.NewEngine(0)
	start := time.Now()
	res := eng.Run()
	return res, time.Since(start)
}

func cells(name string) int {
	ckt, err := gen.Benchmark(name)
	if err != nil {
		return 0
	}
	return ckt.NumMovable()
}

var _ = netlist.ComputeStats // keep the import for documentation references

// Profile regenerates the Section 4 experiment: the share of runtime spent
// in each SimE operator for the two- and three-objective serial versions.
func Profile(sc Scale, w io.Writer) error {
	tb := stats.NewTable(
		fmt.Sprintf("Section 4 profile — operator runtime shares (%s scale)", sc.Label),
		"Ckt", "Objectives", "Alloc%", "Eval%", "Select%", "Time")
	for _, name := range sc.Circuits {
		for _, obj := range []fuzzy.Objectives{fuzzy.WirePower, fuzzy.WirePowerDelay} {
			prob, err := sc.problem(name, obj, sc.div(3500))
			if err != nil {
				return err
			}
			eng := prob.NewEngine(0)
			eng.Run()
			e, s, a := eng.Profile().Shares()
			tb.AddRow(name, obj.String(),
				fmt.Sprintf("%.1f", a*100),
				fmt.Sprintf("%.1f", e*100),
				fmt.Sprintf("%.1f", s*100),
				stats.Seconds(eng.Profile().Total()))
		}
	}
	tb.AddComment("paper: allocation 98.4%%/98.5%%, wirelength+goodness ~1%%, delay 0.2%%")
	_, err := fmt.Fprintln(w, tb)
	return err
}

// Table1 regenerates the Type I experiment: serial runtime vs parallel
// runtime for p = 2..5, two objectives. The paper's result: no benefit —
// a roughly constant slowdown, flat in p.
func Table1(sc Scale, w io.Writer) error {
	tb := stats.NewTable(
		fmt.Sprintf("Table 1. Results for Type I Parallel SimE (%s scale)", sc.Label),
		append([]string{"Ckt", "Cells", "Seq"}, procHeaders(sc.Procs)...)...)
	for _, name := range sc.Circuits {
		iters := sc.serialIters2()
		prob, err := sc.problem(name, fuzzy.WirePower, iters)
		if err != nil {
			return err
		}
		_, serialTime := runSerial(prob)

		row := []string{name, fmt.Sprint(cells(name)), stats.Seconds(serialTime)}
		for _, p := range sc.Procs {
			prob, err := sc.problem(name, fuzzy.WirePower, iters)
			if err != nil {
				return err
			}
			res, err := parallel.RunTypeI(prob, parallel.Options{Procs: p, Net: &sc.Net})
			if err != nil {
				return err
			}
			row = append(row, stats.Seconds(res.VirtualTime))
		}
		tb.AddRow(row...)
	}
	tb.AddComment("runtimes in seconds; paper shape: parallel ~1.4x serial, flat in p")
	_, err := fmt.Fprintln(w, tb)
	return err
}

func procHeaders(procs []int) []string {
	out := make([]string, len(procs))
	for i, p := range procs {
		out[i] = fmt.Sprintf("p=%d", p)
	}
	return out
}

// typeIITable is the shared harness for Tables 2 and 3.
func typeIITable(sc Scale, w io.Writer, obj fuzzy.Objectives, title string,
	serialIters int, parIters func(p int) int) error {

	headers := []string{"Ckt", "mu(s)", "Seq"}
	for _, pat := range []string{"F", "R"} {
		for _, p := range sc.Procs {
			headers = append(headers, fmt.Sprintf("%s p=%d", pat, p))
		}
	}
	tb := stats.NewTable(title, headers...)

	for _, name := range sc.Circuits {
		prob, err := sc.problem(name, obj, serialIters)
		if err != nil {
			return err
		}
		serial, serialTime := runSerial(prob)
		row := []string{name, fmt.Sprintf("%.3f", serial.BestMu), stats.Seconds(serialTime)}

		patterns := []parallel.RowPattern{
			parallel.FixedPattern{},
			parallel.NewRandomPattern(sc.Seed),
		}
		for _, pattern := range patterns {
			for _, p := range sc.Procs {
				prob, err := sc.problem(name, obj, parIters(p))
				if err != nil {
					return err
				}
				res, err := parallel.RunTypeII(prob, parallel.Options{
					Procs:    p,
					Net:      &sc.Net,
					Pattern:  pattern,
					TargetMu: serial.BestMu,
				})
				if err != nil {
					return err
				}
				t := res.VirtualTime
				if res.ReachedTarget {
					t = res.TimeToTarget
				}
				row = append(row, stats.TimeCell(t, res.ReachedTarget, res.BestMu, serial.BestMu))
			}
		}
		tb.AddRow(row...)
	}
	tb.AddComment("F = fixed row pattern, R = random row pattern; cells show time to")
	tb.AddComment("best serial quality, or total time with (%% of serial quality) when missed")
	_, err := fmt.Fprintln(w, tb)
	return err
}

// Table2 regenerates the wirelength+power Type II experiment.
func Table2(sc Scale, w io.Writer) error {
	return typeIITable(sc, w, fuzzy.WirePower,
		fmt.Sprintf("Table 2. Wirelength-Power Type II Parallel SimE (%s scale)", sc.Label),
		sc.serialIters2(), sc.parIters2)
}

// Table3 regenerates the wirelength+power+delay Type II experiment.
func Table3(sc Scale, w io.Writer) error {
	return typeIITable(sc, w, fuzzy.WirePowerDelay,
		fmt.Sprintf("Table 3. Wirelength-Power-Delay Type II Parallel SimE (%s scale)", sc.Label),
		sc.serialIters3(), sc.parIters3)
}

// Table4 regenerates the Type III experiment: runtimes for several retry
// thresholds and processor counts. The paper's result: runtimes track the
// serial algorithm; higher retry thresholds give slightly better quality.
func Table4(sc Scale, w io.Writer) error {
	tb := stats.NewTable(
		fmt.Sprintf("Table 4. Results for Type III Parallel SimE (%s scale)", sc.Label),
		append([]string{"Ckt", "mu(s)", "Seq", "Retry"}, procHeaders(sc.T4Procs)...)...)

	for _, name := range sc.T4Circuits {
		iters := sc.t3Iters()
		prob, err := sc.problem(name, fuzzy.WirePower, iters)
		if err != nil {
			return err
		}
		serial, serialTime := runSerial(prob)

		for i, retry := range sc.Retries {
			row := []string{"", "", "", fmt.Sprint(retry)}
			if i == 0 {
				row[0], row[1], row[2] = name, fmt.Sprintf("%.3f", serial.BestMu), stats.Seconds(serialTime)
			}
			for _, p := range sc.T4Procs {
				prob, err := sc.problem(name, fuzzy.WirePower, iters)
				if err != nil {
					return err
				}
				res, err := parallel.RunTypeIII(prob, parallel.Options{
					Procs: p, Net: &sc.Net, Retry: retry,
				})
				if err != nil {
					return err
				}
				cell := stats.Seconds(res.VirtualTime)
				if res.BestMu > serial.BestMu {
					cell += "*" // quality exceeded serial, as the paper observes
				}
				row = append(row, cell)
			}
			tb.AddRow(row...)
		}
	}
	tb.AddComment("* = parallel quality exceeded the serial run (paper: occurs at higher retry values)")
	_, err := fmt.Fprintln(w, tb)
	return err
}

// All runs every experiment in paper order.
func All(sc Scale, w io.Writer) error {
	steps := []func(Scale, io.Writer) error{Profile, Table1, Table2, Table3, Table4}
	for _, f := range steps {
		if err := f(sc, w); err != nil {
			return err
		}
	}
	return nil
}
