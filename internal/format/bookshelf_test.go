package format

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"simevo/internal/core"
	"simevo/internal/fuzzy"
	"simevo/internal/layout"
	"simevo/internal/netlist"
	"simevo/internal/rng"
)

func loadFixture(t testing.TB) (*Design, *layout.Placement) {
	t.Helper()
	d, p, err := LoadAux(filepath.Join("testdata", "tiny.aux"))
	if err != nil {
		t.Fatal(err)
	}
	return d, p
}

func TestBookshelfLoadFixture(t *testing.T) {
	d, p := loadFixture(t)
	ckt := d.Ckt

	if got, want := ckt.NumCells(), 16; got != want {
		t.Errorf("cells = %d, want %d", got, want)
	}
	if got, want := ckt.NumNets(), 14; got != want {
		t.Errorf("nets = %d, want %d", got, want)
	}
	if got, want := ckt.NumMovable(), 12; got != want {
		t.Errorf("movable = %d, want %d", got, want)
	}
	if got, want := len(ckt.PIs), 2; got != want {
		t.Errorf("PIs = %d, want %d (p1, p2 drive and sink nothing)", got, want)
	}
	if got, want := len(ckt.POs), 2; got != want {
		t.Errorf("POs = %d, want %d (p3, p4 sink exactly one net)", got, want)
	}
	if got, want := d.NumRows(), 4; got != want {
		t.Errorf("rows = %d, want %d", got, want)
	}
	for _, id := range ckt.Movable() {
		if ckt.Cells[id].Type != netlist.Macro {
			t.Errorf("movable %q has type %v, want MACRO", ckt.Cells[id].Name, ckt.Cells[id].Type)
		}
	}
	if err := ckt.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// The .pl row assignment: a,b,c in row 0 in x order.
	want := []string{"a", "b", "c"}
	row := p.Row(0)
	if len(row) != len(want) {
		t.Fatalf("row 0 has %d cells, want %d", len(row), len(want))
	}
	for i, id := range row {
		if ckt.Cells[id].Name != want[i] {
			t.Errorf("row 0 slot %d = %q, want %q", i, ckt.Cells[id].Name, want[i])
		}
	}
	// Width conversion: Sitewidth 6, node a is 12 units -> 2 sites.
	if w := ckt.Cells[row[0]].Width; w != 2 {
		t.Errorf("cell a width = %d sites, want 2", w)
	}
}

func TestBookshelfWritePlGolden(t *testing.T) {
	d, p := loadFixture(t)
	var buf bytes.Buffer
	if err := d.WritePl(&buf, p); err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "tiny.golden.pl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Errorf("WritePl output deviates from testdata/tiny.golden.pl:\n--- got ---\n%s\n--- want ---\n%s",
			buf.Bytes(), golden)
	}
}

// TestBookshelfRoundTripFixedPoint verifies the parse→write cycle
// converges immediately: writing the loaded placement, re-ingesting the
// written .pl with the original .nodes/.nets/.scl, and writing again must
// produce byte-identical output.
func TestBookshelfRoundTripFixedPoint(t *testing.T) {
	d, p := loadFixture(t)
	var first bytes.Buffer
	if err := d.WritePl(&first, p); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	for _, f := range []string{"tiny.aux", "tiny.nodes", "tiny.nets", "tiny.scl"} {
		blob, err := os.ReadFile(filepath.Join("testdata", f))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, f), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "tiny.pl"), first.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, p2, err := LoadAux(filepath.Join(dir, "tiny.aux"))
	if err != nil {
		t.Fatalf("re-ingesting written .pl: %v", err)
	}
	var second bytes.Buffer
	if err := d2.WritePl(&second, p2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("write→parse→write is not a fixed point:\n--- first ---\n%s\n--- second ---\n%s",
			first.Bytes(), second.Bytes())
	}
}

// TestBookshelfIngestionSmoke is the CI ingestion gate: a Bookshelf
// design must load, run a few SimE iterations with the congestion
// objective active, and surface congestion telemetry.
func TestBookshelfIngestionSmoke(t *testing.T) {
	d, p := loadFixture(t)
	cfg := core.DefaultConfig(fuzzy.WirePowerCongest)
	cfg.MaxIters = 5
	cfg.Seed = 8
	cfg.NumRows = d.NumRows()
	prob, err := core.NewProblem(d.Ckt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := prob.EngineFrom(p, rng.New(cfg.Seed))
	res := eng.Run()
	if res.Iters != 5 {
		t.Fatalf("ran %d iterations, want 5", res.Iters)
	}
	if res.BestCosts.Wire <= 0 {
		t.Errorf("wire cost = %v, want > 0", res.BestCosts.Wire)
	}
	tel := eng.Telemetry()
	if tel.CongestBinUpdates == 0 {
		t.Error("telemetry: congestion grid recorded no bin updates")
	}
	counters := tel.Counters()
	for _, key := range []string{"congest_bin_updates", "congest_rebuilds"} {
		if _, ok := counters[key]; !ok {
			t.Errorf("telemetry counters missing %q (have %v)", key, counters)
		}
	}
}
