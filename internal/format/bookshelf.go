// Package format ingests external physical-design exchange formats into
// the simevo netlist/layout model. The initial (and so far only) format is
// Bookshelf — the .aux/.nodes/.nets/.pl/.scl file set used by the ISPD
// placement contests and the GSRC benchmark suites.
//
// The Bookshelf model is purely physical: nodes have geometry and nets
// have undirected pin lists, but no logic functions. Ingestion therefore
// maps every movable node to a netlist.Macro cell (path-cutting,
// probability-neutral), assigns each net a driver from its pin directions
// ("O" pins first, then greedily among nodes not yet driving a net — the
// netlist model gives each cell at most one output), and classifies fixed
// terminals as Input/Output pads when their pin shape allows, falling back
// to Macro otherwise.
//
// Geometry maps onto the internal row grid: the k-th .scl core row (by
// ascending Coordinate) becomes layout row k, node widths convert to
// integer sites by rounding against the row's Sitewidth, and the .pl
// initial placement seeds the row assignment (row = nearest .scl row,
// in-row order = ascending x). WritePl inverts the mapping — left-edge
// x = SubrowOrigin + (site prefix sum)·Sitewidth — so one parse→write
// cycle reaches a fixed point: writing, re-reading, and writing again
// produces byte-identical output.
package format

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"simevo/internal/layout"
	"simevo/internal/netlist"
)

// Row is one .scl core row, in Bookshelf units.
type Row struct {
	Coordinate   float64 // y of the row's bottom edge
	Height       float64
	SiteWidth    float64
	SubrowOrigin float64 // x of the row's left edge
	NumSites     int
}

// Design is a parsed Bookshelf placement problem mapped onto the internal
// model: the circuit, the row geometry, and the fixed terminal locations
// (kept verbatim for .pl round-tripping).
type Design struct {
	Ckt  *netlist.Circuit
	Rows []Row

	// termX/termY hold the .pl coordinates of fixed (terminal) cells,
	// indexed by CellID; movable entries are unused.
	termX, termY map[netlist.CellID]float64
	// widthSites is each cell's converted width (kept for WritePl's
	// prefix sums even though Ckt carries the same numbers).
	fixed map[netlist.CellID]bool
}

// NumRows returns the number of core rows, which is also the layout row
// count the design places into.
func (d *Design) NumRows() int { return len(d.Rows) }

// LoadAux parses a Bookshelf .aux file and the file set it names. The
// member files are resolved relative to the .aux file's directory.
func LoadAux(path string) (*Design, *layout.Placement, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("format: %w", err)
	}
	// Aux syntax: "RowBasedPlacement : a.nodes a.nets a.wts a.pl a.scl".
	line := strings.TrimSpace(string(blob))
	if i := strings.Index(line, ":"); i >= 0 {
		line = line[i+1:]
	}
	dir := filepath.Dir(path)
	var nodesPath, netsPath, plPath, sclPath string
	for _, f := range strings.Fields(line) {
		switch filepath.Ext(f) {
		case ".nodes":
			nodesPath = filepath.Join(dir, f)
		case ".nets":
			netsPath = filepath.Join(dir, f)
		case ".pl":
			plPath = filepath.Join(dir, f)
		case ".scl":
			sclPath = filepath.Join(dir, f)
		case ".wts": // weights are unused
		}
	}
	for _, req := range []struct{ name, p string }{
		{".nodes", nodesPath}, {".nets", netsPath}, {".pl", plPath}, {".scl", sclPath},
	} {
		if req.p == "" {
			return nil, nil, fmt.Errorf("format: %s names no %s file", path, req.name)
		}
	}
	name := strings.TrimSuffix(filepath.Base(path), ".aux")
	return loadFiles(name, nodesPath, netsPath, plPath, sclPath)
}

// bookshelfNode is a .nodes entry before circuit construction.
type bookshelfNode struct {
	name     string
	width    float64
	terminal bool
}

// bookshelfPin is one pin of a .nets entry.
type bookshelfPin struct {
	node int  // index into the nodes slice
	out  bool // direction "O" (or "B")
}

// bookshelfNet is a .nets entry.
type bookshelfNet struct {
	name string
	pins []bookshelfPin
}

func loadFiles(name, nodesPath, netsPath, plPath, sclPath string) (*Design, *layout.Placement, error) {
	nodes, nodeIdx, err := parseNodes(nodesPath)
	if err != nil {
		return nil, nil, err
	}
	nets, err := parseNets(netsPath, nodeIdx)
	if err != nil {
		return nil, nil, err
	}
	rows, err := parseSCL(sclPath)
	if err != nil {
		return nil, nil, err
	}
	plX, plY, err := parsePl(plPath, nodeIdx)
	if err != nil {
		return nil, nil, err
	}
	d, err := buildDesign(name, nodes, nets, rows, plX, plY)
	if err != nil {
		return nil, nil, err
	}
	place, err := d.initialPlacement(plX, plY)
	if err != nil {
		return nil, nil, err
	}
	return d, place, nil
}

// scanner wraps line scanning with Bookshelf comment/header skipping.
func scanLines(path string, fn func(fields []string) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("format: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "UCLA") {
			continue
		}
		if err := fn(strings.Fields(line)); err != nil {
			return fmt.Errorf("format: %s:%d: %w", filepath.Base(path), lineNo, err)
		}
	}
	return sc.Err()
}

func parseNodes(path string) ([]bookshelfNode, map[string]int, error) {
	var nodes []bookshelfNode
	idx := make(map[string]int)
	err := scanLines(path, func(f []string) error {
		if len(f) >= 3 && f[0] == "NumNodes" || len(f) >= 3 && f[0] == "NumTerminals" {
			return nil // declared counts are advisory; the entries are authoritative
		}
		if len(f) < 3 {
			return fmt.Errorf("short node line %q", strings.Join(f, " "))
		}
		w, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return fmt.Errorf("node %s: bad width %q", f[0], f[1])
		}
		if _, dup := idx[f[0]]; dup {
			return fmt.Errorf("duplicate node %q", f[0])
		}
		term := len(f) >= 4 && strings.EqualFold(f[3], "terminal")
		idx[f[0]] = len(nodes)
		nodes = append(nodes, bookshelfNode{name: f[0], width: w, terminal: term})
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	if len(nodes) == 0 {
		return nil, nil, fmt.Errorf("format: %s declares no nodes", filepath.Base(path))
	}
	return nodes, idx, nil
}

func parseNets(path string, nodeIdx map[string]int) ([]bookshelfNet, error) {
	var nets []bookshelfNet
	var cur *bookshelfNet
	err := scanLines(path, func(f []string) error {
		switch f[0] {
		case "NumNets", "NumPins":
			return nil
		case "NetDegree":
			// "NetDegree : d  name" — the name is optional in the wild.
			name := fmt.Sprintf("n%d", len(nets))
			if len(f) >= 4 {
				name = f[3]
			}
			nets = append(nets, bookshelfNet{name: name})
			cur = &nets[len(nets)-1]
			return nil
		}
		if cur == nil {
			return fmt.Errorf("pin line %q before any NetDegree", strings.Join(f, " "))
		}
		ni, ok := nodeIdx[f[0]]
		if !ok {
			return fmt.Errorf("net %s: unknown node %q", cur.name, f[0])
		}
		out := len(f) >= 2 && (f[1] == "O" || f[1] == "B")
		cur.pins = append(cur.pins, bookshelfPin{node: ni, out: out})
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(nets) == 0 {
		return nil, fmt.Errorf("format: %s declares no nets", filepath.Base(path))
	}
	return nets, nil
}

func parseSCL(path string) ([]Row, error) {
	var rows []Row
	var cur *Row
	err := scanLines(path, func(f []string) error {
		switch f[0] {
		case "CoreRow":
			rows = append(rows, Row{SiteWidth: 1, Height: 1})
			cur = &rows[len(rows)-1]
		case "End":
			cur = nil
		case "Coordinate":
			if cur != nil && len(f) >= 3 {
				cur.Coordinate, _ = strconv.ParseFloat(f[2], 64)
			}
		case "Height":
			if cur != nil && len(f) >= 3 {
				cur.Height, _ = strconv.ParseFloat(f[2], 64)
			}
		case "Sitewidth":
			if cur != nil && len(f) >= 3 {
				cur.SiteWidth, _ = strconv.ParseFloat(f[2], 64)
			}
		case "SubrowOrigin":
			if cur != nil && len(f) >= 3 {
				cur.SubrowOrigin, _ = strconv.ParseFloat(f[2], 64)
				// "SubrowOrigin : x  NumSites : n" shares the line.
				if len(f) >= 6 && f[3] == "NumSites" {
					cur.NumSites, _ = strconv.Atoi(f[5])
				}
			}
		case "NumSites":
			if cur != nil && len(f) >= 3 {
				cur.NumSites, _ = strconv.Atoi(f[2])
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("format: %s declares no core rows", filepath.Base(path))
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Coordinate < rows[j].Coordinate })
	for i := range rows {
		if rows[i].SiteWidth <= 0 {
			rows[i].SiteWidth = 1
		}
	}
	return rows, nil
}

func parsePl(path string, nodeIdx map[string]int) (x, y map[string]float64, err error) {
	x = make(map[string]float64, len(nodeIdx))
	y = make(map[string]float64, len(nodeIdx))
	err = scanLines(path, func(f []string) error {
		if len(f) < 3 {
			return nil // orientation-only or malformed trailer lines are ignored
		}
		if _, ok := nodeIdx[f[0]]; !ok {
			return fmt.Errorf("placement for unknown node %q", f[0])
		}
		px, err1 := strconv.ParseFloat(f[1], 64)
		py, err2 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("node %s: bad coordinates %q %q", f[0], f[1], f[2])
		}
		x[f[0]], y[f[0]] = px, py
		return nil
	})
	return x, y, err
}

// buildDesign assembles the netlist.Circuit: driver assignment, terminal
// classification, and structural validation.
func buildDesign(name string, nodes []bookshelfNode, nets []bookshelfNet, rows []Row, plX, plY map[string]float64) (*Design, error) {
	siteW := rows[0].SiteWidth

	// Driver assignment: every net needs exactly one driving cell and
	// every cell drives at most one net (the single-output netlist model).
	// Two passes — explicit "O"/"B" pins claim their nets first, then the
	// leftovers take any still-free pin node. Multi-output nodes therefore
	// drive only their first net; the remaining connections degrade to
	// sink pins, which is lossless for placement (nets stay intact, only
	// the direction annotation coarsens).
	driverOf := make([]int, len(nets)) // net -> node index, -1 unassigned
	drives := make([]bool, len(nodes))
	for i := range driverOf {
		driverOf[i] = -1
	}
	for pass := 0; pass < 2; pass++ {
		for ni := range nets {
			if driverOf[ni] >= 0 {
				continue
			}
			for _, pin := range nets[ni].pins {
				if drives[pin.node] || (pass == 0 && !pin.out) {
					continue
				}
				driverOf[ni] = pin.node
				drives[pin.node] = true
				break
			}
		}
	}
	for ni := range nets {
		if driverOf[ni] < 0 {
			return nil, fmt.Errorf("format: net %q has no assignable driver (every pin node already drives another net)", nets[ni].name)
		}
	}

	// Per-node fan-in/fan-out counts for terminal classification.
	sinksOn := make([][]int, len(nodes)) // node -> nets it sinks
	for ni := range nets {
		seen := make(map[int]bool, len(nets[ni].pins))
		for _, pin := range nets[ni].pins {
			if pin.node == driverOf[ni] || seen[pin.node] {
				continue // self-loop pins on the driver and duplicate pins collapse
			}
			seen[pin.node] = true
			sinksOn[pin.node] = append(sinksOn[pin.node], ni)
		}
	}

	d := &Design{
		Rows:  rows,
		termX: make(map[netlist.CellID]float64),
		termY: make(map[netlist.CellID]float64),
		fixed: make(map[netlist.CellID]bool),
	}
	ckt := &netlist.Circuit{Name: name}
	ckt.Cells = make([]netlist.Cell, len(nodes))
	ckt.Nets = make([]netlist.Net, len(nets))

	for i, n := range nodes {
		id := netlist.CellID(i)
		typ := netlist.Macro
		width := int(math.Round(n.width / siteW))
		if width < 1 {
			width = 1
		}
		if n.terminal {
			// Pad-shaped terminals become real pads (width 0, fixed on
			// the boundary in the internal model); oddly-shaped ones stay
			// Macro so their connectivity survives, at the cost of being
			// treated as movable.
			switch {
			case drives[i] && len(sinksOn[i]) == 0:
				typ, width = netlist.Input, 0
			case !drives[i] && len(sinksOn[i]) == 1:
				typ, width = netlist.Output, 0
			}
			d.fixed[id] = true
			d.termX[id] = plX[n.name]
			d.termY[id] = plY[n.name]
		}
		ckt.Cells[i] = netlist.Cell{ID: id, Name: n.name, Type: typ, Width: width, Out: netlist.NoNet}
		switch typ {
		case netlist.Input:
			ckt.PIs = append(ckt.PIs, id)
		case netlist.Output:
			ckt.POs = append(ckt.POs, id)
		}
	}

	for ni := range nets {
		drv := netlist.CellID(driverOf[ni])
		ckt.Nets[ni] = netlist.Net{ID: netlist.NetID(ni), Name: nets[ni].name, Driver: drv}
		ckt.Cells[drv].Out = netlist.NetID(ni)
	}
	// Sink wiring from the deduplicated per-node lists keeps Cell.In and
	// Net.Sinks consistent.
	for node, list := range sinksOn {
		for _, ni := range list {
			ckt.Cells[node].In = append(ckt.Cells[node].In, netlist.NetID(ni))
			ckt.Nets[ni].Sinks = append(ckt.Nets[ni].Sinks, netlist.CellID(node))
		}
	}

	if err := ckt.Validate(); err != nil {
		return nil, fmt.Errorf("format: %s: %w", name, err)
	}
	d.Ckt = ckt
	return d, nil
}

// rowFor returns the index of the core row whose y span is nearest the
// given Bookshelf y coordinate.
func (d *Design) rowFor(y float64) int {
	best, bestDist := 0, math.Inf(1)
	for i, r := range d.Rows {
		if dist := math.Abs(y - r.Coordinate); dist < bestDist {
			best, bestDist = i, dist
		}
	}
	return best
}

// initialPlacement realizes the .pl coordinates on the internal row grid:
// each movable cell goes to the row nearest its y, rows order by ascending
// x (ties broken by node order for determinism), and fixed terminals map
// proportionally into the internal coordinate space via coordinate hints.
func (d *Design) initialPlacement(plX, plY map[string]float64) (*layout.Placement, error) {
	ckt := d.Ckt
	p := layout.New(ckt, len(d.Rows))

	type entry struct {
		id netlist.CellID
		x  float64
	}
	byRow := make([][]entry, len(d.Rows))
	for _, id := range ckt.Movable() {
		name := ckt.Cells[id].Name
		x, okX := plX[name]
		y, okY := plY[name]
		if !okX || !okY {
			return nil, fmt.Errorf("format: movable node %q has no .pl entry", name)
		}
		r := d.rowFor(y)
		byRow[r] = append(byRow[r], entry{id: id, x: x})
	}
	for r, list := range byRow {
		sort.SliceStable(list, func(i, j int) bool {
			if list[i].x != list[j].x {
				return list[i].x < list[j].x
			}
			return list[i].id < list[j].id
		})
		for _, e := range list {
			p.AppendToRow(r, e.id)
		}
	}
	p.Recompute()

	// Terminal hints: scale the Bookshelf frame into the internal one so
	// pads keep their relative geometry (wire costs then see pad pulls in
	// the right directions even though absolute units differ).
	r0 := d.Rows[0]
	siteW := r0.SiteWidth
	for id, fixed := range d.fixed {
		if !fixed || !ckt.Cells[id].IsPad() {
			continue
		}
		x := (d.termX[id] - r0.SubrowOrigin) / siteW
		y := (d.termY[id]-r0.Coordinate)/r0.Height*layout.RowPitch + layout.RowPitch/2
		p.SetCoordHint(id, x, y)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("format: initial placement: %w", err)
	}
	return p, nil
}

// WritePl emits the placement in Bookshelf .pl syntax: movable cells get
// their row's y and a left-edge x reconstructed from the site prefix sums;
// fixed terminals are echoed verbatim with the /FIXED marker. Output is
// deterministic (.nodes file order) and reaches a fixed point after one
// parse→write cycle.
func (d *Design) WritePl(w io.Writer, p *layout.Placement) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "UCLA pl 1.0\n# simevo placement for %s\n\n", d.Ckt.Name)

	// Left-edge x per movable cell from integer site offsets.
	type pos struct{ x, y float64 }
	coords := make(map[netlist.CellID]pos, d.Ckt.NumMovable())
	for r := 0; r < p.NumRows(); r++ {
		row := d.Rows[r]
		xoff := 0
		for _, id := range p.Row(r) {
			if id == netlist.NoCell {
				continue
			}
			coords[id] = pos{
				x: row.SubrowOrigin + float64(xoff)*row.SiteWidth,
				y: row.Coordinate,
			}
			xoff += d.Ckt.Cells[id].Width
		}
	}

	for i := range d.Ckt.Cells {
		cell := &d.Ckt.Cells[i]
		id := netlist.CellID(i)
		if d.fixed[id] {
			fmt.Fprintf(bw, "%s\t%s\t%s\t: N /FIXED\n",
				cell.Name, fmtCoord(d.termX[id]), fmtCoord(d.termY[id]))
			continue
		}
		c, ok := coords[id]
		if !ok {
			return fmt.Errorf("format: movable cell %q is unplaced", cell.Name)
		}
		fmt.Fprintf(bw, "%s\t%s\t%s\t: N\n", cell.Name, fmtCoord(c.x), fmtCoord(c.y))
	}
	return bw.Flush()
}

// fmtCoord renders a coordinate with the shortest exact decimal float
// representation — stable across write→parse→write cycles.
func fmtCoord(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
