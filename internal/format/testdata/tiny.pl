UCLA pl 1.0

a	0	0	: N
b	24	0	: N
c	48	0	: N
d	0	12	: N
e	30	12	: N
f	60	12	: N
g	0	24	: N
h	18	24	: N
i	36	24	: N
j	0	36	: N
k	30	36	: N
l	60	36	: N
p1	-12	6	: N /FIXED
p2	-12	30	: N /FIXED
p3	246	6	: N /FIXED
p4	246	30	: N /FIXED
