UCLA pl 1.0
# simevo placement for tiny

a	0	0	: N
b	12	0	: N
c	30	0	: N
d	0	12	: N
e	12	12	: N
f	24	12	: N
g	0	24	: N
h	18	24	: N
i	30	24	: N
j	0	36	: N
k	12	36	: N
l	18	36	: N
p1	-12	6	: N /FIXED
p2	-12	30	: N /FIXED
p3	246	6	: N /FIXED
p4	246	30	: N /FIXED
