package telemetry

import (
	"net"
	"net/http"
	"strconv"
	"time"
)

// Process-wide metric set. Every instrumented layer updates these
// unconditionally; they are aggregates across all engines, pools, and
// transports in the process (per-run numbers live in EngineSnapshot).
var (
	// Engine phase timers (core.Engine.Step / SelectAndAllocate).
	EnginePhaseEvalNs   = Default.Histogram("simevo_engine_phase_ns", "Engine phase wall time per iteration in nanoseconds.", "phase", "evaluate")
	EnginePhaseSelectNs = Default.Histogram("simevo_engine_phase_ns", "Engine phase wall time per iteration in nanoseconds.", "phase", "select")
	EnginePhaseAllocNs  = Default.Histogram("simevo_engine_phase_ns", "Engine phase wall time per iteration in nanoseconds.", "phase", "allocate")

	EngineIterations = Default.Counter("simevo_engine_iterations_total", "Completed SimE iterations (selection + allocation) across all engines.")

	// Allocation sub-phase timers (trial prep, vacancy scan, commit).
	AllocSubPrepNs   = Default.Histogram("simevo_engine_alloc_subphase_ns", "Allocation sub-phase wall time per iteration in nanoseconds.", "sub", "prep")
	AllocSubScanNs   = Default.Histogram("simevo_engine_alloc_subphase_ns", "Allocation sub-phase wall time per iteration in nanoseconds.", "sub", "scan")
	AllocSubCommitNs = Default.Histogram("simevo_engine_alloc_subphase_ns", "Allocation sub-phase wall time per iteration in nanoseconds.", "sub", "commit")

	// Cost-evaluation shape: which EvaluateCosts branch ran, and how
	// many dirty nets an incremental evaluation folded.
	EngineEvalsIncremental = Default.Counter("simevo_engine_evals_total", "Cost evaluations by kind.", "kind", "incremental")
	EngineEvalsRebuild     = Default.Counter("simevo_engine_evals_total", "Cost evaluations by kind.", "kind", "rebuild")
	EngineEvalsReference   = Default.Counter("simevo_engine_evals_total", "Cost evaluations by kind.", "kind", "reference")
	EngineDirtyNets        = Default.Histogram("simevo_engine_dirty_nets", "Dirty-net batch size per incremental cost evaluation.")

	// Goodness cache (per-cell goodness memoization inside ComputeGoodness).
	GoodnessCacheHits   = Default.Counter("simevo_engine_goodness_cache_total", "Goodness-cache lookups by result.", "result", "hit")
	GoodnessCacheMisses = Default.Counter("simevo_engine_goodness_cache_total", "Goodness-cache lookups by result.", "result", "miss")

	// ScanBest prune statistics (allocation inner loop).
	ScanVacancies    = Default.Counter("simevo_scan_vacancies_total", "Vacancy candidates visited by ScanBest.")
	ScanPrunedBBox   = Default.Counter("simevo_scan_pruned_total", "ScanBest candidates pruned, by mechanism.", "by", "bbox_precheck")
	ScanPrunedSuffix = Default.Counter("simevo_scan_pruned_total", "ScanBest candidates pruned, by mechanism.", "by", "suffix_bound")
	ScanBailedExact  = Default.Counter("simevo_scan_pruned_total", "ScanBest candidates pruned, by mechanism.", "by", "exact_prefix")
	// bucket_skip counts candidates never visited at all: vacancies inside
	// whole rows or bucket tails the sharded scan discarded wholesale.
	ScanSkippedBucket = Default.Counter("simevo_scan_pruned_total", "ScanBest candidates pruned, by mechanism.", "by", "bucket_skip")
	ScanRowsVisited   = Default.Counter("simevo_scan_rows_visited_total", "Row buckets entered by the sharded vacancy scan.")
	ScanScored        = Default.Counter("simevo_scan_scored_total", "ScanBest candidates fully scored (survived every prune).")

	// cost.Objective pipeline: full rebuilds vs incremental updates vs
	// incremental calls that fell back to a full rebuild internally.
	CostFullEvals          = Default.Counter("simevo_cost_evals_total", "cost.Objective evaluations by path.", "path", "full")
	CostDirtyEvals         = Default.Counter("simevo_cost_evals_total", "cost.Objective evaluations by path.", "path", "dirty")
	CostDirtyFallbackEvals = Default.Counter("simevo_cost_evals_total", "cost.Objective evaluations by path.", "path", "dirty_fallback")

	// congest.Grid incremental congestion objective.
	CongestBinUpdates = Default.Counter("simevo_congest_bin_updates_total", "Congestion-grid bin writes (net contribution add/subtract).")
	CongestRebuilds   = Default.Counter("simevo_congest_rebuilds_total", "Full congestion-grid rebuilds (including dirty batches past the fallback crossover).")
	CongestPeak       = Default.Gauge("simevo_congest_peak_demand", "Peak bin routing demand of the last congestion evaluation.")
	CongestOverflow   = Default.Gauge("simevo_congest_overflow", "Summed bin demand above twice the average, last congestion evaluation.")

	// timing.Inc incremental STA.
	TimingConeCells = Default.Histogram("simevo_timing_cone_cells", "Cells recomputed per incremental STA update (dirty-cone size).")
	TimingRebuilds  = Default.Counter("simevo_timing_rebuilds_total", "Full STA rebuilds (including incremental updates that fell back).")

	// core.Pool worker lifecycle.
	PoolWorkersAlive   = Default.Gauge("simevo_pool_workers", "Live pool worker goroutines.")
	PoolWorkersSpawned = Default.Counter("simevo_pool_worker_events_total", "Pool worker lifecycle events.", "event", "spawn")
	PoolRetiredIdle    = Default.Counter("simevo_pool_worker_events_total", "Pool worker lifecycle events.", "event", "retire_idle")
	PoolRetiredCancel  = Default.Counter("simevo_pool_worker_events_total", "Pool worker lifecycle events.", "event", "retire_cancel")
	PoolBatches        = Default.Counter("simevo_pool_batches_total", "Work batches dispatched to the shared pool.")

	// Transport framing (all TCP connections in the process).
	TransportSentFrames = Default.Counter("simevo_transport_frames_total", "TCP transport frames, by direction.", "dir", "sent")
	TransportRecvFrames = Default.Counter("simevo_transport_frames_total", "TCP transport frames, by direction.", "dir", "recv")
	TransportSentBytes  = Default.Counter("simevo_transport_bytes_total", "TCP transport bytes (incl. frame headers), by direction.", "dir", "sent")
	TransportRecvBytes  = Default.Counter("simevo_transport_bytes_total", "TCP transport bytes (incl. frame headers), by direction.", "dir", "recv")

	// Transport liveness (heartbeat frames are out-of-band: they never
	// enter rank traffic accounting).
	HeartbeatPingsSent  = Default.Counter("simevo_transport_heartbeat_frames_total", "Heartbeat frames by kind.", "kind", "ping_sent")
	HeartbeatPingsRecv  = Default.Counter("simevo_transport_heartbeat_frames_total", "Heartbeat frames by kind.", "kind", "ping_recv")
	HeartbeatPongsSent  = Default.Counter("simevo_transport_heartbeat_frames_total", "Heartbeat frames by kind.", "kind", "pong_sent")
	HeartbeatPongsRecv  = Default.Counter("simevo_transport_heartbeat_frames_total", "Heartbeat frames by kind.", "kind", "pong_recv")
	HeartbeatTimeouts   = Default.Counter("simevo_transport_heartbeat_timeouts_total", "Connections declared dead after a heartbeat-silence window.")
	ClusterRankFailures = Default.Counter("simevo_cluster_rank_failures_total", "Cluster ranks lost mid-job (connection loss, heartbeat timeout, protocol abandonment).")

	// Parallel-strategy exchange rounds (one iteration of the Type I/II
	// master loop, or one store round-trip for a Type III searcher).
	ExchangeRoundType1Ns = Default.Histogram("simevo_exchange_round_ns", "Parallel-strategy exchange round latency in nanoseconds.", "strategy", "type1")
	ExchangeRoundType2Ns = Default.Histogram("simevo_exchange_round_ns", "Parallel-strategy exchange round latency in nanoseconds.", "strategy", "type2")
	ExchangeRoundType3Ns = Default.Histogram("simevo_exchange_round_ns", "Parallel-strategy exchange round latency in nanoseconds.", "strategy", "type3")

	// Asynchronous Type III exchange protocol (post/poll/news). The round
	// histogram above measures a searcher's blocking store round-trip in
	// the synchronous protocol; the async histogram measures only the
	// exchange machinery a searcher actually pays (encode/post, news
	// decode, speculative snapshot/adopt/restore) — there is no blocking
	// round to time.
	ExchangeAsyncType3Ns = Default.Histogram("simevo_exchange_round_ns", "Parallel-strategy exchange round latency in nanoseconds.", "strategy", "type3_async")

	ExchangePosted       = Default.Counter("simevo_exchange_posted_total", "Searcher improvements posted to the Type III store.")
	ExchangeAdopted      = Default.Counter("simevo_exchange_adopted_total", "Store solutions adopted by a searcher (speculation accepted or synchronous adoption).")
	ExchangeRejected     = Default.Counter("simevo_exchange_rejected_total", "Store solutions rejected by a searcher after speculation.")
	SpeculationRestores  = Default.Counter("simevo_exchange_speculation_restores_total", "Snapshot restores performed by the speculative reject path (no full rebuild).")
	ExchangeStoreEpoch   = Default.Gauge("simevo_exchange_store_epoch", "Monotonic epoch of the Type III store's best solution (last run on this process).")

	// Service (simevo-serve job manager + SSE).
	JobsSubmitted  = Default.Counter("simevo_jobs_submitted_total", "Jobs accepted by the service (including cache hits).")
	JobsCacheHits  = Default.Counter("simevo_jobs_cache_total", "Job result-cache lookups by outcome.", "result", "hit")
	JobsCacheMiss  = Default.Counter("simevo_jobs_cache_total", "Job result-cache lookups by outcome.", "result", "miss")
	JobsDone       = Default.Counter("simevo_jobs_finished_total", "Jobs finished, by terminal state.", "state", "done")
	JobsFailed     = Default.Counter("simevo_jobs_finished_total", "Jobs finished, by terminal state.", "state", "failed")
	JobsCanceled   = Default.Counter("simevo_jobs_finished_total", "Jobs finished, by terminal state.", "state", "canceled")
	JobQueueDepth  = Default.Gauge("simevo_jobs_queue_depth", "Jobs waiting in the service queue.")
	JobsRunning    = Default.Gauge("simevo_jobs_running", "Jobs currently executing.")
	JobsRetries    = Default.Counter("simevo_jobs_retries_total", "Failed-job re-runs scheduled by Spec.MaxRetries.")
	JobsReplayed   = Default.Counter("simevo_jobs_journal_replays_total", "Unfinished jobs re-enqueued from the journal at startup.")
	SSESubscribers = Default.Gauge("simevo_sse_subscribers", "Open SSE event-stream subscriptions.")
)

// RankTraffic returns the per-rank transport counters (messages and
// bytes relayed to / received from that rank's worker connection).
// Counters are created on first use, so only ranks that actually join
// a group appear in the exposition.
func RankTraffic(rank int) (sentMsgs, sentBytes, recvMsgs, recvBytes *Counter) {
	r := strconv.Itoa(rank)
	sentMsgs = Default.Counter("simevo_transport_rank_messages_total", "Messages exchanged with a worker rank, by direction.", "rank", r, "dir", "sent")
	sentBytes = Default.Counter("simevo_transport_rank_bytes_total", "Payload bytes exchanged with a worker rank, by direction.", "rank", r, "dir", "sent")
	recvMsgs = Default.Counter("simevo_transport_rank_messages_total", "Messages exchanged with a worker rank, by direction.", "rank", r, "dir", "recv")
	recvBytes = Default.Counter("simevo_transport_rank_bytes_total", "Payload bytes exchanged with a worker rank, by direction.", "rank", r, "dir", "recv")
	return sentMsgs, sentBytes, recvMsgs, recvBytes
}

// ServeDebug starts an HTTP listener on addr serving GET /metrics and
// the pprof endpoints, and returns the bound address (useful with
// ":0"). The server runs until the process exits.
func ServeDebug(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	AttachDebug(mux)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), nil
}
