package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// le returns the rendered upper bound of finite bucket i, matching the
// exposition's float formatting.
func le(i int) string {
	return strconv.FormatFloat(float64(uint64(1)<<uint(i)), 'g', -1, 64)
}

// TestExpositionGolden pins the exact text exposition rendering: family
// ordering, HELP/TYPE comments, label sorting and merging, cumulative
// histogram buckets, and the _sum/_count pair.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "Requests by status.", "code", "500").Add(2)
	r.Counter("test_requests_total", "Requests by status.", "code", "200").Add(7)
	r.Gauge("test_depth", "Queue depth.").Set(-3)
	r.GaugeFunc("test_temp", "A derived value.", func() float64 { return 1.5 })
	h := r.Histogram("test_latency_ns", "Phase latency.", "phase", "eval")
	h.Observe(1)         // le="1"
	h.Observe(2)         // le="2": boundary sample stays in its own bucket
	h.Observe(3)         // le="4"
	h.Observe(1 << 38)   // last finite bucket
	h.Observe(1<<38 + 1) // +Inf
	h.ObserveN(3, 2)     // le="4", batched
	h.Observe(-5)        // clamps to 0, le="1"

	var b strings.Builder
	fmt.Fprintf(&b, "# HELP test_requests_total Requests by status.\n")
	fmt.Fprintf(&b, "# TYPE test_requests_total counter\n")
	fmt.Fprintf(&b, "test_requests_total{code=\"200\"} 7\n")
	fmt.Fprintf(&b, "test_requests_total{code=\"500\"} 2\n")
	fmt.Fprintf(&b, "# HELP test_depth Queue depth.\n")
	fmt.Fprintf(&b, "# TYPE test_depth gauge\n")
	fmt.Fprintf(&b, "test_depth -3\n")
	fmt.Fprintf(&b, "# HELP test_temp A derived value.\n")
	fmt.Fprintf(&b, "# TYPE test_temp gauge\n")
	fmt.Fprintf(&b, "test_temp 1.5\n")
	fmt.Fprintf(&b, "# HELP test_latency_ns Phase latency.\n")
	fmt.Fprintf(&b, "# TYPE test_latency_ns histogram\n")
	// Samples by bucket: {1, -5→0} under le=1, {2} under le=2, {3,3,3}
	// under le=4, {2^38} in the last finite bucket, {2^38+1} in +Inf.
	cum := map[int]uint64{0: 2, 1: 3, 2: 6, 38: 7} // index -> cumulative count after it
	var running uint64
	for i := 0; i < histBuckets-1; i++ {
		if c, ok := cum[i]; ok {
			running = c
		}
		fmt.Fprintf(&b, "test_latency_ns_bucket{phase=\"eval\",le=\"%s\"} %d\n", le(i), running)
	}
	fmt.Fprintf(&b, "test_latency_ns_bucket{phase=\"eval\",le=\"+Inf\"} 8\n")
	fmt.Fprintf(&b, "test_latency_ns_sum{phase=\"eval\"} %d\n", 1+2+3+(1<<38)+(1<<38)+1+6+0)
	fmt.Fprintf(&b, "test_latency_ns_count{phase=\"eval\"} 8\n")

	var got strings.Builder
	if err := r.WritePrometheus(&got); err != nil {
		t.Fatal(err)
	}
	if got.String() != b.String() {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got.String(), b.String())
	}
}

// TestHistogramBoundaries checks the log₂ bucketing invariant directly: a
// sample lands in the bucket whose upper bound is the smallest power of
// two >= the sample.
func TestHistogramBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 38, 38}, {1<<38 + 1, 39}, {math.MaxInt64, 39},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

var (
	nameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (.+)$`)
	labelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$`)
)

// validateExposition is a promtool-style checker for text exposition
// v0.0.4: comment structure, metric and label name syntax, parseable
// values, samples only under a declared family, cumulative histogram
// buckets, and _count consistency with the +Inf bucket.
func validateExposition(t *testing.T, text string) {
	t.Helper()
	type fam struct{ name, typ string }
	var cur fam
	helpSeen := map[string]bool{}
	var lastBucket float64 // previous cumulative count within the current histogram series
	var lastLe float64
	var lastSeries string
	infCount := map[string]float64{}
	countVal := map[string]float64{}

	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Errorf("line %d: blank line", ln+1)
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			if !nameRe.MatchString(parts[0]) {
				t.Errorf("line %d: bad metric name %q", ln+1, parts[0])
			}
			if helpSeen[parts[0]] {
				t.Errorf("line %d: duplicate HELP for %q", ln+1, parts[0])
			}
			helpSeen[parts[0]] = true
			cur = fam{name: parts[0]}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line[len("# TYPE "):])
			if len(parts) != 2 {
				t.Errorf("line %d: malformed TYPE line %q", ln+1, line)
				continue
			}
			if parts[0] != cur.name {
				t.Errorf("line %d: TYPE for %q without preceding HELP", ln+1, parts[0])
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Errorf("line %d: unknown type %q", ln+1, parts[1])
			}
			cur.typ = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free comment
		}

		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("line %d: unparseable sample %q", ln+1, line)
			continue
		}
		name, labels, valStr := m[1], m[2], m[3]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Errorf("line %d: unparseable value %q: %v", ln+1, valStr, err)
			continue
		}
		if labels != "" {
			for _, lv := range strings.Split(labels[1:len(labels)-1], ",") {
				if !labelRe.MatchString(lv) {
					t.Errorf("line %d: bad label pair %q", ln+1, lv)
				}
			}
		}

		base := name
		suffix := ""
		if cur.typ == "histogram" {
			for _, sfx := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasSuffix(name, sfx) && strings.TrimSuffix(name, sfx) == cur.name {
					base, suffix = cur.name, sfx
					break
				}
			}
		}
		if base != cur.name {
			t.Errorf("line %d: sample %q outside its declared family %q", ln+1, name, cur.name)
			continue
		}

		switch {
		case cur.typ == "counter":
			if val < 0 {
				t.Errorf("line %d: counter %s is negative: %v", ln+1, name, val)
			}
		case suffix == "_bucket":
			leIdx := strings.LastIndex(labels, `le="`)
			if leIdx < 0 {
				t.Errorf("line %d: bucket without le label", ln+1)
				continue
			}
			leStr := labels[leIdx+4 : strings.LastIndex(labels, `"`)]
			// Series key with the le pair stripped, so it can be matched
			// against the _count sample's label set.
			rest := strings.TrimSuffix(labels[:leIdx], ",")
			if rest == "{" {
				rest = ""
			}
			series := name + rest
			leVal := math.Inf(1)
			if leStr != "+Inf" {
				if leVal, err = strconv.ParseFloat(leStr, 64); err != nil {
					t.Errorf("line %d: bad le %q", ln+1, leStr)
					continue
				}
			}
			if series != lastSeries {
				lastSeries, lastBucket, lastLe = series, 0, math.Inf(-1)
			}
			if leVal <= lastLe {
				t.Errorf("line %d: le %v not increasing (after %v)", ln+1, leVal, lastLe)
			}
			if val < lastBucket {
				t.Errorf("line %d: bucket count %v below previous %v (not cumulative)", ln+1, val, lastBucket)
			}
			lastBucket, lastLe = val, leVal
			if math.IsInf(leVal, 1) {
				infCount[series] = val
			}
		case suffix == "_count":
			key := name[:len(name)-len("_count")] + "_bucket" + strings.TrimSuffix(labels, "}")
			countVal[key] = val
		}
	}
	for series, want := range countVal {
		if got, ok := infCount[series]; !ok || got != want {
			t.Errorf("histogram %s: +Inf bucket %v != _count %v", series, got, want)
		}
	}
}

// TestExpositionParses runs the promtool-style validator over the Default
// registry with every package metric touched, the same output /metrics
// serves in production.
func TestExpositionParses(t *testing.T) {
	EnginePhaseEvalNs.Observe(12345)
	EngineIterations.Inc()
	EngineDirtyNets.Observe(17)
	ScanVacancies.Add(100)
	ScanPrunedSuffix.Add(60)
	CostDirtyEvals.Inc()
	TimingConeCells.Observe(9)
	PoolWorkersAlive.Add(2)
	PoolWorkersAlive.Add(-2)
	TransportSentFrames.Inc()
	TransportSentBytes.Add(512)
	ExchangeRoundType2Ns.Observe(1_000_000)
	JobsSubmitted.Inc()
	JobQueueDepth.Set(3)
	SSESubscribers.Add(1)
	SSESubscribers.Add(-1)
	sentMsgs, sentBytes, recvMsgs, recvBytes := RankTraffic(1)
	sentMsgs.Inc()
	sentBytes.Add(64)
	recvMsgs.Inc()
	recvBytes.Add(64)

	var b strings.Builder
	if err := Default.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	validateExposition(t, text)

	for _, want := range []string{
		"# TYPE simevo_engine_phase_ns histogram",
		`simevo_engine_phase_ns_bucket{phase="evaluate",le="+Inf"}`,
		"# TYPE simevo_scan_pruned_total counter",
		`simevo_scan_pruned_total{by="suffix_bound"}`,
		`simevo_transport_rank_messages_total{rank="1",dir="sent"} 1`,
		`simevo_transport_rank_bytes_total{rank="1",dir="recv"} 64`,
		"# TYPE simevo_jobs_queue_depth gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestRankTrafficIdempotent checks that re-acquiring a rank's counters
// returns the same collectors (get-or-create), so repeated cluster
// Acquire calls accumulate instead of resetting.
func TestRankTrafficIdempotent(t *testing.T) {
	aSM, _, _, aRB := RankTraffic(7)
	bSM, _, _, bRB := RankTraffic(7)
	if aSM != bSM || aRB != bRB {
		t.Fatal("RankTraffic(7) returned distinct collectors on re-acquire")
	}
}

// TestConcurrentUpdates hammers all three primitives plus registration
// and rendering from many goroutines; run under -race this is the data
// race guard, and the final counts check no increment is lost.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const iters = 10_000

	ctr := r.Counter("conc_total", "c")
	g := r.Gauge("conc_gauge", "g")
	h := r.Histogram("conc_hist", "h")

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				ctr.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(int64(j % 1024))
				// Get-or-create of a shared name must be safe too.
				r.Counter("conc_shared_total", "s", "who", "all").Inc()
			}
		}(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			var b strings.Builder
			for j := 0; j < 50; j++ {
				b.Reset()
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if got := ctr.Load(); got != goroutines*iters {
		t.Errorf("counter lost updates: got %d, want %d", got, goroutines*iters)
	}
	if got := g.Load(); got != 0 {
		t.Errorf("gauge should balance to 0, got %d", got)
	}
	if got := h.Count(); got != goroutines*iters {
		t.Errorf("histogram lost samples: got %d, want %d", got, goroutines*iters)
	}
	if got := r.Counter("conc_shared_total", "s", "who", "all").Load(); got != goroutines*iters {
		t.Errorf("shared counter lost updates: got %d, want %d", got, goroutines*iters)
	}
}

// TestHotPathZeroAlloc is the tentpole's zero-overhead guard: every
// hot-path update op must never allocate.
func TestHotPathZeroAlloc(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	checks := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(42) }},
		{"Gauge.Add", func() { g.Add(-1) }},
		{"Histogram.Observe", func() { h.Observe(12345) }},
		{"Histogram.ObserveN", func() { h.ObserveN(77, 5) }},
	}
	for _, chk := range checks {
		if allocs := testing.AllocsPerRun(1000, chk.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f times per op, want 0", chk.name, allocs)
		}
	}
}

// BenchmarkCounterInc and BenchmarkHistogramObserve document the
// single-digit-nanosecond hot-path cost claims.
func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
