// Package telemetry provides allocation-free process metrics — atomic
// counters, gauges, and fixed-bucket log₂ histograms — plus a registry
// that renders Prometheus text exposition format v0.0.4 with no external
// dependencies.
//
// The primitives are built for unconditional use on the hot path: Inc,
// Add, Set, and Observe are one or two uncontended atomic RMW ops
// (~1-2 ns) and never allocate. Telemetry is observational only — it
// must never touch RNG state, iteration order, or float accumulation,
// so enabling it cannot perturb bitwise-deterministic trajectories.
package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative deltas are a caller bug; they would break
// Prometheus monotonicity, so they are dropped.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an int64 metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the fixed bucket count of every Histogram: finite
// upper bounds 2^0 .. 2^(histBuckets-2), plus +Inf. With 40 buckets the
// largest finite bound is 2^38 ns ≈ 4.6 min — comfortably above any
// per-iteration phase time — while dirty-batch and cone-size counts
// reuse the same log₂ layout.
const histBuckets = 40

// Histogram is a fixed-bucket log₂ histogram of non-negative int64
// samples (typically nanoseconds or element counts). A sample v lands
// in the bucket whose upper bound is the smallest power of two >= v
// (v=0 and v=1 both fall under le=1). Observe is two atomic adds and
// never allocates.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	sum     atomic.Int64
}

// Observe records one sample. Negative samples clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := bucketIndex(v)
	h.buckets[i].Add(1)
	h.sum.Add(v)
}

// bucketIndex maps a non-negative sample to the bucket whose upper
// bound 2^i is the smallest power of two >= v: bits.Len64(v-1) is exact
// on power-of-two boundaries (v=2 falls under le=2, not le=4).
func bucketIndex(v int64) int {
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v - 1))
	}
	if i > histBuckets-1 {
		i = histBuckets - 1
	}
	return i
}

// ObserveN records n identical samples of value v in two atomic adds —
// used to fold a locally accumulated batch into the histogram without
// per-event atomics.
func (h *Histogram) ObserveN(v int64, n uint64) {
	if n == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(n)
	h.sum.Add(v * int64(n))
}

// snapshot copies the bucket counts, total count, and sum. The copy is
// not an atomic cut across buckets — fine for monitoring, where each
// individual bucket is still monotone.
func (h *Histogram) snapshot() (counts [histBuckets]uint64, total uint64, sum int64) {
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	return counts, total, h.sum.Load()
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	_, total, _ := h.snapshot()
	return total
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }
