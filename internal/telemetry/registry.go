package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry holds metric families and renders them in Prometheus text
// exposition format v0.0.4. Registration is get-or-create: asking for
// an existing (name, labels) series returns the same collector, so
// packages can declare metrics idempotently.
type Registry struct {
	mu     sync.Mutex
	order  []*family
	byName map[string]*family
}

type family struct {
	name, help, typ string
	series          []*series
	byLabels        map[string]*series
}

type series struct {
	labels string // rendered {k="v",...} suffix, "" when unlabeled
	hist   *Histogram
	ctr    *Counter
	gauge  *Gauge
	fn     func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// Default is the process-wide registry that all package-level metrics
// in this repo register into; /metrics handlers render it.
var Default = NewRegistry()

func (r *Registry) getFamily(name, help, typ string) *family {
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, byLabels: map[string]*series{}}
		r.byName[name] = f
		r.order = append(r.order, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	return f
}

// renderLabels formats alternating key, value pairs as a Prometheus
// label suffix. Values are escaped per the exposition format.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("telemetry: labels must be alternating key, value pairs")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func (f *family) getSeries(labels []string) *series {
	key := renderLabels(labels)
	s := f.byLabels[key]
	if s == nil {
		s = &series{labels: key}
		f.byLabels[key] = s
		f.series = append(f.series, s)
	}
	return s
}

// Counter returns the counter for (name, labels), creating and
// registering it on first use. Labels are alternating key, value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getFamily(name, help, "counter").getSeries(labels)
	if s.ctr == nil {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getFamily(name, help, "gauge").getSeries(labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers fn as the value source for (name, labels). A
// repeat registration replaces the function, so restarted components
// (e.g. a rebuilt Hub in tests) always report through the live one.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getFamily(name, help, "gauge").getSeries(labels)
	s.fn = fn
}

// Histogram returns the histogram for (name, labels), creating it on
// first use.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getFamily(name, help, "histogram").getSeries(labels)
	if s.hist == nil {
		s.hist = &Histogram{}
	}
	return s.hist
}

// WritePrometheus renders every registered family in text exposition
// format v0.0.4. Families appear in registration order; series within a
// family are sorted by label set for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.order))
	copy(fams, r.order)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		r.mu.Lock()
		ser := make([]*series, len(f.series))
		copy(ser, f.series)
		r.mu.Unlock()
		sort.Slice(ser, func(i, j int) bool { return ser[i].labels < ser[j].labels })

		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range ser {
			switch {
			case s.hist != nil:
				writeHistogram(&b, f.name, s.labels, s.hist)
			case s.ctr != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.ctr.Load())
			case s.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels,
					strconv.FormatFloat(s.fn(), 'g', -1, 64))
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.gauge.Load())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders the cumulative _bucket / _sum / _count triplet
// for one histogram series. Bucket upper bounds are powers of two: a
// sample lands under the smallest le >= value, so integer samples obey
// the exposition format's le semantics exactly.
func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	counts, total, sum := h.snapshot()
	// Merge le into any existing label set.
	pre := "{"
	if labels != "" {
		pre = labels[:len(labels)-1] + ","
	}
	var cum uint64
	for i := 0; i < histBuckets-1; i++ {
		cum += counts[i]
		fmt.Fprintf(b, "%s_bucket%sle=\"%s\"} %d\n", name, pre,
			strconv.FormatFloat(float64(uint64(1)<<uint(i)), 'g', -1, 64), cum)
	}
	fmt.Fprintf(b, "%s_bucket%sle=\"+Inf\"} %d\n", name, pre, total)
	fmt.Fprintf(b, "%s_sum%s %d\n", name, labels, sum)
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, total)
}

// Handler serves the registry in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// AttachDebug mounts GET /metrics (the Default registry) and the
// net/http/pprof endpoints on mux.
func AttachDebug(mux *http.ServeMux) {
	mux.Handle("GET /metrics", Default.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
