package telemetry

// EngineSnapshot is a per-run tally of the same counters the global
// registry aggregates process-wide. The engine accumulates it with
// plain (non-atomic) arithmetic on its own goroutine and copies it into
// Result.Telemetry, so library users and simevo-bench read identical
// numbers without scraping HTTP. JSON tags let simevo-bench embed the
// counters in BENCH_baseline.json.
type EngineSnapshot struct {
	Iterations uint64 `json:"iterations"`

	EvalNs   uint64 `json:"eval_ns"`
	SelectNs uint64 `json:"select_ns"`
	AllocNs  uint64 `json:"alloc_ns"`

	// Allocation sub-phase split: per-cell trial preparation (capture +
	// bucket build + CompileTrials), the vacancy scans themselves, and the
	// commit/bookkeeping tail. Sums to ~AllocNs.
	AllocPrepNs   uint64 `json:"alloc_prep_ns"`
	AllocScanNs   uint64 `json:"alloc_scan_ns"`
	AllocCommitNs uint64 `json:"alloc_commit_ns"`

	Evals            uint64 `json:"evals"`
	IncrementalEvals uint64 `json:"incremental_evals"`
	FullRebuilds     uint64 `json:"full_rebuilds"`
	DirtyNets        uint64 `json:"dirty_nets"`

	GoodnessHits   uint64 `json:"goodness_hits"`
	GoodnessMisses uint64 `json:"goodness_misses"`

	ScanVacancies     uint64 `json:"scan_vacancies"`
	ScanPrunedBBox    uint64 `json:"scan_pruned_bbox"`
	ScanPrunedSuffix  uint64 `json:"scan_pruned_suffix"`
	ScanBailedExact   uint64 `json:"scan_bailed_exact"`
	ScanScored        uint64 `json:"scan_scored"`
	ScanSkippedBucket uint64 `json:"scan_skipped_bucket"`
	ScanRowsVisited   uint64 `json:"scan_rows_visited"`

	CostFull          uint64 `json:"cost_full"`
	CostDirty         uint64 `json:"cost_dirty"`
	CostDirtyFallback uint64 `json:"cost_dirty_fallback"`

	TimingUpdates   uint64 `json:"timing_updates"`
	TimingRebuilds  uint64 `json:"timing_rebuilds"`
	TimingConeCells uint64 `json:"timing_cone_cells"`

	// Congestion grid activity (zero unless the objective set includes
	// Congest): individual bin add/subtract writes and full grid rebuilds.
	CongestBinUpdates uint64 `json:"congest_bin_updates"`
	CongestRebuilds   uint64 `json:"congest_rebuilds"`
}

// Counters flattens the snapshot into a name → value map, matching the
// JSON field names. Handy for reports that iterate metrics generically.
func (s *EngineSnapshot) Counters() map[string]uint64 {
	return map[string]uint64{
		"iterations":          s.Iterations,
		"eval_ns":             s.EvalNs,
		"select_ns":           s.SelectNs,
		"alloc_ns":            s.AllocNs,
		"alloc_prep_ns":       s.AllocPrepNs,
		"alloc_scan_ns":       s.AllocScanNs,
		"alloc_commit_ns":     s.AllocCommitNs,
		"evals":               s.Evals,
		"incremental_evals":   s.IncrementalEvals,
		"full_rebuilds":       s.FullRebuilds,
		"dirty_nets":          s.DirtyNets,
		"goodness_hits":       s.GoodnessHits,
		"goodness_misses":     s.GoodnessMisses,
		"scan_vacancies":      s.ScanVacancies,
		"scan_pruned_bbox":    s.ScanPrunedBBox,
		"scan_pruned_suffix":  s.ScanPrunedSuffix,
		"scan_bailed_exact":   s.ScanBailedExact,
		"scan_scored":         s.ScanScored,
		"scan_skipped_bucket": s.ScanSkippedBucket,
		"scan_rows_visited":   s.ScanRowsVisited,
		"cost_full":           s.CostFull,
		"cost_dirty":          s.CostDirty,
		"cost_dirty_fallback": s.CostDirtyFallback,
		"timing_updates":      s.TimingUpdates,
		"timing_rebuilds":     s.TimingRebuilds,
		"timing_cone_cells":   s.TimingConeCells,
		"congest_bin_updates": s.CongestBinUpdates,
		"congest_rebuilds":    s.CongestRebuilds,
	}
}
