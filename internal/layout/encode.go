package layout

import (
	"encoding/binary"
	"fmt"

	"simevo/internal/netlist"
)

// Wire formats used by the parallel strategies to ship placements between
// ranks. All values are little-endian int32. A full placement is:
//
//	numRows, then per row: count, cellID...
//
// A row subset is:
//
//	numEntries, then per entry: rowIndex, count, cellID...
//
// Sizes are what the network model charges for, so the encoding is kept
// close to what the paper's C/MPI implementation would have sent (4 bytes
// per cell reference).

// Encode serializes the full slot assignment.
func (p *Placement) Encode() []byte {
	n := 1 + p.numRows
	for r := range p.rows {
		n += len(p.rows[r])
	}
	buf := make([]byte, 0, 4*n)
	buf = appendI32(buf, int32(p.numRows))
	for r := range p.rows {
		buf = appendI32(buf, int32(len(p.rows[r])))
		for _, id := range p.rows[r] {
			buf = appendI32(buf, int32(id))
		}
	}
	return buf
}

// DecodePlacement reconstructs a placement of ckt from Encode output.
func DecodePlacement(ckt *netlist.Circuit, data []byte) (*Placement, error) {
	p, _, err := DecodePlacementPrefix(ckt, data)
	return p, err
}

// DecodePlacementPrefix decodes a placement from the front of data and
// returns the unconsumed remainder, for messages that append further
// payload after the placement.
func DecodePlacementPrefix(ckt *netlist.Circuit, data []byte) (*Placement, []byte, error) {
	d := decoder{data: data}
	numRows, err := d.i32()
	if err != nil {
		return nil, nil, err
	}
	if numRows <= 0 || numRows > 1<<20 {
		return nil, nil, fmt.Errorf("layout: decoded row count %d out of range", numRows)
	}
	p := New(ckt, int(numRows))
	for r := 0; r < int(numRows); r++ {
		count, err := d.i32()
		if err != nil {
			return nil, nil, err
		}
		if count < 0 || int(count) > len(ckt.Cells) {
			return nil, nil, fmt.Errorf("layout: decoded row %d count %d out of range", r, count)
		}
		row := make([]netlist.CellID, count)
		for i := range row {
			v, err := d.i32()
			if err != nil {
				return nil, nil, err
			}
			if v < 0 || int(v) >= len(ckt.Cells) {
				return nil, nil, fmt.Errorf("layout: decoded cell id %d out of range", v)
			}
			row[i] = netlist.CellID(v)
			p.slotOf[v] = SlotRef{Row: int32(r), Idx: int32(i)}
		}
		p.rows[r] = row
	}
	p.dirty = true
	p.Recompute()
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	return p, d.data[d.off:], nil
}

// EncodeRows serializes the contents of a subset of rows.
func (p *Placement) EncodeRows(rows []int) []byte {
	n := 1
	for _, r := range rows {
		n += 2 + len(p.rows[r])
	}
	buf := make([]byte, 0, 4*n)
	buf = appendI32(buf, int32(len(rows)))
	for _, r := range rows {
		buf = appendI32(buf, int32(r))
		buf = appendI32(buf, int32(len(p.rows[r])))
		for _, id := range p.rows[r] {
			buf = appendI32(buf, int32(id))
		}
	}
	return buf
}

// ApplyRows overwrites the given rows from EncodeRows output produced by a
// copy of the same placement (Type II merge step). Slot back-references for
// the affected cells are updated; the caller must Recompute before reading
// coordinates.
func (p *Placement) ApplyRows(data []byte) error {
	d := decoder{data: data}
	entries, err := d.i32()
	if err != nil {
		return err
	}
	for e := 0; e < int(entries); e++ {
		r, err := d.i32()
		if err != nil {
			return err
		}
		if r < 0 || int(r) >= p.numRows {
			return fmt.Errorf("layout: ApplyRows row %d out of range", r)
		}
		count, err := d.i32()
		if err != nil {
			return err
		}
		if count < 0 || int(count) > len(p.ckt.Cells) {
			return fmt.Errorf("layout: ApplyRows count %d out of range", count)
		}
		row := make([]netlist.CellID, count)
		for i := range row {
			v, err := d.i32()
			if err != nil {
				return err
			}
			if v < 0 || int(v) >= len(p.ckt.Cells) {
				return fmt.Errorf("layout: ApplyRows cell id %d out of range", v)
			}
			row[i] = netlist.CellID(v)
		}
		p.rows[r] = row
		for i, id := range row {
			p.slotOf[id] = SlotRef{Row: r, Idx: int32(i)}
		}
	}
	p.dirty = true
	return nil
}

func appendI32(buf []byte, v int32) []byte {
	return binary.LittleEndian.AppendUint32(buf, uint32(v))
}

type decoder struct {
	data []byte
	off  int
}

func (d *decoder) i32() (int32, error) {
	if d.off+4 > len(d.data) {
		return 0, fmt.Errorf("layout: truncated encoding at offset %d", d.off)
	}
	v := int32(binary.LittleEndian.Uint32(d.data[d.off:]))
	d.off += 4
	return v, nil
}
