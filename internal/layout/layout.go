// Package layout models standard-cell row placement.
//
// A placement assigns every movable cell of a circuit to a slot in one of a
// fixed number of horizontal rows. Cells have integer widths in "sites"; a
// cell's physical x coordinate is the prefix sum of the widths before it in
// its row, and its y coordinate is its row index times the row pitch. I/O
// pads sit at fixed positions on the left (inputs) and right (outputs) die
// edges.
//
// The SimE allocation operator removes the selected cells, leaving holes,
// and then fills each hole with exactly one selected cell (a bijection
// between selected cells and vacated slots, as in Kling-Banerjee ESP). The
// hole mechanism keeps slot references stable during an iteration; physical
// coordinates are refreshed once per iteration with Recompute. Trial
// placements during allocation therefore score against slightly stale
// coordinates when cell widths differ — exactly the "error in optimum cell
// position determination" the paper acknowledges for its own implementation.
package layout

import (
	"fmt"
	"math"

	"simevo/internal/netlist"
	"simevo/internal/rng"
)

// RowPitch is the vertical distance between adjacent row centerlines, in
// site units.
const RowPitch = 3.0

// SlotRef identifies a slot: a position within a row.
type SlotRef struct {
	Row, Idx int32
}

// NoSlot is the slot reference for unplaced cells (pads).
var NoSlot = SlotRef{Row: -1, Idx: -1}

// Placement is a complete assignment of movable cells to row slots.
type Placement struct {
	ckt     *netlist.Circuit
	numRows int

	rows   [][]netlist.CellID // slot contents; netlist.NoCell marks a hole
	slotOf []SlotRef          // per cell; NoSlot for pads
	x, y   []float64          // physical centers per cell (pads fixed)

	rowWidth []int // summed widths per row (holes keep their last width? no: recomputed)
	estWidth float64
	dirty    bool // true when Recompute is needed

	// Coordinate-change journal: when enabled, every cell whose physical
	// coordinates change (through Recompute or SetCoordHint) is recorded
	// once until drained. Incremental net-cost evaluators use it to
	// re-estimate only the nets touched since their last sync.
	journal   bool
	changed   []netlist.CellID
	inJournal []bool
}

// DefaultNumRows picks a row count giving a roughly square die for the
// circuit, with at least 8 rows (the Type II strategy partitions rows over
// up to 5 processors).
func DefaultNumRows(ckt *netlist.Circuit) int {
	total := ckt.TotalWidth()
	rows := int(math.Round(math.Sqrt(float64(total) / RowPitch)))
	if rows < 8 {
		rows = 8
	}
	return rows
}

// New creates an empty placement (no cells placed) with pad coordinates
// fixed on the die boundary.
func New(ckt *netlist.Circuit, numRows int) *Placement {
	if numRows <= 0 {
		numRows = DefaultNumRows(ckt)
	}
	p := &Placement{
		ckt:      ckt,
		numRows:  numRows,
		rows:     make([][]netlist.CellID, numRows),
		slotOf:   make([]SlotRef, len(ckt.Cells)),
		x:        make([]float64, len(ckt.Cells)),
		y:        make([]float64, len(ckt.Cells)),
		rowWidth: make([]int, numRows),
		estWidth: float64(ckt.TotalWidth()) / float64(numRows),
		dirty:    true,
	}
	for i := range p.slotOf {
		p.slotOf[i] = NoSlot
	}
	p.placePads()
	return p
}

// placePads fixes pad coordinates: inputs spread along the left edge,
// outputs along the right edge.
func (p *Placement) placePads() {
	height := float64(p.numRows) * RowPitch
	spread := func(pads []netlist.CellID, x float64) {
		n := len(pads)
		for k, id := range pads {
			p.x[id] = x
			p.y[id] = (float64(k) + 0.5) / float64(n) * height
		}
	}
	spread(p.ckt.PIs, -4.0)
	spread(p.ckt.POs, p.estWidth+4.0)
}

// NewRandom creates a random initial placement: movable cells are shuffled
// and dealt greedily to the currently narrowest row, which balances row
// widths.
func NewRandom(ckt *netlist.Circuit, numRows int, r *rng.R) *Placement {
	p := New(ckt, numRows)
	movable := append([]netlist.CellID(nil), ckt.Movable()...)
	r.Shuffle(len(movable), func(i, j int) { movable[i], movable[j] = movable[j], movable[i] })
	widths := make([]int, p.numRows)
	for _, id := range movable {
		best := 0
		for row := 1; row < p.numRows; row++ {
			if widths[row] < widths[best] {
				best = row
			}
		}
		p.rows[best] = append(p.rows[best], id)
		p.slotOf[id] = SlotRef{Row: int32(best), Idx: int32(len(p.rows[best]) - 1)}
		widths[best] += ckt.Cells[id].Width
	}
	p.dirty = true
	p.Recompute()
	return p
}

// NewClustered creates a clustered (non-uniform) initial placement: cells
// are ordered by a breadth-first traversal of the netlist connectivity
// graph from shuffled seeds and dealt row-major, filling each row to the
// balanced width before moving to the next. Connected cells land in
// adjacent slots, so net bounding boxes start small and heavily
// overlapping — routing demand concentrates into hotspots instead of the
// near-uniform spread the random deal produces. This is the start the
// large-tier congestion gate needs: a uniform-random 100k-cell start has
// essentially zero bin overflow, so a congestion objective has nothing to
// discriminate on.
func NewClustered(ckt *netlist.Circuit, numRows int, r *rng.R) *Placement {
	p := New(ckt, numRows)
	movable := append([]netlist.CellID(nil), ckt.Movable()...)
	r.Shuffle(len(movable), func(i, j int) { movable[i], movable[j] = movable[j], movable[i] })

	isMovable := make([]bool, len(ckt.Cells))
	for _, id := range movable {
		isMovable[id] = true
	}
	// BFS over net incidence: a visited cell pulls every unvisited movable
	// cell sharing a net with it into the same cluster. The shuffled seed
	// order (and the deterministic net/pin order below) makes the traversal
	// reproducible for a given rng stream.
	order := make([]netlist.CellID, 0, len(movable))
	visited := make([]bool, len(ckt.Cells))
	queue := make([]netlist.CellID, 0, 64)
	var nets []netlist.NetID
	for _, seed := range movable {
		if visited[seed] {
			continue
		}
		visited[seed] = true
		queue = append(queue[:0], seed)
		for len(queue) > 0 {
			id := queue[0]
			queue = queue[1:]
			order = append(order, id)
			nets = ckt.CellNets(id, nets[:0])
			for _, n := range nets {
				net := &ckt.Nets[n]
				visit := func(c netlist.CellID) {
					if c != netlist.NoCell && isMovable[c] && !visited[c] {
						visited[c] = true
						queue = append(queue, c)
					}
				}
				visit(net.Driver)
				for _, s := range net.Sinks {
					visit(s)
				}
			}
		}
	}

	// Deal the traversal order row-major against the balanced row width, so
	// each BFS cluster occupies a contiguous band of adjacent slots (and
	// adjacent rows, for clusters wider than a row).
	target := (ckt.TotalWidth() + p.numRows - 1) / p.numRows
	row, width := 0, 0
	for _, id := range order {
		if width >= target && row < p.numRows-1 {
			row++
			width = 0
		}
		p.rows[row] = append(p.rows[row], id)
		p.slotOf[id] = SlotRef{Row: int32(row), Idx: int32(len(p.rows[row]) - 1)}
		width += ckt.Cells[id].Width
	}
	p.dirty = true
	p.Recompute()
	return p
}

// Circuit returns the circuit being placed.
func (p *Placement) Circuit() *netlist.Circuit { return p.ckt }

// NumRows returns the number of placement rows.
func (p *Placement) NumRows() int { return p.numRows }

// Row returns the slot contents of row r. The returned slice must not be
// modified.
func (p *Placement) Row(r int) []netlist.CellID { return p.rows[r] }

// Slot returns the slot currently holding the cell.
func (p *Placement) Slot(id netlist.CellID) SlotRef { return p.slotOf[id] }

// Recompute refreshes physical coordinates and row widths from the slot
// assignment. Holes occupy no width. With journaling enabled, cells whose
// coordinates actually change are recorded — covering every slot-level
// mutation path (swaps, hole fills, external row merges) without those
// paths needing journal awareness of their own.
func (p *Placement) Recompute() {
	for row := 0; row < p.numRows; row++ {
		xoff := 0
		y := RowY(row) // the single source of the centerline expression
		for _, id := range p.rows[row] {
			if id == netlist.NoCell {
				continue
			}
			w := p.ckt.Cells[id].Width
			x := float64(xoff) + float64(w)/2
			if p.journal && (p.x[id] != x || p.y[id] != y) {
				p.recordChange(id)
			}
			p.x[id] = x
			p.y[id] = y
			xoff += w
		}
		p.rowWidth[row] = xoff
	}
	p.dirty = false
}

// JournalCoords enables or disables coordinate-change journaling.
// Enabling is idempotent and keeps any undrained entries.
func (p *Placement) JournalCoords(on bool) {
	p.journal = on
	if on && p.inJournal == nil {
		p.inJournal = make([]bool, len(p.ckt.Cells))
	}
}

// DrainChangedCells appends the journaled cells to dst, clears the
// journal, and returns the extended slice.
func (p *Placement) DrainChangedCells(dst []netlist.CellID) []netlist.CellID {
	dst = append(dst, p.changed...)
	p.ResetJournal()
	return dst
}

// ResetJournal discards all undrained journal entries.
func (p *Placement) ResetJournal() {
	for _, id := range p.changed {
		p.inJournal[id] = false
	}
	p.changed = p.changed[:0]
}

func (p *Placement) recordChange(id netlist.CellID) {
	if !p.inJournal[id] {
		p.inJournal[id] = true
		p.changed = append(p.changed, id)
	}
}

// X returns the physical x coordinate (site units) of the cell's center.
// Valid only after Recompute (unless the cell is a pad).
func (p *Placement) X(id netlist.CellID) float64 { return p.x[id] }

// Y returns the physical y coordinate of the cell's center.
func (p *Placement) Y(id netlist.CellID) float64 { return p.y[id] }

// Coord returns the cell's physical center.
func (p *Placement) Coord(id netlist.CellID) (x, y float64) { return p.x[id], p.y[id] }

// RowY returns the physical y coordinate of a row's centerline.
func RowY(row int) float64 { return (float64(row) + 0.5) * RowPitch }

// SetCoordHint overrides a cell's cached coordinates until the next
// Recompute. The allocation operator uses it so that cells already placed
// this iteration are scored at their new (approximate) location rather than
// their stale one.
func (p *Placement) SetCoordHint(id netlist.CellID, x, y float64) {
	if p.journal && (p.x[id] != x || p.y[id] != y) {
		p.recordChange(id)
	}
	p.x[id], p.y[id] = x, y
}

// AppendToRow places a not-yet-placed cell at the end of a row (used when
// constructing placements from external encodings such as GA genomes).
func (p *Placement) AppendToRow(row int, id netlist.CellID) {
	if p.slotOf[id] != NoSlot {
		panic(fmt.Sprintf("layout: AppendToRow with already-placed cell %d", id))
	}
	p.rows[row] = append(p.rows[row], id)
	p.slotOf[id] = SlotRef{Row: int32(row), Idx: int32(len(p.rows[row]) - 1)}
	p.dirty = true
}

// RemoveToHole removes the cell from its slot, leaving a hole, and returns
// the vacated slot reference.
func (p *Placement) RemoveToHole(id netlist.CellID) SlotRef {
	ref := p.slotOf[id]
	if ref == NoSlot {
		panic(fmt.Sprintf("layout: RemoveToHole on unplaced cell %d", id))
	}
	p.rows[ref.Row][ref.Idx] = netlist.NoCell
	p.slotOf[id] = NoSlot
	p.dirty = true
	return ref
}

// FillHole places the cell into a hole created by RemoveToHole.
func (p *Placement) FillHole(ref SlotRef, id netlist.CellID) {
	if p.rows[ref.Row][ref.Idx] != netlist.NoCell {
		panic(fmt.Sprintf("layout: FillHole target %v is occupied", ref))
	}
	if p.slotOf[id] != NoSlot {
		panic(fmt.Sprintf("layout: FillHole with already-placed cell %d", id))
	}
	p.rows[ref.Row][ref.Idx] = id
	p.slotOf[id] = ref
	p.dirty = true
}

// SlotDelta relocates one cell to a new slot. A batch of deltas describes
// a permutation: the vacated slots of the listed cells are exactly the
// target slots, which is what the SimE allocation operator produces (a
// bijection between selected cells and vacated slots) and what one Type II
// master merge amounts to. Entries whose cell already sits in the target
// slot are allowed and are no-ops.
type SlotDelta struct {
	Cell netlist.CellID
	Row  int32
	Idx  int32
}

// SnapshotSlots copies every cell's current slot into dst (allocated if too
// small) — the reference state DiffSlots compares against.
func (p *Placement) SnapshotSlots(dst []SlotRef) []SlotRef {
	if cap(dst) < len(p.slotOf) {
		dst = make([]SlotRef, len(p.slotOf))
	}
	dst = dst[:len(p.slotOf)]
	copy(dst, p.slotOf)
	return dst
}

// DiffSlots appends a delta for every cell whose slot differs from the
// snapshot and returns the extended slice. Applying the result to a
// placement in the snapshot state reproduces this placement's slot
// assignment exactly.
func (p *Placement) DiffSlots(prev []SlotRef, dst []SlotDelta) []SlotDelta {
	for id, ref := range p.slotOf {
		if ref != prev[id] {
			dst = append(dst, SlotDelta{Cell: netlist.CellID(id), Row: ref.Row, Idx: ref.Idx})
		}
	}
	return dst
}

// DiffSlotsTo appends a delta for every cell whose slot differs from the
// target assignment and returns the extended slice — the inverse direction
// of DiffSlots: applying the result to THIS placement moves it into the
// target state. Both assignments must be full (hole-free) slot assignments
// over identical row shapes; then the differing cells form a permutation
// of their slots and the batch satisfies the ApplySlotDeltas contract.
func (p *Placement) DiffSlotsTo(target []SlotRef, dst []SlotDelta) []SlotDelta {
	for id, ref := range p.slotOf {
		if t := target[id]; ref != t && t != NoSlot {
			dst = append(dst, SlotDelta{Cell: netlist.CellID(id), Row: t.Row, Idx: t.Idx})
		}
	}
	return dst
}

// ApplySlotDeltas relocates the listed cells: all are lifted out of their
// current slots first, then placed into their target slots. The batch must
// be a permutation (see SlotDelta) — every target must be one of the
// vacated slots — otherwise an error is returned and the placement may be
// left with holes. The caller must Recompute before reading coordinates.
func (p *Placement) ApplySlotDeltas(ds []SlotDelta) error {
	for _, d := range ds {
		if int(d.Row) < 0 || int(d.Row) >= p.numRows {
			return fmt.Errorf("layout: delta row %d out of range", d.Row)
		}
		if int(d.Idx) < 0 || int(d.Idx) >= len(p.rows[d.Row]) {
			return fmt.Errorf("layout: delta slot %d:%d out of range", d.Row, d.Idx)
		}
		ref := p.slotOf[d.Cell]
		if ref == NoSlot {
			return fmt.Errorf("layout: delta moves unplaced (or repeated) cell %d", d.Cell)
		}
		p.rows[ref.Row][ref.Idx] = netlist.NoCell
		p.slotOf[d.Cell] = NoSlot
	}
	for _, d := range ds {
		if p.rows[d.Row][d.Idx] != netlist.NoCell {
			return fmt.Errorf("layout: delta target %d:%d is occupied", d.Row, d.Idx)
		}
		p.rows[d.Row][d.Idx] = d.Cell
		p.slotOf[d.Cell] = SlotRef{Row: d.Row, Idx: d.Idx}
	}
	if len(ds) > 0 {
		p.dirty = true
	}
	return nil
}

// SwapCells exchanges the slots of two placed cells.
func (p *Placement) SwapCells(a, b netlist.CellID) {
	ra, rb := p.slotOf[a], p.slotOf[b]
	if ra == NoSlot || rb == NoSlot {
		panic("layout: SwapCells with unplaced cell")
	}
	p.rows[ra.Row][ra.Idx], p.rows[rb.Row][rb.Idx] = b, a
	p.slotOf[a], p.slotOf[b] = rb, ra
	p.dirty = true
}

// Dirty reports whether coordinates are stale (Recompute needed).
func (p *Placement) Dirty() bool { return p.dirty }

// MaxRowWidth returns the widest row's width (the paper's layout width
// cost). Valid after Recompute.
func (p *Placement) MaxRowWidth() int {
	max := 0
	for _, w := range p.rowWidth {
		if w > max {
			max = w
		}
	}
	return max
}

// AvgRowWidth returns total cell width / number of rows — the paper's
// w_avg, the minimum possible layout width.
func (p *Placement) AvgRowWidth() float64 { return p.estWidth }

// WidthOK reports whether the paper's width constraint
// Width - w_avg <= alpha * w_avg holds.
func (p *Placement) WidthOK(alpha float64) bool {
	return float64(p.MaxRowWidth())-p.estWidth <= alpha*p.estWidth
}

// WidthViolation returns how far the layout exceeds the constraint, as a
// fraction of w_avg (0 when satisfied).
func (p *Placement) WidthViolation(alpha float64) float64 {
	excess := float64(p.MaxRowWidth()) - (1+alpha)*p.estWidth
	if excess <= 0 {
		return 0
	}
	return excess / p.estWidth
}

// RowWidth returns the current width of one row. Valid after Recompute.
func (p *Placement) RowWidth(row int) int { return p.rowWidth[row] }

// Clone returns a deep copy sharing only the (immutable) circuit.
func (p *Placement) Clone() *Placement {
	q := &Placement{
		ckt:      p.ckt,
		numRows:  p.numRows,
		rows:     make([][]netlist.CellID, p.numRows),
		slotOf:   append([]SlotRef(nil), p.slotOf...),
		x:        append([]float64(nil), p.x...),
		y:        append([]float64(nil), p.y...),
		rowWidth: append([]int(nil), p.rowWidth...),
		estWidth: p.estWidth,
		dirty:    p.dirty,
	}
	for r := range p.rows {
		q.rows[r] = append([]netlist.CellID(nil), p.rows[r]...)
	}
	return q
}

// Fingerprint hashes the slot assignment (FNV-1a over row contents). Two
// placements of the same circuit have equal fingerprints iff every row has
// identical slot contents — used to verify the Type I trajectory-equivalence
// invariant.
func (p *Placement) Fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	for r := range p.rows {
		mix(uint64(len(p.rows[r])) | 0xabcd0000)
		for _, id := range p.rows[r] {
			mix(uint64(uint32(id)))
		}
	}
	return h
}

// Validate checks the placement invariants: every movable cell is placed in
// exactly one slot, slot back-references agree, and no holes remain.
func (p *Placement) Validate() error {
	seen := make(map[netlist.CellID]SlotRef)
	for r := range p.rows {
		for i, id := range p.rows[r] {
			ref := SlotRef{Row: int32(r), Idx: int32(i)}
			if id == netlist.NoCell {
				return fmt.Errorf("layout: hole remains at %v", ref)
			}
			if prev, dup := seen[id]; dup {
				return fmt.Errorf("layout: cell %d placed at both %v and %v", id, prev, ref)
			}
			seen[id] = ref
			if p.slotOf[id] != ref {
				return fmt.Errorf("layout: cell %d slot back-reference %v != %v", id, p.slotOf[id], ref)
			}
			if p.ckt.Cells[id].IsPad() {
				return fmt.Errorf("layout: pad %d placed in a row", id)
			}
		}
	}
	for _, id := range p.ckt.Movable() {
		if _, ok := seen[id]; !ok {
			return fmt.Errorf("layout: movable cell %d is unplaced", id)
		}
	}
	return nil
}
