package layout

import (
	"testing"
	"testing/quick"

	"simevo/internal/gen"
	"simevo/internal/netlist"
	"simevo/internal/rng"
)

func testCircuit(t testing.TB) *netlist.Circuit {
	t.Helper()
	ckt, err := gen.Generate(gen.Params{
		Name: "lay", Gates: 120, DFFs: 10, PIs: 6, POs: 6, Depth: 8, Seed: 42,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return ckt
}

func TestNewRandomValid(t *testing.T) {
	ckt := testCircuit(t)
	p := NewRandom(ckt, 0, rng.New(1))
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.NumRows() < 8 {
		t.Fatalf("NumRows = %d, want >= 8", p.NumRows())
	}
}

func TestRandomInitBalanced(t *testing.T) {
	ckt := testCircuit(t)
	p := NewRandom(ckt, 10, rng.New(2))
	min, max := 1<<30, 0
	for r := 0; r < p.NumRows(); r++ {
		w := p.RowWidth(r)
		if w < min {
			min = w
		}
		if w > max {
			max = w
		}
	}
	// Greedy width balancing should keep rows within one max cell width.
	if max-min > 8 {
		t.Fatalf("row width spread %d..%d too wide", min, max)
	}
}

func TestCoordinatesArePrefixSums(t *testing.T) {
	ckt := testCircuit(t)
	p := NewRandom(ckt, 10, rng.New(3))
	for r := 0; r < p.NumRows(); r++ {
		xoff := 0.0
		for _, id := range p.Row(r) {
			w := float64(ckt.Cells[id].Width)
			if got := p.X(id); got != xoff+w/2 {
				t.Fatalf("cell %d x = %v, want %v", id, got, xoff+w/2)
			}
			if got := p.Y(id); got != RowY(r) {
				t.Fatalf("cell %d y = %v, want %v", id, got, RowY(r))
			}
			xoff += w
		}
	}
}

func TestPadCoordinatesFixed(t *testing.T) {
	ckt := testCircuit(t)
	p := NewRandom(ckt, 10, rng.New(4))
	for _, pi := range ckt.PIs {
		if p.X(pi) >= 0 {
			t.Fatalf("input pad x = %v, want < 0 (left edge)", p.X(pi))
		}
	}
	for _, po := range ckt.POs {
		if p.X(po) <= p.AvgRowWidth() {
			t.Fatalf("output pad x = %v, want > die width", p.X(po))
		}
	}
}

func TestRemoveFillHole(t *testing.T) {
	ckt := testCircuit(t)
	p := NewRandom(ckt, 10, rng.New(5))
	id := ckt.Movable()[0]
	ref := p.RemoveToHole(id)
	if p.Slot(id) != NoSlot {
		t.Fatal("removed cell still has a slot")
	}
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted a placement with a hole")
	}
	p.FillHole(ref, id)
	p.Recompute()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate after refill: %v", err)
	}
	if p.Slot(id) != ref {
		t.Fatalf("refilled slot = %v, want %v", p.Slot(id), ref)
	}
}

func TestHoleBijection(t *testing.T) {
	// Remove several cells, fill holes with a rotation of the same cells;
	// the placement must remain valid.
	ckt := testCircuit(t)
	p := NewRandom(ckt, 10, rng.New(6))
	cells := append([]netlist.CellID(nil), ckt.Movable()[:10]...)
	refs := make([]SlotRef, len(cells))
	for i, id := range cells {
		refs[i] = p.RemoveToHole(id)
	}
	for i, id := range cells {
		p.FillHole(refs[(i+3)%len(refs)], id)
	}
	p.Recompute()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate after rotated refill: %v", err)
	}
}

func TestFillHolePanics(t *testing.T) {
	ckt := testCircuit(t)
	p := NewRandom(ckt, 10, rng.New(7))
	id := ckt.Movable()[0]
	other := ckt.Movable()[1]
	ref := p.Slot(other)
	defer func() {
		if recover() == nil {
			t.Fatal("FillHole into occupied slot did not panic")
		}
	}()
	p.FillHole(ref, id) // occupied: must panic
}

func TestSwapCells(t *testing.T) {
	ckt := testCircuit(t)
	p := NewRandom(ckt, 10, rng.New(8))
	a, b := ckt.Movable()[0], ckt.Movable()[1]
	ra, rb := p.Slot(a), p.Slot(b)
	p.SwapCells(a, b)
	if p.Slot(a) != rb || p.Slot(b) != ra {
		t.Fatal("SwapCells did not exchange slots")
	}
	p.Recompute()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate after swap: %v", err)
	}
}

func TestWidthCost(t *testing.T) {
	ckt := testCircuit(t)
	p := NewRandom(ckt, 10, rng.New(9))
	maxW := 0
	for r := 0; r < p.NumRows(); r++ {
		sum := 0
		for _, id := range p.Row(r) {
			sum += ckt.Cells[id].Width
		}
		if sum != p.RowWidth(r) {
			t.Fatalf("row %d width %d, want %d", r, p.RowWidth(r), sum)
		}
		if sum > maxW {
			maxW = sum
		}
	}
	if p.MaxRowWidth() != maxW {
		t.Fatalf("MaxRowWidth = %d, want %d", p.MaxRowWidth(), maxW)
	}
	if !p.WidthOK(10) {
		t.Fatal("balanced placement violates a very loose width constraint")
	}
	if p.WidthViolation(10) != 0 {
		t.Fatal("WidthViolation non-zero under loose constraint")
	}
}

func TestWidthViolationDetected(t *testing.T) {
	ckt := testCircuit(t)
	p := NewRandom(ckt, 10, rng.New(10))
	// Pile many cells into row 0 by swapping? Simpler: construct
	// an unbalanced placement manually via holes.
	// Move 30 cells from other rows to the end of row 0 is not supported by
	// the hole API (bijection); instead check the formula directly on an
	// imbalanced fresh placement.
	q := New(ckt, 10)
	for i, id := range ckt.Movable() {
		row := 0
		if i >= len(ckt.Movable())/2 {
			row = 1 + i%9
		}
		q.rows[row] = append(q.rows[row], id)
		q.slotOf[id] = SlotRef{Row: int32(row), Idx: int32(len(q.rows[row]) - 1)}
	}
	q.Recompute()
	if q.WidthOK(0.1) {
		t.Fatalf("half the cells in one row should violate alpha=0.1 (max=%d avg=%.1f)",
			q.MaxRowWidth(), q.AvgRowWidth())
	}
	if q.WidthViolation(0.1) <= 0 {
		t.Fatal("WidthViolation = 0 for an imbalanced placement")
	}
	_ = p
}

func TestCloneIndependent(t *testing.T) {
	ckt := testCircuit(t)
	p := NewRandom(ckt, 10, rng.New(11))
	q := p.Clone()
	if p.Fingerprint() != q.Fingerprint() {
		t.Fatal("clone fingerprint differs")
	}
	a, b := ckt.Movable()[0], ckt.Movable()[1]
	q.SwapCells(a, b)
	if p.Fingerprint() == q.Fingerprint() {
		t.Fatal("mutating clone affected original (or fingerprint insensitive)")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("original corrupted by clone mutation: %v", err)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	ckt := testCircuit(t)
	a := NewRandom(ckt, 10, rng.New(12))
	b := NewRandom(ckt, 10, rng.New(13))
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different placements share a fingerprint")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ckt := testCircuit(t)
	p := NewRandom(ckt, 10, rng.New(14))
	data := p.Encode()
	q, err := DecodePlacement(ckt, data)
	if err != nil {
		t.Fatalf("DecodePlacement: %v", err)
	}
	if p.Fingerprint() != q.Fingerprint() {
		t.Fatal("decode round-trip changed the placement")
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("decoded placement invalid: %v", err)
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	ckt := testCircuit(t)
	p := NewRandom(ckt, 10, rng.New(15))
	data := p.Encode()
	if _, err := DecodePlacement(ckt, data[:len(data)-2]); err == nil {
		t.Fatal("truncated encoding accepted")
	}
	bad := append([]byte(nil), data...)
	bad[4] = 0xff // corrupt first row count
	bad[5] = 0xff
	bad[6] = 0xff
	bad[7] = 0x7f
	if _, err := DecodePlacement(ckt, bad); err == nil {
		t.Fatal("corrupt row count accepted")
	}
}

func TestEncodeApplyRows(t *testing.T) {
	ckt := testCircuit(t)
	p := NewRandom(ckt, 10, rng.New(16))
	q := p.Clone()

	// Permute two rows in q, ship just those rows back to p.
	rows := []int{2, 5}
	// Reverse the order of cells within each row on q.
	for _, r := range rows {
		row := q.rows[r]
		for i, j := 0, len(row)-1; i < j; i, j = i+1, j-1 {
			row[i], row[j] = row[j], row[i]
		}
		for i, id := range row {
			q.slotOf[id] = SlotRef{Row: int32(r), Idx: int32(i)}
		}
	}
	data := q.EncodeRows(rows)
	if err := p.ApplyRows(data); err != nil {
		t.Fatalf("ApplyRows: %v", err)
	}
	p.Recompute()
	if err := p.Validate(); err != nil {
		t.Fatalf("after ApplyRows: %v", err)
	}
	if p.Fingerprint() != q.Fingerprint() {
		t.Fatal("ApplyRows did not reproduce source placement")
	}
}

func TestApplyRowsRejectsCorrupt(t *testing.T) {
	ckt := testCircuit(t)
	p := NewRandom(ckt, 10, rng.New(17))
	data := p.EncodeRows([]int{0})
	if err := p.ApplyRows(data[:3]); err == nil {
		t.Fatal("truncated row encoding accepted")
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	ckt := testCircuit(t)
	prop := func(seed uint64) bool {
		p := NewRandom(ckt, 10, rng.New(seed))
		q, err := DecodePlacement(ckt, p.Encode())
		return err == nil && p.Fingerprint() == q.Fingerprint()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultNumRows(t *testing.T) {
	ckt := testCircuit(t)
	rows := DefaultNumRows(ckt)
	if rows < 8 {
		t.Fatalf("DefaultNumRows = %d, want >= 8", rows)
	}
}

func TestCoordJournal(t *testing.T) {
	ckt := testCircuit(t)
	p := NewRandom(ckt, 8, rng.New(4))

	// Journaling off: mutations record nothing.
	a, b := ckt.Movable()[0], ckt.Movable()[1]
	p.SwapCells(a, b)
	p.Recompute()
	if got := p.DrainChangedCells(nil); len(got) != 0 {
		t.Fatalf("journal off recorded %d cells", len(got))
	}

	p.JournalCoords(true)

	// A swap + recompute must journal every cell whose coordinates moved
	// — at least the two swapped cells (they live in different slots).
	p.SwapCells(a, b)
	before := map[netlist.CellID][2]float64{}
	for _, id := range ckt.Movable() {
		x, y := p.Coord(id)
		before[id] = [2]float64{x, y}
	}
	p.Recompute()
	changed := map[netlist.CellID]bool{}
	for _, id := range p.DrainChangedCells(nil) {
		changed[id] = true
	}
	for _, id := range ckt.Movable() {
		x, y := p.Coord(id)
		moved := before[id] != [2]float64{x, y}
		if moved && !changed[id] {
			t.Fatalf("cell %d moved but was not journaled", id)
		}
		if !moved && changed[id] {
			t.Fatalf("cell %d did not move but was journaled", id)
		}
	}

	// SetCoordHint journals value changes exactly once (deduplicated).
	x, y := p.Coord(a)
	p.SetCoordHint(a, x+1, y)
	p.SetCoordHint(a, x+2, y)
	p.SetCoordHint(a, x+2, y) // no-op: same value
	got := p.DrainChangedCells(nil)
	if len(got) != 1 || got[0] != a {
		t.Fatalf("hint journal = %v, want [%d]", got, a)
	}
	// Drained: the journal is empty again.
	if rest := p.DrainChangedCells(nil); len(rest) != 0 {
		t.Fatalf("journal not cleared: %v", rest)
	}
}

// TestSlotDeltasPatchToTarget is the delta-codec core property at the
// layout level: for two random placements differing by a slot permutation,
// applying DiffSlots output to the first reproduces the second exactly —
// same fingerprint and bitwise-identical physical coordinates.
func TestSlotDeltasPatchToTarget(t *testing.T) {
	ckt := testCircuit(t)
	prop := func(seed uint64) bool {
		base := NewRandom(ckt, 10, rng.New(seed))
		target := base.Clone()
		// Permute a random subset of slots: shuffle cells among their own
		// vacated positions, across rows, as allocation does.
		r := rng.New(seed ^ 0xdecade)
		movable := ckt.Movable()
		k := 2 + int(r.Uint64()%16)
		cells := make([]netlist.CellID, 0, k)
		seen := make(map[netlist.CellID]bool)
		for len(cells) < k {
			id := movable[int(r.Uint64()%uint64(len(movable)))]
			if !seen[id] {
				seen[id] = true
				cells = append(cells, id)
			}
		}
		refs := make([]SlotRef, len(cells))
		for i, id := range cells {
			refs[i] = target.RemoveToHole(id)
		}
		perm := r.Perm(len(cells))
		for i, id := range cells {
			target.FillHole(refs[perm[i]], id)
		}
		target.Recompute()

		snap := base.SnapshotSlots(nil)
		deltas := target.DiffSlots(snap, nil)
		if err := base.ApplySlotDeltas(deltas); err != nil {
			t.Logf("apply: %v", err)
			return false
		}
		base.Recompute()
		if base.Fingerprint() != target.Fingerprint() {
			return false
		}
		if err := base.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		for _, id := range movable {
			bx, by := base.Coord(id)
			tx, ty := target.Coord(id)
			if bx != tx || by != ty {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestApplySlotDeltasRejectsCorrupt asserts malformed batches error out
// instead of corrupting the placement silently.
func TestApplySlotDeltasRejectsCorrupt(t *testing.T) {
	ckt := testCircuit(t)
	mv := ckt.Movable()
	fresh := func() *Placement { return NewRandom(ckt, 10, rng.New(77)) }

	p := fresh()
	if err := p.ApplySlotDeltas([]SlotDelta{{Cell: mv[0], Row: 99, Idx: 0}}); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	p = fresh()
	if err := p.ApplySlotDeltas([]SlotDelta{{Cell: mv[0], Row: 0, Idx: 1 << 20}}); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	p = fresh()
	ref := p.Slot(mv[0])
	dup := []SlotDelta{
		{Cell: mv[0], Row: ref.Row, Idx: ref.Idx},
		{Cell: mv[0], Row: ref.Row, Idx: ref.Idx},
	}
	if err := p.ApplySlotDeltas(dup); err == nil {
		t.Fatal("repeated cell accepted")
	}
	p = fresh()
	other := p.Slot(mv[1])
	if err := p.ApplySlotDeltas([]SlotDelta{{Cell: mv[0], Row: other.Row, Idx: other.Idx}}); err == nil {
		t.Fatal("occupied target accepted")
	}
}

func TestNewClusteredValid(t *testing.T) {
	ckt := testCircuit(t)
	p := NewClustered(ckt, 0, rng.New(1))
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.NumRows() < 8 {
		t.Fatalf("NumRows = %d, want >= 8 (numRows 0 must default like NewRandom)", p.NumRows())
	}
	// Deterministic for a given rng stream, and genuinely different from
	// the uniform deal — otherwise the clustered start gates nothing.
	if p.Fingerprint() != NewClustered(ckt, 0, rng.New(1)).Fingerprint() {
		t.Fatal("NewClustered is not deterministic for a fixed seed")
	}
	if p.Fingerprint() == NewRandom(ckt, 0, rng.New(1)).Fingerprint() {
		t.Fatal("NewClustered degenerated to the uniform-random deal")
	}
}

func TestNewClusteredPacksConnectedCells(t *testing.T) {
	// The 130-cell testCircuit fits in a single BFS cluster, where the
	// clustered deal degenerates to a connectivity-ordered shuffle; the
	// packing effect only shows once the circuit spans many clusters, so
	// this check runs at a few thousand cells.
	ckt, err := gen.Generate(gen.ScaledParams("layclust", 4000, 1))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	// Summed half-perimeter of every net under each start: the BFS deal
	// places connected cells in adjacent slots, so its total net span must
	// come in well under the uniform shuffle's.
	span := func(p *Placement) float64 {
		total := 0.0
		for n := range ckt.Nets {
			net := &ckt.Nets[n]
			minX, maxX := 0.0, 0.0
			minY, maxY := 0.0, 0.0
			first := true
			visit := func(c netlist.CellID) {
				if c == netlist.NoCell {
					return
				}
				x, y := p.Coord(c)
				if first {
					minX, maxX, minY, maxY = x, x, y, y
					first = false
					return
				}
				if x < minX {
					minX = x
				}
				if x > maxX {
					maxX = x
				}
				if y < minY {
					minY = y
				}
				if y > maxY {
					maxY = y
				}
			}
			visit(net.Driver)
			for _, s := range net.Sinks {
				visit(s)
			}
			if !first {
				total += (maxX - minX) + (maxY - minY)
			}
		}
		return total
	}
	clustered := span(NewClustered(ckt, 0, rng.New(7)))
	uniform := span(NewRandom(ckt, 0, rng.New(7)))
	if clustered >= uniform*0.8 {
		t.Fatalf("clustered start total net span %.0f not well under uniform %.0f", clustered, uniform)
	}
}
