// Package rng provides a deterministic, splittable pseudo-random number
// generator used throughout simevo.
//
// Reproducibility is a hard requirement for the experiments in this
// repository: the serial and Type I parallel SimE runs must follow the exact
// same search trajectory for the same seed, and every parallel rank needs an
// independent stream that is a pure function of (seed, rank). The standard
// library's math/rand global state is unsuitable for that, so this package
// implements a small PCG-XSH-RR 64/32 generator (O'Neill 2014) with explicit
// stream selection and deterministic splitting.
package rng

import "math/bits"

const pcgMult = 6364136223846793005

// R is a deterministic random number generator. It is not safe for
// concurrent use; give each goroutine its own stream via Split or NewStream.
type R struct {
	state uint64
	inc   uint64 // stream selector; always odd
}

// New returns a generator seeded with seed on the default stream.
func New(seed uint64) *R {
	return NewStream(seed, 0)
}

// NewStream returns a generator on an explicit stream. Generators with the
// same seed but different streams produce statistically independent
// sequences; this is how per-rank substreams are derived.
func NewStream(seed, stream uint64) *R {
	r := &R{state: 0, inc: stream<<1 | 1}
	r.Uint32()
	r.state += seed
	r.Uint32()
	return r
}

// Split derives a child generator whose future output is independent of the
// parent's. The parent advances by two steps; repeated splits yield distinct
// children.
func (r *R) Split() *R {
	seed := r.Uint64()
	stream := r.Uint64()
	return NewStream(seed, stream)
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *R) Uint32() uint32 {
	old := r.state
	r.state = old*pcgMult + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := int(old >> 59)
	return bits.RotateLeft32(xorshifted, -rot)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *R) Uint64() uint64 {
	hi := uint64(r.Uint32())
	lo := uint64(r.Uint32())
	return hi<<32 | lo
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *R) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed value in [0, n). It panics if n <= 0.
// Modulo bias is removed by rejection sampling.
func (r *R) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	bound := uint64(n)
	// Largest multiple of bound that fits in 64 bits.
	limit := ^uint64(0) - ^uint64(0)%bound
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % bound)
		}
	}
}

// Int63 returns a non-negative 63-bit value, mirroring math/rand.Int63.
func (r *R) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Perm returns a random permutation of [0, n).
func (r *R) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap, via the
// Fisher-Yates algorithm.
func (r *R) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bernoulli reports true with probability p.
func (r *R) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Geometric returns the number of failures before the first success in a
// sequence of Bernoulli(p) trials; p must be in (0, 1]. The result is capped
// at max to keep pathological draws bounded.
func (r *R) Geometric(p float64, max int) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("rng: Geometric called with p <= 0")
	}
	n := 0
	for n < max && !r.Bernoulli(p) {
		n++
	}
	return n
}

// Pick returns a uniformly chosen index weighted by w (all weights must be
// non-negative, with a positive sum).
func (r *R) Pick(w []float64) int {
	var sum float64
	for _, v := range w {
		sum += v
	}
	if sum <= 0 {
		panic("rng: Pick called with non-positive weight sum")
	}
	target := r.Float64() * sum
	acc := 0.0
	for i, v := range w {
		acc += v
		if target < acc {
			return i
		}
	}
	return len(w) - 1
}
