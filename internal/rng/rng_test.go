package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestStreamsDiffer(t *testing.T) {
	a := NewStream(7, 0)
	b := NewStream(7, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different streams produced %d/100 identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split children produced %d/100 identical outputs", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(5).Split()
	b := New(5).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split is not a pure function of parent state (step %d)", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 30} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(23)
	const buckets, draws = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(draws) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.06 {
			t.Fatalf("bucket %d count %d deviates from expected %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	prop := func(seed uint64, raw []byte) bool {
		r := New(seed)
		vals := make([]int, len(raw))
		counts := map[int]int{}
		for i, b := range raw {
			vals[i] = int(b)
			counts[int(b)]++
		}
		r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		for _, v := range vals {
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(41)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		const n = 100000
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Fatalf("Bernoulli(%v) frequency %v", p, got)
		}
	}
}

func TestGeometric(t *testing.T) {
	r := New(43)
	if g := r.Geometric(1.0, 100); g != 0 {
		t.Fatalf("Geometric(1.0) = %d, want 0", g)
	}
	const n = 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(0.5, 1000)
	}
	mean := float64(sum) / n
	// Mean of Geometric(0.5) (failures before success) is (1-p)/p = 1.
	if math.Abs(mean-1.0) > 0.05 {
		t.Fatalf("Geometric(0.5) mean %v, want ~1.0", mean)
	}
}

func TestGeometricCap(t *testing.T) {
	r := New(47)
	for i := 0; i < 1000; i++ {
		if g := r.Geometric(0.01, 5); g > 5 {
			t.Fatalf("Geometric exceeded cap: %d", g)
		}
	}
}

func TestPickWeighted(t *testing.T) {
	r := New(53)
	w := []float64{1, 3, 6}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Pick(w)]++
	}
	for i, want := range []float64{0.1, 0.3, 0.6} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("Pick index %d frequency %v, want ~%v", i, got, want)
		}
	}
}

func TestPickPanicsOnZeroSum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick with zero weights did not panic")
		}
	}()
	New(1).Pick([]float64{0, 0})
}

func TestInt63NonNegative(t *testing.T) {
	r := New(59)
	for i := 0; i < 10000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative value")
		}
	}
}

func TestUint32FullRangeCoverage(t *testing.T) {
	// Sanity check that high and low bits both vary.
	r := New(61)
	var orAll, andAll uint32 = 0, 0xffffffff
	for i := 0; i < 10000; i++ {
		v := r.Uint32()
		orAll |= v
		andAll &= v
	}
	if orAll != 0xffffffff {
		t.Fatalf("some output bits never set: OR=%08x", orAll)
	}
	if andAll != 0 {
		t.Fatalf("some output bits always set: AND=%08x", andAll)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Float64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
