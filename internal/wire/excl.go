package wire

import (
	"sort"

	"simevo/internal/netlist"
)

// Canonical excluding-length formulas shared by the from-scratch Evaluator
// and the Incremental views.
//
// The goodness measure asks, per cell and net: "what would this net cost
// without the cell's pins?" — the basis of the O_i lower bound. Like the
// trial formulas (trial.go), both evaluation modes answer it through the
// SAME arithmetic over the SAME sorted value sequences so the two paths are
// bitwise identical: the full sorted pin multiset with its left-to-right
// prefix sums, plus the excluded cell's coordinate and pin multiplicity k.
// The excluded pins are never materialized out of the arrays — their
// positions are resolved by binary search and their contributions removed
// by counted subtraction, which costs O(log p) per net instead of the
// O(p log p) re-collect-and-sort of the historical implementation.

// searchF64 returns the first index i with v[i] >= x — sort.SearchFloat64s
// semantics. Placement nets are small, so a linear scan beats the binary
// search's branch mispredictions and call overhead on the common sizes;
// past the cutoff it defers to the stdlib. The returned index is identical
// either way, so every consumer stays bitwise deterministic.
func searchF64(v []float64, x float64) int {
	if len(v) <= 24 {
		for i, e := range v {
			if e >= x {
				return i
			}
		}
		return len(v)
	}
	return sort.SearchFloat64s(v, x)
}

// exclSpan returns min and max of the sorted values v after removing k
// entries of value rv (lo is rv's lower-bound insertion index). The caller
// guarantees len(v)-k >= 1.
func exclSpan(v []float64, lo, k int) (min, max float64) {
	n := len(v)
	if lo == 0 {
		min = v[k]
	} else {
		min = v[0]
	}
	if lo+k == n {
		max = v[n-k-1]
	} else {
		max = v[n-1]
	}
	return min, max
}

// hpwlExcl returns the half-perimeter of the pins excluding k entries at
// (rx, ry). The caller guarantees at least two pins remain.
func hpwlExcl(xv, yv []float64, rx, ry float64, k int) float64 {
	minX, maxX := exclSpan(xv, searchF64(xv, rx), k)
	minY, maxY := exclSpan(yv, searchF64(yv, ry), k)
	return (maxX - minX) + (maxY - minY)
}

// exclAt returns element j of the sorted slice v with the k entries at
// index range [lo, lo+k) virtually removed.
func exclAt(v []float64, lo, k, j int) float64 {
	if j >= lo {
		j += k
	}
	return v[j]
}

// exclMedian returns the median of the remaining values, with the same
// even/odd averaging as wire.median.
func exclMedian(v []float64, lo, k int) float64 {
	m := len(v) - k
	if m%2 == 1 {
		return exclAt(v, lo, k, m/2)
	}
	return (exclAt(v, lo, k, m/2-1) + exclAt(v, lo, k, m/2)) / 2
}

// exclBranchSum returns Σ|v_i − med| over the remaining values, using the
// full array's prefix sums with the removed entries' contributions
// subtracted by count: rb of the k removed entries (all of value rv) sit
// below the split. Mirrors branchSumAt's left + right decomposition.
func exclBranchSum(v, p []float64, rv float64, lo, k int, med float64) float64 {
	i := searchF64(v, med) // first stored value >= med
	rb := i - lo
	if rb < 0 {
		rb = 0
	}
	if rb > k {
		rb = k
	}
	n := len(v)
	cntL := i - rb
	sumL := p[i] - float64(rb)*rv
	cntR := (n - i) - (k - rb)
	sumR := (p[n] - p[i]) - float64(k-rb)*rv
	left := med*float64(cntL) - sumL
	right := sumR - med*float64(cntR)
	return left + right
}

// trunkExcl computes the single-trunk length of the remaining pins with the
// trunk along the first axis: remaining along-span plus a branch from every
// remaining across-coordinate to the remaining median. Shapes the sum like
// trunkTrial: span first, then the branch total.
func trunkExcl(along []float64, rAlong float64, across, acrossP []float64, rAcross float64, k int) float64 {
	minA, maxA := exclSpan(along, searchF64(along, rAlong), k)
	cLo := searchF64(across, rAcross)
	med := exclMedian(across, cLo, k)
	return (maxA - minA) + exclBranchSum(across, acrossP, rAcross, cLo, k, med)
}

// steinerExcl returns the single-trunk Steiner length of the pins excluding
// k entries at (rx, ry), taking the cheaper trunk orientation exactly like
// lengthOf and steinerTrial. The caller guarantees more than three pins
// remain (fewer degenerate to hpwlExcl).
func steinerExcl(xv, xp, yv, yp []float64, rx, ry float64, k int) float64 {
	h := trunkExcl(xv, rx, yv, yp, ry, k)
	v := trunkExcl(yv, ry, xv, xp, rx, k)
	if v < h {
		return v
	}
	return h
}

// NetLengthExcluding estimates the net's length over the stored pins minus
// the given cell's — the View counterpart of Evaluator.NetLengthExcluding,
// served from the cached sorted multisets in O(log p) (O(p) for RMST). The
// incremental state must be synced with no cells removed. Both
// implementations evaluate the canonical formulas above over identical
// sorted sequences and prefix sums, so their results are bitwise equal.
func (v *View) NetLengthExcluding(n netlist.NetID, id netlist.CellID) float64 {
	k := 0
	for _, ref := range v.inc.CellPins(id) {
		if ref.Net == n {
			k = int(ref.K)
			break
		}
	}
	return v.NetLengthExcludingK(n, id, k)
}

// NetLengthExcludingK is NetLengthExcluding with the cell's pin
// multiplicity k on the net already known — the goodness hot loop iterates
// the cell's PinRefs, so the per-net incidence rescan is redundant there.
func (v *View) NetLengthExcludingK(n netlist.NetID, id netlist.CellID, k int) float64 {
	inc := v.inc
	g := &inc.geoms[n]
	m := len(g.xv) - k
	if m < 2 {
		return 0
	}
	rx, ry := inc.cx[id], inc.cy[id]
	switch inc.est {
	case HPWL:
		return hpwlExcl(g.xv, g.yv, rx, ry, k)
	case Steiner:
		if m <= 3 {
			return hpwlExcl(g.xv, g.yv, rx, ry, k)
		}
		return steinerExcl(g.xv, g.xp, g.yv, g.yp, rx, ry, k)
	case RMST:
		v.collectRemainingExcluding(n, id)
		return v.ev.rmstLength()
	}
	panic("wire: unknown estimator")
}

// collectRemainingExcluding fills the view scratch with the net's pins in
// pin order from the mirror, skipping the excluded cell — the same order
// Evaluator.collect produces, keeping RMST exclusion bitwise identical.
func (v *View) collectRemainingExcluding(n netlist.NetID, exclude netlist.CellID) {
	inc := v.inc
	net := inc.ckt.Net(n)
	v.ev.xs, v.ev.ys = v.ev.xs[:0], v.ev.ys[:0]
	add := func(id netlist.CellID) {
		if id == netlist.NoCell || id == exclude {
			return
		}
		v.ev.xs = append(v.ev.xs, inc.cx[id])
		v.ev.ys = append(v.ev.ys, inc.cy[id])
	}
	add(net.Driver)
	for _, s := range net.Sinks {
		add(s)
	}
}
