package wire

import (
	"math"
	"testing"
	"testing/quick"

	"simevo/internal/gen"
	"simevo/internal/layout"
	"simevo/internal/netlist"
	"simevo/internal/rng"
)

// gridCoords is a test Coords implementation with explicit positions.
type gridCoords map[netlist.CellID][2]float64

func (g gridCoords) Coord(id netlist.CellID) (float64, float64) {
	p := g[id]
	return p[0], p[1]
}

// starCircuit builds one driver gate "d" with n buffer sinks, so the test
// controls the pin count of net "d" directly.
func starCircuit(t *testing.T, n int) *netlist.Circuit {
	t.Helper()
	b := netlist.NewBuilder("star")
	b.AddInput("a")
	b.AddGate("d", netlist.Buf, []string{"a"}, 0)
	for i := 0; i < n; i++ {
		b.AddGate(sinkName(i), netlist.Buf, []string{"d"}, 0)
		b.AddOutput(sinkName(i))
	}
	ckt, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return ckt
}

func sinkName(i int) string { return "s" + string(rune('0'+i)) }

func netByName(t *testing.T, ckt *netlist.Circuit, name string) netlist.NetID {
	t.Helper()
	for i := range ckt.Nets {
		if ckt.Nets[i].Name == name {
			return netlist.NetID(i)
		}
	}
	t.Fatalf("net %q not found", name)
	return netlist.NoNet
}

func TestTwoPinNet(t *testing.T) {
	ckt := starCircuit(t, 1)
	net := netByName(t, ckt, "d")
	coords := gridCoords{}
	for i := range ckt.Cells {
		coords[netlist.CellID(i)] = [2]float64{0, 0}
	}
	driver := ckt.Nets[net].Driver
	sink := ckt.Nets[net].Sinks[0]
	coords[driver] = [2]float64{0, 0}
	coords[sink] = [2]float64{3, 4}

	for _, est := range []Estimator{HPWL, Steiner} {
		e := NewEvaluator(ckt, est)
		if got := e.NetLength(net, coords); got != 7 {
			t.Fatalf("est %d: 2-pin length = %v, want 7", est, got)
		}
	}
}

func TestSteinerEqualsHPWLUpTo3Pins(t *testing.T) {
	ckt := starCircuit(t, 2) // 3 pins total
	net := netByName(t, ckt, "d")
	coords := gridCoords{}
	pts := [][2]float64{{0, 0}, {5, 1}, {2, 7}}
	i := 0
	coords[ckt.Nets[net].Driver] = pts[i]
	for _, s := range ckt.Nets[net].Sinks {
		i++
		coords[s] = pts[i]
	}
	h := NewEvaluator(ckt, HPWL).NetLength(net, coords)
	s := NewEvaluator(ckt, Steiner).NetLength(net, coords)
	if h != s {
		t.Fatalf("3-pin Steiner %v != HPWL %v", s, h)
	}
}

func TestSteinerKnown4Pin(t *testing.T) {
	// Pins at the corners of a 10x10 square: HPWL = 20. The single-trunk
	// tree needs trunk 10 plus two branches of 5 on each side = 20... pins:
	// (0,0),(10,0),(0,10),(10,10): horizontal trunk at median y=5: span 10
	// + branches 5+5+5+5 = 30. Vertical trunk same. HPWL = 20.
	ckt := starCircuit(t, 3)
	net := netByName(t, ckt, "d")
	coords := gridCoords{}
	pts := [][2]float64{{0, 0}, {10, 0}, {0, 10}, {10, 10}}
	coords[ckt.Nets[net].Driver] = pts[0]
	for i, s := range ckt.Nets[net].Sinks {
		coords[s] = pts[i+1]
	}
	h := NewEvaluator(ckt, HPWL).NetLength(net, coords)
	s := NewEvaluator(ckt, Steiner).NetLength(net, coords)
	if h != 20 {
		t.Fatalf("HPWL = %v, want 20", h)
	}
	if s != 30 {
		t.Fatalf("Steiner = %v, want 30", s)
	}
}

func TestSteinerAtLeastHPWL(t *testing.T) {
	// Property: Steiner estimate >= HPWL on random placements of a real
	// circuit (HPWL is a lower bound on any rectilinear Steiner tree).
	ckt, err := gen.Generate(gen.Params{
		Name: "w", Gates: 80, DFFs: 6, PIs: 5, POs: 5, Depth: 7, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed uint64) bool {
		p := layout.NewRandom(ckt, 10, rng.New(seed))
		he := NewEvaluator(ckt, HPWL)
		se := NewEvaluator(ckt, Steiner)
		for i := 0; i < ckt.NumNets(); i++ {
			h := he.NetLength(netlist.NetID(i), p)
			s := se.NetLength(netlist.NetID(i), p)
			if s < h-1e-9 {
				return false
			}
			// Single-trunk is at most 2x HPWL... actually bounded by
			// trunk + n branches each <= half perimeter; use a loose
			// sanity bound relative to pin count.
			deg := float64(ckt.Nets[i].Degree())
			if s > h*deg {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestNetLengthExcluding(t *testing.T) {
	ckt := starCircuit(t, 2)
	net := netByName(t, ckt, "d")
	coords := gridCoords{}
	coords[ckt.Nets[net].Driver] = [2]float64{100, 100} // far outlier
	coords[ckt.Nets[net].Sinks[0]] = [2]float64{0, 0}
	coords[ckt.Nets[net].Sinks[1]] = [2]float64{1, 1}
	e := NewEvaluator(ckt, Steiner)
	full := e.NetLength(net, coords)
	excl := e.NetLengthExcluding(net, ckt.Nets[net].Driver, coords)
	if excl != 2 {
		t.Fatalf("excluding outlier: %v, want 2", excl)
	}
	if full <= excl {
		t.Fatalf("full %v should exceed excluded %v", full, excl)
	}
}

func TestNetLengthExcludingDegenerate(t *testing.T) {
	ckt := starCircuit(t, 1) // 2 pins
	net := netByName(t, ckt, "d")
	coords := gridCoords{}
	coords[ckt.Nets[net].Driver] = [2]float64{0, 0}
	coords[ckt.Nets[net].Sinks[0]] = [2]float64{5, 5}
	e := NewEvaluator(ckt, Steiner)
	if got := e.NetLengthExcluding(net, ckt.Nets[net].Driver, coords); got != 0 {
		t.Fatalf("1 remaining pin length = %v, want 0", got)
	}
}

func TestNetLengthWithCellAt(t *testing.T) {
	ckt := starCircuit(t, 1)
	net := netByName(t, ckt, "d")
	coords := gridCoords{}
	driver, sink := ckt.Nets[net].Driver, ckt.Nets[net].Sinks[0]
	coords[driver] = [2]float64{0, 0}
	coords[sink] = [2]float64{10, 0}
	e := NewEvaluator(ckt, Steiner)
	// Moving the driver next to the sink should shrink the net.
	got := e.NetLengthWithCellAt(net, driver, 9, 0, coords)
	if got != 1 {
		t.Fatalf("trial length = %v, want 1", got)
	}
	// The real placement is unchanged.
	if l := e.NetLength(net, coords); l != 10 {
		t.Fatalf("original length changed: %v", l)
	}
}

func TestLengthsAndTotal(t *testing.T) {
	ckt, err := gen.Generate(gen.Params{
		Name: "w2", Gates: 60, DFFs: 4, PIs: 4, POs: 4, Depth: 6, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := layout.NewRandom(ckt, 8, rng.New(1))
	e := NewEvaluator(ckt, Steiner)
	lengths := e.Lengths(p, nil)
	if len(lengths) != ckt.NumNets() {
		t.Fatalf("Lengths returned %d entries, want %d", len(lengths), ckt.NumNets())
	}
	sum := 0.0
	for i, l := range lengths {
		if l < 0 {
			t.Fatalf("net %d has negative length %v", i, l)
		}
		sum += l
	}
	if got := Total(lengths); math.Abs(got-sum) > 1e-9 {
		t.Fatalf("Total = %v, want %v", got, sum)
	}
	if sum == 0 {
		t.Fatal("total wirelength of a random placement is zero")
	}

	// Reuse: second call must not reallocate.
	l2 := e.Lengths(p, lengths)
	if &l2[0] != &lengths[0] {
		t.Fatal("Lengths reallocated despite sufficient capacity")
	}
}

func TestMovingCellTowardPinsReducesLength(t *testing.T) {
	// Sanity: moving a cell to the median of its net's other pins can not
	// increase that net's Steiner estimate.
	ckt, err := gen.Generate(gen.Params{
		Name: "w3", Gates: 60, DFFs: 4, PIs: 4, POs: 4, Depth: 6, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := layout.NewRandom(ckt, 8, rng.New(2))
	e := NewEvaluator(ckt, Steiner)
	for i := 0; i < ckt.NumNets(); i++ {
		net := &ckt.Nets[i]
		if net.Driver == netlist.NoCell || ckt.Cells[net.Driver].IsPad() {
			continue
		}
		if net.Degree() < 3 {
			continue
		}
		full := e.NetLength(netlist.NetID(i), p)
		base := e.NetLengthExcluding(netlist.NetID(i), net.Driver, p)
		if base > full+1e-9 {
			t.Fatalf("net %d: excluding a pin increased length %v -> %v", i, full, base)
		}
	}
}
