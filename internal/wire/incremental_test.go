package wire

import (
	"testing"

	"simevo/internal/gen"
	"simevo/internal/layout"
	"simevo/internal/netlist"
	"simevo/internal/rng"
)

func testCircuit(t testing.TB, seed int64) *netlist.Circuit {
	t.Helper()
	ckt, err := gen.Generate(gen.Params{
		Name: "inc", Gates: 120, DFFs: 8, PIs: 6, POs: 6, Depth: 8, Seed: uint64(seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	return ckt
}

var allEstimators = []Estimator{HPWL, Steiner, RMST}

// mutableCoords is a plain coordinate table implementing ChangeSource, so
// the tests can drive arbitrary move sequences through Sync.
type mutableCoords struct {
	x, y    []float64
	changed []netlist.CellID
}

func newMutableCoords(ckt *netlist.Circuit, p *layout.Placement) *mutableCoords {
	m := &mutableCoords{
		x: make([]float64, len(ckt.Cells)),
		y: make([]float64, len(ckt.Cells)),
	}
	for i := range ckt.Cells {
		m.x[i], m.y[i] = p.Coord(netlist.CellID(i))
	}
	return m
}

func (m *mutableCoords) Coord(id netlist.CellID) (float64, float64) { return m.x[id], m.y[id] }

func (m *mutableCoords) DrainChangedCells(dst []netlist.CellID) []netlist.CellID {
	dst = append(dst, m.changed...)
	m.changed = m.changed[:0]
	return dst
}

func (m *mutableCoords) move(id netlist.CellID, x, y float64) {
	m.x[id], m.y[id] = x, y
	m.changed = append(m.changed, id)
}

// TestIncrementalMatchesScratchUnderMoves drives randomized move sequences
// through Sync and asserts every committed net length stays bitwise equal
// to a from-scratch evaluation, for every estimator.
func TestIncrementalMatchesScratchUnderMoves(t *testing.T) {
	ckt := testCircuit(t, 31)
	movable := ckt.Movable()
	for _, est := range allEstimators {
		place := layout.NewRandom(ckt, 8, rng.New(7))
		coords := newMutableCoords(ckt, place)
		inc := NewIncremental(ckt, est)
		inc.Rebuild(coords)
		ev := NewEvaluator(ckt, est)
		r := rng.New(99)

		var got, want []float64
		for step := 0; step < 200; step++ {
			// Move 1-3 random cells to random positions (half-site grid with
			// occasional coincident values to exercise duplicate handling).
			for k := 0; k <= r.Intn(3); k++ {
				id := movable[r.Intn(len(movable))]
				coords.move(id, float64(r.Intn(160))/2, float64(r.Intn(48))/2)
			}
			inc.Sync(coords)
			got = inc.Lengths(got)
			want = ev.Lengths(coords, want)
			for n := range want {
				if got[n] != want[n] {
					t.Fatalf("est %d step %d: net %d incremental %v != scratch %v",
						est, step, n, got[n], want[n])
				}
			}
		}
	}
}

// TestTrialMatchesScratch asserts View trials (one and two candidates) are
// bitwise equal to the Evaluator's canonical trial functions across random
// states, for every estimator.
func TestTrialMatchesScratch(t *testing.T) {
	ckt := testCircuit(t, 32)
	movable := ckt.Movable()
	for _, est := range allEstimators {
		place := layout.NewRandom(ckt, 8, rng.New(11))
		coords := newMutableCoords(ckt, place)
		inc := NewIncremental(ckt, est)
		inc.Rebuild(coords)
		ev := NewEvaluator(ckt, est)
		view := inc.View()
		r := rng.New(5)
		var nets []netlist.NetID

		for step := 0; step < 300; step++ {
			a := movable[r.Intn(len(movable))]
			b := movable[r.Intn(len(movable))]
			for b == a {
				b = movable[r.Intn(len(movable))]
			}
			x1, y1 := float64(r.Intn(160))/2, float64(r.Intn(48))/2
			x2, y2 := float64(r.Intn(160))/2, float64(r.Intn(48))/2

			// Single-cell trials over a's nets.
			inc.RemoveCell(a)
			nets = ckt.CellNets(a, nets[:0])
			for _, n := range nets {
				got := view.TrialNetAt(n, x1, y1)
				want := ev.NetLengthWithCellAt(n, a, x1, y1, coords)
				if got != want {
					t.Fatalf("est %d step %d: net %d 1-cand trial %v != scratch %v",
						est, step, n, got, want)
				}
			}

			// Two-cell trials over nets containing both a and b.
			inc.RemoveCell(b)
			nets = ckt.CellNets(b, nets[:0])
			for _, n := range nets {
				got := view.TrialNetAt2(n, x1, y1, x2, y2)
				want := ev.NetLengthWithCellsAt(n, a, x1, y1, b, x2, y2, coords)
				if got != want {
					t.Fatalf("est %d step %d: net %d 2-cand trial %v != scratch %v",
						est, step, n, got, want)
				}
			}
			inc.RestoreCell(b)
			inc.RestoreCell(a)

			// Occasionally commit a move so trials run against varied states.
			if step%3 == 0 {
				coords.move(a, x1, y1)
				inc.Sync(coords)
			}
		}
	}
}

// TestRemoveRestoreKeepsLengthsValid asserts that a remove/restore pair
// (the trial-scanning pattern) leaves the cached lengths untouched.
func TestRemoveRestoreKeepsLengthsValid(t *testing.T) {
	ckt := testCircuit(t, 33)
	place := layout.NewRandom(ckt, 8, rng.New(3))
	inc := NewIncremental(ckt, Steiner)
	inc.Rebuild(place)
	before := inc.Lengths(nil)

	movable := ckt.Movable()
	r := rng.New(17)
	for i := 0; i < 50; i++ {
		id := movable[r.Intn(len(movable))]
		inc.RemoveCell(id)
		inc.RestoreCell(id)
	}
	after := inc.Lengths(nil)
	for n := range before {
		if before[n] != after[n] {
			t.Fatalf("net %d length changed across remove/restore: %v -> %v", n, before[n], after[n])
		}
	}
}

// TestRebuildIsChecksum asserts the periodic full-recompute invariant:
// rebuilding from a consistent state reproduces identical lengths.
func TestRebuildIsChecksum(t *testing.T) {
	ckt := testCircuit(t, 34)
	for _, est := range allEstimators {
		place := layout.NewRandom(ckt, 8, rng.New(21))
		coords := newMutableCoords(ckt, place)
		inc := NewIncremental(ckt, est)
		inc.Rebuild(coords)
		movable := ckt.Movable()
		r := rng.New(8)
		for i := 0; i < 120; i++ {
			id := movable[r.Intn(len(movable))]
			coords.move(id, float64(r.Intn(100))/2, float64(r.Intn(30))/2)
		}
		inc.Sync(coords)
		incLengths := inc.Lengths(nil)
		inc.Rebuild(coords)
		rebuilt := inc.Lengths(nil)
		for n := range incLengths {
			if incLengths[n] != rebuilt[n] {
				t.Fatalf("est %d: net %d drifted: incremental %v, rebuilt %v",
					est, n, incLengths[n], rebuilt[n])
			}
		}
	}
}

// TestTrialSetMatchesViewTrials pins the compiled scorer to the scalar
// paths: Score must equal the weighted sum of View trials bitwise, and
// ScanBest must pick exactly the vacancy a ScoreBounded loop picks.
func TestTrialSetMatchesViewTrials(t *testing.T) {
	ckt := testCircuit(t, 36)
	movable := ckt.Movable()
	for _, est := range allEstimators {
		place := layout.NewRandom(ckt, 8, rng.New(5))
		inc := NewIncremental(ckt, est)
		inc.Rebuild(place)
		view := inc.View()
		r := rng.New(77)
		var nets []netlist.NetID
		var set TrialSet

		for step := 0; step < 100; step++ {
			id := movable[r.Intn(len(movable))]
			nets = ckt.CellNets(id, nets[:0])
			weights := make([]float64, len(nets))
			for i := range weights {
				weights[i] = 1 + float64(r.Intn(8))/4
			}
			inc.RemoveCell(id)
			inc.CompileTrials(&set, nets, weights, place.NumRows())
			set.PrefillClasses(layout.RowY)

			// Build a vacancy pool on row centerlines.
			nVac := 12
			vacs := make([]Vacancy, nVac)
			free := make([]int32, nVac)
			rowOK := make([]bool, place.NumRows())
			for i := range rowOK {
				rowOK[i] = true
			}
			for i := range vacs {
				row := int32(r.Intn(place.NumRows()))
				vacs[i] = Vacancy{X: float64(r.Intn(120)) / 2, Y: layout.RowY(int(row)), Row: row}
				free[i] = int32(i)
			}

			// Score == Σ TrialNetAt · w, bitwise.
			v0 := vacs[0]
			want := 0.0
			for i, n := range nets {
				want += view.TrialNetAt(n, v0.X, v0.Y) * weights[i]
			}
			if got := set.Score(view, v0.X, v0.Y, int(v0.Row)); got != want {
				t.Fatalf("est %d: Score %v != Σ trials %v", est, got, want)
			}

			// ScanBest == ScoreBounded loop.
			wantBest, wantBound := -1, 1e308
			for _, f := range free {
				vac := vacs[f]
				if s, ok := set.ScoreBounded(view, vac.X, vac.Y, int(vac.Row), wantBound); ok {
					wantBest, wantBound = int(f), s
				}
			}
			gotBest, gotBound := set.ScanBest(view, vacs, free, rowOK, 0, len(free), 1e308, nil)
			if gotBest != wantBest || gotBound != wantBound {
				t.Fatalf("est %d: ScanBest (%d, %v) != ScoreBounded loop (%d, %v)",
					est, gotBest, gotBound, wantBest, wantBound)
			}
			inc.RestoreCell(id)
		}
	}
}

// TestScanBestTrailingZeroTieBreak pins the first-minimum tie-break when a
// cell's trial records end in a zero record (a net whose pins all belong
// to the trialled cell — orderTrials always sorts its zero span last):
// a later vacancy scoring exactly the current best must NOT steal the win.
func TestScanBestTrailingZeroTieBreak(t *testing.T) {
	set := TrialSet{
		items: []compiledTrial{
			{kind: trialBBox, w: 1, minX: 10, maxX: 20, minY: 1.5, maxY: 1.5},
			{kind: trialZero},
		},
		// Hand-built sets must carry the stored-span suffix bounds
		// CompileTrials derives: Σ_{j>=i} w_j · storedSpan_j.
		tail: []float64{10, 0, 0},
	}
	// Two vacancies with identical coordinates — identical scores.
	vacs := []Vacancy{{X: 0, Y: 1.5, Row: 0}, {X: 0, Y: 1.5, Row: 0}}
	free := []int32{0, 1}
	rowOK := []bool{true}

	best, _ := set.ScanBest(nil, vacs, free, rowOK, 0, len(free), 1e308, nil)
	if best != 0 {
		t.Fatalf("ScanBest picked vacancy %d, want the first of the tie (0)", best)
	}
	// ScoreBounded must report the tie as inadmissible (ok=false) even
	// though the trailing record contributes nothing.
	s0 := set.Score(nil, vacs[0].X, vacs[0].Y, -1)
	if _, ok := set.ScoreBounded(nil, vacs[1].X, vacs[1].Y, -1, s0); ok {
		t.Fatal("ScoreBounded admitted a tied vacancy past a trailing zero record")
	}
}

// TestPlacementJournalFeedsSync exercises the real layout journal: slot
// mutations followed by Recompute must surface every coordinate change.
func TestPlacementJournalFeedsSync(t *testing.T) {
	ckt := testCircuit(t, 35)
	place := layout.NewRandom(ckt, 8, rng.New(2))
	place.JournalCoords(true)
	inc := NewIncremental(ckt, Steiner)
	inc.Rebuild(place)
	ev := NewEvaluator(ckt, Steiner)

	movable := ckt.Movable()
	r := rng.New(12)
	var got, want []float64
	for step := 0; step < 60; step++ {
		a := movable[r.Intn(len(movable))]
		b := movable[r.Intn(len(movable))]
		for b == a {
			b = movable[r.Intn(len(movable))]
		}
		place.SwapCells(a, b)
		place.Recompute()
		inc.Sync(place)
		got = inc.Lengths(got)
		want = ev.Lengths(place, want)
		for n := range want {
			if got[n] != want[n] {
				t.Fatalf("step %d: net %d incremental %v != scratch %v", step, n, got[n], want[n])
			}
		}
	}
}

// TestExcludingMatchesScratch asserts the goodness-path invariant: for
// every net and every incident cell, the View's cached-state excluding
// length is bitwise equal to the Evaluator's from-scratch value, across all
// estimators — including after moves synced through the journal.
func TestExcludingMatchesScratch(t *testing.T) {
	for _, est := range allEstimators {
		ckt := testCircuit(t, 5)
		p := layout.NewRandom(ckt, 8, rng.New(5))
		inc := NewIncremental(ckt, est)
		inc.Rebuild(p)
		ev := NewEvaluator(ckt, est)
		view := inc.View()

		check := func(stage string, coords Coords) {
			var nets []netlist.NetID
			for _, id := range ckt.Movable() {
				nets = ckt.CellNets(id, nets[:0])
				for _, n := range nets {
					got := view.NetLengthExcluding(n, id)
					want := ev.NetLengthExcluding(n, id, coords)
					if got != want {
						t.Fatalf("est %v %s: net %d excluding cell %d: view %v, scratch %v",
							est, stage, n, id, got, want)
					}
				}
			}
		}
		check("initial", p)

		// Move a batch of cells and re-check after a journal sync.
		m := newMutableCoords(ckt, p)
		r := rng.New(99)
		movable := ckt.Movable()
		for i := 0; i < 25; i++ {
			id := movable[int(r.Uint64()%uint64(len(movable)))]
			m.move(id, float64(r.Uint64()%300), float64(r.Uint64()%90))
		}
		inc.Sync(m)
		inc.Lengths(nil)
		check("after sync", m)
	}
}

// TestExcludingPadNets covers nets whose remaining pins include pads and
// nets that degenerate below two pins when the cell is removed.
func TestExcludingPadNets(t *testing.T) {
	ckt := testCircuit(t, 6)
	p := layout.NewRandom(ckt, 8, rng.New(6))
	inc := NewIncremental(ckt, Steiner)
	inc.Rebuild(p)
	ev := NewEvaluator(ckt, Steiner)
	view := inc.View()
	var nets []netlist.NetID
	seen2 := false
	for i := range ckt.Cells {
		id := netlist.CellID(i)
		nets = ckt.CellNets(id, nets[:0])
		for _, n := range nets {
			if ckt.Net(n).Degree() == 2 {
				seen2 = true
			}
			got := view.NetLengthExcluding(n, id)
			want := ev.NetLengthExcluding(n, id, p)
			if got != want {
				t.Fatalf("net %d excluding cell %d: view %v, scratch %v", n, id, got, want)
			}
		}
	}
	if !seen2 {
		t.Log("no 2-pin nets in the generated circuit; degenerate path untested here")
	}
}

// TestSteadyStateZeroAllocs pins the SoA storage contract: once the flat
// backing arrays exist and the scratch buffers are warm, a full
// sync/re-estimate/goodness/trial cycle allocates nothing. (RMST is
// excluded: its trial path collects pins into growable scratch by design.)
func TestSteadyStateZeroAllocs(t *testing.T) {
	ckt := testCircuit(t, 77)
	place := layout.NewRandom(ckt, 0, rng.NewStream(9, 0))
	coords := newMutableCoords(ckt, place)
	inc := NewIncremental(ckt, Steiner)
	inc.Rebuild(coords)

	movable := ckt.Movable()
	var lengths []float64
	var trials TrialSet
	var nets []netlist.NetID
	var weights []float64
	view := inc.BaseView()

	cycle := func(round int) {
		// A batch of moves through the journal, then dirty re-estimation.
		for i := 0; i < 8; i++ {
			id := movable[(round*13+i*7)%len(movable)]
			coords.move(id, float64((round+i*11)%40)+0.5, float64((round*3+i)%8)*layout.RowPitch+2)
		}
		inc.Sync(coords)
		lengths = inc.Lengths(lengths)

		// Goodness-style excluding reads plus a compiled trial scan.
		id := movable[round%len(movable)]
		for _, ref := range inc.CellPins(id) {
			_ = view.NetLengthExcludingK(ref.Net, id, int(ref.K))
		}
		nets = nets[:0]
		weights = weights[:0]
		for _, ref := range inc.CellPins(id) {
			nets = append(nets, ref.Net)
			weights = append(weights, 1)
		}
		inc.RemoveCell(id)
		inc.CompileTrials(&trials, nets, weights, 8)
		trials.PrefillClasses(layout.RowY)
		_ = trials.Score(view, 3.5, layout.RowY(2), 2)
		inc.RestoreCell(id)
	}

	// Warm every growable scratch buffer, then demand zero allocations.
	for r := 0; r < 4; r++ {
		cycle(r)
	}
	round := 4
	avg := testing.AllocsPerRun(20, func() {
		cycle(round)
		round++
	})
	if avg != 0 {
		t.Fatalf("steady-state cycle allocates %.1f times per run, want 0", avg)
	}
}
