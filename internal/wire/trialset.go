package wire

import (
	"math"
	"sort"

	"simevo/internal/netlist"
)

// TrialSet is a compiled scorer for one cell's weighted allocation trial
// cost. The allocation operator scores every vacancy for every selected
// cell — O(|S|²) trials per iteration — so per-trial dispatch matters:
// CompileTrials collapses each incident net into a tagged record once per
// cell, and Score runs a tight loop over the records:
//
//	trialZero  — the cell owns every pin; the trial length is 0.
//	trialBBox  — the trial degenerates to a bounding box (HPWL estimator,
//	             or a Steiner net with <= 3 total pins): four precomputed
//	             bounds, pure arithmetic per trial.
//	trialTrunk — general Steiner net: precomputed spans and median anchors
//	             (the merged median of "sorted pins plus one point" is a
//	             clamp between middle anchors).
//	trialRMST  — RMST estimator: collect-and-Prim through the View.
//
// Vacancies sit on row centerlines, so the candidate y takes only numRows
// distinct values. When compiled with yClasses > 0, the y-dependent half
// of every record — the y branch total of a trunk, the extended y-span —
// is memoized per y-class (row) on first use, leaving only the x-side
// arithmetic per trial.
//
// Score sums net costs in compile order with the same multiply-add
// sequence as the scalar path, so its result is bitwise identical to
// Σ View.TrialNetAt(nets[i], x, y) · weights[i] — and to the engine's
// from-scratch reference mode.
type TrialSet struct {
	items    []compiledTrial
	yClasses int
	memo     []float64 // per (item, class): [ySpanExt|0, yBranch|ySpanExt]
	filled   []bool    // per (item, class)

	// tail[i] = Σ_{j>=i} w_j · storedSpan_j: a lower bound on the weighted
	// cost of items i.. for ANY candidate, since every trial with stored
	// pins is at least the stored pins' half-perimeter — bbox and trunk
	// trials by construction, and RMST trials because any spanning
	// structure over the merged pin set must cover the merged extent on
	// each axis (Σ|dx| over the tree's edges is at least the x span along
	// the leftmost-to-rightmost path, likewise for y), so
	// RMST(stored ∪ candidate) >= merged half-perimeter >= storedSpan.
	// Only empty nets contribute 0. ScanBest adds tail[i+1] to the partial
	// cost when bailing, pruning vacancies whose suffix could never fit
	// under the bound — deflated by scanSlack so float reassociation
	// cannot turn the estimate into an over-prune; see scanSlack.
	tail []float64

	// Row-sharded scan state (PrepareScan). rowTail[r*stride + i] is the
	// per-row sharpening of tail: Σ_{j>=i} w_j · (storedSpan_j + yPen_j(r)),
	// where yPen_j(r) is the y-extension the row's centerline forces on the
	// stored pins' bbox — a lower bound on the weighted cost of items i..
	// for ANY candidate in row r (every trial with stored pins is at least
	// the stored half-perimeter extended by the candidate — see tail for
	// the RMST argument; empty nets contribute 0). The weights embed the
	// active objective scores — in wpd mode the cached per-net timing
	// criticality, in wpc/wpdc mode the congestion grid's per-net demand
	// score — so the bound is criticality- and congestion-aware: hot nets
	// carry inflated weights and their bound mass prunes proportionally
	// harder, which is what keeps wpd/wpdc scans pruning like wp scans.
	// Columns fill lazily, one row on first walk (ensureRowTail): the
	// outward row iteration cuts most rows before their suffix column is
	// ever needed, and the chunked parallel scan partitions rows, so the
	// lazy fill touches disjoint memory per worker.
	rowTail  []float64
	rowReady []bool
	// rowLB[r] = C + Σ w_j · yPen_j(y_r), the whole-trial lower bound at
	// row r's centerline (C = Σ w_j · storedSpan_j), computed for every
	// row by an O(rows + items) breakpoint sweep: the y-penalty envelope
	// is convex piecewise-linear in y, so integrating its slope across
	// the sorted row centerlines reproduces the per-row sums with a few
	// flops per row instead of O(items). The sweep's accumulated rounding
	// is absorbed by scanSlack like any other reassociation error. When
	// even rowLB[r] (deflated) reaches the running bound, ScanBestRows
	// skips the whole row bucket; anchorRow is the argmin — the most
	// promising row, where the outward row iteration starts.
	rowLB     []float64
	rowY      []float64
	anchorRow int
	scanRows  int
	// Per-item x-penalty envelope for the per-vacancy precheck and the
	// outward walk. xlo/xhi/xw hold the stored x-interval and weight of
	// every bbox/trunk item, so xLB(x) = Σ w_j · dist(x, [xlo_j, xhi_j])
	// is a lower bound on the x-extension the candidate forces across the
	// whole trial (each bbox/trunk cost is at least storedSpan + xPen +
	// yPen; see rowTail). rowLB[r] + xLB(x) therefore lower-bounds the
	// entire trial cost.
	//
	// xLB is convex piecewise-linear with its (real-arithmetic) minimum on
	// the weighted-median interval [xCutLo, xCutHi] of the item intervals:
	// beyond it, xLB is nondecreasing outward, so once the precheck prunes
	// a vacancy past the cut point the entire remaining bucket tail in
	// that direction is dominated and cut wholesale. FP rounding can bend
	// the computed sum a few ULPs off true monotonicity, but the prune
	// compares against bound/scanSlack: the 1e-12 slack dwarfs both the
	// summation error and any near-zero-slope misjudgment of the cut
	// interval, so a cut vacancy's true cost still reaches the bound.
	// yCutLo/yCutHi are the same construction for the y envelope, cutting
	// whole row directions in ScanBestRows. anchorX, the midpoint of the
	// cut interval (the envelope's minimum region), seeds the in-row walk.
	hasPrune       bool
	xlo, xhi, xw   []float64
	ylo, yhi       []float64 // same items' y-intervals (weights shared via xw)
	xCutLo, xCutHi float64
	yCutLo, yCutHi float64
	anchorX        float64
	evp, evw       []float64 // breakpoint-sweep scratch: positions, weights
	// Piecewise-linear form of the x envelope, built once per cell from the
	// cut interval's sorted endpoints: xbp are the deduplicated breakpoints,
	// xbv[i] = xLB(xbp[i]), and xbs[i] the slope on [xbp[i], xbp[i+1]);
	// left of xbp[0] the slope is -xTotW (the negated total weight). envAt
	// evaluates the envelope in O(1) given the segment index, turning the
	// per-vacancy O(items) penalty loop into a monotone cursor walk. The
	// segment values are themselves a breakpoint sweep, so like rowLB they
	// are reassociated sums of the same nonnegative terms — every compare
	// against them stays deflated by scanSlack, which dwarfs the sweep's
	// accumulated rounding.
	xbp, xbv, xbs []float64
	xTotW         float64
}

// scanSlack deflates the estimate-based prune thresholds of ScanBest.
// The suffix bound compares cost + tail[i+1] against the running bound,
// but tail is a *reassociated* float sum: it can exceed the true
// sequentially-rounded remaining cost by a few ULPs (and the per-item
// trial arithmetic itself carries ~1e-14 relative error), so an exact
// comparison could prune a vacancy whose true cost is a hair below the
// bound — observed with the nextafter-seeded own-slot bound, where the
// rightful winner sits exactly 1 ULP under it and a wrong prune drops
// the scan into the width-violation fallback. Scaling the estimate down
// by 1e-12 (about 100× the worst accumulated rounding error for any
// realistic net count, and far below any score difference that could
// matter) makes the prune sound: estimate·scanSlack >= bound implies the
// true cost >= bound, so only genuine non-winners are skipped and the
// winner is bitwise the brute-force scan's. Prefix-only bails
// (cost >= bound over the already-accumulated exact terms) need no slack.
const scanSlack = 1 - 1e-12

type trialKind uint8

const (
	trialZero trialKind = iota
	trialBBox
	trialTrunk
	trialRMST
)

type compiledTrial struct {
	kind trialKind
	oddM bool // trunk: merged pin count (stored+1) is odd
	// hasBox marks items whose stored-pin bbox participates in the prune
	// bounds: bbox and trunk items always, RMST items when any stored pin
	// remains (an RMST trial is bounded below by the merged bbox
	// half-perimeter, so the bbox-shaped bound is sound for it too).
	hasBox bool
	w      float64

	// Stored pin bounds per axis (hasBox items).
	minX, maxX, minY, maxY float64

	// Trunk: median anchors around the merged middle. Odd merged count
	// uses a0..a1 (med = clamp(c, a0, a1)); even uses a0..a2
	// (med = (clamp(c,a0,a1)+clamp(c,a1,a2))/2). Same values mergedAt1
	// selects — precomputed to avoid per-trial indexing.
	ax0, ax1, ax2 float64
	ay0, ay1, ay2 float64

	// Trunk: sorted values and prefix sums for the branch sums.
	xv, xp, yv, yp []float64

	// Trunk: precomputed branch-sum split indices. The merged median is
	// confined to [a0, a1] (odd) or [a0, a2] (even), so the lower bound
	// branchSum needs resolves to: i?0 when med <= a0 (a compile-time
	// sort.Search — duplicates may pull it below the middle), ixMid when
	// med <= a1 (everything below the middle is strictly below med), and
	// ixMid+1 (even only) when med > a1. ixMid is positional and shared
	// by both axes.
	ix0, iy0, ixMid int32

	net netlist.NetID // trialRMST
}

// CompileTrials fills dst with the trial records for the given nets and
// parallel weights. yClasses > 0 sizes the per-row memo (pass the row
// count when candidates sit on row centerlines; 0 disables memoization).
// The trialled cell must already be lifted out with RemoveCell; the
// records alias the live cached arrays, so they are valid until the next
// mutation of the incremental state.
func (inc *Incremental) CompileTrials(dst *TrialSet, nets []netlist.NetID, weights []float64, yClasses int) {
	dst.items = dst.items[:0]
	for i, n := range nets {
		g := &inc.geoms[n]
		it := compiledTrial{w: weights[i], net: n}
		stored := len(g.xv)
		switch {
		case inc.est == RMST:
			it.kind = trialRMST
			if stored > 0 {
				it.hasBox = true
				it.minX, it.maxX = g.xv[0], g.xv[stored-1]
				it.minY, it.maxY = g.yv[0], g.yv[stored-1]
			}
		case stored == 0:
			it.kind = trialZero
		case inc.est == HPWL || stored <= 2:
			it.kind = trialBBox
			it.hasBox = true
			it.minX, it.maxX = g.xv[0], g.xv[stored-1]
			it.minY, it.maxY = g.yv[0], g.yv[stored-1]
		default:
			it.kind = trialTrunk
			it.hasBox = true
			it.minX, it.maxX = g.xv[0], g.xv[stored-1]
			it.minY, it.maxY = g.yv[0], g.yv[stored-1]
			it.xv, it.xp, it.yv, it.yp = g.xv, g.xp, g.yv, g.yp
			m := stored + 1
			if m%2 == 1 {
				k := m / 2
				it.oddM = true
				it.ax0, it.ax1 = g.xv[k-1], g.xv[k]
				it.ay0, it.ay1 = g.yv[k-1], g.yv[k]
				it.ixMid = int32(k)
			} else {
				j := m / 2
				it.ax0, it.ax1, it.ax2 = g.xv[j-2], g.xv[j-1], g.xv[j]
				it.ay0, it.ay1, it.ay2 = g.yv[j-2], g.yv[j-1], g.yv[j]
				it.ixMid = int32(j - 1)
			}
			it.ix0 = int32(sort.SearchFloat64s(g.xv, it.ax0))
			it.iy0 = int32(sort.SearchFloat64s(g.yv, it.ay0))
		}
		dst.items = append(dst.items, it)
	}
	dst.tail = resizeFloats(dst.tail, len(dst.items)+1)
	acc := 0.0
	dst.tail[len(dst.items)] = 0
	for i := len(dst.items) - 1; i >= 0; i-- {
		it := &dst.items[i]
		if it.hasBox {
			acc += ((it.maxX - it.minX) + (it.maxY - it.minY)) * it.w
		}
		dst.tail[i] = acc
	}
	dst.yClasses = yClasses
	if yClasses > 0 {
		n := len(dst.items) * yClasses
		if cap(dst.memo) < 2*n {
			dst.memo = make([]float64, 2*n)
		}
		dst.memo = dst.memo[:2*n]
		if cap(dst.filled) < n {
			dst.filled = make([]bool, n)
		}
		dst.filled = dst.filled[:n]
		for i := range dst.filled {
			dst.filled[i] = false
		}
	}
}

// PrefillClasses eagerly computes every per-class memo entry. Required
// before concurrent Score/ScoreBounded calls (lazy filling is not
// goroutine-safe); the parallel vacancy scanner calls it once per cell.
func (t *TrialSet) PrefillClasses(yOf func(class int) float64) {
	for i := range t.items {
		if t.items[i].kind != trialTrunk {
			continue
		}
		for c := 0; c < t.yClasses; c++ {
			t.fillClass(i, c, yOf(c))
		}
	}
}

// PrepareScan computes the row-sharded prune state ScanBestRows consumes:
// the per-row suffix bounds rowTail (see the field comment) and the
// leading-item anchor/x-interval. yOf maps a row to its centerline y and
// must reproduce the candidates' y bit for bit (the engine passes
// layout.RowY); rows must cover every candidate row. O(items·rows) — noise
// against the O(items·vacancies) scan it accelerates. Call after
// CompileTrials and before any ScanBestRows; the state is read-only during
// scans, so concurrent row-chunked scanning needs no further setup beyond
// PrefillClasses.
func (t *TrialSet) PrepareScan(yOf func(class int) float64, rows int) {
	stride := len(t.items) + 1
	t.rowTail = resizeFloats(t.rowTail, rows*stride)
	t.rowReady = resizeBools(t.rowReady, rows)
	t.rowLB = resizeFloats(t.rowLB, rows)
	t.rowY = resizeFloats(t.rowY, rows)
	t.scanRows = rows
	for r := 0; r < rows; r++ {
		t.rowReady[r] = false
		t.rowY[r] = yOf(r)
	}

	// Compile the x-penalty envelope, the walk anchor, and the constant
	// part C = Σ w_j · storedSpan_j of the per-row bound.
	t.xlo, t.xhi, t.xw = t.xlo[:0], t.xhi[:0], t.xw[:0]
	t.ylo, t.yhi = t.ylo[:0], t.yhi[:0]
	t.anchorX = math.Inf(-1) // seek to the region start: right walk covers all
	c := 0.0
	for i := range t.items {
		it := &t.items[i]
		if !it.hasBox {
			continue
		}
		t.xlo = append(t.xlo, it.minX)
		t.xhi = append(t.xhi, it.maxX)
		t.xw = append(t.xw, it.w)
		t.ylo = append(t.ylo, it.minY)
		t.yhi = append(t.yhi, it.maxY)
		c += ((it.maxX - it.minX) + (it.maxY - it.minY)) * it.w
	}
	t.hasPrune = len(t.xw) > 0
	if !t.hasPrune {
		t.xCutLo, t.xCutHi = math.Inf(-1), math.Inf(1)
		t.yCutLo, t.yCutHi = math.Inf(-1), math.Inf(1)
		for r := 0; r < rows; r++ {
			t.rowLB[r] = 0
		}
		t.anchorRow = 0
		return
	}

	// Weighted-median cut interval of the x envelope; its midpoint is the
	// envelope's minimum region — the most promising x — and seeds the
	// outward walk.
	t.xCutLo, t.xCutHi = t.cutInterval(t.xlo, t.xhi)
	t.anchorX = (t.xCutLo + t.xCutHi) / 2
	// The x events are still sorted in evp/evw: fold them into the
	// piecewise-linear envelope the walks evaluate per vacancy.
	t.buildEnvelope()
	// Same for the y envelope, which also drives the rowLB sweep below.
	t.yCutLo, t.yCutHi = t.cutInterval(t.ylo, t.yhi)

	// Sweep the convex y-penalty envelope across the row centerlines:
	// rowLB[r] = C + f(y_r) with f integrated breakpoint to breakpoint.
	// The sorted (position, weight) breakpoints are still in evp/evw from
	// cutInterval; slope starts at -Σw left of every interval.
	slope, f := 0.0, 0.0
	y0 := t.rowY[0]
	for j, w := range t.xw {
		slope -= w
		if lo := t.ylo[j]; y0 < lo {
			f += w * (lo - y0)
		} else if hi := t.yhi[j]; y0 > hi {
			f += w * (y0 - hi)
		}
	}
	k := 0
	for k < len(t.evp) && t.evp[k] <= y0 {
		slope += t.evw[k]
		k++
	}
	t.rowLB[0] = c + f
	t.anchorRow = 0
	minLB := t.rowLB[0]
	for r := 1; r < rows; r++ {
		y, prev := t.rowY[r], t.rowY[r-1]
		for k < len(t.evp) && t.evp[k] <= y {
			if t.evp[k] > prev {
				f += slope * (t.evp[k] - prev)
				prev = t.evp[k]
			}
			slope += t.evw[k]
			k++
		}
		f += slope * (y - prev)
		t.rowLB[r] = c + f
		if t.rowLB[r] < minLB {
			minLB = t.rowLB[r]
			t.anchorRow = r
		}
	}
}

// cutInterval sorts the prunable items' interval endpoints along one axis
// into evp/evw and returns the weighted-median interval [cutLo, cutHi] of
// the penalty envelope f(p) = Σ w_j · dist(p, I_j): the envelope's slope is
// ≤ 0 left of cutLo and ≥ 0 right of cutHi, so f is nonincreasing toward
// the interval from the left and nondecreasing away from it on the right —
// the directional-cut thresholds. Leaves the sorted breakpoints in evp/evw
// for the caller's sweep.
func (t *TrialSet) cutInterval(los, his []float64) (cutLo, cutHi float64) {
	t.evp, t.evw = t.evp[:0], t.evw[:0]
	total := 0.0
	for j, w := range t.xw {
		t.evp = append(t.evp, los[j], his[j])
		t.evw = append(t.evw, w, w)
		total += w
	}
	// Insertion sort by position (ties keep insertion order; the envelope
	// slope only depends on the multiset of events at each position).
	for i := 1; i < len(t.evp); i++ {
		p, w := t.evp[i], t.evw[i]
		j := i - 1
		for j >= 0 && t.evp[j] > p {
			t.evp[j+1], t.evw[j+1] = t.evp[j], t.evw[j]
			j--
		}
		t.evp[j+1], t.evw[j+1] = p, w
	}
	// Slope left of everything is -total; each event adds its weight.
	slope := -total
	cutLo, cutHi = t.evp[0], math.NaN()
	for k := range t.evp {
		if slope <= 0 {
			cutLo = t.evp[k] // largest breakpoint with slope ≤ 0 on its left
		}
		slope += t.evw[k]
		if math.IsNaN(cutHi) && slope >= 0 {
			cutHi = t.evp[k] // smallest breakpoint with slope ≥ 0 on its right
		}
	}
	if math.IsNaN(cutHi) {
		cutHi = t.evp[len(t.evp)-1]
	}
	return cutLo, cutHi
}

// buildEnvelope folds the sorted x events left in evp/evw by cutInterval
// into the piecewise-linear form of xLB(x) = Σ w_j · dist(x, [xlo_j,
// xhi_j]): deduplicated breakpoints xbp, the envelope value at each
// breakpoint xbv, and the slope of the segment to its right xbs. The
// value sweep integrates slope·Δx breakpoint to breakpoint — the same
// reassociation the rowLB sweep performs along y — so consumers must
// treat envAt results as scanSlack-deflated estimates, never exact sums.
func (t *TrialSet) buildEnvelope() {
	t.xbp, t.xbv, t.xbs = t.xbp[:0], t.xbv[:0], t.xbs[:0]
	total := 0.0
	for _, w := range t.xw {
		total += w
	}
	t.xTotW = total
	b0 := t.evp[0]
	f := 0.0
	for j, w := range t.xw {
		f += w * (t.xlo[j] - b0) // b0 = min endpoint ≤ every xlo
	}
	slope, prev := -total, b0
	for i := 0; i < len(t.evp); {
		p := t.evp[i]
		f += slope * (p - prev)
		for i < len(t.evp) && t.evp[i] == p {
			slope += t.evw[i]
			i++
		}
		t.xbp = append(t.xbp, p)
		t.xbv = append(t.xbv, f)
		t.xbs = append(t.xbs, slope)
		prev = p
	}
}

// envSeg returns the envelope segment index for x: the largest i with
// xbp[i] <= x, or -1 left of every breakpoint.
func (t *TrialSet) envSeg(x float64) int {
	seg := searchF64(t.xbp, x) - 1
	if seg+1 < len(t.xbp) && t.xbp[seg+1] == x {
		seg++
	}
	return seg
}

// envAt evaluates the x-penalty envelope at x, which must lie on segment
// seg (envSeg, or a cursor advanced by the caller). The result carries
// the sweep's reassociation error — compare it only slack-deflated.
func (t *TrialSet) envAt(seg int, x float64) float64 {
	if seg < 0 {
		return t.xbv[0] + t.xTotW*(t.xbp[0]-x)
	}
	return t.xbv[seg] + t.xbs[seg]*(x-t.xbp[seg])
}

// ensureRowTail fills row's suffix column of rowTail on first use, at full
// sharpness: a bbox item contributes its exact y half (extended span), and
// a trunk item contributes storedSpanX + min(yBranch, ySpanExt) — both
// memoized per row, and both valid lower bounds on the trunk cost, since
// the horizontal orientation costs spanX(x) + yBranch ≥ storedSpanX +
// xPen + yBranch and the vertical one ySpanExt + xBranch ≥ ySpanExt +
// storedSpanX + xPen (the x branch sum is at least the merged x span).
// The xPen part is tracked separately by the walk's envelope (xRem).
// Filling the column also warms the trunk y-memo the scoring loop uses.
// Safe under the chunked parallel scan: rows are partitioned across
// workers, so each column (and its ready bit) is touched by exactly one
// goroutine.
func (t *TrialSet) ensureRowTail(row int) {
	if t.rowReady[row] {
		return
	}
	y := t.rowY[row]
	base := row * (len(t.items) + 1)
	acc := 0.0
	t.rowTail[base+len(t.items)] = 0
	for i := len(t.items) - 1; i >= 0; i-- {
		it := &t.items[i]
		switch it.kind {
		case trialBBox, trialRMST:
			// The bbox formula is exact for bbox items and a valid lower
			// bound for RMST items with stored pins (merged half-perimeter
			// <= RMST; see tail). Boxless RMST items (all pins removed)
			// contribute 0 like empty nets.
			if !it.hasBox {
				break
			}
			yPen := 0.0
			if y < it.minY {
				yPen = it.minY - y
			} else if y > it.maxY {
				yPen = y - it.maxY
			}
			acc += ((it.maxX - it.minX) + (it.maxY - it.minY) + yPen) * it.w
		case trialTrunk:
			slot := i*t.yClasses + row
			if !t.filled[slot] {
				t.fillClass(i, row, y)
			}
			yMin := t.memo[2*slot] // y branch total (horizontal trunk)
			if s := t.memo[2*slot+1]; s < yMin {
				yMin = s // extended y span (vertical trunk)
			}
			acc += ((it.maxX - it.minX) + yMin) * it.w
		}
		t.rowTail[base+i] = acc
	}
	t.rowReady[row] = true
}

func (t *TrialSet) fillClass(i, class int, y float64) {
	it := &t.items[i]
	slot := i*t.yClasses + class
	var medY float64
	if it.oddM {
		medY = clampMed(y, it.ay0, it.ay1)
	} else {
		medY = (clampMed(y, it.ay0, it.ay1) + clampMed(y, it.ay1, it.ay2)) / 2
	}
	var si int
	switch {
	case medY <= it.ay0:
		si = int(it.iy0)
	case medY <= it.ay1:
		si = int(it.ixMid)
	default:
		si = int(it.ixMid) + 1
	}
	b := branchSumAt(it.yv, it.yp, medY, si)
	if y > medY {
		b += y - medY
	} else {
		b += medY - y
	}
	t.memo[2*slot] = b // horizontal trunk: y branch total
	loy, hiy := it.minY, it.maxY
	if y < loy {
		loy = y
	}
	if y > hiy {
		hiy = y
	}
	t.memo[2*slot+1] = hiy - loy // vertical trunk: along-y span
	t.filled[slot] = true
}

// Score returns the weighted trial cost of placing the compiled cell at
// (x, y). yClass identifies y's memo class (pass a negative class, or
// compile with yClasses 0, to bypass the memo). Read-only apart from lazy
// memo fills; concurrent use requires PrefillClasses first and one View
// per goroutine (the RMST fallback needs per-goroutine scratch).
func (t *TrialSet) Score(view *View, x, y float64, yClass int) float64 {
	cost, _ := t.ScoreBounded(view, x, y, yClass, math.Inf(1))
	return cost
}

// ScoreBounded is Score with early exit: once the partial cost reaches
// bound, scoring stops and ok is false. Net contributions are
// non-negative, so a bailed trial's full cost would be >= bound — under a
// strict-minimum scan with bound set to the best score so far, the bail
// can only drop vacancies that would not have won (ties keep the earlier
// vacancy), leaving the selected slot — and the search trajectory —
// identical to an unbounded scan. When ok is true, cost is the complete
// sum, bitwise equal to Score's.
func (t *TrialSet) ScoreBounded(view *View, x, y float64, yClass int, bound float64) (cost float64, ok bool) {
	memo := yClass >= 0 && t.yClasses > 0
	for i := range t.items {
		it := &t.items[i]
		switch it.kind {
		case trialBBox:
			// Direct arithmetic beats the memo for the bbox degeneration.
			lox, hix, loy, hiy := it.minX, it.maxX, it.minY, it.maxY
			if x < lox {
				lox = x
			}
			if x > hix {
				hix = x
			}
			if y < loy {
				loy = y
			}
			if y > hiy {
				hiy = y
			}
			cost += ((hix - lox) + (hiy - loy)) * it.w
		case trialTrunk:
			var yBranch, ySpan float64
			if memo {
				slot := i*t.yClasses + yClass
				if !t.filled[slot] {
					t.fillClass(i, yClass, y)
				}
				yBranch, ySpan = t.memo[2*slot], t.memo[2*slot+1]
			} else {
				var medY float64
				if it.oddM {
					medY = clampMed(y, it.ay0, it.ay1)
				} else {
					medY = (clampMed(y, it.ay0, it.ay1) + clampMed(y, it.ay1, it.ay2)) / 2
				}
				yBranch = branchSum(it.yv, it.yp, medY)
				if y > medY {
					yBranch += y - medY
				} else {
					yBranch += medY - y
				}
				loy, hiy := it.minY, it.maxY
				if y < loy {
					loy = y
				}
				if y > hiy {
					hiy = y
				}
				ySpan = hiy - loy
			}

			// Horizontal trunk: along-x span plus the y branch total.
			lox, hix := it.minX, it.maxX
			if x < lox {
				lox = x
			}
			if x > hix {
				hix = x
			}
			h := (hix - lox) + yBranch

			// Vertical trunk: along-y span plus the x branch total.
			var medX float64
			if it.oddM {
				medX = clampMed(x, it.ax0, it.ax1)
			} else {
				medX = (clampMed(x, it.ax0, it.ax1) + clampMed(x, it.ax1, it.ax2)) / 2
			}
			var si int
			switch {
			case medX <= it.ax0:
				si = int(it.ix0)
			case medX <= it.ax1:
				si = int(it.ixMid)
			default:
				si = int(it.ixMid) + 1
			}
			xBranch := branchSumAt(it.xv, it.xp, medX, si)
			if x > medX {
				xBranch += x - medX
			} else {
				xBranch += medX - x
			}
			v := ySpan + xBranch

			if v < h {
				h = v
			}
			cost += h * it.w
		case trialRMST:
			cost += view.TrialNetAt(it.net, x, y) * it.w
		case trialZero:
			// Trial length 0: contributes +0.0, which cannot change the
			// (non-negative) accumulator — skip the multiply-add. The
			// bound check below must still run: a trailing zero record
			// with cost exactly at bound is a tie, and ties must report
			// ok=false so the earlier vacancy keeps the win.
		}
		if cost >= bound {
			return cost, false
		}
	}
	// cost < bound holds whenever items is non-empty (the per-item check
	// ran); the explicit guard also covers a degenerate empty trial set.
	return cost, cost < bound
}

func clampMed(c, lo, hi float64) float64 {
	if c < lo {
		return lo
	}
	if c > hi {
		return hi
	}
	return c
}

// Vacancy is one candidate slot for ScanBest: physical center plus the
// row, which doubles as the y memo class.
type Vacancy struct {
	X, Y float64
	Row  int32
}

// ScanStats tallies where ScanBest spends (and saves) work: how many
// candidates it visited, how many each prune mechanism discarded, and
// how many survived to a full score. Accumulation is plain arithmetic —
// callers own one ScanStats per goroutine and fold them into telemetry
// counters after the scan, keeping the inner loop free of atomics.
type ScanStats struct {
	Vacancies     uint64 // row-feasible candidates considered
	PrunedBBox    uint64 // dropped by the leading-net bbox pre-check
	PrunedSuffix  uint64 // dropped by the suffix-bound (tail) estimate
	BailedExact   uint64 // dropped by the exact partial-cost prefix check
	Scored        uint64 // fully scored (survived every prune)
	SkippedBucket uint64 // never visited: cut wholesale by a row/tail skip
	RowsVisited   uint64 // row buckets entered by the sharded scan
}

// Merge folds o into s.
func (s *ScanStats) Merge(o *ScanStats) {
	s.Vacancies += o.Vacancies
	s.PrunedBBox += o.PrunedBBox
	s.PrunedSuffix += o.PrunedSuffix
	s.BailedExact += o.BailedExact
	s.Scored += o.Scored
	s.SkippedBucket += o.SkippedBucket
	s.RowsVisited += o.RowsVisited
}

// ScanBest runs the full vacancy scan for the compiled cell over
// free[lo:hi] — the ascending indices of still-free vacancies — skipping
// width-infeasible rows, scoring the rest with the bounded early exit, and
// returning the first vacancy index holding the strictly smallest score
// (-1 if none is admissible under bound0). One call replaces the per-
// vacancy ScoreBounded calls — this is the innermost allocation loop, so
// the scoring is inlined here; the equivalence test pins it bitwise to the
// ScoreBounded loop it replaces. The memo must be compiled with yClasses
// covering every row. A serial caller may leave the memo cold — classes
// fill lazily on first use, so rows no vacancy sits in are never computed.
// Concurrent chunked use must PrefillClasses first (lazy filling is not
// goroutine-safe) and needs one View per goroutine. st (which may be
// nil) collects prune statistics with plain increments; it changes no
// comparison, so the winner and the trajectory are bitwise unaffected.
func (t *TrialSet) ScanBest(view *View, vacs []Vacancy, free []int32,
	rowOK []bool, lo, hi int, bound0 float64, st *ScanStats) (int, float64) {
	if st == nil {
		st = new(ScanStats)
	}
	best, bound := -1, bound0
	items := t.items
	// Bbox pre-check on the leading net: any trial with stored pins —
	// bbox, trunk, or RMST — is bounded below by the half-perimeter of the
	// stored pins extended by the candidate, and items 1.. are bounded
	// below by tail[1]. When even that sum reaches the current bound the
	// vacancy is skipped before any full evaluation. Pruned vacancies are
	// exactly ones the bounded scan would have discarded (their true cost
	// is >= the bound), so the winner — and the trajectory — is untouched.
	tail := t.tail
	prune := false
	var pruneW, tail1, minX0, maxX0, minY0, maxY0 float64
	if len(items) > 0 && items[0].hasBox {
		it := &items[0]
		prune, pruneW, tail1 = true, it.w, tail[1]
		minX0, maxX0, minY0, maxY0 = it.minX, it.maxX, it.minY, it.maxY
	}
scan:
	for _, v32 := range free[lo:hi] {
		v := int(v32)
		row := vacs[v].Row
		if !rowOK[row] {
			continue
		}
		x, y := vacs[v].X, vacs[v].Y
		st.Vacancies++
		if prune {
			lox, hix, loy, hiy := minX0, maxX0, minY0, maxY0
			if x < lox {
				lox = x
			}
			if x > hix {
				hix = x
			}
			if y < loy {
				loy = y
			}
			if y > hiy {
				hiy = y
			}
			if (((hix-lox)+(hiy-loy))*pruneW+tail1)*scanSlack >= bound {
				st.PrunedBBox++
				continue
			}
		}
		yClass := int(row)
		cost := 0.0
		for i := range items {
			it := &items[i]
			switch it.kind {
			case trialBBox:
				lox, hix, loy, hiy := it.minX, it.maxX, it.minY, it.maxY
				if x < lox {
					lox = x
				}
				if x > hix {
					hix = x
				}
				if y < loy {
					loy = y
				}
				if y > hiy {
					hiy = y
				}
				cost += ((hix - lox) + (hiy - loy)) * it.w
			case trialTrunk:
				slot := i*t.yClasses + yClass
				if !t.filled[slot] {
					t.fillClass(i, yClass, y)
				}
				yBranch, ySpan := t.memo[2*slot], t.memo[2*slot+1]

				lox, hix := it.minX, it.maxX
				if x < lox {
					lox = x
				}
				if x > hix {
					hix = x
				}
				h := (hix - lox) + yBranch

				var medX float64
				if it.oddM {
					medX = clampMed(x, it.ax0, it.ax1)
				} else {
					medX = (clampMed(x, it.ax0, it.ax1) + clampMed(x, it.ax1, it.ax2)) / 2
				}
				var si int
				switch {
				case medX <= it.ax0:
					si = int(it.ix0)
				case medX <= it.ax1:
					si = int(it.ixMid)
				default:
					si = int(it.ixMid) + 1
				}
				xBranch := branchSumAt(it.xv, it.xp, medX, si)
				if x > medX {
					xBranch += x - medX
				} else {
					xBranch += medX - x
				}
				v2 := ySpan + xBranch

				if v2 < h {
					h = v2
				}
				cost += h * it.w
			case trialRMST:
				cost += view.TrialNetAt(it.net, x, y) * it.w
			case trialZero:
				// Falls through to the bound check: a trailing zero
				// record at cost == bound is a tie and must not reach
				// the winner assignment (first minimum wins).
			}
			// Bail as soon as the partial cost plus the remaining items'
			// stored-span floor reaches the bound: the full cost could
			// only be larger, so only non-winners are dropped (and a tie
			// at the bound never wins — first minimum stays). The
			// estimate is deflated by scanSlack so float reassociation
			// can never prune a true sub-bound cost; the exact prefix
			// check keeps the common case (cost alone already past the
			// bound) at full strength.
			if cost >= bound {
				st.BailedExact++
				continue scan
			}
			if (cost+tail[i+1])*scanSlack >= bound {
				st.PrunedSuffix++
				continue scan
			}
		}
		st.Scored++
		if cost < bound { // unconditional first-minimum, even for an empty set
			best, bound = v, cost
		}
	}
	return best, bound
}

// rowScan is ScanBestRows' walk state, shared by the two directional walks
// of each row. bound is the tie-admitting prune threshold: one ulp above
// the best score so far (or the caller's bound0 before any accept), so an
// out-of-order walk never bails an exact tie — the explicit index
// tie-break below then reproduces the flat scan's earliest-index winner.
type rowScan struct {
	view      *View
	vacs      []Vacancy
	bk        *VacancyBuckets
	st        *ScanStats
	best      int
	bestScore float64
	bound     float64
	visited   uint64
}

// ScanBestRows is the row-sharded replacement for the flat ScanBest: it
// visits only rows [rowLo, rowHi) of the buckets, skipping infeasible and
// empty rows, skipping whole rows whose rowTail lower bound already
// reaches the running bound, and walking each surviving bucket outward
// from the vacancy nearest the cell's median anchor. The outward order
// tightens the bound with the best candidates first, and the per-vacancy
// precheck — rowTail[row] plus the leading item's x-penalty, weakly
// monotone in the outward x distance — cuts the entire remaining bucket
// tail the moment it fires beyond the anchor interval, skipping dominated
// regions wholesale instead of bailing per vacancy.
//
// The winner is the lowest-index vacancy among those with the strictly
// smallest score — bitwise the flat ScanBest's (and the reference loop's)
// first-minimum — restored from the out-of-order walk by the tie-admitting
// bound plus an explicit index tie-break. Requires CompileTrials,
// PrepareScan (with yOf matching the vacancies' row centerlines), and a
// bucket Build over the same vacancy pool. The y memo may start cold:
// lazy fills index by (item, row), so row-chunked concurrent scans touch
// disjoint entries — each goroutine still needs its own View. Returns
// (-1, bound0) if no vacancy is admissible under bound0.
func (t *TrialSet) ScanBestRows(view *View, vacs []Vacancy, bk *VacancyBuckets,
	rowOK []bool, rowLo, rowHi int, bound0 float64, st *ScanStats) (int, float64) {
	if st == nil {
		st = new(ScanStats)
	}
	c := rowScan{view: view, vacs: vacs, bk: bk, st: st, best: -1, bound: bound0}
	r0 := t.anchorRow
	if r0 < rowLo {
		r0 = rowLo
	}
	if r0 >= rowHi {
		r0 = rowHi - 1
	}
	t.walkRows(&c, rowOK, r0, rowHi, +1)
	t.walkRows(&c, rowOK, r0-1, rowLo-1, -1)
	if c.best < 0 {
		return -1, bound0
	}
	return c.best, c.bestScore
}

// walkRows iterates rows from r toward end (exclusive) in steps of dir —
// outward from the anchor row, so the bound tightens on the most promising
// rows first. Rows whose rowLB (or rowLB plus the row's best-case x
// penalty) already reaches the bound are skipped wholesale; when the rowLB
// skip fires at a centerline beyond the y cut interval, every remaining
// row in the walk direction is dominated too (the y envelope is
// nondecreasing outward) and the whole direction is cut.
func (t *TrialSet) walkRows(c *rowScan, rowOK []bool, r, end, dir int) {
	bk, st := c.bk, c.st
	for ; r != end; r += dir {
		liveN := uint64(bk.rowN[r])
		if liveN == 0 || !rowOK[r] {
			continue
		}
		st.RowsVisited++
		if t.rowLB[r]*scanSlack >= c.bound {
			st.SkippedBucket += liveN
			y := t.rowY[r]
			if (dir > 0 && y >= t.yCutHi) || (dir < 0 && y <= t.yCutLo) {
				for rr := r + dir; rr != end; rr += dir {
					if rowOK[rr] {
						st.SkippedBucket += uint64(bk.rowN[rr])
					}
				}
				return
			}
			continue
		}
		lo, hi := int(bk.start[r]), int(bk.start[r+1])
		xlb := 0.0
		if t.hasPrune {
			// Best-case x penalty anywhere in this row: the envelope is
			// convex with its minimum on [xCutLo, xCutHi], so its minimum
			// over the row's x range is attained at the cut point clamped
			// into the range (dead entries only widen the range — still a
			// valid lower bound).
			xc := t.xCutLo
			if xc < bk.xs[lo] {
				xc = bk.xs[lo]
			}
			if xc > bk.xs[hi-1] {
				xc = bk.xs[hi-1]
			}
			xlb = t.envAt(t.envSeg(xc), xc)
			if (t.rowLB[r]+xlb)*scanSlack >= c.bound {
				st.SkippedBucket += liveN
				continue
			}
		}
		t.ensureRowTail(r)
		// Re-check with the sharp memoized column before paying for the
		// seek and walk: rowTail[base] upgrades the sweep's span-based
		// bound with the true per-row trunk y halves.
		if (t.rowTail[r*(len(t.items)+1)]+xlb)*scanSlack >= c.bound {
			st.SkippedBucket += liveN
			continue
		}
		p0 := bk.SeekGE(r, t.anchorX)
		c.visited = 0
		t.walkDir(c, r, p0, hi, +1)
		t.walkDir(c, r, p0-1, lo-1, -1)
		st.SkippedBucket += liveN - c.visited
	}
}

// walkDir walks one row bucket from position p toward end (exclusive) in
// steps of dir, scoring live vacancies under the cursor's running bound.
// Dead (committed) positions cost one branch each. When the precheck fires
// at an x outside the leading item's stored interval, every remaining
// position in the walk direction has a precheck value at least as large
// (weak FP monotonicity of max/sub/add/positive-mul), so the walk stops —
// the dominated tail is never visited.
func (t *TrialSet) walkDir(c *rowScan, row, p, end, dir int) {
	bk, st, vacs := c.bk, c.st, c.vacs
	items, stride := t.items, len(t.items)+1
	rowBase := row * stride
	rowLB := t.rowTail[rowBase]
	// The walk is monotone in x, so the envelope segment cursor advances
	// amortized O(1) per position: one binary search seeds it, then each
	// vacancy's precheck is a single multiply-add instead of the O(items)
	// penalty loop.
	seg, nbp := 0, len(t.xbp)
	if t.hasPrune && p != end {
		seg = t.envSeg(bk.xs[p])
	}
walk:
	for ; p != end; p += dir {
		if !bk.live[p] {
			continue
		}
		v := int(bk.order[p])
		x := bk.xs[p]
		c.visited++
		st.Vacancies++
		xRem := 0.0
		if t.hasPrune {
			if dir > 0 {
				for seg+1 < nbp && t.xbp[seg+1] <= x {
					seg++
				}
			} else {
				for seg >= 0 && t.xbp[seg] > x {
					seg--
				}
			}
			// xRem estimates the x penalty still owed by the whole trial
			// (a reassociated sweep sum — compare only slack-deflated).
			xRem = t.envAt(seg, x)
			if (rowLB+xRem)*scanSlack >= c.bound {
				st.PrunedBBox++
				if (dir > 0 && x >= t.xCutHi) || (dir < 0 && x <= t.xCutLo) {
					// Beyond the cut interval the envelope is
					// nondecreasing in the walk direction: cut the
					// whole tail.
					return
				}
				continue walk
			}
		}
		y := vacs[v].Y
		cost := 0.0
		for i := range items {
			it := &items[i]
			switch it.kind {
			case trialBBox:
				lox, hix, loy, hiy := it.minX, it.maxX, it.minY, it.maxY
				if x < lox {
					lox = x
				}
				if x > hix {
					hix = x
				}
				if y < loy {
					loy = y
				}
				if y > hiy {
					hiy = y
				}
				cost += ((hix - lox) + (hiy - loy)) * it.w
			case trialTrunk:
				slot := i*t.yClasses + row
				if !t.filled[slot] {
					t.fillClass(i, row, y)
				}
				yBranch, ySpan := t.memo[2*slot], t.memo[2*slot+1]

				lox, hix := it.minX, it.maxX
				if x < lox {
					lox = x
				}
				if x > hix {
					hix = x
				}
				h := (hix - lox) + yBranch

				var medX float64
				if it.oddM {
					medX = clampMed(x, it.ax0, it.ax1)
				} else {
					medX = (clampMed(x, it.ax0, it.ax1) + clampMed(x, it.ax1, it.ax2)) / 2
				}
				var si int
				switch {
				case medX <= it.ax0:
					si = int(it.ix0)
				case medX <= it.ax1:
					si = int(it.ixMid)
				default:
					si = int(it.ixMid) + 1
				}
				xBranch := branchSumAt(it.xv, it.xp, medX, si)
				if x > medX {
					xBranch += x - medX
				} else {
					xBranch += medX - x
				}
				v2 := ySpan + xBranch

				if v2 < h {
					h = v2
				}
				cost += h * it.w
			case trialRMST:
				cost += c.view.TrialNetAt(it.net, x, y) * it.w
			case trialZero:
				// Falls through to the bound check, like ScanBest: a
				// trailing zero record at the bound is handled by the
				// accept logic's index tie-break below.
			}
			// Retire this item's envelope term so xRem keeps tracking the
			// x-penalty still owed by items i+1... xRem started as the
			// sweep-built envelope estimate, so after retirement it can
			// sit a few ULPs off the true remainder in either direction —
			// too small only weakens the prune, too large is absorbed by
			// scanSlack like the reassociation error it already covers.
			if it.hasBox {
				if x < it.minX {
					xRem -= it.w * (it.minX - x)
				} else if x > it.maxX {
					xRem -= it.w * (x - it.maxX)
				}
			}
			// Same two-stage bail as ScanBest, with the row-sharpened
			// suffix bound — plus the remaining x-penalty envelope: the
			// exact prefix check at full strength, then the estimate
			// deflated by scanSlack (it is a reassociated sum, and must
			// never prune a true sub-bound cost — the PR-5 ULP lesson).
			if cost >= c.bound {
				st.BailedExact++
				continue walk
			}
			if (cost+(t.rowTail[rowBase+i+1]+xRem))*scanSlack >= c.bound {
				st.PrunedSuffix++
				continue walk
			}
		}
		st.Scored++
		// A completed score satisfies cost < bound = nextafter(best), so
		// cost <= bestScore: accept strict improvements and equal-score
		// candidates with a lower index — together with the tie-admitting
		// bound this reproduces the serial first-minimum exactly.
		if c.best < 0 || cost < c.bestScore || (cost == c.bestScore && v < c.best) {
			c.best, c.bestScore = v, cost
			c.bound = math.Nextafter(cost, math.Inf(1))
		}
	}
}
