package wire

import (
	"math"
	"sort"

	"simevo/internal/netlist"
)

// TrialSet is a compiled scorer for one cell's weighted allocation trial
// cost. The allocation operator scores every vacancy for every selected
// cell — O(|S|²) trials per iteration — so per-trial dispatch matters:
// CompileTrials collapses each incident net into a tagged record once per
// cell, and Score runs a tight loop over the records:
//
//	trialZero  — the cell owns every pin; the trial length is 0.
//	trialBBox  — the trial degenerates to a bounding box (HPWL estimator,
//	             or a Steiner net with <= 3 total pins): four precomputed
//	             bounds, pure arithmetic per trial.
//	trialTrunk — general Steiner net: precomputed spans and median anchors
//	             (the merged median of "sorted pins plus one point" is a
//	             clamp between middle anchors).
//	trialRMST  — RMST estimator: collect-and-Prim through the View.
//
// Vacancies sit on row centerlines, so the candidate y takes only numRows
// distinct values. When compiled with yClasses > 0, the y-dependent half
// of every record — the y branch total of a trunk, the extended y-span —
// is memoized per y-class (row) on first use, leaving only the x-side
// arithmetic per trial.
//
// Score sums net costs in compile order with the same multiply-add
// sequence as the scalar path, so its result is bitwise identical to
// Σ View.TrialNetAt(nets[i], x, y) · weights[i] — and to the engine's
// from-scratch reference mode.
type TrialSet struct {
	items    []compiledTrial
	yClasses int
	memo     []float64 // per (item, class): [ySpanExt|0, yBranch|ySpanExt]
	filled   []bool    // per (item, class)

	// tail[i] = Σ_{j>=i} w_j · storedSpan_j: a lower bound on the weighted
	// cost of items i.. for ANY candidate, since every bbox/trunk trial is
	// at least the stored pins' half-perimeter (RMST and empty nets
	// conservatively contribute 0). ScanBest adds tail[i+1] to the partial
	// cost when bailing, pruning vacancies whose suffix could never fit
	// under the bound — deflated by scanSlack so float reassociation
	// cannot turn the estimate into an over-prune; see scanSlack.
	tail []float64
}

// scanSlack deflates the estimate-based prune thresholds of ScanBest.
// The suffix bound compares cost + tail[i+1] against the running bound,
// but tail is a *reassociated* float sum: it can exceed the true
// sequentially-rounded remaining cost by a few ULPs (and the per-item
// trial arithmetic itself carries ~1e-14 relative error), so an exact
// comparison could prune a vacancy whose true cost is a hair below the
// bound — observed with the nextafter-seeded own-slot bound, where the
// rightful winner sits exactly 1 ULP under it and a wrong prune drops
// the scan into the width-violation fallback. Scaling the estimate down
// by 1e-12 (about 100× the worst accumulated rounding error for any
// realistic net count, and far below any score difference that could
// matter) makes the prune sound: estimate·scanSlack >= bound implies the
// true cost >= bound, so only genuine non-winners are skipped and the
// winner is bitwise the brute-force scan's. Prefix-only bails
// (cost >= bound over the already-accumulated exact terms) need no slack.
const scanSlack = 1 - 1e-12

type trialKind uint8

const (
	trialZero trialKind = iota
	trialBBox
	trialTrunk
	trialRMST
)

type compiledTrial struct {
	kind trialKind
	oddM bool // trunk: merged pin count (stored+1) is odd
	w    float64

	// Stored pin bounds per axis (bbox and trunk kinds).
	minX, maxX, minY, maxY float64

	// Trunk: median anchors around the merged middle. Odd merged count
	// uses a0..a1 (med = clamp(c, a0, a1)); even uses a0..a2
	// (med = (clamp(c,a0,a1)+clamp(c,a1,a2))/2). Same values mergedAt1
	// selects — precomputed to avoid per-trial indexing.
	ax0, ax1, ax2 float64
	ay0, ay1, ay2 float64

	// Trunk: sorted values and prefix sums for the branch sums.
	xv, xp, yv, yp []float64

	// Trunk: precomputed branch-sum split indices. The merged median is
	// confined to [a0, a1] (odd) or [a0, a2] (even), so the lower bound
	// branchSum needs resolves to: i?0 when med <= a0 (a compile-time
	// sort.Search — duplicates may pull it below the middle), ixMid when
	// med <= a1 (everything below the middle is strictly below med), and
	// ixMid+1 (even only) when med > a1. ixMid is positional and shared
	// by both axes.
	ix0, iy0, ixMid int32

	net netlist.NetID // trialRMST
}

// CompileTrials fills dst with the trial records for the given nets and
// parallel weights. yClasses > 0 sizes the per-row memo (pass the row
// count when candidates sit on row centerlines; 0 disables memoization).
// The trialled cell must already be lifted out with RemoveCell; the
// records alias the live cached arrays, so they are valid until the next
// mutation of the incremental state.
func (inc *Incremental) CompileTrials(dst *TrialSet, nets []netlist.NetID, weights []float64, yClasses int) {
	dst.items = dst.items[:0]
	for i, n := range nets {
		g := &inc.geoms[n]
		it := compiledTrial{w: weights[i], net: n}
		stored := len(g.xv)
		switch {
		case inc.est == RMST:
			it.kind = trialRMST
		case stored == 0:
			it.kind = trialZero
		case inc.est == HPWL || stored <= 2:
			it.kind = trialBBox
			it.minX, it.maxX = g.xv[0], g.xv[stored-1]
			it.minY, it.maxY = g.yv[0], g.yv[stored-1]
		default:
			it.kind = trialTrunk
			it.minX, it.maxX = g.xv[0], g.xv[stored-1]
			it.minY, it.maxY = g.yv[0], g.yv[stored-1]
			it.xv, it.xp, it.yv, it.yp = g.xv, g.xp, g.yv, g.yp
			m := stored + 1
			if m%2 == 1 {
				k := m / 2
				it.oddM = true
				it.ax0, it.ax1 = g.xv[k-1], g.xv[k]
				it.ay0, it.ay1 = g.yv[k-1], g.yv[k]
				it.ixMid = int32(k)
			} else {
				j := m / 2
				it.ax0, it.ax1, it.ax2 = g.xv[j-2], g.xv[j-1], g.xv[j]
				it.ay0, it.ay1, it.ay2 = g.yv[j-2], g.yv[j-1], g.yv[j]
				it.ixMid = int32(j - 1)
			}
			it.ix0 = int32(sort.SearchFloat64s(g.xv, it.ax0))
			it.iy0 = int32(sort.SearchFloat64s(g.yv, it.ay0))
		}
		dst.items = append(dst.items, it)
	}
	dst.tail = resizeFloats(dst.tail, len(dst.items)+1)
	acc := 0.0
	dst.tail[len(dst.items)] = 0
	for i := len(dst.items) - 1; i >= 0; i-- {
		it := &dst.items[i]
		if it.kind == trialBBox || it.kind == trialTrunk {
			acc += ((it.maxX - it.minX) + (it.maxY - it.minY)) * it.w
		}
		dst.tail[i] = acc
	}
	dst.yClasses = yClasses
	if yClasses > 0 {
		n := len(dst.items) * yClasses
		if cap(dst.memo) < 2*n {
			dst.memo = make([]float64, 2*n)
		}
		dst.memo = dst.memo[:2*n]
		if cap(dst.filled) < n {
			dst.filled = make([]bool, n)
		}
		dst.filled = dst.filled[:n]
		for i := range dst.filled {
			dst.filled[i] = false
		}
	}
}

// PrefillClasses eagerly computes every per-class memo entry. Required
// before concurrent Score/ScoreBounded calls (lazy filling is not
// goroutine-safe); the parallel vacancy scanner calls it once per cell.
func (t *TrialSet) PrefillClasses(yOf func(class int) float64) {
	for i := range t.items {
		if t.items[i].kind != trialTrunk {
			continue
		}
		for c := 0; c < t.yClasses; c++ {
			t.fillClass(i, c, yOf(c))
		}
	}
}

func (t *TrialSet) fillClass(i, class int, y float64) {
	it := &t.items[i]
	slot := i*t.yClasses + class
	var medY float64
	if it.oddM {
		medY = clampMed(y, it.ay0, it.ay1)
	} else {
		medY = (clampMed(y, it.ay0, it.ay1) + clampMed(y, it.ay1, it.ay2)) / 2
	}
	var si int
	switch {
	case medY <= it.ay0:
		si = int(it.iy0)
	case medY <= it.ay1:
		si = int(it.ixMid)
	default:
		si = int(it.ixMid) + 1
	}
	b := branchSumAt(it.yv, it.yp, medY, si)
	if y > medY {
		b += y - medY
	} else {
		b += medY - y
	}
	t.memo[2*slot] = b // horizontal trunk: y branch total
	loy, hiy := it.minY, it.maxY
	if y < loy {
		loy = y
	}
	if y > hiy {
		hiy = y
	}
	t.memo[2*slot+1] = hiy - loy // vertical trunk: along-y span
	t.filled[slot] = true
}

// Score returns the weighted trial cost of placing the compiled cell at
// (x, y). yClass identifies y's memo class (pass a negative class, or
// compile with yClasses 0, to bypass the memo). Read-only apart from lazy
// memo fills; concurrent use requires PrefillClasses first and one View
// per goroutine (the RMST fallback needs per-goroutine scratch).
func (t *TrialSet) Score(view *View, x, y float64, yClass int) float64 {
	cost, _ := t.ScoreBounded(view, x, y, yClass, math.Inf(1))
	return cost
}

// ScoreBounded is Score with early exit: once the partial cost reaches
// bound, scoring stops and ok is false. Net contributions are
// non-negative, so a bailed trial's full cost would be >= bound — under a
// strict-minimum scan with bound set to the best score so far, the bail
// can only drop vacancies that would not have won (ties keep the earlier
// vacancy), leaving the selected slot — and the search trajectory —
// identical to an unbounded scan. When ok is true, cost is the complete
// sum, bitwise equal to Score's.
func (t *TrialSet) ScoreBounded(view *View, x, y float64, yClass int, bound float64) (cost float64, ok bool) {
	memo := yClass >= 0 && t.yClasses > 0
	for i := range t.items {
		it := &t.items[i]
		switch it.kind {
		case trialBBox:
			// Direct arithmetic beats the memo for the bbox degeneration.
			lox, hix, loy, hiy := it.minX, it.maxX, it.minY, it.maxY
			if x < lox {
				lox = x
			}
			if x > hix {
				hix = x
			}
			if y < loy {
				loy = y
			}
			if y > hiy {
				hiy = y
			}
			cost += ((hix - lox) + (hiy - loy)) * it.w
		case trialTrunk:
			var yBranch, ySpan float64
			if memo {
				slot := i*t.yClasses + yClass
				if !t.filled[slot] {
					t.fillClass(i, yClass, y)
				}
				yBranch, ySpan = t.memo[2*slot], t.memo[2*slot+1]
			} else {
				var medY float64
				if it.oddM {
					medY = clampMed(y, it.ay0, it.ay1)
				} else {
					medY = (clampMed(y, it.ay0, it.ay1) + clampMed(y, it.ay1, it.ay2)) / 2
				}
				yBranch = branchSum(it.yv, it.yp, medY)
				if y > medY {
					yBranch += y - medY
				} else {
					yBranch += medY - y
				}
				loy, hiy := it.minY, it.maxY
				if y < loy {
					loy = y
				}
				if y > hiy {
					hiy = y
				}
				ySpan = hiy - loy
			}

			// Horizontal trunk: along-x span plus the y branch total.
			lox, hix := it.minX, it.maxX
			if x < lox {
				lox = x
			}
			if x > hix {
				hix = x
			}
			h := (hix - lox) + yBranch

			// Vertical trunk: along-y span plus the x branch total.
			var medX float64
			if it.oddM {
				medX = clampMed(x, it.ax0, it.ax1)
			} else {
				medX = (clampMed(x, it.ax0, it.ax1) + clampMed(x, it.ax1, it.ax2)) / 2
			}
			var si int
			switch {
			case medX <= it.ax0:
				si = int(it.ix0)
			case medX <= it.ax1:
				si = int(it.ixMid)
			default:
				si = int(it.ixMid) + 1
			}
			xBranch := branchSumAt(it.xv, it.xp, medX, si)
			if x > medX {
				xBranch += x - medX
			} else {
				xBranch += medX - x
			}
			v := ySpan + xBranch

			if v < h {
				h = v
			}
			cost += h * it.w
		case trialRMST:
			cost += view.TrialNetAt(it.net, x, y) * it.w
		case trialZero:
			// Trial length 0: contributes +0.0, which cannot change the
			// (non-negative) accumulator — skip the multiply-add. The
			// bound check below must still run: a trailing zero record
			// with cost exactly at bound is a tie, and ties must report
			// ok=false so the earlier vacancy keeps the win.
		}
		if cost >= bound {
			return cost, false
		}
	}
	// cost < bound holds whenever items is non-empty (the per-item check
	// ran); the explicit guard also covers a degenerate empty trial set.
	return cost, cost < bound
}

func clampMed(c, lo, hi float64) float64 {
	if c < lo {
		return lo
	}
	if c > hi {
		return hi
	}
	return c
}

// Vacancy is one candidate slot for ScanBest: physical center plus the
// row, which doubles as the y memo class.
type Vacancy struct {
	X, Y float64
	Row  int32
}

// ScanStats tallies where ScanBest spends (and saves) work: how many
// candidates it visited, how many each prune mechanism discarded, and
// how many survived to a full score. Accumulation is plain arithmetic —
// callers own one ScanStats per goroutine and fold them into telemetry
// counters after the scan, keeping the inner loop free of atomics.
type ScanStats struct {
	Vacancies    uint64 // row-feasible candidates considered
	PrunedBBox   uint64 // dropped by the leading-net bbox pre-check
	PrunedSuffix uint64 // dropped by the suffix-bound (tail) estimate
	BailedExact  uint64 // dropped by the exact partial-cost prefix check
	Scored       uint64 // fully scored (survived every prune)
}

// Merge folds o into s.
func (s *ScanStats) Merge(o *ScanStats) {
	s.Vacancies += o.Vacancies
	s.PrunedBBox += o.PrunedBBox
	s.PrunedSuffix += o.PrunedSuffix
	s.BailedExact += o.BailedExact
	s.Scored += o.Scored
}

// ScanBest runs the full vacancy scan for the compiled cell over
// free[lo:hi] — the ascending indices of still-free vacancies — skipping
// width-infeasible rows, scoring the rest with the bounded early exit, and
// returning the first vacancy index holding the strictly smallest score
// (-1 if none is admissible under bound0). One call replaces the per-
// vacancy ScoreBounded calls — this is the innermost allocation loop, so
// the scoring is inlined here; the equivalence test pins it bitwise to the
// ScoreBounded loop it replaces. The memo must be compiled with yClasses
// covering every row. A serial caller may leave the memo cold — classes
// fill lazily on first use, so rows no vacancy sits in are never computed.
// Concurrent chunked use must PrefillClasses first (lazy filling is not
// goroutine-safe) and needs one View per goroutine. st (which may be
// nil) collects prune statistics with plain increments; it changes no
// comparison, so the winner and the trajectory are bitwise unaffected.
func (t *TrialSet) ScanBest(view *View, vacs []Vacancy, free []int32,
	rowOK []bool, lo, hi int, bound0 float64, st *ScanStats) (int, float64) {
	if st == nil {
		st = new(ScanStats)
	}
	best, bound := -1, bound0
	items := t.items
	// Bbox pre-check on the leading net: a single-trunk (or bbox) trial
	// is bounded below by the half-perimeter of the stored pins extended
	// by the candidate, and items 1.. are bounded below by tail[1]. When
	// even that sum reaches the current bound the vacancy is skipped
	// before any full evaluation. Pruned vacancies are exactly ones the
	// bounded scan would have discarded (their true cost is >= the
	// bound), so the winner — and the trajectory — is untouched.
	tail := t.tail
	prune := false
	var pruneW, tail1, minX0, maxX0, minY0, maxY0 float64
	if len(items) > 0 && (items[0].kind == trialTrunk || items[0].kind == trialBBox) {
		it := &items[0]
		prune, pruneW, tail1 = true, it.w, tail[1]
		minX0, maxX0, minY0, maxY0 = it.minX, it.maxX, it.minY, it.maxY
	}
scan:
	for _, v32 := range free[lo:hi] {
		v := int(v32)
		row := vacs[v].Row
		if !rowOK[row] {
			continue
		}
		x, y := vacs[v].X, vacs[v].Y
		st.Vacancies++
		if prune {
			lox, hix, loy, hiy := minX0, maxX0, minY0, maxY0
			if x < lox {
				lox = x
			}
			if x > hix {
				hix = x
			}
			if y < loy {
				loy = y
			}
			if y > hiy {
				hiy = y
			}
			if (((hix-lox)+(hiy-loy))*pruneW+tail1)*scanSlack >= bound {
				st.PrunedBBox++
				continue
			}
		}
		yClass := int(row)
		cost := 0.0
		for i := range items {
			it := &items[i]
			switch it.kind {
			case trialBBox:
				lox, hix, loy, hiy := it.minX, it.maxX, it.minY, it.maxY
				if x < lox {
					lox = x
				}
				if x > hix {
					hix = x
				}
				if y < loy {
					loy = y
				}
				if y > hiy {
					hiy = y
				}
				cost += ((hix - lox) + (hiy - loy)) * it.w
			case trialTrunk:
				slot := i*t.yClasses + yClass
				if !t.filled[slot] {
					t.fillClass(i, yClass, y)
				}
				yBranch, ySpan := t.memo[2*slot], t.memo[2*slot+1]

				lox, hix := it.minX, it.maxX
				if x < lox {
					lox = x
				}
				if x > hix {
					hix = x
				}
				h := (hix - lox) + yBranch

				var medX float64
				if it.oddM {
					medX = clampMed(x, it.ax0, it.ax1)
				} else {
					medX = (clampMed(x, it.ax0, it.ax1) + clampMed(x, it.ax1, it.ax2)) / 2
				}
				var si int
				switch {
				case medX <= it.ax0:
					si = int(it.ix0)
				case medX <= it.ax1:
					si = int(it.ixMid)
				default:
					si = int(it.ixMid) + 1
				}
				xBranch := branchSumAt(it.xv, it.xp, medX, si)
				if x > medX {
					xBranch += x - medX
				} else {
					xBranch += medX - x
				}
				v2 := ySpan + xBranch

				if v2 < h {
					h = v2
				}
				cost += h * it.w
			case trialRMST:
				cost += view.TrialNetAt(it.net, x, y) * it.w
			case trialZero:
				// Falls through to the bound check: a trailing zero
				// record at cost == bound is a tie and must not reach
				// the winner assignment (first minimum wins).
			}
			// Bail as soon as the partial cost plus the remaining items'
			// stored-span floor reaches the bound: the full cost could
			// only be larger, so only non-winners are dropped (and a tie
			// at the bound never wins — first minimum stays). The
			// estimate is deflated by scanSlack so float reassociation
			// can never prune a true sub-bound cost; the exact prefix
			// check keeps the common case (cost alone already past the
			// bound) at full strength.
			if cost >= bound {
				st.BailedExact++
				continue scan
			}
			if (cost+tail[i+1])*scanSlack >= bound {
				st.PrunedSuffix++
				continue scan
			}
		}
		st.Scored++
		if cost < bound { // unconditional first-minimum, even for an empty set
			best, bound = v, cost
		}
	}
	return best, bound
}
