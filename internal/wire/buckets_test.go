package wire

import (
	"math"
	"testing"

	"simevo/internal/gen"
	"simevo/internal/layout"
	"simevo/internal/rng"
)

// catalogVacancies captures a vacancy pool the way the engine's allocation
// pass does — one slot per selected cell, at the cell's committed
// coordinate — over a random selection of the named benchmark circuit's
// movable cells.
func catalogVacancies(t *testing.T, name string, keepOneIn int, seed uint64) ([]Vacancy, int) {
	t.Helper()
	ckt, err := gen.Benchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	rows := layout.DefaultNumRows(ckt)
	place := layout.NewRandom(ckt, rows, rng.New(9))
	r := rng.New(seed)
	var vacs []Vacancy
	for _, id := range ckt.Movable() {
		if r.Intn(keepOneIn) != 0 {
			continue
		}
		x, y := place.Coord(id)
		vacs = append(vacs, Vacancy{X: x, Y: y, Row: int32(place.Slot(id).Row)})
	}
	if len(vacs) < 2 {
		t.Fatalf("%s: vacancy pool too small (%d)", name, len(vacs))
	}
	return vacs, rows
}

// requireBucketsEqual asserts two bucket structures over the same vacancy
// pool agree position by position — order, coordinates, and liveness.
func requireBucketsEqual(t *testing.T, tag string, got, want *VacancyBuckets, rows int) {
	t.Helper()
	if got.Live() != want.Live() {
		t.Fatalf("%s: live totals %d vs %d", tag, got.Live(), want.Live())
	}
	for r := 0; r < rows; r++ {
		if got.LiveInRow(r) != want.LiveInRow(r) {
			t.Fatalf("%s: row %d live %d vs %d", tag, r, got.LiveInRow(r), want.LiveInRow(r))
		}
		glo, ghi := got.RowSpan(r)
		wlo, whi := want.RowSpan(r)
		if glo != wlo || ghi != whi {
			t.Fatalf("%s: row %d span [%d,%d) vs [%d,%d)", tag, r, glo, ghi, wlo, whi)
		}
		for p := glo; p < ghi; p++ {
			if got.At(p) != want.At(p) || got.XAt(p) != want.XAt(p) || got.Alive(p) != want.Alive(p) {
				t.Fatalf("%s: row %d pos %d: (%d, %v, %v) vs (%d, %v, %v)", tag, r, p,
					got.At(p), got.XAt(p), got.Alive(p),
					want.At(p), want.XAt(p), want.Alive(p))
			}
		}
	}
}

// TestVacancyBucketsJournalMatchesRebuild drives 10k randomized commit/free
// journal operations — including idempotent repeats — against the row
// buckets of every bundled benchmark circuit and asserts, at checkpoints
// and at the end, that the journaled state is identical to a from-scratch
// Build replayed to the same occupancy.
func TestVacancyBucketsJournalMatchesRebuild(t *testing.T) {
	const ops = 10000
	for _, name := range gen.Catalog() {
		t.Run(name, func(t *testing.T) {
			vacs, rows := catalogVacancies(t, name, 2, 41)
			var b VacancyBuckets
			b.Build(vacs, rows)
			r := rng.New(0x6a09)
			dead := make([]bool, len(vacs))
			for op := 1; op <= ops; op++ {
				v := int32(r.Intn(len(vacs)))
				if r.Intn(2) == 0 {
					b.Commit(v)
					dead[v] = true
				} else {
					b.Free(v)
					dead[v] = false
				}
				if op%2500 == 0 || op == ops {
					var fresh VacancyBuckets
					fresh.Build(vacs, rows)
					deadN := 0
					for i, d := range dead {
						if d {
							fresh.Commit(int32(i))
							deadN++
						}
					}
					if b.Live() != len(vacs)-deadN {
						t.Fatalf("op %d: journal live %d, mirror says %d", op, b.Live(), len(vacs)-deadN)
					}
					requireBucketsEqual(t, name, &b, &fresh, rows)
				}
			}
		})
	}
}

// scanState compiles a random cell's trials and a bucketed vacancy pool
// (with a committed subset), returning everything both scan paths need.
type scanState struct {
	set   TrialSet
	vacs  []Vacancy
	bk    VacancyBuckets
	free  []int32 // live vacancies, ascending index — the flat scan's input
	rowOK []bool
	rows  int
}

// TestScanBestRowsMatchesFlatScan is the sharded-scan equivalence test:
// across random cells, vacancy pools (with committed entries and
// infeasible rows), and seed bounds, ScanBestRows must return bitwise the
// same (winner, score) as the flat ScanBest over the live list — which
// TestTrialSetMatchesViewTrials in turn pins to the brute-force
// ScoreBounded loop.
func TestScanBestRowsMatchesFlatScan(t *testing.T) {
	ckt := testCircuit(t, 36)
	movable := ckt.Movable()
	for _, est := range allEstimators {
		place := layout.NewRandom(ckt, 8, rng.New(5))
		inc := NewIncremental(ckt, est)
		inc.Rebuild(place)
		view := inc.View()
		r := rng.New(0xb0c5)
		var s scanState
		s.rows = place.NumRows()

		for step := 0; step < 80; step++ {
			id := movable[r.Intn(len(movable))]
			nets := ckt.CellNets(id, nil)
			weights := make([]float64, len(nets))
			for i := range weights {
				weights[i] = 1 + float64(r.Intn(8))/4
			}
			inc.RemoveCell(id)
			inc.CompileTrials(&s.set, nets, weights, s.rows)

			nVac := 8 + r.Intn(40)
			s.vacs = s.vacs[:0]
			for i := 0; i < nVac; i++ {
				row := int32(r.Intn(s.rows))
				s.vacs = append(s.vacs, Vacancy{
					X: float64(r.Intn(60)) / 2, Y: layout.RowY(int(row)), Row: row,
				})
			}
			s.bk.Build(s.vacs, s.rows)
			for i := 0; i < nVac/4; i++ {
				s.bk.Commit(int32(r.Intn(nVac)))
			}
			s.free = s.free[:0]
			for v := 0; v < nVac; v++ {
				if s.bk.Alive(int(s.bk.pos[v])) {
					s.free = append(s.free, int32(v))
				}
			}
			s.rowOK = s.rowOK[:0]
			for row := 0; row < s.rows; row++ {
				s.rowOK = append(s.rowOK, r.Intn(8) != 0)
			}

			// Alternate the unbounded scan with an engine-style seed bound
			// (nextafter above a random live vacancy's exact score).
			bound0 := 1e308
			if step%2 == 1 && len(s.free) > 0 {
				v := s.free[r.Intn(len(s.free))]
				if s.rowOK[s.vacs[v].Row] {
					score := s.set.Score(view, s.vacs[v].X, s.vacs[v].Y, int(s.vacs[v].Row))
					bound0 = math.Nextafter(score, math.Inf(1))
				}
			}

			s.set.PrepareScan(layout.RowY, s.rows)
			gotBest, gotScore := s.set.ScanBestRows(view, s.vacs, &s.bk, s.rowOK, 0, s.rows, bound0, nil)
			wantBest, wantScore := s.set.ScanBest(view, s.vacs, s.free, s.rowOK, 0, len(s.free), bound0, nil)
			if gotBest != wantBest || gotScore != wantScore {
				t.Fatalf("est %d step %d: ScanBestRows (%d, %v) != ScanBest (%d, %v)",
					est, step, gotBest, gotScore, wantBest, wantScore)
			}
			inc.RestoreCell(id)
		}
	}
}

// TestScanBestRowsTieHeavy pins the earliest-index tie rule under the
// out-of-order bucket walk: a seeded pool where many vacancies share exact
// coordinates (so their trial scores are bitwise equal) must always
// resolve to the lowest vacancy index among the minimum-score candidates —
// the same winner the in-order reference loop picks.
func TestScanBestRowsTieHeavy(t *testing.T) {
	ckt := testCircuit(t, 36)
	movable := ckt.Movable()
	place := layout.NewRandom(ckt, 8, rng.New(5))
	inc := NewIncremental(ckt, Steiner)
	inc.Rebuild(place)
	view := inc.View()
	r := rng.New(0x71e5)
	rows := place.NumRows()
	var set TrialSet

	for step := 0; step < 60; step++ {
		id := movable[r.Intn(len(movable))]
		nets := ckt.CellNets(id, nil)
		weights := make([]float64, len(nets))
		for i := range weights {
			weights[i] = 1 + float64(r.Intn(8))/4
		}
		inc.RemoveCell(id)
		inc.CompileTrials(&set, nets, weights, rows)

		// Few distinct positions, many copies each: most scans tie.
		nPos := 1 + r.Intn(4)
		type pos struct {
			x   float64
			row int32
		}
		dist := make([]pos, nPos)
		for i := range dist {
			dist[i] = pos{x: float64(r.Intn(20)) / 2, row: int32(r.Intn(rows))}
		}
		nVac := 30
		vacs := make([]Vacancy, nVac)
		for i := range vacs {
			p := dist[r.Intn(nPos)]
			vacs[i] = Vacancy{X: p.x, Y: layout.RowY(int(p.row)), Row: p.row}
		}
		var bk VacancyBuckets
		bk.Build(vacs, rows)
		rowOK := make([]bool, rows)
		for i := range rowOK {
			rowOK[i] = true
		}

		set.PrepareScan(layout.RowY, rows)
		got, gotScore := set.ScanBestRows(view, vacs, &bk, rowOK, 0, rows, 1e308, nil)

		// Brute-force reference: first index with the strictly smallest
		// exact score.
		want, wantScore := -1, 0.0
		for v := range vacs {
			score := set.Score(view, vacs[v].X, vacs[v].Y, int(vacs[v].Row))
			if want < 0 || score < wantScore {
				want, wantScore = v, score
			}
		}
		if got != want || gotScore != wantScore {
			t.Fatalf("step %d: tie resolved to %d (%v), want earliest index %d (%v)",
				step, got, gotScore, want, wantScore)
		}
		inc.RestoreCell(id)
	}
}
