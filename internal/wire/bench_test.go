package wire

import (
	"testing"

	"simevo/internal/gen"
	"simevo/internal/layout"
	"simevo/internal/netlist"
	"simevo/internal/rng"
)

func benchCircuit(b *testing.B) *netlist.Circuit {
	b.Helper()
	ckt, err := gen.Generate(gen.Params{
		Name: "wire-bench", Gates: 500, DFFs: 30, PIs: 14, POs: 14, Depth: 12, Seed: 2006,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ckt
}

// BenchmarkLengthsIncremental compares refreshing all net lengths after a
// two-cell move: the dirty-net incremental path (journal drain + touched
// nets only) against the from-scratch full pass the engine used to do
// every iteration.
func BenchmarkLengthsIncremental(b *testing.B) {
	ckt := benchCircuit(b)
	movable := ckt.Movable()

	b.Run("Dirty", func(b *testing.B) {
		place := layout.NewRandom(ckt, 16, rng.New(1))
		place.JournalCoords(true)
		inc := NewIncremental(ckt, Steiner)
		inc.Rebuild(place)
		r := rng.New(2)
		var lengths []float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := movable[r.Intn(len(movable))]
			c := movable[r.Intn(len(movable))]
			if a != c {
				place.SwapCells(a, c)
				place.Recompute()
			}
			inc.Sync(place)
			lengths = inc.Lengths(lengths)
		}
	})

	b.Run("Full", func(b *testing.B) {
		place := layout.NewRandom(ckt, 16, rng.New(1))
		ev := NewEvaluator(ckt, Steiner)
		r := rng.New(2)
		var lengths []float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := movable[r.Intn(len(movable))]
			c := movable[r.Intn(len(movable))]
			if a != c {
				place.SwapCells(a, c)
				place.Recompute()
			}
			lengths = ev.Lengths(place, lengths)
		}
	})
}

// BenchmarkTrialNetAt compares one-net trial scoring: the O(log p) cached
// composition against the collect-and-sort canonical evaluation.
func BenchmarkTrialNetAt(b *testing.B) {
	ckt := benchCircuit(b)
	place := layout.NewRandom(ckt, 16, rng.New(3))

	// Pick the highest-degree net for a representative worst case.
	var n netlist.NetID
	for i := range ckt.Nets {
		if ckt.Nets[i].Degree() > ckt.Nets[n].Degree() {
			n = netlist.NetID(i)
		}
	}
	cell := ckt.Nets[n].Driver

	b.Run("Incremental", func(b *testing.B) {
		inc := NewIncremental(ckt, Steiner)
		inc.Rebuild(place)
		inc.RemoveCell(cell)
		view := inc.View()
		b.ResetTimer()
		sink := 0.0
		for i := 0; i < b.N; i++ {
			sink += view.TrialNetAt(n, float64(i%100), 7.5)
		}
		_ = sink
	})

	b.Run("Scratch", func(b *testing.B) {
		ev := NewEvaluator(ckt, Steiner)
		b.ResetTimer()
		sink := 0.0
		for i := 0; i < b.N; i++ {
			sink += ev.NetLengthWithCellAt(n, cell, float64(i%100), 7.5, place)
		}
		_ = sink
	})
}
