package wire

import (
	"fmt"

	"simevo/internal/netlist"
)

// Incremental is a net-cost engine that maintains cached per-net geometry
// — a coordinate mirror per cell plus sorted pin-coordinate multisets (and,
// for the Steiner estimator, prefix sums for the trunk/median math) per net
// — so that:
//
//   - a trial placement of one cell is scored in O(log p) per net through a
//     View (TrialNetAt / TrialNetAt2) instead of re-collecting and
//     re-sorting every pin;
//   - after a batch of cell moves, only the nets incident to the moved
//     cells ("dirty" nets) are re-estimated (Sync + Lengths), instead of
//     recomputing every net from scratch.
//
// Committed net lengths are always produced by the embedded from-scratch
// Evaluator collecting pins in pin order from the mirror, so they are
// bitwise identical to Evaluator.Lengths over the same coordinates — the
// serial, Type I, and Type II trajectory invariants depend on this. Trial
// values go through the canonical formulas in trial.go, shared with
// Evaluator.NetLengthWithCellAt, and are likewise bitwise reproducible.
//
// An Incremental is not safe for concurrent mutation. Concurrent *reads*
// are safe through per-goroutine Views (View), which the parallel
// allocation scanner and the parallel goodness evaluator exploit: every
// mutation finishes before a scan starts, and Views carry their own
// scratch for the RMST estimator.
//
// Storage is structure-of-arrays: all per-net sorted pin values, owning
// cells, and prefix sums live in one contiguous backing array per axis
// (flatXV, flatYV, ...), carved into per-net regions at construction. The
// per-net netGeom fields are capacity-capped slice headers aliasing those
// regions, so the existing insert/remove-by-memmove mutation paths work
// unchanged, can never spill into a neighboring net's region (a net's pin
// count never exceeds its degree), and never allocate. Walking nets in id
// order — the dirty-net re-estimation, the goodness formulas, trial
// compilation — therefore walks contiguous memory.
type Incremental struct {
	ckt *netlist.Circuit
	est Estimator

	cx, cy []float64 // per-cell coordinate mirror
	geoms  []netGeom // per-net sorted pin geometry (headers into the flats)

	// Flat SoA backing for the per-net geometry. geoms[n] aliases
	// [netOff[n], netOff[n]+deg(n)) of each value/cell array and
	// [netOff[n]+n, netOff[n]+n+deg(n)+1) of each prefix array (prefix
	// regions are one element longer per net; nil unless the estimator
	// needs them).
	flatXV, flatYV []float64
	flatXC, flatYC []netlist.CellID
	flatXP, flatYP []float64

	// Flat cell-net incidence: cell id's distinct incident nets (with pin
	// multiplicities) are pinRefs[pinOff[id]:pinOff[id+1]], in CellNets
	// order.
	pinRefs []PinRef
	pinOff  []int32

	lengths  []float64        // committed per-net lengths
	dirty    []netlist.NetID  // nets whose cached length is stale
	isDirty  []bool           // per net
	geoStale []netlist.NetID  // Sync scratch: nets to refill from the mirror
	geoMark  []bool           // per net: already on geoStale
	removed  []netlist.CellID // cells lifted out for trial scanning
	oldX     []float64        // coords of removed cells, parallel to removed
	oldY     []float64
	base     View             // serial-use view
	drainBuf []netlist.CellID // scratch for Sync
	built    bool             // Rebuild has run at least once
}

// netGeom holds one net's cached geometry: pin coordinates sorted per axis
// with the owning cell per entry, plus prefix sums for the Steiner branch
// math (len = len(values)+1; unused for HPWL/RMST). The slices are
// capacity-capped windows into the Incremental's flat backing arrays.
type netGeom struct {
	xv, yv []float64
	xc, yc []netlist.CellID
	xp, yp []float64
}

// PinRef is one edge of the cell-net incidence: net plus the number of
// pins the cell has on it (a cell can sink the same net more than once).
type PinRef struct {
	Net netlist.NetID
	K   int32
}

// ChangeSource is the placement-side contract for Sync: coordinates plus a
// drainable journal of cells whose coordinates changed since the last
// drain. *layout.Placement satisfies it once coordinate journaling is
// enabled.
type ChangeSource interface {
	Coords
	DrainChangedCells(dst []netlist.CellID) []netlist.CellID
}

// NewIncremental returns an incremental evaluator for one circuit. Rebuild
// must run before any other use.
func NewIncremental(ckt *netlist.Circuit, est Estimator) *Incremental {
	inc := &Incremental{
		ckt:     ckt,
		est:     est,
		cx:      make([]float64, len(ckt.Cells)),
		cy:      make([]float64, len(ckt.Cells)),
		geoms:   make([]netGeom, ckt.NumNets()),
		lengths: make([]float64, ckt.NumNets()),
		isDirty: make([]bool, ckt.NumNets()),
		geoMark: make([]bool, ckt.NumNets()),
	}
	inc.base = View{inc: inc, ev: NewEvaluator(ckt, est)}
	inc.buildPins()
	inc.buildFlat()
	return inc
}

// buildPins precomputes the cell-net incidence with pin multiplicities so
// the mutation paths touch each incident net in O(1) instead of rescanning
// the net's sink list. The incidence is itself flat: one contiguous PinRef
// array with per-cell offsets.
func (inc *Incremental) buildPins() {
	ckt := inc.ckt
	inc.pinOff = make([]int32, len(ckt.Cells)+1)
	var nets []netlist.NetID
	for id := range ckt.Cells {
		nets = ckt.CellNets(netlist.CellID(id), nets[:0])
		for _, n := range nets {
			net := ckt.Net(n)
			k := int32(0)
			if net.Driver == netlist.CellID(id) {
				k++
			}
			for _, s := range net.Sinks {
				if s == netlist.CellID(id) {
					k++
				}
			}
			inc.pinRefs = append(inc.pinRefs, PinRef{Net: n, K: k})
		}
		inc.pinOff[id+1] = int32(len(inc.pinRefs))
	}
}

// buildFlat allocates the contiguous SoA backing arrays and points every
// net's geometry header at its region. Regions are sized to the net's full
// degree and capacity-capped, so the in-place mutation paths can neither
// reallocate nor cross into a neighbor.
func (inc *Incremental) buildFlat() {
	ckt := inc.ckt
	total := 0
	for n := 0; n < ckt.NumNets(); n++ {
		total += inc.netDegree(netlist.NetID(n))
	}
	inc.flatXV = make([]float64, total)
	inc.flatYV = make([]float64, total)
	inc.flatXC = make([]netlist.CellID, total)
	inc.flatYC = make([]netlist.CellID, total)
	if inc.needPrefix() {
		inc.flatXP = make([]float64, total+ckt.NumNets())
		inc.flatYP = make([]float64, total+ckt.NumNets())
	}
	off := 0
	for n := range inc.geoms {
		deg := inc.netDegree(netlist.NetID(n))
		g := &inc.geoms[n]
		g.xv = inc.flatXV[off : off+deg : off+deg]
		g.yv = inc.flatYV[off : off+deg : off+deg]
		g.xc = inc.flatXC[off : off+deg : off+deg]
		g.yc = inc.flatYC[off : off+deg : off+deg]
		if inc.needPrefix() {
			p := off + n
			g.xp = inc.flatXP[p : p : p+deg+1]
			g.yp = inc.flatYP[p : p : p+deg+1]
		}
		off += deg
	}
}

// netDegree returns the net's total pin count (driver + sinks).
func (inc *Incremental) netDegree(n netlist.NetID) int {
	net := inc.ckt.Net(n)
	deg := len(net.Sinks)
	if net.Driver != netlist.NoCell {
		deg++
	}
	return deg
}

// CellPins returns the cell's distinct incident nets with pin
// multiplicities, in the canonical CellNets order. The returned slice
// aliases the flat incidence array; callers must not mutate it.
func (inc *Incremental) CellPins(id netlist.CellID) []PinRef {
	return inc.pinRefs[inc.pinOff[id]:inc.pinOff[id+1]]
}

// Estimator returns the configured estimator.
func (inc *Incremental) Estimator() Estimator { return inc.est }

// Coord returns the mirrored coordinates of a cell, satisfying Coords so
// the embedded Evaluator (and callers) can read the mirror directly.
func (inc *Incremental) Coord(id netlist.CellID) (x, y float64) {
	return inc.cx[id], inc.cy[id]
}

// NetBBox returns the bounding box of a net's pins from the cached sorted
// multisets in O(1). ok is false for a degenerate net with no pins or
// while some of its pins are lifted out by RemoveCell. The box is exact
// for the committed coordinates of the last Sync/Rebuild, which makes it
// the congestion grid's geometry source: identical coordinates on the
// reference path yield the identical box.
func (inc *Incremental) NetBBox(n netlist.NetID) (minX, minY, maxX, maxY float64, ok bool) {
	g := &inc.geoms[n]
	if len(g.xv) == 0 || inc.netDegree(n) != len(g.xv) {
		return 0, 0, 0, 0, false
	}
	return g.xv[0], g.yv[0], g.xv[len(g.xv)-1], g.yv[len(g.yv)-1], true
}

// needPrefix reports whether the estimator uses the prefix-sum branch math.
func (inc *Incremental) needPrefix() bool { return inc.est == Steiner }

// Rebuild resynchronizes the full state — mirror, multisets, and committed
// lengths — from the given coordinates. It doubles as the periodic
// full-recompute checksum: rebuilding from a consistent state reproduces
// the cached values bit for bit.
func (inc *Incremental) Rebuild(coords Coords) {
	if len(inc.removed) != 0 {
		panic("wire: Rebuild with removed cells outstanding")
	}
	for i := range inc.cx {
		inc.cx[i], inc.cy[i] = coords.Coord(netlist.CellID(i))
	}
	for n := range inc.geoms {
		inc.rebuildNet(netlist.NetID(n))
		inc.isDirty[n] = false
		inc.lengths[n] = inc.estimate(netlist.NetID(n))
	}
	inc.dirty = inc.dirty[:0]
	inc.built = true
}

// rebuildNet refills one net's sorted geometry from the mirror.
func (inc *Incremental) rebuildNet(n netlist.NetID) {
	g := &inc.geoms[n]
	net := inc.ckt.Net(n)
	deg := 0
	if net.Driver != netlist.NoCell {
		deg++
	}
	deg += len(net.Sinks)

	g.xv = resizeFloats(g.xv, deg)
	g.yv = resizeFloats(g.yv, deg)
	g.xc = resizeCells(g.xc, deg)
	g.yc = resizeCells(g.yc, deg)
	i := 0
	fill := func(id netlist.CellID) {
		g.xv[i], g.xc[i] = inc.cx[id], id
		g.yv[i], g.yc[i] = inc.cy[id], id
		i++
	}
	if net.Driver != netlist.NoCell {
		fill(net.Driver)
	}
	for _, s := range net.Sinks {
		fill(s)
	}
	coSort(g.xv, g.xc)
	coSort(g.yv, g.yc)
	inc.refreshPrefix(g)
}

// refreshPrefix recomputes both prefix-sum arrays by a fresh left-to-right
// accumulation — the canonical form every evaluator produces, keeping
// prefix bits independent of edit history.
func (inc *Incremental) refreshPrefix(g *netGeom) {
	if !inc.needPrefix() {
		g.xp, g.yp = g.xp[:0], g.yp[:0]
		return
	}
	g.xp = prefixInto(g.xp, g.xv)
	g.yp = prefixInto(g.yp, g.yv)
}

func prefixInto(dst, v []float64) []float64 {
	dst = resizeFloats(dst, len(v)+1)
	sum := 0.0
	dst[0] = 0
	for i, x := range v {
		sum += x
		dst[i+1] = sum
	}
	return dst
}

// MoveCell updates the mirror and every incident net's geometry for a cell
// now at (x, y), marking those nets dirty. Removal is a binary search into
// each sorted axis plus a memmove; no-op when the coordinates are
// unchanged.
func (inc *Incremental) MoveCell(id netlist.CellID, x, y float64) {
	if inc.cx[id] == x && inc.cy[id] == y {
		return
	}
	oldX, oldY := inc.cx[id], inc.cy[id]
	inc.cx[id], inc.cy[id] = x, y
	inc.eachNet(id, func(n netlist.NetID, g *netGeom, k int) {
		for i := 0; i < k; i++ {
			removePin(&g.xv, &g.xc, oldX, id)
			removePin(&g.yv, &g.yc, oldY, id)
			insertPin(&g.xv, &g.xc, x, id)
			insertPin(&g.yv, &g.yc, y, id)
		}
		inc.refreshPrefix(g)
		inc.markDirty(n)
	})
}

// RemoveCell lifts a cell's pins out of its nets' multisets so that trial
// scoring needs no exclusion logic: a View trial is then simply "stored
// pins plus candidate point(s)". The mirror keeps the old coordinates until
// PlaceCell re-inserts the cell. Committed lengths must not be read while
// cells are removed.
func (inc *Incremental) RemoveCell(id netlist.CellID) {
	inc.removed = append(inc.removed, id)
	inc.oldX = append(inc.oldX, inc.cx[id])
	inc.oldY = append(inc.oldY, inc.cy[id])
	inc.eachNet(id, func(n netlist.NetID, g *netGeom, k int) {
		for i := 0; i < k; i++ {
			removePin(&g.xv, &g.xc, inc.cx[id], id)
			removePin(&g.yv, &g.yc, inc.cy[id], id)
		}
		inc.refreshPrefix(g)
	})
}

// PlaceCell re-inserts a removed cell at (x, y). Incident nets are marked
// dirty only if the coordinates actually changed, so a remove/restore pair
// (trial scanning that keeps the old spot) leaves the cached lengths valid.
func (inc *Incremental) PlaceCell(id netlist.CellID, x, y float64) {
	idx := -1
	for i, r := range inc.removed {
		if r == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic(fmt.Sprintf("wire: PlaceCell(%d) without RemoveCell", id))
	}
	moved := inc.oldX[idx] != x || inc.oldY[idx] != y
	last := len(inc.removed) - 1
	inc.removed[idx] = inc.removed[last]
	inc.oldX[idx], inc.oldY[idx] = inc.oldX[last], inc.oldY[last]
	inc.removed = inc.removed[:last]
	inc.oldX, inc.oldY = inc.oldX[:last], inc.oldY[:last]

	inc.cx[id], inc.cy[id] = x, y
	inc.eachNet(id, func(n netlist.NetID, g *netGeom, k int) {
		for i := 0; i < k; i++ {
			insertPin(&g.xv, &g.xc, x, id)
			insertPin(&g.yv, &g.yc, y, id)
		}
		inc.refreshPrefix(g)
		if moved {
			inc.markDirty(n)
		}
	})
}

// RestoreCell re-inserts a removed cell at its pre-removal coordinates.
func (inc *Incremental) RestoreCell(id netlist.CellID) {
	for i, r := range inc.removed {
		if r == id {
			inc.PlaceCell(id, inc.oldX[i], inc.oldY[i])
			return
		}
	}
	panic(fmt.Sprintf("wire: RestoreCell(%d) without RemoveCell", id))
}

// Sync drains the source's coordinate-change journal and applies the moves,
// marking only the touched nets dirty. The source must be the same
// placement the state was last rebuilt from.
//
// Unlike MoveCell — which edits each net's sorted arrays one pin at a time
// and pays two binary searches, two memmoves, and a prefix refresh per pin
// — Sync batches: it updates the whole mirror first, then refills each
// touched net's geometry once from the mirror. A journal drain typically
// moves a large fraction of the cells (every allocated cell plus the row
// repacking behind it), so most touched nets have several moved pins and
// the single refill is cheaper than the per-pin edits. The refilled arrays
// hold the same sorted multisets the per-pin edits would produce (entries
// of equal coordinate may carry different owning cells, which no consumer
// distinguishes), so every downstream value is bit-identical.
func (inc *Incremental) Sync(src ChangeSource) {
	if len(inc.removed) != 0 {
		panic("wire: Sync with removed cells outstanding")
	}
	inc.drainBuf = src.DrainChangedCells(inc.drainBuf[:0])
	for _, id := range inc.drainBuf {
		x, y := src.Coord(id)
		if inc.cx[id] == x && inc.cy[id] == y {
			continue
		}
		inc.cx[id], inc.cy[id] = x, y
		for _, ref := range inc.CellPins(id) {
			inc.markDirty(ref.Net)
			if !inc.geoMark[ref.Net] {
				inc.geoMark[ref.Net] = true
				inc.geoStale = append(inc.geoStale, ref.Net)
			}
		}
	}
	for _, n := range inc.geoStale {
		inc.geoMark[n] = false
		inc.rebuildNet(n)
	}
	inc.geoStale = inc.geoStale[:0]
}

// Lengths re-estimates the dirty nets (pin-order collection through the
// embedded Evaluator, bitwise identical to a from-scratch pass) and returns
// all committed per-net lengths in dst (allocated if too small).
func (inc *Incremental) Lengths(dst []float64) []float64 {
	inc.flush()
	dst = resizeFloats(dst, len(inc.lengths))
	copy(dst, inc.lengths)
	return dst
}

// NetLength returns one net's committed length, re-estimating it first if
// the net is dirty.
func (inc *Incremental) NetLength(n netlist.NetID) float64 {
	if inc.isDirty[n] {
		if len(inc.removed) != 0 {
			panic("wire: NetLength with removed cells outstanding")
		}
		inc.lengths[n] = inc.estimate(n)
		inc.isDirty[n] = false
	}
	return inc.lengths[n]
}

// estimate re-derives one net's committed length, bitwise identical to the
// from-scratch Evaluator over the same coordinates. Nets whose estimate
// degenerates to the bounding box (HPWL, or Steiner with <= 3 pins — the
// bulk of a netlist) read the extremes straight from the sorted multisets:
// min and max are order-independent, so the value equals the pin-order
// hpwl() bit for bit without collecting a single pin. Everything else goes
// through the embedded Evaluator's canonical pin-order path.
func (inc *Incremental) estimate(n netlist.NetID) float64 {
	return inc.estimateWith(inc.base.ev, n)
}

// estimateWith is estimate through a caller-supplied evaluator scratch, so
// concurrent flush chunks (FlushChunk) can re-estimate disjoint net ranges
// without sharing the base evaluator. The value is independent of which
// evaluator computes it: the bbox fast path reads only the sorted
// multisets, and NetLength collects pins in pin order from the mirror.
func (inc *Incremental) estimateWith(ev *Evaluator, n netlist.NetID) float64 {
	g := &inc.geoms[n]
	deg := len(g.xv)
	if deg < 2 {
		return 0
	}
	if inc.est == HPWL || (inc.est == Steiner && deg <= 3) {
		return (g.xv[deg-1] - g.xv[0]) + (g.yv[deg-1] - g.yv[0])
	}
	return ev.NetLength(n, inc)
}

// Built reports whether Rebuild has initialized the state.
func (inc *Incremental) Built() bool { return inc.built }

// Dirty returns the nets whose cached committed length is stale — the nets
// touched by mutations since the last re-estimation. The engine's goodness
// cache reads it (before Lengths flushes it) to invalidate exactly the
// cells whose goodness inputs changed. The returned slice aliases internal
// state: valid until the next mutation or flush, and not to be mutated.
func (inc *Incremental) Dirty() []netlist.NetID { return inc.dirty }

// DirtySnapshot copies the current dirty-net list into dst (reused if
// roomy). Unlike Dirty the result survives the flush that Lengths
// performs, which is what the cost pipeline needs: it captures the list
// before reading the refreshed lengths, then folds exactly those nets into
// each objective's cached state.
func (inc *Incremental) DirtySnapshot(dst []netlist.NetID) []netlist.NetID {
	return append(dst[:0], inc.dirty...)
}

// StoredSpan returns the half-perimeter of the net's stored pins (0 when
// all pins are removed) — the scan-ordering key for compiled trials.
func (inc *Incremental) StoredSpan(n netlist.NetID) float64 {
	g := &inc.geoms[n]
	if len(g.xv) == 0 {
		return 0
	}
	return (g.xv[len(g.xv)-1] - g.xv[0]) + (g.yv[len(g.yv)-1] - g.yv[0])
}

func (inc *Incremental) flush() {
	if len(inc.dirty) == 0 {
		return
	}
	if len(inc.removed) != 0 {
		panic("wire: Lengths with removed cells outstanding")
	}
	for _, n := range inc.dirty {
		if inc.isDirty[n] {
			inc.lengths[n] = inc.estimate(n)
			inc.isDirty[n] = false
		}
	}
	inc.dirty = inc.dirty[:0]
}

// DirtyLen returns the current dirty-net count — the fan-out domain for a
// chunked parallel flush.
func (inc *Incremental) DirtyLen() int { return len(inc.dirty) }

// FlushChunk re-estimates dirty nets [lo, hi) of the dirty list through
// the given view's evaluator scratch, writing the committed lengths but
// leaving the dirty flags set. Chunks over disjoint ranges may run
// concurrently (each net's estimate reads shared immutable state and
// writes only its own length slot); a serial FinishFlush completes the
// flush. Per-net estimates are order-independent and bitwise identical to
// the serial flush's, so a chunked flush followed by FinishFlush is
// indistinguishable from Lengths' built-in flush.
func (inc *Incremental) FlushChunk(v *View, lo, hi int) {
	if len(inc.removed) != 0 {
		panic("wire: FlushChunk with removed cells outstanding")
	}
	for _, n := range inc.dirty[lo:hi] {
		if inc.isDirty[n] {
			inc.lengths[n] = inc.estimateWith(v.ev, n)
		}
	}
}

// FinishFlush clears the dirty flags and list after every FlushChunk of a
// chunked parallel flush completed.
func (inc *Incremental) FinishFlush() {
	for _, n := range inc.dirty {
		inc.isDirty[n] = false
	}
	inc.dirty = inc.dirty[:0]
}

func (inc *Incremental) markDirty(n netlist.NetID) {
	if !inc.isDirty[n] {
		inc.isDirty[n] = true
		inc.dirty = append(inc.dirty, n)
	}
}

// eachNet invokes fn for every distinct net incident to the cell with the
// cell's pin multiplicity k on that net.
func (inc *Incremental) eachNet(id netlist.CellID, fn func(n netlist.NetID, g *netGeom, k int)) {
	for _, ref := range inc.CellPins(id) {
		fn(ref.Net, &inc.geoms[ref.Net], int(ref.K))
	}
}

// insertPin inserts (v, cell) keeping values ascending.
func insertPin(vals *[]float64, cells *[]netlist.CellID, v float64, cell netlist.CellID) {
	vs, cs := *vals, *cells
	i := searchF64(vs, v)
	vs = append(vs, 0)
	cs = append(cs, 0)
	copy(vs[i+1:], vs[i:])
	copy(cs[i+1:], cs[i:])
	vs[i], cs[i] = v, cell
	*vals, *cells = vs, cs
}

// removePin removes one (v, cell) entry. The entry must exist.
func removePin(vals *[]float64, cells *[]netlist.CellID, v float64, cell netlist.CellID) {
	vs, cs := *vals, *cells
	i := searchF64(vs, v)
	for ; i < len(vs) && vs[i] == v; i++ {
		if cs[i] == cell {
			*vals = append(vs[:i], vs[i+1:]...)
			*cells = append(cs[:i], cs[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("wire: pin (%v, cell %d) not found for removal", v, cell))
}

// coSort sorts vals ascending, carrying cells along (insertion sort: net
// degrees are small and this runs only on rebuild).
func coSort(vals []float64, cells []netlist.CellID) {
	for i := 1; i < len(vals); i++ {
		v, c := vals[i], cells[i]
		j := i - 1
		for j >= 0 && vals[j] > v {
			vals[j+1], cells[j+1] = vals[j], cells[j]
			j--
		}
		vals[j+1], cells[j+1] = v, c
	}
}

func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeCells(s []netlist.CellID, n int) []netlist.CellID {
	if cap(s) < n {
		return make([]netlist.CellID, n)
	}
	return s[:n]
}

// View is a read-only trial scorer over an Incremental's cached state with
// its own scratch buffers, so multiple goroutines can score trials
// concurrently (one View each) while no mutation is in flight.
type View struct {
	inc *Incremental
	ev  *Evaluator // scratch for RMST trials and candidate staging
}

// View returns a new independent view.
func (inc *Incremental) View() *View {
	return &View{inc: inc, ev: NewEvaluator(inc.ckt, inc.est)}
}

// BaseView returns the evaluator-owned view for single-goroutine use.
func (inc *Incremental) BaseView() *View { return &inc.base }

// TrialNetAt estimates the net's length with the stored pins plus one
// candidate point — O(log p) for HPWL/Steiner. The cell being trialled must
// have been lifted out with RemoveCell beforehand.
func (v *View) TrialNetAt(n netlist.NetID, x, y float64) float64 {
	g := &v.inc.geoms[n]
	switch v.inc.est {
	case HPWL:
		if len(g.xv) == 0 {
			return 0
		}
		return bboxPlus1(g.xv[0], g.xv[len(g.xv)-1], g.yv[0], g.yv[len(g.yv)-1], x, y)
	case Steiner:
		stored := len(g.xv)
		if stored == 0 {
			return 0
		}
		if stored <= 2 {
			return bboxPlus1(g.xv[0], g.xv[stored-1], g.yv[0], g.yv[stored-1], x, y)
		}
		return steinerTrial1(g.xv, g.xp, g.yv, g.yp, x, y)
	case RMST:
		v.collectRemaining(n)
		v.ev.xs = append(v.ev.xs, x)
		v.ev.ys = append(v.ev.ys, y)
		return v.ev.rmstLength()
	}
	panic("wire: unknown estimator")
}

// TrialNetAt2 estimates the net's length with two candidate points (the
// pairwise-swap trial). Both trialled cells must have been lifted out with
// RemoveCell beforehand. Candidate order matches
// Evaluator.NetLengthWithCellsAt's append order for bitwise equality.
func (v *View) TrialNetAt2(n netlist.NetID, x1, y1, x2, y2 float64) float64 {
	g := &v.inc.geoms[n]
	switch v.inc.est {
	case HPWL:
		v.ev.cand2(x1, y1, x2, y2)
		return hpwlTrial(g.xv, g.yv, v.ev.candX, v.ev.candY)
	case Steiner:
		v.ev.cand2(x1, y1, x2, y2)
		return steinerTrial(g.xv, g.xp, g.yv, g.yp, v.ev.candX, v.ev.candY)
	case RMST:
		v.collectRemaining(n)
		v.ev.xs = append(v.ev.xs, x1, x2)
		v.ev.ys = append(v.ev.ys, y1, y2)
		return v.ev.rmstLength()
	}
	panic("wire: unknown estimator")
}

// collectRemaining fills the view scratch with the net's non-removed pins
// in pin order (driver, then sinks) from the mirror — the same order
// Evaluator.collect produces, which keeps RMST trials bitwise identical.
func (v *View) collectRemaining(n netlist.NetID) {
	inc := v.inc
	net := inc.ckt.Net(n)
	v.ev.xs, v.ev.ys = v.ev.xs[:0], v.ev.ys[:0]
	add := func(id netlist.CellID) {
		if id == netlist.NoCell {
			return
		}
		for _, r := range inc.removed {
			if r == id {
				return
			}
		}
		v.ev.xs = append(v.ev.xs, inc.cx[id])
		v.ev.ys = append(v.ev.ys, inc.cy[id])
	}
	add(net.Driver)
	for _, s := range net.Sinks {
		add(s)
	}
}
