// Package wire estimates the routed length of placement nets.
//
// The paper estimates interconnect wirelength per net with a Steiner tree
// and sums the estimates (Section 2). This package provides that estimator
// (a single-trunk rectilinear Steiner tree, the standard constructive
// approximation) plus the cheaper half-perimeter bounding box (HPWL) that
// it degenerates to for nets with up to three pins.
package wire

import (
	"slices"

	"simevo/internal/netlist"
)

// Coords exposes physical cell-center coordinates; *layout.Placement
// satisfies it.
type Coords interface {
	Coord(id netlist.CellID) (x, y float64)
}

// Estimator selects the net-length model.
type Estimator uint8

// Available estimators.
const (
	// HPWL is the half-perimeter of the pins' bounding box.
	HPWL Estimator = iota
	// Steiner is a single-trunk rectilinear Steiner tree: a trunk through
	// the median pin coordinate with a branch per pin, taking the cheaper
	// of the two trunk orientations. Equals HPWL for nets with <= 3 pins
	// and upper-bounds it otherwise.
	Steiner
)

// Evaluator computes net lengths for one circuit. It keeps scratch buffers,
// so it is not safe for concurrent use; each goroutine should own one.
type Evaluator struct {
	ckt *netlist.Circuit
	est Estimator
	xs  []float64
	ys  []float64
	med []float64 // scratch for median / MST keys
	inT []bool    // scratch for MST membership

	// Trial scratch: candidate points plus sorted copies with prefix sums
	// for the canonical trial formulas (trial.go).
	candX, candY []float64
	sxs, sys     []float64
	pxs, pys     []float64
}

// NewEvaluator returns an evaluator using the given estimator.
func NewEvaluator(ckt *netlist.Circuit, est Estimator) *Evaluator {
	return &Evaluator{ckt: ckt, est: est}
}

// Estimator returns the configured estimator.
func (e *Evaluator) Estimator() Estimator { return e.est }

// collect gathers pin coordinates of the net, optionally excluding every
// pin belonging to cell `exclude` (pass netlist.NoCell to keep all).
func (e *Evaluator) collect(net *netlist.Net, exclude netlist.CellID, coords Coords) {
	e.xs, e.ys = e.xs[:0], e.ys[:0]
	add := func(id netlist.CellID) {
		if id == exclude {
			return
		}
		x, y := coords.Coord(id)
		e.xs = append(e.xs, x)
		e.ys = append(e.ys, y)
	}
	add(net.Driver)
	for _, s := range net.Sinks {
		add(s)
	}
}

// NetLength estimates the length of one net.
func (e *Evaluator) NetLength(id netlist.NetID, coords Coords) float64 {
	e.collect(e.ckt.Net(id), netlist.NoCell, coords)
	return e.lengthOf()
}

// NetLengthExcluding estimates the net length over all pins except those of
// the excluded cell. This is the basis of the per-cell "optimal cost"
// estimate O_i used by the goodness measure: a cell placed optimally can
// always reach the remaining pins' tree at zero marginal bounding-box cost.
//
// It computes the canonical excluding formulas of excl.go over the full
// sorted pin multiset, producing bitwise the same value as an Incremental
// View's NetLengthExcluding over the cached state — the reference side of
// the goodness-equivalence invariant.
func (e *Evaluator) NetLengthExcluding(id netlist.NetID, exclude netlist.CellID, coords Coords) float64 {
	net := e.ckt.Net(id)
	if e.est == RMST {
		// RMST has no sorted-multiset shortcut; both modes collect the
		// remaining pins in pin order and run Prim.
		e.collect(net, exclude, coords)
		return e.lengthOf()
	}
	e.collect(net, netlist.NoCell, coords)
	k := 0
	if net.Driver == exclude {
		k++
	}
	for _, s := range net.Sinks {
		if s == exclude {
			k++
		}
	}
	if k == 0 {
		return e.lengthOf() // the cell has no pin on this net
	}
	m := len(e.xs) - k
	if m < 2 {
		return 0
	}
	rx, ry := coords.Coord(exclude)
	e.sxs = append(e.sxs[:0], e.xs...)
	e.sys = append(e.sys[:0], e.ys...)
	slices.Sort(e.sxs)
	slices.Sort(e.sys)
	if e.est == HPWL || m <= 3 {
		return hpwlExcl(e.sxs, e.sys, rx, ry, k)
	}
	e.pxs = prefixInto(e.pxs, e.sxs)
	e.pys = prefixInto(e.pys, e.sys)
	return steinerExcl(e.sxs, e.pxs, e.sys, e.pys, rx, ry, k)
}

// NetLengthWithCellAt estimates the net length with one cell's pins moved
// to (x, y) — the trial-position evaluation used by the allocation
// operator. It computes the canonical trial formulas of trial.go over the
// remaining pins, producing bitwise the same value as an Incremental View
// trial with the cell removed.
func (e *Evaluator) NetLengthWithCellAt(id netlist.NetID, cell netlist.CellID, x, y float64, coords Coords) float64 {
	e.collect(e.ckt.Net(id), cell, coords)
	e.cand1(x, y)
	return e.trialLength()
}

// NetLengthWithCellsAt estimates the net length with two cells moved to new
// positions simultaneously — the pairwise-swap trial evaluation used by the
// SA/TS move generators for nets containing both cells. Canonical like
// NetLengthWithCellAt; candidate order is (x1,y1) then (x2,y2).
func (e *Evaluator) NetLengthWithCellsAt(id netlist.NetID, c1 netlist.CellID, x1, y1 float64,
	c2 netlist.CellID, x2, y2 float64, coords Coords) float64 {
	net := e.ckt.Net(id)
	e.xs, e.ys = e.xs[:0], e.ys[:0]
	add := func(cid netlist.CellID) {
		if cid == c1 || cid == c2 {
			return
		}
		x, y := coords.Coord(cid)
		e.xs = append(e.xs, x)
		e.ys = append(e.ys, y)
	}
	add(net.Driver)
	for _, s := range net.Sinks {
		add(s)
	}
	e.cand2(x1, y1, x2, y2)
	return e.trialLength()
}

func (e *Evaluator) cand1(x, y float64) {
	e.candX = append(e.candX[:0], x)
	e.candY = append(e.candY[:0], y)
}

func (e *Evaluator) cand2(x1, y1, x2, y2 float64) {
	e.candX = append(e.candX[:0], x1, x2)
	e.candY = append(e.candY[:0], y1, y2)
}

// trialLength scores the collected pins (e.xs/e.ys) plus the staged
// candidates through the canonical trial formulas. For HPWL (and the
// small-net Steiner degeneration) the bounding box is order-independent, so
// the candidates are simply appended; for larger Steiner nets the pins are
// sorted with fresh prefix sums and handed to steinerTrial; RMST appends
// the candidates and runs Prim over the collect order, matching the
// Incremental View's RMST path.
func (e *Evaluator) trialLength() float64 {
	m := len(e.xs) + len(e.candX)
	if m < 2 {
		return 0
	}
	switch e.est {
	case HPWL:
		// The bounding box is order-independent, so appending and scanning
		// yields bitwise the same value as hpwlTrial over sorted storage.
		e.xs = append(e.xs, e.candX...)
		e.ys = append(e.ys, e.candY...)
		return hpwl(e.xs, e.ys)
	case Steiner:
		if m <= 3 {
			e.xs = append(e.xs, e.candX...)
			e.ys = append(e.ys, e.candY...)
			return hpwl(e.xs, e.ys)
		}
		e.sxs = append(e.sxs[:0], e.xs...)
		e.sys = append(e.sys[:0], e.ys...)
		slices.Sort(e.sxs)
		slices.Sort(e.sys)
		e.pxs = prefixInto(e.pxs, e.sxs)
		e.pys = prefixInto(e.pys, e.sys)
		return steinerTrial(e.sxs, e.pxs, e.sys, e.pys, e.candX, e.candY)
	case RMST:
		e.xs = append(e.xs, e.candX...)
		e.ys = append(e.ys, e.candY...)
		return e.rmstLength()
	}
	panic("wire: unknown estimator")
}

func (e *Evaluator) lengthOf() float64 {
	n := len(e.xs)
	if n < 2 {
		return 0
	}
	switch e.est {
	case HPWL:
		return hpwl(e.xs, e.ys)
	case Steiner:
		if n <= 3 {
			return hpwl(e.xs, e.ys) // exact Steiner length for <= 3 pins
		}
		h := trunkLength(e.xs, e.ys, &e.med) // horizontal trunk
		v := trunkLength(e.ys, e.xs, &e.med) // vertical trunk
		if v < h {
			return v
		}
		return h
	case RMST:
		return e.rmstLength()
	}
	panic("wire: unknown estimator")
}

func hpwl(xs, ys []float64) float64 {
	minX, maxX := xs[0], xs[0]
	minY, maxY := ys[0], ys[0]
	for i := 1; i < len(xs); i++ {
		if xs[i] < minX {
			minX = xs[i]
		}
		if xs[i] > maxX {
			maxX = xs[i]
		}
		if ys[i] < minY {
			minY = ys[i]
		}
		if ys[i] > maxY {
			maxY = ys[i]
		}
	}
	return (maxX - minX) + (maxY - minY)
}

// trunkLength computes the single-trunk Steiner length with the trunk
// running along the first axis: trunk span plus a perpendicular branch from
// every pin to the trunk at the median second-axis coordinate.
func trunkLength(along, across []float64, scratch *[]float64) float64 {
	minA, maxA := along[0], along[0]
	for _, v := range along[1:] {
		if v < minA {
			minA = v
		}
		if v > maxA {
			maxA = v
		}
	}
	med := median(across, scratch)
	sum := maxA - minA
	for _, v := range across {
		if v > med {
			sum += v - med
		} else {
			sum += med - v
		}
	}
	return sum
}

func median(v []float64, scratch *[]float64) float64 {
	switch len(v) {
	case 1:
		return v[0]
	case 2:
		return (v[0] + v[1]) / 2
	}
	if cap(*scratch) < len(v) {
		*scratch = make([]float64, len(v))
	}
	s := (*scratch)[:len(v)]
	copy(s, v)
	slices.Sort(s) // non-reflective pdqsort; scratch is reused across calls
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Lengths fills dst (allocated if nil) with per-net length estimates and
// returns it.
func (e *Evaluator) Lengths(coords Coords, dst []float64) []float64 {
	if cap(dst) < e.ckt.NumNets() {
		dst = make([]float64, e.ckt.NumNets())
	}
	dst = dst[:e.ckt.NumNets()]
	for i := range dst {
		dst[i] = e.NetLength(netlist.NetID(i), coords)
	}
	return dst
}

// Total sums per-net lengths: the paper's Cost_wire.
func Total(lengths []float64) float64 {
	sum := 0.0
	for _, l := range lengths {
		sum += l
	}
	return sum
}
