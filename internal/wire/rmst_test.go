package wire

import (
	"testing"
	"testing/quick"

	"simevo/internal/gen"
	"simevo/internal/layout"
	"simevo/internal/netlist"
	"simevo/internal/rng"
)

func TestRMSTTwoPin(t *testing.T) {
	ckt := starCircuit(t, 1)
	net := netByName(t, ckt, "d")
	coords := gridCoords{}
	coords[ckt.Nets[net].Driver] = [2]float64{0, 0}
	coords[ckt.Nets[net].Sinks[0]] = [2]float64{3, 4}
	if got := NewEvaluator(ckt, RMST).NetLength(net, coords); got != 7 {
		t.Fatalf("2-pin RMST = %v, want 7", got)
	}
}

func TestRMSTKnownSquare(t *testing.T) {
	// Corners of a 10x10 square: the RMST uses three edges of length 10.
	ckt := starCircuit(t, 3)
	net := netByName(t, ckt, "d")
	coords := gridCoords{}
	pts := [][2]float64{{0, 0}, {10, 0}, {0, 10}, {10, 10}}
	coords[ckt.Nets[net].Driver] = pts[0]
	for i, s := range ckt.Nets[net].Sinks {
		coords[s] = pts[i+1]
	}
	if got := NewEvaluator(ckt, RMST).NetLength(net, coords); got != 30 {
		t.Fatalf("square RMST = %v, want 30", got)
	}
}

func TestRMSTCollinear(t *testing.T) {
	// Collinear pins: RMST equals the span (and the HPWL).
	ckt := starCircuit(t, 3)
	net := netByName(t, ckt, "d")
	coords := gridCoords{}
	pts := [][2]float64{{0, 0}, {4, 0}, {9, 0}, {15, 0}}
	coords[ckt.Nets[net].Driver] = pts[0]
	for i, s := range ckt.Nets[net].Sinks {
		coords[s] = pts[i+1]
	}
	if got := NewEvaluator(ckt, RMST).NetLength(net, coords); got != 15 {
		t.Fatalf("collinear RMST = %v, want 15", got)
	}
}

func TestRMSTBounds(t *testing.T) {
	// Property: HPWL <= RMST everywhere; RMST is a spanning construction,
	// so it is also a legal routed length (finite, non-negative).
	ckt, err := gen.Generate(gen.Params{
		Name: "rmst", Gates: 90, DFFs: 6, PIs: 5, POs: 5, Depth: 7, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed uint64) bool {
		p := layout.NewRandom(ckt, 10, rng.New(seed))
		he := NewEvaluator(ckt, HPWL)
		re := NewEvaluator(ckt, RMST)
		for i := 0; i < ckt.NumNets(); i++ {
			h := he.NetLength(netlist.NetID(i), p)
			r := re.NetLength(netlist.NetID(i), p)
			if r < h-1e-9 || r < 0 {
				return false
			}
			// MST over k pins has k-1 edges, each at most HPWL long.
			if k := ckt.Nets[i].Degree(); r > h*float64(k-1)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestRMSTUsableBySimE(t *testing.T) {
	// The estimator must plug into the trial-position path used by the
	// allocation operator.
	ckt := starCircuit(t, 2)
	net := netByName(t, ckt, "d")
	coords := gridCoords{}
	coords[ckt.Nets[net].Driver] = [2]float64{0, 0}
	coords[ckt.Nets[net].Sinks[0]] = [2]float64{8, 0}
	coords[ckt.Nets[net].Sinks[1]] = [2]float64{8, 2}
	e := NewEvaluator(ckt, RMST)
	full := e.NetLength(net, coords)
	trial := e.NetLengthWithCellAt(net, ckt.Nets[net].Driver, 7, 0, coords)
	if trial >= full {
		t.Fatalf("moving the driver closer did not shrink the RMST: %v -> %v", full, trial)
	}
}
