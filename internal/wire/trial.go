package wire

// Canonical trial-evaluation formulas shared by the from-scratch Evaluator
// and the Incremental evaluator.
//
// A trial asks: "what would this net's length be if one (or two) cells were
// moved to candidate positions?" The answer is computed from the net's
// remaining pins — the stored multiset — plus up to two candidate points
// that are never materialized into the multiset.
//
// Floating-point addition is not associative, so the trial length of the
// same pin set can differ in the last ulp depending on the order terms are
// summed. Both evaluators therefore compute trials through the SAME
// formulas below, over the SAME sorted value sequences, which makes the two
// paths bitwise identical: the equivalence tests (and the Type I / parallel
// TS trajectory invariants) rely on exact equality, not tolerances.
//
// The formulas are O(log p) in the stored pin count p:
//
//	HPWL:    bounding box of stored extremes and candidates.
//	Steiner: trunk span from the extremes; branch sum around the merged
//	         median via prefix sums (branchSum); candidate branches added
//	         last, in candidate order.
//
// Prefix sums are always produced by a fresh left-to-right accumulation
// over the sorted values (see refreshPrefix and Evaluator.prefixInto), so
// any two evaluators holding the same coordinates hold bitwise-identical
// prefix arrays regardless of the edit history that produced them.

// hpwlTrial returns the half-perimeter of the stored sorted values plus
// candidate points. xs/ys are ascending; cx/cy hold 0-2 candidates (equal
// length). Returns 0 when fewer than two points exist in total.
func hpwlTrial(xs, ys, cx, cy []float64) float64 {
	if len(xs)+len(cx) < 2 {
		return 0
	}
	return spanTrial(xs, cx) + spanTrial(ys, cy)
}

// spanTrial returns max-min over a sorted slice merged with candidates.
func spanTrial(v, cands []float64) float64 {
	var lo, hi float64
	if len(v) > 0 {
		lo, hi = v[0], v[len(v)-1]
	} else {
		lo, hi = cands[0], cands[0]
	}
	for _, c := range cands {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	return hi - lo
}

// steinerTrial returns the single-trunk Steiner trial length over the
// stored sorted values (with prefix sums) plus candidates. Degenerates to
// HPWL for up to three total pins, exactly like Evaluator.lengthOf.
func steinerTrial(xs, xp, ys, yp, cx, cy []float64) float64 {
	m := len(xs) + len(cx)
	if m < 2 {
		return 0
	}
	if m <= 3 {
		return hpwlTrial(xs, ys, cx, cy)
	}
	h := trunkTrial(xs, cx, ys, yp, cy)
	v := trunkTrial(ys, cy, xs, xp, cx)
	if v < h {
		return v
	}
	return h
}

// trunkTrial computes the trial trunk length with the trunk along the
// first axis: the merged along-axis span plus a branch from every across
// coordinate to the merged median. Stored branches are summed through
// branchSum with candidate branches added in candidate order; the span is
// added last so the branch total is a self-contained term (the TrialSet
// row memo caches it per y-class).
func trunkTrial(along, alongC, across, acrossP, acrossC []float64) float64 {
	med := mergedMedian(across, acrossC)
	sum := branchSum(across, acrossP, med)
	for _, c := range acrossC {
		if c > med {
			sum += c - med
		} else {
			sum += med - c
		}
	}
	return spanTrial(along, alongC) + sum
}

// branchSum returns Σ|v_i − med| over the sorted values v with prefix sums
// p (p[i] = v[0]+…+v[i−1], accumulated left to right; len(p) = len(v)+1).
func branchSum(v, p []float64, med float64) float64 {
	return branchSumAt(v, p, med, searchF64(v, med))
}

// branchSumAt is branchSum with the split index — the first index holding
// a value >= med — already known. TrialSet resolves it from precomputed
// anchors instead of a per-trial binary search.
func branchSumAt(v, p []float64, med float64, i int) float64 {
	n := len(v)
	left := med*float64(i) - p[i]
	right := (p[n] - p[i]) - med*float64(n-i)
	return left + right
}

// bboxPlus1 returns the half-perimeter of stored bounds extended by one
// candidate point — value-identical to hpwlTrial with one candidate.
func bboxPlus1(minX, maxX, minY, maxY, x, y float64) float64 {
	if x < minX {
		minX = x
	}
	if x > maxX {
		maxX = x
	}
	if y < minY {
		minY = y
	}
	if y > maxY {
		maxY = y
	}
	return (maxX - minX) + (maxY - minY)
}

// steinerTrial1 is the single-candidate specialization of steinerTrial for
// nets with at least three stored pins (total pins >= 4). It computes
// bitwise the same value: the merged median of "sorted values plus one
// point" reduces to a clamp between two middle anchors (mergedAt1), so no
// median binary search is needed — only branchSum's.
func steinerTrial1(xv, xp, yv, yp []float64, x, y float64) float64 {
	h := trunkTrial1(xv, x, yv, yp, y)
	v := trunkTrial1(yv, y, xv, xp, x)
	if v < h {
		return v
	}
	return h
}

func trunkTrial1(along []float64, ac float64, across, acrossP []float64, cc float64) float64 {
	minA, maxA := along[0], along[len(along)-1]
	if ac < minA {
		minA = ac
	}
	if ac > maxA {
		maxA = ac
	}
	med := medianPlus1(across, cc)
	sum := branchSum(across, acrossP, med)
	if cc > med {
		sum += cc - med
	} else {
		sum += med - cc
	}
	return (maxA - minA) + sum
}

// medianPlus1 returns the median of the sorted values v plus one extra
// value c — the same value mergedMedian produces for one candidate.
func medianPlus1(v []float64, c float64) float64 {
	m := len(v) + 1
	if m%2 == 1 {
		return mergedAt1(v, c, m/2)
	}
	j := m / 2
	return (mergedAt1(v, c, j-1) + mergedAt1(v, c, j)) / 2
}

// mergedAt1 returns element i of the sorted slice v virtually merged with
// one value c: clamp(c, v[i-1], v[i]) with out-of-range anchors treated as
// ±inf. Equivalent to mergedAt with one candidate — inserting c at its
// lower bound means position i holds v[i] when c sorts above it, v[i-1]
// when c sorts below, and c itself in between.
func mergedAt1(v []float64, c float64, i int) float64 {
	if i > 0 && c < v[i-1] {
		return v[i-1]
	}
	if i < len(v) && c > v[i] {
		return v[i]
	}
	return c
}

// mergedMedian returns the median of the sorted values v merged with 0-2
// candidate points, using the same even/odd averaging as wire.median.
func mergedMedian(v, cands []float64) float64 {
	m := len(v) + len(cands)
	var c0, c1 float64
	switch len(cands) {
	case 0:
		// mergedAt reads only v.
	case 1:
		c0, c1 = cands[0], cands[0]
	default:
		c0, c1 = cands[0], cands[1]
		if c1 < c0 {
			c0, c1 = c1, c0
		}
	}
	if m%2 == 1 {
		return mergedAt(v, c0, c1, len(cands), m/2)
	}
	return (mergedAt(v, c0, c1, len(cands), m/2-1) + mergedAt(v, c0, c1, len(cands), m/2)) / 2
}

// mergedAt returns element i of the sorted slice v virtually merged with k
// candidates c0 <= c1. Candidates are placed at their lower-bound insertion
// positions; among equal values the choice is irrelevant because equal
// values are interchangeable.
func mergedAt(v []float64, c0, c1 float64, k, i int) float64 {
	if k == 0 {
		return v[i]
	}
	p0 := searchF64(v, c0)
	if i < p0 {
		return v[i]
	}
	if i == p0 {
		return c0
	}
	if k == 1 {
		return v[i-1]
	}
	p1 := searchF64(v, c1) + 1 // c1 lands after c0's slot
	if i < p1 {
		return v[i-1]
	}
	if i == p1 {
		return c1
	}
	return v[i-2]
}
