package wire

// VacancyBuckets shards a vacancy pool by row, keeping each row's
// vacancies x-sorted so ScanBestRows can seed near a cell's anchor and
// walk outward instead of visiting the whole free list in index order.
//
// The structure separates the static sort from the dynamic occupancy: the
// per-row ordering is built once per allocation pass (the vacancy set is
// fixed after capture), and the commit/free journal only flips per-slot
// liveness bits — O(1) per operation, so maintaining the buckets while
// cells take slots costs nothing against the O(|S|²) trial scans they
// accelerate. Dead (committed) entries stay in place and are skipped
// during the walk; each skip is a single branch, and a scan never touches
// more positions than the flat free-list walk it replaces.
//
// Not safe for concurrent mutation; concurrent read-only use (the chunked
// parallel scan, which partitions rows) is fine between journal ops.
type VacancyBuckets struct {
	order []int32   // vacancy indices grouped by row, x-ascending (ties: ascending index)
	xs    []float64 // xs[p] = vacancy order[p]'s x (hoisted for the seek/walk)
	pos   []int32   // per vacancy: its position in order
	rowAt []int32   // per position: the row (inverse of the region table)
	start []int32   // per row: region start in order; len rows+1
	live  []bool    // per position: vacancy still free
	rowN  []int32   // per row: live count
	total int       // live count across all rows
}

// Build sorts the vacancy pool into per-row x-ascending buckets and marks
// every vacancy live. Rows must cover every Vacancy.Row value.
func (b *VacancyBuckets) Build(vacs []Vacancy, rows int) {
	n := len(vacs)
	b.order = resizeI32s(b.order, n)
	b.xs = resizeFloats(b.xs, n)
	b.pos = resizeI32s(b.pos, n)
	b.rowAt = resizeI32s(b.rowAt, n)
	b.start = resizeI32s(b.start, rows+1)
	b.live = resizeBools(b.live, n)
	b.rowN = resizeI32s(b.rowN, rows)
	b.total = n

	// Counting sort by row. rowN doubles as the per-row fill cursor — the
	// second pass leaves it back at the per-row counts.
	for r := range b.rowN {
		b.rowN[r] = 0
	}
	for i := range vacs {
		b.rowN[vacs[i].Row]++
	}
	acc := int32(0)
	for r := 0; r < rows; r++ {
		b.start[r] = acc
		acc += b.rowN[r]
		b.rowN[r] = 0
	}
	b.start[rows] = acc
	for i := range vacs {
		r := vacs[i].Row
		b.order[b.start[r]+b.rowN[r]] = int32(i)
		b.rowN[r]++
	}
	// Then x within each row. Regions are small (the pool splits across
	// all rows), so an allocation-free insertion sort beats sort.Slice.
	for r := 0; r < rows; r++ {
		lo, hi := int(b.start[r]), int(b.start[r+1])
		region := b.order[lo:hi]
		for i := 1; i < len(region); i++ {
			v := region[i]
			x := vacs[v].X
			j := i - 1
			for j >= 0 && (vacs[region[j]].X > x || (vacs[region[j]].X == x && region[j] > v)) {
				region[j+1] = region[j]
				j--
			}
			region[j+1] = v
		}
		for p := lo; p < hi; p++ {
			b.rowAt[p] = int32(r)
		}
	}
	for p, v := range b.order {
		b.pos[v] = int32(p)
		b.xs[p] = vacs[v].X
		b.live[p] = true
	}
}

// Commit marks vacancy v occupied (journal op, O(1)).
func (b *VacancyBuckets) Commit(v int32) {
	p := b.pos[v]
	if !b.live[p] {
		return
	}
	b.live[p] = false
	b.rowN[b.rowAt[p]]--
	b.total--
}

// Free revives vacancy v (journal op, O(1)). The engine's allocation pass
// only commits — each selected cell consumes one vacancy — but the journal
// is symmetric so callers undoing a speculative commit need no rebuild.
func (b *VacancyBuckets) Free(v int32) {
	p := b.pos[v]
	if b.live[p] {
		return
	}
	b.live[p] = true
	b.rowN[b.rowAt[p]]++
	b.total++
}

// Live returns the number of free vacancies across all rows.
func (b *VacancyBuckets) Live() int { return b.total }

// LiveInRow returns the number of free vacancies in one row.
func (b *VacancyBuckets) LiveInRow(row int) int { return int(b.rowN[row]) }

// Rows returns the row count the buckets were built with.
func (b *VacancyBuckets) Rows() int { return len(b.rowN) }

// RowSpan returns the static position range [lo, hi) of one row's bucket.
func (b *VacancyBuckets) RowSpan(row int) (lo, hi int) {
	return int(b.start[row]), int(b.start[row+1])
}

// SeekGE returns the first position in row whose x is >= x (the region end
// when every vacancy sits left of x). Positions include dead entries;
// callers skip them via Alive.
func (b *VacancyBuckets) SeekGE(row int, x float64) int {
	lo, hi := int(b.start[row]), int(b.start[row+1])
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b.xs[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Alive reports whether the vacancy at position p is still free.
func (b *VacancyBuckets) Alive(p int) bool { return b.live[p] }

// At returns the vacancy index at position p.
func (b *VacancyBuckets) At(p int) int32 { return b.order[p] }

// XAt returns the x coordinate at position p.
func (b *VacancyBuckets) XAt(p int) float64 { return b.xs[p] }

func resizeBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func resizeI32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
