package wire

// Rectilinear minimum spanning tree (RMST) estimation. The RMST is a
// tighter routed-length estimate than the single-trunk tree for high-fanout
// nets (it is within 1.5x of the optimal rectilinear Steiner minimal tree)
// at O(k²) cost for k pins, which is acceptable because placement nets are
// small. Exposed as a third Estimator so the ablation benches can compare
// the estimators' effect on SimE behaviour.

// RMST selects the rectilinear-minimum-spanning-tree estimator.
const RMST Estimator = 2

// rmstLength computes the total Manhattan length of a minimum spanning
// tree over the collected pins, using Prim's algorithm with the evaluator's
// scratch buffers.
func (e *Evaluator) rmstLength() float64 {
	n := len(e.xs)
	if n < 2 {
		return 0
	}
	if n == 2 {
		return abs(e.xs[0]-e.xs[1]) + abs(e.ys[0]-e.ys[1])
	}
	if cap(e.med) < n {
		e.med = make([]float64, n)
	}
	dist := e.med[:n] // reuse the median scratch as the key array
	inTree := e.inT
	if cap(inTree) < n {
		inTree = make([]bool, n)
	}
	inTree = inTree[:n]
	e.inT = inTree
	for i := range inTree {
		inTree[i] = false
		dist[i] = 1e308
	}

	total := 0.0
	cur := 0
	inTree[0] = true
	for added := 1; added < n; added++ {
		// Relax distances against the vertex just added, then pick the
		// closest fringe vertex.
		best, bestD := -1, 1e308
		for i := 0; i < n; i++ {
			if inTree[i] {
				continue
			}
			if d := abs(e.xs[i]-e.xs[cur]) + abs(e.ys[i]-e.ys[cur]); d < dist[i] {
				dist[i] = d
			}
			if dist[i] < bestD {
				best, bestD = i, dist[i]
			}
		}
		inTree[best] = true
		total += bestD
		cur = best
	}
	return total
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
