// Package power estimates per-net switching activity and the placement
// power cost of the paper's Section 2:
//
//	Cost_power = Σ_i l_i · S_i
//
// where l_i is the wirelength estimate of net i and S_i its switching
// probability. Switching probabilities are derived from signal
// probabilities propagated through the logic under the standard spatial/
// temporal independence assumptions: primary inputs have a configurable
// one-probability (default 0.5); a gate's output probability follows from
// its truth function over independent inputs; the switching activity of a
// net with one-probability p is S = 2·p·(1−p). Sequential feedback through
// flip-flops is resolved by fixpoint iteration.
package power

import (
	"fmt"
	"math"

	"simevo/internal/netlist"
)

// Config controls activity estimation.
type Config struct {
	// PIProb is the one-probability of primary inputs.
	PIProb float64
	// MaxIters bounds the sequential fixpoint iteration.
	MaxIters int
	// Tol is the convergence threshold on the largest probability change
	// between iterations.
	Tol float64
}

// DefaultConfig returns the standard estimation parameters.
func DefaultConfig() Config {
	return Config{PIProb: 0.5, MaxIters: 50, Tol: 1e-9}
}

// Activities computes the switching probability S_i of every net.
// The returned slice is indexed by NetID.
func Activities(ckt *netlist.Circuit, cfg Config) ([]float64, error) {
	probs, err := Probabilities(ckt, cfg)
	if err != nil {
		return nil, err
	}
	return FromProbabilities(probs), nil
}

// FromProbabilities derives switching activities from steady-state
// one-probabilities: S = 2·p·(1−p). Callers that already paid for the
// probability fixpoint (core.Problem caches it once per problem) convert
// without re-propagating the circuit.
func FromProbabilities(probs []float64) []float64 {
	acts := make([]float64, len(probs))
	for i, p := range probs {
		acts[i] = 2 * p * (1 - p)
	}
	return acts
}

// Probabilities computes the steady-state one-probability of every net.
func Probabilities(ckt *netlist.Circuit, cfg Config) ([]float64, error) {
	if cfg.PIProb < 0 || cfg.PIProb > 1 {
		return nil, fmt.Errorf("power: PI probability %v out of [0,1]", cfg.PIProb)
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 1
	}
	lv, err := ckt.Levelize()
	if err != nil {
		return nil, err
	}

	prob := make([]float64, ckt.NumNets())
	// Initialize: PI nets at PIProb, DFF outputs at 0.5 (resolved by the
	// fixpoint below), everything else propagated.
	for _, pi := range ckt.PIs {
		prob[ckt.Cells[pi].Out] = cfg.PIProb
	}
	for _, ff := range ckt.DFFs {
		prob[ckt.Cells[ff].Out] = 0.5
	}
	// Macro outputs have no truth function to propagate through; they keep
	// the neutral probability (maximum switching activity S = 0.5).
	for i := range ckt.Cells {
		if cell := &ckt.Cells[i]; cell.Type == netlist.Macro && cell.Out != netlist.NoNet {
			prob[cell.Out] = 0.5
		}
	}

	for iter := 0; iter < cfg.MaxIters; iter++ {
		// Combinational propagation in topological order.
		for _, id := range lv.Order {
			cell := &ckt.Cells[id]
			if cell.Type == netlist.Input || cell.Type == netlist.Output ||
				cell.Type == netlist.DFF || cell.Type == netlist.Macro {
				continue
			}
			prob[cell.Out] = gateProb(cell.Type, cell.In, prob)
		}
		// Synchronous DFF update: output probability becomes the data
		// input's steady-state probability.
		delta := 0.0
		for _, ff := range ckt.DFFs {
			cell := &ckt.Cells[ff]
			next := prob[cell.In[0]]
			if d := math.Abs(next - prob[cell.Out]); d > delta {
				delta = d
			}
			prob[cell.Out] = next
		}
		if delta <= cfg.Tol {
			break
		}
	}
	return prob, nil
}

// gateProb evaluates the output one-probability of a gate from its input
// net probabilities assuming independence.
func gateProb(t netlist.GateType, in []netlist.NetID, prob []float64) float64 {
	switch t {
	case netlist.And:
		p := 1.0
		for _, n := range in {
			p *= prob[n]
		}
		return p
	case netlist.Nand:
		p := 1.0
		for _, n := range in {
			p *= prob[n]
		}
		return 1 - p
	case netlist.Or:
		q := 1.0
		for _, n := range in {
			q *= 1 - prob[n]
		}
		return 1 - q
	case netlist.Nor:
		q := 1.0
		for _, n := range in {
			q *= 1 - prob[n]
		}
		return q
	case netlist.Not:
		return 1 - prob[in[0]]
	case netlist.Buf:
		return prob[in[0]]
	case netlist.Xor, netlist.Xnor:
		// Fold pairwise: P(a xor b) = a(1-b) + b(1-a).
		p := prob[in[0]]
		for _, n := range in[1:] {
			q := prob[n]
			p = p*(1-q) + q*(1-p)
		}
		if t == netlist.Xnor {
			return 1 - p
		}
		return p
	}
	panic(fmt.Sprintf("power: gateProb on non-gate type %v", t))
}

// Cost computes the paper's power cost Σ l_i · S_i given per-net lengths
// and activities.
func Cost(lengths, activities []float64) float64 {
	sum := 0.0
	for i := range lengths {
		sum += lengths[i] * activities[i]
	}
	return sum
}
