package power

import (
	"math"
	"testing"
	"testing/quick"

	"simevo/internal/gen"
	"simevo/internal/netlist"
)

func netProb(t *testing.T, ckt *netlist.Circuit, probs []float64, name string) float64 {
	t.Helper()
	for i := range ckt.Nets {
		if ckt.Nets[i].Name == name {
			return probs[i]
		}
	}
	t.Fatalf("net %q not found", name)
	return -1
}

func buildGate(t *testing.T, typ netlist.GateType, n int) *netlist.Circuit {
	t.Helper()
	b := netlist.NewBuilder("g")
	inputs := make([]string, n)
	for i := range inputs {
		inputs[i] = "i" + string(rune('0'+i))
		b.AddInput(inputs[i])
	}
	b.AddGate("g", typ, inputs, 0)
	b.AddOutput("g")
	ckt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ckt
}

func TestGateProbabilities(t *testing.T) {
	cases := []struct {
		typ  netlist.GateType
		n    int
		want float64
	}{
		{netlist.And, 2, 0.25},
		{netlist.Nand, 2, 0.75},
		{netlist.Or, 2, 0.75},
		{netlist.Nor, 2, 0.25},
		{netlist.Not, 1, 0.5},
		{netlist.Buf, 1, 0.5},
		{netlist.Xor, 2, 0.5},
		{netlist.Xnor, 2, 0.5},
		{netlist.And, 3, 0.125},
		{netlist.Or, 3, 0.875},
	}
	for _, tc := range cases {
		ckt := buildGate(t, tc.typ, tc.n)
		probs, err := Probabilities(ckt, DefaultConfig())
		if err != nil {
			t.Fatalf("%v: %v", tc.typ, err)
		}
		if got := netProb(t, ckt, probs, "g"); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%v/%d output prob = %v, want %v", tc.typ, tc.n, got, tc.want)
		}
	}
}

func TestBiasedInputs(t *testing.T) {
	ckt := buildGate(t, netlist.And, 2)
	cfg := DefaultConfig()
	cfg.PIProb = 0.9
	probs, err := Probabilities(ckt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := netProb(t, ckt, probs, "g"); math.Abs(got-0.81) > 1e-12 {
		t.Fatalf("AND(0.9, 0.9) = %v, want 0.81", got)
	}
}

func TestActivityFormula(t *testing.T) {
	ckt := buildGate(t, netlist.And, 2)
	acts, err := Activities(ckt, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Output prob 0.25 -> S = 2*0.25*0.75 = 0.375.
	if got := netProb(t, ckt, acts, "g"); math.Abs(got-0.375) > 1e-12 {
		t.Fatalf("AND2 activity = %v, want 0.375", got)
	}
	// PI nets: S = 2*0.5*0.5 = 0.5.
	if got := netProb(t, ckt, acts, "i0"); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("PI activity = %v, want 0.5", got)
	}
}

func TestSequentialFixpoint(t *testing.T) {
	// ff = DFF(g), g = AND(a, ff): p(g) = 0.5 * p(ff), p(ff) = p(g)
	// => fixpoint p = 0. The iteration must converge there.
	b := netlist.NewBuilder("seq")
	b.AddInput("a")
	b.AddGate("g", netlist.And, []string{"a", "ff"}, 0)
	b.AddGate("ff", netlist.DFF, []string{"g"}, 0)
	b.AddOutput("g")
	ckt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	probs, err := Probabilities(ckt, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := netProb(t, ckt, probs, "ff"); got > 1e-6 {
		t.Fatalf("feedback AND fixpoint = %v, want ~0", got)
	}
}

func TestSequentialFixpointOr(t *testing.T) {
	// ff = DFF(g), g = OR(a, ff): p(g) = 1 - 0.5*(1-p(ff)) -> fixpoint 1.
	b := netlist.NewBuilder("seq2")
	b.AddInput("a")
	b.AddGate("g", netlist.Or, []string{"a", "ff"}, 0)
	b.AddGate("ff", netlist.DFF, []string{"g"}, 0)
	b.AddOutput("g")
	ckt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	probs, err := Probabilities(ckt, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := netProb(t, ckt, probs, "ff"); got < 1-1e-6 {
		t.Fatalf("feedback OR fixpoint = %v, want ~1", got)
	}
}

func TestProbabilitiesInRange(t *testing.T) {
	prop := func(seed uint64) bool {
		ckt, err := gen.Generate(gen.Params{
			Name: "p", Gates: 100, DFFs: 10, PIs: 8, POs: 8, Depth: 8, Seed: seed,
		})
		if err != nil {
			return false
		}
		probs, err := Probabilities(ckt, DefaultConfig())
		if err != nil {
			return false
		}
		for _, p := range probs {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
		}
		acts, err := Activities(ckt, DefaultConfig())
		if err != nil {
			return false
		}
		for _, s := range acts {
			if s < 0 || s > 0.5+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestCost(t *testing.T) {
	lengths := []float64{10, 20, 30}
	acts := []float64{0.5, 0.25, 0.1}
	want := 10*0.5 + 20*0.25 + 30*0.1
	if got := Cost(lengths, acts); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Cost = %v, want %v", got, want)
	}
}

func TestCostMonotoneInLength(t *testing.T) {
	acts := []float64{0.3, 0.3}
	if Cost([]float64{10, 10}, acts) >= Cost([]float64{20, 10}, acts) {
		t.Fatal("power cost not monotone in net length")
	}
}

func TestInvalidConfig(t *testing.T) {
	ckt := buildGate(t, netlist.And, 2)
	cfg := DefaultConfig()
	cfg.PIProb = 1.5
	if _, err := Probabilities(ckt, cfg); err == nil {
		t.Fatal("PIProb out of range accepted")
	}
}

func TestDeterministic(t *testing.T) {
	ckt, err := gen.Benchmark("s1196")
	if err != nil {
		t.Fatal(err)
	}
	a1, err := Activities(ckt, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Activities(ckt, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("activity of net %d differs between runs", i)
		}
	}
}
