package gen

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"simevo/internal/netlist"
)

// benchHash generates the circuit and hashes its .bench serialization.
func benchHash(t *testing.T, p Params) string {
	t.Helper()
	ckt, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := netlist.WriteBench(&buf, ckt); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

// TestScaledParamsGoldenHash pins scale-tier generation byte-for-byte:
// the same (cells, seed) must serialize to the same .bench forever. A
// failure here means generated "benchmarks" silently changed identity —
// every recorded baseline number against them becomes incomparable.
func TestScaledParamsGoldenHash(t *testing.T) {
	if got, want := benchHash(t, ScaledParams("c1000", 1000, 7)),
		"4ee3e6054ca357483a643fc146f81627a5e76a4e23a05e76071bb9f8c251ca5c"; got != want {
		t.Errorf("ScaledParams(c1000, 1000, 7) hash = %s, want %s", got, want)
	}
	if testing.Short() {
		t.Skip("large-preset hash skipped in -short mode")
	}
	if got, want := benchHash(t, ScaledParams("large", LargeCells, 1)),
		"bdfb6d564c05f77eae589f9bd63786dc167f750566710b268a55c82295d0ddae"; got != want {
		t.Errorf("large preset hash = %s, want %s", got, want)
	}
}

// TestScaledParamsShape checks the profile extrapolation invariants.
func TestScaledParamsShape(t *testing.T) {
	p := ScaledParams("x", 10_000, 3)
	if p.Gates+p.DFFs != 10_000 {
		t.Errorf("gates+dffs = %d, want 10000", p.Gates+p.DFFs)
	}
	if p.DFFs != 10_000/14 {
		t.Errorf("dffs = %d, want %d", p.DFFs, 10_000/14)
	}
	if p.PIs != 100 || p.POs != 100 {
		t.Errorf("io = %d/%d, want 100/100 (√cells)", p.PIs, p.POs)
	}
	// Tiny requests clamp to a placeable minimum.
	if p := ScaledParams("y", 1, 1); p.Gates+p.DFFs != 64 {
		t.Errorf("clamped cells = %d, want 64", p.Gates+p.DFFs)
	}
}
