package gen

import (
	"strings"
	"testing"
	"testing/quick"

	"simevo/internal/netlist"
)

func TestGenerateSmall(t *testing.T) {
	ckt, err := Generate(Params{Name: "t", Gates: 50, DFFs: 5, PIs: 4, POs: 4, Depth: 6, Seed: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	st := netlist.ComputeStats(ckt)
	if st.Cells != 55 {
		t.Fatalf("Cells = %d, want 55", st.Cells)
	}
	if st.Gates != 50 || st.DFFs != 5 {
		t.Fatalf("Gates/DFFs = %d/%d, want 50/5", st.Gates, st.DFFs)
	}
	if st.PIs != 4 || st.POs != 4 {
		t.Fatalf("PIs/POs = %d/%d, want 4/4", st.PIs, st.POs)
	}
	if st.Depth < 6 {
		t.Fatalf("Depth = %d, want >= 6 (DFF data paths may extend it)", st.Depth)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Name: "d", Gates: 100, DFFs: 8, PIs: 6, POs: 6, Depth: 8, Seed: 7}
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var sa, sb strings.Builder
	if err := netlist.WriteBench(&sa, a); err != nil {
		t.Fatal(err)
	}
	if err := netlist.WriteBench(&sb, b); err != nil {
		t.Fatal(err)
	}
	if sa.String() != sb.String() {
		t.Fatal("same-seed generation produced different circuits")
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	p := Params{Name: "d", Gates: 100, DFFs: 8, PIs: 6, POs: 6, Depth: 8, Seed: 7}
	q := p
	q.Seed = 8
	a, _ := Generate(p)
	b, _ := Generate(q)
	var sa, sb strings.Builder
	netlist.WriteBench(&sa, a)
	netlist.WriteBench(&sb, b)
	if sa.String() == sb.String() {
		t.Fatal("different seeds produced identical circuits")
	}
}

func TestGenerateValidates(t *testing.T) {
	// Generate already calls Validate via Build; re-validate defensively and
	// check round-trip through the .bench format.
	ckt, err := Generate(Params{Name: "v", Gates: 200, DFFs: 12, PIs: 8, POs: 8, Depth: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := ckt.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	var sb strings.Builder
	if err := netlist.WriteBench(&sb, ckt); err != nil {
		t.Fatal(err)
	}
	ckt2, err := netlist.ParseBench("v2", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	s1, s2 := netlist.ComputeStats(ckt), netlist.ComputeStats(ckt2)
	s1.Name, s2.Name = "", ""
	if s1 != s2 {
		t.Fatalf("bench round-trip changed stats:\n  %+v\n  %+v", s1, s2)
	}
}

func TestGenerateRejectsBadParams(t *testing.T) {
	if _, err := Generate(Params{Name: "bad", Gates: 3, Depth: 10, PIs: 2, POs: 2, Seed: 1}); err == nil {
		t.Fatal("gates < depth accepted")
	}
	if _, err := Generate(Params{Name: "bad", Gates: 0, PIs: 2, POs: 2, Seed: 1}); err == nil {
		t.Fatal("zero gates accepted")
	}
}

func TestGeneratePropertyValid(t *testing.T) {
	// Property: any sane parameter set yields a structurally valid circuit
	// with the requested cell counts.
	prop := func(seed uint64, gRaw, dRaw, piRaw, poRaw uint8) bool {
		gates := 20 + int(gRaw)%200
		dffs := int(dRaw) % 16
		pis := 2 + int(piRaw)%12
		pos := 2 + int(poRaw)%12
		ckt, err := Generate(Params{
			Name: "prop", Gates: gates, DFFs: dffs, PIs: pis, POs: pos,
			Depth: 8, Seed: seed,
		})
		if err != nil {
			return false
		}
		st := netlist.ComputeStats(ckt)
		return st.Gates == gates && st.DFFs == dffs && st.PIs == pis && st.POs == pos
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCatalogComplete(t *testing.T) {
	names := Catalog()
	want := []string{"s1196", "s1238", "s1488", "s1494", "s3330"}
	if len(names) != len(want) {
		t.Fatalf("Catalog = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Catalog[%d] = %q, want %q", i, names[i], n)
		}
	}
}

func TestCatalogCellCountsMatchPaper(t *testing.T) {
	// Movable cell counts must match the paper's Table 1 "Cells" column.
	want := map[string]int{
		"s1196": 561, "s1238": 540, "s1488": 667, "s1494": 661, "s3330": 1561,
	}
	for name, cells := range want {
		ckt, err := Benchmark(name)
		if err != nil {
			t.Fatalf("Benchmark(%s): %v", name, err)
		}
		if got := ckt.NumMovable(); got != cells {
			t.Errorf("%s movable cells = %d, want %d (paper Table 1)", name, got, cells)
		}
	}
}

func TestBenchmarkUnknown(t *testing.T) {
	if _, err := Benchmark("s9999"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestFaninDistributionRespected(t *testing.T) {
	// With a point-mass fan-in distribution, every gate must have that
	// exact fan-in (modulo 1-input gates forced by gate typing).
	ckt, err := Generate(Params{
		Name: "f3", Gates: 150, DFFs: 0, PIs: 6, POs: 6, Depth: 6,
		FaninDist: []float64{0, 0, 1}, // always fan-in 3
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ckt.Cells {
		c := &ckt.Cells[i]
		if c.IsPad() || c.Type == netlist.DFF {
			continue
		}
		if len(c.In) != 3 {
			t.Fatalf("gate %s fan-in = %d, want 3", c.Name, len(c.In))
		}
	}
}

func TestEveryNetHasSinkOrIsDeepSignal(t *testing.T) {
	// Structural sanity: the vast majority of nets should have sinks (POs
	// and DFF inputs absorb deep signals). A few dangling nets are
	// tolerable, as in real benchmarks, but not more than 20%.
	ckt, err := Benchmark("s1196")
	if err != nil {
		t.Fatal(err)
	}
	dangling := 0
	for i := range ckt.Nets {
		if len(ckt.Nets[i].Sinks) == 0 {
			dangling++
		}
	}
	if frac := float64(dangling) / float64(len(ckt.Nets)); frac > 0.20 {
		t.Fatalf("%.1f%% of nets dangling, want <= 20%%", frac*100)
	}
}
