package gen

import (
	"fmt"
	"sort"

	"simevo/internal/netlist"
)

// The catalog reproduces the five ISCAS-89 test cases of the paper's
// evaluation (Tables 1-4). Movable cell counts match the paper's "Cells"
// column exactly; PI/PO/DFF counts and depth follow the published ISCAS-89
// characteristics. Gates = Cells - DFFs.
//
//	Ckt    Cells (paper Table 1)
//	s1196  561
//	s1238  540
//	s1488  667
//	s1494  661
//	s3330  1561
var catalog = map[string]Params{
	"s1196": {Name: "s1196", Gates: 561 - 18, DFFs: 18, PIs: 14, POs: 14, Depth: 24, Seed: 0x1196},
	"s1238": {Name: "s1238", Gates: 540 - 18, DFFs: 18, PIs: 14, POs: 14, Depth: 22, Seed: 0x1238},
	"s1488": {Name: "s1488", Gates: 667 - 6, DFFs: 6, PIs: 8, POs: 19, Depth: 17, Seed: 0x1488},
	"s1494": {Name: "s1494", Gates: 661 - 6, DFFs: 6, PIs: 8, POs: 19, Depth: 17, Seed: 0x1494},
	"s3330": {Name: "s3330", Gates: 1561 - 132, DFFs: 132, PIs: 40, POs: 73, Depth: 14, Seed: 0x3330},
}

// Catalog returns the names of the available benchmark circuits in
// deterministic order.
func Catalog() []string {
	names := make([]string, 0, len(catalog))
	for n := range catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CatalogParams returns the generation parameters for a named benchmark.
func CatalogParams(name string) (Params, error) {
	p, ok := catalog[name]
	if !ok {
		return Params{}, fmt.Errorf("gen: unknown benchmark %q (have %v)", name, Catalog())
	}
	return p, nil
}

// Benchmark generates the named catalog circuit. Generation is deterministic:
// repeated calls return structurally identical circuits.
func Benchmark(name string) (*netlist.Circuit, error) {
	p, err := CatalogParams(name)
	if err != nil {
		return nil, err
	}
	return Generate(p)
}
