package gen

import (
	"fmt"
	"math"
	"sort"

	"simevo/internal/netlist"
)

// The catalog reproduces the five ISCAS-89 test cases of the paper's
// evaluation (Tables 1-4). Movable cell counts match the paper's "Cells"
// column exactly; PI/PO/DFF counts and depth follow the published ISCAS-89
// characteristics. Gates = Cells - DFFs.
//
//	Ckt    Cells (paper Table 1)
//	s1196  561
//	s1238  540
//	s1488  667
//	s1494  661
//	s3330  1561
var catalog = map[string]Params{
	"s1196": {Name: "s1196", Gates: 561 - 18, DFFs: 18, PIs: 14, POs: 14, Depth: 24, Seed: 0x1196},
	"s1238": {Name: "s1238", Gates: 540 - 18, DFFs: 18, PIs: 14, POs: 14, Depth: 22, Seed: 0x1238},
	"s1488": {Name: "s1488", Gates: 667 - 6, DFFs: 6, PIs: 8, POs: 19, Depth: 17, Seed: 0x1488},
	"s1494": {Name: "s1494", Gates: 661 - 6, DFFs: 6, PIs: 8, POs: 19, Depth: 17, Seed: 0x1494},
	"s3330": {Name: "s3330", Gates: 1561 - 132, DFFs: 132, PIs: 40, POs: 73, Depth: 14, Seed: 0x3330},
}

// Catalog returns the names of the available benchmark circuits in
// deterministic order.
func Catalog() []string {
	names := make([]string, 0, len(catalog))
	for n := range catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CatalogParams returns the generation parameters for a named benchmark.
func CatalogParams(name string) (Params, error) {
	p, ok := catalog[name]
	if !ok {
		return Params{}, fmt.Errorf("gen: unknown benchmark %q (have %v)", name, Catalog())
	}
	return p, nil
}

// Benchmark generates the named catalog circuit. Generation is deterministic:
// repeated calls return structurally identical circuits.
func Benchmark(name string) (*netlist.Circuit, error) {
	p, err := CatalogParams(name)
	if err != nil {
		return nil, err
	}
	return Generate(p)
}

// LargeCells is the cell count of the "large" scale-tier preset
// (cmd/circuitgen -preset large, the experiments large-circuit baseline).
const LargeCells = 100_000

// ScaledParams derives generation parameters for an arbitrary cell count,
// extrapolating the ISCAS-89 profile the catalog entries follow: ~7% of
// cells are flip-flops, pad counts grow with the perimeter (√cells), and
// the depth stays in the ISCAS band so width — the placement-relevant
// dimension — absorbs the scale. The tier is deliberately NOT part of
// Catalog(): catalog iteration (service validation, the scan-rate
// baseline sweep) must stay cheap. Generation is deterministic in
// (cells, seed); byte-for-byte reproducibility is pinned by a golden
// hash test.
func ScaledParams(name string, cells int, seed uint64) Params {
	if cells < 64 {
		cells = 64
	}
	dffs := cells / 14
	io := int(math.Round(math.Sqrt(float64(cells))))
	if io < 8 {
		io = 8
	}
	return Params{
		Name:  name,
		Gates: cells - dffs,
		DFFs:  dffs,
		PIs:   io,
		POs:   io,
		Depth: 18,
		Seed:  seed,
	}
}
