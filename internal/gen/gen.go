// Package gen synthesizes gate-level circuits that are statistically
// equivalent to the ISCAS-89 benchmarks used in the paper's evaluation.
//
// The real ISCAS-89 netlist files are not redistributable in this offline
// workspace, so the experiments run on synthetic stand-ins generated here.
// The substitution is documented in DESIGN.md: SimE placement behaviour is
// driven by netlist statistics — cell count, fan-in distribution, net degree
// distribution, logic depth, and connection locality — all of which the
// generator reproduces for each catalog entry. Real .bench files, when
// available, load through netlist.ParseBench and run unchanged.
package gen

import (
	"fmt"

	"simevo/internal/netlist"
	"simevo/internal/rng"
)

// Params controls circuit synthesis.
type Params struct {
	Name string
	// Gates is the number of combinational gates; DFFs is the number of
	// flip-flops. Movable cell count = Gates + DFFs.
	Gates int
	DFFs  int
	// PIs and POs are the primary input/output pad counts.
	PIs, POs int
	// Depth is the target combinational depth (levels of logic).
	Depth int
	// FaninDist[k] is the relative weight of fan-in k+1 for combinational
	// gates. A typical ISCAS-89 profile is {0.30, 0.45, 0.15, 0.07, 0.03}
	// (fan-in 1..5).
	FaninDist []float64
	// Locality in (0,1] biases input selection toward recent levels; higher
	// values produce more local (shorter) connections. 0 selects the
	// default of 0.5.
	Locality float64
	// Seed makes generation deterministic.
	Seed uint64
}

func (p *Params) withDefaults() Params {
	q := *p
	if q.FaninDist == nil {
		q.FaninDist = []float64{0.30, 0.45, 0.15, 0.07, 0.03}
	}
	if q.Locality == 0 {
		q.Locality = 0.5
	}
	if q.Depth <= 0 {
		q.Depth = 12
	}
	if q.PIs <= 0 {
		q.PIs = 8
	}
	if q.POs <= 0 {
		q.POs = 8
	}
	return q
}

// gateForFanin picks a plausible gate function for the given fan-in.
func gateForFanin(r *rng.R, fanin int) netlist.GateType {
	if fanin == 1 {
		if r.Bernoulli(0.7) {
			return netlist.Not
		}
		return netlist.Buf
	}
	switch r.Intn(6) {
	case 0:
		return netlist.And
	case 1, 2:
		return netlist.Nand
	case 3:
		return netlist.Or
	case 4:
		return netlist.Nor
	default:
		if fanin == 2 {
			if r.Bernoulli(0.5) {
				return netlist.Xor
			}
			return netlist.Xnor
		}
		return netlist.Nand
	}
}

// Generate synthesizes a circuit per the parameters. The construction builds
// a layered DAG: level 0 holds PIs and DFF outputs; combinational gates are
// spread over levels 1..Depth; each gate draws inputs from earlier levels
// with a geometric locality bias. DFF data inputs and POs connect from the
// deepest levels, closing the sequential loops.
func Generate(p Params) (*netlist.Circuit, error) {
	p = p.withDefaults()
	if p.Gates < p.Depth {
		return nil, fmt.Errorf("gen: %d gates cannot fill depth %d", p.Gates, p.Depth)
	}
	if p.Gates <= 0 || p.PIs <= 0 || p.POs <= 0 {
		return nil, fmt.Errorf("gen: gates, PIs and POs must be positive")
	}

	r := rng.New(p.Seed)
	b := netlist.NewBuilder(p.Name)

	// Level 0 signal pool: PIs and DFF outputs.
	var levels [][]string
	var level0 []string
	for i := 0; i < p.PIs; i++ {
		name := fmt.Sprintf("pi%d", i)
		b.AddInput(name)
		level0 = append(level0, name)
	}
	dffNames := make([]string, p.DFFs)
	for i := 0; i < p.DFFs; i++ {
		dffNames[i] = fmt.Sprintf("ff%d", i)
		level0 = append(level0, dffNames[i])
	}
	levels = append(levels, level0)

	// Distribute gates over levels 1..Depth: deeper circuits narrow toward
	// the outputs, so weight early levels slightly more.
	perLevel := make([]int, p.Depth+1)
	remaining := p.Gates
	for lvl := 1; lvl <= p.Depth; lvl++ {
		perLevel[lvl] = 1 // every level keeps at least one gate
		remaining--
	}
	for remaining > 0 {
		// Weight level l by Depth-l+1 for a gently tapering profile.
		w := make([]float64, p.Depth)
		for i := range w {
			w[i] = float64(p.Depth - i + 1)
		}
		perLevel[1+r.Pick(w)]++
		remaining--
	}

	// pickInput chooses a source signal for a gate at the given level,
	// preferring recent levels (geometric with parameter Locality).
	pickInput := func(level int) string {
		back := 1 + r.Geometric(p.Locality, level-1)
		if back > level {
			back = level
		}
		src := levels[level-back]
		return src[r.Intn(len(src))]
	}

	gateNum := 0
	for lvl := 1; lvl <= p.Depth; lvl++ {
		var cur []string
		for g := 0; g < perLevel[lvl]; g++ {
			fanin := 1 + r.Pick(p.FaninDist)
			typ := gateForFanin(r, fanin)
			inputs := make([]string, 0, fanin)
			seen := map[string]bool{}
			if g == 0 {
				// Anchor each level to the previous one so the realized
				// combinational depth matches the target exactly.
				prev := levels[lvl-1]
				sig := prev[r.Intn(len(prev))]
				seen[sig] = true
				inputs = append(inputs, sig)
			}
			for len(inputs) < fanin {
				sig := pickInput(lvl)
				if seen[sig] && len(seen) < totalSignals(levels) {
					continue // avoid duplicate pins when alternatives exist
				}
				seen[sig] = true
				inputs = append(inputs, sig)
			}
			name := fmt.Sprintf("g%d", gateNum)
			gateNum++
			b.AddGate(name, typ, inputs, 0)
			cur = append(cur, name)
		}
		levels = append(levels, cur)
	}

	// Deep signal pool for DFF inputs and POs: last third of the levels,
	// extended toward level 1 until it can cover the PO count without
	// repetition (each primary output must observe a distinct signal).
	var deep []string
	start := 1 + (2*p.Depth)/3
	for {
		deep = deep[:0]
		for lvl := start; lvl <= p.Depth; lvl++ {
			deep = append(deep, levels[lvl]...)
		}
		if len(deep) >= p.POs || start <= 1 {
			break
		}
		start--
	}
	if len(deep) < p.POs {
		return nil, fmt.Errorf("gen: only %d gate signals for %d outputs", len(deep), p.POs)
	}

	for i := 0; i < p.DFFs; i++ {
		b.AddGate(dffNames[i], netlist.DFF, []string{deep[r.Intn(len(deep))]}, 0)
	}
	perm := r.Perm(len(deep))
	for i := 0; i < p.POs; i++ {
		b.AddOutput(deep[perm[i]])
	}

	return b.Build()
}

func totalSignals(levels [][]string) int {
	n := 0
	for _, l := range levels {
		n += len(l)
	}
	return n
}
