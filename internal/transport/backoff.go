package transport

import "time"

// Backoff returns the wait before retry attempt (1-based): base doubled
// per attempt and capped at max, then scaled by a jitter factor in
// [0.5, 1.5) drawn from jitter, a source of uniform values in [0, 1).
// The jitter spreads a fleet of workers that lost the same hub so their
// reconnects do not arrive as a thundering herd; nil disables it (useful
// in deterministic tests). A non-positive base returns 0 (retry
// immediately); a non-positive max leaves the growth uncapped.
func Backoff(attempt int, base, max time.Duration, jitter func() float64) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for i := 1; i < attempt; i++ {
		if max > 0 && d >= max {
			break
		}
		d *= 2
	}
	if max > 0 && d > max {
		d = max
	}
	if jitter != nil {
		d = time.Duration(float64(d) * (0.5 + jitter()))
	}
	return d
}
