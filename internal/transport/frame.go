package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"simevo/internal/mpi"
	"simevo/internal/telemetry"
)

// Wire framing: every message is a length-prefixed frame
//
//	uint32 length   (bytes after this field)
//	int32  src      (sender rank)
//	int32  dst      (destination rank)
//	int32  tag
//	payload
//
// all little-endian. Control frames (join handshake, rank assignment,
// job boundaries) use reserved negative tags below the collective range.

const (
	frameHeader = 12      // src + dst + tag
	maxFrame    = 1 << 28 // 256 MiB payload guard against corrupt prefixes
)

// Control tags of the coordinator/worker protocol.
const (
	tagCtrlJoin  = -(3001 + iota) // worker -> hub: join handshake (payload: magic)
	tagCtrlStart                  // hub -> worker: job start (payload: rank, size)
	tagCtrlDone                   // worker -> hub: rank function returned (payload: status byte)
	tagCtrlEnd                    // hub -> worker: job closed, return to the pool
	tagCtrlBye                    // hub -> worker: shut down for good
)

// joinMagic identifies (and versions) the join handshake.
const joinMagic = "simevo-transport-v1"

type frame struct {
	src, dst, tag int
	data          []byte
}

// writeFrame serializes one frame to w. Callers serialize access per
// connection (see connWriter).
func writeFrame(w io.Writer, f frame) error {
	var hdr [4 + frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(frameHeader+len(f.data)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(int32(f.src)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(int32(f.dst)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(int32(f.tag)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.data) > 0 {
		if _, err := w.Write(f.data); err != nil {
			return err
		}
	}
	telemetry.TransportSentFrames.Inc()
	telemetry.TransportSentBytes.Add(uint64(len(hdr) + len(f.data)))
	return nil
}

// readFrame reads one frame from r.
func readFrame(r *bufio.Reader) (frame, error) {
	var pfx [4]byte
	if _, err := io.ReadFull(r, pfx[:]); err != nil {
		return frame{}, err
	}
	n := binary.LittleEndian.Uint32(pfx[:])
	if n < frameHeader || n > maxFrame+frameHeader {
		return frame{}, fmt.Errorf("transport: frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return frame{}, err
	}
	f := frame{
		src: int(int32(binary.LittleEndian.Uint32(buf[0:]))),
		dst: int(int32(binary.LittleEndian.Uint32(buf[4:]))),
		tag: int(int32(binary.LittleEndian.Uint32(buf[8:]))),
	}
	if len(buf) > frameHeader {
		f.data = buf[frameHeader:]
	}
	telemetry.TransportRecvFrames.Inc()
	telemetry.TransportRecvBytes.Add(uint64(len(pfx) + len(buf)))
	return f, nil
}

// connWriter serializes frame writes to one connection: the coordinator
// writes to a worker from the rank-0 strategy goroutine and from relay
// readers concurrently. It keeps per-connection traffic totals (frames
// and payload bytes) for the hub's worker detail report.
type connWriter struct {
	mu sync.Mutex
	w  io.Writer

	msgs  atomic.Int64 // frames successfully written
	bytes atomic.Int64 // payload bytes successfully written
}

func (cw *connWriter) write(f frame) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if err := writeFrame(cw.w, f); err != nil {
		return err
	}
	cw.msgs.Add(1)
	cw.bytes.Add(int64(len(f.data)))
	return nil
}

// inbox is a rank's received-message queue: FIFO per (src, tag) match,
// blocking receive, poisoned by the first connection failure.
type inbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	msgs []frame
	err  error
}

func newInbox() *inbox {
	ib := &inbox{}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

func (ib *inbox) push(f frame) {
	ib.mu.Lock()
	ib.msgs = append(ib.msgs, f)
	ib.mu.Unlock()
	ib.cond.Broadcast()
}

// fail poisons the inbox: pending and future receives panic with *Fatal.
func (ib *inbox) fail(err error) {
	ib.mu.Lock()
	if ib.err == nil {
		ib.err = err
	}
	ib.mu.Unlock()
	ib.cond.Broadcast()
}

// matches mirrors the simulator's matching rule: wildcards match only
// non-internal (>= 0) tags.
func frameMatches(f *frame, src, tag int) bool {
	if src != mpi.AnySource && f.src != src {
		return false
	}
	if tag == mpi.AnyTag {
		return f.tag >= 0
	}
	return f.tag == tag
}

// recv blocks until a matching message arrives, in arrival order.
func (ib *inbox) recv(src, tag int) ([]byte, mpi.Status) {
	ib.mu.Lock()
	for {
		for i := range ib.msgs {
			f := ib.msgs[i]
			if !frameMatches(&f, src, tag) {
				continue
			}
			ib.msgs = append(ib.msgs[:i], ib.msgs[i+1:]...)
			ib.mu.Unlock()
			return f.data, mpi.Status{Source: f.src, Tag: f.tag}
		}
		if ib.err != nil {
			err := ib.err
			ib.mu.Unlock()
			panic(&Fatal{Err: err})
		}
		ib.cond.Wait()
	}
}
