package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"simevo/internal/mpi"
	"simevo/internal/telemetry"
)

// Wire framing: every message is a length-prefixed frame
//
//	uint32 length   (bytes after this field)
//	int32  src      (sender rank)
//	int32  dst      (destination rank)
//	int32  tag
//	payload
//
// all little-endian. Control frames (join handshake, rank assignment,
// job boundaries) use reserved negative tags below the collective range.

const (
	frameHeader = 12      // src + dst + tag
	maxFrame    = 1 << 28 // 256 MiB payload guard against corrupt prefixes
)

// Control tags of the coordinator/worker protocol.
const (
	tagCtrlJoin   = -(3001 + iota) // worker -> hub: join handshake (payload: magic)
	tagCtrlStart                   // hub -> worker: job start (payload: rank, size)
	tagCtrlDone                    // worker -> hub: rank function returned (payload: status byte)
	tagCtrlEnd                     // hub -> worker: job closed, return to the pool
	tagCtrlBye                     // hub -> worker: shut down for good
	tagCtrlPing                    // hub -> worker: liveness probe
	tagCtrlPong                    // worker -> hub: liveness reply
	tagCtrlCancel                  // hub -> worker: stop the current job (payload: 0 soft / 1 hard)
)

// joinMagic identifies (and versions) the join handshake.
const joinMagic = "simevo-transport-v1"

type frame struct {
	src, dst, tag int
	data          []byte
}

// writeFrame serializes one frame to w. Callers serialize access per
// connection (see connWriter).
func writeFrame(w io.Writer, f frame) error {
	var hdr [4 + frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(frameHeader+len(f.data)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(int32(f.src)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(int32(f.dst)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(int32(f.tag)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.data) > 0 {
		if _, err := w.Write(f.data); err != nil {
			return err
		}
	}
	telemetry.TransportSentFrames.Inc()
	telemetry.TransportSentBytes.Add(uint64(len(hdr) + len(f.data)))
	return nil
}

// readFrame reads one frame from r.
func readFrame(r *bufio.Reader) (frame, error) {
	var pfx [4]byte
	if _, err := io.ReadFull(r, pfx[:]); err != nil {
		return frame{}, err
	}
	n := binary.LittleEndian.Uint32(pfx[:])
	if n < frameHeader || n > maxFrame+frameHeader {
		return frame{}, fmt.Errorf("transport: frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return frame{}, err
	}
	f := frame{
		src: int(int32(binary.LittleEndian.Uint32(buf[0:]))),
		dst: int(int32(binary.LittleEndian.Uint32(buf[4:]))),
		tag: int(int32(binary.LittleEndian.Uint32(buf[8:]))),
	}
	if len(buf) > frameHeader {
		f.data = buf[frameHeader:]
	}
	telemetry.TransportRecvFrames.Inc()
	telemetry.TransportRecvBytes.Add(uint64(len(pfx) + len(buf)))
	return f, nil
}

// connWriter serializes frame writes to one connection: the coordinator
// writes to a worker from the rank-0 strategy goroutine and from relay
// readers concurrently. It keeps per-connection traffic totals (frames
// and payload bytes) for the hub's worker detail report. With a timeout
// configured, every frame write carries a deadline so a peer that stopped
// reading cannot wedge the writer (and the goroutine holding its lock)
// forever.
type connWriter struct {
	mu      sync.Mutex
	w       io.Writer
	timeout time.Duration // per-frame write deadline; 0 disables

	msgs  atomic.Int64 // frames successfully written
	bytes atomic.Int64 // payload bytes successfully written
}

func (cw *connWriter) write(f frame) error {
	if err := cw.writeQuiet(f); err != nil {
		return err
	}
	cw.msgs.Add(1)
	cw.bytes.Add(int64(len(f.data)))
	return nil
}

// writeQuiet writes a frame without touching the per-connection traffic
// totals — heartbeat pings/pongs are out-of-band and must not skew the
// worker-detail accounting the totals feed.
func (cw *connWriter) writeQuiet(f frame) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.timeout > 0 {
		if c, ok := cw.w.(net.Conn); ok {
			c.SetWriteDeadline(time.Now().Add(cw.timeout))
		}
	}
	return writeFrame(cw.w, f)
}

// inbox is a rank's received-message queue: FIFO per (src, tag) match,
// blocking receive. Failures come in two scopes: fail poisons the whole
// inbox (the rank's own connection is gone), while failRank marks one peer
// rank dead — receives awaiting that rank abort with a *RankError, traffic
// from surviving ranks keeps flowing.
type inbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	msgs []frame
	err  error

	rankErr     map[int]error // per-source failures (coordinator inbox)
	rankPending []int         // failed ranks not yet surfaced to a wildcard recv
}

func newInbox() *inbox {
	ib := &inbox{}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

func (ib *inbox) push(f frame) {
	ib.mu.Lock()
	ib.msgs = append(ib.msgs, f)
	ib.mu.Unlock()
	ib.cond.Broadcast()
}

// fail poisons the inbox: pending and future receives panic with *Fatal.
func (ib *inbox) fail(err error) {
	ib.mu.Lock()
	if ib.err == nil {
		ib.err = err
	}
	ib.mu.Unlock()
	ib.cond.Broadcast()
}

// failRank marks one source rank dead. The first call per rank wins;
// queued messages from the rank still deliver (they arrived before the
// failure), then receives naming it — or wildcard receives, once each —
// report err.
func (ib *inbox) failRank(rank int, err error) {
	ib.mu.Lock()
	if ib.rankErr == nil {
		ib.rankErr = make(map[int]error)
	}
	if _, dup := ib.rankErr[rank]; !dup {
		ib.rankErr[rank] = err
		ib.rankPending = append(ib.rankPending, rank)
	}
	ib.mu.Unlock()
	ib.cond.Broadcast()
}

// matches mirrors the simulator's matching rule: wildcards match only
// non-internal (>= 0) tags.
func frameMatches(f *frame, src, tag int) bool {
	if src != mpi.AnySource && f.src != src {
		return false
	}
	if tag == mpi.AnyTag {
		return f.tag >= 0
	}
	return f.tag == tag
}

// recvErr blocks until a matching message arrives, in arrival order,
// returning an error when the inbox is poisoned or the awaited rank has
// failed. A wildcard (AnySource) receive surfaces each rank failure once,
// so a loop over AnySource observes every lost peer exactly one time.
func (ib *inbox) recvErr(src, tag int) ([]byte, mpi.Status, error) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for {
		for i := range ib.msgs {
			f := ib.msgs[i]
			if !frameMatches(&f, src, tag) {
				continue
			}
			ib.msgs = append(ib.msgs[:i], ib.msgs[i+1:]...)
			return f.data, mpi.Status{Source: f.src, Tag: f.tag}, nil
		}
		if ib.err != nil {
			return nil, mpi.Status{}, ib.err
		}
		if src != mpi.AnySource {
			if err, ok := ib.rankErr[src]; ok {
				return nil, mpi.Status{}, err
			}
		} else if len(ib.rankPending) > 0 {
			r := ib.rankPending[0]
			ib.rankPending = ib.rankPending[1:]
			return nil, mpi.Status{}, ib.rankErr[r]
		}
		ib.cond.Wait()
	}
}

// recv blocks until a matching message arrives; failures panic with *Fatal
// (the Transport contract — Run converts them to errors).
func (ib *inbox) recv(src, tag int) ([]byte, mpi.Status) {
	data, st, err := ib.recvErr(src, tag)
	if err != nil {
		panic(&Fatal{Err: err})
	}
	return data, st
}

// pollRecv is the non-blocking recv: it consumes and returns a matching
// message if one is queued and reports ok=false otherwise, never waiting.
// A poisoned inbox panics with *Fatal exactly like recv — a poll must not
// silently swallow a dead connection — but per-rank failures stay queued
// for the blocking receives that know how to degrade on them.
func (ib *inbox) pollRecv(src, tag int) ([]byte, mpi.Status, bool) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for i := range ib.msgs {
		f := ib.msgs[i]
		if !frameMatches(&f, src, tag) {
			continue
		}
		ib.msgs = append(ib.msgs[:i], ib.msgs[i+1:]...)
		return f.data, mpi.Status{Source: f.src, Tag: f.tag}, true
	}
	if ib.err != nil {
		panic(&Fatal{Err: ib.err})
	}
	return nil, mpi.Status{}, false
}
