package transport

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"
)

// Chaos-testing support: a frame-aware net.Conn wrapper that injects one
// fault at a deterministic point in a worker's outbound frame stream.
// Install it with Config.WrapConn on JoinConfig; the wrapped connection
// parses the length-prefixed frames the worker writes toward the hub and
// triggers the configured fault when the chosen frame index crosses.
//
// Heartbeat pongs are excluded from the frame count — their timing depends
// on the hub's ping clock, so counting them would make the trigger point
// nondeterministic. Everything else the worker writes counts, starting
// with the join handshake at index 0; on a worker that serves exactly one
// job, index 1 is therefore the first data frame of that job's protocol.

// ChaosAction selects what happens to the targeted frame.
type ChaosAction int

const (
	// ChaosDrop swallows the frame: the hub never sees it.
	ChaosDrop ChaosAction = iota
	// ChaosDelay stalls the frame by Fault.Delay, then forwards it.
	ChaosDelay
	// ChaosCorrupt scrambles the frame's payload bytes (framing stays
	// valid, so the hub routes the frame and the decode fails at the
	// receiving rank). Frames without a payload pass through unharmed.
	ChaosCorrupt
	// ChaosSever closes the connection before the frame is written — the
	// clean crash: both sides observe a closed socket.
	ChaosSever
	// ChaosHang blocks this and every later write forever (until the
	// connection is closed locally) — the hung peer: the socket stays
	// open, pong writes wedge behind the stuck frame, and only the hub's
	// heartbeat timeout can detect it.
	ChaosHang
)

func (a ChaosAction) String() string {
	switch a {
	case ChaosDrop:
		return "drop"
	case ChaosDelay:
		return "delay"
	case ChaosCorrupt:
		return "corrupt"
	case ChaosSever:
		return "sever"
	case ChaosHang:
		return "hang"
	}
	return fmt.Sprintf("ChaosAction(%d)", int(a))
}

// ChaosFault is one scheduled fault.
type ChaosFault struct {
	// AtFrame is the 0-based index, among counted outbound frames, at
	// which the fault fires (the join handshake is frame 0).
	AtFrame int
	Action  ChaosAction
	// Delay is the stall for ChaosDelay.
	Delay time.Duration
}

// Chaos is the fault-injecting connection. Construct with NewChaos and
// install via Config.WrapConn.
type Chaos struct {
	net.Conn

	mu     sync.Mutex
	faults []ChaosFault
	seed   uint64
	frames int    // counted outbound frames completed or in progress
	buf    []byte // accumulated outbound bytes of the incomplete frame
	hung   bool
	closed chan struct{}
	once   sync.Once
}

// NewChaos wraps conn with the given fault schedule. seed drives the
// corrupt action's scramble keystream, so corrupted payloads are
// reproducible.
func NewChaos(conn net.Conn, seed uint64, faults ...ChaosFault) *Chaos {
	return &Chaos{Conn: conn, faults: faults, seed: seed, closed: make(chan struct{})}
}

// Wrap returns the Config.WrapConn hook form of NewChaos, capturing the
// constructed Chaos through the pointer for test assertions.
func Wrap(out **Chaos, seed uint64, faults ...ChaosFault) func(net.Conn) net.Conn {
	return func(conn net.Conn) net.Conn {
		c := NewChaos(conn, seed, faults...)
		if out != nil {
			*out = c
		}
		return c
	}
}

// Write parses the outbound byte stream into frames and applies the fault
// schedule. The transport writes each frame under one connWriter lock, so
// frames arrive here contiguous and in order; partial frames are buffered
// until complete, then forwarded (or faulted) as a unit.
func (c *Chaos) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hung {
		c.mu.Unlock()
		<-c.closed
		c.mu.Lock()
		return 0, net.ErrClosed
	}
	c.buf = append(c.buf, p...)
	for {
		f, rest, complete := splitFrame(c.buf)
		if !complete {
			break
		}
		c.buf = rest
		if err := c.emitLocked(f); err != nil {
			return 0, err
		}
	}
	// Report the caller's bytes as written: buffered or forwarded, the
	// transport above must believe the write succeeded.
	return len(p), nil
}

// splitFrame cuts one complete length-prefixed frame off the front of buf.
func splitFrame(buf []byte) (f, rest []byte, complete bool) {
	if len(buf) < 4 {
		return nil, buf, false
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if len(buf) < 4+n {
		return nil, buf, false
	}
	return buf[:4+n], buf[4+n:], true
}

// emitLocked counts one complete frame and forwards it, applying at most
// one scheduled fault. Callers hold c.mu.
func (c *Chaos) emitLocked(f []byte) error {
	tag := int(int32(binary.LittleEndian.Uint32(f[12:])))
	if tag == tagCtrlPong {
		_, err := c.Conn.Write(f)
		return err
	}
	idx := c.frames
	c.frames++
	for _, fault := range c.faults {
		if fault.AtFrame != idx {
			continue
		}
		switch fault.Action {
		case ChaosDrop:
			return nil
		case ChaosDelay:
			time.Sleep(fault.Delay)
		case ChaosCorrupt:
			f = c.corrupt(f)
		case ChaosSever:
			c.closeOnce()
			c.Conn.Close()
			return net.ErrClosed
		case ChaosHang:
			c.hung = true
			c.mu.Unlock()
			<-c.closed
			c.mu.Lock()
			return net.ErrClosed
		}
		break
	}
	_, err := c.Conn.Write(f)
	return err
}

// corrupt XORs the frame payload with a seeded keystream, leaving the
// length prefix and header intact so the hub still routes the frame.
func (c *Chaos) corrupt(f []byte) []byte {
	out := append([]byte(nil), f...)
	x := c.seed | 1
	for i := 16; i < len(out); i++ {
		// xorshift64 keystream: deterministic per seed.
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] ^= byte(x) | 1 // never a zero mask: every byte really flips
	}
	return out
}

// Close releases hung writers along with the underlying connection.
func (c *Chaos) Close() error {
	c.closeOnce()
	return c.Conn.Close()
}

func (c *Chaos) closeOnce() {
	c.once.Do(func() { close(c.closed) })
}

// Frames reports how many counted (non-pong) frames have crossed so far.
func (c *Chaos) Frames() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frames
}
