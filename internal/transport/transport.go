// Package transport abstracts the message-passing substrate the parallel
// SimE strategies run on.
//
// The Transport interface captures exactly the communication semantics the
// strategies already use against the virtual-time simulator: eager tagged
// sends, blocking receives with source/tag wildcards, and the three
// collectives (broadcast, gather, barrier). *mpi.Comm — a rank inside the
// simulated cluster — satisfies it unchanged, so every strategy runs
// identically on simulated ranks (goroutines, virtual clocks) and on real
// ranks (OS processes connected over TCP, this package's tcp.go).
//
// The TCP implementation is a star: a coordinator (the Hub) listens for
// workers, parks joined connections in a pool, and forms a Group per run by
// assigning ranks over a join handshake. Rank 0 is the coordinator process
// itself; frames between two workers are relayed through the hub. The
// paper's strategies are master/slave, so virtually all traffic terminates
// at rank 0 anyway and the relay path is cold.
package transport

import (
	"fmt"
	"time"

	"simevo/internal/mpi"
)

// Transport is one rank's handle to a message-passing cluster. The
// simulator's *mpi.Comm and the TCP endpoints of this package implement it.
//
// Methods follow mpi.Comm's contract: Send is eager (buffered at the
// receiver) and Recv blocks until a message matching (src, tag) arrives,
// with mpi.AnySource / mpi.AnyTag as wildcards; internal collective traffic
// is never matched by AnyTag. A send to the caller's own rank is a local
// enqueue. Communication failures on real transports surface as *Fatal
// panics — run strategy code under Run to turn them into errors.
type Transport interface {
	// Rank returns this rank's id (0-based).
	Rank() int
	// Size returns the number of ranks.
	Size() int
	// Elapsed returns this rank's clock: virtual time on the simulator,
	// wall time since the run started on real transports.
	Elapsed() time.Duration
	// Send posts a message to dst.
	Send(dst, tag int, data []byte)
	// Recv blocks until a message matching (src, tag) is available.
	Recv(src, tag int) ([]byte, mpi.Status)
	// Bcast distributes data from root to every rank; all ranks must call it.
	Bcast(root int, data []byte) []byte
	// Gather collects one payload per rank at root; all ranks must call it.
	// Root returns the payloads indexed by rank; non-roots return nil.
	Gather(root int, data []byte) [][]byte
	// Barrier blocks until every rank reaches it.
	Barrier()
}

// The simulator rank and both TCP endpoints implement Transport.
var (
	_ Transport = (*mpi.Comm)(nil)
	_ Transport = (*Group)(nil)
	_ Transport = (*remote)(nil)
)

// Poller is the optional non-blocking receive capability asynchronous
// protocols (the async Type III exchange) build on: Poll consumes and
// returns a message matching (src, tag) if one is already available and
// reports ok=false without blocking otherwise. On the simulator a poll
// participates in the virtual-time schedule (deterministic under
// MeasureCompute=false); on TCP it inspects the live inbox, so what a
// poll sees depends on wall-clock arrival order. A strategy that needs a
// Poller should type-assert and fall back to its synchronous protocol
// when the transport lacks one.
type Poller interface {
	Poll(src, tag int) ([]byte, mpi.Status, bool)
}

// The simulator rank and both TCP endpoints support non-blocking polls.
var (
	_ Poller = (*mpi.Comm)(nil)
	_ Poller = (*Group)(nil)
	_ Poller = (*remote)(nil)
)

// Fatal wraps an unrecoverable transport failure (connection loss, protocol
// corruption). TCP endpoints panic with *Fatal from inside Send/Recv —
// blocking primitives have no error return, matching the simulator's
// interface — and Run converts the panic back into an error at the rank
// boundary.
type Fatal struct {
	Err error
}

func (f *Fatal) Error() string { return "transport: " + f.Err.Error() }
func (f *Fatal) Unwrap() error { return f.Err }

// RankError attributes a transport failure to one cluster rank: the worker
// connection holding that rank died, timed out its heartbeats, abandoned
// the strategy protocol, or was expelled with DropRank. It travels inside
// *Fatal on the panicking primitives and bare on the Try* variants; callers
// recover the rank with errors.As.
type RankError struct {
	Rank int
	Err  error
}

func (e *RankError) Error() string { return fmt.Sprintf("rank %d: %v", e.Rank, e.Err) }
func (e *RankError) Unwrap() error { return e.Err }

// CancelNotifier is implemented by worker-side transports that can receive
// an out-of-band cancel frame from the coordinator (Group.Cancel /
// Group.DropRank). The channel closes at the first cancel frame; rank
// functions select on it (or wire it to a context) to stop mid-budget.
type CancelNotifier interface {
	CancelRequested() <-chan struct{}
}

// fatalf panics with a formatted *Fatal.
func fatalf(format string, args ...any) {
	panic(&Fatal{Err: fmt.Errorf(format, args...)})
}

// Run executes one rank's function, converting *Fatal panics from transport
// primitives into a returned error. Other panics propagate.
func Run(t Transport, fn func(Transport) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			f, ok := r.(*Fatal)
			if !ok {
				panic(r)
			}
			err = f
		}
	}()
	return fn(t)
}

// Internal collective and control tags. Like the simulator's, they are
// negative so mpi.AnyTag (which matches only tags >= 0) never captures
// collective traffic.
const (
	tagBcast = -(2001 + iota)
	tagGather
	tagBarrierUp
	tagBarrierDown
)

// bcast implements the broadcast collective over point-to-point primitives.
func bcast(t Transport, root int, data []byte) []byte {
	if t.Rank() == root {
		for dst := 0; dst < t.Size(); dst++ {
			if dst != root {
				t.Send(dst, tagBcast, data)
			}
		}
		return data
	}
	payload, _ := t.Recv(root, tagBcast)
	return payload
}

// gather implements the gather collective: root receives in rank order.
func gather(t Transport, root int, data []byte) [][]byte {
	if t.Rank() != root {
		t.Send(root, tagGather, data)
		return nil
	}
	out := make([][]byte, t.Size())
	cp := make([]byte, len(data))
	copy(cp, data)
	out[root] = cp
	for r := 0; r < t.Size(); r++ {
		if r == root {
			continue
		}
		payload, _ := t.Recv(r, tagGather)
		out[r] = payload
	}
	return out
}

// barrier implements the barrier collective (linear fan-in/fan-out through
// rank 0), mirroring mpi.Comm.Barrier.
func barrier(t Transport) {
	if t.Rank() == 0 {
		for r := 1; r < t.Size(); r++ {
			t.Recv(r, tagBarrierUp)
		}
		for r := 1; r < t.Size(); r++ {
			t.Send(r, tagBarrierDown, nil)
		}
		return
	}
	t.Send(0, tagBarrierUp, nil)
	t.Recv(0, tagBarrierDown)
}
