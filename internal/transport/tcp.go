package transport

import (
	"bufio"
	"context"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"simevo/internal/mpi"
	"simevo/internal/telemetry"
)

// Hub is the cluster coordinator: it accepts worker connections, parks them
// in a pool after the join handshake, and forms rank Groups on demand. One
// hub serves any number of sequential or concurrent Groups (each worker
// belongs to at most one group at a time).
//
// When constructed with a non-empty join token, the handshake requires
// every worker to present the identical token; the comparison is
// constant-time and a mismatch closes the connection before the worker
// can park. An empty token keeps the hub open (workers must then present
// no token either) — fine on a trusted interconnect, but cross-machine
// deployments should always set one.
type Hub struct {
	ln    net.Listener
	token string
	cfg   Config

	mu     sync.Mutex
	cond   *sync.Cond
	parked []*wconn
	closed bool
}

// Config tunes the failure-detection timings of both TCP endpoints. The
// zero value selects the defaults; a negative duration disables that
// mechanism outright.
type Config struct {
	// JoinTimeout bounds the join handshake: the hub's read of the first
	// frame, and the worker's dial plus handshake write. Default 10s.
	JoinTimeout time.Duration
	// HeartbeatInterval is the hub's ping cadence per worker connection.
	// Workers answer each ping with a pong. Default 3s.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is the silence window after which a peer is declared
	// dead even though its connection is still open: the hub expects pongs
	// (or any traffic) within it, the worker expects pings. It must exceed
	// HeartbeatInterval with margin. Default 12s.
	HeartbeatTimeout time.Duration
	// WriteTimeout bounds every frame write, so a peer that stopped reading
	// cannot wedge the writer forever. Default 30s.
	WriteTimeout time.Duration
	// WrapConn, when non-nil, wraps the worker's dialed connection before
	// the handshake — the hook fault-injection tests use to interpose a
	// Chaos conn. Hub-side connections are never wrapped.
	WrapConn func(net.Conn) net.Conn
}

func (c Config) withDefaults() Config {
	if c.JoinTimeout == 0 {
		c.JoinTimeout = 10 * time.Second
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 3 * time.Second
	}
	if c.HeartbeatTimeout == 0 {
		c.HeartbeatTimeout = 12 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	return c
}

// dur maps a defaulted Config duration to its effective value: negative
// settings mean "disabled" and collapse to zero.
func dur(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}

// wconn is one worker connection, alive from join handshake to disconnect.
type wconn struct {
	conn     net.Conn
	r        *bufio.Reader
	w        connWriter
	group    atomic.Pointer[Group]
	rank     int32 // valid while in a group
	dead     atomic.Bool
	reported atomic.Bool // end-of-job notice already counted

	inMsgs   atomic.Int64 // frames read from this worker over its lifetime
	inBytes  atomic.Int64 // payload bytes read from this worker
	lastBeat atomic.Int64 // unix nanos of the last frame read (incl. pongs)
}

// Listen starts a hub on addr ("host:port"; ":0" picks a free port) with
// default failure-detection timings. token is the shared-secret join token
// workers must present ("" leaves the hub open).
func Listen(addr, token string) (*Hub, error) {
	return ListenConfig(addr, token, Config{})
}

// ListenConfig is Listen with explicit failure-detection timings.
func ListenConfig(addr, token string, cfg Config) (*Hub, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewHubConfig(ln, token, cfg), nil
}

// NewHub starts a hub on an existing listener, taking ownership of it.
func NewHub(ln net.Listener, token string) *Hub {
	return NewHubConfig(ln, token, Config{})
}

// NewHubConfig is NewHub with explicit failure-detection timings.
func NewHubConfig(ln net.Listener, token string, cfg Config) *Hub {
	h := &Hub{ln: ln, token: token, cfg: cfg.withDefaults()}
	h.cond = sync.NewCond(&h.mu)
	go h.acceptLoop()
	return h
}

// Addr returns the hub's listen address (useful with ":0").
func (h *Hub) Addr() net.Addr { return h.ln.Addr() }

// Workers returns the number of parked (joined, idle) workers.
func (h *Hub) Workers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.parked)
}

// WorkerDetail describes one parked worker's connection and lifetime
// traffic as seen from the hub: sent_* is coordinator-to-worker,
// recv_* worker-to-coordinator (payload bytes, framing excluded).
type WorkerDetail struct {
	Addr      string `json:"addr"`
	SentMsgs  int64  `json:"sent_msgs"`
	SentBytes int64  `json:"sent_bytes"`
	RecvMsgs  int64  `json:"recv_msgs"`
	RecvBytes int64  `json:"recv_bytes"`
	// LastBeatMS is the age, in milliseconds, of the last frame read from
	// the worker (heartbeat pongs included) — a live connection under the
	// default config keeps this below the heartbeat interval.
	LastBeatMS float64 `json:"last_beat_ms"`
}

// WorkerDetails reports every parked worker, in park (rank-assignment)
// order — the per-rank expansion behind the /healthz cluster_workers
// count. Workers currently lent to a group are not listed; they
// reappear, totals intact, when the group releases them.
func (h *Hub) WorkerDetails() []WorkerDetail {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]WorkerDetail, len(h.parked))
	for i, w := range h.parked {
		out[i] = WorkerDetail{
			Addr:       w.conn.RemoteAddr().String(),
			SentMsgs:   w.w.msgs.Load(),
			SentBytes:  w.w.bytes.Load(),
			RecvMsgs:   w.inMsgs.Load(),
			RecvBytes:  w.inBytes.Load(),
			LastBeatMS: float64(time.Now().UnixNano()-w.lastBeat.Load()) / float64(time.Millisecond),
		}
	}
	return out
}

// Close shuts the hub down: stops accepting, dismisses parked workers, and
// wakes Acquire waiters with an error. Groups already formed keep running.
func (h *Hub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	parked := h.parked
	h.parked = nil
	h.cond.Broadcast()
	h.mu.Unlock()
	for _, w := range parked {
		w.w.write(frame{tag: tagCtrlBye})
		w.conn.Close()
	}
	return h.ln.Close()
}

func (h *Hub) acceptLoop() {
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go h.admit(conn)
	}
}

// admit performs the join handshake — magic prefix plus a constant-time
// token comparison — and parks the worker. A wrong or missing token
// closes the connection without a response, so a probing client learns
// nothing about the configured secret (not even, thanks to the
// constant-time compare, how much of a guess matched).
func (h *Hub) admit(conn net.Conn) {
	w := &wconn{conn: conn, r: bufio.NewReader(conn)}
	w.w.w = conn
	w.w.timeout = dur(h.cfg.WriteTimeout)
	if to := dur(h.cfg.JoinTimeout); to > 0 {
		conn.SetReadDeadline(time.Now().Add(to))
	}
	f, err := readFrame(w.r)
	ok := err == nil && f.tag == tagCtrlJoin &&
		len(f.data) >= len(joinMagic) && string(f.data[:len(joinMagic)]) == joinMagic
	if ok {
		ok = subtle.ConstantTimeCompare(f.data[len(joinMagic):], []byte(h.token)) == 1
	}
	if !ok {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	w.lastBeat.Store(time.Now().UnixNano())
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		conn.Close()
		return
	}
	h.parked = append(h.parked, w)
	h.cond.Broadcast()
	h.mu.Unlock()
	if iv := dur(h.cfg.HeartbeatInterval); iv > 0 {
		go pingLoop(w, iv)
	}
	go h.serveConn(w)
}

// pingLoop probes one worker connection for liveness until the connection
// dies: the worker answers each ping with a pong, refreshing the hub's
// heartbeat read deadline in serveConn. A hung worker stops answering, the
// deadline fires, and the rank is declared dead even though the TCP
// connection never closed.
func pingLoop(w *wconn, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for range t.C {
		if w.dead.Load() {
			return
		}
		if w.w.writeQuiet(frame{tag: tagCtrlPing}) != nil {
			return // the reader notices the broken connection
		}
		telemetry.HeartbeatPingsSent.Inc()
	}
}

// serveConn reads one worker's frames for the connection's whole life,
// dispatching them into whatever group the worker currently belongs to.
// Frames between two workers are relayed here. Each read carries the
// heartbeat-timeout deadline: any frame (data or pong) refreshes it, so a
// worker that hangs — stops reading and writing without closing its socket
// — is detected within one window instead of wedging its group forever.
func (h *Hub) serveConn(w *wconn) {
	hbTimeout := dur(h.cfg.HeartbeatTimeout)
	if dur(h.cfg.HeartbeatInterval) == 0 {
		// Without pings a parked worker is legitimately silent; a read
		// deadline would misread that silence as death.
		hbTimeout = 0
	}
	for {
		if hbTimeout > 0 {
			w.conn.SetReadDeadline(time.Now().Add(hbTimeout))
		}
		f, err := readFrame(w.r)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				telemetry.HeartbeatTimeouts.Inc()
				err = fmt.Errorf("no heartbeat for %v: %w", hbTimeout, err)
			}
			w.dead.Store(true)
			h.unpark(w)
			if g := w.group.Load(); g != nil {
				g.workerLost(w, err)
			}
			w.conn.Close()
			return
		}
		w.lastBeat.Store(time.Now().UnixNano())
		if f.tag == tagCtrlPong {
			telemetry.HeartbeatPongsRecv.Inc()
			continue // out-of-band: no traffic accounting, no dispatch
		}
		w.inMsgs.Add(1)
		w.inBytes.Add(int64(len(f.data)))
		g := w.group.Load()
		switch {
		case g == nil:
			// A parked worker has nothing to say; drop stray frames.
		case f.tag == tagCtrlDone:
			// A failed rank function means the rank abandoned the strategy
			// protocol: mark the rank failed so a master blocked on its
			// traffic aborts (or, in degraded mode, drops it) instead of
			// deadlocking. The connection itself is healthy — the worker
			// re-parks and serves the next job.
			if len(f.data) > 0 && f.data[0] != 0 {
				g.noteFailure(int(w.rank), errors.New("rank reported a failed rank function"))
			}
			g.workerDone(w)
		// Counting precedes delivery so that anything observable through a
		// completed Recv downstream is already in the stats.
		case f.dst == 0:
			g.countFrame(int(w.rank), 0, len(f.data))
			g.in.push(f)
		case f.dst > 0 && f.dst < g.size:
			g.countFrame(int(w.rank), f.dst, len(f.data))
			g.relay(f)
		default:
			g.workerLost(w, fmt.Errorf("transport: rank %d sent frame to invalid rank %d", f.src, f.dst))
		}
	}
}

// unpark removes a worker from the parked pool if present.
func (h *Hub) unpark(w *wconn) {
	h.mu.Lock()
	for i, p := range h.parked {
		if p == w {
			h.parked = append(h.parked[:i], h.parked[i+1:]...)
			break
		}
	}
	h.mu.Unlock()
}

// Acquire blocks until `workers` parked workers are available (or ctx ends)
// and forms a Group of size workers+1 with the caller as rank 0. Ranks are
// assigned in park order and each worker receives a start notice carrying
// its rank and the cluster size.
func (h *Hub) Acquire(ctx context.Context, workers int) (*Group, error) {
	if workers < 1 {
		return nil, fmt.Errorf("transport: Acquire needs >= 1 worker, got %d", workers)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	stop := context.AfterFunc(ctx, func() { h.cond.Broadcast() })
	defer stop()

	h.mu.Lock()
	for len(h.parked) < workers && !h.closed && ctx.Err() == nil {
		h.cond.Wait()
	}
	if h.closed {
		h.mu.Unlock()
		return nil, errors.New("transport: hub is closed")
	}
	if err := ctx.Err(); err != nil {
		h.mu.Unlock()
		return nil, fmt.Errorf("transport: waiting for %d workers (%d joined): %w", workers, len(h.parked), err)
	}
	ws := h.parked[:workers:workers]
	h.parked = append([]*wconn(nil), h.parked[workers:]...)
	h.mu.Unlock()

	g := &Group{
		hub:    h,
		ws:     ws,
		size:   workers + 1,
		start:  time.Now(),
		in:     newInbox(),
		done:   make(chan *wconn, workers),
		stats:  make([]rankCounters, workers+1),
		tel:    make([]rankTelemetry, workers+1),
		failed: make(map[int]error),
	}
	for r := range g.tel {
		t := &g.tel[r]
		t.sentMsgs, t.sentBytes, t.recvMsgs, t.recvBytes = telemetry.RankTraffic(r)
	}
	for i, w := range ws {
		w.rank = int32(i + 1)
		w.reported.Store(false)
		w.group.Store(g)
	}
	// Publish the group before the start notices: a worker's first frame
	// can race the later start writes, and the relay path must be live.
	var payload [8]byte
	for i, w := range ws {
		binary.LittleEndian.PutUint32(payload[0:], uint32(i+1))
		binary.LittleEndian.PutUint32(payload[4:], uint32(g.size))
		if err := w.w.write(frame{dst: i + 1, tag: tagCtrlStart, data: payload[:]}); err != nil {
			g.abort()
			return nil, fmt.Errorf("transport: starting rank %d: %w", i+1, err)
		}
	}
	return g, nil
}

// Group is a formed cluster: rank 0 (the coordinator process) plus one
// connected worker per remaining rank. It implements Transport for rank 0.
type Group struct {
	hub   *Hub
	ws    []*wconn // index = rank-1
	size  int
	start time.Time
	in    *inbox
	done  chan *wconn
	stats []rankCounters  // per rank; see RankStats
	tel   []rankTelemetry // per rank: process-wide registry counters

	failedMu sync.Mutex
	failed   map[int]error // ranks lost this job, with their first cause

	closeOnce sync.Once
}

// rankTelemetry caches one rank's registry counters, resolved once at
// Acquire so countFrame pays no registry lookups. Unlike rankCounters
// (which reset per group), the registry series are process-lifetime
// cumulative across all groups using that rank index — Prometheus
// counter semantics.
type rankTelemetry struct {
	sentMsgs, sentBytes, recvMsgs, recvBytes *telemetry.Counter
}

// rankCounters accumulates one rank's message/byte traffic as observed at
// the coordinator (atomic: the strategy goroutine and the per-connection
// reader goroutines count concurrently).
type rankCounters struct {
	sentMsgs, sentBytes, recvMsgs, recvBytes atomic.Int64
}

// countFrame records one delivered frame from rank src to rank dst.
// Control frames (job lifecycle) are not counted; collective traffic is,
// matching the virtual cluster's accounting.
func (g *Group) countFrame(src, dst, n int) {
	g.stats[src].sentMsgs.Add(1)
	g.stats[src].sentBytes.Add(int64(n))
	g.stats[dst].recvMsgs.Add(1)
	g.stats[dst].recvBytes.Add(int64(n))
	g.tel[src].sentMsgs.Inc()
	g.tel[src].sentBytes.Add(uint64(n))
	g.tel[dst].recvMsgs.Inc()
	g.tel[dst].recvBytes.Add(uint64(n))
}

// RankStats reports per-rank traffic accounting — the real-transport
// equivalent of mpi.Cluster.Stats. Bytes and message counts cover every
// data and collective frame that crossed the coordinator (rank 0's own
// sends and receives included); a worker's local self-sends never reach
// the wire and are not observed. Clock is the group's wall-clock age for
// every rank; Compute stays zero (real ranks do not report compute time),
// so Comm carries the whole clock.
func (g *Group) RankStats() []mpi.RankStats {
	elapsed := g.Elapsed()
	out := make([]mpi.RankStats, g.size)
	for r := range out {
		c := &g.stats[r]
		out[r] = mpi.RankStats{
			Clock:     elapsed,
			Comm:      elapsed,
			MsgsSent:  int(c.sentMsgs.Load()),
			BytesSent: int(c.sentBytes.Load()),
			MsgsRecv:  int(c.recvMsgs.Load()),
			BytesRecv: int(c.recvBytes.Load()),
		}
	}
	return out
}

// Rank implements Transport (the coordinator is always rank 0).
func (g *Group) Rank() int { return 0 }

// Size implements Transport.
func (g *Group) Size() int { return g.size }

// Elapsed implements Transport: wall time since the group formed.
func (g *Group) Elapsed() time.Duration { return time.Since(g.start) }

// Send implements Transport.
func (g *Group) Send(dst, tag int, data []byte) {
	if dst < 0 || dst >= g.size {
		fatalf("send to invalid rank %d", dst)
	}
	if dst == 0 {
		cp := make([]byte, len(data))
		copy(cp, data)
		g.countFrame(0, 0, len(data))
		g.in.push(frame{src: 0, dst: 0, tag: tag, data: cp})
		return
	}
	w := g.ws[dst-1]
	g.countFrame(0, dst, len(data))
	if err := w.w.write(frame{src: 0, dst: dst, tag: tag, data: data}); err != nil {
		g.workerLost(w, err)
		panic(&Fatal{Err: &RankError{Rank: dst, Err: fmt.Errorf("send: %w", err)}})
	}
}

// TrySend posts a message to dst like Send, but reports a failed (or
// just-failing) destination as a *RankError instead of panicking — the
// primitive degraded masters build on. Sends to already-failed ranks are
// counted like ordinary sends and then skipped, so a fault-free run and a
// faulty one emit identical traffic statistics for the surviving ranks.
func (g *Group) TrySend(dst, tag int, data []byte) error {
	if dst < 0 || dst >= g.size {
		return fmt.Errorf("transport: send to invalid rank %d", dst)
	}
	if dst == 0 {
		g.Send(dst, tag, data) // local enqueue cannot fail
		return nil
	}
	g.failedMu.Lock()
	err := g.failed[dst]
	g.failedMu.Unlock()
	g.countFrame(0, dst, len(data))
	if err != nil {
		return err
	}
	w := g.ws[dst-1]
	if werr := w.w.write(frame{src: 0, dst: dst, tag: tag, data: data}); werr != nil {
		g.workerLost(w, werr)
		return &RankError{Rank: dst, Err: fmt.Errorf("send: %w", werr)}
	}
	return nil
}

// TryRecv blocks like Recv but returns an error instead of panicking when
// the group is poisoned or the awaited rank fails. A wildcard receive
// (mpi.AnySource) surfaces each failed rank once, as a *RankError.
func (g *Group) TryRecv(src, tag int) ([]byte, mpi.Status, error) {
	return g.in.recvErr(src, tag)
}

// BcastRoot performs rank 0's half of a broadcast to every live rank —
// the degraded master's replacement for Bcast. Failed ranks are skipped;
// a send that fails mid-broadcast records the rank (FailedRanks) and the
// broadcast continues. On a fault-free run the emitted frames are
// identical to Bcast's.
func (g *Group) BcastRoot(data []byte) {
	for dst := 1; dst < g.size; dst++ {
		_ = g.TrySend(dst, tagBcast, data)
	}
}

// GatherRoot performs rank 0's half of a gather over live ranks: entry r
// is nil when rank r had failed (before or during the wait); entry 0 is
// the root's own payload. On a fault-free run the traffic is identical to
// Gather's root half.
func (g *Group) GatherRoot(own []byte) [][]byte {
	out := make([][]byte, g.size)
	cp := make([]byte, len(own))
	copy(cp, own)
	out[0] = cp
	for r := 1; r < g.size; r++ {
		data, _, err := g.in.recvErr(r, tagGather)
		if err != nil {
			continue
		}
		out[r] = data
	}
	return out
}

// Cancel sends an out-of-band soft-cancel frame to every live worker: the
// remote rank's CancelRequested channel closes, and a cooperative rank
// function stops at its next iteration check. The job protocol is left
// intact — ranks still report done and re-park.
func (g *Group) Cancel() {
	for _, w := range g.ws {
		if w.dead.Load() {
			continue
		}
		_ = w.w.writeQuiet(frame{dst: int(w.rank), tag: tagCtrlCancel, data: []byte{0}})
	}
}

// DropRank expels a live rank from the current job: the master records it
// failed (its pending and future traffic is ignored) and the worker is
// told to abandon the job with a hard cancel — its rank function aborts,
// reports a failed status, and the worker survives to serve the next job.
// Degraded masters use it when a rank's frames arrive corrupt. Dropping
// rank 0, an out-of-range rank, or an already-failed rank is a no-op.
func (g *Group) DropRank(rank int, err error) {
	if rank <= 0 || rank >= g.size {
		return
	}
	g.noteFailure(rank, err)
	if w := g.ws[rank-1]; !w.dead.Load() {
		_ = w.w.writeQuiet(frame{dst: rank, tag: tagCtrlCancel, data: []byte{1}})
	}
}

// Recv implements Transport.
func (g *Group) Recv(src, tag int) ([]byte, mpi.Status) { return g.in.recv(src, tag) }

// Poll is the non-blocking Recv (see transport.Poller).
func (g *Group) Poll(src, tag int) ([]byte, mpi.Status, bool) { return g.in.pollRecv(src, tag) }

// Bcast implements Transport.
func (g *Group) Bcast(root int, data []byte) []byte { return bcast(g, root, data) }

// Gather implements Transport.
func (g *Group) Gather(root int, data []byte) [][]byte { return gather(g, root, data) }

// Barrier implements Transport.
func (g *Group) Barrier() { barrier(g) }

// relay forwards a worker-to-worker frame through the hub.
func (g *Group) relay(f frame) {
	w := g.ws[f.dst-1]
	if err := w.w.write(f); err != nil {
		g.workerLost(w, err)
	}
}

// Interrupt poisons rank 0's inbox: a master blocked in Recv aborts with a
// *Fatal carrying err. The workers and their connections are untouched —
// pair with Release (or Close) as usual. Interrupting a group whose run
// already finished is harmless. Callers use it to break a wedged run (a
// stalled worker, a cancelled job past its cooperative grace period).
func (g *Group) Interrupt(err error) {
	g.in.fail(fmt.Errorf("interrupted: %w", err))
}

// workerDone records a worker's end-of-job notice exactly once per job.
func (g *Group) workerDone(w *wconn) {
	if w.reported.CompareAndSwap(false, true) {
		g.done <- w // capacity len(g.ws); dedup keeps this non-blocking
	}
}

// workerLost marks a member rank dead after its connection failed: rank
// 0's receives awaiting that rank abort with a *Fatal-wrapped *RankError,
// while traffic from the surviving ranks keeps flowing (degraded masters
// rely on this to finish the run on the survivors).
func (g *Group) workerLost(w *wconn, err error) {
	w.dead.Store(true)
	g.noteFailure(int(w.rank), fmt.Errorf("connection: %w", err))
	g.workerDone(w) // unblock Release/Close waiting on the worker
}

// noteFailure records a rank failure exactly once and propagates it to the
// inbox so blocked receives naming the rank abort.
func (g *Group) noteFailure(rank int, err error) {
	re := &RankError{Rank: rank, Err: err}
	g.failedMu.Lock()
	_, dup := g.failed[rank]
	if !dup {
		g.failed[rank] = re
	}
	g.failedMu.Unlock()
	if !dup {
		telemetry.ClusterRankFailures.Inc()
	}
	g.in.failRank(rank, re)
}

// FailedRanks returns the ranks lost so far this job — connection
// failures, heartbeat timeouts, failed rank functions, DropRank — keyed to
// the first recorded cause (always a *RankError).
func (g *Group) FailedRanks() map[int]error {
	g.failedMu.Lock()
	defer g.failedMu.Unlock()
	out := make(map[int]error, len(g.failed))
	for r, err := range g.failed {
		out[r] = err
	}
	return out
}

// drain waits until every worker reported done (or died), bounded by the
// timeout, so job frames cannot leak into a worker's next assignment.
func (g *Group) drain(timeout time.Duration) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	seen := make(map[*wconn]bool)
	for len(seen) < len(g.ws) {
		select {
		case w := <-g.done:
			seen[w] = true
		case <-deadline.C:
			for _, w := range g.ws {
				if !seen[w] {
					g.workerLost(w, errors.New("transport: worker did not finish"))
					seen[w] = true
				}
			}
		}
	}
}

// Release dissolves the group and parks surviving workers back in the hub
// pool for the next job. It waits for every worker's end-of-job notice
// first; a worker that does not report within the grace period is dropped.
func (g *Group) Release() {
	g.closeOnce.Do(func() {
		g.drain(30 * time.Second)
		for _, w := range g.ws {
			w.group.Store(nil)
			if w.dead.Load() {
				w.conn.Close()
				continue
			}
			if w.w.write(frame{tag: tagCtrlEnd}) != nil {
				w.conn.Close()
				continue
			}
			g.hub.mu.Lock()
			if g.hub.closed {
				g.hub.mu.Unlock()
				w.conn.Close()
				continue
			}
			g.hub.parked = append(g.hub.parked, w)
			g.hub.cond.Broadcast()
			g.hub.mu.Unlock()
		}
	})
}

// Close dissolves the group and dismisses its workers (they are told to
// shut down and their connections are closed). Use Release to return the
// workers to the pool instead.
func (g *Group) Close() {
	g.closeOnce.Do(func() {
		g.drain(10 * time.Second)
		for _, w := range g.ws {
			w.group.Store(nil)
			w.w.write(frame{tag: tagCtrlBye})
			w.conn.Close()
		}
		// A Close while rank 0 is still blocked in Recv (hard abort) must
		// unblock it; after a completed run nobody reads the inbox and the
		// poison is inert.
		g.in.fail(errors.New("group closed"))
	})
}

// abort dissolves a group that never started (no drain: no worker will
// report done), dismissing its workers.
func (g *Group) abort() {
	g.closeOnce.Do(func() {
		for _, w := range g.ws {
			w.group.Store(nil)
			w.w.write(frame{tag: tagCtrlBye})
			w.conn.Close()
		}
		g.in.fail(errors.New("group aborted"))
	})
}

// Worker is the worker-process side of the TCP transport: one connection to
// the hub, serving rank assignments until dismissed.
type Worker struct {
	conn net.Conn
	r    *bufio.Reader
	w    connWriter
	cfg  Config
}

// Join dials the hub at addr and performs the join handshake with default
// timings, presenting the shared-secret token (which must equal the
// hub's; "" for an open hub). A rejected token surfaces as a closed
// connection on the first Serve read, not here — the hub does not answer
// bad handshakes.
func Join(ctx context.Context, addr, token string) (*Worker, error) {
	return JoinConfig(ctx, addr, token, Config{})
}

// JoinConfig is Join with explicit failure-detection timings (and the
// WrapConn fault-injection hook).
func JoinConfig(ctx context.Context, addr, token string, cfg Config) (*Worker, error) {
	cfg = cfg.withDefaults()
	d := net.Dialer{Timeout: dur(cfg.JoinTimeout)}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if cfg.WrapConn != nil {
		conn = cfg.WrapConn(conn)
	}
	w := &Worker{conn: conn, r: bufio.NewReader(conn), cfg: cfg}
	w.w.w = conn
	w.w.timeout = dur(cfg.WriteTimeout)
	if to := dur(cfg.JoinTimeout); to > 0 {
		conn.SetWriteDeadline(time.Now().Add(to))
	}
	err = w.w.write(frame{tag: tagCtrlJoin, data: []byte(joinMagic + token)})
	conn.SetWriteDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: join handshake: %w", err)
	}
	return w, nil
}

// remote is a worker's per-job Transport endpoint.
type remote struct {
	w     *Worker
	rank  int
	size  int
	start time.Time
	in    *inbox

	cancelOnce sync.Once
	cancelCh   chan struct{}
}

// CancelRequested implements CancelNotifier: the channel closes when the
// coordinator cancels the job out-of-band (Group.Cancel or DropRank).
func (r *remote) CancelRequested() <-chan struct{} { return r.cancelCh }

// cancelJob delivers a coordinator cancel frame. A soft cancel only closes
// the notification channel (cooperative rank functions stop at their next
// check); a hard cancel also poisons the inbox so a rank wedged mid-
// protocol aborts, reports failure, and the worker survives to re-park.
func (r *remote) cancelJob(hard bool) {
	r.cancelOnce.Do(func() { close(r.cancelCh) })
	if hard {
		r.in.fail(errors.New("job canceled by coordinator"))
	}
}

func (r *remote) Rank() int              { return r.rank }
func (r *remote) Size() int              { return r.size }
func (r *remote) Elapsed() time.Duration { return time.Since(r.start) }

func (r *remote) Send(dst, tag int, data []byte) {
	if dst < 0 || dst >= r.size {
		fatalf("send to invalid rank %d", dst)
	}
	if dst == r.rank {
		cp := make([]byte, len(data))
		copy(cp, data)
		r.in.push(frame{src: r.rank, dst: dst, tag: tag, data: cp})
		return
	}
	if err := r.w.w.write(frame{src: r.rank, dst: dst, tag: tag, data: data}); err != nil {
		r.in.fail(err)
		fatalf("send to rank %d: %v", dst, err)
	}
}

func (r *remote) Recv(src, tag int) ([]byte, mpi.Status) { return r.in.recv(src, tag) }

// Poll is the non-blocking Recv (see transport.Poller).
func (r *remote) Poll(src, tag int) ([]byte, mpi.Status, bool) { return r.in.pollRecv(src, tag) }
func (r *remote) Bcast(root int, data []byte) []byte     { return bcast(r, root, data) }
func (r *remote) Gather(root int, data []byte) [][]byte  { return gather(r, root, data) }
func (r *remote) Barrier()                               { barrier(r) }

// Serve runs the worker loop: wait for a rank assignment, execute fn as
// that rank, report completion, and return to waiting — until the hub says
// goodbye (returns nil), the connection fails, or ctx is cancelled (both
// return an error). Rank function errors are reported to the hub and end
// that job only, not the loop: a registered worker survives failed jobs.
func (w *Worker) Serve(ctx context.Context, fn func(Transport) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	stop := context.AfterFunc(ctx, func() { w.conn.Close() })
	defer stop()
	defer w.conn.Close()

	// The reader classifies frames as they arrive. It installs the job
	// inbox itself when a start notice comes in — the master's first data
	// frames follow the start notice immediately, so deferring inbox
	// installation to the serve loop below would drop them.
	type ctrlMsg struct {
		tag int
		job *remote // set for start notices
		err error   // set when the connection failed
	}
	ctrl := make(chan ctrlMsg, 16)
	var cur atomic.Pointer[remote]
	go func() {
		// The heartbeat read deadline arms only after the first ping: a hub
		// that does not ping (heartbeats disabled) keeps a worker that would
		// otherwise misread the idle silence as a dead coordinator.
		hbTimeout := dur(w.cfg.HeartbeatTimeout)
		armed := false
		for {
			if armed && hbTimeout > 0 {
				w.conn.SetReadDeadline(time.Now().Add(hbTimeout))
			}
			f, err := readFrame(w.r)
			if err != nil {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					telemetry.HeartbeatTimeouts.Inc()
					err = fmt.Errorf("no heartbeat for %v: %w", hbTimeout, err)
				}
				if r := cur.Load(); r != nil {
					r.in.fail(err)
				}
				ctrl <- ctrlMsg{err: err}
				return
			}
			switch f.tag {
			case tagCtrlPing:
				telemetry.HeartbeatPingsRecv.Inc()
				armed = true
				if w.w.writeQuiet(frame{tag: tagCtrlPong}) == nil {
					telemetry.HeartbeatPongsSent.Inc()
				}
				// A failed pong write means the connection is going down;
				// the next read surfaces it.
			case tagCtrlCancel:
				if r := cur.Load(); r != nil {
					r.cancelJob(len(f.data) > 0 && f.data[0] != 0)
				}
			case tagCtrlStart:
				if len(f.data) < 8 {
					ctrl <- ctrlMsg{err: errors.New("malformed start notice")}
					return
				}
				rank := int(binary.LittleEndian.Uint32(f.data[0:]))
				size := int(binary.LittleEndian.Uint32(f.data[4:]))
				if rank < 1 || size <= rank {
					ctrl <- ctrlMsg{err: fmt.Errorf("invalid rank assignment %d/%d", rank, size)}
					return
				}
				r := &remote{w: w, rank: rank, size: size, start: time.Now(),
					in: newInbox(), cancelCh: make(chan struct{})}
				cur.Store(r)
				ctrl <- ctrlMsg{tag: tagCtrlStart, job: r}
			case tagCtrlEnd, tagCtrlBye:
				ctrl <- ctrlMsg{tag: f.tag}
			default:
				if r := cur.Load(); r != nil {
					r.in.push(f)
				}
				// Data frames outside a job are stale remnants; drop them.
			}
		}
	}()

	for m := range ctrl {
		switch {
		case m.err != nil:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("transport: hub connection lost: %w", m.err)
		case m.tag == tagCtrlBye:
			return nil
		case m.tag == tagCtrlEnd:
			// Job already wound down on our side.
		case m.tag == tagCtrlStart:
			status := byte(0)
			if err := Run(m.job, fn); err != nil {
				status = 1
			}
			// Detach the finished job's inbox so late frames are dropped
			// (and the inbox freed) instead of accumulating unread.
			cur.Store(nil)
			if err := w.w.write(frame{src: m.job.rank, tag: tagCtrlDone, data: []byte{status}}); err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return fmt.Errorf("transport: hub connection lost: %w", err)
			}
		}
	}
	return nil
}

// Close tears the worker's hub connection down; a blocked Serve returns.
func (w *Worker) Close() error { return w.conn.Close() }
