package transport

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"simevo/internal/mpi"
)

func TestBackoff(t *testing.T) {
	base, max := 100*time.Millisecond, time.Second
	for _, tc := range []struct {
		attempt int
		want    time.Duration
	}{
		{1, 100 * time.Millisecond},
		{2, 200 * time.Millisecond},
		{3, 400 * time.Millisecond},
		{4, 800 * time.Millisecond},
		{5, time.Second}, // capped
		{50, time.Second},
		{0, 100 * time.Millisecond}, // clamped to first attempt
	} {
		if got := Backoff(tc.attempt, base, max, nil); got != tc.want {
			t.Errorf("Backoff(%d) = %v, want %v", tc.attempt, got, tc.want)
		}
	}
	if got := Backoff(3, 0, max, nil); got != 0 {
		t.Errorf("zero base: got %v, want 0", got)
	}
	// No cap: keeps doubling.
	if got := Backoff(6, base, 0, nil); got != 3200*time.Millisecond {
		t.Errorf("uncapped Backoff(6) = %v", got)
	}
	// Jitter scales into [0.5, 1.5).
	if got := Backoff(1, base, max, func() float64 { return 0 }); got != 50*time.Millisecond {
		t.Errorf("jitter 0: got %v, want 50ms", got)
	}
	if got := Backoff(1, base, max, func() float64 { return 0.5 }); got != 100*time.Millisecond {
		t.Errorf("jitter 0.5: got %v, want 100ms", got)
	}
}

// chaosPipe wires a Chaos wrapper to one end of an in-memory pipe and
// drains frames from the other end into a channel.
func chaosPipe(t *testing.T, seed uint64, faults ...ChaosFault) (*Chaos, <-chan frame) {
	t.Helper()
	client, server := net.Pipe()
	t.Cleanup(func() { client.Close(); server.Close() })
	ch := NewChaos(client, seed, faults...)
	frames := make(chan frame, 16)
	go func() {
		r := bufio.NewReader(server)
		for {
			f, err := readFrame(r)
			if err != nil {
				close(frames)
				return
			}
			frames <- f
		}
	}()
	return ch, frames
}

func recvFrame(t *testing.T, frames <-chan frame) frame {
	t.Helper()
	select {
	case f, ok := <-frames:
		if !ok {
			t.Fatal("pipe closed before the expected frame arrived")
		}
		return f
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a frame")
	}
	return frame{}
}

// TestChaosCountsAndCorrupts pins the deterministic frame accounting:
// pongs pass through uncounted, the fault fires at the chosen index, and
// corruption scrambles the payload while leaving the header routable.
func TestChaosCountsAndCorrupts(t *testing.T) {
	ch, frames := chaosPipe(t, 7, ChaosFault{AtFrame: 1, Action: ChaosCorrupt})
	cw := &connWriter{w: ch}

	payload := []byte("healthy payload")
	if err := cw.write(frame{src: 1, dst: 0, tag: 5, data: payload}); err != nil {
		t.Fatal(err)
	}
	f := recvFrame(t, frames)
	if !bytes.Equal(f.data, payload) || f.tag != 5 {
		t.Fatalf("frame 0 altered: %+v", f)
	}

	// A pong between the two data frames must not consume frame index 1.
	if err := cw.writeQuiet(frame{tag: tagCtrlPong}); err != nil {
		t.Fatal(err)
	}
	if f := recvFrame(t, frames); f.tag != tagCtrlPong {
		t.Fatalf("expected pong, got %+v", f)
	}

	if err := cw.write(frame{src: 1, dst: 0, tag: 6, data: payload}); err != nil {
		t.Fatal(err)
	}
	f = recvFrame(t, frames)
	if f.src != 1 || f.dst != 0 || f.tag != 6 {
		t.Fatalf("corrupted frame header changed: %+v", f)
	}
	if bytes.Equal(f.data, payload) {
		t.Fatal("frame 1 payload not corrupted")
	}
	for i := range f.data {
		if f.data[i] == payload[i] {
			t.Fatalf("payload byte %d survived the keystream", i)
		}
	}
	if ch.Frames() != 2 {
		t.Fatalf("counted %d frames, want 2 (pong excluded)", ch.Frames())
	}
}

// TestChaosDropAndSever pins the two loss actions: a dropped frame never
// reaches the peer but later frames do; a sever closes the connection.
func TestChaosDropAndSever(t *testing.T) {
	ch, frames := chaosPipe(t, 1,
		ChaosFault{AtFrame: 1, Action: ChaosDrop},
		ChaosFault{AtFrame: 3, Action: ChaosSever})
	cw := &connWriter{w: ch}

	for i := 0; i < 3; i++ {
		if err := cw.write(frame{tag: 10 + i, data: []byte{byte(i)}}); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if f := recvFrame(t, frames); f.tag != 10 {
		t.Fatalf("first delivered frame tag %d, want 10", f.tag)
	}
	if f := recvFrame(t, frames); f.tag != 12 {
		t.Fatalf("frame after drop tag %d, want 12 (11 dropped)", f.tag)
	}
	if err := cw.write(frame{tag: 13}); err == nil {
		t.Fatal("write after sever succeeded")
	}
	if _, ok := <-frames; ok {
		t.Fatal("peer still received frames after sever")
	}
}

// TestHeartbeatDropsHungWorker is the hung-not-closed detection check: a
// worker whose writes wedge (socket open, nothing flowing, pongs stuck
// behind the jam) must be expelled by the hub's heartbeat timeout, and a
// coordinator waiting on its traffic must get the rank failure instead of
// blocking forever.
func TestHeartbeatDropsHungWorker(t *testing.T) {
	h, err := ListenConfig("127.0.0.1:0", "", Config{
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	var ch *Chaos
	w, err := JoinConfig(context.Background(), h.Addr().String(), "", Config{
		WrapConn: Wrap(&ch, 1, ChaosFault{AtFrame: 1, Action: ChaosHang}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close() // releases the wedged writer at the end of the test
	served := make(chan error, 1)
	go func() {
		served <- w.Serve(context.Background(), func(tr Transport) error {
			tr.Send(0, 9, []byte("this frame hangs")) // frame 1: wedges here
			return nil
		})
	}()

	g, err := h.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	_, _, err = g.TryRecv(1, 9)
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 1 {
		t.Fatalf("TryRecv after hang: err = %v, want *RankError{Rank: 1}", err)
	}
	if g.FailedRanks()[1] == nil {
		t.Fatal("hung rank missing from FailedRanks")
	}
	ch.Close()
	<-served // worker's Serve ends once the chaos conn releases its writer
}

// TestGroupCancelReachesWorker delivers the out-of-band soft-cancel frame:
// the worker's CancelRequested channel closes mid-job while the protocol
// stays intact (the rank still reports and re-parks).
func TestGroupCancelReachesWorker(t *testing.T) {
	h := mustHub(t)
	wait := startWorkers(t, h, 1, func(tr Transport) error {
		cn, ok := tr.(CancelNotifier)
		if !ok {
			return errors.New("remote transport lacks CancelRequested")
		}
		select {
		case <-cn.CancelRequested():
		case <-time.After(10 * time.Second):
			return errors.New("cancel frame never arrived")
		}
		tr.Send(0, 4, []byte("stopped"))
		return nil
	})
	g, err := h.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	g.Cancel()
	data, _, err := g.TryRecv(1, 4)
	if err != nil || string(data) != "stopped" {
		t.Fatalf("after cancel: data=%q err=%v", data, err)
	}
	g.Release()
	h.Close()
	for _, err := range wait() {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestTrySendTryRecvFailedRank pins the degraded-mode primitives: a rank
// whose function fails surfaces as a typed *RankError on TryRecv, and
// TrySend to it reports the failure instead of panicking.
func TestTrySendTryRecvFailedRank(t *testing.T) {
	h := mustHub(t)
	wait := startWorkers(t, h, 2, func(tr Transport) error {
		if tr.Rank() == 1 {
			return errors.New("rank 1 gives up before sending")
		}
		tr.Send(0, 3, []byte("rank 2 alive"))
		tr.Bcast(0, nil) // hold until the master finishes its checks
		return nil
	})
	g, err := h.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = g.TryRecv(1, 3)
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 1 {
		t.Fatalf("TryRecv(1) = %v, want *RankError{Rank: 1}", err)
	}
	if err := g.TrySend(1, 3, []byte("x")); !errors.As(err, &re) {
		t.Fatalf("TrySend to failed rank = %v, want *RankError", err)
	}
	// The survivor's traffic still flows, by name and by wildcard.
	data, st, err := g.TryRecv(2, 3)
	if err != nil || string(data) != "rank 2 alive" || st.Source != 2 {
		t.Fatalf("survivor TryRecv: %q %+v %v", data, st, err)
	}
	g.BcastRoot([]byte("done")) // skips rank 1, releases rank 2
	g.Release()
	h.Close()
	// A failing rank function is reported to the hub in the done status and
	// the worker re-parks; Serve itself returns nil once dismissed.
	for i, err := range wait() {
		if err != nil {
			t.Fatalf("worker %d Serve: %v", i, err)
		}
	}
}

// TestWildcardTryRecvSurfacesEachFailureOnce mirrors the store pattern:
// an AnySource loop sees one *RankError per lost rank, then keeps
// serving the survivors.
func TestWildcardTryRecvSurfacesEachFailureOnce(t *testing.T) {
	h := mustHub(t)
	wait := startWorkers(t, h, 2, func(tr Transport) error {
		if tr.Rank() == 1 {
			return fmt.Errorf("rank %d gives up", tr.Rank())
		}
		tr.Send(0, 8, []byte{2})
		tr.Bcast(0, nil)
		return nil
	})
	g, err := h.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	gotErr, gotData := 0, 0
	for i := 0; i < 2; i++ {
		data, _, err := g.TryRecv(mpi.AnySource, mpi.AnyTag)
		if err != nil {
			var re *RankError
			if !errors.As(err, &re) || re.Rank != 1 {
				t.Fatalf("wildcard error %v, want rank 1 RankError", err)
			}
			gotErr++
			continue
		}
		if data[0] != 2 {
			t.Fatalf("wildcard data from unexpected rank: %v", data)
		}
		gotData++
	}
	if gotErr != 1 || gotData != 1 {
		t.Fatalf("wildcard loop saw %d errors / %d messages, want 1 / 1", gotErr, gotData)
	}
	g.BcastRoot(nil)
	g.Release()
	h.Close()
	wait()
}

// TestWorkerDetailLastBeat asserts the /healthz liveness age: a parked
// worker under active heartbeats reports a recent last-beat timestamp.
func TestWorkerDetailLastBeat(t *testing.T) {
	h, err := ListenConfig("127.0.0.1:0", "", Config{
		HeartbeatInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	w, err := Join(context.Background(), h.Addr().String(), "")
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve(context.Background(), func(Transport) error { return nil })
	deadline := time.Now().Add(5 * time.Second)
	for h.Workers() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never parked")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond) // let a few ping/pong rounds happen
	details := h.WorkerDetails()
	if len(details) != 1 {
		t.Fatalf("WorkerDetails len %d, want 1", len(details))
	}
	if age := details[0].LastBeatMS; age < 0 || age > 5000 {
		t.Fatalf("last_beat_ms = %v, want a recent beat", age)
	}
}
