package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"simevo/internal/mpi"
)

// startWorkers joins n workers to the hub, each serving fn in a goroutine.
// The returned wait function blocks until every Serve loop has exited and
// reports their errors.
func startWorkers(t *testing.T, h *Hub, n int, fn func(Transport) error) func() []error {
	t.Helper()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w, err := Join(context.Background(), h.Addr().String(), "")
		if err != nil {
			t.Fatalf("worker %d join: %v", i, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = w.Serve(context.Background(), fn)
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.Workers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers joined", h.Workers(), n)
		}
		time.Sleep(time.Millisecond)
	}
	return func() []error {
		wg.Wait()
		return errs
	}
}

func mustHub(t *testing.T) *Hub {
	t.Helper()
	h, err := Listen("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	return h
}

// TestTCPCollectives runs every Transport primitive over a hub with two
// workers: broadcast out, per-rank work, gather back, barrier, and the
// point-to-point paths including self-send and worker-to-worker relay.
func TestTCPCollectives(t *testing.T) {
	h := mustHub(t)
	wait := startWorkers(t, h, 2, func(tr Transport) error {
		data := tr.Bcast(0, nil)
		reply := fmt.Sprintf("%s-from-%d/%d", data, tr.Rank(), tr.Size())
		tr.Gather(0, []byte(reply))

		// Self-send is a local enqueue.
		tr.Send(tr.Rank(), 5, []byte{byte(tr.Rank())})
		pay, st := tr.Recv(tr.Rank(), 5)
		if st.Source != tr.Rank() || pay[0] != byte(tr.Rank()) {
			return fmt.Errorf("self-send got %v %+v", pay, st)
		}

		// Worker-to-worker frames relay through the hub.
		peer := 1
		if tr.Rank() == 1 {
			peer = 2
		}
		tr.Send(peer, 7, []byte{byte(tr.Rank())})
		pay, st = tr.Recv(peer, 7)
		if st.Source != peer || pay[0] != byte(peer) {
			return fmt.Errorf("relay got %v %+v", pay, st)
		}
		tr.Barrier()
		return nil
	})

	g, err := h.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	err = Run(g, func(tr Transport) error {
		tr.Bcast(0, []byte("ping"))
		parts := tr.Gather(0, []byte("root"))
		if string(parts[0]) != "root" {
			return fmt.Errorf("gather[0] = %q", parts[0])
		}
		for r := 1; r < tr.Size(); r++ {
			want := fmt.Sprintf("ping-from-%d/%d", r, tr.Size())
			if string(parts[r]) != want {
				return fmt.Errorf("gather[%d] = %q, want %q", r, parts[r], want)
			}
		}
		tr.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	for i, err := range wait() {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
}

// TestTCPWildcardsSkipInternalTraffic asserts AnySource/AnyTag match like
// the simulator: wildcards never capture collective frames.
func TestTCPWildcardsSkipInternalTraffic(t *testing.T) {
	h := mustHub(t)
	wait := startWorkers(t, h, 1, func(tr Transport) error {
		tr.Send(0, 3, []byte("payload"))
		tr.Bcast(0, nil) // stop sync
		return nil
	})
	g, err := h.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	err = Run(g, func(tr Transport) error {
		data, st := tr.Recv(mpi.AnySource, mpi.AnyTag)
		if string(data) != "payload" || st.Source != 1 || st.Tag != 3 {
			return fmt.Errorf("wildcard recv got %q %+v", data, st)
		}
		tr.Bcast(0, []byte("done"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	for _, err := range wait() {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestHubReusesReleasedWorkers runs two sequential jobs over one pool: a
// released worker must serve the next Acquire on the same connection.
func TestHubReusesReleasedWorkers(t *testing.T) {
	h := mustHub(t)
	jobs := 0
	var mu sync.Mutex
	wait := startWorkers(t, h, 2, func(tr Transport) error {
		mu.Lock()
		jobs++
		mu.Unlock()
		tr.Gather(0, []byte{byte(tr.Rank())})
		return nil
	})
	for round := 0; round < 2; round++ {
		g, err := h.Acquire(context.Background(), 2)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		err = Run(g, func(tr Transport) error {
			tr.Gather(0, nil)
			return nil
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		g.Release()
		deadline := time.Now().Add(5 * time.Second)
		for h.Workers() < 2 {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: workers not re-parked", round)
			}
			time.Sleep(time.Millisecond)
		}
	}
	h.Close()
	for i, err := range wait() {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if jobs != 4 {
		t.Fatalf("rank executions = %d, want 4", jobs)
	}
}

// TestWorkerLossPoisonsMaster asserts a dying worker aborts the master's
// blocked Recv with an error instead of hanging.
func TestWorkerLossPoisonsMaster(t *testing.T) {
	h := mustHub(t)
	wait := startWorkers(t, h, 1, func(tr Transport) error {
		return errors.New("worker gives up") // returns without sending
	})
	g, err := h.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- Run(g, func(tr Transport) error {
			_, _ = tr.Recv(1, 1) // never sent
			return nil
		})
	}()
	// The worker reports a failed job; the master is still blocked. Closing
	// the group tears the connection down, which must poison the Recv.
	go func() {
		time.Sleep(50 * time.Millisecond)
		g.Close()
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("master Recv returned without error after worker loss")
		}
		var f *Fatal
		if !errors.As(err, &f) {
			t.Fatalf("master error %v is not a transport.Fatal", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("master Recv hung after worker loss")
	}
	h.Close()
	wait()
}

// TestAcquireHonorsContext asserts Acquire gives up when the context ends
// before enough workers join.
func TestAcquireHonorsContext(t *testing.T) {
	h := mustHub(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := h.Acquire(ctx, 2); err == nil {
		t.Fatal("Acquire succeeded with no workers")
	}
}

// TestFailedRankPoisonsMaster asserts a worker whose rank function errors
// (healthy connection, abandoned protocol) unblocks a master waiting on
// that rank's traffic instead of deadlocking it — and that the worker
// survives to serve the next job.
func TestFailedRankPoisonsMaster(t *testing.T) {
	h := mustHub(t)
	first := true
	wait := startWorkers(t, h, 1, func(tr Transport) error {
		if first {
			first = false
			return errors.New("rank gives up before sending")
		}
		tr.Gather(0, []byte("second job ok"))
		return nil
	})

	g, err := h.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- Run(g, func(tr Transport) error {
			_, _ = tr.Recv(1, 1) // the failed rank never sends this
			return nil
		})
	}()
	select {
	case err := <-done:
		var f *Fatal
		if !errors.As(err, &f) {
			t.Fatalf("master got %v, want transport.Fatal from the failed rank", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("master Recv deadlocked on a failed rank")
	}
	g.Release()

	// The worker's connection is healthy: it must serve the next job.
	g2, err := h.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	err = Run(g2, func(tr Transport) error {
		parts := tr.Gather(0, nil)
		if string(parts[1]) != "second job ok" {
			return fmt.Errorf("second job gathered %q", parts[1])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	g2.Close()
	h.Close()
	for _, err := range wait() {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestInterruptUnblocksMaster asserts Group.Interrupt aborts a blocked
// receive — the hook cancelled jobs use to break a wedged run.
func TestInterruptUnblocksMaster(t *testing.T) {
	h := mustHub(t)
	wait := startWorkers(t, h, 1, func(tr Transport) error {
		tr.Bcast(0, nil) // block until the master is done
		return nil
	})
	g, err := h.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- Run(g, func(tr Transport) error {
			_, _ = tr.Recv(1, 1)
			return nil
		})
	}()
	time.Sleep(20 * time.Millisecond)
	g.Interrupt(context.Canceled)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("interrupted Recv returned without error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Interrupt did not unblock the master")
	}
	// Unblock and dismiss the worker.
	g.Bcast(0, []byte("done"))
	g.Close()
	h.Close()
	wait()
}

// TestGroupRankStats pins the coordinator-side traffic accounting: every
// data and collective frame is charged to its source and destination rank,
// control frames are not counted, and worker-to-worker relays show up on
// both endpoints.
func TestGroupRankStats(t *testing.T) {
	h := mustHub(t)
	wait := startWorkers(t, h, 2, func(tr Transport) error {
		data := tr.Bcast(0, nil) // 8 bytes from root
		if len(data) != 8 {
			return fmt.Errorf("rank %d: bcast payload %d bytes", tr.Rank(), len(data))
		}
		if tr.Rank() == 1 {
			tr.Send(2, 7, make([]byte, 3)) // relay through the hub
		}
		if tr.Rank() == 2 {
			tr.Recv(1, 7)
		}
		tr.Send(0, 5, make([]byte, 16))
		return nil
	})

	g, err := h.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	g.Bcast(0, make([]byte, 8))
	g.Recv(1, 5)
	g.Recv(2, 5)

	st := g.RankStats()
	if len(st) != 3 {
		t.Fatalf("RankStats returned %d ranks, want 3", len(st))
	}
	// Root broadcast: 2 sends of 8 bytes from rank 0.
	if st[0].MsgsSent != 2 || st[0].BytesSent != 16 {
		t.Fatalf("rank 0 sent %d msgs / %d bytes, want 2 / 16", st[0].MsgsSent, st[0].BytesSent)
	}
	// Rank 0 received one 16-byte payload from each worker.
	if st[0].MsgsRecv != 2 || st[0].BytesRecv != 32 {
		t.Fatalf("rank 0 recv %d msgs / %d bytes, want 2 / 32", st[0].MsgsRecv, st[0].BytesRecv)
	}
	// Rank 1: bcast in (8), relay out (3) + gather-style send (16).
	if st[1].MsgsSent != 2 || st[1].BytesSent != 19 {
		t.Fatalf("rank 1 sent %d msgs / %d bytes, want 2 / 19", st[1].MsgsSent, st[1].BytesSent)
	}
	if st[1].MsgsRecv != 1 || st[1].BytesRecv != 8 {
		t.Fatalf("rank 1 recv %d msgs / %d bytes, want 1 / 8", st[1].MsgsRecv, st[1].BytesRecv)
	}
	// Rank 2: bcast in (8) + relay in (3); one 16-byte send.
	if st[2].MsgsRecv != 2 || st[2].BytesRecv != 11 {
		t.Fatalf("rank 2 recv %d msgs / %d bytes, want 2 / 11", st[2].MsgsRecv, st[2].BytesRecv)
	}
	if st[2].MsgsSent != 1 || st[2].BytesSent != 16 {
		t.Fatalf("rank 2 sent %d msgs / %d bytes, want 1 / 16", st[2].MsgsSent, st[2].BytesSent)
	}
	if st[1].Clock <= 0 || st[1].Comm != st[1].Clock {
		t.Fatalf("rank 1 clock accounting inconsistent: %+v", st[1])
	}

	g.Release()
	h.Close()
	for i, err := range wait() {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
}

// TestJoinTokenAccepted forms a group over a token-protected hub: workers
// presenting the matching shared secret park and serve normally.
func TestJoinTokenAccepted(t *testing.T) {
	h, err := Listen("127.0.0.1:0", "s3cr3t")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	w, err := Join(context.Background(), h.Addr().String(), "s3cr3t")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- w.Serve(context.Background(), func(tr Transport) error {
			tr.Bcast(0, nil)
			return nil
		})
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	g, err := h.Acquire(ctx, 1)
	if err != nil {
		t.Fatalf("acquire over token-protected hub: %v", err)
	}
	g.Bcast(0, []byte("hi"))
	g.Close()
	h.Close()
	if err := <-done; err != nil {
		t.Fatalf("worker serve: %v", err)
	}
}

// TestJoinTokenRejected verifies the auth half of the cluster transport:
// a worker presenting the wrong (or no) token never parks — the hub
// closes the connection without a response — and the worker's Serve loop
// surfaces the dropped connection as an error.
func TestJoinTokenRejected(t *testing.T) {
	h, err := Listen("127.0.0.1:0", "s3cr3t")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	for _, bad := range []string{"", "wrong", "s3cr3t-but-longer"} {
		w, err := Join(context.Background(), h.Addr().String(), bad)
		if err != nil {
			t.Fatalf("dial with token %q: %v", bad, err)
		}
		if err := w.Serve(context.Background(), func(Transport) error { return nil }); err == nil {
			t.Fatalf("worker with token %q served without being rejected", bad)
		}
	}
	if n := h.Workers(); n != 0 {
		t.Fatalf("%d unauthorized workers parked", n)
	}

	// And the inverse: a token-bearing worker against an open hub is
	// rejected too (exact match, both directions).
	open, err := Listen("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer open.Close()
	w, err := Join(context.Background(), open.Addr().String(), "stray")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Serve(context.Background(), func(Transport) error { return nil }); err == nil {
		t.Fatal("token-bearing worker served on an open hub")
	}
	if n := open.Workers(); n != 0 {
		t.Fatalf("%d stray workers parked", n)
	}
}
