package netlist

import (
	"strings"
	"testing"
)

// buildSmall constructs the tiny sequential circuit used across tests:
//
//	INPUT(a) INPUT(b)
//	g1 = NAND(a, b)
//	g2 = NOT(g1)
//	ff = DFF(g2)
//	g3 = OR(ff, a)
//	OUTPUT(g3)
func buildSmall(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("small")
	b.AddInput("a")
	b.AddInput("b")
	b.AddGate("g1", Nand, []string{"a", "b"}, 0)
	b.AddGate("g2", Not, []string{"g1"}, 0)
	b.AddGate("ff", DFF, []string{"g2"}, 0)
	b.AddGate("g3", Or, []string{"ff", "a"}, 0)
	b.AddOutput("g3")
	ckt, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return ckt
}

func TestBuilderBasic(t *testing.T) {
	ckt := buildSmall(t)
	if got := ckt.NumCells(); got != 7 {
		t.Fatalf("NumCells = %d, want 7", got)
	}
	if got := ckt.NumMovable(); got != 4 {
		t.Fatalf("NumMovable = %d, want 4", got)
	}
	if got := len(ckt.PIs); got != 2 {
		t.Fatalf("PIs = %d, want 2", got)
	}
	if got := len(ckt.POs); got != 1 {
		t.Fatalf("POs = %d, want 1", got)
	}
	if got := len(ckt.DFFs); got != 1 {
		t.Fatalf("DFFs = %d, want 1", got)
	}
	// 6 driving cells (2 PI + 4 gates).
	if got := ckt.NumNets(); got != 6 {
		t.Fatalf("NumNets = %d, want 6", got)
	}
}

func TestBuilderDuplicateCell(t *testing.T) {
	b := NewBuilder("dup")
	b.AddInput("a")
	b.AddInput("a")
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate cell not rejected")
	}
}

func TestBuilderUndrivenSignal(t *testing.T) {
	b := NewBuilder("undriven")
	b.AddInput("a")
	b.AddGate("g", Not, []string{"missing"}, 0)
	b.AddOutput("g")
	if _, err := b.Build(); err == nil {
		t.Fatal("undriven signal not rejected")
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	b := NewBuilder("cycle")
	b.AddInput("a")
	b.AddGate("g1", And, []string{"a", "g2"}, 0)
	b.AddGate("g2", Not, []string{"g1"}, 0)
	b.AddOutput("g2")
	if _, err := b.Build(); err == nil {
		t.Fatal("combinational cycle not rejected")
	}
}

func TestDFFBreaksCycle(t *testing.T) {
	// Feedback through a DFF is legal sequential structure.
	b := NewBuilder("seqloop")
	b.AddInput("a")
	b.AddGate("g1", And, []string{"a", "ff"}, 0)
	b.AddGate("ff", DFF, []string{"g1"}, 0)
	b.AddOutput("g1")
	ckt, err := b.Build()
	if err != nil {
		t.Fatalf("sequential loop rejected: %v", err)
	}
	lv, err := ckt.Levelize()
	if err != nil {
		t.Fatalf("Levelize: %v", err)
	}
	if lv.Depth < 1 {
		t.Fatalf("Depth = %d, want >= 1", lv.Depth)
	}
}

func TestLevelizeOrder(t *testing.T) {
	ckt := buildSmall(t)
	lv, err := ckt.Levelize()
	if err != nil {
		t.Fatalf("Levelize: %v", err)
	}
	if len(lv.Order) != ckt.NumCells() {
		t.Fatalf("Order covers %d cells, want %d", len(lv.Order), ckt.NumCells())
	}
	// Topological property: every non-source cell appears after all its
	// combinational fan-in cells.
	pos := make(map[CellID]int)
	for i, id := range lv.Order {
		pos[id] = i
	}
	for i := range ckt.Cells {
		cell := &ckt.Cells[i]
		if cell.Type == Input || cell.Type == DFF {
			continue
		}
		for _, n := range cell.In {
			d := ckt.Nets[n].Driver
			if pos[d] >= pos[cell.ID] {
				t.Fatalf("cell %s at %d before fan-in %s at %d",
					cell.Name, pos[cell.ID], ckt.Cells[d].Name, pos[d])
			}
		}
	}
}

func TestLevelizeLevels(t *testing.T) {
	ckt := buildSmall(t)
	lv, _ := ckt.Levelize()
	byName := func(name string) int {
		for i := range ckt.Cells {
			if ckt.Cells[i].Name == name {
				return lv.Level[i]
			}
		}
		t.Fatalf("cell %q not found", name)
		return -1
	}
	if byName("a") != 0 || byName("b") != 0 {
		t.Fatal("PI level != 0")
	}
	if byName("ff") != 0 {
		t.Fatal("DFF output level != 0 (must be a path source)")
	}
	if byName("g1") != 1 {
		t.Fatalf("g1 level = %d, want 1", byName("g1"))
	}
	if byName("g2") != 2 {
		t.Fatalf("g2 level = %d, want 2", byName("g2"))
	}
	if byName("g3") != 1 {
		t.Fatalf("g3 level = %d, want 1 (fed by DFF and PI)", byName("g3"))
	}
}

func TestPathEndpoints(t *testing.T) {
	ckt := buildSmall(t)
	sources, sinks := ckt.PathEndpoints()
	if len(sources) != 3 { // 2 PIs + 1 DFF
		t.Fatalf("sources = %d, want 3", len(sources))
	}
	if len(sinks) != 2 { // 1 DFF + 1 PO
		t.Fatalf("sinks = %d, want 2", len(sinks))
	}
}

func TestCellNetsDistinct(t *testing.T) {
	// A cell with two pins on the same net should list the net once.
	b := NewBuilder("dup-pin")
	b.AddInput("a")
	b.AddGate("g", And, []string{"a", "a"}, 0)
	b.AddOutput("g")
	ckt, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var g CellID = NoCell
	for i := range ckt.Cells {
		if ckt.Cells[i].Name == "g" {
			g = CellID(i)
		}
	}
	nets := ckt.CellNets(g, nil)
	if len(nets) != 2 { // its own output net + net "a" once
		t.Fatalf("CellNets = %v, want 2 distinct nets", nets)
	}
}

func TestFaninFanoutCells(t *testing.T) {
	ckt := buildSmall(t)
	var g1 CellID = NoCell
	for i := range ckt.Cells {
		if ckt.Cells[i].Name == "g1" {
			g1 = CellID(i)
		}
	}
	fanin := ckt.FaninCells(g1, nil)
	if len(fanin) != 2 {
		t.Fatalf("g1 fanin = %d, want 2", len(fanin))
	}
	fanout := ckt.FanoutCells(g1, nil)
	if len(fanout) != 1 || ckt.Cells[fanout[0]].Name != "g2" {
		t.Fatalf("g1 fanout = %v, want [g2]", fanout)
	}
}

func TestParseBenchRoundTrip(t *testing.T) {
	src := `# test circuit
INPUT(G0)
INPUT(G1)
OUTPUT(G7)
G5 = DFF(G6)
G6 = NAND(G0, G1)
G7 = OR(G5, G0)
`
	ckt, err := ParseBench("rt", strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseBench: %v", err)
	}
	if ckt.NumMovable() != 3 {
		t.Fatalf("NumMovable = %d, want 3", ckt.NumMovable())
	}

	var sb strings.Builder
	if err := WriteBench(&sb, ckt); err != nil {
		t.Fatalf("WriteBench: %v", err)
	}
	ckt2, err := ParseBench("rt2", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	s1, s2 := ComputeStats(ckt), ComputeStats(ckt2)
	s1.Name, s2.Name = "", ""
	if s1 != s2 {
		t.Fatalf("round-trip stats differ:\n  %v\n  %v", s1, s2)
	}
}

func TestParseBenchErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"garbage", "hello world\n"},
		{"badtype", "INPUT(a)\ng = FOO(a)\nOUTPUT(g)\n"},
		{"emptyPad", "INPUT()\n"},
		{"noParen", "INPUT a\n"},
		{"emptyInput", "INPUT(a)\ng = AND(a,)\nOUTPUT(g)\n"},
	}
	for _, tc := range cases {
		if _, err := ParseBench(tc.name, strings.NewReader(tc.src)); err == nil {
			t.Errorf("%s: malformed input accepted", tc.name)
		}
	}
}

func TestParseGateTypeAliases(t *testing.T) {
	for _, s := range []string{"nand", "NAND", "Nand"} {
		g, err := ParseGateType(s)
		if err != nil || g != Nand {
			t.Fatalf("ParseGateType(%q) = %v, %v", s, g, err)
		}
	}
	if g, err := ParseGateType("INV"); err != nil || g != Not {
		t.Fatalf("ParseGateType(INV) = %v, %v", g, err)
	}
	if g, err := ParseGateType("BUF"); err != nil || g != Buf {
		t.Fatalf("ParseGateType(BUF) = %v, %v", g, err)
	}
}

func TestDefaultWidth(t *testing.T) {
	if DefaultWidth(Input, 0) != 0 || DefaultWidth(Output, 1) != 0 {
		t.Fatal("pads must have zero width")
	}
	if DefaultWidth(Not, 1) != 1 {
		t.Fatal("inverter width != 1")
	}
	if DefaultWidth(DFF, 1) != 4 {
		t.Fatal("DFF width != 4")
	}
	if w := DefaultWidth(And, 2); w != 3 {
		t.Fatalf("AND2 width = %d, want 3", w)
	}
	if w := DefaultWidth(And, 10); w != 6 {
		t.Fatalf("wide gate width = %d, want capped at 6", w)
	}
}

func TestStats(t *testing.T) {
	ckt := buildSmall(t)
	st := ComputeStats(ckt)
	if st.Cells != 4 || st.Gates != 3 || st.DFFs != 1 {
		t.Fatalf("stats cells/gates/dffs = %d/%d/%d", st.Cells, st.Gates, st.DFFs)
	}
	if st.Nets != 6 {
		t.Fatalf("stats nets = %d, want 6", st.Nets)
	}
	// g1(2) + g2(1) + g3(2) inputs over 3 gates.
	if st.AvgFanin < 1.6 || st.AvgFanin > 1.7 {
		t.Fatalf("AvgFanin = %v", st.AvgFanin)
	}
	if st.Depth != 2 {
		t.Fatalf("Depth = %d, want 2", st.Depth)
	}
	if !strings.Contains(st.String(), "small") {
		t.Fatal("Stats.String missing circuit name")
	}
}

func TestTotalWidth(t *testing.T) {
	ckt := buildSmall(t)
	// g1 NAND2 = 3, g2 NOT = 1, ff DFF = 4, g3 OR2 = 3.
	if got := ckt.TotalWidth(); got != 11 {
		t.Fatalf("TotalWidth = %d, want 11", got)
	}
}

func TestMovableCached(t *testing.T) {
	ckt := buildSmall(t)
	m1 := ckt.Movable()
	m2 := ckt.Movable()
	if &m1[0] != &m2[0] {
		t.Fatal("Movable not cached")
	}
	for _, id := range m1 {
		if ckt.Cells[id].IsPad() {
			t.Fatalf("Movable contains pad %v", id)
		}
	}
}
