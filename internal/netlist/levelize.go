package netlist

import "fmt"

// Levels holds a topological levelization of the circuit's combinational
// view: DFF outputs and primary inputs are sources at level 0; every other
// cell's level is 1 + max level of its combinational fan-in. Edges into a
// DFF's data pin do not propagate (the DFF is a path sink on that side).
type Levels struct {
	// Level[i] is the combinational level of cell i. Output pads take the
	// level of their driver + 1 so that POs terminate paths.
	Level []int
	// Order lists all cells in non-decreasing level order (a valid
	// topological order of the combinational DAG).
	Order []CellID
	// Depth is the maximum level.
	Depth int
}

// Levelize computes the combinational levelization, returning an error if
// the combinational view contains a cycle (which indicates an un-clocked
// feedback loop — invalid for the timing model).
func (c *Circuit) Levelize() (*Levels, error) {
	n := len(c.Cells)
	indeg := make([]int, n)

	// Combinational edges: driver -> sink for each net, except edges OUT OF
	// a DFF do not count toward its sinks' level... no: DFF output is a
	// *source*, so edges out of DFFs exist; edges INTO a DFF (its data
	// input) terminate — the DFF itself has level 0 regardless of fan-in.
	// Macro cells have no known truth function, so like DFFs they cut
	// combinational paths: their outputs are sources, their inputs sinks.
	isSource := func(id CellID) bool {
		t := c.Cells[id].Type
		return t == Input || t == DFF || t == Macro
	}

	for i := range c.Cells {
		if isSource(CellID(i)) {
			indeg[i] = 0
			continue
		}
		indeg[i] = len(c.Cells[i].In)
	}

	lv := &Levels{Level: make([]int, n), Order: make([]CellID, 0, n)}
	queue := make([]CellID, 0, n)
	for i := range c.Cells {
		if indeg[i] == 0 {
			queue = append(queue, CellID(i))
			lv.Level[i] = 0
		}
	}

	processed := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		lv.Order = append(lv.Order, id)
		processed++
		if lv.Level[id] > lv.Depth {
			lv.Depth = lv.Level[id]
		}
		out := c.Cells[id].Out
		if out == NoNet {
			continue
		}
		for _, s := range c.Nets[out].Sinks {
			if isSource(s) {
				continue // edge into a DFF data pin: path ends there
			}
			if l := lv.Level[id] + 1; l > lv.Level[s] {
				lv.Level[s] = l
			}
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}

	// Sources that are DFFs were enqueued above; DFF data fan-in edges were
	// skipped, so a deficit means a purely combinational cycle.
	if processed != n {
		return nil, fmt.Errorf("netlist: %s has a combinational cycle (%d of %d cells levelized)",
			c.Name, processed, n)
	}
	return lv, nil
}

// PathEndpoints returns the combinational path sources (PIs and DFF outputs)
// and sinks (POs and DFFs, via their data inputs).
func (c *Circuit) PathEndpoints() (sources, sinks []CellID) {
	for _, id := range c.PIs {
		sources = append(sources, id)
	}
	for _, id := range c.DFFs {
		sources = append(sources, id)
		sinks = append(sinks, id)
	}
	for _, id := range c.POs {
		sinks = append(sinks, id)
	}
	return sources, sinks
}
