package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ParseBench reads a circuit in the ISCAS-89 ".bench" format:
//
//	# comment
//	INPUT(G0)
//	OUTPUT(G17)
//	G10 = DFF(G14)
//	G11 = NAND(G0, G10)
//
// Cell widths are assigned with DefaultWidth. If real ISCAS-89 benchmark
// files are available they can be loaded directly; otherwise the synthetic
// generator in internal/gen produces statistically equivalent circuits.
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	b := NewBuilder(name)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := parseBenchLine(b, line); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: reading %s: %w", name, err)
	}
	return b.Build()
}

func parseBenchLine(b *Builder, line string) error {
	upper := strings.ToUpper(line)
	switch {
	case strings.HasPrefix(upper, "INPUT("):
		sig, err := parenArg(line)
		if err != nil {
			return err
		}
		b.AddInput(sig)
		return nil
	case strings.HasPrefix(upper, "OUTPUT("):
		sig, err := parenArg(line)
		if err != nil {
			return err
		}
		b.AddOutput(sig)
		return nil
	}

	eq := strings.Index(line, "=")
	if eq < 0 {
		return fmt.Errorf("netlist: malformed line %q", line)
	}
	name := strings.TrimSpace(line[:eq])
	rhs := strings.TrimSpace(line[eq+1:])
	open := strings.Index(rhs, "(")
	close_ := strings.LastIndex(rhs, ")")
	if open < 0 || close_ < open {
		return fmt.Errorf("netlist: malformed gate expression %q", rhs)
	}
	typ, err := ParseGateType(strings.TrimSpace(rhs[:open]))
	if err != nil {
		return err
	}
	var inputs []string
	for _, part := range strings.Split(rhs[open+1:close_], ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return fmt.Errorf("netlist: empty input in %q", line)
		}
		inputs = append(inputs, part)
	}
	b.AddGate(name, typ, inputs, 0)
	return nil
}

func parenArg(line string) (string, error) {
	open := strings.Index(line, "(")
	close_ := strings.LastIndex(line, ")")
	if open < 0 || close_ < open {
		return "", fmt.Errorf("netlist: malformed pad declaration %q", line)
	}
	arg := strings.TrimSpace(line[open+1 : close_])
	if arg == "" {
		return "", fmt.Errorf("netlist: empty pad name in %q", line)
	}
	return arg, nil
}

// WriteBench writes the circuit in ISCAS-89 .bench format. Output is
// deterministic: pads first, then gates in id order.
func WriteBench(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d DFF, %d cells, %d nets\n",
		len(c.PIs), len(c.POs), len(c.DFFs), c.NumMovable(), len(c.Nets))

	pis := append([]CellID(nil), c.PIs...)
	sort.Slice(pis, func(i, j int) bool { return pis[i] < pis[j] })
	for _, id := range pis {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Cells[id].Name)
	}
	pos := append([]CellID(nil), c.POs...)
	sort.Slice(pos, func(i, j int) bool { return pos[i] < pos[j] })
	for _, id := range pos {
		// Output pads consume exactly one net; emit the driven signal name.
		in := c.Cells[id].In[0]
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Nets[in].Name)
	}
	for i := range c.Cells {
		cell := &c.Cells[i]
		if cell.IsPad() {
			continue
		}
		names := make([]string, len(cell.In))
		for j, n := range cell.In {
			names[j] = c.Nets[n].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", cell.Name, cell.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}
