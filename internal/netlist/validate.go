package netlist

import "fmt"

// Validate checks the structural invariants of the circuit:
//
//   - every cell id and net id is consistent with its index;
//   - every net has a valid driver whose Out points back at the net;
//   - every sink of a net lists the net among its inputs;
//   - pads have the right pin shape (inputs drive, outputs consume one net);
//   - the combinational view (DFF outputs as sources) is acyclic.
func (c *Circuit) Validate() error {
	for i := range c.Cells {
		cell := &c.Cells[i]
		if cell.ID != CellID(i) {
			return fmt.Errorf("netlist: cell %d has ID %d", i, cell.ID)
		}
		switch cell.Type {
		case Input:
			if len(cell.In) != 0 {
				return fmt.Errorf("netlist: input pad %q has %d inputs", cell.Name, len(cell.In))
			}
			if cell.Out == NoNet {
				return fmt.Errorf("netlist: input pad %q drives no net", cell.Name)
			}
		case Output:
			if len(cell.In) != 1 {
				return fmt.Errorf("netlist: output pad %q has %d inputs, want 1", cell.Name, len(cell.In))
			}
			if cell.Out != NoNet {
				return fmt.Errorf("netlist: output pad %q drives a net", cell.Name)
			}
		case Macro:
			// Function-unknown cells (Bookshelf ingestion) have free pin
			// shape: they may only sink nets, only drive one, or both.
			// Physical width is the one invariant placement needs.
			if cell.Width <= 0 {
				return fmt.Errorf("netlist: macro %q has non-positive width %d", cell.Name, cell.Width)
			}
			if cell.Out == NoNet && len(cell.In) == 0 {
				return fmt.Errorf("netlist: macro %q is disconnected", cell.Name)
			}
		default:
			if len(cell.In) == 0 {
				return fmt.Errorf("netlist: gate %q has no inputs", cell.Name)
			}
			if cell.Out == NoNet {
				return fmt.Errorf("netlist: gate %q drives no net", cell.Name)
			}
			if cell.Width <= 0 {
				return fmt.Errorf("netlist: gate %q has non-positive width %d", cell.Name, cell.Width)
			}
		}
		for _, n := range cell.In {
			if n < 0 || int(n) >= len(c.Nets) {
				return fmt.Errorf("netlist: cell %q has out-of-range input net %d", cell.Name, n)
			}
		}
		if cell.Out != NoNet {
			if int(cell.Out) >= len(c.Nets) {
				return fmt.Errorf("netlist: cell %q has out-of-range output net %d", cell.Name, cell.Out)
			}
			if c.Nets[cell.Out].Driver != cell.ID {
				return fmt.Errorf("netlist: cell %q output net %d driven by cell %d",
					cell.Name, cell.Out, c.Nets[cell.Out].Driver)
			}
		}
	}

	for i := range c.Nets {
		net := &c.Nets[i]
		if net.ID != NetID(i) {
			return fmt.Errorf("netlist: net %d has ID %d", i, net.ID)
		}
		if net.Driver == NoCell || int(net.Driver) >= len(c.Cells) {
			return fmt.Errorf("netlist: net %q has invalid driver", net.Name)
		}
		if c.Cells[net.Driver].Out != net.ID {
			return fmt.Errorf("netlist: net %q driver does not drive it", net.Name)
		}
		for _, s := range net.Sinks {
			if s < 0 || int(s) >= len(c.Cells) {
				return fmt.Errorf("netlist: net %q has out-of-range sink %d", net.Name, s)
			}
			found := false
			for _, in := range c.Cells[s].In {
				if in == net.ID {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("netlist: net %q sink %q does not list it as input",
					net.Name, c.Cells[s].Name)
			}
		}
	}

	if _, err := c.Levelize(); err != nil {
		return err
	}
	return nil
}
