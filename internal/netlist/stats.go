package netlist

import (
	"fmt"
	"strings"
)

// Stats summarizes a circuit's structural properties. The synthetic circuit
// generator targets these statistics when reproducing the paper's ISCAS-89
// test cases.
type Stats struct {
	Name      string
	Cells     int // movable cells (gates + DFFs)
	Gates     int // combinational gates
	DFFs      int
	PIs, POs  int
	Nets      int
	Pins      int     // total pin count over all nets
	AvgFanin  float64 // mean inputs per gate
	AvgDegree float64 // mean pins per net
	MaxFanout int
	Depth     int // combinational depth
}

// ComputeStats gathers the statistics of the circuit.
func ComputeStats(c *Circuit) Stats {
	st := Stats{
		Name: c.Name,
		DFFs: len(c.DFFs),
		PIs:  len(c.PIs),
		POs:  len(c.POs),
		Nets: len(c.Nets),
	}
	faninSum := 0
	for i := range c.Cells {
		cell := &c.Cells[i]
		if cell.IsPad() {
			continue
		}
		st.Cells++
		if cell.Type != DFF {
			st.Gates++
			faninSum += len(cell.In)
		}
	}
	if st.Gates > 0 {
		st.AvgFanin = float64(faninSum) / float64(st.Gates)
	}
	for i := range c.Nets {
		deg := c.Nets[i].Degree()
		st.Pins += deg
		if fo := len(c.Nets[i].Sinks); fo > st.MaxFanout {
			st.MaxFanout = fo
		}
	}
	if st.Nets > 0 {
		st.AvgDegree = float64(st.Pins) / float64(st.Nets)
	}
	if lv, err := c.Levelize(); err == nil {
		st.Depth = lv.Depth
	}
	return st
}

// String renders the statistics as a one-line summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: cells=%d (gates=%d dff=%d) pi=%d po=%d nets=%d pins=%d",
		s.Name, s.Cells, s.Gates, s.DFFs, s.PIs, s.POs, s.Nets, s.Pins)
	fmt.Fprintf(&b, " avgFanin=%.2f avgDeg=%.2f maxFanout=%d depth=%d",
		s.AvgFanin, s.AvgDegree, s.MaxFanout, s.Depth)
	return b.String()
}
