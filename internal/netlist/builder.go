package netlist

import "fmt"

// Builder constructs circuits incrementally, by name. It is used by the
// .bench parser and by the synthetic circuit generator.
//
// Usage: declare pads and gates with AddInput/AddOutput/AddGate, then call
// Build, which resolves signal names to nets, creates the net objects, and
// validates the structure.
type Builder struct {
	name  string
	cells []protoCell
	byNam map[string]int
	errs  []error
}

type protoCell struct {
	name   string
	typ    GateType
	width  int
	inputs []string // signal names (driver cell names)
}

// NewBuilder returns a builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, byNam: make(map[string]int)}
}

// AddInput declares a primary input pad driving the signal of the same name.
func (b *Builder) AddInput(name string) {
	b.add(protoCell{name: name, typ: Input})
}

// AddOutput declares a primary output pad consuming the given signal.
func (b *Builder) AddOutput(signal string) {
	b.add(protoCell{name: "out:" + signal, typ: Output, inputs: []string{signal}})
}

// AddGate declares a gate (or DFF) named after the signal it drives, with
// the given input signal names. Width 0 selects DefaultWidth.
func (b *Builder) AddGate(name string, typ GateType, inputs []string, width int) {
	if width == 0 {
		width = DefaultWidth(typ, len(inputs))
	}
	cp := make([]string, len(inputs))
	copy(cp, inputs)
	b.add(protoCell{name: name, typ: typ, width: width, inputs: cp})
}

func (b *Builder) add(p protoCell) {
	if _, dup := b.byNam[p.name]; dup {
		b.errs = append(b.errs, fmt.Errorf("netlist: duplicate cell %q", p.name))
		return
	}
	b.byNam[p.name] = len(b.cells)
	b.cells = append(b.cells, p)
}

// Build resolves all signal references and returns the finished circuit.
func (b *Builder) Build() (*Circuit, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	ckt := &Circuit{Name: b.name}
	ckt.Cells = make([]Cell, len(b.cells))

	// First pass: create cells and one net per driving cell.
	netOf := make(map[string]NetID) // signal name -> net
	for i, p := range b.cells {
		id := CellID(i)
		ckt.Cells[i] = Cell{ID: id, Name: p.name, Type: p.typ, Width: p.width, Out: NoNet}
		switch p.typ {
		case Input:
			ckt.PIs = append(ckt.PIs, id)
		case Output:
			ckt.POs = append(ckt.POs, id)
		case DFF:
			ckt.DFFs = append(ckt.DFFs, id)
		}
		if p.typ != Output {
			nid := NetID(len(ckt.Nets))
			ckt.Nets = append(ckt.Nets, Net{ID: nid, Name: p.name, Driver: id})
			netOf[p.name] = nid
			ckt.Cells[i].Out = nid
		}
	}

	// Second pass: connect input pins.
	for i, p := range b.cells {
		for _, sig := range p.inputs {
			nid, ok := netOf[sig]
			if !ok {
				return nil, fmt.Errorf("netlist: cell %q references undriven signal %q", p.name, sig)
			}
			ckt.Cells[i].In = append(ckt.Cells[i].In, nid)
			ckt.Nets[nid].Sinks = append(ckt.Nets[nid].Sinks, CellID(i))
		}
	}

	if err := ckt.Validate(); err != nil {
		return nil, err
	}
	return ckt, nil
}
