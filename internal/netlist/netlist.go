// Package netlist models gate-level circuits for standard-cell placement.
//
// The model follows the ISCAS-89 benchmark conventions used by the paper:
// a circuit is a set of single-output cells (combinational gates and D
// flip-flops) connected by multi-terminal nets, plus primary input and
// output pads. Each non-pad cell drives exactly one net; a net has one
// driver and one or more sinks.
//
// For timing and switching-activity analysis the sequential circuit is
// viewed combinationally: DFF outputs act as path sources (alongside primary
// inputs) and DFF inputs act as path sinks (alongside primary outputs).
package netlist

import "fmt"

// GateType identifies the logic function of a cell.
type GateType uint8

// Gate types. Input and Output are I/O pads (fixed, not placed in rows);
// all other types are movable cells. Macro is a movable cell of unknown
// logic function — physical formats (Bookshelf) describe geometry and
// connectivity but not truth tables, so Macro cells act as combinational
// path endpoints (like DFFs) and carry a neutral 0.5 signal probability.
const (
	Input GateType = iota
	Output
	DFF
	And
	Nand
	Or
	Nor
	Not
	Xor
	Xnor
	Buf
	Macro
	numGateTypes
)

var gateNames = [...]string{
	Input: "INPUT", Output: "OUTPUT", DFF: "DFF",
	And: "AND", Nand: "NAND", Or: "OR", Nor: "NOR",
	Not: "NOT", Xor: "XOR", Xnor: "XNOR", Buf: "BUFF",
	Macro: "MACRO",
}

// String returns the ISCAS-89 spelling of the gate type.
func (g GateType) String() string {
	if int(g) < len(gateNames) {
		return gateNames[g]
	}
	return fmt.Sprintf("GateType(%d)", uint8(g))
}

// ParseGateType converts an ISCAS-89 function name (case-insensitive) to a
// GateType.
func ParseGateType(s string) (GateType, error) {
	up := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		up[i] = c
	}
	switch string(up) {
	case "AND":
		return And, nil
	case "NAND":
		return Nand, nil
	case "OR":
		return Or, nil
	case "NOR":
		return Nor, nil
	case "NOT", "INV":
		return Not, nil
	case "XOR":
		return Xor, nil
	case "XNOR":
		return Xnor, nil
	case "BUF", "BUFF":
		return Buf, nil
	case "DFF":
		return DFF, nil
	}
	return 0, fmt.Errorf("netlist: unknown gate type %q", s)
}

// CellID indexes Circuit.Cells. NoCell marks an absent reference.
type CellID int32

// NetID indexes Circuit.Nets. NoNet marks an absent reference.
type NetID int32

// Sentinel values for absent references.
const (
	NoCell CellID = -1
	NoNet  NetID  = -1
)

// Cell is a circuit instance: a logic gate, a D flip-flop, or an I/O pad.
type Cell struct {
	ID   CellID
	Name string
	Type GateType
	// Width is the cell's physical width in placement sites. Pads have
	// width 0 (they sit on the chip boundary, not in rows).
	Width int
	// Out is the net driven by this cell. Output pads drive no net.
	Out NetID
	// In lists the cell's input nets in pin order. Input pads have none.
	In []NetID
}

// IsPad reports whether the cell is a primary I/O pad (fixed location).
func (c *Cell) IsPad() bool { return c.Type == Input || c.Type == Output }

// Net is a signal with a single driver and one or more sink pins.
type Net struct {
	ID     NetID
	Name   string
	Driver CellID
	Sinks  []CellID // may contain repeats when a cell has two pins on the net
}

// Degree returns the number of pins on the net (driver + sinks).
func (n *Net) Degree() int { return 1 + len(n.Sinks) }

// Circuit is a complete gate-level design.
type Circuit struct {
	Name  string
	Cells []Cell
	Nets  []Net

	// PIs and POs list input and output pad cells; DFFs lists flip-flops.
	PIs, POs, DFFs []CellID

	movable []CellID // cached list of non-pad cells
}

// Cell returns the cell with the given id.
func (c *Circuit) Cell(id CellID) *Cell { return &c.Cells[id] }

// Net returns the net with the given id.
func (c *Circuit) Net(id NetID) *Net { return &c.Nets[id] }

// NumCells returns the total number of cells including pads.
func (c *Circuit) NumCells() int { return len(c.Cells) }

// NumNets returns the number of nets.
func (c *Circuit) NumNets() int { return len(c.Nets) }

// Movable returns the ids of all placeable (non-pad) cells. The returned
// slice is cached and must not be modified.
func (c *Circuit) Movable() []CellID {
	if c.movable == nil {
		for i := range c.Cells {
			if !c.Cells[i].IsPad() {
				c.movable = append(c.movable, CellID(i))
			}
		}
	}
	return c.movable
}

// NumMovable returns the number of placeable cells.
func (c *Circuit) NumMovable() int { return len(c.Movable()) }

// TotalWidth returns the summed width of all movable cells in sites.
func (c *Circuit) TotalWidth() int {
	total := 0
	for _, id := range c.Movable() {
		total += c.Cells[id].Width
	}
	return total
}

// CellNets appends to dst the distinct nets incident to the cell (its output
// net plus all input nets) and returns the extended slice.
func (c *Circuit) CellNets(id CellID, dst []NetID) []NetID {
	cell := &c.Cells[id]
	if cell.Out != NoNet {
		dst = append(dst, cell.Out)
	}
	for _, n := range cell.In {
		dup := false
		for _, seen := range dst {
			if seen == n {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, n)
		}
	}
	return dst
}

// FaninCells appends to dst the cells driving the inputs of id.
func (c *Circuit) FaninCells(id CellID, dst []CellID) []CellID {
	for _, n := range c.Cells[id].In {
		if d := c.Nets[n].Driver; d != NoCell {
			dst = append(dst, d)
		}
	}
	return dst
}

// FanoutCells appends to dst the sink cells of id's output net.
func (c *Circuit) FanoutCells(id CellID, dst []CellID) []CellID {
	out := c.Cells[id].Out
	if out == NoNet {
		return dst
	}
	return append(dst, c.Nets[out].Sinks...)
}

// DefaultWidth returns the physical width in sites used for a gate of the
// given type and fan-in, mirroring the relative area of typical standard
// cells: inverters and buffers are narrowest, flip-flops widest, and
// multi-input gates grow with fan-in.
func DefaultWidth(t GateType, fanin int) int {
	switch t {
	case Input, Output:
		return 0
	case Not, Buf:
		return 1
	case DFF:
		return 4
	default:
		w := 1 + fanin
		if w > 6 {
			w = 6
		}
		return w
	}
}
