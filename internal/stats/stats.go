// Package stats renders experiment results as text tables matching the
// layout of the paper's Tables 1-4, and provides the small numeric helpers
// (speedup, quality percentage) the harness reports.
package stats

import (
	"fmt"
	"strings"
	"time"
)

// Seconds formats a duration as the paper's whole-second runtime entries,
// with sub-second resolution below 10 s so scaled-down runs stay readable.
func Seconds(d time.Duration) string {
	s := d.Seconds()
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 10:
		return fmt.Sprintf("%.1f", s)
	default:
		return fmt.Sprintf("%.2f", s)
	}
}

// Speedup returns serial/parallel (0 when parallel is 0).
func Speedup(serial, par time.Duration) float64 {
	if par <= 0 {
		return 0
	}
	return float64(serial) / float64(par)
}

// QualityPercent returns achieved/target as a percentage capped at 100,
// mirroring the paper's bracketed quality annotations.
func QualityPercent(achieved, target float64) int {
	if target <= 0 {
		return 100
	}
	pct := int(achieved / target * 100)
	if pct > 100 {
		pct = 100
	}
	if pct < 0 {
		pct = 0
	}
	return pct
}

// TimeCell renders a parallel runtime entry as the paper's tables do: the
// plain time when the serial quality was reached, otherwise the time with
// the achieved quality percentage in brackets.
func TimeCell(t time.Duration, reached bool, achievedMu, targetMu float64) string {
	if reached {
		return Seconds(t)
	}
	return fmt.Sprintf("%s (%d)", Seconds(t), QualityPercent(achievedMu, targetMu))
}

// Table accumulates rows and renders with aligned columns.
type Table struct {
	Title   string
	header  []string
	rows    [][]string
	comment []string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddComment appends a footnote line rendered after the table body.
func (t *Table) AddComment(format string, args ...any) {
	t.comment = append(t.comment, fmt.Sprintf(format, args...))
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		line(row)
	}
	for _, c := range t.comment {
		fmt.Fprintf(&b, "# %s\n", c)
	}
	return b.String()
}
