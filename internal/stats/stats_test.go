package stats

import (
	"strings"
	"testing"
	"time"
)

func TestSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{250 * time.Second, "250"},
		{42500 * time.Millisecond, "42.5"},
		{1250 * time.Millisecond, "1.25"},
		{0, "0.00"},
	}
	for _, tc := range cases {
		if got := Seconds(tc.d); got != tc.want {
			t.Errorf("Seconds(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(10*time.Second, 2*time.Second); got != 5 {
		t.Fatalf("Speedup = %v, want 5", got)
	}
	if got := Speedup(time.Second, 0); got != 0 {
		t.Fatalf("Speedup by zero = %v, want 0", got)
	}
}

func TestQualityPercent(t *testing.T) {
	if got := QualityPercent(0.47, 0.50); got != 94 {
		t.Fatalf("QualityPercent = %d, want 94", got)
	}
	if got := QualityPercent(0.6, 0.5); got != 100 {
		t.Fatalf("over-achievement should cap at 100, got %d", got)
	}
	if got := QualityPercent(0.5, 0); got != 100 {
		t.Fatalf("zero target should give 100, got %d", got)
	}
	if got := QualityPercent(-1, 0.5); got != 0 {
		t.Fatalf("negative achieved should floor at 0, got %d", got)
	}
}

func TestTimeCell(t *testing.T) {
	if got := TimeCell(45*time.Second, true, 0.7, 0.7); got != "45.0" {
		t.Fatalf("reached cell = %q", got)
	}
	got := TimeCell(45*time.Second, false, 0.65, 0.70)
	if got != "45.0 (92)" {
		t.Fatalf("unreached cell = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X. Test", "Ckt", "Seq", "p=2")
	tb.AddRow("s1196", "92", "130")
	tb.AddRow("s3330", "3750", "5480")
	tb.AddComment("runtimes in seconds")
	out := tb.String()

	for _, want := range []string{"Table X. Test", "Ckt", "s1196", "5480", "# runtimes in seconds"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Header separator present.
	if !strings.Contains(out, "---") {
		t.Fatal("missing separator line")
	}
	// Columns aligned: "s1196" and "s3330" start at column 0; the second
	// column starts at the same offset in both rows.
	lines := strings.Split(out, "\n")
	var rows []string
	for _, l := range lines {
		if strings.HasPrefix(l, "s") {
			rows = append(rows, l)
		}
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 data rows, got %d", len(rows))
	}
	if strings.Index(rows[0], "92") != strings.Index(rows[1], "3750") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow("only-one")
	out := tb.String()
	if !strings.Contains(out, "only-one") {
		t.Fatalf("short row dropped:\n%s", out)
	}
}
