package metaheur

import (
	"context"
	"math"
	"time"

	"simevo/internal/core"
	"simevo/internal/fuzzy"
	"simevo/internal/layout"
	"simevo/internal/mpi"
	"simevo/internal/parallel"
	"simevo/internal/rng"
)

// SAConfig parameterizes simulated annealing.
type SAConfig struct {
	// Moves is the total move budget.
	Moves int
	// ChainLen is the number of moves per temperature (0: one per movable
	// cell).
	ChainLen int
	// Alpha is the geometric cooling rate (0: 0.95).
	Alpha float64
	// InitAccept calibrates T0 so roughly this fraction of uphill moves is
	// accepted initially (0: 0.8).
	InitAccept float64
	// RecomputeEvery forces a full re-evaluation after this many accepted
	// moves, bounding the incremental-update drift (0: 2000).
	RecomputeEvery int
	// Seed selects the random stream.
	Seed uint64
}

func (c *SAConfig) defaults(n int) {
	if c.ChainLen == 0 {
		c.ChainLen = n
	}
	if c.Alpha == 0 {
		c.Alpha = 0.95
	}
	if c.InitAccept == 0 {
		c.InitAccept = 0.8
	}
	if c.RecomputeEvery == 0 {
		c.RecomputeEvery = 2000
	}
}

// RunSA anneals the placement with pairwise-swap moves under the Metropolis
// criterion and geometric cooling. The energy is the sum of normalized
// wirelength and power costs; μ(s) is reported for comparability with SimE.
func RunSA(prob *core.Problem, cfg SAConfig) (*Result, error) {
	return RunSAContext(context.Background(), prob, cfg, nil)
}

// RunSAContext is RunSA with cooperative cancellation and progress
// reporting. The context is checked between temperature plateaus; a
// cancelled run returns the best-so-far result. progress, when non-nil, is
// invoked after every plateau with the move count and the best μ.
func RunSAContext(ctx context.Context, prob *core.Problem, cfg SAConfig, progress core.Progress) (*Result, error) {
	if err := requireWirePower(prob); err != nil {
		return nil, err
	}
	cfg.defaults(prob.Ckt.NumMovable())
	start := time.Now()

	sa := newSAChain(prob, cfg, 0x5a5a)
	for sa.moves < cfg.Moves && ctx.Err() == nil {
		sa.runChain(cfg.ChainLen)
		if progress != nil {
			progress(core.IterStats{Iter: sa.moves, Mu: sa.bestMu, Costs: sa.bestCosts})
		}
		sa.temp *= cfg.Alpha
		if sa.temp < sa.t0*1e-6 {
			break
		}
	}
	return &Result{
		BestMu:    sa.bestMu,
		BestCosts: sa.bestCosts,
		Best:      sa.best,
		Moves:     sa.moves,
		Runtime:   time.Since(start),
	}, nil
}

// saChain is one annealing chain; the parallel AMMC strategy runs one per
// rank.
type saChain struct {
	prob  *core.Problem
	cfg   SAConfig
	ev    *evaluator
	place *layout.Placement
	rnd   *rng.R

	temp, t0  float64
	moves     int
	accepted  int
	bestMu    float64
	bestCosts fuzzy.Costs
	best      *layout.Placement
}

// newSAChain builds a chain starting from the canonical initial placement
// with a stream-distinct random sequence.
func newSAChain(prob *core.Problem, cfg SAConfig, stream uint64) *saChain {
	eng := prob.EngineFromReference(0) // canonical start, rng unused
	place := eng.Placement()
	ev := newEvaluator(prob)
	ev.fullBound(place)
	sa := &saChain{
		prob: prob, cfg: cfg, ev: ev, place: place,
		rnd: rng.NewStream(prob.Cfg.Seed^cfg.Seed, stream),
	}
	sa.calibrate()
	sa.best = place.Clone()
	sa.bestMu = ev.mu(place)
	sa.bestCosts = ev.costs()
	return sa
}

// calibrate samples random swaps to set T0 so that InitAccept of uphill
// moves would be accepted.
func (sa *saChain) calibrate() {
	movable := sa.prob.Ckt.Movable()
	sum, count := 0.0, 0
	for i := 0; i < 64; i++ {
		a, b := randomPair(movable, sa.rnd)
		if d := sa.ev.swapDelta(sa.place, a, b); d > 0 {
			sum += d
			count++
		}
	}
	if count == 0 {
		count = 1
	}
	meanUp := sum / float64(count)
	if meanUp <= 0 {
		meanUp = 1e-6
	}
	// P(accept) = exp(-d/T) = InitAccept at d = meanUp.
	sa.t0 = -meanUp / math.Log(sa.cfg.InitAccept)
	sa.temp = sa.t0
}

// runChain executes one temperature plateau.
func (sa *saChain) runChain(n int) {
	movable := sa.prob.Ckt.Movable()
	for i := 0; i < n && sa.moves < sa.cfg.Moves; i++ {
		sa.moves++
		a, b := randomPair(movable, sa.rnd)
		d := sa.ev.swapDelta(sa.place, a, b)
		if d <= 0 || sa.rnd.Float64() < math.Exp(-d/sa.temp) {
			sa.ev.applySwap(sa.place, a, b)
			sa.accepted++
			if sa.accepted%sa.cfg.RecomputeEvery == 0 {
				sa.place.Recompute()
				sa.ev.fullBound(sa.place)
			}
			if mu := sa.ev.mu(sa.place); mu > sa.bestMu {
				// Confirm against an exact evaluation before recording.
				sa.place.Recompute()
				sa.ev.fullBound(sa.place)
				if mu = sa.ev.mu(sa.place); mu > sa.bestMu {
					sa.bestMu = mu
					sa.bestCosts = sa.ev.costs()
					sa.best = sa.place.Clone()
				}
			}
		}
	}
}

// adopt replaces the chain's working solution.
func (sa *saChain) adopt(place *layout.Placement, mu float64) {
	sa.place = place.Clone()
	sa.place.Recompute()
	sa.ev.fullBound(sa.place)
	if mu > sa.bestMu {
		sa.bestMu = mu
		sa.bestCosts = sa.ev.costs()
		sa.best = sa.place.Clone()
	}
	// Reheat mildly so the adopted solution can be perturbed.
	if sa.temp < sa.t0*0.05 {
		sa.temp = sa.t0 * 0.05
	}
}

// ParallelSAConfig configures the asynchronous multiple-Markov-chain SA.
type ParallelSAConfig struct {
	SA SAConfig
	// Procs >= 3: rank 0 is the central store, others run chains.
	Procs int
	// ExchangePlateaus is the number of temperature plateaus between store
	// consultations (0: 4).
	ExchangePlateaus int
	Net              *mpi.NetModel
	MeasureCompute   *bool
}

// RunParallelSA runs asynchronous multiple-Markov-chain parallel SA — the
// scheme of the paper's reference [1] that its Type III SimE strategy
// borrows: independent chains from different streams, cooperating through
// a central best-solution store.
func RunParallelSA(prob *core.Problem, cfg ParallelSAConfig) (*parallel.Result, error) {
	if err := requireWirePower(prob); err != nil {
		return nil, err
	}
	period := cfg.ExchangePlateaus
	if period <= 0 {
		period = 4
	}
	return parallel.RunCoop(prob, parallel.CoopOptions{
		Procs:          cfg.Procs,
		Net:            cfg.Net,
		MeasureCompute: cfg.MeasureCompute,
		Worker: func(rank int, exchange parallel.ExchangeFunc) (float64, *layout.Placement, error) {
			c := cfg.SA
			c.defaults(prob.Ckt.NumMovable())
			sa := newSAChain(prob, c, uint64(0xACC0+rank))
			plateau := 0
			for sa.moves < c.Moves {
				sa.runChain(c.ChainLen)
				sa.temp *= c.Alpha
				if sa.temp < sa.t0*1e-6 {
					break
				}
				plateau++
				if plateau%period == 0 {
					if adopted, mu, place := exchange(sa.bestMu, sa.best); adopted {
						sa.adopt(place, mu)
					}
				}
			}
			return sa.bestMu, sa.best, nil
		},
	})
}
