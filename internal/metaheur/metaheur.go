// Package metaheur implements the comparison metaheuristics the paper's
// Section 7 references — Simulated Annealing, Tabu Search, and a Genetic
// Algorithm — on the same placement substrates as SimE, in serial and
// parallel forms:
//
//   - SA parallelizes as asynchronous multiple Markov chains (the paper's
//     reference [1] and [11]) through a central best store;
//   - GA parallelizes as an island model with ring migration ([8]);
//   - TS parallelizes as Type I candidate-list division ([6]), which the
//     authors report gave TS its best speedups.
//
// All three optimize the two-objective (wirelength + power) problem with
// the same μ(s) quality measure as SimE, so results are directly
// comparable with the SimE tables.
package metaheur

import (
	"fmt"
	"time"

	"simevo/internal/core"
	"simevo/internal/cost"
	"simevo/internal/fuzzy"
	"simevo/internal/layout"
	"simevo/internal/netlist"
	"simevo/internal/rng"
	"simevo/internal/wire"
)

// Result reports a metaheuristic run in the same terms as the SimE engine.
type Result struct {
	BestMu    float64
	BestCosts fuzzy.Costs
	Best      *layout.Placement
	Moves     int // moves / iterations / generations executed
	Runtime   time.Duration
}

// evaluator computes μ(s) and move deltas for the two-objective problem.
// Swap deltas use the same coordinate approximation as SimE's allocation
// operator (cells score at the swapped slot's last-recomputed coordinates);
// a periodic full recompute kills the accumulated drift.
//
// Move deltas go through a wire.Incremental bound lazily to the working
// placement: trial lengths are read from the cached net geometry in
// O(log p) per net instead of re-collecting every pin, and full() after a
// placement Recompute re-estimates only the journaled (moved) cells' nets.
// The objective totals live in the same cost.Pipeline the SimE engine
// runs — wire and power fold changed nets into their summation trees in
// O(dirty·log n), and a full recompute lands on the identical bits — so
// the μ values reported here are exactly the engine's. Fitness-only users
// (the GA evaluates fresh placements and never asks for deltas) keep the
// plain from-scratch length path and never pay for the geometry cache.
// core.Config.DisableIncremental forces the from-scratch paths here too —
// the trajectories are bitwise identical either way (tested), so the
// switch isolates the caching machinery.
type evaluator struct {
	prob    *core.Problem
	ev      *wire.Evaluator
	inc     *wire.Incremental
	boundTo *layout.Placement // placement the incremental state mirrors
	lengths []float64
	pipe    *cost.Pipeline
	dirty   []netlist.NetID // scratch: pre-flush dirty snapshot
	nets    []netlist.NetID // scratch
}

func newEvaluator(prob *core.Problem) *evaluator {
	return &evaluator{
		prob: prob,
		ev:   wire.NewEvaluator(prob.Ckt, prob.Cfg.WireEstimator),
		pipe: cost.NewPipeline(fuzzy.WirePower, prob.Ckt, prob.Acts, prob.Lv, prob.Cfg.TimingModel),
	}
}

// scratchMode reports whether the from-scratch reference mode is forced —
// the same escape hatch the SimE engine honors. Both modes compute
// bitwise-identical deltas (the trial formulas are canonical), so the
// switch isolates the caching machinery, not the math.
func (e *evaluator) scratchMode() bool { return e.prob.Cfg.DisableIncremental }

// full recomputes the totals for the given placement: a dirty-net resync
// when the incremental state already mirrors this placement, a from-scratch
// pass otherwise. Per-net values are bitwise identical either way, and the
// objective totals land on the same bits whether they were folded forward
// net by net or recombined from the whole array.
func (e *evaluator) full(place *layout.Placement) {
	if place.Dirty() {
		place.Recompute()
	}
	if e.boundTo == place {
		e.inc.Sync(place)
		e.dirty = e.inc.DirtySnapshot(e.dirty)
		e.lengths = e.inc.Lengths(e.lengths)
		e.pipe.ApplyDirty(e.dirty, e.lengths)
	} else {
		e.boundTo = nil
		e.lengths = e.ev.Lengths(place, e.lengths)
		e.pipe.Full(e.lengths)
	}
}

// fullBound is full for move-generating users (SA/TS): it binds the
// incremental state first and reads the lengths from it, so adopting or
// decoding a placement costs one net-length pass (inside Rebuild) instead
// of a scratch pass followed by the first swapDelta's rebuild. Fitness-
// only users (the GA) should keep calling full.
func (e *evaluator) fullBound(place *layout.Placement) {
	if e.scratchMode() {
		e.full(place)
		return
	}
	if place.Dirty() {
		place.Recompute()
	}
	if e.bind(place) {
		e.lengths = e.inc.Lengths(e.lengths)
		e.pipe.Full(e.lengths)
		return
	}
	e.dirty = e.inc.DirtySnapshot(e.dirty)
	e.lengths = e.inc.Lengths(e.lengths)
	e.pipe.ApplyDirty(e.dirty, e.lengths)
}

// bind points the incremental state at the placement, rebuilding the
// cached geometry if it mirrors a different one; it reports whether a
// rebuild ran (the dirty-net record is then gone and objective state must
// recompute in full).
func (e *evaluator) bind(place *layout.Placement) (rebuilt bool) {
	if e.boundTo == place {
		e.inc.Sync(place)
		return false
	}
	if e.inc == nil {
		e.inc = wire.NewIncremental(e.prob.Ckt, e.prob.Cfg.WireEstimator)
	}
	place.JournalCoords(true)
	place.ResetJournal()
	e.inc.Rebuild(place)
	e.boundTo = place
	return true
}

// mu returns μ(s) for the current totals.
func (e *evaluator) mu(place *layout.Placement) float64 {
	ratios := fuzzy.Ratio(e.pipe.Costs(), e.prob.Lower)
	return fuzzy.Eval(fuzzy.WirePower, ratios, e.prob.Cfg.Goals, e.prob.OWA,
		place.WidthViolation(e.prob.Cfg.Alpha))
}

// costs returns the current raw totals.
func (e *evaluator) costs() fuzzy.Costs { return e.pipe.Costs() }

// energy is the scalar the local-search heuristics minimize: the sum of
// cost ratios against the μ normalization bounds (monotone with 1-μ for
// equal memberships, but smooth everywhere).
func (e *evaluator) energy() float64 {
	c := e.pipe.Costs()
	return c.Wire/e.prob.Lower.Wire + c.Power/e.prob.Lower.Power
}

// swapDelta computes the exact energy change of swapping cells a and b at
// the current (possibly hinted) coordinates, without mutating the
// placement. Nets containing both cells are evaluated with both endpoints
// moved simultaneously. Both cells are lifted out of the cached multisets
// for the duration, so each net's trial is a pure candidate-composition
// over the remaining pins — bitwise equal to the Evaluator's canonical
// NetLengthWithCellAt / NetLengthWithCellsAt.
func (e *evaluator) swapDelta(place *layout.Placement, a, b netlist.CellID) float64 {
	ax, ay := place.Coord(a)
	bx, by := place.Coord(b)
	e.nets = e.nets[:0]
	e.nets = e.prob.Ckt.CellNets(a, e.nets)
	e.nets = e.prob.Ckt.CellNets(b, e.nets)

	var view *wire.View
	if !e.scratchMode() {
		e.bind(place)
		e.inc.RemoveCell(a)
		e.inc.RemoveCell(b)
		view = e.inc.BaseView()
	}
	var dWire, dPow float64
	for _, n := range dedupNets(e.nets) {
		old := e.lengths[n]
		hasA, hasB := e.netHas(n, a), e.netHas(n, b)
		var nu float64
		switch {
		case hasA && hasB:
			if view != nil {
				nu = view.TrialNetAt2(n, bx, by, ax, ay)
			} else {
				nu = e.ev.NetLengthWithCellsAt(n, a, bx, by, b, ax, ay, place)
			}
		case hasA:
			if view != nil {
				nu = view.TrialNetAt(n, bx, by)
			} else {
				nu = e.ev.NetLengthWithCellAt(n, a, bx, by, place)
			}
		default:
			if view != nil {
				nu = view.TrialNetAt(n, ax, ay)
			} else {
				nu = e.ev.NetLengthWithCellAt(n, b, ax, ay, place)
			}
		}
		dWire += nu - old
		dPow += (nu - old) * e.prob.Acts[n]
	}
	if view != nil {
		e.inc.RestoreCell(b)
		e.inc.RestoreCell(a)
	}
	return dWire/e.prob.Lower.Wire + dPow/e.prob.Lower.Power
}

func (e *evaluator) netHas(n netlist.NetID, id netlist.CellID) bool {
	net := e.prob.Ckt.Net(n)
	if net.Driver == id {
		return true
	}
	for _, s := range net.Sinks {
		if s == id {
			return true
		}
	}
	return false
}

// applySwap commits a swap and folds the affected nets into the objective
// pipeline — the O(dirty·log n) path SA and TS ride on every accepted
// move.
func (e *evaluator) applySwap(place *layout.Placement, a, b netlist.CellID) {
	scratch := e.scratchMode()
	if !scratch {
		e.bind(place)
	}
	ax, ay := place.Coord(a)
	bx, by := place.Coord(b)
	place.SwapCells(a, b)
	place.SetCoordHint(a, bx, by)
	place.SetCoordHint(b, ax, ay)
	if !scratch {
		e.inc.MoveCell(a, bx, by)
		e.inc.MoveCell(b, ax, ay)
	}
	// Re-estimate the affected nets' lengths at the hinted coordinates.
	e.nets = e.nets[:0]
	e.nets = e.prob.Ckt.CellNets(a, e.nets)
	e.nets = e.prob.Ckt.CellNets(b, e.nets)
	touched := dedupNets(e.nets)
	for _, n := range touched {
		if scratch {
			e.lengths[n] = e.ev.NetLength(n, place)
		} else {
			e.lengths[n] = e.inc.NetLength(n)
		}
	}
	e.pipe.ApplyDirty(touched, e.lengths)
}

func dedupNets(nets []netlist.NetID) []netlist.NetID {
	out := nets[:0]
	for i, n := range nets {
		dup := false
		for _, m := range nets[:i] {
			if m == n {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, n)
		}
	}
	return out
}

// randomPair picks two distinct movable cells.
func randomPair(movable []netlist.CellID, rnd *rng.R) (netlist.CellID, netlist.CellID) {
	a := movable[rnd.Intn(len(movable))]
	b := movable[rnd.Intn(len(movable))]
	for b == a {
		b = movable[rnd.Intn(len(movable))]
	}
	return a, b
}

// requireWirePower rejects configurations the local-search heuristics do
// not support (they optimize the paper's two-objective problem).
func requireWirePower(prob *core.Problem) error {
	if prob.Cfg.Objectives != fuzzy.WirePower {
		return fmt.Errorf("metaheur: only the wire+power objective set is supported, got %s",
			prob.Cfg.Objectives)
	}
	return nil
}
