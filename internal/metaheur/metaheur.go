// Package metaheur implements the comparison metaheuristics the paper's
// Section 7 references — Simulated Annealing, Tabu Search, and a Genetic
// Algorithm — on the same placement substrates as SimE, in serial and
// parallel forms:
//
//   - SA parallelizes as asynchronous multiple Markov chains (the paper's
//     reference [1] and [11]) through a central best store;
//   - GA parallelizes as an island model with ring migration ([8]);
//   - TS parallelizes as Type I candidate-list division ([6]), which the
//     authors report gave TS its best speedups.
//
// All three optimize the two-objective (wirelength + power) problem with
// the same μ(s) quality measure as SimE, so results are directly
// comparable with the SimE tables.
package metaheur

import (
	"fmt"
	"time"

	"simevo/internal/core"
	"simevo/internal/fuzzy"
	"simevo/internal/layout"
	"simevo/internal/netlist"
	"simevo/internal/power"
	"simevo/internal/rng"
	"simevo/internal/wire"
)

// Result reports a metaheuristic run in the same terms as the SimE engine.
type Result struct {
	BestMu    float64
	BestCosts fuzzy.Costs
	Best      *layout.Placement
	Moves     int // moves / iterations / generations executed
	Runtime   time.Duration
}

// evaluator computes μ(s) and move deltas for the two-objective problem.
// Swap deltas use the same coordinate approximation as SimE's allocation
// operator (cells score at the swapped slot's last-recomputed coordinates);
// a periodic full recompute kills the accumulated drift.
type evaluator struct {
	prob    *core.Problem
	ev      *wire.Evaluator
	lengths []float64
	wireSum float64
	powSum  float64
	nets    []netlist.NetID // scratch
}

func newEvaluator(prob *core.Problem) *evaluator {
	return &evaluator{
		prob: prob,
		ev:   wire.NewEvaluator(prob.Ckt, prob.Cfg.WireEstimator),
	}
}

// full recomputes the totals from scratch for the given placement.
func (e *evaluator) full(place *layout.Placement) {
	if place.Dirty() {
		place.Recompute()
	}
	e.lengths = e.ev.Lengths(place, e.lengths)
	e.wireSum = wire.Total(e.lengths)
	e.powSum = power.Cost(e.lengths, e.prob.Acts)
}

// mu returns μ(s) for the current totals.
func (e *evaluator) mu(place *layout.Placement) float64 {
	ratios := fuzzy.Ratio(fuzzy.Costs{Wire: e.wireSum, Power: e.powSum}, e.prob.Lower)
	return fuzzy.Eval(fuzzy.WirePower, ratios, e.prob.Cfg.Goals, e.prob.OWA,
		place.WidthViolation(e.prob.Cfg.Alpha))
}

// costs returns the current raw totals.
func (e *evaluator) costs() fuzzy.Costs {
	return fuzzy.Costs{Wire: e.wireSum, Power: e.powSum}
}

// energy is the scalar the local-search heuristics minimize: the sum of
// cost ratios against the μ normalization bounds (monotone with 1-μ for
// equal memberships, but smooth everywhere).
func (e *evaluator) energy() float64 {
	return e.wireSum/e.prob.Lower.Wire + e.powSum/e.prob.Lower.Power
}

// swapDelta computes the exact energy change of swapping cells a and b at
// the current (possibly hinted) coordinates, without mutating the
// placement. Nets containing both cells are evaluated with both endpoints
// moved simultaneously.
func (e *evaluator) swapDelta(place *layout.Placement, a, b netlist.CellID) float64 {
	ax, ay := place.Coord(a)
	bx, by := place.Coord(b)
	e.nets = e.nets[:0]
	e.nets = e.prob.Ckt.CellNets(a, e.nets)
	e.nets = e.prob.Ckt.CellNets(b, e.nets)
	var dWire, dPow float64
	for _, n := range dedupNets(e.nets) {
		old := e.lengths[n]
		hasA, hasB := e.netHas(n, a), e.netHas(n, b)
		var nu float64
		switch {
		case hasA && hasB:
			nu = e.ev.NetLengthWithCellsAt(n, a, bx, by, b, ax, ay, place)
		case hasA:
			nu = e.ev.NetLengthWithCellAt(n, a, bx, by, place)
		default:
			nu = e.ev.NetLengthWithCellAt(n, b, ax, ay, place)
		}
		dWire += nu - old
		dPow += (nu - old) * e.prob.Acts[n]
	}
	return dWire/e.prob.Lower.Wire + dPow/e.prob.Lower.Power
}

func (e *evaluator) netHas(n netlist.NetID, id netlist.CellID) bool {
	net := e.prob.Ckt.Net(n)
	if net.Driver == id {
		return true
	}
	for _, s := range net.Sinks {
		if s == id {
			return true
		}
	}
	return false
}

// applySwap commits a swap and incrementally updates the totals.
func (e *evaluator) applySwap(place *layout.Placement, a, b netlist.CellID) {
	ax, ay := place.Coord(a)
	bx, by := place.Coord(b)
	place.SwapCells(a, b)
	place.SetCoordHint(a, bx, by)
	place.SetCoordHint(b, ax, ay)
	// Recompute the affected nets' lengths at the hinted coordinates.
	e.nets = e.nets[:0]
	e.nets = e.prob.Ckt.CellNets(a, e.nets)
	e.nets = e.prob.Ckt.CellNets(b, e.nets)
	for _, n := range dedupNets(e.nets) {
		old := e.lengths[n]
		nu := e.ev.NetLength(n, place)
		e.lengths[n] = nu
		e.wireSum += nu - old
		e.powSum += (nu - old) * e.prob.Acts[n]
	}
}

func dedupNets(nets []netlist.NetID) []netlist.NetID {
	out := nets[:0]
	for i, n := range nets {
		dup := false
		for _, m := range nets[:i] {
			if m == n {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, n)
		}
	}
	return out
}

// randomPair picks two distinct movable cells.
func randomPair(movable []netlist.CellID, rnd *rng.R) (netlist.CellID, netlist.CellID) {
	a := movable[rnd.Intn(len(movable))]
	b := movable[rnd.Intn(len(movable))]
	for b == a {
		b = movable[rnd.Intn(len(movable))]
	}
	return a, b
}

// requireWirePower rejects configurations the local-search heuristics do
// not support (they optimize the paper's two-objective problem).
func requireWirePower(prob *core.Problem) error {
	if prob.Cfg.Objectives != fuzzy.WirePower {
		return fmt.Errorf("metaheur: only the wire+power objective set is supported, got %s",
			prob.Cfg.Objectives)
	}
	return nil
}
