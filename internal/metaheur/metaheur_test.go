package metaheur

import (
	"math"
	"testing"

	"simevo/internal/core"
	"simevo/internal/fuzzy"
	"simevo/internal/gen"
	"simevo/internal/mpi"
	"simevo/internal/netlist"
	"simevo/internal/rng"
)

func testProblem(t testing.TB, iters int) *core.Problem {
	t.Helper()
	ckt, err := gen.Generate(gen.Params{
		Name: "mh-t", Gates: 120, DFFs: 8, PIs: 6, POs: 6, Depth: 8, Seed: 321,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(fuzzy.WirePower)
	cfg.MaxIters = iters
	cfg.Seed = 77
	prob, err := core.NewProblem(ckt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return prob
}

func boolPtr(b bool) *bool { return &b }

func detNet() *mpi.NetModel {
	n := mpi.FastEthernet()
	return &n
}

// --- shared evaluator ---

func TestSwapDeltaMatchesFullRecompute(t *testing.T) {
	prob := testProblem(t, 10)
	eng := prob.EngineFromReference(0)
	place := eng.Placement()
	ev := newEvaluator(prob)
	ev.full(place)
	rnd := rng.New(5)
	movable := prob.Ckt.Movable()

	for i := 0; i < 50; i++ {
		a, b := randomPair(movable, rnd)
		before := ev.energy()
		delta := ev.swapDelta(place, a, b)
		ev.applySwap(place, a, b)
		afterIncremental := ev.energy()

		// The incremental totals must match the delta estimate closely
		// (both use the hinted coordinates).
		if math.Abs((afterIncremental-before)-delta) > 1e-6 {
			t.Fatalf("swap %d: delta %v but energy moved %v", i, delta, afterIncremental-before)
		}
		// And a full recompute from scratch must agree with the
		// incremental totals while coordinates are exact.
		place.Recompute()
		ev.full(place)
	}
}

func TestEvaluatorMuMatchesEngine(t *testing.T) {
	prob := testProblem(t, 10)
	eng := prob.EngineFromReference(0)
	eng.EvaluateCosts()
	ev := newEvaluator(prob)
	ev.full(eng.Placement())
	if math.Abs(ev.mu(eng.Placement())-eng.Mu()) > 1e-12 {
		t.Fatalf("metaheur μ %v != engine μ %v", ev.mu(eng.Placement()), eng.Mu())
	}
}

func TestRequireWirePower(t *testing.T) {
	ckt, err := gen.Generate(gen.Params{
		Name: "mh-d", Gates: 60, DFFs: 4, PIs: 4, POs: 4, Depth: 6, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(fuzzy.WirePowerDelay)
	cfg.MaxIters = 5
	prob, err := core.NewProblem(ckt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSA(prob, SAConfig{Moves: 10}); err == nil {
		t.Fatal("three-objective SA accepted")
	}
	if _, err := RunTS(prob, TSConfig{Iters: 10}); err == nil {
		t.Fatal("three-objective TS accepted")
	}
	if _, err := RunGA(prob, GAConfig{Generations: 2}); err == nil {
		t.Fatal("three-objective GA accepted")
	}
}

// --- SA ---

func TestSAImproves(t *testing.T) {
	prob := testProblem(t, 10)
	res, err := RunSA(prob, SAConfig{Moves: 30000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestMu <= 0.1 {
		t.Fatalf("SA best μ = %v, want clear improvement over 0 (initial)", res.BestMu)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatalf("SA best placement invalid: %v", err)
	}
	if res.BestCosts.Wire >= prob.Ref.Wire {
		t.Fatalf("SA did not improve wirelength: %v vs %v", res.BestCosts.Wire, prob.Ref.Wire)
	}
}

func TestSADeterministic(t *testing.T) {
	run := func() float64 {
		prob := testProblem(t, 10)
		res, err := RunSA(prob, SAConfig{Moves: 5000, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return res.BestMu
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same-seed SA differs: %v vs %v", a, b)
	}
}

func TestParallelSA(t *testing.T) {
	prob := testProblem(t, 10)
	res, err := RunParallelSA(prob, ParallelSAConfig{
		SA:             SAConfig{Moves: 8000, Seed: 2},
		Procs:          3,
		Net:            detNet(),
		MeasureCompute: boolPtr(false),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestMu <= 0.1 {
		t.Fatalf("parallel SA best μ = %v", res.BestMu)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatalf("parallel SA best invalid: %v", err)
	}
}

// --- TS ---

func TestTSImproves(t *testing.T) {
	prob := testProblem(t, 10)
	res, err := RunTS(prob, TSConfig{Iters: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestMu <= 0.1 {
		t.Fatalf("TS best μ = %v", res.BestMu)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatalf("TS best placement invalid: %v", err)
	}
}

func TestTSTabuPreventsImmediateReversal(t *testing.T) {
	prob := testProblem(t, 10)
	cfg := TSConfig{Iters: 1, Candidates: 8, Tenure: 5, Seed: 4}
	cfg.defaults()
	ts := newTS(prob, cfg)
	cands := ts.sampleCandidates(nil)
	deltas := make([]float64, len(cands))
	for i, cand := range cands {
		deltas[i] = ts.ev.swapDelta(ts.place, cand[0], cand[1])
	}
	i := ts.pickBest(cands, deltas)
	if i < 0 {
		t.Skip("no admissible candidate in sample")
	}
	ts.applyCandidate(cands[i])
	a, b := cands[i][0], cands[i][1]
	if ts.tabuUntil[a] <= ts.iter || ts.tabuUntil[b] <= ts.iter {
		t.Fatal("moved cells not marked tabu")
	}
	// A worsening candidate involving a tabu cell must not be picked.
	ts.iter++
	cand2 := [][2]netlist.CellID{{a, b}}
	d2 := []float64{+1.0}
	if got := ts.pickBest(cand2, d2); got != -1 {
		t.Fatalf("tabu worsening move admitted (got %d)", got)
	}
	// But an improving tabu move is admitted by aspiration.
	d2[0] = -1.0
	if got := ts.pickBest(cand2, d2); got != 0 {
		t.Fatalf("aspiration did not admit improving tabu move (got %d)", got)
	}
}

func TestParallelTSMatchesSerial(t *testing.T) {
	// Type I invariant for TS: candidate evaluation distribution must not
	// change the trajectory.
	serialProb := testProblem(t, 10)
	serial, err := RunTS(serialProb, TSConfig{Iters: 60, Candidates: 32, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 3} {
		prob := testProblem(t, 10)
		res, err := RunParallelTS(prob, ParallelTSConfig{
			TS:             TSConfig{Iters: 60, Candidates: 32, Seed: 8},
			Procs:          p,
			Net:            detNet(),
			MeasureCompute: boolPtr(false),
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if res.BestMu != serial.BestMu {
			t.Fatalf("p=%d: parallel TS μ %v != serial %v", p, res.BestMu, serial.BestMu)
		}
		if res.Best.Fingerprint() != serial.Best.Fingerprint() {
			t.Fatalf("p=%d: parallel TS trajectory diverged", p)
		}
	}
}

// --- GA ---

func TestGAImproves(t *testing.T) {
	prob := testProblem(t, 10)
	res, err := RunGA(prob, GAConfig{Pop: 16, Generations: 30, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestMu <= 0.02 {
		t.Fatalf("GA best μ = %v", res.BestMu)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatalf("GA best placement invalid: %v", err)
	}
}

func TestOrderCrossoverIsPermutation(t *testing.T) {
	prob := testProblem(t, 10)
	cfg := GAConfig{Pop: 4, Generations: 1, Seed: 7}
	cfg.defaults()
	g := newGA(prob, cfg, 1)
	for i := 0; i < 50; i++ {
		child := g.orderCrossover(g.pop[0].perm, g.pop[1].perm)
		seen := make(map[netlist.CellID]bool, len(child))
		for _, id := range child {
			if seen[id] {
				t.Fatalf("crossover produced duplicate cell %d", id)
			}
			seen[id] = true
		}
		if len(seen) != prob.Ckt.NumMovable() {
			t.Fatalf("crossover lost cells: %d of %d", len(seen), prob.Ckt.NumMovable())
		}
	}
}

func TestGenomeDecodeValid(t *testing.T) {
	prob := testProblem(t, 10)
	base := append([]netlist.CellID(nil), prob.Ckt.Movable()...)
	place := decodeGenome(prob, base)
	if err := place.Validate(); err != nil {
		t.Fatalf("decoded genome invalid: %v", err)
	}
	if !place.WidthOK(0.5) {
		t.Fatal("greedy decode produced grossly unbalanced rows")
	}
}

func TestParallelGA(t *testing.T) {
	prob := testProblem(t, 10)
	res, err := RunParallelGA(prob, ParallelGAConfig{
		GA:             GAConfig{Pop: 12, Generations: 20, Seed: 8},
		Procs:          3,
		MigrateEvery:   5,
		Migrants:       2,
		Net:            detNet(),
		MeasureCompute: boolPtr(false),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestMu <= 0.02 {
		t.Fatalf("island GA best μ = %v", res.BestMu)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatalf("island GA best invalid: %v", err)
	}
}

func TestMigrantCodecRoundTrip(t *testing.T) {
	prob := testProblem(t, 10)
	cfg := GAConfig{Pop: 4, Generations: 1, Seed: 9}
	cfg.defaults()
	g := newGA(prob, cfg, 2)
	data := encodeMigrants(g.pop[:2])
	out, err := decodeMigrants(prob, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("decoded %d migrants, want 2", len(out))
	}
	for i := range out {
		for j := range out[i].perm {
			if out[i].perm[j] != g.pop[i].perm[j] {
				t.Fatalf("migrant %d genome differs at %d", i, j)
			}
		}
	}
	if _, err := decodeMigrants(prob, data[:7]); err == nil {
		t.Fatal("truncated migrants accepted")
	}
}

// --- cross-heuristic comparison ---

func TestAllHeuristicsProduceComparableQuality(t *testing.T) {
	// Sanity check for the Section 7 comparison: with reasonable budgets
	// every heuristic should land in a sane μ band on the same problem.
	prob := testProblem(t, 150)
	sime := prob.NewEngine(0).Run()

	prob2 := testProblem(t, 10)
	sa, err := RunSA(prob2, SAConfig{Moves: 40000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := RunTS(prob2, TSConfig{Iters: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ga, err := RunGA(prob2, GAConfig{Pop: 20, Generations: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("μ: SimE %.3f, SA %.3f, TS %.3f, GA %.3f",
		sime.BestMu, sa.BestMu, ts.BestMu, ga.BestMu)
	for name, mu := range map[string]float64{
		"SA": sa.BestMu, "TS": ts.BestMu,
	} {
		if mu < sime.BestMu*0.4 {
			t.Errorf("%s μ %.3f implausibly far below SimE %.3f", name, mu, sime.BestMu)
		}
	}
	_ = ga // GA converges slower; presence and validity are checked above
}

// TestScratchModeMatchesIncremental pins the DisableIncremental escape
// hatch for the metaheuristics: SA and TS must follow bitwise-identical
// trajectories with the cached evaluator and the from-scratch reference.
func TestScratchModeMatchesIncremental(t *testing.T) {
	runSA := func(scratch bool) *Result {
		prob := testProblem(t, 50)
		prob.Cfg.DisableIncremental = scratch
		res, err := RunSA(prob, SAConfig{Moves: 3000, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sa1, sa2 := runSA(false), runSA(true)
	if sa1.BestMu != sa2.BestMu || sa1.Best.Fingerprint() != sa2.Best.Fingerprint() {
		t.Fatalf("SA diverged across modes: μ %v vs %v", sa1.BestMu, sa2.BestMu)
	}

	runTS := func(scratch bool) *Result {
		prob := testProblem(t, 50)
		prob.Cfg.DisableIncremental = scratch
		res, err := RunTS(prob, TSConfig{Iters: 40, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ts1, ts2 := runTS(false), runTS(true)
	if ts1.BestMu != ts2.BestMu || ts1.Best.Fingerprint() != ts2.Best.Fingerprint() {
		t.Fatalf("TS diverged across modes: μ %v vs %v", ts1.BestMu, ts2.BestMu)
	}
}

// TestGAPooledFitnessEquivalence pins the parallel fitness evaluation to
// the serial reference: same seeds, same generations, identical best
// solution either way.
func TestGAPooledFitnessEquivalence(t *testing.T) {
	prob := testProblem(t, 50)
	run := func(workers int) *Result {
		cfg := GAConfig{Pop: 12, Generations: 6, Seed: 7, Workers: workers}
		res, err := RunGA(prob, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(0)
	pooled := run(3)
	if serial.BestMu != pooled.BestMu {
		t.Fatalf("pooled GA diverged: serial best mu %v, pooled %v", serial.BestMu, pooled.BestMu)
	}
	if serial.Best.Fingerprint() != pooled.Best.Fingerprint() {
		t.Fatal("pooled GA reached a different best placement")
	}
	if serial.BestCosts != pooled.BestCosts {
		t.Fatalf("pooled GA costs diverged: %+v vs %+v", serial.BestCosts, pooled.BestCosts)
	}
}
