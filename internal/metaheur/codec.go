package metaheur

import (
	"encoding/binary"
	"fmt"
	"math"

	"simevo/internal/core"
	"simevo/internal/layout"
	"simevo/internal/netlist"
)

// Wire helpers for the parallel metaheuristics (little-endian).

func encodeCands(cands [][2]netlist.CellID) []byte {
	buf := make([]byte, 0, 4+8*len(cands))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cands)))
	for _, c := range cands {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c[0]))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c[1]))
	}
	return buf
}

func decodeCands(data []byte) ([][2]netlist.CellID, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("metaheur: truncated candidate list")
	}
	n := binary.LittleEndian.Uint32(data)
	if uint32(len(data)-4) != 8*n {
		return nil, fmt.Errorf("metaheur: candidate list length mismatch")
	}
	out := make([][2]netlist.CellID, n)
	off := 4
	for i := range out {
		out[i][0] = netlist.CellID(binary.LittleEndian.Uint32(data[off:]))
		out[i][1] = netlist.CellID(binary.LittleEndian.Uint32(data[off+4:]))
		off += 8
	}
	return out, nil
}

func encodeChunk(vals []float64) []byte {
	buf := make([]byte, 0, 8*len(vals))
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

func decodeChunk(data []byte) ([]float64, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("metaheur: delta chunk length %d not a multiple of 8", len(data))
	}
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out, nil
}

func decodePlacementPrefix(prob *core.Problem, data []byte) (*layout.Placement, []byte, error) {
	return layout.DecodePlacementPrefix(prob.Ckt, data)
}
