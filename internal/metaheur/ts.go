package metaheur

import (
	"context"
	"fmt"
	"time"

	"simevo/internal/core"
	"simevo/internal/fuzzy"
	"simevo/internal/layout"
	"simevo/internal/mpi"
	"simevo/internal/netlist"
	"simevo/internal/parallel"
	"simevo/internal/rng"
)

// TSConfig parameterizes tabu search.
type TSConfig struct {
	// Iters is the number of tabu iterations (one applied move each).
	Iters int
	// Candidates is the sampled neighborhood size per iteration (0: 64).
	Candidates int
	// Tenure is the number of iterations a moved cell stays tabu (0: 12).
	Tenure int
	Seed   uint64
}

func (c *TSConfig) defaults() {
	if c.Candidates == 0 {
		c.Candidates = 64
	}
	if c.Tenure == 0 {
		c.Tenure = 12
	}
}

// tsState is one tabu search; the parallel variant distributes candidate
// evaluation while the master owns the state.
type tsState struct {
	prob      *core.Problem
	cfg       TSConfig
	ev        *evaluator
	place     *layout.Placement
	rnd       *rng.R
	tabuUntil []int // per cell: first iteration the cell is free again
	iter      int
	bestMu    float64
	bestCosts fuzzy.Costs
	best      *layout.Placement
}

func newTS(prob *core.Problem, cfg TSConfig) *tsState {
	eng := prob.EngineFromReference(0)
	place := eng.Placement()
	ev := newEvaluator(prob)
	ev.fullBound(place)
	ts := &tsState{
		prob: prob, cfg: cfg, ev: ev, place: place,
		rnd:       rng.NewStream(prob.Cfg.Seed^cfg.Seed, 0x7ab0),
		tabuUntil: make([]int, len(prob.Ckt.Cells)),
	}
	ts.best = place.Clone()
	ts.bestMu = ev.mu(place)
	ts.bestCosts = ev.costs()
	return ts
}

// sampleCandidates draws the iteration's neighborhood (distinct random
// swap pairs).
func (ts *tsState) sampleCandidates(dst [][2]netlist.CellID) [][2]netlist.CellID {
	movable := ts.prob.Ckt.Movable()
	dst = dst[:0]
	for len(dst) < ts.cfg.Candidates {
		a, b := randomPair(movable, ts.rnd)
		dst = append(dst, [2]netlist.CellID{a, b})
	}
	return dst
}

// pickBest returns the index of the best admissible candidate: lowest
// delta among non-tabu moves, or a tabu move that would beat the best
// solution (aspiration). deltas[i] corresponds to cands[i].
func (ts *tsState) pickBest(cands [][2]netlist.CellID, deltas []float64) int {
	cur := ts.ev.energy()
	bestEnergy := cur // energy of ts.best is not tracked; use μ aspiration below
	_ = bestEnergy
	bestIdx := -1
	for i, cand := range cands {
		tabu := ts.tabuUntil[cand[0]] > ts.iter || ts.tabuUntil[cand[1]] > ts.iter
		if tabu {
			// Aspiration: admit a tabu move only if it is strictly
			// improving on the current solution by a clear margin.
			if deltas[i] >= 0 {
				continue
			}
		}
		if bestIdx < 0 || deltas[i] < deltas[bestIdx] {
			bestIdx = i
		}
	}
	return bestIdx
}

// applyCandidate commits a candidate and updates tabu state and the best.
// The placement is recomputed exactly after every applied move: the Type I
// parallel variant ships the placement to the slaves each iteration, and
// serial and parallel TS must score candidates against identical
// coordinates for the trajectory-equivalence invariant to hold.
func (ts *tsState) applyCandidate(cand [2]netlist.CellID) {
	ts.ev.applySwap(ts.place, cand[0], cand[1])
	ts.tabuUntil[cand[0]] = ts.iter + ts.cfg.Tenure
	ts.tabuUntil[cand[1]] = ts.iter + ts.cfg.Tenure
	ts.place.Recompute()
	ts.ev.fullBound(ts.place)
	if mu := ts.ev.mu(ts.place); mu > ts.bestMu {
		ts.bestMu = mu
		ts.bestCosts = ts.ev.costs()
		ts.best = ts.place.Clone()
	}
}

// RunTS executes serial tabu search: every iteration samples a candidate
// neighborhood of swaps, applies the best admissible one (tabu moves are
// admitted only under the aspiration criterion), and marks the moved cells
// tabu for Tenure iterations.
func RunTS(prob *core.Problem, cfg TSConfig) (*Result, error) {
	return RunTSContext(context.Background(), prob, cfg, nil)
}

// RunTSContext is RunTS with cooperative cancellation and progress
// reporting. The context is checked between tabu iterations; a cancelled
// run returns the best-so-far result. progress, when non-nil, is invoked
// after every iteration with the iteration count and the best μ.
func RunTSContext(ctx context.Context, prob *core.Problem, cfg TSConfig, progress core.Progress) (*Result, error) {
	if err := requireWirePower(prob); err != nil {
		return nil, err
	}
	cfg.defaults()
	start := time.Now()
	ts := newTS(prob, cfg)
	var cands [][2]netlist.CellID
	deltas := make([]float64, 0, cfg.Candidates)
	for ts.iter = 0; ts.iter < cfg.Iters && ctx.Err() == nil; ts.iter++ {
		cands = ts.sampleCandidates(cands)
		deltas = deltas[:0]
		for _, cand := range cands {
			deltas = append(deltas, ts.ev.swapDelta(ts.place, cand[0], cand[1]))
		}
		if i := ts.pickBest(cands, deltas); i >= 0 {
			ts.applyCandidate(cands[i])
		}
		if progress != nil {
			progress(core.IterStats{Iter: ts.iter + 1, Mu: ts.bestMu, Costs: ts.bestCosts})
		}
	}
	return &Result{
		BestMu:    ts.bestMu,
		BestCosts: ts.bestCosts,
		Best:      ts.best,
		Moves:     ts.iter,
		Runtime:   time.Since(start),
	}, nil
}

// ParallelTSConfig configures Type I parallel tabu search.
type ParallelTSConfig struct {
	TS             TSConfig
	Procs          int
	Net            *mpi.NetModel
	MeasureCompute *bool
}

// Type I TS protocol tags.
const (
	tagTSWork = 40 + iota
	tagTSDeltas
)

// RunParallelTS distributes the candidate-list evaluation over slaves (the
// Type I scheme of the authors' TS companion paper [6], which they report
// gave TS its best speedups): the master samples the neighborhood,
// broadcasts the placement and candidate list, the slaves evaluate their
// chunk of deltas, and the master applies the winner. The trajectory is
// identical to serial TS with the same seed.
func RunParallelTS(prob *core.Problem, cfg ParallelTSConfig) (*parallel.Result, error) {
	if err := requireWirePower(prob); err != nil {
		return nil, err
	}
	if cfg.Procs < 2 {
		return nil, fmt.Errorf("metaheur: parallel TS needs >= 2 ranks")
	}
	c := cfg.TS
	c.defaults()
	o := parallel.Options{Procs: cfg.Procs, Net: cfg.Net, MeasureCompute: cfg.MeasureCompute}
	cl, runErr := parallel.NewCoopCluster(o)
	if runErr != nil {
		return nil, runErr
	}
	var out *parallel.Result
	err := cl.Run(func(comm *mpi.Comm) error {
		if comm.Rank() == 0 {
			res, err := parallelTSMaster(prob, c, comm)
			if err != nil {
				return err
			}
			out = res
			return nil
		}
		return parallelTSSlave(prob, comm)
	})
	if err != nil {
		return nil, err
	}
	out.VirtualTime = cl.MakeSpan()
	out.RankStats = cl.Stats()
	return out, nil
}

func parallelTSMaster(prob *core.Problem, cfg TSConfig, c parallel.Comm) (*parallel.Result, error) {
	ts := newTS(prob, cfg)
	var cands [][2]netlist.CellID
	deltas := make([]float64, cfg.Candidates)

	for ts.iter = 0; ts.iter < cfg.Iters; ts.iter++ {
		cands = ts.sampleCandidates(cands)

		// Ship placement + candidate list; slaves evaluate their chunks.
		msg := ts.place.Encode()
		msg = append(msg, encodeCands(cands)...)
		c.Bcast(0, msg)

		lo, hi := chunkRange(len(cands), 0, c.Size())
		for i := lo; i < hi; i++ {
			deltas[i] = ts.ev.swapDelta(ts.place, cands[i][0], cands[i][1])
		}
		parts := c.Gather(0, encodeChunk(deltas[lo:hi]))
		for r := 1; r < c.Size(); r++ {
			rlo, rhi := chunkRange(len(cands), r, c.Size())
			vals, err := decodeChunk(parts[r])
			if err != nil {
				return nil, err
			}
			if len(vals) != rhi-rlo {
				return nil, fmt.Errorf("metaheur: rank %d returned %d deltas, want %d", r, len(vals), rhi-rlo)
			}
			copy(deltas[rlo:rhi], vals)
		}

		if i := ts.pickBest(cands, deltas[:len(cands)]); i >= 0 {
			ts.applyCandidate(cands[i])
		}
	}
	c.Bcast(0, nil)

	return &parallel.Result{
		BestMu:    ts.bestMu,
		BestCosts: ts.bestCosts,
		Best:      ts.best,
		Iters:     ts.iter,
	}, nil
}

func parallelTSSlave(prob *core.Problem, c parallel.Comm) error {
	ev := newEvaluator(prob)
	for {
		msg := c.Bcast(0, nil)
		if len(msg) == 0 {
			return nil
		}
		place, rest, err := decodePlacementPrefix(prob, msg)
		if err != nil {
			return err
		}
		cands, err := decodeCands(rest)
		if err != nil {
			return err
		}
		ev.fullBound(place)
		lo, hi := chunkRange(len(cands), c.Rank(), c.Size())
		out := make([]float64, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, ev.swapDelta(place, cands[i][0], cands[i][1]))
		}
		c.Gather(0, encodeChunk(out))
	}
}

func chunkRange(n, rank, size int) (int, int) {
	return rank * n / size, (rank + 1) * n / size
}
