package metaheur

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"simevo/internal/core"
	"simevo/internal/fuzzy"
	"simevo/internal/layout"
	"simevo/internal/mpi"
	"simevo/internal/netlist"
	"simevo/internal/parallel"
	"simevo/internal/rng"
)

// GAConfig parameterizes the genetic algorithm.
type GAConfig struct {
	// Pop is the population size (0: 24).
	Pop int
	// Generations is the generation budget.
	Generations int
	// CxProb is the crossover probability per offspring (0: 0.9).
	CxProb float64
	// MutSwaps is the number of mutation transpositions per offspring
	// (0: 2).
	MutSwaps int
	// Elite preserves the best individuals unchanged (0: 2).
	Elite int
	// Tournament is the selection tournament size (0: 3).
	Tournament int
	// Workers fans the per-generation fitness evaluation (genome decode +
	// from-scratch cost pass, the GA's hot loop) across a shared
	// core.Pool, one evaluator per slot. 0 or 1 keeps evaluation serial.
	// Fitness values are independent per individual and the best-solution
	// merge stays serial in population order, so results are identical in
	// either mode. Each island of the parallel GA owns its own pool.
	Workers int
	Seed    uint64
}

func (c *GAConfig) defaults() {
	if c.Pop == 0 {
		c.Pop = 24
	}
	if c.CxProb == 0 {
		c.CxProb = 0.9
	}
	if c.MutSwaps == 0 {
		c.MutSwaps = 2
	}
	if c.Elite == 0 {
		c.Elite = 2
	}
	if c.Tournament == 0 {
		c.Tournament = 3
	}
}

// The GA genome is a permutation of the movable cells; decoding deals the
// permutation greedily into the narrowest row, exactly as the random
// initial placement does, so every genome is a legal placement and the
// width constraint stays near-satisfied by construction.
type genome struct {
	perm    []netlist.CellID
	fitness float64 // μ(s); evaluated lazily
}

// decode builds the placement a genome represents.
func decodeGenome(prob *core.Problem, perm []netlist.CellID) *layout.Placement {
	place := layout.New(prob.Ckt, prob.Cfg.NumRows)
	widths := make([]int, place.NumRows())
	for _, id := range perm {
		best := 0
		for r := 1; r < place.NumRows(); r++ {
			if widths[r] < widths[best] {
				best = r
			}
		}
		place.AppendToRow(best, id)
		widths[best] += prob.Ckt.Cells[id].Width
	}
	place.Recompute()
	return place
}

// gaState is one GA population (an island in the parallel version).
type gaState struct {
	prob *core.Problem
	cfg  GAConfig
	ev   *evaluator
	rnd  *rng.R
	pop  []genome

	// Parallel fitness evaluation (GAConfig.Workers > 1): a shared worker
	// pool with one evaluator per slot, plus per-individual result
	// staging so the best-solution merge can stay serial in population
	// order — identical to the serial trajectory.
	pool     *core.Pool
	evs      []*evaluator
	pending  []int // population indices awaiting evaluation
	fitBuf   []float64
	costBuf  []fuzzy.Costs
	placeBuf []*layout.Placement

	bestMu    float64
	bestCosts fuzzy.Costs
	best      *layout.Placement
}

func newGA(prob *core.Problem, cfg GAConfig, stream uint64) *gaState {
	g := &gaState{
		prob: prob, cfg: cfg,
		ev:  newEvaluator(prob),
		rnd: rng.NewStream(prob.Cfg.Seed^cfg.Seed, stream),
	}
	if cfg.Workers > 1 {
		g.pool = core.NewPool(cfg.Workers)
		g.evs = make([]*evaluator, g.pool.Size())
	}
	base := prob.Ckt.Movable()
	for i := 0; i < cfg.Pop; i++ {
		perm := append([]netlist.CellID(nil), base...)
		g.rnd.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		g.pop = append(g.pop, genome{perm: perm, fitness: -1})
	}
	g.evaluateAll()
	return g
}

func (g *gaState) evaluate(ind *genome) {
	if ind.fitness >= 0 {
		return
	}
	place := decodeGenome(g.prob, ind.perm)
	g.ev.full(place)
	ind.fitness = g.ev.mu(place)
	if ind.fitness > g.bestMu || g.best == nil {
		g.bestMu = ind.fitness
		g.bestCosts = g.ev.costs()
		g.best = place
	}
}

func (g *gaState) evaluateAll() {
	if g.pool != nil {
		g.evaluatePooled()
	} else {
		for i := range g.pop {
			g.evaluate(&g.pop[i])
		}
	}
	sort.SliceStable(g.pop, func(i, j int) bool { return g.pop[i].fitness > g.pop[j].fitness })
}

// evaluatePooled computes the fitness of every unevaluated genome across
// the worker pool, then merges results serially in population order.
// Decode + cost evaluation is a pure function of the permutation (each
// slot owns an evaluator), and the merge visits individuals in the same
// order as the serial loop, so fitness values, best tracking, and the
// subsequent sort are identical to the serial path.
func (g *gaState) evaluatePooled() {
	g.pending = g.pending[:0]
	for i := range g.pop {
		if g.pop[i].fitness < 0 {
			g.pending = append(g.pending, i)
		}
	}
	if len(g.pending) == 0 {
		return
	}
	n := len(g.pending)
	g.fitBuf = resizeSlice(g.fitBuf, n)
	g.costBuf = resizeSlice(g.costBuf, n)
	g.placeBuf = resizeSlice(g.placeBuf, n)
	g.pool.Batch(nil, g.pool.Size(), n, func(slot, lo, hi int) {
		ev := g.evs[slot]
		if ev == nil {
			ev = newEvaluator(g.prob)
			g.evs[slot] = ev
		}
		for j := lo; j < hi; j++ {
			place := decodeGenome(g.prob, g.pop[g.pending[j]].perm)
			ev.full(place)
			g.placeBuf[j] = place
			g.fitBuf[j] = ev.mu(place)
			g.costBuf[j] = ev.costs()
		}
	})
	for j, i := range g.pending {
		ind := &g.pop[i]
		ind.fitness = g.fitBuf[j]
		if ind.fitness > g.bestMu || g.best == nil {
			g.bestMu = ind.fitness
			g.bestCosts = g.costBuf[j]
			g.best = g.placeBuf[j]
		}
		g.placeBuf[j] = nil
	}
}

func resizeSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// tournament picks a parent index.
func (g *gaState) tournament() int {
	best := g.rnd.Intn(len(g.pop))
	for i := 1; i < g.cfg.Tournament; i++ {
		c := g.rnd.Intn(len(g.pop))
		if g.pop[c].fitness > g.pop[best].fitness {
			best = c
		}
	}
	return best
}

// orderCrossover is OX1: a slice of parent A is kept in place; the
// remaining positions take B's cells in B's relative order.
func (g *gaState) orderCrossover(a, b []netlist.CellID) []netlist.CellID {
	n := len(a)
	lo := g.rnd.Intn(n)
	hi := lo + 1 + g.rnd.Intn(n-lo)
	child := make([]netlist.CellID, n)
	inSlice := make(map[netlist.CellID]bool, hi-lo)
	for i := lo; i < hi; i++ {
		child[i] = a[i]
		inSlice[a[i]] = true
	}
	pos := 0
	for _, id := range b {
		if inSlice[id] {
			continue
		}
		for pos >= lo && pos < hi {
			pos++
		}
		if pos >= n {
			break
		}
		child[pos] = id
		pos++
	}
	return child
}

func (g *gaState) mutate(perm []netlist.CellID) {
	for i := 0; i < g.cfg.MutSwaps; i++ {
		a, b := g.rnd.Intn(len(perm)), g.rnd.Intn(len(perm))
		perm[a], perm[b] = perm[b], perm[a]
	}
}

// step runs one generation.
func (g *gaState) step() {
	next := make([]genome, 0, g.cfg.Pop)
	// Elitism: population is kept sorted by fitness.
	for i := 0; i < g.cfg.Elite && i < len(g.pop); i++ {
		next = append(next, g.pop[i])
	}
	for len(next) < g.cfg.Pop {
		pa := g.pop[g.tournament()].perm
		var child []netlist.CellID
		if g.rnd.Float64() < g.cfg.CxProb {
			pb := g.pop[g.tournament()].perm
			child = g.orderCrossover(pa, pb)
		} else {
			child = append([]netlist.CellID(nil), pa...)
		}
		g.mutate(child)
		next = append(next, genome{perm: child, fitness: -1})
	}
	g.pop = next
	g.evaluateAll()
}

// RunGA executes the serial genetic algorithm.
func RunGA(prob *core.Problem, cfg GAConfig) (*Result, error) {
	return RunGAContext(context.Background(), prob, cfg, nil)
}

// RunGAContext is RunGA with cooperative cancellation and progress
// reporting. The context is checked between generations; a cancelled run
// returns the best-so-far result. progress, when non-nil, is invoked after
// every generation with the generation count and the best μ.
func RunGAContext(ctx context.Context, prob *core.Problem, cfg GAConfig, progress core.Progress) (*Result, error) {
	if err := requireWirePower(prob); err != nil {
		return nil, err
	}
	cfg.defaults()
	if cfg.Generations <= 0 {
		return nil, fmt.Errorf("metaheur: GA needs a positive generation budget")
	}
	start := time.Now()
	g := newGA(prob, cfg, 0x6a)
	gens := 0
	for gen := 0; gen < cfg.Generations && ctx.Err() == nil; gen++ {
		g.step()
		gens++
		if progress != nil {
			progress(core.IterStats{Iter: gens, Mu: g.bestMu, Costs: g.bestCosts})
		}
	}
	return &Result{
		BestMu:    g.bestMu,
		BestCosts: g.bestCosts,
		Best:      g.best,
		Moves:     gens,
		Runtime:   time.Since(start),
	}, nil
}

// ParallelGAConfig configures the island-model GA.
type ParallelGAConfig struct {
	GA GAConfig
	// Procs islands, ring topology.
	Procs int
	// MigrateEvery generations between migrations (0: 10).
	MigrateEvery int
	// Migrants per migration (0: 2).
	Migrants       int
	Net            *mpi.NetModel
	MeasureCompute *bool
}

const tagGAMigrate = 50

// RunParallelGA runs the distributed island-model GA of the authors'
// companion paper [8]: every rank evolves its own population; every
// MigrateEvery generations the top Migrants individuals are sent to the
// next rank in a ring and merged into its population, replacing its worst.
func RunParallelGA(prob *core.Problem, cfg ParallelGAConfig) (*parallel.Result, error) {
	if err := requireWirePower(prob); err != nil {
		return nil, err
	}
	if cfg.Procs < 2 {
		return nil, fmt.Errorf("metaheur: island GA needs >= 2 ranks")
	}
	c := cfg.GA
	c.defaults()
	if c.Generations <= 0 {
		return nil, fmt.Errorf("metaheur: GA needs a positive generation budget")
	}
	migrateEvery := cfg.MigrateEvery
	if migrateEvery <= 0 {
		migrateEvery = 10
	}
	migrants := cfg.Migrants
	if migrants <= 0 {
		migrants = 2
	}
	if migrants > c.Pop/2 {
		migrants = c.Pop / 2
	}

	o := parallel.Options{Procs: cfg.Procs, Net: cfg.Net, MeasureCompute: cfg.MeasureCompute}
	cl, err := parallel.NewCoopCluster(o)
	if err != nil {
		return nil, err
	}

	type island struct {
		mu   float64
		best *layout.Placement
	}
	results := make([]island, cfg.Procs)

	runErr := cl.Run(func(comm *mpi.Comm) error {
		g := newGA(prob, c, uint64(0x15a0+comm.Rank()))
		next := (comm.Rank() + 1) % comm.Size()
		prev := (comm.Rank() - 1 + comm.Size()) % comm.Size()
		for gen := 1; gen <= c.Generations; gen++ {
			g.step()
			if gen%migrateEvery == 0 {
				// Ring migration: send top individuals, merge incoming.
				comm.Send(next, tagGAMigrate, encodeMigrants(g.pop[:migrants]))
				data, _ := comm.Recv(prev, tagGAMigrate)
				incoming, err := decodeMigrants(prob, data)
				if err != nil {
					return err
				}
				// Replace the tail (worst) with the immigrants.
				for i, ind := range incoming {
					g.pop[len(g.pop)-1-i] = ind
				}
				g.evaluateAll()
			}
		}
		results[comm.Rank()] = island{mu: g.bestMu, best: g.best}
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}

	out := &parallel.Result{Iters: c.Generations}
	for _, isl := range results {
		if isl.best != nil && isl.mu > out.BestMu {
			out.BestMu = isl.mu
			out.Best = isl.best
		}
	}
	out.VirtualTime = cl.MakeSpan()
	out.RankStats = cl.Stats()
	if out.Best != nil {
		eng := prob.EngineFrom(out.Best.Clone(), nil)
		eng.EvaluateCosts()
		out.BestCosts = eng.Costs()
	}
	return out, nil
}

func encodeMigrants(inds []genome) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(inds)))
	for _, ind := range inds {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ind.perm)))
		for _, id := range ind.perm {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
		}
	}
	return buf
}

func decodeMigrants(prob *core.Problem, data []byte) ([]genome, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("metaheur: truncated migrant payload")
	}
	n := int(binary.LittleEndian.Uint32(data))
	off := 4
	out := make([]genome, 0, n)
	for i := 0; i < n; i++ {
		if off+4 > len(data) {
			return nil, fmt.Errorf("metaheur: truncated migrant %d", i)
		}
		k := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if k != prob.Ckt.NumMovable() || off+4*k > len(data) {
			return nil, fmt.Errorf("metaheur: migrant %d has bad genome length %d", i, k)
		}
		perm := make([]netlist.CellID, k)
		for j := range perm {
			perm[j] = netlist.CellID(binary.LittleEndian.Uint32(data[off:]))
			off += 4
		}
		out = append(out, genome{perm: perm, fitness: -1})
	}
	return out, nil
}
