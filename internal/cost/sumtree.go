package cost

// sumTree is a fixed-shape pairwise summation tree over n float64 leaves,
// padded to the next power of two with zeros. Every internal node is the
// rounded sum of its two children, so the root is a deterministic function
// of the leaf values alone: setting one leaf and re-propagating its
// log-depth root path yields exactly the bits of a full bottom-up rebuild.
// That determinism is what lets an O(dirty·log n) update stay bitwise
// identical to the from-scratch reference evaluation.
type sumTree struct {
	size int       // leaf capacity: smallest power of two >= n
	node []float64 // 1-indexed heap layout; leaves at [size, size+n)
}

func newSumTree(n int) sumTree {
	size := 1
	for size < n {
		size <<= 1
	}
	return sumTree{size: size, node: make([]float64, 2*size)}
}

// rebuild refills all n leaves from the generator and recombines bottom-up.
func (t *sumTree) rebuild(n int, leaf func(i int) float64) {
	for i := 0; i < n; i++ {
		t.node[t.size+i] = leaf(i)
	}
	for k := t.size - 1; k >= 1; k-- {
		t.node[k] = t.node[2*k] + t.node[2*k+1]
	}
}

// set replaces leaf i and re-propagates its root path. Leaf values are
// non-negative products (length × weight), so the bitwise-equality
// shortcut on == never confuses ±0.
func (t *sumTree) set(i int, v float64) {
	k := t.size + i
	if t.node[k] == v {
		return
	}
	t.node[k] = v
	for k >>= 1; k >= 1; k >>= 1 {
		t.node[k] = t.node[2*k] + t.node[2*k+1]
	}
}

// value returns the tree sum.
func (t *sumTree) value() float64 { return t.node[1] }

func (t *sumTree) snapshot() []float64 { return append([]float64(nil), t.node...) }

func (t *sumTree) restore(node []float64) { copy(t.node, node) }
