// Package cost is the pluggable incremental objective pipeline behind the
// SimE engine's multi-objective evaluation. Each cost term of the fuzzy
// aggregation — wirelength, power, delay, and any future objective — is an
// Objective with Full / ApplyDirty / Snapshot-Restore semantics:
//
//	Full        recompute from every committed net length (the reference
//	            path, doubling as the periodic drift guard)
//	ApplyDirty  fold only the re-estimated dirty nets in, in
//	            O(|dirty|·polylog), bitwise identical to Full
//	Snapshot    copy the cached state; Restore reinstates it
//
// The bitwise contract is what lets the engine's incremental mode follow
// the exact trajectory of the Config.DisableIncremental reference: the
// weighted-length objectives accumulate through a fixed-shape pairwise
// summation tree (every partial sum is a deterministic function of the
// leaves, so replacing one leaf and re-propagating its root path yields
// the same bits as a full bottom-up rebuild), and the delay objective's
// incremental STA (timing.Inc) re-propagates pure per-cell recurrences
// whose fixpoint is independent of the update order.
//
// Two optional capability interfaces tell the engine how an objective
// contributes to per-cell goodness and allocation trial weighting:
// LengthWeighted (wirelength, power: a per-net weight table) and
// CellScored (delay: a direct per-cell score plus a per-net trial weight).
// A new objective — congestion, say — plugs in by implementing Objective
// plus whichever capability fits, with no engine surgery.
package cost

import (
	"fmt"
	"time"

	"simevo/internal/fuzzy"
	"simevo/internal/netlist"
	"simevo/internal/telemetry"
	"simevo/internal/timing"
)

// Objective is one incrementally maintained cost term.
type Objective interface {
	// Bit identifies the objective in the fuzzy aggregation.
	Bit() fuzzy.Objectives
	// Name is the stable identifier used in phase reports.
	Name() string
	// Full recomputes the cost from every committed net length.
	Full(lengths []float64) float64
	// ApplyDirty folds the re-estimated lengths of the dirty nets into
	// the cached state and returns the updated cost. The result is
	// bitwise identical to Full over the same lengths.
	ApplyDirty(dirty []netlist.NetID, lengths []float64) float64
	// Value returns the cost of the last Full/ApplyDirty.
	Value() float64
	// Snapshot copies the cached state; Restore reinstates it. The
	// snapshot is opaque and only valid for the objective that made it.
	Snapshot() Snapshot
	Restore(Snapshot)
}

// Snapshot is an opaque copy of one objective's cached state.
type Snapshot any

// LengthWeighted marks objectives of the form Σ_n w[n]·length[n]. The
// engine folds the weight table into per-cell goodness gain terms and
// allocation trial weights.
type LengthWeighted interface {
	Weights() []float64
}

// CellScored marks objectives whose goodness contribution is a direct
// per-cell score (delay: 1−criticality) rather than a weighted-length
// ratio; NetScore is the objective's allocation trial weight for a net.
type CellScored interface {
	CellScore(id netlist.CellID) float64
	NetScore(n netlist.NetID) float64
}

// weightedSum is a Σ w[n]·length[n] objective over a deterministic
// pairwise summation tree: leaf n holds w[n]·length[n], every internal
// node the rounded sum of its two children. Replacing a leaf and
// re-propagating the log-depth path to the root reproduces exactly the
// bits a bottom-up rebuild would, so ApplyDirty ≡ Full.
type weightedSum struct {
	bit  fuzzy.Objectives
	name string
	w    []float64
	tree sumTree
}

func (o *weightedSum) Bit() fuzzy.Objectives { return o.bit }
func (o *weightedSum) Name() string          { return o.name }
func (o *weightedSum) Weights() []float64    { return o.w }
func (o *weightedSum) Value() float64        { return o.tree.value() }

func (o *weightedSum) Full(lengths []float64) float64 {
	o.tree.rebuild(len(lengths), func(i int) float64 { return o.w[i] * lengths[i] })
	return o.tree.value()
}

func (o *weightedSum) ApplyDirty(dirty []netlist.NetID, lengths []float64) float64 {
	// Past a quarter of the leaves the O(dirty·log n) path walks more
	// nodes than the linear recombine; fall back to Full, which produces
	// the identical bits by construction.
	if len(dirty)*4 >= len(lengths) {
		return o.Full(lengths)
	}
	for _, n := range dirty {
		o.tree.set(int(n), o.w[n]*lengths[n])
	}
	return o.tree.value()
}

func (o *weightedSum) Snapshot() Snapshot { return o.tree.snapshot() }
func (o *weightedSum) Restore(s Snapshot) {
	o.tree.restore(s.([]float64))
}

// delayObjective adapts the incremental STA to the Objective interface.
type delayObjective struct {
	sta *timing.Inc
	val float64
}

func (o *delayObjective) Bit() fuzzy.Objectives { return fuzzy.Delay }
func (o *delayObjective) Name() string          { return "delay" }
func (o *delayObjective) Value() float64        { return o.val }

func (o *delayObjective) Full(lengths []float64) float64 {
	o.val = o.sta.Rebuild(lengths)
	return o.val
}

func (o *delayObjective) ApplyDirty(dirty []netlist.NetID, lengths []float64) float64 {
	o.val = o.sta.Update(dirty, lengths)
	return o.val
}

func (o *delayObjective) CellScore(id netlist.CellID) float64 { return 1 - o.sta.Criticality(id) }
func (o *delayObjective) NetScore(n netlist.NetID) float64    { return o.sta.NetCriticality(n) }

func (o *delayObjective) Snapshot() Snapshot { return o.sta.Snapshot() }
func (o *delayObjective) Restore(s Snapshot) {
	o.sta.Restore(s.(*timing.IncSnapshot))
	o.val = o.sta.MaxDelay()
}

// Sta exposes the underlying analyzer (nil-safe callers should check the
// pipeline's Delay accessor instead).
func (o *delayObjective) Sta() *timing.Inc { return o.sta }

// Pipeline evaluates a set of objectives over one placement's committed
// net lengths, in the canonical wire → power → delay order the fuzzy
// aggregation and the goodness terms depend on. With EnableTiming it
// accumulates per-objective evaluation time for the benchmark phase
// reports; untimed pipelines (the metaheuristics fold objectives on
// every accepted move) skip the clock reads entirely.
type Pipeline struct {
	objs   []Objective
	phases []time.Duration
	timed  bool
	costs  fuzzy.Costs

	// Evaluation-path tallies (plain counters: a pipeline is mutated
	// from one goroutine by contract).
	nFull, nDirty, nFallback uint64
}

// Calls reports how many evaluations took each path: explicit Full
// rebuilds, genuinely incremental ApplyDirty calls, and ApplyDirty
// calls whose dirty batch crossed the n/4 crossover and fell back to a
// full recombine inside the objectives.
func (p *Pipeline) Calls() (full, dirty, dirtyFallback uint64) {
	return p.nFull, p.nDirty, p.nFallback
}

// NewPipeline builds the objective set. acts is the per-net switching
// activity table (shared, not copied); lv and model parameterize the
// delay substrate and are only consulted when the set includes Delay.
// extras are externally constructed objectives (congestion's bin grid
// lives in internal/congest and is handed in by the engine); they are
// appended after the built-in terms so the canonical wire → power →
// delay → extras evaluation order holds.
func NewPipeline(set fuzzy.Objectives, ckt *netlist.Circuit, acts []float64, lv *netlist.Levels, model timing.Model, extras ...Objective) *Pipeline {
	p := &Pipeline{}
	nn := ckt.NumNets()
	if set.Has(fuzzy.Wire) {
		ones := make([]float64, nn)
		for i := range ones {
			ones[i] = 1
		}
		p.objs = append(p.objs, &weightedSum{bit: fuzzy.Wire, name: "wire", w: ones, tree: newSumTree(nn)})
	}
	if set.Has(fuzzy.Power) {
		p.objs = append(p.objs, &weightedSum{bit: fuzzy.Power, name: "power", w: acts, tree: newSumTree(nn)})
	}
	if set.Has(fuzzy.Delay) {
		p.objs = append(p.objs, &delayObjective{sta: timing.NewInc(ckt, lv, model)})
	}
	p.objs = append(p.objs, extras...)
	p.phases = make([]time.Duration, len(p.objs))
	return p
}

// Objectives returns the pipeline's objectives in evaluation order.
func (p *Pipeline) Objectives() []Objective { return p.objs }

// Delay returns the incremental STA behind the delay objective, or nil
// when the set does not include Delay.
func (p *Pipeline) Delay() *timing.Inc {
	for _, o := range p.objs {
		if d, ok := o.(*delayObjective); ok {
			return d.Sta()
		}
	}
	return nil
}

// EnableTiming turns on per-objective phase accounting (Phases). Off by
// default: only pipelines whose phases somebody reads — the engine's,
// surfaced through simevo-bench — should pay the per-evaluation clock
// reads.
func (p *Pipeline) EnableTiming() { p.timed = true }

// Full recomputes every objective from the full length array.
func (p *Pipeline) Full(lengths []float64) fuzzy.Costs {
	p.nFull++
	telemetry.CostFullEvals.Inc()
	for i, o := range p.objs {
		if p.timed {
			t0 := time.Now()
			p.setCost(o.Bit(), o.Full(lengths))
			p.phases[i] += time.Since(t0)
			continue
		}
		p.setCost(o.Bit(), o.Full(lengths))
	}
	return p.costs
}

// ApplyDirty folds a batch of re-estimated dirty nets into every
// objective. The result is bitwise identical to Full over the same
// lengths — the incremental/reference equivalence invariant.
func (p *Pipeline) ApplyDirty(dirty []netlist.NetID, lengths []float64) fuzzy.Costs {
	// Mirror the objectives' shared n/4 crossover so the fallback count
	// reflects what weightedSum and timing.Inc actually did.
	if len(dirty)*4 >= len(lengths) {
		p.nFallback++
		telemetry.CostDirtyFallbackEvals.Inc()
	} else {
		p.nDirty++
		telemetry.CostDirtyEvals.Inc()
	}
	for i, o := range p.objs {
		if p.timed {
			t0 := time.Now()
			p.setCost(o.Bit(), o.ApplyDirty(dirty, lengths))
			p.phases[i] += time.Since(t0)
			continue
		}
		p.setCost(o.Bit(), o.ApplyDirty(dirty, lengths))
	}
	return p.costs
}

// Costs returns the objective values of the last evaluation.
func (p *Pipeline) Costs() fuzzy.Costs { return p.costs }

// Phases returns the accumulated per-objective evaluation time.
func (p *Pipeline) Phases() map[string]time.Duration {
	out := make(map[string]time.Duration, len(p.objs))
	for i, o := range p.objs {
		out[o.Name()] = p.phases[i]
	}
	return out
}

func (p *Pipeline) setCost(bit fuzzy.Objectives, v float64) {
	switch bit {
	case fuzzy.Wire:
		p.costs.Wire = v
	case fuzzy.Power:
		p.costs.Power = v
	case fuzzy.Delay:
		p.costs.Delay = v
	case fuzzy.Congest:
		p.costs.Congest = v
	default:
		panic(fmt.Sprintf("cost: objective bit %#x has no Costs field", uint8(bit)))
	}
}
