package cost

import (
	"math"
	"testing"

	"simevo/internal/fuzzy"
	"simevo/internal/gen"
	"simevo/internal/layout"
	"simevo/internal/netlist"
	"simevo/internal/rng"
	"simevo/internal/timing"
	"simevo/internal/wire"
)

func testSetup(t *testing.T) (*netlist.Circuit, *netlist.Levels, []float64, []float64) {
	t.Helper()
	ckt, err := gen.Benchmark("s1196")
	if err != nil {
		t.Fatal(err)
	}
	lv, err := ckt.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	acts := make([]float64, ckt.NumNets())
	r := rng.New(7)
	for i := range acts {
		acts[i] = 0.5 * r.Float64()
	}
	place := layout.NewRandom(ckt, 0, rng.New(11))
	lengths := wire.NewEvaluator(ckt, wire.Steiner).Lengths(place, nil)
	return ckt, lv, acts, lengths
}

// TestSumTreeUpdateMatchesRebuild is the bitwise contract of the
// weighted-length objectives: folding arbitrary leaf changes in one at a
// time must land on exactly the bits a full bottom-up rebuild produces.
func TestSumTreeUpdateMatchesRebuild(t *testing.T) {
	r := rng.New(42)
	for _, n := range []int{1, 2, 3, 17, 64, 1000} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64() * 100
		}
		inc := newSumTree(n)
		inc.rebuild(n, func(i int) float64 { return vals[i] })
		for round := 0; round < 50; round++ {
			for k := 0; k < 1+n/10; k++ {
				vals[r.Intn(n)] = r.Float64() * 100
			}
			for i := range vals {
				inc.set(i, vals[i]) // unchanged leaves short-circuit
			}
			ref := newSumTree(n)
			ref.rebuild(n, func(i int) float64 { return vals[i] })
			if inc.value() != ref.value() {
				t.Fatalf("n=%d round=%d: incremental %v != rebuild %v (diff %g)",
					n, round, inc.value(), ref.value(), inc.value()-ref.value())
			}
		}
	}
}

// TestPipelineApplyDirtyMatchesFull drives the full pipeline (wire, power,
// delay) through random dirty-net batches and checks every objective stays
// bitwise identical to a from-scratch Full over the same lengths.
func TestPipelineApplyDirtyMatchesFull(t *testing.T) {
	ckt, lv, acts, lengths := testSetup(t)
	model := timing.DefaultModel()
	incPipe := NewPipeline(fuzzy.WirePowerDelay, ckt, acts, lv, model)
	refPipe := NewPipeline(fuzzy.WirePowerDelay, ckt, acts, lv, model)

	got := incPipe.Full(lengths)
	want := refPipe.Full(lengths)
	if got != want {
		t.Fatalf("initial Full mismatch: %+v vs %+v", got, want)
	}

	r := rng.New(99)
	var dirty []netlist.NetID
	for round := 0; round < 200; round++ {
		dirty = dirty[:0]
		for k := 0; k < 1+r.Intn(20); k++ {
			n := netlist.NetID(r.Intn(ckt.NumNets()))
			lengths[n] = math.Abs(lengths[n] + (r.Float64()-0.5)*40)
			dirty = append(dirty, n)
		}
		got = incPipe.ApplyDirty(dirty, lengths)
		want = refPipe.Full(lengths)
		if got != want {
			t.Fatalf("round %d: ApplyDirty %+v != Full %+v", round, got, want)
		}
	}
}

// TestSnapshotRestore checks the Snapshot/Restore half of the Objective
// contract: restoring returns every objective to the saved state, after
// which updates replay onto the same bits.
func TestSnapshotRestore(t *testing.T) {
	ckt, lv, acts, lengths := testSetup(t)
	pipe := NewPipeline(fuzzy.WirePowerDelay, ckt, acts, lv, timing.DefaultModel())
	pipe.Full(lengths)

	type saved struct {
		snap Snapshot
		val  float64
	}
	snaps := make([]saved, len(pipe.Objectives()))
	for i, o := range pipe.Objectives() {
		snaps[i] = saved{o.Snapshot(), o.Value()}
	}

	perturbed := append([]float64(nil), lengths...)
	dirty := []netlist.NetID{0, 1, 2, 5, 9}
	for _, n := range dirty {
		perturbed[n] += 17
	}
	pipe.ApplyDirty(dirty, perturbed)

	for i, o := range pipe.Objectives() {
		o.Restore(snaps[i].snap)
		if o.Value() != snaps[i].val {
			t.Fatalf("%s: restored value %v, saved %v", o.Name(), o.Value(), snaps[i].val)
		}
	}
	// Replaying the same dirty batch after the restore must reproduce the
	// perturbed values bit for bit.
	again := pipe.ApplyDirty(dirty, perturbed)
	ref := NewPipeline(fuzzy.WirePowerDelay, ckt, acts, lv, timing.DefaultModel()).Full(perturbed)
	if again != ref {
		t.Fatalf("post-restore replay %+v != reference %+v", again, ref)
	}
}

// TestPipelineObjectiveOrder pins the canonical wire → power → delay
// evaluation order the fuzzy aggregation and goodness terms rely on.
func TestPipelineObjectiveOrder(t *testing.T) {
	ckt, lv, acts, _ := testSetup(t)
	pipe := NewPipeline(fuzzy.WirePowerDelay, ckt, acts, lv, timing.DefaultModel())
	var names []string
	for _, o := range pipe.Objectives() {
		names = append(names, o.Name())
	}
	want := []string{"wire", "power", "delay"}
	for i := range want {
		if i >= len(names) || names[i] != want[i] {
			t.Fatalf("objective order %v, want %v", names, want)
		}
	}
	if pipe.Delay() == nil {
		t.Fatal("Delay() accessor returned nil with delay active")
	}
	if NewPipeline(fuzzy.WirePower, ckt, acts, lv, timing.DefaultModel()).Delay() != nil {
		t.Fatal("Delay() accessor non-nil without delay")
	}
}
