package parallel

import (
	"math"
	"testing"

	"simevo/internal/core"
	"simevo/internal/fuzzy"
	"simevo/internal/gen"
	"simevo/internal/mpi"
)

func boolPtr(b bool) *bool { return &b }

// detOpts disables compute measurement so virtual time (and thus Type III
// scheduling) is deterministic in tests.
func detOpts(procs int) Options {
	net := mpi.FastEthernet()
	return Options{Procs: procs, Net: &net, MeasureCompute: boolPtr(false)}
}

func testProblem(t testing.TB, obj fuzzy.Objectives, iters int, seed uint64) *core.Problem {
	t.Helper()
	ckt, err := gen.Generate(gen.Params{
		Name: "par-t", Gates: 120, DFFs: 8, PIs: 6, POs: 6, Depth: 8, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(obj)
	cfg.MaxIters = iters
	cfg.Seed = seed
	prob, err := core.NewProblem(ckt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return prob
}

// --- Row patterns ---

func TestFixedPatternShapes(t *testing.T) {
	p := FixedPattern{}
	even := p.Assign(0, 10, 3)
	if err := validateAssignment(even, 10); err != nil {
		t.Fatalf("even assignment: %v", err)
	}
	// Contiguous blocks in even iterations.
	for _, rows := range even {
		for i := 1; i < len(rows); i++ {
			if rows[i] != rows[i-1]+1 {
				t.Fatalf("even iteration rows not contiguous: %v", rows)
			}
		}
	}
	odd := p.Assign(1, 10, 3)
	if err := validateAssignment(odd, 10); err != nil {
		t.Fatalf("odd assignment: %v", err)
	}
	// Strided by m in odd iterations: slave j holds rows j, j+m, ...
	for j, rows := range odd {
		for i, r := range rows {
			if r != j+i*3 {
				t.Fatalf("odd iteration rank %d rows = %v, want stride 3", j, rows)
			}
		}
	}
}

func TestRandomPatternValidAndSeeded(t *testing.T) {
	a := NewRandomPattern(42)
	b := NewRandomPattern(42)
	for iter := 0; iter < 5; iter++ {
		pa := a.Assign(iter, 13, 4)
		if err := validateAssignment(pa, 13); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		pb := b.Assign(iter, 13, 4)
		for j := range pa {
			if len(pa[j]) != len(pb[j]) {
				t.Fatal("same-seed random patterns diverged")
			}
			for i := range pa[j] {
				if pa[j][i] != pb[j][i] {
					t.Fatal("same-seed random patterns diverged")
				}
			}
		}
	}
}

func TestRandomPatternVariesAcrossIterations(t *testing.T) {
	p := NewRandomPattern(1)
	a := p.Assign(0, 12, 3)
	b := p.Assign(1, 12, 3)
	same := true
	for j := range a {
		for i := range a[j] {
			if i >= len(b[j]) || a[j][i] != b[j][i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("random pattern repeated the identical assignment")
	}
}

// --- Codec ---

func TestAssignmentCodecRoundTrip(t *testing.T) {
	in := [][]int{{0, 3, 5}, {1, 2}, {4, 6, 7, 8}}
	payload := append(encodeAssignment(in), 0xde, 0xad)
	out, rest, err := decodeAssignment(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 2 || rest[0] != 0xde {
		t.Fatalf("trailing bytes not preserved: %v", rest)
	}
	if len(out) != len(in) {
		t.Fatalf("rank count %d != %d", len(out), len(in))
	}
	for j := range in {
		for i := range in[j] {
			if out[j][i] != in[j][i] {
				t.Fatalf("rank %d rows %v != %v", j, out[j], in[j])
			}
		}
	}
}

func TestFloatCodecRoundTrip(t *testing.T) {
	in := []float64{0, 1, -1, 0.5, math.Pi, math.Inf(1)}
	out, err := decodeF64s(encodeF64s(in))
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("value %d: %v != %v", i, out[i], in[i])
		}
	}
	if _, err := decodeF64s(make([]byte, 9)); err == nil {
		t.Fatal("odd-length payload accepted")
	}
}

// --- Type I ---

func TestTypeIMatchesSerialTrajectory(t *testing.T) {
	// The defining invariant of Type I parallelization: the search
	// trajectory is identical to the serial algorithm for the same seed.
	const iters = 8
	serial := testProblem(t, fuzzy.WirePower, iters, 5).NewEngine(0).Run()

	for _, p := range []int{2, 3, 4} {
		prob := testProblem(t, fuzzy.WirePower, iters, 5)
		res, err := RunTypeI(prob, detOpts(p))
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if res.BestMu != serial.BestMu {
			t.Fatalf("p=%d: best μ %v != serial %v", p, res.BestMu, serial.BestMu)
		}
		if res.Best.Fingerprint() != serial.Best.Fingerprint() {
			t.Fatalf("p=%d: best placement differs from serial", p)
		}
		if len(res.MuTrace) != len(serial.MuTrace) {
			t.Fatalf("p=%d: trace lengths %d vs %d", p, len(res.MuTrace), len(serial.MuTrace))
		}
		for i := range res.MuTrace {
			if res.MuTrace[i] != serial.MuTrace[i] {
				t.Fatalf("p=%d: μ trace diverges at %d: %v vs %v",
					p, i, res.MuTrace[i], serial.MuTrace[i])
			}
		}
	}
}

func TestTypeICommunicationAccounted(t *testing.T) {
	prob := testProblem(t, fuzzy.WirePower, 5, 5)
	res, err := RunTypeI(prob, detOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.VirtualTime <= 0 {
		t.Fatal("virtual time not accounted")
	}
	st := res.RankStats
	if st[0].BytesSent == 0 || st[1].BytesSent == 0 {
		t.Fatalf("no traffic recorded: %+v", st)
	}
	// Master broadcasts the placement every iteration; slaves return
	// goodness chunks every iteration.
	if st[1].MsgsRecv < 5 {
		t.Fatalf("slave received %d messages, want >= iterations", st[1].MsgsRecv)
	}
}

func TestTypeIRejectsBadProcs(t *testing.T) {
	prob := testProblem(t, fuzzy.WirePower, 3, 1)
	if _, err := RunTypeI(prob, detOpts(1)); err == nil {
		t.Fatal("p=1 accepted")
	}
}

// --- Type II ---

func TestTypeIIProducesValidSolutions(t *testing.T) {
	for _, pattern := range []RowPattern{FixedPattern{}, NewRandomPattern(3)} {
		prob := testProblem(t, fuzzy.WirePower, 30, 6)
		opt := detOpts(3)
		opt.Pattern = pattern
		res, err := RunTypeII(prob, opt)
		if err != nil {
			t.Fatalf("%s: %v", pattern.Name(), err)
		}
		if err := res.Best.Validate(); err != nil {
			t.Fatalf("%s: best placement invalid: %v", pattern.Name(), err)
		}
		if res.BestMu <= 0 {
			t.Fatalf("%s: no quality achieved", pattern.Name())
		}
		if res.Iters != 30 {
			t.Fatalf("%s: ran %d iters, want 30", pattern.Name(), res.Iters)
		}
	}
}

func TestTypeIIImprovesOverInitial(t *testing.T) {
	prob := testProblem(t, fuzzy.WirePower, 40, 6)
	res, err := RunTypeII(prob, detOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	// μ is normalized to 0 at the initial placement.
	if res.BestMu < 0.05 {
		t.Fatalf("Type II did not improve: μ = %v", res.BestMu)
	}
	if res.BestCosts.Wire >= prob.Ref.Wire {
		t.Fatalf("wirelength did not improve: %v vs ref %v", res.BestCosts.Wire, prob.Ref.Wire)
	}
}

func TestTypeIITargetMu(t *testing.T) {
	// Learn a reachable quality first.
	probe := testProblem(t, fuzzy.WirePower, 40, 6)
	ref, err := RunTypeII(probe, detOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	target := ref.BestMu * 0.6

	prob := testProblem(t, fuzzy.WirePower, 40, 6)
	opt := detOpts(3)
	opt.TargetMu = target
	res, err := RunTypeII(prob, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReachedTarget {
		t.Fatalf("target μ %v not reached (best %v)", target, res.BestMu)
	}
	if res.TimeToTarget <= 0 {
		t.Fatal("TimeToTarget not recorded")
	}
	if res.Iters >= ref.Iters {
		t.Fatalf("target stop did not shorten the run: %d vs %d", res.Iters, ref.Iters)
	}
}

func TestTypeIIRejectsTooManyRanks(t *testing.T) {
	prob := testProblem(t, fuzzy.WirePower, 3, 1)
	opt := detOpts(64) // more ranks than rows
	if _, err := RunTypeII(prob, opt); err == nil {
		t.Fatal("more ranks than rows accepted")
	}
}

// --- Type III ---

func TestTypeIIIRuns(t *testing.T) {
	prob := testProblem(t, fuzzy.WirePower, 25, 8)
	opt := detOpts(3)
	opt.Retry = 5
	res, err := RunTypeIII(prob, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.BestMu <= 0 {
		t.Fatalf("no best solution: μ = %v", res.BestMu)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatalf("best placement invalid: %v", err)
	}
	if res.BestCosts.Wire <= 0 {
		t.Fatal("best costs not recovered")
	}
}

func TestTypeIIIBestAtLeastSingleSearcher(t *testing.T) {
	// The store's final best must be >= the best of a single serial search
	// with the same stream as searcher rank 1 (the store can only improve
	// over the solutions reported to it).
	prob := testProblem(t, fuzzy.WirePower, 25, 8)
	single := prob.EngineFromReference(1).Run()

	prob2 := testProblem(t, fuzzy.WirePower, 25, 8)
	opt := detOpts(4)
	opt.Retry = 1000000 // no exchanges: searchers are fully independent
	res, err := RunTypeIII(prob2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestMu < single.BestMu-1e-12 {
		t.Fatalf("store best %v below searcher-1 independent best %v", res.BestMu, single.BestMu)
	}
}

func TestTypeIIIRejectsSmallCluster(t *testing.T) {
	prob := testProblem(t, fuzzy.WirePower, 5, 1)
	if _, err := RunTypeIII(prob, detOpts(2)); err == nil {
		t.Fatal("p=2 accepted for Type III")
	}
}

func TestTypeIIIRetryAffectsTraffic(t *testing.T) {
	run := func(retry int) int {
		prob := testProblem(t, fuzzy.WirePower, 25, 8)
		opt := detOpts(3)
		opt.Retry = retry
		res, err := RunTypeIII(prob, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.RankStats[1].MsgsSent + res.RankStats[2].MsgsSent
	}
	frequent := run(2)
	rare := run(1000000)
	if frequent <= rare {
		t.Fatalf("low retry threshold should cause more traffic: %d vs %d", frequent, rare)
	}
}

func TestTypeIIIDiversify(t *testing.T) {
	// Section 7 extension: per-thread allocation orders. The run must be
	// valid and produce a result at least as good as the plain variant's
	// weakest searcher would (sanity: > 0 and valid).
	prob := testProblem(t, fuzzy.WirePower, 25, 8)
	opt := detOpts(4)
	opt.Retry = 5
	opt.Diversify = true
	res, err := RunTypeIII(prob, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestMu <= 0 {
		t.Fatalf("diversified Type III μ = %v", res.BestMu)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatalf("diversified Type III best invalid: %v", err)
	}
}

// TestTypeIIWithParallelEval runs the Type II strategy with the goodness
// evaluation fanned across the engine pool on every rank — the
// configuration the race jobs exercise — and asserts the trajectory is
// identical to the all-serial run. The circuit is sized so each rank's
// row domain clears the parallel-evaluation threshold.
func TestTypeIIWithParallelEval(t *testing.T) {
	ckt, err := gen.Generate(gen.Params{
		Name: "par-eval", Gates: 430, DFFs: 16, PIs: 8, POs: 8, Depth: 10, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(evalWorkers, allocWorkers int) *Result {
		cfg := core.DefaultConfig(fuzzy.WirePower)
		cfg.MaxIters = 8
		cfg.Seed = 5
		cfg.EvalWorkers = evalWorkers
		cfg.AllocWorkers = allocWorkers
		prob, err := core.NewProblem(ckt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunTypeII(prob, detOpts(2))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(0, -1)
	par := run(3, 3)
	if serial.BestMu != par.BestMu {
		t.Fatalf("Type II with EvalWorkers diverged: best μ %v vs %v", par.BestMu, serial.BestMu)
	}
	if serial.Best.Fingerprint() != par.Best.Fingerprint() {
		t.Fatal("Type II with EvalWorkers reached a different best placement")
	}
}
