package parallel

import (
	"fmt"

	"simevo/internal/core"
	"simevo/internal/layout"
)

// SearcherConfig describes one portfolio slot of a Type III run: the
// optimizer kind a searcher rank executes and its per-rank knobs. The
// store races the configured searchers against each other, tracks each
// rank's improvement rate, and reallocates consultation budgets — the
// portfolio-racer generalization of the paper's homogeneous Type III
// (grounded in BBOPlace-Bench's cross-optimizer comparison).
type SearcherConfig struct {
	// Kind selects the optimizer: "sime" (default) runs the SimE engine.
	// "sa" and "ts" are reserved slots behind the same Searcher interface
	// — constructing them returns a descriptive error until the annealing
	// and tabu searchers are ported onto the exchange protocol.
	Kind string
	// AllocOrder is the SimE allocation processing order for this slot.
	AllocOrder core.AllocOrder
	// Retry overrides the rank's initial consultation budget (0 uses the
	// run's Options.Retry). The store may cull or clone it afterwards.
	Retry int
	// SpecWindow is the number of speculative iterations a searcher runs
	// after adopting a remote best before the accept/reject decision
	// (0 = defaultSpecWindow).
	SpecWindow int
}

// defaultSpecWindow is the speculation horizon: long enough for an
// adopted solution to prove productive, short enough that a reject
// wastes little budget.
const defaultSpecWindow = 8

// Searcher is the optimizer interface a Type III portfolio slot runs
// behind: one local search step at a time, best-so-far tracking, and the
// speculative exchange hooks (snapshot, restore, patched adoption). The
// SimE engine implements it today; SA and TS slots plug in here.
type Searcher interface {
	Step() core.IterStats
	EvaluateCosts()
	BestMu() float64
	BestPlacement() *layout.Placement
	Snapshot() *core.SearchSnapshot
	Restore(*core.SearchSnapshot)
	// Adopt installs a foreign placement via the patched fast path (warm
	// incremental state preserved); AdoptFull rebuilds from scratch — the
	// legacy synchronous exchange's adoption cost.
	Adopt(*layout.Placement)
	AdoptFull(*layout.Placement)
}

// simeSearcher adapts *core.Engine to the Searcher interface.
type simeSearcher struct{ eng *core.Engine }

func (s simeSearcher) Step() core.IterStats                { return s.eng.Step() }
func (s simeSearcher) EvaluateCosts()                      { s.eng.EvaluateCosts() }
func (s simeSearcher) BestMu() float64                     { return s.eng.BestMu() }
func (s simeSearcher) BestPlacement() *layout.Placement    { return s.eng.BestPlacement() }
func (s simeSearcher) Snapshot() *core.SearchSnapshot      { return s.eng.SnapshotSearch() }
func (s simeSearcher) Restore(snap *core.SearchSnapshot)   { s.eng.RestoreSearch(snap) }
func (s simeSearcher) Adopt(p *layout.Placement)           { s.eng.AdoptPlacementPatched(p) }
func (s simeSearcher) AdoptFull(p *layout.Placement)       { s.eng.AdoptPlacement(p) }

// searcherConfigFor resolves the portfolio slot of a searcher rank.
func searcherConfigFor(rank int, opt Options) SearcherConfig {
	var sc SearcherConfig
	if len(opt.Portfolio) > 0 {
		sc = opt.Portfolio[(rank-1)%len(opt.Portfolio)]
	} else if opt.Diversify {
		// Section 7's diversification proposal: a different allocation
		// function per thread steers the searches apart.
		sc.AllocOrder = core.AllocOrder((rank - 1) % 3)
	}
	if sc.Kind == "" {
		sc.Kind = "sime"
	}
	if sc.SpecWindow <= 0 {
		sc.SpecWindow = defaultSpecWindow
	}
	return sc
}

// newSearcher constructs the rank's portfolio searcher. Every searcher
// starts from the canonical reference placement with its own random
// stream (the paper's Table 4 setup).
func newSearcher(prob *core.Problem, rank int, sc SearcherConfig) (Searcher, error) {
	switch sc.Kind {
	case "sime":
		eng := prob.EngineFromReference(uint64(rank))
		eng.SetAllocOrder(sc.AllocOrder)
		return simeSearcher{eng: eng}, nil
	case "sa", "ts":
		return nil, fmt.Errorf("parallel: portfolio searcher kind %q is a reserved slot (not yet ported onto the exchange protocol)", sc.Kind)
	default:
		return nil, fmt.Errorf("parallel: unknown portfolio searcher kind %q (have sime; sa and ts are reserved)", sc.Kind)
	}
}
