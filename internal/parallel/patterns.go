// Package parallel implements the paper's three SimE parallelization
// strategies on the virtual-time cluster of internal/mpi:
//
//	Type I   — low-level parallelism: goodness evaluation is distributed
//	           over all ranks; the master performs selection and allocation.
//	           The search trajectory is identical to the serial engine.
//	Type II  — domain decomposition: placement rows are partitioned among
//	           ranks and every SimE operator (including allocation) runs on
//	           the local rows; the master merges and re-partitions each
//	           iteration. Fixed and random row patterns are provided.
//	Type III — parallel searches: independent SimE threads share a central
//	           best-solution store and consult it after a retry threshold
//	           of unproductive iterations.
package parallel

import (
	"fmt"

	"simevo/internal/rng"
)

// RowPattern assigns placement rows to ranks for one Type II iteration.
type RowPattern interface {
	// Assign returns a partition of rows [0, numRows) into ranks slices;
	// every row appears in exactly one slice and every slice is non-empty
	// (numRows >= ranks is required).
	Assign(iter, numRows, ranks int) [][]int
	Name() string
}

// FixedPattern is the Kling-Banerjee alternating row allocation the paper
// cites from [5]: in even iterations slave j receives a contiguous slice of
// K/m rows; in odd iterations it receives the strided set j, j+m, j+2m, ...
// With this pair of assignments a cell can reach any grid position in at
// most two iterations.
type FixedPattern struct{}

// Name implements RowPattern.
func (FixedPattern) Name() string { return "fixed" }

// Assign implements RowPattern.
func (FixedPattern) Assign(iter, numRows, ranks int) [][]int {
	out := make([][]int, ranks)
	if iter%2 == 0 {
		// Contiguous blocks of ~K/m rows.
		for j := 0; j < ranks; j++ {
			lo := j * numRows / ranks
			hi := (j + 1) * numRows / ranks
			for r := lo; r < hi; r++ {
				out[j] = append(out[j], r)
			}
		}
		return out
	}
	// Strided: slave j gets rows j, j+m, j+2m, ...
	for r := 0; r < numRows; r++ {
		out[r%ranks] = append(out[r%ranks], r)
	}
	return out
}

// RandomPattern deals a fresh random permutation of the rows into
// contiguous groups every iteration — the random row allocation of the
// authors' earlier work [7], which the paper finds gives better speedups
// and qualities than the fixed pattern.
type RandomPattern struct {
	rnd *rng.R
}

// NewRandomPattern creates the pattern with its own deterministic stream.
func NewRandomPattern(seed uint64) *RandomPattern {
	return &RandomPattern{rnd: rng.NewStream(seed, 0x70a77e24)}
}

// Name implements RowPattern.
func (*RandomPattern) Name() string { return "random" }

// Assign implements RowPattern.
func (p *RandomPattern) Assign(iter, numRows, ranks int) [][]int {
	perm := p.rnd.Perm(numRows)
	out := make([][]int, ranks)
	for j := 0; j < ranks; j++ {
		lo := j * numRows / ranks
		hi := (j + 1) * numRows / ranks
		out[j] = append(out[j], perm[lo:hi]...)
	}
	return out
}

// validateAssignment checks the partition property (used in tests and
// defensively by the master).
func validateAssignment(assign [][]int, numRows int) error {
	seen := make([]bool, numRows)
	count := 0
	for j, rows := range assign {
		if len(rows) == 0 {
			return fmt.Errorf("parallel: rank %d received no rows", j)
		}
		for _, r := range rows {
			if r < 0 || r >= numRows {
				return fmt.Errorf("parallel: row %d out of range", r)
			}
			if seen[r] {
				return fmt.Errorf("parallel: row %d assigned twice", r)
			}
			seen[r] = true
			count++
		}
	}
	if count != numRows {
		return fmt.Errorf("parallel: %d of %d rows assigned", count, numRows)
	}
	return nil
}
