package parallel

import (
	"sort"

	"simevo/internal/mpi"
	"simevo/internal/transport"
)

// FaultComm is the degraded-execution contract a real transport's rank-0
// handle offers on top of Comm: non-panicking send/receive variants that
// attribute failures to ranks, root-half collectives that skip dead ranks,
// and expulsion of ranks whose frames arrive corrupt. The TCP
// transport.Group implements it; the simulated cluster does not (simulated
// ranks cannot fail), so sim runs always take the plain code path and
// their trajectories are untouched by the fault machinery.
type FaultComm interface {
	Comm
	TrySend(dst, tag int, data []byte) error
	TryRecv(src, tag int) ([]byte, mpi.Status, error)
	BcastRoot(data []byte)
	GatherRoot(own []byte) [][]byte
	DropRank(rank int, err error)
	FailedRanks() map[int]error
}

var _ FaultComm = (*transport.Group)(nil)

// tolerantComm returns the fault-tolerant view of c when the options ask
// for degraded execution and the transport supports it; nil otherwise.
func tolerantComm(c Comm, opt Options) FaultComm {
	if !opt.Tolerate {
		return nil
	}
	fc, _ := c.(FaultComm)
	return fc
}

// failedRankList flattens a FaultComm's failure map into the ascending
// rank list a Result reports.
func failedRankList(fc FaultComm) []int {
	failed := fc.FailedRanks()
	if len(failed) == 0 {
		return nil
	}
	out := make([]int, 0, len(failed))
	for r := range failed {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// redistributeRows moves failed ranks' row shares onto the survivors
// (rank 0 included), round-robin so no survivor inherits a pathological
// share. Surviving ranks keep their own share unchanged — their view of
// the exchange pattern is exactly the no-fault one plus inherited rows.
func redistributeRows(assign [][]int, failed map[int]error) {
	if len(failed) == 0 {
		return
	}
	live := make([]int, 0, len(assign))
	for r := range assign {
		if failed[r] == nil {
			live = append(live, r)
		}
	}
	i := 0
	for r := range assign {
		if failed[r] == nil {
			continue
		}
		for _, row := range assign[r] {
			dst := live[i%len(live)]
			assign[dst] = append(assign[dst], row)
			i++
		}
		assign[r] = nil
	}
}
