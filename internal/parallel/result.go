package parallel

import (
	"context"
	"sort"
	"time"

	"simevo/internal/core"
	"simevo/internal/fuzzy"
	"simevo/internal/layout"
	"simevo/internal/mpi"
	"simevo/internal/telemetry"
)

// Options configures a parallel run.
type Options struct {
	// Procs is the number of cluster ranks (the paper's p). Type III
	// requires Procs >= 3 (one rank is the central store).
	Procs int
	// Net is the interconnect model (default mpi.FastEthernet).
	Net *mpi.NetModel
	// MeasureCompute charges real compute time to the virtual clocks
	// (default true; disable only in deterministic tests).
	MeasureCompute *bool
	// TargetMu, when positive, records the virtual time at which the best
	// quality first reached the target (the paper's quality-normalized
	// timing for Tables 2-3) and stops the run early.
	TargetMu float64
	// Pattern is the Type II row allocation pattern (default FixedPattern).
	Pattern RowPattern
	// FullBroadcast disables the Type II delta codec: every iteration
	// broadcasts the full placement (and slaves rebuild their net-cost
	// state from scratch) instead of the moved-cell deltas that patch the
	// slaves' warm incremental state. The two modes follow bitwise-identical
	// trajectories; this switch is the reference for equivalence tests and
	// for measuring the broadcast-byte savings.
	FullBroadcast bool
	// Retry is the Type III retry threshold (iterations without
	// improvement before consulting the central store).
	Retry int
	// Diversify gives each Type III searcher a different allocation order
	// — the search-diversification idea of the paper's Section 7.
	Diversify bool
	// SyncExchange selects the legacy synchronous Type III protocol: a
	// searcher that consults the store blocks in a request/reply round
	// trip and rebuilds its cost state on adoption. The default is the
	// asynchronous epoch-tagged protocol (post/poll/news frames,
	// speculative adoption with snapshot/restore) — see typeiii.go. The
	// synchronous mode remains as the exchange-overhead baseline and for
	// transports without non-blocking receives.
	SyncExchange bool
	// Portfolio assigns per-rank searcher configurations for Type III:
	// searcher rank r runs Portfolio[(r-1) % len(Portfolio)]. Empty runs
	// the homogeneous SimE configuration (honoring Diversify). The store
	// keeps per-searcher improvement-rate statistics and reallocates
	// consultation budgets between winners and losers (see typeiii.go).
	Portfolio []SearcherConfig
	// Context cancels a run cooperatively: the master (Type I/II) or every
	// searcher (Type III) checks it between iterations, winds the cluster
	// down cleanly, and the best-so-far result is returned. Nil never
	// cancels.
	Context context.Context
	// Tolerate lets the master degrade instead of fail when a rank is lost
	// mid-run (connection drop, heartbeat timeout, corrupt frames). The
	// failed rank is removed from the exchange pattern, its share of the
	// work is redistributed among the survivors, and the run finishes,
	// recording the loss in Result.FailedRanks. Requires a transport that
	// implements FaultComm (the TCP Group); the simulated cluster ignores
	// it — simulated ranks cannot fail. A fault-free tolerant run follows
	// a bitwise-identical trajectory to a non-tolerant one.
	Tolerate bool
	// Progress, when non-nil, receives per-iteration statistics from the
	// master rank (Type I/II) or the first searcher rank (Type III, whose
	// Mu is that searcher's, not the global best). Callbacks run on a
	// cluster rank goroutine; they must be fast and safe for concurrent
	// use.
	Progress core.Progress
}

// cancelled reports whether the run's context has been cancelled.
func (o Options) cancelled() bool {
	return o.Context != nil && o.Context.Err() != nil
}

// report invokes the progress callback when one is configured.
func (o Options) report(st core.IterStats) {
	if o.Progress != nil {
		o.Progress(st)
	}
}

func (o Options) net() mpi.NetModel {
	if o.Net != nil {
		return *o.Net
	}
	return mpi.FastEthernet()
}

func (o Options) measure() bool {
	if o.MeasureCompute != nil {
		return *o.MeasureCompute
	}
	return true
}

// TrafficStats is implemented by transports that account per-rank traffic
// themselves (the TCP transport's coordinator Group). The simulated
// cluster's accounting comes from mpi.Cluster.Stats instead, attached by
// the RunType* drivers.
type TrafficStats interface {
	RankStats() []mpi.RankStats
}

// attachRankStats fills res.RankStats from the transport's own accounting
// when it keeps any — the rank-0 entry points call it so real-cluster runs
// report bytes/messages per rank just like simulated ones.
func attachRankStats(c any, res *Result) {
	if res == nil || res.RankStats != nil {
		return
	}
	if ts, ok := c.(TrafficStats); ok {
		res.RankStats = ts.RankStats()
	}
}

// Result reports a parallel run.
type Result struct {
	BestMu    float64
	BestCosts fuzzy.Costs
	Best      *layout.Placement
	Iters     int
	// VirtualTime is the cluster makespan: measured compute plus modeled
	// communication, maximized over ranks.
	VirtualTime time.Duration
	// TimeToTarget is the master's virtual time when BestMu first reached
	// Options.TargetMu; valid when ReachedTarget.
	TimeToTarget  time.Duration
	ReachedTarget bool
	RankStats     []mpi.RankStats
	MuTrace       []float64
	// FailedRanks lists the ranks lost or expelled mid-run when the
	// strategy ran with Options.Tolerate, ascending. Empty on clean runs.
	FailedRanks []int
	// Telemetry is the master engine's per-run counter snapshot (zero
	// for Type III, whose rank 0 is the central store and runs no
	// engine; each searcher's counters feed the process registry).
	Telemetry telemetry.EngineSnapshot
	// Exchange reports the Type III exchange protocol's work: posts,
	// speculative adoptions and rejections, snapshot restores, the
	// store's final epoch, and the per-exchange overhead distribution.
	// Nil for strategies without a central store.
	Exchange *ExchangeStats
}

// ExchangeStats aggregates the Type III exchange activity of one run.
// Posted/Adopted/Rejected/Restores sum over searchers; Searchers carries
// the store's per-rank improvement-rate table (the portfolio racer's
// cull/clone input). RoundNs are the timed exchange segments — for the
// synchronous protocol one blocking store round trip each, for the async
// protocol the non-blocking machinery actually paid per exchange
// (post encode/send, news decode, speculative snapshot/adopt, restore).
type ExchangeStats struct {
	Posted   int
	Adopted  int
	Rejected int
	Restores int
	// StoreEpoch is the store's final best-solution epoch: the number of
	// times the global best improved.
	StoreEpoch uint64
	RoundNs    []int64
	Searchers  []SearcherRate
}

// SearcherRate is the store's view of one searcher's productivity.
type SearcherRate struct {
	Rank  int
	Posts int // improvements posted (or brought by sync requests)
	Wins  int // posts that improved the global best
	Retry int // consultation budget the store last granted the rank
}

// P50RoundNs returns the median timed exchange segment (0 when none were
// recorded).
func (s *ExchangeStats) P50RoundNs() int64 {
	if s == nil || len(s.RoundNs) == 0 {
		return 0
	}
	sorted := append([]int64(nil), s.RoundNs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}
