package parallel

import (
	"bytes"
	"testing"

	"simevo/internal/fuzzy"
	"simevo/internal/layout"
	"simevo/internal/rng"
)

// TestSlotDeltaCodecRoundTrip asserts encode → decode is the identity on
// delta batches produced by real placement diffs.
func TestSlotDeltaCodecRoundTrip(t *testing.T) {
	prob := testProblem(t, fuzzy.WirePower, 5, 2006)
	base := layout.NewRandom(prob.Ckt, 10, rng.New(3))
	snap := base.SnapshotSlots(nil)
	// The target differs from the base by a slot permutation — the shape
	// allocation merges produce (row lengths never change).
	target := base.Clone()
	r := rng.New(9)
	movable := prob.Ckt.Movable()
	cells := movable[:24]
	refs := make([]layout.SlotRef, len(cells))
	for i, id := range cells {
		refs[i] = target.RemoveToHole(id)
	}
	for i, j := range r.Perm(len(cells)) {
		target.FillHole(refs[j], cells[i])
	}
	target.Recompute()
	deltas := target.DiffSlots(snap, nil)
	if len(deltas) == 0 {
		t.Fatal("slot permutation produced no deltas")
	}
	buf := appendSlotDeltas(nil, deltas)
	got, err := decodeSlotDeltas(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(deltas) {
		t.Fatalf("decoded %d deltas, want %d", len(got), len(deltas))
	}
	for i := range got {
		if got[i] != deltas[i] {
			t.Fatalf("delta %d = %+v, want %+v", i, got[i], deltas[i])
		}
	}
	// The round-tripped batch must patch the base to the target state.
	if err := base.ApplySlotDeltas(got); err != nil {
		t.Fatal(err)
	}
	base.Recompute()
	if base.Fingerprint() != target.Fingerprint() {
		t.Fatal("round-tripped deltas did not reproduce the target placement")
	}
}

// FuzzSlotDeltaDecode hardens the delta decoder against corrupt payloads:
// it must return an error or a valid batch, never panic, and must be
// byte-exact on re-encode of whatever it accepts.
func FuzzSlotDeltaDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Add(appendSlotDeltas(nil, []layout.SlotDelta{{Cell: 3, Row: 1, Idx: 2}}))
	f.Add(appendSlotDeltas(nil, []layout.SlotDelta{{Cell: 0, Row: 0, Idx: 0}, {Cell: 9, Row: 4, Idx: 7}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := decodeSlotDeltas(data)
		if err != nil {
			return
		}
		if got := appendSlotDeltas(nil, ds); !bytes.Equal(got, data) {
			t.Fatalf("re-encode of accepted batch differs: %x vs %x", got, data)
		}
	})
}

// TestTypeIIDeltaMatchesFullBroadcast is the delta-codec end-to-end
// invariant: a Type II run with delta broadcasts (slaves patch their warm
// incremental state) follows bitwise the same trajectory as the reference
// full-broadcast run (slaves rebuild from a fresh decode every iteration) —
// and ships measurably fewer broadcast bytes.
func TestTypeIIDeltaMatchesFullBroadcast(t *testing.T) {
	run := func(full bool) *Result {
		prob := testProblem(t, fuzzy.WirePower, 30, 2006)
		opt := detOpts(3)
		opt.FullBroadcast = full
		res, err := RunTypeII(prob, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(true)
	delta := run(false)
	if ref.BestMu != delta.BestMu {
		t.Fatalf("best μ diverged: full %v, delta %v", ref.BestMu, delta.BestMu)
	}
	if ref.Best.Fingerprint() != delta.Best.Fingerprint() {
		t.Fatal("best placements diverged between full and delta broadcasts")
	}
	if len(ref.MuTrace) != len(delta.MuTrace) {
		t.Fatalf("trace lengths %d vs %d", len(ref.MuTrace), len(delta.MuTrace))
	}
	for i := range ref.MuTrace {
		if ref.MuTrace[i] != delta.MuTrace[i] {
			t.Fatalf("μ trace diverged at %d: %v vs %v", i, ref.MuTrace[i], delta.MuTrace[i])
		}
	}
	fullBytes := ref.RankStats[0].BytesSent
	deltaBytes := delta.RankStats[0].BytesSent
	if deltaBytes >= fullBytes {
		t.Fatalf("delta broadcasts sent %d bytes, full %d — no saving", deltaBytes, fullBytes)
	}
	t.Logf("master bytes sent: full %d, delta %d (%.1f%%)",
		fullBytes, deltaBytes, 100*float64(deltaBytes)/float64(fullBytes))
}

// TestTypeIIDeltaMatchesWithRandomPattern repeats the equivalence under the
// random row pattern, whose cross-iteration reshuffling exercises deltas
// spanning every rank's rows.
func TestTypeIIDeltaMatchesWithRandomPattern(t *testing.T) {
	run := func(full bool) *Result {
		prob := testProblem(t, fuzzy.WirePower, 20, 7)
		opt := detOpts(4)
		opt.Pattern = NewRandomPattern(7)
		opt.FullBroadcast = full
		res, err := RunTypeII(prob, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(true)
	delta := run(false)
	if ref.BestMu != delta.BestMu || ref.Best.Fingerprint() != delta.Best.Fingerprint() {
		t.Fatalf("random-pattern trajectories diverged: μ %v vs %v", ref.BestMu, delta.BestMu)
	}
}

// TestTypeIIDeltaMatchesReferenceEngine ties the two switches together:
// delta broadcasts over the incremental engine must equal full broadcasts
// over the from-scratch reference engine — the strongest cross-equivalence
// (wire state warm-patched vs rebuilt per iteration from first principles).
func TestTypeIIDeltaMatchesReferenceEngine(t *testing.T) {
	run := func(full, disableInc bool) *Result {
		prob := testProblem(t, fuzzy.WirePower, 25, 11)
		prob.Cfg.DisableIncremental = disableInc
		opt := detOpts(3)
		opt.FullBroadcast = full
		res, err := RunTypeII(prob, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(true, true)
	delta := run(false, false)
	if ref.BestMu != delta.BestMu {
		t.Fatalf("best μ diverged: reference %v, delta+incremental %v", ref.BestMu, delta.BestMu)
	}
	if ref.Best.Fingerprint() != delta.Best.Fingerprint() {
		t.Fatal("best placements diverged between reference and delta+incremental runs")
	}
}
