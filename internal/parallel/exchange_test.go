package parallel

import (
	"encoding/binary"
	"math"
	"testing"
	"time"

	"simevo/internal/core"
	"simevo/internal/fuzzy"
	"simevo/internal/layout"
	"simevo/internal/mpi"
	"simevo/internal/rng"
)

// TestTypeIIIAsyncDeterministic asserts the acceptance invariant of the
// async exchange on the simulated cluster: with compute measurement off,
// polls join the virtual-time reference schedule, so two runs with the
// same seed follow bitwise-identical exchanges — same best μ, same best
// placement, same store epoch, same exchange counts.
func TestTypeIIIAsyncDeterministic(t *testing.T) {
	run := func() *Result {
		prob := testProblem(t, fuzzy.WirePower, 30, 2006)
		opt := detOpts(4)
		opt.Retry = 5
		res, err := RunTypeIII(prob, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.BestMu != b.BestMu {
		t.Fatalf("best μ not deterministic: %v vs %v", a.BestMu, b.BestMu)
	}
	if a.Best.Fingerprint() != b.Best.Fingerprint() {
		t.Fatal("best placement not deterministic")
	}
	if a.Exchange == nil || b.Exchange == nil {
		t.Fatal("async Type III returned no exchange stats")
	}
	if a.Exchange.StoreEpoch != b.Exchange.StoreEpoch ||
		a.Exchange.Posted != b.Exchange.Posted ||
		a.Exchange.Adopted != b.Exchange.Adopted ||
		a.Exchange.Rejected != b.Exchange.Rejected {
		t.Fatalf("exchange activity not deterministic: %+v vs %+v", a.Exchange, b.Exchange)
	}
	if a.Exchange.StoreEpoch == 0 {
		t.Fatal("store epoch never advanced; no improvement ever reached the store")
	}
	if a.Exchange.Posted == 0 {
		t.Fatal("no posts recorded; the async protocol did not run")
	}
}

// TestTypeIIISyncExchange keeps the legacy blocking protocol working
// behind Options.SyncExchange and reporting its round-trip overhead.
func TestTypeIIISyncExchange(t *testing.T) {
	prob := testProblem(t, fuzzy.WirePower, 25, 2006)
	opt := detOpts(4)
	opt.Retry = 5
	opt.SyncExchange = true
	res, err := RunTypeIII(prob, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestMu <= 0 {
		t.Fatalf("bad best μ %v", res.BestMu)
	}
	if res.Exchange == nil {
		t.Fatal("sync Type III returned no exchange stats")
	}
	if res.Exchange.Restores != 0 {
		t.Fatalf("sync protocol cannot speculate, got %d restores", res.Exchange.Restores)
	}
}

// TestTypeIIIPortfolio runs a heterogeneous-knob portfolio (three SimE
// variants with different allocation orders and consultation budgets) and
// checks the store's per-searcher improvement-rate table comes back.
func TestTypeIIIPortfolio(t *testing.T) {
	prob := testProblem(t, fuzzy.WirePower, 25, 2006)
	opt := detOpts(4)
	opt.Retry = 5
	opt.Portfolio = []SearcherConfig{
		{AllocOrder: core.WorstFirst},
		{AllocOrder: core.BestFirst, Retry: 3},
		{AllocOrder: core.WidestFirst, SpecWindow: 4},
	}
	res, err := RunTypeIII(prob, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exchange == nil || len(res.Exchange.Searchers) == 0 {
		t.Fatal("portfolio run returned no per-searcher stats")
	}
	for _, sr := range res.Exchange.Searchers {
		if sr.Rank < 1 || sr.Rank >= opt.Procs {
			t.Fatalf("searcher table has out-of-range rank %d", sr.Rank)
		}
	}
}

// TestTypeIIIPortfolioReservedKind verifies the SA/TS slots fail with a
// descriptive error instead of silently running the wrong optimizer.
func TestTypeIIIPortfolioReservedKind(t *testing.T) {
	prob := testProblem(t, fuzzy.WirePower, 10, 2006)
	opt := detOpts(3)
	opt.Portfolio = []SearcherConfig{{Kind: "sa"}}
	if _, err := RunTypeIII(prob, opt); err == nil {
		t.Fatal("portfolio kind \"sa\" should be a reserved-slot error")
	}
}

// scriptComm drives typeIIIStore directly with a scripted frame sequence —
// the chaos harness for the store's merge logic. Recv pops the script;
// Send records every news/reply the store emits.
type scriptComm struct {
	frames []scriptFrame
	sent   []scriptFrame
	size   int
}

type scriptFrame struct {
	src, tag int
	data     []byte
}

func (s *scriptComm) Rank() int              { return 0 }
func (s *scriptComm) Size() int              { return s.size }
func (s *scriptComm) Elapsed() time.Duration { return 0 }
func (s *scriptComm) Send(dst, tag int, data []byte) {
	cp := append([]byte(nil), data...)
	s.sent = append(s.sent, scriptFrame{src: dst, tag: tag, data: cp})
}
func (s *scriptComm) Recv(src, tag int) ([]byte, mpi.Status) {
	if len(s.frames) == 0 {
		panic("scriptComm: store received past the end of the script")
	}
	f := s.frames[0]
	s.frames = s.frames[1:]
	return f.data, mpi.Status{Source: f.src, Tag: f.tag}
}
func (s *scriptComm) Bcast(root int, data []byte) []byte    { return data }
func (s *scriptComm) Gather(root int, data []byte) [][]byte { return nil }
func (s *scriptComm) Barrier()                              {}

// TestTypeIIIStoreNeverRegresses feeds the store an adversarial schedule —
// duplicated sequence numbers, stale out-of-order posts, worse solutions
// arriving after better ones — and asserts the store's best is monotonic:
// the final best is the maximum μ ever posted, the epoch counts exactly
// the strict improvements, and a poll from a searcher already at the best
// gets a no-solution news frame.
func TestTypeIIIStoreNeverRegresses(t *testing.T) {
	prob := testProblem(t, fuzzy.WirePower, 10, 2006)
	r := rng.New(7)
	place := func() *layout.Placement {
		return layout.NewRandom(prob.Ckt, prob.Cfg.NumRows, r)
	}
	post := func(src int, seq uint64, mu float64) scriptFrame {
		return scriptFrame{src: src, tag: tagT3Post, data: encodePost(seq, mu, place())}
	}
	poll := func(src int, mu float64) scriptFrame {
		return scriptFrame{src: src, tag: tagT3Poll, data: encodePollReq(0, mu)}
	}
	done := func(src int, mu float64) scriptFrame {
		var st searcherStats
		return scriptFrame{src: src, tag: tagT3Done, data: encodeDoneStats(5, mu, place(), &st)}
	}

	c := &scriptComm{size: 3, frames: []scriptFrame{
		post(1, 1, 0.40), // improvement: epoch 1
		post(2, 1, 0.50), // improvement: epoch 2
		post(1, 2, 0.45), // worse than store best: merged, no regression
		post(1, 2, 0.99), // duplicate seq: dropped even though μ is higher
		post(2, 1, 0.98), // stale replay of rank 2's seq 1: dropped
		poll(1, 0.45),    // store best 0.50 > 0.45: news carries a solution
		post(2, 2, 0.60), // improvement: epoch 3
		poll(2, 0.60),    // poller already at the best: keep-yours news
		done(1, 0.45),
		done(2, 0.60),
	}}
	res, err := typeIIIStore(prob, c, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestMu != 0.60 {
		t.Fatalf("store best μ = %v, want 0.60 (the maximum non-dropped post)", res.BestMu)
	}
	if res.Exchange.StoreEpoch != 3 {
		t.Fatalf("store epoch = %d, want 3 strict improvements", res.Exchange.StoreEpoch)
	}
	if res.Exchange.Posted != 4 {
		t.Fatalf("posted = %d, want 4 accepted posts (duplicates and replays dropped)", res.Exchange.Posted)
	}
	var news []scriptFrame
	for _, f := range c.sent {
		if f.tag == tagT3News {
			news = append(news, f)
		}
	}
	if len(news) != 2 {
		t.Fatalf("store sent %d news frames, want 2", len(news))
	}
	if news[0].data[12] != 1 {
		t.Fatal("first poll (behind the best) should have received a solution")
	}
	gotMu := math.Float64frombits(binary.LittleEndian.Uint64(news[0].data[13:]))
	if gotMu != 0.50 {
		t.Fatalf("news solution μ = %v, want the store best 0.50 at poll time", gotMu)
	}
	if news[1].data[12] != 0 {
		t.Fatal("second poll (already at the best) should have received keep-yours")
	}
}

// TestTypeIIIStoreCullsAndClones checks the consultation-budget
// reallocation: a searcher that keeps winning is granted a doubled budget
// (cloned — it explores alone longer), one that posts without ever
// winning is halved (culled — pulled toward the store's best more often).
func TestTypeIIIStoreCullsAndClones(t *testing.T) {
	prob := testProblem(t, fuzzy.WirePower, 10, 2006)
	r := rng.New(8)
	place := func() *layout.Placement {
		return layout.NewRandom(prob.Ckt, prob.Cfg.NumRows, r)
	}
	post := func(src int, seq uint64, mu float64) scriptFrame {
		return scriptFrame{src: src, tag: tagT3Post, data: encodePost(seq, mu, place())}
	}
	poll := func(src int, mu float64) scriptFrame {
		return scriptFrame{src: src, tag: tagT3Poll, data: encodePollReq(0, mu)}
	}
	done := func(src int, mu float64) scriptFrame {
		var st searcherStats
		return scriptFrame{src: src, tag: tagT3Done, data: encodeDoneStats(5, mu, place(), &st)}
	}
	c := &scriptComm{size: 3, frames: []scriptFrame{
		post(1, 1, 0.40), // rank 1 wins...
		post(1, 2, 0.50),
		post(1, 3, 0.60),
		post(2, 1, 0.10), // ...rank 2 posts but never wins
		post(2, 2, 0.20),
		poll(1, 0.60),
		poll(2, 0.20),
		done(1, 0.60),
		done(2, 0.20),
	}}
	res, err := typeIIIStore(prob, c, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	var grant [3]int
	for _, f := range c.sent {
		if f.tag == tagT3News {
			grant[f.src] = int(binary.LittleEndian.Uint32(f.data[8:]))
		}
	}
	if grant[1] != 20 {
		t.Fatalf("winner's granted budget = %d, want 20 (2x base)", grant[1])
	}
	if grant[2] != 5 {
		t.Fatalf("loser's granted budget = %d, want 5 (base/2)", grant[2])
	}
	for _, sr := range res.Exchange.Searchers {
		switch sr.Rank {
		case 1:
			if sr.Wins != 3 {
				t.Fatalf("rank 1 wins = %d, want 3", sr.Wins)
			}
		case 2:
			if sr.Wins != 0 {
				t.Fatalf("rank 2 wins = %d, want 0", sr.Wins)
			}
		}
	}
}
