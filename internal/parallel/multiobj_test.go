package parallel

import (
	"testing"

	"simevo/internal/core"
	"simevo/internal/fuzzy"
	"simevo/internal/gen"
)

// TestTypeIIDeltaWirePowerDelay is the warm-patch satellite for the
// multi-objective pipeline: under Type II delta broadcasts a slave's
// power summation tree and incremental STA are never rebuilt — the slot
// deltas feed the coordinate journal and every objective folds only the
// dirty nets forward. The trajectory must equal the full-broadcast run
// AND the from-scratch reference engine (DisableIncremental +
// FullBroadcast), bit for bit, so a warm-patched wire/power/delay state is
// provably indistinguishable from one rebuilt from first principles each
// iteration.
func TestTypeIIDeltaWirePowerDelay(t *testing.T) {
	run := func(fullBcast, disableInc bool) *Result {
		prob := testProblem(t, fuzzy.WirePowerDelay, 15, 2006)
		prob.Cfg.DisableIncremental = disableInc
		opt := detOpts(3)
		opt.FullBroadcast = fullBcast
		res, err := RunTypeII(prob, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(true, true) // reference engine, full broadcasts
	full := run(true, false)
	delta := run(false, false)
	for _, tc := range []struct {
		name string
		res  *Result
	}{{"full-broadcast incremental", full}, {"delta-broadcast incremental", delta}} {
		if tc.res.BestMu != ref.BestMu {
			t.Fatalf("%s: best μ %v != reference %v", tc.name, tc.res.BestMu, ref.BestMu)
		}
		if tc.res.Best.Fingerprint() != ref.Best.Fingerprint() {
			t.Fatalf("%s: best placement diverged from reference", tc.name)
		}
		if len(tc.res.MuTrace) != len(ref.MuTrace) {
			t.Fatalf("%s: trace length %d vs %d", tc.name, len(tc.res.MuTrace), len(ref.MuTrace))
		}
		for i := range ref.MuTrace {
			if tc.res.MuTrace[i] != ref.MuTrace[i] {
				t.Fatalf("%s: μ trace diverged at %d: %v vs %v",
					tc.name, i, tc.res.MuTrace[i], ref.MuTrace[i])
			}
		}
	}
	// On this small circuit most iterations move over a third of the
	// cells, so the codec may fall back to full encodings — the delta mode
	// must never cost more than the full mode, but equal bytes are fine
	// (the byte-saving property is asserted at scale in delta_test.go).
	if delta.RankStats[0].BytesSent > full.RankStats[0].BytesSent {
		t.Fatalf("delta broadcasts sent %d bytes, full %d — regression",
			delta.RankStats[0].BytesSent, full.RankStats[0].BytesSent)
	}
}

// TestTypeIIWirePowerDelayParallelEval runs the three-objective Type II
// strategy with the goodness evaluation fanned across the engine pool on
// every rank — the configuration the race job exercises for the delay
// scorer (per-cell criticality reads against cached gain terms) — and
// asserts the trajectory equals the all-serial run.
func TestTypeIIWirePowerDelayParallelEval(t *testing.T) {
	ckt, err := gen.Generate(gen.Params{
		Name: "par-eval-wpd", Gates: 430, DFFs: 16, PIs: 8, POs: 8, Depth: 10, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(evalWorkers, allocWorkers int) *Result {
		cfg := core.DefaultConfig(fuzzy.WirePowerDelay)
		cfg.MaxIters = 8
		cfg.Seed = 5
		cfg.EvalWorkers = evalWorkers
		cfg.AllocWorkers = allocWorkers
		prob, err := core.NewProblem(ckt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunTypeII(prob, detOpts(2))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(0, -1)
	par := run(3, 3)
	if serial.BestMu != par.BestMu {
		t.Fatalf("Type II wpd with EvalWorkers diverged: best μ %v vs %v", par.BestMu, serial.BestMu)
	}
	if serial.Best.Fingerprint() != par.Best.Fingerprint() {
		t.Fatal("Type II wpd with EvalWorkers reached a different best placement")
	}
}
