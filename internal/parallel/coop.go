package parallel

import (
	"fmt"

	"simevo/internal/core"
	"simevo/internal/layout"
	"simevo/internal/mpi"
)

// ExchangeFunc is handed to cooperating workers: it sends the worker's
// current best to the central store and returns the store's strictly
// better solution if one exists (adopted == true).
type ExchangeFunc func(mu float64, best *layout.Placement) (adopted bool, storeMu float64, store *layout.Placement)

// CoopOptions configures a generic cooperating parallel search: rank 0 is
// a central best-solution store; every other rank runs Worker, which may
// call its ExchangeFunc any number of times and finally returns its best.
// This is the asynchronous-multiple-Markov-chain scheme of the paper's
// reference [1], reused by Type III SimE and by the parallel SA baseline.
type CoopOptions struct {
	Procs          int
	Net            *mpi.NetModel
	MeasureCompute *bool
	Worker         func(rank int, exchange ExchangeFunc) (float64, *layout.Placement, error)
}

// NewCoopCluster builds a raw virtual cluster from Options, for parallel
// strategies implemented outside this package (the Type I parallel tabu
// search in internal/metaheur uses it).
func NewCoopCluster(o Options) (*mpi.Cluster, error) {
	if o.Procs < 2 {
		return nil, fmt.Errorf("parallel: cluster needs >= 2 ranks, got %d", o.Procs)
	}
	return mpi.NewCluster(o.Procs, mpi.Options{Net: o.net(), MeasureCompute: o.measure()}), nil
}

// RunCoop executes the cooperating search and returns the store's final
// best over all workers.
func RunCoop(prob *core.Problem, opt CoopOptions) (*Result, error) {
	if opt.Procs < 3 {
		return nil, fmt.Errorf("parallel: cooperative search needs >= 3 ranks, got %d", opt.Procs)
	}
	o := Options{Procs: opt.Procs, Net: opt.Net, MeasureCompute: opt.MeasureCompute}
	cl := mpi.NewCluster(opt.Procs, mpi.Options{Net: o.net(), MeasureCompute: o.measure()})
	var out *Result
	err := cl.Run(func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			res, err := typeIIIStore(prob, c, nil, 100)
			if err != nil {
				return err
			}
			out = res
			return nil
		}
		// A corrupt store reply is an error of this rank, not a process
		// crash: remember it, let the worker finish on its own solution,
		// and surface it at the rank boundary after the Done handshake.
		var exchErr error
		exchange := func(mu float64, best *layout.Placement) (bool, float64, *layout.Placement) {
			if exchErr != nil {
				return false, 0, nil
			}
			c.Send(0, tagT3Request, encodeSolution(mu, best))
			reply, _ := c.Recv(0, tagT3Reply)
			if len(reply) == 0 {
				return false, 0, nil
			}
			storeMu, place, err := decodeSolution(prob, reply)
			if err != nil {
				exchErr = fmt.Errorf("parallel: rank %d: corrupt store reply: %w", c.Rank(), err)
				return false, 0, nil
			}
			return true, storeMu, place
		}
		mu, best, err := opt.Worker(c.Rank(), exchange)
		if err != nil {
			return err
		}
		// Coop workers track their own budgets; the store's iteration
		// count is unused here (Iters is cleared below).
		c.Send(0, tagT3Done, encodeDone(0, mu, best))
		return exchErr
	})
	if err != nil {
		return nil, err
	}
	out.VirtualTime = cl.MakeSpan()
	out.RankStats = cl.Stats()
	if out.Best != nil {
		eng := prob.EngineFrom(out.Best.Clone(), nil)
		eng.EvaluateCosts()
		out.BestCosts = eng.Costs()
	}
	out.Iters = 0
	return out, nil
}
