package parallel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"simevo/internal/core"
	"simevo/internal/layout"
	"simevo/internal/mpi"
	"simevo/internal/telemetry"
	"simevo/internal/transport"
)

// Type III protocol tags. The first four are the legacy synchronous
// protocol (still spoken by Options.SyncExchange mode and by the
// cooperating-worker drivers in coop.go); the last three are the
// asynchronous epoch-tagged protocol.
const (
	tagT3Report  = 30 + iota // slave -> store: new personal best (sync)
	tagT3Request             // slave -> store: ask for a better solution (sync, blocks)
	tagT3Reply               // store -> slave: better solution or keep-yours (sync)
	tagT3Done                // slave -> store: final best
	tagT3Post                // searcher -> store: sequenced improvement post (async, fire-and-forget)
	tagT3Poll                // searcher -> store: 16-byte best-so-far poll (async, non-blocking)
	tagT3News                // store -> searcher: epoch + budget + optionally a better solution
)

// RunTypeIII executes the parallel-search strategy of the paper's Figure 6,
// modeled on asynchronous multiple-Markov-chain parallel SA [1]: rank 0 is
// a central store of the best solution found so far; every other rank runs
// an independent search from the same starting solution with a different
// random stream.
//
// By default the exchange protocol is asynchronous and speculative: a
// searcher that improves posts the solution to the store without waiting,
// and a searcher that stalls for Options.Retry iterations sends a 16-byte
// poll and keeps iterating until the store's news frame arrives. A
// strictly better store solution is adopted speculatively — the searcher
// snapshots its search state, patches the placement in, runs a short
// speculation window, and on reject restores the snapshot instead of
// rebuilding its cost state. Options.SyncExchange selects the legacy
// blocking request/reply round, the paper-faithful baseline.
//
// On the simulated cluster the async protocol is deterministic: polls
// participate in the virtual-time schedule (mpi.Comm.Poll), so for a
// fixed seed the exchange interleaving — and the best μ — is bitwise
// reproducible. On the TCP transport news arrival follows wall-clock
// order and runs differ; the store's best is monotonic either way.
func RunTypeIII(prob *core.Problem, opt Options) (*Result, error) {
	if opt.Procs < 3 {
		return nil, fmt.Errorf("parallel: Type III needs >= 3 ranks (one is the central store), got %d", opt.Procs)
	}
	cl := mpi.NewCluster(opt.Procs, mpi.Options{Net: opt.net(), MeasureCompute: opt.measure()})
	var out *Result
	err := cl.Run(func(c *mpi.Comm) error {
		res, err := TypeIIIRank(c, prob, opt)
		if res != nil {
			out = res
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	out.VirtualTime = cl.MakeSpan()
	out.RankStats = cl.Stats()
	return out, nil
}

// TypeIIIRank executes this rank's role in a Type III run over an existing
// transport — the entry point worker processes use on a real cluster. Rank
// 0 (the central store) returns the result with the winner's cost breakdown
// recovered; searcher ranks return (nil, nil) on success.
func TypeIIIRank(c Comm, prob *core.Problem, opt Options) (*Result, error) {
	if c.Size() < 3 {
		return nil, fmt.Errorf("parallel: Type III needs >= 3 ranks (one is the central store), got %d", c.Size())
	}
	retry := opt.Retry
	if retry <= 0 {
		retry = 100
	}
	if c.Rank() != 0 {
		poller, ok := c.(transport.Poller)
		if opt.SyncExchange || !ok {
			return nil, typeIIISearcherSync(prob, c, retry, opt)
		}
		return nil, typeIIISearcherAsync(prob, c, poller, retry, opt)
	}
	fc := tolerantComm(c, opt)
	out, err := typeIIIStore(prob, c, fc, retry)
	if err != nil {
		return nil, err
	}
	if fc != nil {
		out.FailedRanks = failedRankList(fc)
	}
	// The store tracks only μ; recover the cost breakdown of the winner.
	if out.Best != nil {
		eng := prob.EngineFrom(out.Best.Clone(), nil)
		eng.EvaluateCosts()
		out.BestCosts = eng.Costs()
	}
	attachRankStats(c, out)
	return out, nil
}

// --- wire formats ---

// encodeDone prepends the executed iteration count to a solution encoding
// — the tagT3Done wire format the store expects. Searchers append an
// exchange-stats blob (encodeDoneStats); the bare form is what the
// cooperating workers of coop.go send.
func encodeDone(iters int, mu float64, place *layout.Placement) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, uint64(iters))
	return append(buf, encodeSolution(mu, place)...)
}

// searcherStats is one searcher's exchange accounting, shipped to the
// store inside the Done frame.
type searcherStats struct {
	posted   int
	adopted  int
	rejected int
	restores int
	roundNs  []int64
}

// encodeDoneStats is encodeDone plus the searcher's exchange-stats blob:
// four u32 counters, a u32 sample count, and the timed exchange segments.
func encodeDoneStats(iters int, mu float64, place *layout.Placement, st *searcherStats) []byte {
	buf := encodeDone(iters, mu, place)
	var tail [20]byte
	binary.LittleEndian.PutUint32(tail[0:], uint32(st.posted))
	binary.LittleEndian.PutUint32(tail[4:], uint32(st.adopted))
	binary.LittleEndian.PutUint32(tail[8:], uint32(st.rejected))
	binary.LittleEndian.PutUint32(tail[12:], uint32(st.restores))
	binary.LittleEndian.PutUint32(tail[16:], uint32(len(st.roundNs)))
	buf = append(buf, tail[:]...)
	for _, ns := range st.roundNs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ns))
	}
	return buf
}

// decodeDoneStats parses the optional exchange-stats blob after a decoded
// Done solution. Absent (legacy coop frames) means zero stats.
func decodeDoneStats(rest []byte) (searcherStats, error) {
	var st searcherStats
	if len(rest) == 0 {
		return st, nil
	}
	if len(rest) < 20 {
		return st, fmt.Errorf("parallel: done stats blob too short (%d bytes)", len(rest))
	}
	st.posted = int(binary.LittleEndian.Uint32(rest[0:]))
	st.adopted = int(binary.LittleEndian.Uint32(rest[4:]))
	st.rejected = int(binary.LittleEndian.Uint32(rest[8:]))
	st.restores = int(binary.LittleEndian.Uint32(rest[12:]))
	n := int(binary.LittleEndian.Uint32(rest[16:]))
	rest = rest[20:]
	if len(rest) != 8*n {
		return st, fmt.Errorf("parallel: done stats blob: %d samples announced, %d bytes present", n, len(rest))
	}
	st.roundNs = make([]int64, n)
	for i := 0; i < n; i++ {
		st.roundNs[i] = int64(binary.LittleEndian.Uint64(rest[8*i:]))
	}
	return st, nil
}

// solution wire format: 8-byte μ followed by the placement encoding.
func encodeSolution(mu float64, place *layout.Placement) []byte {
	buf := make([]byte, 8, 8+place.NumRows()*4)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(mu))
	return append(buf, place.Encode()...)
}

func decodeSolution(prob *core.Problem, data []byte) (float64, *layout.Placement, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("parallel: solution payload too short (%d bytes)", len(data))
	}
	mu := math.Float64frombits(binary.LittleEndian.Uint64(data))
	place, err := layout.DecodePlacement(prob.Ckt, data[8:])
	if err != nil {
		return 0, nil, err
	}
	return mu, place, nil
}

// post wire format: 8-byte per-searcher sequence number, then a solution.
func encodePost(seq uint64, mu float64, place *layout.Placement) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, seq)
	return append(buf, encodeSolution(mu, place)...)
}

// poll wire format: the searcher's last-seen store epoch and its current
// best μ — 16 bytes, no placement. The synchronous protocol shipped a
// full placement with every consultation; not re-sending solutions the
// store already saw is most of the async protocol's traffic win.
func encodePollReq(epoch uint64, mu float64) []byte {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:], epoch)
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(mu))
	return buf[:]
}

// news wire format: store epoch (u64), granted consultation budget (u32),
// and a has-solution flag (u8) followed by the solution when the store's
// best strictly beats the poller's μ.
func encodeNews(epoch uint64, retry int, solution []byte) []byte {
	buf := make([]byte, 13, 13+len(solution))
	binary.LittleEndian.PutUint64(buf[0:], epoch)
	binary.LittleEndian.PutUint32(buf[8:], uint32(retry))
	if len(solution) > 0 {
		buf[12] = 1
		buf = append(buf, solution...)
	}
	return buf
}

func decodeNews(prob *core.Problem, data []byte) (epoch uint64, retry int, mu float64, place *layout.Placement, err error) {
	if len(data) < 13 {
		return 0, 0, 0, nil, fmt.Errorf("parallel: news payload too short (%d bytes)", len(data))
	}
	epoch = binary.LittleEndian.Uint64(data[0:])
	retry = int(binary.LittleEndian.Uint32(data[8:]))
	if data[12] == 0 {
		return epoch, retry, 0, nil, nil
	}
	mu, place, err = decodeSolution(prob, data[13:])
	return epoch, retry, mu, place, err
}

// --- store ---

// searcherEntry is the store's improvement-rate record for one searcher
// rank — the portfolio racer's cull/clone input.
type searcherEntry struct {
	lastSeq uint64
	posts   int
	wins    int
	retry   int // last granted consultation budget
}

// typeIIIStore runs the central best-solution store on rank 0. It speaks
// both protocols at once — sequenced posts and 16-byte polls from async
// searchers, blocking request/reply rounds from sync searchers and
// cooperating workers — so mixed clusters and the legacy drivers keep
// working. With a non-nil fc the store degrades instead of failing: a
// searcher that dies or sends corrupt frames counts as done (its
// contributions so far are kept), and the run errors only if every
// searcher is lost before any solution arrived.
func typeIIIStore(prob *core.Problem, c Comm, fc FaultComm, baseRetry int) (*Result, error) {
	bestMu := -1.0
	var bestData []byte // encoded solution, kept serialized for cheap replies
	var best *layout.Placement
	var epoch uint64 // bumps every time the global best improves
	done := 0
	iters := 0 // max iterations any searcher executed (cancellation may cut runs short)
	table := make(map[int]*searcherEntry)
	exch := &ExchangeStats{}

	entry := func(r int) *searcherEntry {
		e := table[r]
		if e == nil {
			e = &searcherEntry{retry: baseRetry}
			table[r] = e
		}
		return e
	}
	// improve installs a new global best and advances the epoch.
	improve := func(mu float64, place *layout.Placement, data []byte) {
		bestMu, best, bestData = mu, place, data
		epoch++
		telemetry.ExchangeStoreEpoch.Set(int64(epoch))
	}
	// budgetFor reallocates consultation budgets between searchers: the
	// outright winner's budget is cloned (doubled — it explores alone
	// longer between consultations), a searcher with posts but no wins
	// while others win is culled (halved — pulled toward the store's best
	// more often). Pure integer bookkeeping, deterministic on the
	// simulator's reference schedule.
	budgetFor := func(r int) int {
		e := entry(r)
		maxWins, winners := 0, 0
		for _, se := range table {
			if se.wins > maxWins {
				maxWins, winners = se.wins, 1
			} else if se.wins == maxWins && se.wins > 0 {
				winners++
			}
		}
		b := baseRetry
		switch {
		case maxWins > 0 && e.wins == maxWins && winners == 1:
			b = 2 * baseRetry
		case maxWins > 0 && e.wins == 0 && e.posts > 0:
			b = baseRetry / 2
			if b < 1 {
				b = 1
			}
		}
		e.retry = b
		return b
	}

	var doneRanks, deadRanks map[int]bool
	if fc != nil {
		doneRanks = make(map[int]bool)
		deadRanks = make(map[int]bool)
	}
	// rankDown counts a failed searcher toward completion exactly once —
	// and not at all if its Done already arrived.
	rankDown := func(r int) {
		if r <= 0 || doneRanks[r] || deadRanks[r] {
			return
		}
		deadRanks[r] = true
		done++
	}
	// dropOrFail degrades on a per-rank error when fault tolerance is on
	// and aborts the run otherwise.
	dropOrFail := func(src int, err error) error {
		if fc != nil {
			fc.DropRank(src, err)
			rankDown(src)
			return nil
		}
		return err
	}
	reply := func(dst int, data []byte) {
		if fc != nil {
			if err := fc.TrySend(dst, tagT3News, data); err != nil {
				rankDown(dst)
			}
		} else {
			c.Send(dst, tagT3News, data)
		}
	}

	for done < c.Size()-1 {
		var data []byte
		var st mpi.Status
		if fc != nil {
			var err error
			data, st, err = fc.TryRecv(mpi.AnySource, mpi.AnyTag)
			if err != nil {
				var re *transport.RankError
				if errors.As(err, &re) {
					rankDown(re.Rank)
					continue
				}
				return nil, err
			}
		} else {
			data, st = c.Recv(mpi.AnySource, mpi.AnyTag)
		}
		switch st.Tag {
		case tagT3Post:
			// Async improvement post: per-searcher sequence numbers make
			// the merge idempotent under reordering or degraded re-sends —
			// a post at or below the searcher's high-water mark is stale
			// and dropped; the best-μ comparison keeps the store monotonic
			// regardless.
			if len(data) < 8 {
				if err := dropOrFail(st.Source, fmt.Errorf("parallel: post payload too short (%d bytes)", len(data))); err != nil {
					return nil, err
				}
				continue
			}
			seq := binary.LittleEndian.Uint64(data)
			e := entry(st.Source)
			if seq <= e.lastSeq {
				continue
			}
			e.lastSeq = seq
			mu, place, err := decodeSolution(prob, data[8:])
			if err != nil {
				if err := dropOrFail(st.Source, fmt.Errorf("parallel: corrupt post frame: %w", err)); err != nil {
					return nil, err
				}
				continue
			}
			e.posts++
			exch.Posted++
			if mu > bestMu {
				e.wins++
				improve(mu, place, data[8:])
			}
		case tagT3Poll:
			if len(data) < 16 {
				if err := dropOrFail(st.Source, fmt.Errorf("parallel: poll payload too short (%d bytes)", len(data))); err != nil {
					return nil, err
				}
				continue
			}
			mu := math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
			var solution []byte
			if bestMu > mu {
				solution = bestData
			}
			reply(st.Source, encodeNews(epoch, budgetFor(st.Source), solution))
		case tagT3Report, tagT3Done:
			if st.Tag == tagT3Done {
				// Done wire format: 8-byte iteration count, then the
				// solution, then an optional exchange-stats blob.
				if len(data) < 8 {
					if err := dropOrFail(st.Source, fmt.Errorf("parallel: done payload too short (%d bytes)", len(data))); err != nil {
						return nil, err
					}
					continue
				}
				if n := int(binary.LittleEndian.Uint64(data)); n > iters {
					iters = n
				}
				data = data[8:]
				done++
				if fc != nil {
					doneRanks[st.Source] = true
				}
			}
			mu, place, err := decodeSolution(prob, data)
			if err != nil {
				if fc != nil {
					fc.DropRank(st.Source, fmt.Errorf("parallel: corrupt solution frame: %w", err))
					rankDown(st.Source) // no-op if this was its Done
					continue
				}
				return nil, err
			}
			if st.Tag == tagT3Done {
				// Re-decode the placement prefix to locate the stats blob.
				_, rest, _ := layout.DecodePlacementPrefix(prob.Ckt, data[8:])
				sst, err := decodeDoneStats(rest)
				if err != nil {
					if err := dropOrFail(st.Source, err); err != nil {
						return nil, err
					}
					continue
				}
				exch.Adopted += sst.adopted
				exch.Rejected += sst.rejected
				exch.Restores += sst.restores
				exch.RoundNs = append(exch.RoundNs, sst.roundNs...)
				data = data[:8+len(data[8:])-len(rest)]
			}
			if mu > bestMu {
				entry(st.Source).wins++
				improve(mu, place, data)
			}
		case tagT3Request:
			// Legacy synchronous consultation: the request carries the
			// searcher's best, the reply is the store's better solution or
			// empty for keep-yours.
			mu, place, err := decodeSolution(prob, data)
			if err != nil {
				if err := dropOrFail(st.Source, fmt.Errorf("parallel: corrupt request frame: %w", err)); err != nil {
					return nil, err
				}
				continue
			}
			entry(st.Source).posts++
			var replyData []byte
			if mu > bestMu {
				// The requester's solution is better than the store's:
				// adopt it and tell the requester to keep going.
				entry(st.Source).wins++
				improve(mu, place, data)
			} else if bestMu > mu {
				replyData = bestData
			}
			if fc != nil {
				if err := fc.TrySend(st.Source, tagT3Reply, replyData); err != nil {
					rankDown(st.Source)
				}
			} else {
				c.Send(st.Source, tagT3Reply, replyData)
			}
		default:
			if err := dropOrFail(st.Source, fmt.Errorf("parallel: store received unexpected tag %d", st.Tag)); err != nil {
				return nil, err
			}
		}
	}

	if best == nil {
		return nil, fmt.Errorf("parallel: every searcher failed before reporting a solution")
	}
	exch.StoreEpoch = epoch
	for r := 1; r < c.Size(); r++ {
		if e, ok := table[r]; ok {
			exch.Searchers = append(exch.Searchers, SearcherRate{Rank: r, Posts: e.posts, Wins: e.wins, Retry: e.retry})
		}
	}
	res := &Result{BestMu: bestMu, Best: best, Iters: iters, Exchange: exch}
	return res, nil
}

// --- searchers ---

// typeIIISearcherSync is the legacy synchronous searcher: improvements
// are reported fire-and-forget, but a consultation blocks in a
// request/reply round trip at the store and adopts with a full cost-state
// rebuild. Kept as the exchange-overhead baseline (Options.SyncExchange)
// and for transports without non-blocking receives.
func typeIIISearcherSync(prob *core.Problem, c Comm, retry int, opt Options) error {
	sc := searcherConfigFor(c.Rank(), opt)
	s, err := newSearcher(prob, c.Rank(), sc)
	if err != nil {
		return err
	}
	if sc.Retry > 0 {
		retry = sc.Retry
	}
	var stats searcherStats
	count := 0

	// Every searcher checks the context (there is no master to wind the
	// others down); rank 1 doubles as the progress reporter.
	iters := 0
	for ; iters < prob.Cfg.MaxIters && !opt.cancelled(); iters++ {
		prevBest := s.BestMu()
		st := s.Step()
		if c.Rank() == 1 {
			opt.report(st)
		}
		if s.BestMu() > prevBest {
			// Keep the store current so any requesting thread benefits.
			c.Send(0, tagT3Report, encodeSolution(s.BestMu(), s.BestPlacement()))
			stats.posted++
			telemetry.ExchangePosted.Inc()
			count = 0
			continue
		}
		count++
		if count > retry {
			exchStart := time.Now()
			c.Send(0, tagT3Request, encodeSolution(s.BestMu(), s.BestPlacement()))
			reply, _ := c.Recv(0, tagT3Reply)
			if len(reply) > 0 {
				_, place, err := decodeSolution(prob, reply)
				if err != nil {
					return err
				}
				// Adopt the store's better solution and continue evolving
				// from there, rebuilding the cost state from scratch —
				// the O(n) exchange cost the speculative path eliminates.
				s.AdoptFull(place)
				stats.adopted++
				telemetry.ExchangeAdopted.Inc()
			}
			ns := int64(time.Since(exchStart))
			telemetry.ExchangeRoundType3Ns.Observe(ns)
			stats.roundNs = append(stats.roundNs, ns)
			count = 0
		}
	}
	if s.BestPlacement() == nil {
		// Cancelled before the first iteration: evaluate the starting
		// solution so the final report carries a real placement.
		s.EvaluateCosts()
	}
	c.Send(0, tagT3Done, encodeDoneStats(iters, s.BestMu(), s.BestPlacement(), &stats))
	return nil
}

// typeIIISearcherAsync is the asynchronous speculative searcher. It never
// blocks on the store: improvements are posted with a sequence number,
// stalls send a 16-byte poll and keep iterating, and the store's news is
// consumed by a non-blocking poll whenever it has arrived. A strictly
// better remote solution is adopted speculatively — snapshot, patched
// adoption (no rebuild), a SpecWindow-iteration probe — and rejected by
// restoring the snapshot if the probe fails to improve on the adopted μ.
func typeIIISearcherAsync(prob *core.Problem, c Comm, poller transport.Poller, retry int, opt Options) error {
	sc := searcherConfigFor(c.Rank(), opt)
	s, err := newSearcher(prob, c.Rank(), sc)
	if err != nil {
		return err
	}
	if sc.Retry > 0 {
		retry = sc.Retry
	}

	var (
		stats       searcherStats
		seq         uint64 // post sequence number (high-water mark at the store)
		epoch       uint64 // last store epoch seen in a news frame
		count       int    // iterations without improvement since the last event
		pollPending bool   // a poll is in flight; await its news before sending another

		spec     *core.SearchSnapshot // non-nil while speculating
		specMu   float64              // μ of the adopted remote solution
		specLeft int                  // speculation iterations remaining
	)

	observe := func(start time.Time) int64 {
		ns := int64(time.Since(start))
		telemetry.ExchangeAsyncType3Ns.Observe(ns)
		stats.roundNs = append(stats.roundNs, ns)
		return ns
	}
	post := func() {
		start := time.Now()
		seq++
		c.Send(0, tagT3Post, encodePost(seq, s.BestMu(), s.BestPlacement()))
		observe(start)
		stats.posted++
		telemetry.ExchangePosted.Inc()
	}

	iters := 0
	for ; iters < prob.Cfg.MaxIters && !opt.cancelled(); iters++ {
		prevBest := s.BestMu()
		st := s.Step()
		if c.Rank() == 1 {
			opt.report(st)
		}

		if spec != nil {
			// Speculating ahead from an adopted remote best: accept as
			// soon as the probe improves past the adopted μ, reject by
			// restoring the pre-adoption state when the window closes.
			specLeft--
			if s.BestMu() > specMu {
				spec = nil
				stats.adopted++
				telemetry.ExchangeAdopted.Inc()
				post() // share the improvement the adoption enabled
				count = 0
			} else if specLeft <= 0 {
				start := time.Now()
				s.Restore(spec)
				observe(start)
				spec = nil
				stats.rejected++
				stats.restores++
				telemetry.ExchangeRejected.Inc()
				telemetry.SpeculationRestores.Inc()
				count = 0
			}
			continue
		}

		if s.BestMu() > prevBest {
			post()
			count = 0
			continue
		}
		count++

		if pollPending {
			if news, _, ok := poller.Poll(0, tagT3News); ok {
				pollPending = false
				start := time.Now()
				newsEpoch, grant, mu, place, err := decodeNews(prob, news)
				if err != nil {
					return fmt.Errorf("parallel: rank %d: corrupt news frame: %w", c.Rank(), err)
				}
				epoch = newsEpoch
				if grant > 0 {
					retry = grant
				}
				if place != nil && mu > s.BestMu() {
					spec = s.Snapshot()
					s.Adopt(place)
					specMu = mu
					specLeft = sc.SpecWindow
				}
				observe(start)
				count = 0
			}
			continue
		}
		if count > retry {
			start := time.Now()
			c.Send(0, tagT3Poll, encodePollReq(epoch, s.BestMu()))
			observe(start)
			pollPending = true
			count = 0
		}
	}
	if s.BestPlacement() == nil {
		// Cancelled before the first iteration: evaluate the starting
		// solution so the final report carries a real placement.
		s.EvaluateCosts()
	}
	c.Send(0, tagT3Done, encodeDoneStats(iters, s.BestMu(), s.BestPlacement(), &stats))
	return nil
}
