package parallel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"simevo/internal/core"
	"simevo/internal/layout"
	"simevo/internal/mpi"
	"simevo/internal/telemetry"
	"simevo/internal/transport"
)

// Type III protocol tags.
const (
	tagT3Report  = 30 + iota // slave -> store: new personal best
	tagT3Request             // slave -> store: ask for a better solution
	tagT3Reply               // store -> slave: better solution or keep-yours
	tagT3Done                // slave -> store: final best
)

// RunTypeIII executes the parallel-search strategy of the paper's Figure 6,
// modeled on asynchronous multiple-Markov-chain parallel SA [1]: rank 0 is
// a central store of the best solution found so far; every other rank runs
// an independent full SimE search from the same starting solution with a
// different random stream. A slave that improves its best reports it to the
// store; a slave that fails to improve for Options.Retry consecutive
// iterations asks the store for a better solution, which it adopts if the
// store has one (otherwise the store adopts the slave's, if better).
//
// There is no workload division, so runtimes track the serial algorithm;
// the paper's point is that seeds alone do not diversify SimE searches
// enough for the cooperation to buy speed.
func RunTypeIII(prob *core.Problem, opt Options) (*Result, error) {
	if opt.Procs < 3 {
		return nil, fmt.Errorf("parallel: Type III needs >= 3 ranks (one is the central store), got %d", opt.Procs)
	}
	cl := mpi.NewCluster(opt.Procs, mpi.Options{Net: opt.net(), MeasureCompute: opt.measure()})
	var out *Result
	err := cl.Run(func(c *mpi.Comm) error {
		res, err := TypeIIIRank(c, prob, opt)
		if res != nil {
			out = res
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	out.VirtualTime = cl.MakeSpan()
	out.RankStats = cl.Stats()
	return out, nil
}

// TypeIIIRank executes this rank's role in a Type III run over an existing
// transport — the entry point worker processes use on a real cluster. Rank
// 0 (the central store) returns the result with the winner's cost breakdown
// recovered; searcher ranks return (nil, nil) on success.
func TypeIIIRank(c Comm, prob *core.Problem, opt Options) (*Result, error) {
	if c.Size() < 3 {
		return nil, fmt.Errorf("parallel: Type III needs >= 3 ranks (one is the central store), got %d", c.Size())
	}
	retry := opt.Retry
	if retry <= 0 {
		retry = 100
	}
	if c.Rank() != 0 {
		return nil, typeIIISearcher(prob, c, retry, opt)
	}
	fc := tolerantComm(c, opt)
	out, err := typeIIIStore(prob, c, fc)
	if err != nil {
		return nil, err
	}
	if fc != nil {
		out.FailedRanks = failedRankList(fc)
	}
	// The store tracks only μ; recover the cost breakdown of the winner.
	if out.Best != nil {
		eng := prob.EngineFrom(out.Best.Clone(), nil)
		eng.EvaluateCosts()
		out.BestCosts = eng.Costs()
	}
	attachRankStats(c, out)
	return out, nil
}

// encodeDone prepends the executed iteration count to a solution encoding
// — the tagT3Done wire format the store expects.
func encodeDone(iters int, mu float64, place *layout.Placement) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, uint64(iters))
	return append(buf, encodeSolution(mu, place)...)
}

// solution wire format: 8-byte μ followed by the placement encoding.
func encodeSolution(mu float64, place *layout.Placement) []byte {
	buf := make([]byte, 8, 8+place.NumRows()*4)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(mu))
	return append(buf, place.Encode()...)
}

func decodeSolution(prob *core.Problem, data []byte) (float64, *layout.Placement, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("parallel: solution payload too short (%d bytes)", len(data))
	}
	mu := math.Float64frombits(binary.LittleEndian.Uint64(data))
	place, err := layout.DecodePlacement(prob.Ckt, data[8:])
	if err != nil {
		return 0, nil, err
	}
	return mu, place, nil
}

// typeIIIStore runs the central best-solution store on rank 0. With a
// non-nil fc the store degrades instead of failing: a searcher that dies
// or sends corrupt frames counts as done (its contributions so far are
// kept), and the run errors only if every searcher is lost before any
// solution arrived.
func typeIIIStore(prob *core.Problem, c Comm, fc FaultComm) (*Result, error) {
	bestMu := -1.0
	var bestData []byte // encoded solution, kept serialized for cheap replies
	var best *layout.Placement
	done := 0
	iters := 0 // max iterations any searcher executed (cancellation may cut runs short)

	var doneRanks, deadRanks map[int]bool
	if fc != nil {
		doneRanks = make(map[int]bool)
		deadRanks = make(map[int]bool)
	}
	// rankDown counts a failed searcher toward completion exactly once —
	// and not at all if its Done already arrived.
	rankDown := func(r int) {
		if r <= 0 || doneRanks[r] || deadRanks[r] {
			return
		}
		deadRanks[r] = true
		done++
	}

	for done < c.Size()-1 {
		var data []byte
		var st mpi.Status
		if fc != nil {
			var err error
			data, st, err = fc.TryRecv(mpi.AnySource, mpi.AnyTag)
			if err != nil {
				var re *transport.RankError
				if errors.As(err, &re) {
					rankDown(re.Rank)
					continue
				}
				return nil, err
			}
		} else {
			data, st = c.Recv(mpi.AnySource, mpi.AnyTag)
		}
		switch st.Tag {
		case tagT3Report, tagT3Done:
			if st.Tag == tagT3Done {
				// Done wire format: 8-byte iteration count, then the solution.
				if len(data) < 8 {
					if fc != nil {
						fc.DropRank(st.Source, fmt.Errorf("parallel: done payload too short (%d bytes)", len(data)))
						rankDown(st.Source)
						continue
					}
					return nil, fmt.Errorf("parallel: done payload too short (%d bytes)", len(data))
				}
				if n := int(binary.LittleEndian.Uint64(data)); n > iters {
					iters = n
				}
				data = data[8:]
				done++
				if fc != nil {
					doneRanks[st.Source] = true
				}
			}
			mu, place, err := decodeSolution(prob, data)
			if err != nil {
				if fc != nil {
					fc.DropRank(st.Source, fmt.Errorf("parallel: corrupt solution frame: %w", err))
					rankDown(st.Source) // no-op if this was its Done
					continue
				}
				return nil, err
			}
			if mu > bestMu {
				bestMu, best, bestData = mu, place, data
			}
		case tagT3Request:
			mu, place, err := decodeSolution(prob, data)
			if err != nil {
				if fc != nil {
					fc.DropRank(st.Source, fmt.Errorf("parallel: corrupt request frame: %w", err))
					rankDown(st.Source)
					continue
				}
				return nil, err
			}
			var reply []byte
			if mu > bestMu {
				// The requester's solution is better than the store's:
				// adopt it and tell the requester to keep going.
				bestMu, best, bestData = mu, place, data
			} else if bestMu > mu {
				reply = bestData
			}
			if fc != nil {
				if err := fc.TrySend(st.Source, tagT3Reply, reply); err != nil {
					rankDown(st.Source)
				}
			} else {
				c.Send(st.Source, tagT3Reply, reply)
			}
		default:
			if fc != nil {
				fc.DropRank(st.Source, fmt.Errorf("parallel: store received unexpected tag %d", st.Tag))
				rankDown(st.Source)
				continue
			}
			return nil, fmt.Errorf("parallel: store received unexpected tag %d", st.Tag)
		}
	}

	if best == nil {
		return nil, fmt.Errorf("parallel: every searcher failed before reporting a solution")
	}
	res := &Result{BestMu: bestMu, Best: best, Iters: iters}
	return res, nil
}

func typeIIISearcher(prob *core.Problem, c Comm, retry int, opt Options) error {
	// Same starting solution on every searcher, different random streams
	// (the paper's Table 4 setup).
	eng := prob.EngineFromReference(uint64(c.Rank()))
	if opt.Diversify {
		// Section 7's diversification proposal: a different allocation
		// function per thread steers the searches apart.
		eng.SetAllocOrder(core.AllocOrder((c.Rank() - 1) % 3))
	}
	count := 0

	// Every searcher checks the context (there is no master to wind the
	// others down); rank 1 doubles as the progress reporter.
	iters := 0
	for ; iters < prob.Cfg.MaxIters && !opt.cancelled(); iters++ {
		prevBest := eng.BestMu()
		st := eng.Step()
		if c.Rank() == 1 {
			opt.report(st)
		}
		if eng.BestMu() > prevBest {
			// Keep the store current so any requesting thread benefits.
			c.Send(0, tagT3Report, encodeSolution(eng.BestMu(), eng.BestPlacement()))
			count = 0
			continue
		}
		count++
		if count > retry {
			exchStart := time.Now()
			c.Send(0, tagT3Request, encodeSolution(eng.BestMu(), eng.BestPlacement()))
			reply, _ := c.Recv(0, tagT3Reply)
			telemetry.ExchangeRoundType3Ns.Observe(int64(time.Since(exchStart)))
			if len(reply) > 0 {
				mu, place, err := decodeSolution(prob, reply)
				if err != nil {
					return err
				}
				// Adopt the store's better solution and continue evolving
				// from there.
				eng.AdoptPlacement(place)
				_ = mu
			}
			count = 0
		}
	}
	if eng.BestPlacement() == nil {
		// Cancelled before the first iteration: evaluate the starting
		// solution so the final report carries a real placement.
		eng.EvaluateCosts()
	}
	c.Send(0, tagT3Done, encodeDone(iters, eng.BestMu(), eng.BestPlacement()))
	return nil
}
