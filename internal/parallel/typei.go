package parallel

import (
	"fmt"
	"time"

	"simevo/internal/core"
	"simevo/internal/layout"
	"simevo/internal/mpi"
	"simevo/internal/netlist"
	"simevo/internal/telemetry"
	"simevo/internal/transport"
)

// Type I protocol tags.
const (
	tagT1Placement = 10 + iota
	tagT1Goodness
)

// RunTypeI executes the low-level parallelization of the paper's Figures
// 2-3: each iteration the master broadcasts the current placement, every
// rank (master included) computes the costs and the goodness of its chunk
// of cells, the master gathers the goodness values and performs selection
// and allocation locally.
//
// Because every rank must know the wirelength of all fan-in nets to
// evaluate its chunk's goodness, each rank recomputes the full net-length
// array — the duplicated work the paper identifies as the reason Type I
// yields no speedup. The search trajectory is bitwise identical to the
// serial engine with the same seed (verified by tests).
func RunTypeI(prob *core.Problem, opt Options) (*Result, error) {
	if opt.Procs < 2 {
		return nil, fmt.Errorf("parallel: Type I needs >= 2 ranks, got %d", opt.Procs)
	}
	movable := prob.Ckt.Movable()
	if len(movable) < opt.Procs {
		return nil, fmt.Errorf("parallel: %d cells cannot feed %d ranks", len(movable), opt.Procs)
	}

	cl := mpi.NewCluster(opt.Procs, mpi.Options{Net: opt.net(), MeasureCompute: opt.measure()})
	var out *Result
	err := cl.Run(func(c *mpi.Comm) error {
		res, err := TypeIRank(c, prob, opt)
		if res != nil {
			out = res
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	out.VirtualTime = cl.MakeSpan()
	out.RankStats = cl.Stats()
	return out, nil
}

// TypeIRank executes this rank's role in a Type I run over an existing
// transport — the entry point worker processes use on a real cluster. Rank
// 0 returns the result; other ranks return (nil, nil) on success.
func TypeIRank(c Comm, prob *core.Problem, opt Options) (*Result, error) {
	if c.Size() < 2 {
		return nil, fmt.Errorf("parallel: Type I needs >= 2 ranks, got %d", c.Size())
	}
	if len(prob.Ckt.Movable()) < c.Size() {
		return nil, fmt.Errorf("parallel: %d cells cannot feed %d ranks", len(prob.Ckt.Movable()), c.Size())
	}
	if c.Rank() == 0 {
		res, err := typeIMaster(prob, c, opt)
		attachRankStats(c, res)
		return res, err
	}
	return nil, typeISlave(prob, c)
}

// Comm is the per-rank communication handle the strategies run against: a
// simulated rank (*mpi.Comm) or a TCP endpoint (internal/transport).
type Comm = transport.Transport

// cellChunk returns rank r's contiguous slice of the movable cells.
func cellChunk(movable []netlist.CellID, r, p int) []netlist.CellID {
	lo := r * len(movable) / p
	hi := (r + 1) * len(movable) / p
	return movable[lo:hi]
}

func typeIMaster(prob *core.Problem, c Comm, opt Options) (*Result, error) {
	eng := prob.NewEngine(0) // identical construction to the serial run
	movable := prob.Ckt.Movable()
	chunk := cellChunk(movable, 0, c.Size())
	fc := tolerantComm(c, opt)
	var goodsBuf, lostBuf []float64

	for iter := 0; iter < prob.Cfg.MaxIters && !opt.cancelled(); iter++ {
		roundStart := time.Now()
		// Broadcast the current placement to the slaves.
		if fc != nil {
			fc.BcastRoot(eng.Placement().Encode())
		} else {
			c.Bcast(0, eng.Placement().Encode())
		}

		// Local evaluation: full costs (duplicated on every rank) plus the
		// master's goodness chunk.
		eng.EvaluateCosts()
		goodsBuf = eng.ComputeGoodness(chunk, goodsBuf)

		// Gather the slaves' goodness chunks.
		var parts [][]byte
		if fc != nil {
			parts = fc.GatherRoot(encodeF64s(goodsBuf))
		} else {
			parts = c.Gather(0, encodeF64s(goodsBuf))
		}
		for r := 1; r < c.Size(); r++ {
			rchunk := cellChunk(movable, r, c.Size())
			vals, err := decodeF64s(parts[r])
			bad := err != nil || len(vals) != len(rchunk)
			if fc != nil && (parts[r] == nil || bad) {
				if parts[r] != nil {
					fc.DropRank(r, fmt.Errorf("parallel: corrupt goodness chunk: err=%v len=%d want=%d",
						err, len(vals), len(rchunk)))
				}
				// Degraded: recompute the lost chunk locally. Goodness is a
				// pure function of the placement, so the trajectory equals
				// the no-fault run — a Type I failure costs time, never
				// quality.
				lostBuf = eng.ComputeGoodness(rchunk, lostBuf)
				eng.SetGoodness(rchunk, lostBuf)
				continue
			}
			if err != nil {
				return nil, err
			}
			if len(vals) != len(rchunk) {
				return nil, fmt.Errorf("parallel: rank %d sent %d goodness values for %d cells",
					r, len(vals), len(rchunk))
			}
			eng.SetGoodness(rchunk, vals)
		}

		// Selection and allocation happen only on the master.
		opt.report(eng.SelectAndAllocate())
		telemetry.ExchangeRoundType1Ns.Observe(int64(time.Since(roundStart)))
	}
	// Terminal broadcast: zero-length placement signals the slaves to stop.
	if fc != nil {
		fc.BcastRoot(nil)
	} else {
		c.Bcast(0, nil)
	}
	eng.EvaluateCosts()

	res := eng.Result()
	out := &Result{
		BestMu:    res.BestMu,
		BestCosts: res.BestCosts,
		Best:      res.Best,
		Iters:     res.Iters,
		MuTrace:   res.MuTrace,
		Telemetry: res.Telemetry,
	}
	if fc != nil {
		out.FailedRanks = failedRankList(fc)
	}
	return out, nil
}

func typeISlave(prob *core.Problem, c Comm) error {
	eng := prob.EngineFrom(layout.New(prob.Ckt, prob.Cfg.NumRows), nil)
	movable := prob.Ckt.Movable()
	chunk := cellChunk(movable, c.Rank(), c.Size())
	var goodsBuf []float64

	for {
		data := c.Bcast(0, nil)
		if len(data) == 0 {
			return nil // stop signal
		}
		place, err := layout.DecodePlacement(prob.Ckt, data)
		if err != nil {
			return fmt.Errorf("parallel: rank %d decoding placement: %w", c.Rank(), err)
		}
		eng.SetPlacement(place)
		// Full cost evaluation (duplicate work) is required before any
		// goodness can be computed: wirelength goodness of a cell needs
		// the lengths of all its fan-in nets.
		eng.EvaluateCosts()
		goodsBuf = eng.ComputeGoodness(chunk, goodsBuf)
		c.Gather(0, encodeF64s(goodsBuf))
	}
}
