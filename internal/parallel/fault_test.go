package parallel

// Fault-tolerance tests run the strategies over a real in-process TCP
// cluster with the deterministic chaos wrapper injecting severed, hung,
// and corrupted connections, and pin the degraded-mode contract: the run
// finishes on the survivors, the lost ranks are recorded in the Result,
// and a fault-free tolerant run follows the simulator's trajectory
// bitwise.

import (
	"context"
	"sync"
	"testing"
	"time"

	"simevo/internal/core"
	"simevo/internal/fuzzy"
	"simevo/internal/layout"
	"simevo/internal/transport"
)

// runTCP executes one strategy over a real TCP cluster: rank 0 runs inline
// on an acquired Group, ranks 1..Procs-1 run in worker goroutines joined
// sequentially so rank assignment is deterministic (worker i holds rank
// i+1). workerCfg supplies per-rank join configs (chaos wrappers); unblock
// runs after rank 0 finishes, before the worker goroutines are reaped —
// use it to release a chaos-hung writer.
func runTCP(t *testing.T, prob *core.Problem, opt Options, hubCfg transport.Config,
	workerCfg map[int]transport.Config,
	entry func(Comm, *core.Problem, Options) (*Result, error),
	unblock ...func()) (*Result, error) {
	t.Helper()
	h, err := transport.ListenConfig("127.0.0.1:0", "", hubCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	workers := opt.Procs - 1
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		w, err := transport.JoinConfig(context.Background(), h.Addr().String(), "", workerCfg[i+1])
		if err != nil {
			t.Fatalf("worker %d join: %v", i, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Rank failures are asserted from the master's Result; the
			// worker-side error (severed conn, canceled job) is expected
			// noise in the chaos runs.
			w.Serve(context.Background(), func(tr transport.Transport) error {
				_, err := entry(tr, prob, opt)
				return err
			})
		}()
		deadline := time.Now().Add(10 * time.Second)
		for h.Workers() < i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("worker %d never parked", i)
			}
			time.Sleep(time.Millisecond)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	g, err := h.Acquire(ctx, workers)
	if err != nil {
		t.Fatal(err)
	}
	var res *Result
	runErr := transport.Run(g, func(tr transport.Transport) error {
		r, err := entry(tr, prob, opt)
		res = r
		return err
	})
	g.Close()
	h.Close()
	for _, fn := range unblock {
		fn()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("worker goroutines did not wind down")
	}
	return res, runErr
}

func tolerantOpts(procs int) Options {
	return Options{Procs: procs, Tolerate: true}
}

// TestTCPTolerantMatchesSimTypeI: with no faults, the tolerant TCP path
// must emit the exact trajectory of the simulated cluster — TrySend and
// the root-side collective halves count and carry identical traffic.
func TestTCPTolerantMatchesSimTypeI(t *testing.T) {
	prob := testProblem(t, fuzzy.WirePower, 20, 11)
	ref, err := RunTypeI(prob, detOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := runTCP(t, prob, tolerantOpts(3), transport.Config{}, nil, TypeIRank)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestMu != ref.BestMu {
		t.Fatalf("tolerant TCP BestMu %.9f != sim %.9f", res.BestMu, ref.BestMu)
	}
	if res.BestCosts != ref.BestCosts {
		t.Fatalf("tolerant TCP costs %+v != sim %+v", res.BestCosts, ref.BestCosts)
	}
	if len(res.FailedRanks) != 0 {
		t.Fatalf("fault-free run reported failed ranks %v", res.FailedRanks)
	}
}

func TestTCPTolerantMatchesSimTypeII(t *testing.T) {
	prob := testProblem(t, fuzzy.WirePower, 20, 12)
	ref, err := RunTypeII(prob, detOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := runTCP(t, prob, tolerantOpts(3), transport.Config{}, nil, TypeIIRank)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestMu != ref.BestMu {
		t.Fatalf("tolerant TCP BestMu %.9f != sim %.9f", res.BestMu, ref.BestMu)
	}
	if len(res.FailedRanks) != 0 {
		t.Fatalf("fault-free run reported failed ranks %v", res.FailedRanks)
	}
}

// TestTypeISeverTrajectoryPreserved kills a slave's connection mid-run
// (sever at its second goodness frame). Goodness is a pure function of
// the placement, so the master's local recompute must land on the exact
// fault-free trajectory: same BestMu as the simulated run, with the lost
// rank on record.
func TestTypeISeverTrajectoryPreserved(t *testing.T) {
	prob := testProblem(t, fuzzy.WirePower, 25, 13)
	ref, err := RunTypeI(prob, detOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	var ch *transport.Chaos
	wcfg := map[int]transport.Config{
		1: {WrapConn: transport.Wrap(&ch, 5, transport.ChaosFault{AtFrame: 2, Action: transport.ChaosSever})},
	}
	res, err := runTCP(t, prob, tolerantOpts(3), transport.Config{}, wcfg, TypeIRank)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FailedRanks) != 1 || res.FailedRanks[0] != 1 {
		t.Fatalf("FailedRanks = %v, want [1]", res.FailedRanks)
	}
	if res.BestMu != ref.BestMu {
		t.Fatalf("degraded BestMu %.9f != fault-free %.9f (Type I failures must not change the trajectory)",
			res.BestMu, ref.BestMu)
	}
}

// TestTypeIIHangDegraded wedges a slave's writes mid-run — the socket
// stays open, pongs jam behind the hung row frame — and relies on the
// hub's heartbeat timeout to expel it. The master must finish on the
// survivor with the hung rank recorded and a valid best placement.
func TestTypeIIHangDegraded(t *testing.T) {
	prob := testProblem(t, fuzzy.WirePower, 25, 14)
	var ch *transport.Chaos
	wcfg := map[int]transport.Config{
		1: {WrapConn: transport.Wrap(&ch, 6, transport.ChaosFault{AtFrame: 3, Action: transport.ChaosHang})},
	}
	hubCfg := transport.Config{
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  300 * time.Millisecond,
	}
	res, err := runTCP(t, prob, tolerantOpts(3), hubCfg, wcfg, TypeIIRank,
		func() { ch.Close() })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FailedRanks) != 1 || res.FailedRanks[0] != 1 {
		t.Fatalf("FailedRanks = %v, want [1]", res.FailedRanks)
	}
	if res.Best == nil || res.BestMu <= 0 {
		t.Fatalf("degraded run produced no usable best (μ=%v)", res.BestMu)
	}
	if _, err := layout.DecodePlacement(prob.Ckt, res.Best.Encode()); err != nil {
		t.Fatalf("degraded best placement invalid: %v", err)
	}
}

// TestTypeIIICorruptDegraded flips every payload byte of one searcher's
// first solution report. The store must reject the frame at decode, drop
// the rank, and finish with the survivors' best.
func TestTypeIIICorruptDegraded(t *testing.T) {
	prob := testProblem(t, fuzzy.WirePower, 40, 15)
	var ch *transport.Chaos
	wcfg := map[int]transport.Config{
		1: {WrapConn: transport.Wrap(&ch, 7, transport.ChaosFault{AtFrame: 1, Action: transport.ChaosCorrupt})},
	}
	res, err := runTCP(t, prob, tolerantOpts(4), transport.Config{}, wcfg, TypeIIIRank)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res.FailedRanks {
		if r == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("FailedRanks = %v, want rank 1 (corrupt reporter)", res.FailedRanks)
	}
	if res.Best == nil || res.BestMu <= 0 {
		t.Fatalf("survivors produced no usable best (μ=%v)", res.BestMu)
	}
}
