package parallel

import (
	"fmt"
	"time"

	"simevo/internal/core"
	"simevo/internal/layout"
	"simevo/internal/mpi"
	"simevo/internal/rng"
	"simevo/internal/telemetry"
)

// RunTypeII executes the domain-decomposition strategy of the paper's
// Figures 4-5: every iteration the master draws a row assignment from the
// configured pattern and broadcasts it with the current placement; every
// rank (master included) runs a complete SimE iteration — evaluation,
// selection, allocation — restricted to its own rows, treating all other
// cells as fixed; the slaves send their updated rows back and the master
// merges them into the next solution.
//
// Unlike Type I this parallelizes the allocation operator (≈98% of serial
// runtime), so it is the strategy that actually divides the workload. The
// price is a different search behaviour: each rank has limited freedom of
// cell movement, so more iterations are needed to converge and the best
// serial quality is not always reached (the paper's Tables 2-3).
func RunTypeII(prob *core.Problem, opt Options) (*Result, error) {
	if opt.Procs < 2 {
		return nil, fmt.Errorf("parallel: Type II needs >= 2 ranks, got %d", opt.Procs)
	}

	cl := mpi.NewCluster(opt.Procs, mpi.Options{Net: opt.net(), MeasureCompute: opt.measure()})
	var out *Result
	err := cl.Run(func(c *mpi.Comm) error {
		res, err := TypeIIRank(c, prob, opt)
		if res != nil {
			out = res
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	out.VirtualTime = cl.MakeSpan()
	out.RankStats = cl.Stats()
	return out, nil
}

// TypeIIRank executes this rank's role in a Type II run over an existing
// transport — the entry point worker processes use on a real cluster. Rank
// 0 returns the result; other ranks return (nil, nil) on success.
func TypeIIRank(c Comm, prob *core.Problem, opt Options) (*Result, error) {
	if c.Size() < 2 {
		return nil, fmt.Errorf("parallel: Type II needs >= 2 ranks, got %d", c.Size())
	}
	if c.Rank() == 0 {
		pattern := opt.Pattern
		if pattern == nil {
			pattern = FixedPattern{}
		}
		res, err := typeIIMaster(prob, c, pattern, opt)
		attachRankStats(c, res)
		return res, err
	}
	return nil, typeIISlave(prob, c)
}

func typeIIMaster(prob *core.Problem, c Comm, pattern RowPattern, opt Options) (*Result, error) {
	eng := prob.NewEngine(0)
	targetMu := opt.TargetMu
	numRows := eng.Placement().NumRows()
	if numRows < c.Size() {
		return nil, fmt.Errorf("parallel: %d rows cannot feed %d ranks", numRows, c.Size())
	}
	numCells := len(prob.Ckt.Cells)

	// Delta-codec state: the slot assignment as of the previous broadcast.
	// Every rank's placement agrees with it up to that rank's own last
	// merge contribution, so one shared delta batch patches every slave
	// (a slave's own moves re-apply as no-ops).
	var prevSlots []layout.SlotRef
	var deltaBuf []layout.SlotDelta

	fc := tolerantComm(c, opt)
	res := &Result{}
	for iter := 0; iter < prob.Cfg.MaxIters && !opt.cancelled(); iter++ {
		roundStart := time.Now()
		assign := pattern.Assign(iter, numRows, c.Size())
		if err := validateAssignment(assign, numRows); err != nil {
			return nil, err
		}
		if fc != nil {
			// Degraded: dead ranks' row shares move onto the survivors, so
			// every row keeps being optimized. With no failures this is a
			// no-op and the assignment (hence the trajectory) is untouched.
			redistributeRows(assign, fc.FailedRanks())
		}

		// Broadcast assignment + placement in one message: the full
		// encoding on the first iteration (and when deltas would not pay —
		// a delta entry costs 3 words against 1 word per cell, so deltas
		// win while under a third of the cells moved), a moved-cell delta
		// batch against the previous broadcast otherwise.
		msg := encodeAssignment(assign)
		place := eng.Placement()
		deltaBuf = deltaBuf[:0]
		if prevSlots != nil && !opt.FullBroadcast {
			deltaBuf = place.DiffSlots(prevSlots, deltaBuf)
		}
		if prevSlots != nil && !opt.FullBroadcast && 3*len(deltaBuf) < numCells+numRows {
			msg = append(msg, bcastDelta)
			msg = appendSlotDeltas(msg, deltaBuf)
		} else {
			msg = append(msg, bcastFull)
			msg = append(msg, place.Encode()...)
		}
		prevSlots = place.SnapshotSlots(prevSlots)
		if fc != nil {
			fc.BcastRoot(msg)
		} else {
			c.Bcast(0, msg)
		}

		// The master works its own partition like any slave. Step's
		// evaluation sees the previous iteration's merged solution, so μ
		// tracking covers every merge with no duplicate evaluation.
		eng.DomainFromRows(assign[0])
		opt.report(eng.Step())

		// Merge the slaves' rows into the master's placement.
		for r := 1; r < c.Size(); r++ {
			if fc != nil {
				if len(assign[r]) == 0 {
					continue // dead this iteration: its rows went to survivors
				}
				data, _, err := fc.TryRecv(r, tagT2Rows)
				if err != nil {
					// The rank died between broadcast and merge. Its rows
					// simply keep their pre-iteration positions (still a
					// valid placement) and move to survivors next round.
					continue
				}
				if err := eng.Placement().ApplyRows(data); err != nil {
					fc.DropRank(r, fmt.Errorf("parallel: corrupt row merge: %w", err))
					continue
				}
				continue
			}
			data, _ := c.Recv(r, tagT2Rows)
			if err := eng.Placement().ApplyRows(data); err != nil {
				return nil, fmt.Errorf("parallel: merging rank %d rows: %w", r, err)
			}
		}
		eng.Placement().Recompute()
		telemetry.ExchangeRoundType2Ns.Observe(int64(time.Since(roundStart)))

		if targetMu > 0 && !res.ReachedTarget && eng.BestMu() >= targetMu {
			res.ReachedTarget = true
			res.TimeToTarget = c.Elapsed()
			break
		}
	}
	if fc != nil {
		fc.BcastRoot(nil) // stop signal, skipping dead ranks
	} else {
		c.Bcast(0, nil) // stop signal
	}

	// Evaluate the final merged solution (Step never saw the last merge)
	// and check its integrity once.
	eng.EvaluateCosts()
	if err := eng.Placement().Validate(); err != nil {
		return nil, fmt.Errorf("parallel: final merged solution invalid: %w", err)
	}

	er := eng.Result()
	res.BestMu = er.BestMu
	res.BestCosts = er.BestCosts
	res.Best = er.Best
	res.Iters = er.Iters
	res.MuTrace = er.MuTrace
	res.Telemetry = er.Telemetry
	if fc != nil {
		res.FailedRanks = failedRankList(fc)
	}
	return res, nil
}

const tagT2Rows = 20

func typeIISlave(prob *core.Problem, c Comm) error {
	// Each slave draws selection randomness from its own stream.
	slaveRng := rng.NewStream(prob.Cfg.Seed, uint64(1000+c.Rank()))
	eng := prob.EngineFrom(layout.New(prob.Ckt, prob.Cfg.NumRows), slaveRng)
	havePlacement := false
	for {
		data := c.Bcast(0, nil)
		if len(data) == 0 {
			return nil
		}
		assign, rest, err := decodeAssignment(data)
		if err != nil {
			return err
		}
		if len(assign) != c.Size() {
			return fmt.Errorf("parallel: assignment for %d ranks, cluster has %d", len(assign), c.Size())
		}
		if len(rest) == 0 {
			return fmt.Errorf("parallel: rank %d received broadcast without payload kind", c.Rank())
		}
		kind, rest := rest[0], rest[1:]
		switch kind {
		case bcastFull:
			place, err := layout.DecodePlacement(prob.Ckt, rest)
			if err != nil {
				return fmt.Errorf("parallel: rank %d decoding placement: %w", c.Rank(), err)
			}
			eng.SetPlacement(place)
			havePlacement = true
		case bcastDelta:
			// Patch the previous broadcast state in place: the entries for
			// this rank's own last contribution are no-ops, the rest move
			// cells the other ranks reallocated. The engine's cached net
			// state stays warm — only the dirty nets are re-estimated.
			if !havePlacement {
				return fmt.Errorf("parallel: rank %d received delta before any full placement", c.Rank())
			}
			deltas, err := decodeSlotDeltas(rest)
			if err != nil {
				return err
			}
			if err := eng.PatchPlacement(deltas); err != nil {
				return fmt.Errorf("parallel: rank %d patching placement: %w", c.Rank(), err)
			}
		default:
			return fmt.Errorf("parallel: rank %d received unknown broadcast kind %#x", c.Rank(), kind)
		}
		myRows := assign[c.Rank()]
		eng.DomainFromRows(myRows)
		eng.Step()
		c.Send(0, tagT2Rows, eng.Placement().EncodeRows(myRows))
	}
}
