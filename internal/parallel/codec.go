package parallel

import (
	"encoding/binary"
	"fmt"
	"math"

	"simevo/internal/layout"
	"simevo/internal/netlist"
)

// Wire helpers for the strategy protocols. All integers are little-endian.

func appendU32(buf []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(buf, v)
}

func appendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func encodeF64s(vals []float64) []byte {
	buf := make([]byte, 0, 8*len(vals))
	for _, v := range vals {
		buf = appendF64(buf, v)
	}
	return buf
}

func decodeF64s(data []byte) ([]float64, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("parallel: float payload length %d not a multiple of 8", len(data))
	}
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out, nil
}

// Type II broadcast payload kinds: a full placement encoding, or a batch of
// coordinate deltas patching the previous broadcast state in place.
const (
	bcastFull  = 0xF1
	bcastDelta = 0xD2
)

// appendSlotDeltas serializes a slot-delta batch: count, then per entry the
// cell id and its target slot — 12 bytes per moved cell, against 4 bytes
// per cell (plus row headers) for a full placement.
func appendSlotDeltas(buf []byte, ds []layout.SlotDelta) []byte {
	buf = appendU32(buf, uint32(len(ds)))
	for _, d := range ds {
		buf = appendU32(buf, uint32(d.Cell))
		buf = appendU32(buf, uint32(d.Row))
		buf = appendU32(buf, uint32(d.Idx))
	}
	return buf
}

// decodeSlotDeltas parses appendSlotDeltas output. Slot validity is checked
// by layout.Placement.ApplySlotDeltas against the live placement.
func decodeSlotDeltas(data []byte) ([]layout.SlotDelta, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("parallel: truncated delta batch (%d bytes)", len(data))
	}
	count := binary.LittleEndian.Uint32(data)
	if count > 1<<24 {
		return nil, fmt.Errorf("parallel: absurd delta count %d", count)
	}
	if len(data) != 4+12*int(count) {
		return nil, fmt.Errorf("parallel: delta batch of %d entries has %d bytes", count, len(data))
	}
	out := make([]layout.SlotDelta, count)
	for i := range out {
		off := 4 + 12*i
		out[i] = layout.SlotDelta{
			Cell: netlist.CellID(binary.LittleEndian.Uint32(data[off:])),
			Row:  int32(binary.LittleEndian.Uint32(data[off+4:])),
			Idx:  int32(binary.LittleEndian.Uint32(data[off+8:])),
		}
	}
	return out, nil
}

// encodeAssignment flattens a row assignment: ranks, then per rank a row
// count followed by the row indices.
func encodeAssignment(assign [][]int) []byte {
	n := 1
	for _, rows := range assign {
		n += 1 + len(rows)
	}
	buf := make([]byte, 0, 4*n)
	buf = appendU32(buf, uint32(len(assign)))
	for _, rows := range assign {
		buf = appendU32(buf, uint32(len(rows)))
		for _, r := range rows {
			buf = appendU32(buf, uint32(r))
		}
	}
	return buf
}

func decodeAssignment(data []byte) ([][]int, []byte, error) {
	off := 0
	next := func() (uint32, error) {
		if off+4 > len(data) {
			return 0, fmt.Errorf("parallel: truncated assignment at %d", off)
		}
		v := binary.LittleEndian.Uint32(data[off:])
		off += 4
		return v, nil
	}
	ranks, err := next()
	if err != nil {
		return nil, nil, err
	}
	if ranks > 1<<16 {
		return nil, nil, fmt.Errorf("parallel: absurd rank count %d", ranks)
	}
	out := make([][]int, ranks)
	for j := range out {
		count, err := next()
		if err != nil {
			return nil, nil, err
		}
		if count > 1<<20 {
			return nil, nil, fmt.Errorf("parallel: absurd row count %d", count)
		}
		rows := make([]int, count)
		for i := range rows {
			v, err := next()
			if err != nil {
				return nil, nil, err
			}
			rows[i] = int(v)
		}
		out[j] = rows
	}
	return out, data[off:], nil
}
