package jobs

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"simevo/internal/core"
	"simevo/internal/telemetry"
	"simevo/internal/transport"
)

// Manager errors surfaced to the API layer.
var (
	ErrNotFound  = errors.New("jobs: job not found")
	ErrQueueFull = errors.New("jobs: submission queue is full")
	ErrClosed    = errors.New("jobs: manager is closed")
)

// Options configures a Manager. Zero values select sensible defaults.
type Options struct {
	// Workers is the worker-pool size: the number of placement runs
	// executing concurrently (default 2).
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker; further
	// submissions fail with ErrQueueFull (default 64).
	QueueDepth int
	// CacheSize is the LRU result-cache capacity in entries; negative
	// disables caching (default 128).
	CacheSize int
	// MaxJobs bounds the in-memory job store; the oldest terminal jobs
	// are evicted past it (default 1024).
	MaxJobs int
	// Hub, when non-nil, is the cluster coordinator whose registered
	// simevo-worker processes serve jobs submitted with transport "tcp".
	// Nil rejects such jobs at submission. The manager does not own the
	// hub; the caller closes it.
	Hub *transport.Hub
	// Journal, when non-nil, is the append-only job log. Every submission
	// and state transition is recorded, and NewManager replays the log:
	// finished jobs reappear as terminal history (warming the result
	// cache), unfinished ones are re-enqueued under their original IDs.
	// The manager does not own the journal; the caller closes it after
	// Close.
	Journal *Journal
}

func (o *Options) defaults() {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheSize == 0 {
		o.CacheSize = 128
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 1024
	}
}

// Stats is a point-in-time account of the manager, served by /healthz.
type Stats struct {
	Workers   int `json:"workers"`
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Completed int `json:"completed"`
	Stored    int `json:"stored"`
	Cached    int `json:"cached"`
	// ClusterWorkers is the number of idle simevo-worker processes
	// registered with the cluster hub (-1 when no hub is configured).
	ClusterWorkers int `json:"cluster_workers"`
	// ClusterWorkerDetail expands ClusterWorkers with each parked
	// worker's address and lifetime traffic; omitted without a hub.
	ClusterWorkerDetail []transport.WorkerDetail `json:"cluster_workers_detail,omitempty"`
}

// Manager owns the job store, the result cache, and the worker pool.
type Manager struct {
	opt Options

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu      sync.Mutex
	cond    *sync.Cond // signaled when pending grows or the manager closes
	closed  bool
	seq     int
	pending []*Job // FIFO of queued jobs; cancellation removes entries
	jobs    map[string]*Job
	order   []string // insertion order, for listing and eviction
	cache   *lruCache
}

// NewManager starts a manager with Options.Workers pool goroutines.
func NewManager(opt Options) *Manager {
	opt.defaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		opt:        opt,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		cache:      newLRUCache(opt.CacheSize),
	}
	m.cond = sync.NewCond(&m.mu)
	if opt.Journal != nil {
		// Replay before the pool starts: re-enqueued jobs must already be
		// pending when the first worker looks at the queue.
		m.restore(opt.Journal.Replayed())
	}
	for i := 0; i < opt.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// journal appends one record to the configured journal, if any. Append
// errors (full disk, yanked volume) are logged, not propagated: losing
// durability must not take the in-memory queue down.
func (m *Manager) journal(rec journalRecord) {
	if m.opt.Journal == nil {
		return
	}
	if err := m.opt.Journal.append(rec); err != nil {
		log.Printf("jobs: journal append failed: %v", err)
	}
}

// restore rebuilds the manager's state from replayed journal records.
// Runs once from NewManager, before the worker pool starts.
func (m *Manager) restore(recs []journalRecord) {
	type hist struct {
		spec     *Spec
		created  time.Time
		started  time.Time
		finished time.Time
		state    State
		result   *Result
		errMsg   string
	}
	byID := make(map[string]*hist)
	var order []string
	for i := range recs {
		rec := &recs[i]
		switch rec.Type {
		case "submit":
			if rec.ID == "" || rec.Spec == nil {
				continue
			}
			if _, dup := byID[rec.ID]; dup {
				continue
			}
			byID[rec.ID] = &hist{spec: rec.Spec, created: rec.Time}
			order = append(order, rec.ID)
		case "start":
			if h := byID[rec.ID]; h != nil {
				h.started = rec.Time
			}
		case "finish":
			if h := byID[rec.ID]; h != nil && h.state == "" {
				h.state = rec.State
				h.finished = rec.Time
				h.result = rec.Result
				h.errMsg = rec.Error
			}
		}
	}
	replayed := 0
	for _, id := range order {
		h := byID[id]
		var n int
		if _, err := fmt.Sscanf(id, "j-%d", &n); err == nil && n > m.seq {
			m.seq = n
		}
		job := &Job{id: id, spec: *h.spec, fp: h.spec.Fingerprint(), created: h.created}
		if h.spec.Bench != "" {
			sum := sha256.Sum256([]byte(h.spec.Bench))
			job.benchDigest = "sha256:" + hex.EncodeToString(sum[:8])
		}
		if h.state.Terminal() {
			job.state = h.state
			job.started = h.started
			job.finished = h.finished
			job.result = h.result
			job.err = h.errMsg
			if job.spec.Bench != "" {
				job.spec.Bench = job.benchDigest
			}
			if h.state == StateDone && h.result != nil &&
				!h.result.Degraded && !h.result.TransportFallback {
				m.cache.put(job.fp, *h.result)
			}
			m.storeLocked(job)
			continue
		}
		// Submitted (or even started) but never finished: the process died
		// under it. Re-enqueue under the original id; a half-done run
		// restarts from scratch — placement runs are idempotent.
		job.state = StateQueued
		m.pending = append(m.pending, job)
		m.storeLocked(job)
		replayed++
		telemetry.JobsReplayed.Inc()
	}
	telemetry.JobQueueDepth.Set(int64(len(m.pending)))
	if replayed > 0 {
		log.Printf("jobs: journal replay re-enqueued %d unfinished job(s)", replayed)
	}
}

// Close cancels every running job, drains the pool, and rejects further
// submissions. It blocks until all workers exit.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.baseCancel()
	m.wg.Wait()
}

// Submit validates, caches-checks, and enqueues a job, returning its
// initial view. A cache hit returns an already-done job carrying the
// cached result.
func (m *Manager) Submit(spec Spec) (View, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return View{}, err
	}
	fp := norm.Fingerprint()

	if norm.Transport == TransportTCP && m.opt.Hub == nil {
		return View{}, fmt.Errorf("jobs: transport %q needs the service started with a cluster listener", norm.Transport)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return View{}, ErrClosed
	}
	job := &Job{
		spec:    norm,
		fp:      fp,
		created: time.Now(),
	}
	if norm.Bench != "" {
		sum := sha256.Sum256([]byte(norm.Bench))
		job.benchDigest = "sha256:" + hex.EncodeToString(sum[:8])
	}
	if res, ok := m.cache.get(fp); ok {
		telemetry.JobsSubmitted.Inc()
		telemetry.JobsCacheHits.Inc()
		res.Cached = true
		m.seq++
		job.id = fmt.Sprintf("j-%06d", m.seq)
		job.state = StateDone
		job.finished = job.created
		job.result = &res
		job.spec.Bench = job.benchDigest // payload not needed, keep the digest
		m.storeLocked(job)
		m.journal(journalRecord{Type: "submit", ID: job.id, Time: job.created, Spec: &norm})
		m.journal(journalRecord{Type: "finish", ID: job.id, Time: job.finished, State: StateDone, Result: job.result})
		return job.view(), nil
	}
	if len(m.pending) >= m.opt.QueueDepth {
		return View{}, ErrQueueFull
	}
	telemetry.JobsSubmitted.Inc()
	telemetry.JobsCacheMiss.Inc()
	m.seq++
	job.id = fmt.Sprintf("j-%06d", m.seq)
	job.state = StateQueued
	m.pending = append(m.pending, job)
	telemetry.JobQueueDepth.Set(int64(len(m.pending)))
	m.storeLocked(job)
	m.journal(journalRecord{Type: "submit", ID: job.id, Time: job.created, Spec: &norm})
	m.cond.Signal()
	return job.view(), nil
}

// storeLocked records a job and evicts the oldest terminal jobs past the
// store bound. Callers hold m.mu.
func (m *Manager) storeLocked(job *Job) {
	m.jobs[job.id] = job
	m.order = append(m.order, job.id)
	if len(m.order) <= m.opt.MaxJobs {
		return
	}
	kept := m.order[:0]
	excess := len(m.order) - m.opt.MaxJobs
	for _, id := range m.order {
		j := m.jobs[id]
		if excess > 0 {
			j.mu.Lock()
			terminal := j.state.Terminal()
			j.mu.Unlock()
			if terminal {
				delete(m.jobs, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// Get returns a job's current view.
func (m *Manager) Get(id string) (View, error) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return View{}, ErrNotFound
	}
	return job.view(), nil
}

// List returns every stored job in submission order.
func (m *Manager) List() []View {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	views := make([]View, len(jobs))
	for i, j := range jobs {
		views[i] = j.view()
	}
	return views
}

// Cancel requests cooperative cancellation. A queued job is finished
// immediately and its queue slot freed; a running job stops within one
// optimizer iteration and keeps its best-so-far result. Cancelling a
// terminal job is a no-op.
func (m *Manager) Cancel(id string) (View, error) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return View{}, ErrNotFound
	}
	job.mu.Lock()
	switch job.state {
	case StateQueued:
		for i, p := range m.pending {
			if p == job {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				break
			}
		}
		telemetry.JobQueueDepth.Set(int64(len(m.pending)))
		telemetry.JobsCanceled.Inc()
		job.cancelReq = true
		job.state = StateCanceled
		job.finished = time.Now()
		if job.spec.Bench != "" {
			job.spec.Bench = job.benchDigest
		}
		job.notifyLocked()
		m.journal(journalRecord{Type: "finish", ID: job.id, Time: job.finished, State: StateCanceled})
	case StateRunning:
		job.cancelReq = true
		if job.cancel != nil {
			job.cancel()
		}
	}
	job.mu.Unlock()
	m.mu.Unlock()
	return job.view(), nil
}

// Subscribe registers for change notifications on a job. The returned
// channel receives a coalesced wakeup whenever progress or state changes;
// read the current view with Get after each wakeup. Call the remover when
// done.
func (m *Manager) Subscribe(id string) (<-chan struct{}, func(), error) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, nil, ErrNotFound
	}
	ch, remove := job.subscribe()
	return ch, remove, nil
}

// Stats reports the pool and store occupancy.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		jobs = append(jobs, m.jobs[id])
	}
	st := Stats{Workers: m.opt.Workers, Stored: len(jobs), Cached: m.cache.len(), ClusterWorkers: -1}
	if m.opt.Hub != nil {
		st.ClusterWorkerDetail = m.opt.Hub.WorkerDetails()
		st.ClusterWorkers = len(st.ClusterWorkerDetail)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		default:
			st.Completed++
		}
		j.mu.Unlock()
	}
	return st
}

// worker drains the queue until Close. Jobs still pending at Close are
// drained too — runJob finishes them as canceled without building them.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.pending) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.pending) == 0 {
			m.mu.Unlock()
			return
		}
		job := m.pending[0]
		m.pending = m.pending[1:]
		telemetry.JobQueueDepth.Set(int64(len(m.pending)))
		m.mu.Unlock()
		m.runJob(job)
	}
}

// runJob drives one job from queued to a terminal state.
func (m *Manager) runJob(job *Job) {
	ctx, cancel := context.WithCancel(m.baseCtx)
	defer cancel()

	job.mu.Lock()
	if job.cancelReq || job.state != StateQueued {
		// Cancelled while waiting in the queue.
		job.mu.Unlock()
		return
	}
	if ctx.Err() != nil {
		// Manager closing: drop the queued job without building it.
		job.mu.Unlock()
		job.finish(StateCanceled, nil, "")
		m.journal(journalRecord{Type: "finish", ID: job.id, Time: time.Now(), State: StateCanceled})
		return
	}
	job.state = StateRunning
	job.started = time.Now()
	job.cancel = cancel
	job.notifyLocked()
	spec := job.spec
	job.mu.Unlock()
	m.journal(journalRecord{Type: "start", ID: job.id, Time: job.started})
	telemetry.JobsRunning.Add(1)
	defer telemetry.JobsRunning.Add(-1)

	total := spec.total()
	progress := core.Progress(func(st core.IterStats) {
		job.setProgress(st.Iter+1, total, st.Mu)
	})
	if spec.isMetaheuristic() {
		// The metaheuristics report 1-based counts already.
		progress = func(st core.IterStats) {
			job.setProgress(st.Iter, total, st.Mu)
		}
	}

	// Retry failed attempts with capped exponential backoff and jitter.
	// Transient cluster trouble — a worker fleet mid-restart, a run that
	// lost every rank — usually clears within a few backoff steps.
	var res *Result
	var err error
	for attempt := 0; ; attempt++ {
		res, err = runSpec(ctx, spec, progress, m.opt.Hub)
		if err == nil || ctx.Err() != nil || attempt >= spec.MaxRetries {
			break
		}
		telemetry.JobsRetries.Inc()
		wait := transport.Backoff(attempt+1, retryBackoffBase, retryBackoffMax, rand.Float64)
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
		case <-t.C:
		}
	}
	switch {
	case err != nil:
		job.finish(StateFailed, nil, err.Error())
		m.journal(journalRecord{Type: "finish", ID: job.id, Time: time.Now(), State: StateFailed, Error: err.Error()})
	case ctx.Err() != nil:
		// Cooperative cancellation: keep the best-so-far result but do
		// not cache a truncated run.
		job.finish(StateCanceled, res, "")
		m.journal(journalRecord{Type: "finish", ID: job.id, Time: time.Now(), State: StateCanceled, Result: res})
	default:
		job.finish(StateDone, res, "")
		m.journal(journalRecord{Type: "finish", ID: job.id, Time: time.Now(), State: StateDone, Result: res})
		if !res.Degraded && !res.TransportFallback {
			// Degraded and fallback results are honest outcomes for this
			// run but not canonical for the spec: do not cache them.
			m.mu.Lock()
			m.cache.put(job.fp, *res)
			m.mu.Unlock()
		}
	}
}

// Retry backoff bounds (see transport.Backoff).
const (
	retryBackoffBase = 500 * time.Millisecond
	retryBackoffMax  = 8 * time.Second
)
