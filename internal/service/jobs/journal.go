package jobs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// Journal is the append-only JSONL job log that makes submissions survive
// a service restart: every submission, start and terminal transition is
// one line, fsynced before the call that caused it returns to the queue
// machinery. On startup the manager replays the journal — jobs with a
// finish record are restored as terminal history (warming the result
// cache), jobs without one are re-enqueued under their original IDs.
//
// The format is deliberately boring: one self-describing JSON object per
// line, so a journal survives version skew (unknown fields are ignored)
// and a crash mid-write (a truncated last line is discarded on replay).
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string

	history []journalRecord // parsed at open; consumed once by the manager
}

// journalRecord is one journal line.
type journalRecord struct {
	// Type is the transition: "submit", "start" or "finish".
	Type string    `json:"type"`
	ID   string    `json:"id"`
	Time time.Time `json:"time"`
	// Spec is the normalized job spec; submit records only.
	Spec *Spec `json:"spec,omitempty"`
	// State is the terminal state; finish records only.
	State State `json:"state,omitempty"`
	// Result is the outcome of a done (or cancelled best-so-far) job;
	// finish records only.
	Result *Result `json:"result,omitempty"`
	// Error is the failure message; finish records only.
	Error string `json:"error,omitempty"`
}

// OpenJournal opens (creating if needed) the journal at path, parsing any
// existing records for replay. A record that fails to parse ends the
// replay at that point — everything before it is kept, so a crash that
// truncated the final line loses at most that one transition.
func OpenJournal(path string) (*Journal, error) {
	j := &Journal{path: path}
	if f, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024) // uploaded netlists travel in submit records
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var rec journalRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				break // truncated tail from a crash mid-write
			}
			j.history = append(j.history, rec)
		}
		f.Close()
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("jobs: opening journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: opening journal for append: %w", err)
	}
	j.f = f
	return j, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Replayed returns the records parsed at open, oldest first. The manager
// consumes them once at construction.
func (j *Journal) Replayed() []journalRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.history
}

// append writes one record and syncs it to stable storage. Write errors
// are returned for the caller to log — a full disk must not take the
// in-memory queue down with it.
func (j *Journal) append(rec journalRecord) error {
	blob, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: encoding journal record: %w", err)
	}
	blob = append(blob, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("jobs: journal is closed")
	}
	if _, err := j.f.Write(blob); err != nil {
		return fmt.Errorf("jobs: appending journal record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("jobs: syncing journal: %w", err)
	}
	return nil
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
