// Package jobs implements the placement job manager behind the simevo
// service: a bounded worker pool that schedules SimE runs (serial, Type
// I/II/III) and the comparison metaheuristics (SA, GA, TS) over named or
// uploaded benchmark circuits, an in-memory job store with cooperative
// cancellation, and an LRU result cache keyed by the normalized job
// specification — (circuit, config, strategy, seed).
package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"simevo/internal/fuzzy"
	"simevo/internal/gen"
)

// Strategy names accepted by Spec.Strategy.
const (
	StrategySerial  = "serial"
	StrategyTypeI   = "type1"
	StrategyTypeII  = "type2"
	StrategyTypeIII = "type3"
	StrategySA      = "sa"
	StrategyGA      = "ga"
	StrategyTS      = "ts"
)

// Transport names accepted by Spec.Transport.
const (
	TransportSim = "sim" // in-process virtual-time cluster (default)
	TransportTCP = "tcp" // registered simevo-worker processes over TCP
)

// Strategies lists the accepted strategy names.
func Strategies() []string {
	return []string{StrategySerial, StrategyTypeI, StrategyTypeII,
		StrategyTypeIII, StrategySA, StrategyGA, StrategyTS}
}

// Spec is a placement job request. Exactly one of Circuit and Bench names
// the design; everything else parameterizes the optimizer. The zero value
// of every optional field means "use the default", so identical requests
// normalize to identical specs and hit the result cache.
type Spec struct {
	// Circuit names a built-in benchmark (see gen.Catalog).
	Circuit string `json:"circuit,omitempty"`
	// Bench is an inline ISCAS-89 .bench netlist (uploaded circuit).
	Bench string `json:"bench,omitempty"`
	// Strategy selects the optimizer: serial | type1 | type2 | type3 for
	// SimE, sa | ga | ts for the comparison metaheuristics.
	Strategy string `json:"strategy"`
	// Objectives is the cost term set as a plus-separated term list:
	// "wire", "wire+power" (default), "wire+power+delay",
	// "wire+power+congestion", or "wire+power+delay+congestion"
	// ("congest" is accepted for "congestion"; term order is free and
	// normalizes to the canonical spelling). The metaheuristics support
	// only "wire+power".
	Objectives string `json:"objectives,omitempty"`
	// MaxIters bounds SimE iterations, TS iterations, or GA generations
	// (default 350, GA 100). SA ignores it — see Moves.
	MaxIters int `json:"max_iters,omitempty"`
	// Moves is the SA move budget (default 20000).
	Moves int `json:"moves,omitempty"`
	// Seed drives all stochastic decisions; runs are reproducible.
	Seed uint64 `json:"seed,omitempty"`
	// Bias is the SimE selection bias B (SimE strategies only).
	Bias float64 `json:"bias,omitempty"`
	// TargetMu stops a run once the best μ(s) reaches it (0 disables;
	// SimE strategies only).
	TargetMu float64 `json:"target_mu,omitempty"`
	// Rows overrides the placement row count (0: layout default).
	Rows int `json:"rows,omitempty"`
	// Procs is the cluster size for type1/type2/type3 (default 4).
	Procs int `json:"procs,omitempty"`
	// Transport selects where a parallel strategy's ranks run: "sim" (the
	// default) for the in-process virtual-time cluster, "tcp" to farm the
	// slave ranks out to simevo-worker processes registered with the
	// service (the service itself is rank 0). Requires the server to run
	// with a cluster listener and Procs-1 registered workers.
	Transport string `json:"transport,omitempty"`
	// Pattern is the Type II row pattern: "fixed" (default) or "random".
	Pattern string `json:"pattern,omitempty"`
	// Retry is the Type III retry threshold (0: strategy default).
	Retry int `json:"retry,omitempty"`
	// Diversify gives each Type III searcher a distinct allocation order.
	Diversify bool `json:"diversify,omitempty"`
	// SyncExchange selects the legacy blocking Type III exchange protocol
	// (request/reply round trips with full cost-state rebuilds on
	// adoption). Default false: the asynchronous epoch-tagged protocol
	// with speculative adoption.
	SyncExchange bool `json:"sync_exchange,omitempty"`
	// MaxRetries is how many times a failed run is retried (with capped
	// exponential backoff between attempts) before the job is marked
	// failed. It shapes scheduling, not the search, so like
	// IncludePlacement it is excluded from the cache key.
	MaxRetries int `json:"max_retries,omitempty"`
	// DisableIncremental forces the from-scratch reference evaluation
	// instead of the incremental cost pipeline. The search trajectory is
	// bitwise identical either way — this is the escape hatch / A-B knob
	// for validating the incremental machinery in production, at full-
	// recompute cost per iteration.
	DisableIncremental bool `json:"disable_incremental,omitempty"`
	// IncludePlacement adds the final row-by-row cell placement to the
	// result payload. It does not affect the search (or the cache key).
	IncludePlacement bool `json:"include_placement,omitempty"`
}

// strategyAliases maps accepted spellings to canonical strategy names.
var strategyAliases = map[string]string{
	"serial": StrategySerial,
	"type1":  StrategyTypeI, "typei": StrategyTypeI, "i": StrategyTypeI,
	"type2": StrategyTypeII, "typeii": StrategyTypeII, "ii": StrategyTypeII,
	"type3": StrategyTypeIII, "typeiii": StrategyTypeIII, "iii": StrategyTypeIII,
	"sa": StrategySA, "ga": StrategyGA, "ts": StrategyTS,
}

// objectiveTerms maps accepted objective term spellings to their bits.
var objectiveTerms = map[string]fuzzy.Objectives{
	"wire":       fuzzy.Wire,
	"power":      fuzzy.Power,
	"delay":      fuzzy.Delay,
	"congestion": fuzzy.Congest,
	"congest":    fuzzy.Congest, // common short spelling
}

// objectiveSets lists the supported term combinations, keyed by set. The
// canonical spelling (the fuzzy.Objectives String) is what a normalized
// spec carries, so any term order or alias hits the same cache key.
var objectiveSets = map[fuzzy.Objectives]string{
	fuzzy.Wire:                  fuzzy.Wire.String(),
	fuzzy.WirePower:             fuzzy.WirePower.String(),
	fuzzy.WirePowerDelay:        fuzzy.WirePowerDelay.String(),
	fuzzy.WirePowerCongest:      fuzzy.WirePowerCongest.String(),
	fuzzy.WirePowerDelayCongest: fuzzy.WirePowerDelayCongest.String(),
}

// supportedObjectives lists the canonical combination spellings for error
// messages, in increasing-set order.
func supportedObjectives() []string {
	return []string{
		fuzzy.Wire.String(), fuzzy.WirePower.String(), fuzzy.WirePowerDelay.String(),
		fuzzy.WirePowerCongest.String(), fuzzy.WirePowerDelayCongest.String(),
	}
}

// parseObjectives resolves a plus-separated objective list to its set and
// canonical spelling. Unknown terms and unsupported combinations fail
// fast with the accepted vocabulary in the error.
func parseObjectives(s string) (fuzzy.Objectives, string, error) {
	var set fuzzy.Objectives
	for _, term := range strings.Split(strings.ToLower(s), "+") {
		term = strings.TrimSpace(term)
		bits, ok := objectiveTerms[term]
		if !ok {
			return 0, "", fmt.Errorf("jobs: unknown objective term %q in %q (have wire, power, delay, congestion)", term, s)
		}
		set |= bits
	}
	canon, ok := objectiveSets[set]
	if !ok {
		return 0, "", fmt.Errorf("jobs: unsupported objective combination %q (have %s)",
			s, strings.Join(supportedObjectives(), ", "))
	}
	return set, canon, nil
}

func (s Spec) isParallel() bool {
	return s.Strategy == StrategyTypeI || s.Strategy == StrategyTypeII || s.Strategy == StrategyTypeIII
}

func (s Spec) isMetaheuristic() bool {
	return s.Strategy == StrategySA || s.Strategy == StrategyGA || s.Strategy == StrategyTS
}

// objectives returns the parsed objective set of a normalized spec.
func (s Spec) objectives() fuzzy.Objectives {
	set, _, _ := parseObjectives(s.Objectives)
	return set
}

// total returns the progress denominator: the iteration/generation budget,
// or the move budget for SA.
func (s Spec) total() int {
	if s.Strategy == StrategySA {
		return s.Moves
	}
	return s.MaxIters
}

// Normalize validates a request and fills defaults, returning the
// canonical spec used for scheduling and cache keying.
func (s Spec) Normalize() (Spec, error) {
	if (s.Circuit == "") == (s.Bench == "") {
		return Spec{}, fmt.Errorf("jobs: exactly one of circuit and bench is required")
	}
	if s.Circuit != "" {
		if _, err := gen.CatalogParams(s.Circuit); err != nil {
			return Spec{}, fmt.Errorf("jobs: unknown circuit %q (have %v)", s.Circuit, gen.Catalog())
		}
	}
	canon, ok := strategyAliases[strings.ToLower(s.Strategy)]
	if !ok {
		return Spec{}, fmt.Errorf("jobs: unknown strategy %q (have %v)", s.Strategy, Strategies())
	}
	s.Strategy = canon

	if s.Objectives == "" {
		s.Objectives = "wire+power"
	}
	set, canon, err := parseObjectives(s.Objectives)
	if err != nil {
		return Spec{}, err
	}
	s.Objectives = canon
	if s.isMetaheuristic() && set != fuzzy.WirePower {
		return Spec{}, fmt.Errorf("jobs: strategy %s supports only wire+power objectives", s.Strategy)
	}

	if s.MaxIters < 0 || s.Moves < 0 || s.Rows < 0 || s.Procs < 0 || s.Retry < 0 || s.MaxRetries < 0 {
		return Spec{}, fmt.Errorf("jobs: negative budgets are invalid")
	}
	switch {
	case s.Strategy == StrategySA:
		// SA is budgeted in moves; the iteration knobs do not apply.
		s.MaxIters = 0
		if s.Moves == 0 {
			s.Moves = 20000
		}
	case s.MaxIters == 0 && s.Strategy == StrategyGA:
		s.MaxIters = 100
	case s.MaxIters == 0:
		s.MaxIters = 350
	}
	if s.Strategy != StrategySA {
		s.Moves = 0
	}
	if s.isMetaheuristic() {
		// Ignored by SA/GA/TS; zero them so equivalent requests share a
		// cache key instead of silently diverging.
		s.TargetMu = 0
		s.Bias = 0
	}

	if s.isParallel() {
		if s.Procs == 0 {
			s.Procs = 4
		}
		min := 2
		if s.Strategy == StrategyTypeIII {
			min = 3
		}
		if s.Procs < min {
			return Spec{}, fmt.Errorf("jobs: strategy %s needs procs >= %d, got %d", s.Strategy, min, s.Procs)
		}
		if s.Transport == "" {
			s.Transport = TransportSim
		}
		s.Transport = strings.ToLower(s.Transport)
		if s.Transport != TransportSim && s.Transport != TransportTCP {
			return Spec{}, fmt.Errorf("jobs: unknown transport %q (have %s, %s)", s.Transport, TransportSim, TransportTCP)
		}
	} else {
		s.Procs = 0
		// In-process strategies accept only the (redundant) "sim"; a tcp
		// request on them would otherwise be silently ignored.
		s.Transport = strings.ToLower(s.Transport)
		if s.Transport != "" && s.Transport != TransportSim {
			return Spec{}, fmt.Errorf("jobs: strategy %s runs in-process; transport %q applies only to type1/type2/type3", s.Strategy, s.Transport)
		}
		s.Transport = ""
	}

	if s.Strategy == StrategyTypeII {
		if s.Pattern == "" {
			s.Pattern = "fixed"
		}
		s.Pattern = strings.ToLower(s.Pattern)
		if s.Pattern != "fixed" && s.Pattern != "random" {
			return Spec{}, fmt.Errorf("jobs: unknown pattern %q (have fixed, random)", s.Pattern)
		}
	} else {
		s.Pattern = ""
	}
	if s.Strategy != StrategyTypeIII {
		s.Retry = 0
		s.Diversify = false
		s.SyncExchange = false
	}
	return s, nil
}

// Fingerprint is the result-cache key: a digest of every normalized field
// that influences the search outcome. IncludePlacement and MaxRetries are
// deliberately excluded — they shape the response payload and the
// scheduling, not the result.
func (s Spec) Fingerprint() string {
	key := s
	key.IncludePlacement = false
	key.MaxRetries = 0
	if key.Bench != "" {
		// Uploaded netlists can be large; key on their digest.
		sum := sha256.Sum256([]byte(key.Bench))
		key.Bench = hex.EncodeToString(sum[:])
	}
	blob, err := json.Marshal(key)
	if err != nil {
		panic("jobs: spec not marshalable: " + err.Error())
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:16])
}
