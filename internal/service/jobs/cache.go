package jobs

import "container/list"

// lruCache is a fixed-capacity LRU map from spec fingerprints to completed
// results. It is not safe for concurrent use; the manager serializes
// access under its own lock.
type lruCache struct {
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	res Result
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns a copy of the cached result and refreshes its recency.
func (c *lruCache) get(key string) (Result, bool) {
	el, ok := c.items[key]
	if !ok {
		return Result{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

// put inserts or refreshes a result, evicting the least recently used
// entry when over capacity.
func (c *lruCache) put(key string, res Result) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).res = res
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// len returns the number of cached results.
func (c *lruCache) len() int { return c.ll.Len() }
