package jobs

import (
	"context"
	"sync"
	"time"

	"simevo/internal/telemetry"
)

// State is a job's lifecycle phase.
type State string

// Job states. Queued and Running are live; Done, Failed and Canceled are
// terminal.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Progress is a coalesced snapshot of a running job's advance.
type Progress struct {
	// Iter counts completed iterations (SA: moves; GA: generations).
	Iter int `json:"iter"`
	// Total is the configured budget, the progress denominator.
	Total int `json:"total,omitempty"`
	// Mu is the last reported solution quality μ(s).
	Mu float64 `json:"mu"`
}

// Result is a finished (or cancelled best-so-far) placement outcome.
type Result struct {
	BestMu   float64 `json:"best_mu"`
	Wire     float64 `json:"wire"`
	Power    float64 `json:"power,omitempty"`
	Delay    float64 `json:"delay,omitempty"`
	Congest  float64 `json:"congest,omitempty"`
	Iters    int     `json:"iters"`
	BestIter int     `json:"best_iter,omitempty"`
	// RuntimeMS is wall-clock time of the run on the service host.
	RuntimeMS float64 `json:"runtime_ms"`
	// VirtualTimeMS is the modeled cluster makespan (parallel strategies).
	VirtualTimeMS float64 `json:"virtual_time_ms,omitempty"`
	// Placement is the final row-by-row cell name layout. Stored always;
	// serialized only when the spec asked for it.
	Placement [][]string `json:"placement,omitempty"`
	// Cached marks a result served from the LRU cache.
	Cached bool `json:"cached,omitempty"`
	// Degraded marks a cluster run that lost ranks mid-flight and finished
	// on the survivors; FailedRanks lists the casualties. Degraded results
	// are valid placements but are never cached.
	Degraded    bool  `json:"degraded,omitempty"`
	FailedRanks []int `json:"failed_ranks,omitempty"`
	// TransportFallback marks a tcp job that ran on the in-process
	// simulated cluster because no workers were registered with the hub.
	TransportFallback bool `json:"transport_fallback,omitempty"`
}

// View is the externally visible job snapshot (the JSON wire format).
// Uploaded netlists are abridged: Spec.Bench holds a "sha256:..." digest
// of the upload, never the payload itself.
type View struct {
	ID       string     `json:"id"`
	State    State      `json:"state"`
	Spec     Spec       `json:"spec"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Progress *Progress  `json:"progress,omitempty"`
	Result   *Result    `json:"result,omitempty"`
	Error    string     `json:"error,omitempty"`
}

// Job is one scheduled placement run. All mutable fields are guarded by mu;
// the spec, id and creation time are immutable after construction.
type Job struct {
	id      string
	spec    Spec
	fp      string
	created time.Time
	// benchDigest abridges an uploaded netlist for views ("sha256:...");
	// empty for catalog circuits.
	benchDigest string

	mu        sync.Mutex
	state     State
	started   time.Time
	finished  time.Time
	progress  Progress
	result    *Result
	err       string
	cancel    context.CancelFunc // non-nil while running
	cancelReq bool
	subs      map[int]chan struct{}
	nextSub   int
}

// view snapshots the job under its lock.
func (j *Job) view() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID:      j.id,
		State:   j.state,
		Spec:    j.spec,
		Created: j.created,
		Error:   j.err,
	}
	if v.Spec.Bench != "" {
		// Uploaded netlists can be large and views are re-serialized on
		// every progress frame; carry the digest, not the payload.
		v.Spec.Bench = j.benchDigest
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.progress.Total > 0 {
		p := j.progress
		v.Progress = &p
	}
	if j.result != nil {
		r := *j.result
		if !j.spec.IncludePlacement {
			r.Placement = nil
		}
		v.Result = &r
	}
	return v
}

// notifyLocked wakes every subscriber without blocking; a full channel
// already has a wakeup pending, which coalesces bursts of progress.
func (j *Job) notifyLocked() {
	for _, ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// subscribe registers a wakeup channel and returns it with its remover.
func (j *Job) subscribe() (<-chan struct{}, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.subs == nil {
		j.subs = make(map[int]chan struct{})
	}
	id := j.nextSub
	j.nextSub++
	ch := make(chan struct{}, 1)
	j.subs[id] = ch
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, id)
		j.mu.Unlock()
	}
}

// setProgress records a coalesced progress snapshot and wakes subscribers.
func (j *Job) setProgress(iter, total int, mu float64) {
	j.mu.Lock()
	j.progress = Progress{Iter: iter, Total: total, Mu: mu}
	j.notifyLocked()
	j.mu.Unlock()
}

// finish moves the job to a terminal state and wakes subscribers. The
// uploaded netlist payload, no longer needed, is released; views keep
// reporting its digest.
func (j *Job) finish(state State, res *Result, errMsg string) {
	switch state {
	case StateDone:
		telemetry.JobsDone.Inc()
	case StateFailed:
		telemetry.JobsFailed.Inc()
	case StateCanceled:
		telemetry.JobsCanceled.Inc()
	}
	j.mu.Lock()
	j.state = state
	j.finished = time.Now()
	j.result = res
	j.err = errMsg
	j.cancel = nil
	if j.spec.Bench != "" {
		j.spec.Bench = j.benchDigest
	}
	j.notifyLocked()
	j.mu.Unlock()
}
