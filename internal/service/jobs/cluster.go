package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"simevo/internal/core"
	"simevo/internal/parallel"
	"simevo/internal/transport"
)

// Real-cluster dispatch: the service (or simevo-run's -cluster mode) is
// rank 0 of a transport.Group; registered simevo-worker processes hold the
// remaining ranks. The job spec itself is the setup message — rank 0
// broadcasts the normalized spec as JSON, every rank builds the identical
// core.Problem from it (benchmark circuits regenerate deterministically,
// uploaded netlists travel inline), and then the ordinary strategy protocol
// runs unchanged over the wire.

// specOptions assembles the parallel options a normalized spec implies.
func specOptions(ctx context.Context, spec Spec, progress core.Progress) parallel.Options {
	opt := parallel.Options{
		Procs:        spec.Procs,
		TargetMu:     spec.TargetMu,
		Retry:        spec.Retry,
		Diversify:    spec.Diversify,
		SyncExchange: spec.SyncExchange,
		Context:      ctx,
		Progress:     progress,
	}
	if spec.Pattern == "random" {
		opt.Pattern = parallel.NewRandomPattern(spec.Seed)
	}
	return opt
}

// runRank dispatches one rank of a parallel strategy over a transport.
func runRank(t transport.Transport, spec Spec, prob *core.Problem, opt parallel.Options) (*parallel.Result, error) {
	switch spec.Strategy {
	case StrategyTypeI:
		return parallel.TypeIRank(t, prob, opt)
	case StrategyTypeII:
		return parallel.TypeIIRank(t, prob, opt)
	case StrategyTypeIII:
		return parallel.TypeIIIRank(t, prob, opt)
	}
	return nil, fmt.Errorf("jobs: strategy %q cannot run on a cluster", spec.Strategy)
}

// RunSpecOn executes a parallel job as rank 0 of an existing transport
// group: it ships the spec to every worker rank, runs the master role, and
// returns the converted result. The context cancels the master
// cooperatively (Type I/II wind their slaves down via the stop broadcast;
// Type III searchers run out their iteration budget on the workers — a
// real cluster has no shared memory to signal through).
func RunSpecOn(ctx context.Context, t transport.Transport, spec Spec, progress core.Progress) (*Result, error) {
	blob, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("jobs: encoding spec: %w", err)
	}
	prob, err := buildProblem(spec)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	var res *parallel.Result
	err = transport.Run(t, func(t transport.Transport) error {
		t.Bcast(0, blob)
		opt := specOptions(ctx, spec, progress)
		// Real clusters lose workers; degrade instead of failing. The
		// fault-free trajectory is bitwise identical either way.
		opt.Tolerate = true
		var err error
		res, err = runRank(t, spec, prob, opt)
		return err
	})
	if err != nil {
		return nil, err
	}
	res.VirtualTime = t.Elapsed()
	return convertParallel(res, prob, start), nil
}

// ServeRank executes one worker rank: receive the spec broadcast, build
// the problem, and run this rank's role in the strategy. It is the
// function simevo-worker passes to transport.Worker.Serve.
func ServeRank(ctx context.Context, t transport.Transport) error {
	if cn, ok := t.(transport.CancelNotifier); ok {
		// The coordinator's out-of-band cancel frame reaches this rank even
		// while it is deep in the strategy protocol; surface it as context
		// cancellation so the rank winds down at the next iteration check.
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-cn.CancelRequested():
				cancel()
			case <-done:
			}
		}()
	}
	blob := t.Bcast(0, nil)
	var spec Spec
	if err := json.Unmarshal(blob, &spec); err != nil {
		return fmt.Errorf("jobs: decoding spec broadcast: %w", err)
	}
	norm, err := spec.Normalize()
	if err != nil {
		return err
	}
	prob, err := buildProblem(norm)
	if err != nil {
		return err
	}
	_, err = runRank(t, norm, prob, specOptions(ctx, norm, nil))
	return err
}

// convertParallel maps a strategy result into the service result shape.
func convertParallel(res *parallel.Result, prob *core.Problem, start time.Time) *Result {
	return &Result{
		Degraded:      len(res.FailedRanks) > 0,
		FailedRanks:   res.FailedRanks,
		BestMu:        res.BestMu,
		Wire:          res.BestCosts.Wire,
		Power:         res.BestCosts.Power,
		Delay:         res.BestCosts.Delay,
		Congest:       res.BestCosts.Congest,
		Iters:         res.Iters,
		RuntimeMS:     msSince(start),
		VirtualTimeMS: float64(res.VirtualTime) / float64(time.Millisecond),
		Placement:     placementRows(res.Best, prob.Ckt),
	}
}
