package jobs

import (
	"context"
	"fmt"
	"strings"
	"time"

	"simevo/internal/core"
	"simevo/internal/gen"
	"simevo/internal/layout"
	"simevo/internal/metaheur"
	"simevo/internal/netlist"
	"simevo/internal/parallel"
	"simevo/internal/transport"
)

// clusterAcquireTimeout bounds how long a TCP-transport job waits for
// enough registered workers before failing.
const clusterAcquireTimeout = 30 * time.Second

// clusterCancelGrace is how long a cancelled TCP-transport job may keep
// winding down cooperatively before its group is interrupted.
const clusterCancelGrace = 30 * time.Second

// buildCircuit materializes the spec's design: a catalog benchmark or an
// uploaded .bench netlist.
func buildCircuit(spec Spec) (*netlist.Circuit, error) {
	if spec.Circuit != "" {
		return gen.Benchmark(spec.Circuit)
	}
	ckt, err := netlist.ParseBench("upload", strings.NewReader(spec.Bench))
	if err != nil {
		return nil, fmt.Errorf("jobs: parsing uploaded bench: %w", err)
	}
	return ckt, nil
}

// buildProblem assembles the shared problem data for a normalized spec.
func buildProblem(spec Spec) (*core.Problem, error) {
	ckt, err := buildCircuit(spec)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(spec.objectives())
	if spec.MaxIters > 0 {
		// SA specs carry no iteration bound (they budget moves); the
		// config default satisfies core validation and is never reached.
		cfg.MaxIters = spec.MaxIters
	}
	cfg.Seed = spec.Seed
	cfg.Bias = spec.Bias
	cfg.TargetMu = spec.TargetMu
	cfg.NumRows = spec.Rows
	cfg.DisableIncremental = spec.DisableIncremental
	// Server jobs stream progress instead of reading the trace, and
	// long-running jobs must not accumulate one μ sample per iteration
	// indefinitely — recording is off here (it stays on by default for
	// library and benchmark use).
	cfg.DisableMuTrace = true
	return core.NewProblem(ckt, cfg)
}

// placementRows renders a placement as row-by-row cell names.
func placementRows(p *layout.Placement, ckt *netlist.Circuit) [][]string {
	if p == nil {
		return nil
	}
	rows := make([][]string, p.NumRows())
	for r := range rows {
		ids := p.Row(r)
		names := make([]string, len(ids))
		for i, id := range ids {
			names[i] = ckt.Cells[id].Name
		}
		rows[r] = names
	}
	return rows
}

// runSpec executes a normalized spec to completion (or cancellation),
// reporting progress through the callback. On cancellation the
// best-so-far result is returned with a nil error. Parallel specs with the
// TCP transport are dispatched onto registered workers from the hub; every
// other spec runs in-process.
func runSpec(ctx context.Context, spec Spec, progress core.Progress, hub *transport.Hub) (*Result, error) {
	if spec.Transport == TransportTCP {
		if hub == nil {
			return nil, fmt.Errorf("jobs: tcp transport requested but the service has no cluster listener")
		}
		if hub.Workers() == 0 {
			// No workers have joined (yet, or at all): rather than wait out
			// the acquire timeout and fail, degrade to the in-process
			// simulated cluster — same strategy, same spec, flagged so the
			// caller knows where it ran.
			res, err := runSpecLocal(ctx, spec, progress)
			if res != nil {
				res.TransportFallback = true
			}
			return res, err
		}
		acquireCtx, cancel := context.WithTimeout(ctx, clusterAcquireTimeout)
		group, err := hub.Acquire(acquireCtx, spec.Procs-1)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("jobs: acquiring %d cluster workers: %w", spec.Procs-1, err)
		}
		defer group.Release()
		// Cancellation is cooperative first: an out-of-band cancel frame
		// tells every worker immediately, and the master winds the run down
		// between iterations keeping the best-so-far result. A master
		// wedged in a blocking receive (stalled or failed worker) cannot
		// observe the context, so past a grace period the group is
		// interrupted outright — the job fails but the pool slot is freed.
		finished := make(chan struct{})
		defer close(finished)
		stop := context.AfterFunc(ctx, func() {
			group.Cancel()
			select {
			case <-finished:
			case <-time.After(clusterCancelGrace):
				group.Interrupt(ctx.Err())
			}
		})
		defer stop()
		return RunSpecOn(ctx, group, spec, progress)
	}
	return runSpecLocal(ctx, spec, progress)
}

// runSpecLocal executes a spec in-process: serial and metaheuristic
// strategies directly, parallel strategies on the simulated cluster.
func runSpecLocal(ctx context.Context, spec Spec, progress core.Progress) (*Result, error) {
	prob, err := buildProblem(spec)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	switch spec.Strategy {
	case StrategySerial:
		eng := prob.NewEngine(0)
		res := eng.RunContext(ctx, progress)
		return &Result{
			BestMu:    res.BestMu,
			Wire:      res.BestCosts.Wire,
			Power:     res.BestCosts.Power,
			Delay:     res.BestCosts.Delay,
			Congest:   res.BestCosts.Congest,
			Iters:     res.Iters,
			BestIter:  res.BestIter,
			RuntimeMS: msSince(start),
			Placement: placementRows(res.Best, prob.Ckt),
		}, nil

	case StrategyTypeI, StrategyTypeII, StrategyTypeIII:
		opt := specOptions(ctx, spec, progress)
		var res *parallel.Result
		switch spec.Strategy {
		case StrategyTypeI:
			res, err = parallel.RunTypeI(prob, opt)
		case StrategyTypeII:
			res, err = parallel.RunTypeII(prob, opt)
		default:
			res, err = parallel.RunTypeIII(prob, opt)
		}
		if err != nil {
			return nil, err
		}
		return convertParallel(res, prob, start), nil

	case StrategySA, StrategyGA, StrategyTS:
		var res *metaheur.Result
		switch spec.Strategy {
		case StrategySA:
			res, err = metaheur.RunSAContext(ctx, prob,
				metaheur.SAConfig{Moves: spec.Moves, Seed: spec.Seed}, progress)
		case StrategyGA:
			res, err = metaheur.RunGAContext(ctx, prob,
				metaheur.GAConfig{Generations: spec.MaxIters, Seed: spec.Seed}, progress)
		default:
			res, err = metaheur.RunTSContext(ctx, prob,
				metaheur.TSConfig{Iters: spec.MaxIters, Seed: spec.Seed}, progress)
		}
		if err != nil {
			return nil, err
		}
		return &Result{
			BestMu:    res.BestMu,
			Wire:      res.BestCosts.Wire,
			Power:     res.BestCosts.Power,
			Iters:     res.Moves,
			RuntimeMS: msSince(start),
			Placement: placementRows(res.Best, prob.Ckt),
		}, nil
	}
	return nil, fmt.Errorf("jobs: unhandled strategy %q", spec.Strategy)
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}
