package jobs

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// appendRaw writes bytes to the journal file outside the Journal API — the
// torn half-line a crash mid-write leaves behind.
func appendRaw(path, s string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteString(s)
	return err
}

// TestJournalCrashRecovery simulates a coordinator crash by handcrafting a
// journal mid-flight — one finished job, one that crashed while running,
// one still queued — then restarts the manager against it twice. Finished
// jobs must come back terminal (and warm the result cache) without
// re-running; unfinished jobs must re-run under their original IDs; the ID
// sequence must continue past the replayed jobs.
func TestJournalCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	spec, err := Spec{Bench: smallBench(t), Strategy: "serial", MaxIters: 30}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	// A sentinel result distinguishes "served from the journal" from
	// "re-ran the job" — no real 60-gate run lands on exactly this μ.
	sentinel := &Result{BestMu: 123.456, Iters: 30}

	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	for _, rec := range []journalRecord{
		{Type: "submit", ID: "j-000001", Time: now, Spec: &spec},
		{Type: "start", ID: "j-000001", Time: now},
		{Type: "finish", ID: "j-000001", Time: now, State: StateDone, Result: sentinel},
		{Type: "submit", ID: "j-000002", Time: now, Spec: &spec},
		{Type: "start", ID: "j-000002", Time: now}, // crashed mid-run
		{Type: "submit", ID: "j-000003", Time: now, Spec: &spec},
	} {
		if rec.Spec != nil && rec.ID != "j-000001" {
			// Vary the spec per job so the replayed runs can't be satisfied
			// from the cache warmed by j-000001's journaled result.
			varied := spec
			varied.Seed = 7
			if rec.ID == "j-000003" {
				varied.Seed = 9
			}
			rec.Spec = &varied
		}
		if err := j.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Restart 1: replay the journal.
	j, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Options{Workers: 1, QueueDepth: 8, CacheSize: 8, MaxJobs: 64, Journal: j})

	v, err := m.Get("j-000001")
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateDone || v.Result == nil || v.Result.BestMu != sentinel.BestMu {
		t.Fatalf("finished job not restored verbatim: %+v", v)
	}
	for _, id := range []string{"j-000002", "j-000003"} {
		v := waitTerminal(t, m, id)
		if v.State != StateDone || v.Result == nil {
			t.Fatalf("replayed job %s: state %s error %q", id, v.State, v.Error)
		}
		if v.Result.BestMu == sentinel.BestMu {
			t.Fatalf("replayed job %s served the sentinel instead of re-running", id)
		}
	}
	// The ID sequence continues after the replayed jobs, and a fresh
	// submission of j-000001's spec is served from the cache the journaled
	// result warmed — the sentinel μ proves it never re-ran.
	nv, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if nv.ID != "j-000004" {
		t.Fatalf("post-replay ID %s, want j-000004", nv.ID)
	}
	fv := waitTerminal(t, m, nv.ID)
	if fv.Result == nil || !fv.Result.Cached || fv.Result.BestMu != sentinel.BestMu {
		t.Fatalf("cache was not warmed from the journaled result: %+v", fv.Result)
	}
	m.Close()
	j.Close()

	// Restart 2: everything is terminal now; nothing re-runs, nothing is
	// lost, nothing is duplicated.
	j, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	m = NewManager(Options{Workers: 1, QueueDepth: 8, CacheSize: 8, MaxJobs: 64, Journal: j})
	defer m.Close()
	views := m.List()
	if len(views) != 4 {
		t.Fatalf("second replay restored %d jobs, want 4", len(views))
	}
	for _, v := range views {
		if !v.State.Terminal() {
			t.Fatalf("job %s not terminal after clean shutdown: %s", v.ID, v.State)
		}
	}
}

// TestJournalTruncatedTail: a crash mid-write leaves half a line; replay
// must keep everything before it and drop only the torn record.
func TestJournalTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	spec, err := Spec{Circuit: "s1196", Strategy: "serial", MaxIters: 10}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.append(journalRecord{Type: "submit", ID: "j-000001", Time: time.Now(), Spec: &spec}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Simulate the torn write.
	if err := appendRaw(path, `{"type":"finish","id":"j-0000`); err != nil {
		t.Fatal(err)
	}
	j, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	recs := j.Replayed()
	if len(recs) != 1 || recs[0].ID != "j-000001" || recs[0].Type != "submit" {
		t.Fatalf("replay after torn tail: %+v", recs)
	}
}
