package jobs

import (
	"context"
	"strings"
	"testing"
	"time"

	"simevo/internal/gen"
	"simevo/internal/netlist"
	"simevo/internal/transport"
)

// smallBench renders a tiny deterministic circuit as .bench text, for the
// uploaded-netlist path.
func smallBench(t *testing.T) string {
	t.Helper()
	ckt, err := gen.Generate(gen.Params{
		Name: "svc-t", Gates: 60, DFFs: 4, PIs: 5, POs: 5, Depth: 6, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := netlist.WriteBench(&sb, ckt); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestSpecNormalize(t *testing.T) {
	spec, err := Spec{Circuit: "s1196", Strategy: "TypeII"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Strategy != StrategyTypeII || spec.Procs != 4 || spec.Pattern != "fixed" {
		t.Fatalf("bad normalization: %+v", spec)
	}
	if spec.Objectives != "wire+power" || spec.MaxIters != 350 {
		t.Fatalf("bad defaults: %+v", spec)
	}

	bad := []Spec{
		{Strategy: "serial"}, // no circuit
		{Circuit: "s1196", Bench: "x", Strategy: "serial"},     // both
		{Circuit: "nope", Strategy: "serial"},                  // unknown circuit
		{Circuit: "s1196", Strategy: "quantum"},                // unknown strategy
		{Circuit: "s1196", Strategy: "sa", Objectives: "wire"}, // metaheur restriction
		{Circuit: "s1196", Strategy: "type3", Procs: 2},        // too few ranks
		{Circuit: "s1196", Strategy: "type2", Pattern: "zig"},  // unknown pattern
	}
	for i, s := range bad {
		if _, err := s.Normalize(); err == nil {
			t.Errorf("case %d: invalid spec %+v accepted", i, s)
		}
	}
}

func TestSpecFingerprint(t *testing.T) {
	a, err := Spec{Circuit: "s1196", Strategy: "serial", MaxIters: 10}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	b := a
	b.IncludePlacement = true
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("IncludePlacement changed the cache key")
	}
	c := a
	c.Seed = 7
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("seed did not change the cache key")
	}
}

func TestLRUCache(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", Result{BestMu: 1})
	c.put("b", Result{BestMu: 2})
	if _, ok := c.get("a"); !ok { // refresh a
		t.Fatal("a missing")
	}
	c.put("c", Result{BestMu: 3}) // evicts b (least recently used)
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived past capacity")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("refreshed entry evicted")
	}
	if c.len() != 2 {
		t.Fatalf("len %d, want 2", c.len())
	}
}

// waitTerminal blocks until the job reaches a terminal state.
func waitTerminal(t *testing.T, m *Manager, id string) View {
	t.Helper()
	notify, unsubscribe, err := m.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	defer unsubscribe()
	deadline := time.After(60 * time.Second)
	for {
		v, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State.Terminal() {
			return v
		}
		select {
		case <-notify:
		case <-deadline:
			t.Fatalf("job %s stuck in state %s", id, v.State)
		}
	}
}

func TestManagerRunAndCache(t *testing.T) {
	m := NewManager(Options{Workers: 2, CacheSize: 8})
	defer m.Close()
	bench := smallBench(t)

	spec := Spec{Bench: bench, Strategy: "serial", MaxIters: 30, IncludePlacement: true}
	v, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateQueued && v.State != StateRunning {
		t.Fatalf("fresh job in state %s", v.State)
	}

	done := waitTerminal(t, m, v.ID)
	if done.State != StateDone {
		t.Fatalf("job finished %s (%s), want done", done.State, done.Error)
	}
	if done.Result == nil || done.Result.BestMu <= 0 || done.Result.Iters != 30 {
		t.Fatalf("bad result: %+v", done.Result)
	}
	if len(done.Result.Placement) == 0 {
		t.Fatal("include_placement did not attach the placement")
	}
	if done.Result.Cached {
		t.Fatal("first run reported cached")
	}

	// Identical resubmit must be served from the cache, instantly done.
	v2, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if v2.State != StateDone || v2.Result == nil || !v2.Result.Cached {
		t.Fatalf("resubmit not served from cache: %+v", v2)
	}
	if v2.Result.BestMu != done.Result.BestMu {
		t.Fatalf("cached μ %.6f differs from original %.6f", v2.Result.BestMu, done.Result.BestMu)
	}

	// A different seed misses the cache.
	v3, err := m.Submit(Spec{Bench: bench, Strategy: "serial", MaxIters: 30, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if v3.State == StateDone {
		t.Fatal("different spec was served from cache")
	}
	waitTerminal(t, m, v3.ID)
}

func TestManagerCancelRunning(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	defer m.Close()

	// A budget far beyond what can finish quickly keeps the job running
	// until cancelled.
	v, err := m.Submit(Spec{Bench: smallBench(t), Strategy: "serial", MaxIters: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the first progress report so the run is demonstrably
	// in-flight, then cancel.
	notify, unsubscribe, err := m.Subscribe(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(60 * time.Second)
	for {
		cur, err := m.Get(v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Progress != nil && cur.Progress.Iter > 0 {
			break
		}
		select {
		case <-notify:
		case <-deadline:
			t.Fatal("job never reported progress")
		}
	}
	unsubscribe()
	if _, err := m.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}

	got := waitTerminal(t, m, v.ID)
	if got.State != StateCanceled {
		t.Fatalf("cancelled job finished %s", got.State)
	}
	if got.Result == nil || got.Result.BestMu <= 0 {
		t.Fatalf("cancelled job lost its best-so-far result: %+v", got.Result)
	}
	if got.Result.Iters >= 10_000_000 {
		t.Fatal("cancelled job ran to completion")
	}
}

func TestManagerCancelQueued(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 4})
	defer m.Close()
	bench := smallBench(t)

	// Occupy the only worker, then queue a second job and cancel it.
	blocker, err := m.Submit(Spec{Bench: bench, Strategy: "serial", MaxIters: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(Spec{Bench: bench, Strategy: "serial", MaxIters: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	got, err := m.Get(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCanceled {
		t.Fatalf("queued job state %s after cancel", got.State)
	}
	if _, err := m.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, blocker.ID)
}

func TestManagerQueueFull(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 1})
	defer m.Close()
	bench := smallBench(t)

	ids := make([]string, 0, 2)
	// First job may start immediately; the second fills the queue; a third
	// must be rejected. Allow one retry in case the worker drains faster.
	var rejected bool
	for i := 0; i < 8; i++ {
		v, err := m.Submit(Spec{Bench: bench, Strategy: "serial",
			MaxIters: 10_000_000, Seed: uint64(i)})
		if err == ErrQueueFull {
			rejected = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	if !rejected {
		t.Fatal("queue never filled")
	}

	// Cancelling a queued job must free its slot immediately.
	var queuedID string
	for _, id := range ids {
		v, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State == StateQueued {
			queuedID = id
		}
	}
	if queuedID == "" {
		t.Fatal("no job left queued after rejection")
	}
	if _, err := m.Cancel(queuedID); err != nil {
		t.Fatal(err)
	}
	v, err := m.Submit(Spec{Bench: bench, Strategy: "serial",
		MaxIters: 10_000_000, Seed: 99})
	if err != nil {
		t.Fatalf("queue slot not freed by cancel: %v", err)
	}
	ids = append(ids, v.ID)

	for _, id := range ids {
		if _, err := m.Cancel(id); err != nil {
			t.Fatal(err)
		}
	}
}

func TestManagerErrors(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	if _, err := m.Get("j-999999"); err != ErrNotFound {
		t.Fatalf("Get unknown: %v", err)
	}
	if _, err := m.Cancel("j-999999"); err != ErrNotFound {
		t.Fatalf("Cancel unknown: %v", err)
	}
	if _, _, err := m.Subscribe("j-999999"); err != ErrNotFound {
		t.Fatalf("Subscribe unknown: %v", err)
	}
	m.Close()
	if _, err := m.Submit(Spec{Circuit: "s1196", Strategy: "serial"}); err != ErrClosed {
		t.Fatalf("Submit after close: %v", err)
	}
}

// TestManagerParallelStrategies runs one tiny job per strategy end to end.
func TestManagerParallelStrategies(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-strategy sweep")
	}
	m := NewManager(Options{Workers: 2})
	defer m.Close()
	bench := smallBench(t)

	for _, strat := range Strategies() {
		spec := Spec{Bench: bench, Strategy: strat, MaxIters: 6}
		if strat == StrategySA {
			spec.Moves = 500
		}
		v, err := m.Submit(spec)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		got := waitTerminal(t, m, v.ID)
		if got.State != StateDone {
			t.Fatalf("%s finished %s (%s)", strat, got.State, got.Error)
		}
		if got.Result == nil || got.Result.BestMu <= 0 {
			t.Fatalf("%s: bad result %+v", strat, got.Result)
		}
	}
}

// TestManagerClusterDispatch exercises the TCP-transport job path end to
// end inside one process: a hub with two joined workers serves a Type II
// job farmed out by the manager, and the result must equal the same-seed
// simulated-transport job.
func TestManagerClusterDispatch(t *testing.T) {
	hub, err := transport.Listen("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	for i := 0; i < 2; i++ {
		w, err := transport.Join(context.Background(), hub.Addr().String(), "")
		if err != nil {
			t.Fatal(err)
		}
		go w.Serve(context.Background(), func(tr transport.Transport) error {
			return ServeRank(context.Background(), tr)
		})
	}

	m := NewManager(Options{Workers: 1, Hub: hub})
	defer m.Close()

	spec := Spec{Circuit: "s1196", Strategy: "type2", Procs: 3, MaxIters: 15, Seed: 41}

	spec.Transport = TransportTCP
	tcpView, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	tcpDone := waitTerminal(t, m, tcpView.ID)
	if tcpDone.State != StateDone {
		t.Fatalf("tcp job state %v (%s)", tcpDone.State, tcpDone.Error)
	}

	spec.Transport = TransportSim
	simView, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	simDone := waitTerminal(t, m, simView.ID)
	if simDone.State != StateDone {
		t.Fatalf("sim job state %v (%s)", simDone.State, simDone.Error)
	}

	if tcpDone.Result.BestMu != simDone.Result.BestMu {
		t.Fatalf("tcp best μ %v != simulated %v", tcpDone.Result.BestMu, simDone.Result.BestMu)
	}
	if tcpDone.Result.Wire != simDone.Result.Wire || tcpDone.Result.Power != simDone.Result.Power {
		t.Fatalf("tcp costs %+v != simulated %+v", tcpDone.Result, simDone.Result)
	}
	// Workers must be parked again for the next job.
	deadline := time.Now().Add(5 * time.Second)
	for hub.Workers() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("workers not re-parked after job (have %d)", hub.Workers())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestManagerRejectsClusterWithoutHub asserts a tcp-transport submission
// fails fast when the service has no cluster listener.
func TestManagerRejectsClusterWithoutHub(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	defer m.Close()
	_, err := m.Submit(Spec{Circuit: "s1196", Strategy: "type2", Transport: "tcp"})
	if err == nil {
		t.Fatal("tcp job accepted without a hub")
	}
}

// TestSpecRejectsTransportOnInProcessStrategies asserts a tcp transport on
// serial/metaheuristic jobs errors instead of silently running locally.
func TestSpecRejectsTransportOnInProcessStrategies(t *testing.T) {
	for _, strategy := range []string{"serial", "sa", "ga", "ts"} {
		if _, err := (Spec{Circuit: "s1196", Strategy: strategy, Transport: "tcp"}).Normalize(); err == nil {
			t.Fatalf("strategy %s accepted transport tcp", strategy)
		}
		norm, err := (Spec{Circuit: "s1196", Strategy: strategy, Transport: "sim"}).Normalize()
		if err != nil {
			t.Fatalf("strategy %s rejected redundant sim transport: %v", strategy, err)
		}
		if norm.Transport != "" {
			t.Fatalf("strategy %s kept transport %q", strategy, norm.Transport)
		}
	}
}

// TestSpecObjectivesParsing covers the plus-separated objective parser:
// aliases and term order normalize to the canonical spelling; unknown
// terms and unsupported combinations fail fast.
func TestSpecObjectivesParsing(t *testing.T) {
	accept := map[string]string{
		"wire":                        "wire",
		"wire+power":                  "wire+power",
		"power+wire":                  "wire+power",
		"wire+power+delay":            "wire+power+delay",
		"wire+power+congestion":       "wire+power+congestion",
		"congest+power+wire":          "wire+power+congestion",
		"wire+power+delay+congestion": "wire+power+delay+congestion",
		"Congestion+Delay+Power+Wire": "wire+power+delay+congestion",
	}
	for in, want := range accept {
		norm, err := (Spec{Circuit: "s1196", Strategy: "serial", Objectives: in}).Normalize()
		if err != nil {
			t.Errorf("objectives %q rejected: %v", in, err)
			continue
		}
		if norm.Objectives != want {
			t.Errorf("objectives %q normalized to %q, want %q", in, norm.Objectives, want)
		}
	}
	for _, in := range []string{"wires", "wire+hpwl", "congestion+delay", "power", "wire++power", ""} {
		if in == "" {
			continue // empty selects the default, covered elsewhere
		}
		if _, err := (Spec{Circuit: "s1196", Strategy: "serial", Objectives: in}).Normalize(); err == nil {
			t.Errorf("objectives %q accepted, want fail-fast error", in)
		}
	}
	// Metaheuristics stay wire+power only.
	if _, err := (Spec{Circuit: "s1196", Strategy: "sa", Objectives: "wire+power+congestion"}).Normalize(); err == nil {
		t.Error("sa accepted congestion objectives")
	}
}
