// Package api exposes the placement job manager over a JSON HTTP API:
//
//	POST   /v1/jobs            submit a job (jobs.Spec)
//	GET    /v1/jobs            list jobs
//	GET    /v1/jobs/{id}        job status + result
//	GET    /v1/jobs/{id}/stream live progress via server-sent events
//	DELETE /v1/jobs/{id}        cooperative cancellation
//	GET    /v1/benchmarks      built-in benchmark catalog
//	GET    /healthz            liveness + pool occupancy
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"simevo/internal/gen"
	"simevo/internal/netlist"
	"simevo/internal/service/jobs"
)

// Server binds HTTP handlers to a job manager.
type Server struct {
	mgr *jobs.Manager

	benchOnce sync.Once
	benchList []BenchInfo
}

// New wraps a manager. The manager's lifecycle (Close) stays with the
// caller.
func New(mgr *jobs.Manager) *Server { return &Server{mgr: mgr} }

// BenchInfo describes one built-in benchmark circuit.
type BenchInfo struct {
	Name  string `json:"name"`
	Cells int    `json:"cells"`
	Nets  int    `json:"nets"`
	PIs   int    `json:"pis"`
	POs   int    `json:"pos"`
	DFFs  int    `json:"dffs"`
	Depth int    `json:"depth"`
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	return mux
}

// writeJSON renders a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError renders the error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"pool":   s.mgr.Stats(),
	})
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	s.benchOnce.Do(func() {
		for _, name := range gen.Catalog() {
			ckt, err := gen.Benchmark(name)
			if err != nil {
				continue
			}
			st := netlist.ComputeStats(ckt)
			s.benchList = append(s.benchList, BenchInfo{
				Name: name, Cells: st.Cells, Nets: st.Nets,
				PIs: st.PIs, POs: st.POs, DFFs: st.DFFs, Depth: st.Depth,
			})
		}
	})
	writeJSON(w, http.StatusOK, map[string]any{"benchmarks": s.benchList})
}

// maxSubmitBytes caps job-submission bodies; real netlists are well under
// a megabyte, so this protects memory without constraining uploads.
const maxSubmitBytes = 16 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec jobs.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"job spec exceeds %d bytes", int64(maxSubmitBytes))
			return
		}
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	view, err := s.mgr.Submit(spec)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, jobs.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
	case view.State == jobs.StateDone:
		// Served from the result cache.
		writeJSON(w, http.StatusOK, view)
	default:
		writeJSON(w, http.StatusAccepted, view)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.mgr.List()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	view, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.mgr.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, view)
}
