package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"simevo/internal/telemetry"
)

// keepaliveInterval paces SSE comment frames that hold idle connections
// open through proxies.
const keepaliveInterval = 15 * time.Second

// handleStream serves a job's lifecycle as server-sent events. Every
// wakeup emits the current job view as a "progress" event (coalesced: a
// burst of iterations yields one event carrying the latest snapshot); the
// terminal snapshot is emitted as a "done", "failed", or "canceled" event
// and the stream ends.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	notify, unsubscribe, err := s.mgr.Subscribe(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	defer unsubscribe()

	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	telemetry.SSESubscribers.Add(1)
	defer telemetry.SSESubscribers.Add(-1)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	keepalive := time.NewTicker(keepaliveInterval)
	defer keepalive.Stop()

	for {
		view, err := s.mgr.Get(id)
		if err != nil {
			return // evicted mid-stream
		}
		if view.State.Terminal() {
			writeEvent(w, string(view.State), view)
			flusher.Flush()
			return
		}
		writeEvent(w, "progress", view)
		flusher.Flush()

		// Wait for a change; keepalive ticks hold the connection open
		// without re-emitting the unchanged snapshot.
		waiting := true
		for waiting {
			select {
			case <-r.Context().Done():
				return
			case <-notify:
				waiting = false
			case <-keepalive.C:
				fmt.Fprint(w, ": keepalive\n\n")
				flusher.Flush()
			}
		}
	}
}

// writeEvent emits one SSE frame.
func writeEvent(w http.ResponseWriter, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(`{"error":"marshal failed"}`)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}
