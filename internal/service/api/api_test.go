package api

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"simevo/internal/gen"
	"simevo/internal/netlist"
	"simevo/internal/service/jobs"
)

func newTestServer(t *testing.T) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	mgr := jobs.NewManager(jobs.Options{Workers: 2, CacheSize: 16})
	srv := httptest.NewServer(New(mgr).Handler())
	t.Cleanup(func() {
		srv.Close()
		mgr.Close()
	})
	return srv, mgr
}

func smallBench(t *testing.T) string {
	t.Helper()
	ckt, err := gen.Generate(gen.Params{
		Name: "api-t", Gates: 60, DFFs: 4, PIs: 5, POs: 5, Depth: 6, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := netlist.WriteBench(&sb, ckt); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// submit posts a job spec and decodes the response view.
func submit(t *testing.T, srv *httptest.Server, spec jobs.Spec, wantStatus int) jobs.View {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("submit returned %d, want %d", resp.StatusCode, wantStatus)
	}
	var view jobs.View
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

// getJob fetches a job view.
func getJob(t *testing.T, srv *httptest.Server, id string) jobs.View {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get %s returned %d", id, resp.StatusCode)
	}
	var view jobs.View
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

// pollDone polls a job until it is terminal.
func pollDone(t *testing.T, srv *httptest.Server, id string) jobs.View {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		view := getJob(t, srv, id)
		if view.State.Terminal() {
			return view
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobs.View{}
}

func TestHealthz(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Status string     `json:"status"`
		Pool   jobs.Stats `json:"pool"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || body.Status != "ok" || body.Pool.Workers != 2 {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, body)
	}
}

func TestBenchmarks(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/v1/benchmarks")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Benchmarks []BenchInfo `json:"benchmarks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Benchmarks) != 5 {
		t.Fatalf("catalog has %d entries, want 5", len(body.Benchmarks))
	}
	for _, b := range body.Benchmarks {
		if b.Name == "" || b.Cells <= 0 || b.Nets <= 0 {
			t.Fatalf("degenerate benchmark entry: %+v", b)
		}
	}
}

func TestSubmitStatusAndCache(t *testing.T) {
	srv, _ := newTestServer(t)
	spec := jobs.Spec{Bench: smallBench(t), Strategy: "serial", MaxIters: 25,
		IncludePlacement: true}

	view := submit(t, srv, spec, http.StatusAccepted)
	if view.ID == "" {
		t.Fatal("no job id")
	}
	done := pollDone(t, srv, view.ID)
	if done.State != jobs.StateDone {
		t.Fatalf("job finished %s (%s)", done.State, done.Error)
	}
	if done.Result == nil || done.Result.BestMu <= 0 || len(done.Result.Placement) == 0 {
		t.Fatalf("bad result: %+v", done.Result)
	}

	// Identical resubmit: HTTP 200 with the cached result.
	again := submit(t, srv, spec, http.StatusOK)
	if again.State != jobs.StateDone || again.Result == nil || !again.Result.Cached {
		t.Fatalf("resubmit not cached: %+v", again)
	}
	if again.Result.BestMu != done.Result.BestMu {
		t.Fatalf("cached μ %.6f != original %.6f", again.Result.BestMu, done.Result.BestMu)
	}

	// The job list contains both.
	resp, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Jobs []jobs.View `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 2 {
		t.Fatalf("list has %d jobs, want 2", len(list.Jobs))
	}
}

func TestSubmitValidation(t *testing.T) {
	srv, _ := newTestServer(t)
	for name, body := range map[string]string{
		"bad json":      `{"circuit":`,
		"unknown field": `{"circuit":"s1196","strategy":"serial","warp":9}`,
		"bad strategy":  `{"circuit":"s1196","strategy":"quantum"}`,
		"no circuit":    `{"strategy":"serial"}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	for _, path := range []string{"/v1/jobs/j-999999", "/v1/jobs/j-999999/stream"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	view jobs.View
}

// readEvents consumes an SSE stream until it closes, forwarding each event.
func readEvents(t *testing.T, resp *http.Response, out chan<- sseEvent) {
	defer close(out)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var name string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var view jobs.View
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &view); err != nil {
				t.Errorf("bad SSE payload: %v", err)
				return
			}
			out <- sseEvent{name: name, view: view}
		}
	}
}

func TestStreamAndCancel(t *testing.T) {
	srv, _ := newTestServer(t)

	// A budget that cannot finish quickly keeps the stream live until the
	// DELETE lands.
	view := submit(t, srv, jobs.Spec{Bench: smallBench(t), Strategy: "serial",
		MaxIters: 10_000_000}, http.StatusAccepted)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + view.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}

	events := make(chan sseEvent, 64)
	go readEvents(t, resp, events)

	// Wait for a progress event proving the run is advancing, then cancel.
	var sawProgress bool
	timeout := time.After(60 * time.Second)
	var cancelled bool
	var last sseEvent
	for !cancelled {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("stream closed early; last event %q state %s", last.name, last.view.State)
			}
			last = ev
			if ev.name == "progress" && ev.view.Progress != nil && ev.view.Progress.Iter > 0 {
				sawProgress = true
				req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+view.ID, nil)
				if err != nil {
					t.Fatal(err)
				}
				dresp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				dresp.Body.Close()
				if dresp.StatusCode != http.StatusAccepted {
					t.Fatalf("cancel returned %d", dresp.StatusCode)
				}
				cancelled = true
			}
		case <-timeout:
			t.Fatal("no progress event before timeout")
		}
	}
	if !sawProgress {
		t.Fatal("stream produced no progress events")
	}

	// The stream must end with a "canceled" terminal event carrying the
	// best-so-far result.
	var terminal *sseEvent
	timeout = time.After(60 * time.Second)
	for terminal == nil {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("stream closed without a terminal event")
			}
			if ev.view.State.Terminal() {
				terminal = &ev
			}
		case <-timeout:
			t.Fatal("no terminal event before timeout")
		}
	}
	if terminal.name != "canceled" || terminal.view.State != jobs.StateCanceled {
		t.Fatalf("terminal event %q state %s, want canceled", terminal.name, terminal.view.State)
	}
	if terminal.view.Result == nil || terminal.view.Result.BestMu <= 0 {
		t.Fatalf("cancelled job lost its best-so-far result: %+v", terminal.view.Result)
	}
	if _, ok := <-events; ok {
		t.Fatal("stream kept emitting after the terminal event")
	}
}

func TestStreamCompletedJob(t *testing.T) {
	srv, _ := newTestServer(t)
	view := submit(t, srv, jobs.Spec{Bench: smallBench(t), Strategy: "serial",
		MaxIters: 10}, http.StatusAccepted)
	pollDone(t, srv, view.ID)

	// Streaming an already-finished job yields exactly the terminal event.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + view.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := make(chan sseEvent, 8)
	go readEvents(t, resp, events)
	ev, ok := <-events
	if !ok || ev.name != "done" || ev.view.Result == nil {
		t.Fatalf("expected immediate done event, got %+v (ok=%v)", ev, ok)
	}
}

func TestCancelUnknownJob(t *testing.T) {
	srv, _ := newTestServer(t)
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/j-424242", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown returned %d", resp.StatusCode)
	}
}

// TestParallelJobOverHTTP runs a Type II job through the full HTTP path.
func TestParallelJobOverHTTP(t *testing.T) {
	srv, _ := newTestServer(t)
	view := submit(t, srv, jobs.Spec{Bench: smallBench(t), Strategy: "type2",
		MaxIters: 6, Procs: 2}, http.StatusAccepted)
	done := pollDone(t, srv, view.ID)
	if done.State != jobs.StateDone {
		t.Fatalf("type2 job finished %s (%s)", done.State, done.Error)
	}
	if done.Result == nil || done.Result.BestMu <= 0 || done.Result.VirtualTimeMS <= 0 {
		t.Fatalf("bad parallel result: %+v", done.Result)
	}
	if done.Spec.Strategy != "type2" {
		t.Fatalf("normalized strategy %q", done.Spec.Strategy)
	}
}
