package timing

import (
	"math"
	"testing"

	"simevo/internal/gen"
	"simevo/internal/layout"
	"simevo/internal/netlist"
	"simevo/internal/rng"
	"simevo/internal/wire"
)

// chain builds in0 -> g1 -> g2 -> ... -> gN -> out.
func chain(t *testing.T, n int) *netlist.Circuit {
	t.Helper()
	b := netlist.NewBuilder("chain")
	b.AddInput("in0")
	prev := "in0"
	for i := 1; i <= n; i++ {
		name := "g" + string(rune('0'+i))
		b.AddGate(name, netlist.Buf, []string{prev}, 0)
		prev = name
	}
	b.AddOutput(prev)
	ckt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ckt
}

func analyzeUnit(t *testing.T, ckt *netlist.Circuit, netLen float64, m Model) *Analysis {
	t.Helper()
	lv, err := ckt.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	lengths := make([]float64, ckt.NumNets())
	for i := range lengths {
		lengths[i] = netLen
	}
	a, err := Analyze(ckt, lv, lengths, m)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestChainDelay(t *testing.T) {
	ckt := chain(t, 3)
	m := DefaultModel()
	a := analyzeUnit(t, ckt, 10, m)

	// Each buffer: base 1.0 + load 0.2*1 sink = 1.2. Each net: 0.08*10 = 0.8.
	// Path: in0 --0.8--> g1(1.2) --0.8--> g2(1.2) --0.8--> g3(1.2) --0.8--> out.
	want := 4*0.8 + 3*1.2
	if math.Abs(a.MaxDelay-want) > 1e-9 {
		t.Fatalf("MaxDelay = %v, want %v", a.MaxDelay, want)
	}

	cp := a.CriticalPath()
	if len(cp.Cells) != 5 { // in0, g1, g2, g3, out
		t.Fatalf("critical path has %d cells, want 5", len(cp.Cells))
	}
	if math.Abs(cp.Delay-want) > 1e-9 {
		t.Fatalf("critical path delay = %v, want %v", cp.Delay, want)
	}
	if ckt.Cells[cp.Cells[0]].Type != netlist.Input {
		t.Fatal("critical path does not start at a source")
	}
	if ckt.Cells[cp.Cells[len(cp.Cells)-1]].Type != netlist.Output {
		t.Fatal("critical path does not end at a sink")
	}
}

func TestZeroWireDelay(t *testing.T) {
	ckt := chain(t, 2)
	m := DefaultModel()
	a := analyzeUnit(t, ckt, 0, m)
	want := 2 * 1.2 // gates only
	if math.Abs(a.MaxDelay-want) > 1e-9 {
		t.Fatalf("MaxDelay = %v, want %v", a.MaxDelay, want)
	}
}

func TestSlackOnCriticalPathIsZero(t *testing.T) {
	ckt := chain(t, 3)
	a := analyzeUnit(t, ckt, 10, DefaultModel())
	cp := a.CriticalPath()
	for _, id := range cp.Cells {
		c := &ckt.Cells[id]
		if c.Type == netlist.Output {
			continue // sinks have no output arrival/slack
		}
		if math.Abs(a.Slack[id]) > 1e-9 {
			t.Fatalf("cell %s on critical path has slack %v", c.Name, a.Slack[id])
		}
		if got := a.Criticality(id); math.Abs(got-1) > 1e-9 {
			t.Fatalf("cell %s criticality = %v, want 1", c.Name, got)
		}
	}
}

func TestSideBranchHasPositiveSlack(t *testing.T) {
	// in --> g1 --> g2 --> out1 (long path)
	//    \-> s1 --> out2        (short path)
	b := netlist.NewBuilder("branch")
	b.AddInput("in")
	b.AddGate("g1", netlist.Xor, []string{"in", "in"}, 0) // slow gate
	b.AddGate("g2", netlist.Xor, []string{"g1", "g1"}, 0)
	b.AddGate("s1", netlist.Buf, []string{"in"}, 0) // fast branch
	b.AddOutput("g2")
	b.AddOutput("s1")
	ckt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := analyzeUnit(t, ckt, 5, DefaultModel())
	var s1 netlist.CellID = netlist.NoCell
	for i := range ckt.Cells {
		if ckt.Cells[i].Name == "s1" {
			s1 = netlist.CellID(i)
		}
	}
	if a.Slack[s1] <= 0 {
		t.Fatalf("fast branch slack = %v, want > 0", a.Slack[s1])
	}
	if c := a.Criticality(s1); c >= 1 {
		t.Fatalf("fast branch criticality = %v, want < 1", c)
	}
}

func TestDFFPathSegmentation(t *testing.T) {
	// in -> g1 -> ff -> g2 -> out. Paths: in->g1->ff.data and ff.q->g2->out.
	b := netlist.NewBuilder("seq")
	b.AddInput("in")
	b.AddGate("g1", netlist.Buf, []string{"in"}, 0)
	b.AddGate("ff", netlist.DFF, []string{"g1"}, 0)
	b.AddGate("g2", netlist.Buf, []string{"ff"}, 0)
	b.AddOutput("g2")
	ckt, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultModel()
	a := analyzeUnit(t, ckt, 10, m)

	// Segment A: net(0.8) + g1(1.2) + net(0.8) + setup(1.0) = 3.8.
	// Segment B: clkToQ(2.0) + net(0.8) + g2(1.2) + net(0.8) = 4.8.
	wantB := m.ClkToQ + 0.8 + 1.2 + 0.8
	if math.Abs(a.MaxDelay-wantB) > 1e-9 {
		t.Fatalf("MaxDelay = %v, want %v (DFF source segment)", a.MaxDelay, wantB)
	}
	cp := a.CriticalPath()
	if ckt.Cells[cp.Cells[0]].Type != netlist.DFF {
		t.Fatalf("critical path should start at the DFF, starts at %v",
			ckt.Cells[cp.Cells[0]].Name)
	}
}

func TestWorstPathsOrdered(t *testing.T) {
	ckt, err := gen.Generate(gen.Params{
		Name: "t", Gates: 150, DFFs: 10, PIs: 8, POs: 8, Depth: 10, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := layout.NewRandom(ckt, 10, rng.New(1))
	ev := wire.NewEvaluator(ckt, wire.Steiner)
	lengths := ev.Lengths(p, nil)
	lv, _ := ckt.Levelize()
	a, err := Analyze(ckt, lv, lengths, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	paths := a.WorstPaths(5)
	if len(paths) == 0 {
		t.Fatal("no paths returned")
	}
	if math.Abs(paths[0].Delay-a.MaxDelay) > 1e-9 {
		t.Fatalf("WorstPaths[0].Delay = %v, want MaxDelay %v", paths[0].Delay, a.MaxDelay)
	}
	for i := 1; i < len(paths); i++ {
		if paths[i].Delay > paths[i-1].Delay+1e-9 {
			t.Fatalf("paths not in decreasing delay order at %d", i)
		}
	}
	for _, path := range paths {
		if len(path.Cells) < 2 {
			t.Fatalf("degenerate path %v", path)
		}
	}
}

func TestArrivalMonotoneAlongEdges(t *testing.T) {
	// STA invariant: for every combinational edge driver->sink,
	// Arrival[sink] >= Arrival[driver] + NetDelay (+ gate delay if a gate).
	ckt, err := gen.Generate(gen.Params{
		Name: "t2", Gates: 120, DFFs: 8, PIs: 6, POs: 6, Depth: 8, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := layout.NewRandom(ckt, 10, rng.New(2))
	ev := wire.NewEvaluator(ckt, wire.Steiner)
	lengths := ev.Lengths(p, nil)
	lv, _ := ckt.Levelize()
	a, err := Analyze(ckt, lv, lengths, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultModel()
	for i := range ckt.Nets {
		net := &ckt.Nets[i]
		for _, s := range net.Sinks {
			sc := &ckt.Cells[s]
			if sc.Type == netlist.Output || sc.Type == netlist.DFF {
				continue
			}
			lower := a.Arrival[net.Driver] + a.NetDelay[i] + m.CellDelay(ckt, s)
			if a.Arrival[s] < lower-1e-9 {
				t.Fatalf("arrival at %s = %v < %v", sc.Name, a.Arrival[s], lower)
			}
		}
	}
}

func TestLongerWiresIncreaseDelay(t *testing.T) {
	ckt := chain(t, 4)
	a1 := analyzeUnit(t, ckt, 5, DefaultModel())
	a2 := analyzeUnit(t, ckt, 50, DefaultModel())
	if a2.MaxDelay <= a1.MaxDelay {
		t.Fatalf("delay did not grow with wirelength: %v vs %v", a1.MaxDelay, a2.MaxDelay)
	}
}

func TestAnalyzeLengthMismatch(t *testing.T) {
	ckt := chain(t, 2)
	lv, _ := ckt.Levelize()
	if _, err := Analyze(ckt, lv, []float64{1}, DefaultModel()); err == nil {
		t.Fatal("length/net mismatch accepted")
	}
}

func TestCriticalityRange(t *testing.T) {
	ckt, err := gen.Benchmark("s1238")
	if err != nil {
		t.Fatal(err)
	}
	p := layout.NewRandom(ckt, 0, rng.New(3))
	ev := wire.NewEvaluator(ckt, wire.Steiner)
	lv, _ := ckt.Levelize()
	a, err := Analyze(ckt, lv, ev.Lengths(p, nil), DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	for i := range ckt.Cells {
		c := a.Criticality(netlist.CellID(i))
		if c < 0 || c > 1 || math.IsNaN(c) {
			t.Fatalf("criticality of cell %d = %v", i, c)
		}
	}
}
