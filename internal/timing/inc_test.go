package timing

import (
	"math"
	"testing"

	"simevo/internal/gen"
	"simevo/internal/netlist"
	"simevo/internal/rng"
)

func incTestCircuit(t *testing.T, name string) (*netlist.Circuit, *netlist.Levels, []float64) {
	t.Helper()
	ckt, err := gen.Benchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := ckt.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	lengths := make([]float64, ckt.NumNets())
	r := rng.New(0xD1A7)
	for i := range lengths {
		lengths[i] = r.Float64() * 60
	}
	return ckt, lv, lengths
}

// TestIncUpdateMatchesRebuild is the dirty-cone STA contract: after any
// sequence of net-length batches, the incrementally propagated state must
// be bitwise identical to a from-scratch Rebuild over the same lengths —
// MaxDelay, every cell criticality, and every net criticality.
func TestIncUpdateMatchesRebuild(t *testing.T) {
	for _, name := range []string{"s1196", "s1488"} {
		ckt, lv, lengths := incTestCircuit(t, name)
		inc := NewInc(ckt, lv, DefaultModel())
		ref := NewInc(ckt, lv, DefaultModel())
		inc.Rebuild(lengths)

		r := rng.New(7)
		var dirty []netlist.NetID
		for round := 0; round < 120; round++ {
			dirty = dirty[:0]
			for k := 0; k < 1+r.Intn(25); k++ {
				n := netlist.NetID(r.Intn(ckt.NumNets()))
				lengths[n] = math.Abs(lengths[n] + (r.Float64()-0.5)*30)
				dirty = append(dirty, n)
			}
			got := inc.Update(dirty, lengths)
			want := ref.Rebuild(lengths)
			if got != want {
				t.Fatalf("%s round %d: incremental MaxDelay %v != rebuild %v", name, round, got, want)
			}
			for id := range ckt.Cells {
				ci, cr := inc.Criticality(netlist.CellID(id)), ref.Criticality(netlist.CellID(id))
				if ci != cr {
					t.Fatalf("%s round %d: cell %d criticality %v != %v", name, round, id, ci, cr)
				}
			}
			for n := 0; n < ckt.NumNets(); n++ {
				ni, nr := inc.NetCriticality(netlist.NetID(n)), ref.NetCriticality(netlist.NetID(n))
				if ni != nr {
					t.Fatalf("%s round %d: net %d criticality %v != %v", name, round, n, ni, nr)
				}
			}
		}
	}
}

// TestIncAgreesWithAnalyze cross-checks the deadline-free slack
// formulation against the classic Analyze pass: MaxDelay must match
// exactly (same max-of-sums recurrence) and criticalities to float
// tolerance (Analyze subtracts along the backward chain, Inc keeps an
// additive departure, so the two agree up to rounding).
func TestIncAgreesWithAnalyze(t *testing.T) {
	ckt, lv, lengths := incTestCircuit(t, "s1196")
	inc := NewInc(ckt, lv, DefaultModel())
	inc.Rebuild(lengths)
	a, err := Analyze(ckt, lv, lengths, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if inc.MaxDelay() != a.MaxDelay {
		t.Fatalf("Inc MaxDelay %v != Analyze %v", inc.MaxDelay(), a.MaxDelay)
	}
	for id := range ckt.Cells {
		ci := inc.Criticality(netlist.CellID(id))
		ca := a.Criticality(netlist.CellID(id))
		if math.Abs(ci-ca) > 1e-9 {
			t.Fatalf("cell %d: Inc criticality %v, Analyze %v", id, ci, ca)
		}
	}
}

// TestIncCriticalityRange pins the clamp semantics: criticalities live in
// [0,1] and cells feeding no sink score 0.
func TestIncCriticalityRange(t *testing.T) {
	ckt, lv, lengths := incTestCircuit(t, "s1238")
	inc := NewInc(ckt, lv, DefaultModel())
	inc.Rebuild(lengths)
	for id := range ckt.Cells {
		c := inc.Criticality(netlist.CellID(id))
		if c < 0 || c > 1 || math.IsNaN(c) {
			t.Fatalf("cell %d criticality %v out of [0,1]", id, c)
		}
	}
	for _, po := range ckt.POs {
		if c := inc.Criticality(po); c != 0 {
			t.Fatalf("output pad %d criticality %v, want 0 (feeds no sink)", po, c)
		}
	}
}
