// Package timing implements the path-based delay model of the paper's
// Section 2:
//
//	T_π = Σ (CD_i + ID_i)    Cost_delay = max_π T_π
//
// where CD is the switching delay of the cell driving a net (technology
// dependent, placement independent) and ID is the interconnect delay of the
// net (proportional to its estimated wirelength, placement dependent).
//
// The implementation is a standard static timing analysis over the
// combinational view of the circuit (primary inputs and flip-flop outputs
// are path sources; primary outputs and flip-flop data inputs are path
// sinks): forward arrival-time propagation, backward required-time
// propagation, per-cell slack, critical-path extraction, and enumeration of
// the K worst paths used by the delay goodness measure.
package timing

import (
	"fmt"
	"math"
	"sort"

	"simevo/internal/netlist"
)

// Model holds the delay parameters. Units are abstract "delay units";
// interconnect delay scales with net length in layout sites.
type Model struct {
	// Base is the intrinsic switching delay per gate type.
	Base map[netlist.GateType]float64
	// LoadPerSink adds output-load delay per fan-out pin.
	LoadPerSink float64
	// UnitWire is the interconnect delay per site of estimated net length.
	UnitWire float64
	// ClkToQ is the flip-flop clock-to-output delay (path source offset).
	ClkToQ float64
	// Setup is the flip-flop data setup time (path sink penalty).
	Setup float64
}

// DefaultModel returns delay parameters with relative magnitudes typical of
// standard-cell libraries: inverters fastest, XOR-class gates slowest, and
// interconnect delay comparable to gate delay at average net lengths.
func DefaultModel() Model {
	return Model{
		Base: map[netlist.GateType]float64{
			netlist.Not: 1.0, netlist.Buf: 1.0,
			netlist.Nand: 1.2, netlist.Nor: 1.2,
			netlist.And: 1.5, netlist.Or: 1.5,
			netlist.Xor: 2.0, netlist.Xnor: 2.0,
		},
		LoadPerSink: 0.2,
		UnitWire:    0.08,
		ClkToQ:      2.0,
		Setup:       1.0,
	}
}

// CellDelay returns the switching delay CD of a cell: intrinsic delay plus
// output load. Pads have zero delay; flip-flops contribute ClkToQ as
// sources (handled in Analyze).
func (m Model) CellDelay(ckt *netlist.Circuit, id netlist.CellID) float64 {
	cell := &ckt.Cells[id]
	switch cell.Type {
	case netlist.Input, netlist.Output:
		return 0
	case netlist.DFF:
		return m.ClkToQ
	}
	d := m.Base[cell.Type]
	if cell.Out != netlist.NoNet {
		d += m.LoadPerSink * float64(len(ckt.Nets[cell.Out].Sinks))
	}
	return d
}

// Path is a source-to-sink combinational path.
type Path struct {
	// Cells lists the path from source to sink (inclusive).
	Cells []netlist.CellID
	// Delay is T_π for the path.
	Delay float64
}

// Analysis holds the results of one timing pass.
type Analysis struct {
	ckt   *netlist.Circuit
	model Model

	// Arrival[c] is the signal arrival time at cell c's output. For
	// flip-flops this is the clock-to-Q time (source side).
	Arrival []float64
	// DataArrival[c] is the arrival at a sink pin: meaningful for output
	// pads and for flip-flop data inputs (including setup).
	DataArrival []float64
	// Required[c] is the latest permissible output arrival; Slack[c] =
	// Required[c] - Arrival[c]. Cells feeding no sink have +Inf slack.
	Required []float64
	Slack    []float64
	// NetDelay[n] is the interconnect delay ID of net n.
	NetDelay []float64
	// MaxDelay is Cost_delay: the largest sink arrival.
	MaxDelay float64

	worstSink netlist.CellID
}

// Analyze runs a full timing pass given per-net length estimates.
func Analyze(ckt *netlist.Circuit, lv *netlist.Levels, lengths []float64, m Model) (*Analysis, error) {
	if len(lengths) != ckt.NumNets() {
		return nil, fmt.Errorf("timing: %d lengths for %d nets", len(lengths), ckt.NumNets())
	}
	n := len(ckt.Cells)
	a := &Analysis{
		ckt: ckt, model: m,
		Arrival:     make([]float64, n),
		DataArrival: make([]float64, n),
		Required:    make([]float64, n),
		Slack:       make([]float64, n),
		NetDelay:    make([]float64, ckt.NumNets()),
		worstSink:   netlist.NoCell,
	}
	for i := range a.NetDelay {
		a.NetDelay[i] = m.UnitWire * lengths[i]
	}

	// Forward pass: arrival times in topological order.
	for _, id := range lv.Order {
		cell := &ckt.Cells[id]
		switch cell.Type {
		case netlist.Input:
			a.Arrival[id] = 0
			continue
		case netlist.DFF:
			a.Arrival[id] = m.ClkToQ
			continue // data-side arrival handled in the sink pass below
		}
		worst := 0.0
		for _, in := range cell.In {
			d := ckt.Nets[in].Driver
			if t := a.Arrival[d] + a.NetDelay[in]; t > worst {
				worst = t
			}
		}
		if cell.Type == netlist.Output {
			a.DataArrival[id] = worst
			if a.worstSink == netlist.NoCell || worst > a.MaxDelay {
				a.MaxDelay, a.worstSink = worst, id
			}
			continue
		}
		a.Arrival[id] = worst + m.CellDelay(ckt, id)
	}

	// Flip-flop data inputs are sinks too.
	for _, ff := range ckt.DFFs {
		in := ckt.Cells[ff].In[0]
		d := ckt.Nets[in].Driver
		t := a.Arrival[d] + a.NetDelay[in] + m.Setup
		a.DataArrival[ff] = t
		if a.worstSink == netlist.NoCell || t > a.MaxDelay {
			a.MaxDelay, a.worstSink = t, ff
		}
	}

	// Backward pass: required times against MaxDelay.
	for i := range a.Required {
		a.Required[i] = math.Inf(1)
	}
	for _, po := range ckt.POs {
		in := ckt.Cells[po].In[0]
		d := ckt.Nets[in].Driver
		if r := a.MaxDelay - a.NetDelay[in]; r < a.Required[d] {
			a.Required[d] = r
		}
	}
	for _, ff := range ckt.DFFs {
		in := ckt.Cells[ff].In[0]
		d := ckt.Nets[in].Driver
		if r := a.MaxDelay - m.Setup - a.NetDelay[in]; r < a.Required[d] {
			a.Required[d] = r
		}
	}
	for i := len(lv.Order) - 1; i >= 0; i-- {
		id := lv.Order[i]
		cell := &ckt.Cells[id]
		if cell.Type == netlist.Input || cell.Type == netlist.DFF || cell.Type == netlist.Output {
			continue
		}
		// Propagate this cell's requirement to its fan-in drivers.
		req := a.Required[id] - m.CellDelay(ckt, id)
		for _, in := range cell.In {
			d := ckt.Nets[in].Driver
			if r := req - a.NetDelay[in]; r < a.Required[d] {
				a.Required[d] = r
			}
		}
	}
	for i := range a.Slack {
		a.Slack[i] = a.Required[i] - a.Arrival[i]
	}
	return a, nil
}

// Criticality maps a cell's slack to [0, 1]: 1 on the critical path, 0 for
// cells with slack >= MaxDelay (or feeding no sink).
func (a *Analysis) Criticality(id netlist.CellID) float64 {
	s := a.Slack[id]
	if math.IsInf(s, 1) || a.MaxDelay <= 0 {
		return 0
	}
	c := 1 - s/a.MaxDelay
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

// CriticalPath extracts the worst path (source to sink).
func (a *Analysis) CriticalPath() Path {
	if a.worstSink == netlist.NoCell {
		return Path{}
	}
	return a.tracePath(a.worstSink)
}

// WorstPaths returns up to k paths, one per distinct sink, ordered by
// decreasing path delay. The first entry is the critical path, so
// WorstPaths(k)[0].Delay == MaxDelay.
func (a *Analysis) WorstPaths(k int) []Path {
	type sinkT struct {
		id netlist.CellID
		t  float64
	}
	var sinks []sinkT
	for _, po := range a.ckt.POs {
		sinks = append(sinks, sinkT{po, a.DataArrival[po]})
	}
	for _, ff := range a.ckt.DFFs {
		sinks = append(sinks, sinkT{ff, a.DataArrival[ff]})
	}
	sort.Slice(sinks, func(i, j int) bool {
		if sinks[i].t != sinks[j].t {
			return sinks[i].t > sinks[j].t
		}
		return sinks[i].id < sinks[j].id
	})
	if k > len(sinks) {
		k = len(sinks)
	}
	paths := make([]Path, 0, k)
	for _, s := range sinks[:k] {
		paths = append(paths, a.tracePath(s.id))
	}
	return paths
}

// tracePath walks back from a sink cell along worst-arrival predecessors.
func (a *Analysis) tracePath(sink netlist.CellID) Path {
	p := Path{Delay: a.DataArrival[sink]}
	var rev []netlist.CellID
	rev = append(rev, sink)
	cur := sink
	for {
		cell := &a.ckt.Cells[cur]
		// Sinks consume through their single data pin; gates through all.
		var ins []netlist.NetID
		switch {
		case cell.Type == netlist.Input:
			ins = nil
		case cell.Type == netlist.DFF && cur != sink:
			ins = nil // reached a DFF as a source: stop
		default:
			ins = cell.In
		}
		if len(ins) == 0 {
			break
		}
		bestD := netlist.NoCell
		bestT := math.Inf(-1)
		for _, in := range ins {
			d := a.ckt.Nets[in].Driver
			if t := a.Arrival[d] + a.NetDelay[in]; t > bestT {
				bestT, bestD = t, d
			}
		}
		if bestD == netlist.NoCell {
			break
		}
		rev = append(rev, bestD)
		cur = bestD
		if c := &a.ckt.Cells[cur]; c.Type == netlist.Input || c.Type == netlist.DFF {
			break
		}
	}
	// Reverse into source-to-sink order.
	p.Cells = make([]netlist.CellID, len(rev))
	for i, id := range rev {
		p.Cells[len(rev)-1-i] = id
	}
	return p
}
