package timing

import (
	"math"

	"simevo/internal/netlist"
	"simevo/internal/telemetry"
)

// Inc is an incremental static timing analyzer: the cost-pipeline
// substrate behind the Delay objective. Where Analyze re-derives the whole
// arrival/required landscape from scratch on every call, Inc keeps the
// analysis warm and, after a batch of net-length changes, re-propagates
//
//   - arrival times only through the fan-out cones of the dirty nets
//     (a worklist over netlist.Levels, ascending), and
//   - departure times — the worst path delay from a cell's output to any
//     sink — only through the fan-in cones (the same worklist, descending),
//
// stopping each wavefront as soon as a recomputed value is bitwise equal
// to the cached one. Rebuild recomputes everything; because every per-cell
// value is a pure function of its fan-in (arrival) or fan-out (departure)
// neighborhood, the steady state of Update is bitwise identical to a
// Rebuild over the same lengths — the property the engine's
// incremental/reference equivalence rests on.
//
// Slack is represented deadline-free: slack(c) = MaxDelay − arr(c) −
// dep(c), so a changed critical path re-scales every criticality without
// touching the per-cell state. Per-net criticality (the allocation trial
// weight) is served from a cached per-net max of arr+dep over the net's
// endpoints, refreshed only for nets incident to cells whose arrival or
// departure actually moved.
//
// An Inc is not safe for concurrent mutation; concurrent reads
// (Criticality, NetCriticality, MaxDelay) are safe once Update/Rebuild has
// returned.
type Inc struct {
	ckt *netlist.Circuit
	lv  *netlist.Levels
	m   Model

	cd       []float64 // per-cell switching delay CD (static: widths and fan-out never change)
	arr      []float64 // arrival at the cell output (0 for pads)
	dep      []float64 // worst output-to-sink path delay; -Inf when the cell feeds no sink
	dataArr  []float64 // sink-side arrival for POs and DFF data inputs
	netDelay []float64 // interconnect delay ID per net
	adNet    []float64 // per-net max over endpoints of arr+dep
	maxDelay float64
	built    bool

	// Worklist state, reused across updates (no steady-state allocations).
	fwd, bwd  [][]netlist.CellID // per-level buckets
	inFwd     []bool
	inBwd     []bool
	sinkSet   []netlist.CellID // POs/DFFs whose dataArr needs a refresh
	inSink    []bool
	changed   []netlist.CellID // cells whose arr or dep moved this update
	inChanged []bool
	pending   []netlist.NetID // nets whose adNet needs a refresh
	netMark   []bool
	netsBuf   []netlist.NetID

	// Telemetry tallies (plain counters: Inc is single-goroutine by
	// contract). Snapshot/Restore leave them alone — they are monotone
	// work counters, not analysis state.
	statUpdates   uint64
	statRebuilds  uint64
	statConeCells uint64
}

// Stats reports incremental-update work totals: successful incremental
// updates, full rebuilds (including fallbacks), and the total dirty-cone
// cells recomputed across all updates.
func (s *Inc) Stats() (updates, rebuilds, coneCells uint64) {
	return s.statUpdates, s.statRebuilds, s.statConeCells
}

// NewInc builds the analyzer shell; Rebuild must run before any reads.
func NewInc(ckt *netlist.Circuit, lv *netlist.Levels, m Model) *Inc {
	n := len(ckt.Cells)
	s := &Inc{
		ckt: ckt, lv: lv, m: m,
		cd:        make([]float64, n),
		arr:       make([]float64, n),
		dep:       make([]float64, n),
		dataArr:   make([]float64, n),
		netDelay:  make([]float64, ckt.NumNets()),
		adNet:     make([]float64, ckt.NumNets()),
		fwd:       make([][]netlist.CellID, lv.Depth+1),
		bwd:       make([][]netlist.CellID, lv.Depth+1),
		inFwd:     make([]bool, n),
		inBwd:     make([]bool, n),
		inSink:    make([]bool, n),
		inChanged: make([]bool, n),
		netMark:   make([]bool, ckt.NumNets()),
	}
	for id := range ckt.Cells {
		s.cd[id] = m.CellDelay(ckt, netlist.CellID(id))
	}
	return s
}

// Built reports whether Rebuild has initialized the state.
func (s *Inc) Built() bool { return s.built }

// MaxDelay returns Cost_delay: the largest sink arrival.
func (s *Inc) MaxDelay() float64 { return s.maxDelay }

// Rebuild re-derives the full analysis from the given per-net lengths —
// the reference path, and the periodic drift guard of the cost pipeline.
func (s *Inc) Rebuild(lengths []float64) float64 {
	s.statRebuilds++
	telemetry.TimingRebuilds.Inc()
	ckt := s.ckt
	for n := range s.netDelay {
		s.netDelay[n] = s.m.UnitWire * lengths[n]
	}
	for _, id := range s.lv.Order {
		if ckt.Cells[id].Type != netlist.Output {
			s.arr[id] = s.arrivalOf(id)
		}
	}
	for _, po := range ckt.POs {
		s.dataArr[po] = s.dataArrOf(po)
	}
	for _, ff := range ckt.DFFs {
		s.dataArr[ff] = s.dataArrOf(ff)
	}
	for i := len(s.lv.Order) - 1; i >= 0; i-- {
		id := s.lv.Order[i]
		s.dep[id] = s.depOf(id)
	}
	s.maxDelay = s.maxOverSinks()
	for n := range s.adNet {
		s.adNet[n] = s.adOf(netlist.NetID(n))
	}
	s.built = true
	return s.maxDelay
}

// Update folds a batch of re-estimated net lengths in, re-propagating only
// through the affected cones. dirty lists the nets whose length may have
// changed; lengths holds the full committed array with the new values.
func (s *Inc) Update(dirty []netlist.NetID, lengths []float64) float64 {
	if !s.built {
		return s.Rebuild(lengths)
	}
	// A batch touching a large fraction of the nets drags most of the
	// circuit through the worklists; past that point the plain O(V+E)
	// rebuild is cheaper — and lands on the identical bits, so the
	// crossover is purely a wall-clock choice.
	if len(dirty)*4 >= len(s.netDelay) {
		return s.Rebuild(lengths)
	}
	ckt := s.ckt
	var visited int64 // cells popped off either wavefront this update
	for _, n := range dirty {
		nd := s.m.UnitWire * lengths[n]
		if nd == s.netDelay[n] {
			continue
		}
		s.netDelay[n] = nd
		net := &ckt.Nets[n]
		for _, sk := range net.Sinks {
			s.seedFwd(sk)
		}
		if net.Driver != netlist.NoCell {
			s.seedBwd(net.Driver)
		}
	}

	// Forward wavefront, ascending levels: every enqueue targets a
	// strictly higher level (combinational sinks level above their
	// drivers; POs and DFF data pins go to the sink set instead).
	for l := 0; l < len(s.fwd); l++ {
		bucket := s.fwd[l]
		for i := 0; i < len(bucket); i++ {
			id := bucket[i]
			s.inFwd[id] = false
			visited++
			na := s.arrivalOf(id)
			if na == s.arr[id] {
				continue
			}
			s.arr[id] = na
			s.markChanged(id)
			out := ckt.Cells[id].Out
			if out == netlist.NoNet {
				continue
			}
			for _, sk := range ckt.Nets[out].Sinks {
				s.seedFwd(sk)
			}
		}
		s.fwd[l] = bucket[:0]
	}
	for _, id := range s.sinkSet {
		s.inSink[id] = false
		s.dataArr[id] = s.dataArrOf(id)
	}
	s.sinkSet = s.sinkSet[:0]

	// Backward wavefront, descending levels: departures flow from sinks
	// toward sources, every enqueue targeting a strictly lower level.
	for l := len(s.bwd) - 1; l >= 0; l-- {
		bucket := s.bwd[l]
		for i := 0; i < len(bucket); i++ {
			id := bucket[i]
			s.inBwd[id] = false
			visited++
			nd := s.depOf(id)
			if nd == s.dep[id] {
				continue
			}
			s.dep[id] = nd
			s.markChanged(id)
			cell := &ckt.Cells[id]
			if cell.Type == netlist.Input || cell.Type == netlist.DFF || cell.Type == netlist.Output {
				continue // sequential/boundary: the wavefront stops here
			}
			for _, in := range cell.In {
				if d := ckt.Nets[in].Driver; d != netlist.NoCell {
					s.seedBwd(d)
				}
			}
		}
		s.bwd[l] = bucket[:0]
	}

	s.maxDelay = s.maxOverSinks()

	// Per-net criticality inputs: only nets incident to a cell whose
	// arrival or departure moved can change their endpoint maximum.
	for _, id := range s.changed {
		s.inChanged[id] = false
		s.netsBuf = ckt.CellNets(id, s.netsBuf[:0])
		for _, n := range s.netsBuf {
			if !s.netMark[n] {
				s.netMark[n] = true
				s.pending = append(s.pending, n)
			}
		}
	}
	s.changed = s.changed[:0]
	for _, n := range s.pending {
		s.netMark[n] = false
		s.adNet[n] = s.adOf(n)
	}
	s.pending = s.pending[:0]
	s.statUpdates++
	s.statConeCells += uint64(visited)
	telemetry.TimingConeCells.Observe(visited)
	return s.maxDelay
}

func (s *Inc) seedFwd(sk netlist.CellID) {
	switch s.ckt.Cells[sk].Type {
	case netlist.Output, netlist.DFF:
		// Sink-side arrivals re-derive after the sweep; a DFF's output
		// arrival is the constant clock-to-Q and never propagates.
		if !s.inSink[sk] {
			s.inSink[sk] = true
			s.sinkSet = append(s.sinkSet, sk)
		}
	case netlist.Input:
		// Pads have no inputs; nothing to recompute.
	default:
		if !s.inFwd[sk] {
			s.inFwd[sk] = true
			s.fwd[s.lv.Level[sk]] = append(s.fwd[s.lv.Level[sk]], sk)
		}
	}
}

func (s *Inc) seedBwd(d netlist.CellID) {
	if !s.inBwd[d] {
		s.inBwd[d] = true
		s.bwd[s.lv.Level[d]] = append(s.bwd[s.lv.Level[d]], d)
	}
}

func (s *Inc) markChanged(id netlist.CellID) {
	if !s.inChanged[id] {
		s.inChanged[id] = true
		s.changed = append(s.changed, id)
	}
}

// arrivalOf is the canonical arrival recurrence; Rebuild and the forward
// wavefront share it, which is what makes their fixpoints bit-identical.
func (s *Inc) arrivalOf(id netlist.CellID) float64 {
	cell := &s.ckt.Cells[id]
	switch cell.Type {
	case netlist.Input:
		return 0
	case netlist.DFF:
		return s.m.ClkToQ
	}
	worst := 0.0
	for _, in := range cell.In {
		d := s.ckt.Nets[in].Driver
		if t := s.arr[d] + s.netDelay[in]; t > worst {
			worst = t
		}
	}
	return worst + s.cd[id]
}

// dataArrOf is the sink-side arrival: the PO input arrival, or the DFF
// data arrival including setup.
func (s *Inc) dataArrOf(id netlist.CellID) float64 {
	cell := &s.ckt.Cells[id]
	if cell.Type == netlist.DFF {
		in := cell.In[0]
		return s.arr[s.ckt.Nets[in].Driver] + s.netDelay[in] + s.m.Setup
	}
	worst := 0.0
	for _, in := range cell.In {
		d := s.ckt.Nets[in].Driver
		if t := s.arr[d] + s.netDelay[in]; t > worst {
			worst = t
		}
	}
	return worst
}

// depOf is the canonical departure recurrence: the worst path delay from
// the cell's output pin to any sink (-Inf when it feeds none). Paths end
// at PO inputs (no further delay) and DFF data pins (setup penalty).
func (s *Inc) depOf(id netlist.CellID) float64 {
	out := s.ckt.Cells[id].Out
	if out == netlist.NoNet {
		return math.Inf(-1)
	}
	nd := s.netDelay[out]
	best := math.Inf(-1)
	for _, sk := range s.ckt.Nets[out].Sinks {
		var t float64
		switch s.ckt.Cells[sk].Type {
		case netlist.Output:
			t = nd
		case netlist.DFF:
			t = nd + s.m.Setup
		default:
			t = nd + s.cd[sk] + s.dep[sk]
		}
		if t > best {
			best = t
		}
	}
	return best
}

// maxOverSinks re-derives Cost_delay from the cached sink arrivals. Max is
// order-independent, so an O(#sinks) rescan stays bitwise stable no matter
// which subset of sinks the update touched.
func (s *Inc) maxOverSinks() float64 {
	max := 0.0
	for _, po := range s.ckt.POs {
		if s.dataArr[po] > max {
			max = s.dataArr[po]
		}
	}
	for _, ff := range s.ckt.DFFs {
		if s.dataArr[ff] > max {
			max = s.dataArr[ff]
		}
	}
	return max
}

// adOf is the per-net criticality input: the worst arr+dep over the net's
// endpoint cells.
func (s *Inc) adOf(n netlist.NetID) float64 {
	best := math.Inf(-1)
	net := &s.ckt.Nets[n]
	if d := net.Driver; d != netlist.NoCell {
		if ad := s.arr[d] + s.dep[d]; ad > best {
			best = ad
		}
	}
	for _, sk := range net.Sinks {
		if ad := s.arr[sk] + s.dep[sk]; ad > best {
			best = ad
		}
	}
	return best
}

// critOf maps an arr+dep sum to [0,1] criticality: slack = MaxDelay−ad,
// criticality = 1 − slack/MaxDelay = ad/MaxDelay, clamped; cells feeding
// no sink (ad = −Inf) pin to 0, matching Analysis.Criticality semantics.
func (s *Inc) critOf(ad float64) float64 {
	if s.maxDelay <= 0 || math.IsInf(ad, -1) {
		return 0
	}
	c := ad / s.maxDelay
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

// Criticality returns the cell's path criticality in [0,1].
func (s *Inc) Criticality(id netlist.CellID) float64 {
	return s.critOf(s.arr[id] + s.dep[id])
}

// NetCriticality returns the worst endpoint criticality of a net — the
// delay weight of allocation trials.
func (s *Inc) NetCriticality(n netlist.NetID) float64 {
	return s.critOf(s.adNet[n])
}

// IncSnapshot is a copy of an Inc's mutable analysis state.
type IncSnapshot struct {
	arr, dep, dataArr, netDelay, adNet []float64
	maxDelay                           float64
	built                              bool
}

// Snapshot copies the analysis state for a later Restore.
func (s *Inc) Snapshot() *IncSnapshot {
	cp := func(v []float64) []float64 { return append([]float64(nil), v...) }
	return &IncSnapshot{
		arr: cp(s.arr), dep: cp(s.dep), dataArr: cp(s.dataArr),
		netDelay: cp(s.netDelay), adNet: cp(s.adNet),
		maxDelay: s.maxDelay, built: s.built,
	}
}

// Restore reinstates a snapshot taken from the same circuit.
func (s *Inc) Restore(sn *IncSnapshot) {
	copy(s.arr, sn.arr)
	copy(s.dep, sn.dep)
	copy(s.dataArr, sn.dataArr)
	copy(s.netDelay, sn.netDelay)
	copy(s.adNet, sn.adNet)
	s.maxDelay = sn.maxDelay
	s.built = sn.built
}
