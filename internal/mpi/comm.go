package mpi

import (
	"fmt"
	"time"
)

// Comm is a rank's handle to the cluster, passed to the function run by
// Cluster.Run. It is owned by that rank's goroutine and must not be shared.
type Comm struct {
	cl *Cluster
	rs *rankState
}

// Rank returns this rank's id (0-based).
func (c *Comm) Rank() int { return c.rs.id }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.cl.n }

// Elapsed returns this rank's virtual clock.
func (c *Comm) Elapsed() time.Duration {
	c.cl.mu.Lock()
	defer c.cl.mu.Unlock()
	return c.rs.clock
}

// Charge adds modeled compute time to this rank's clock. Use together with
// Options.MeasureCompute=false for deterministic virtual-time tests.
func (c *Comm) Charge(d time.Duration) {
	c.cl.mu.Lock()
	defer c.cl.mu.Unlock()
	c.rs.clock += d
	c.rs.stats.Compute += d
}

// Status describes a received message.
type Status struct {
	Source int
	Tag    int
}

// Send posts a message to dst. Sends are eager (buffered at the receiver):
// the call returns after charging the sender's overhead and transfer time.
// A send to the sender's own rank is a local enqueue — the message lands in
// the sender's inbox after the modeled overheads, so strategy code needs no
// rank special-casing (MPI likewise buffers self-sends).
func (c *Comm) Send(dst, tag int, data []byte) {
	if dst < 0 || dst >= c.cl.n {
		panic(fmt.Sprintf("mpi: Send to invalid rank %d", dst))
	}
	cl := c.cl
	cl.mu.Lock()
	cl.chargeComputeLocked(c.rs)
	c.sendLocked(dst, tag, data, true)
	cl.yieldLocked(c.rs)
	c.rs.computeStart = time.Now()
	cl.mu.Unlock()
}

// sendLocked enqueues a message; chargeWire controls whether bandwidth and
// overhead are charged (TrueBroadcast fan-out charges only the first copy).
func (c *Comm) sendLocked(dst, tag int, data []byte, chargeWire bool) {
	cl := c.cl
	m := cl.opt.Net
	if chargeWire {
		c.rs.clock += m.SendOverhead + m.transferTime(len(data))
	}
	arrival := c.rs.clock + m.Latency
	cp := make([]byte, len(data))
	copy(cp, data)
	cl.seq++
	target := cl.rs[dst]
	target.inbox = append(target.inbox, message{
		src: c.rs.id, tag: tag, data: cp, arrival: arrival, seq: cl.seq,
	})
	c.rs.stats.MsgsSent++
	c.rs.stats.BytesSent += len(data)
	if target.state == stateBlocked && findMatchLocked(target, target.waitSrc, target.waitTag) >= 0 {
		target.state = stateRunnable
	}
}

// Recv blocks until a message matching (src, tag) is available and returns
// its payload. Use AnySource and AnyTag as wildcards; internal collective
// traffic is never matched by AnyTag.
func (c *Comm) Recv(src, tag int) ([]byte, Status) {
	cl := c.cl
	cl.mu.Lock()
	cl.chargeComputeLocked(c.rs)
	for {
		if i := findMatchLocked(c.rs, src, tag); i >= 0 {
			msg := c.rs.inbox[i]
			c.rs.inbox = append(c.rs.inbox[:i], c.rs.inbox[i+1:]...)
			if msg.arrival > c.rs.clock {
				c.rs.clock = msg.arrival
			}
			c.rs.clock += cl.opt.Net.RecvOverhead
			c.rs.stats.MsgsRecv++
			c.rs.stats.BytesRecv += len(msg.data)
			cl.yieldLocked(c.rs)
			c.rs.computeStart = time.Now()
			cl.mu.Unlock()
			return msg.data, Status{Source: msg.src, Tag: msg.tag}
		}
		cl.blockLocked(c.rs, src, tag)
	}
}

// Poll is a non-blocking Recv: it consumes and returns a message matching
// (src, tag) if one is pending, and returns ok=false without blocking
// otherwise. Before inspecting the inbox the caller yields to every
// runnable rank with a smaller virtual clock, so the set of messages a
// poll can see is a pure function of the virtual-time schedule — with
// MeasureCompute=false this makes polling loops (the async Type III
// exchange) fully deterministic, the simulator's reference schedule. A
// hit charges the receive overhead and advances the clock to the
// message's arrival exactly as Recv would; a miss charges nothing.
func (c *Comm) Poll(src, tag int) ([]byte, Status, bool) {
	cl := c.cl
	cl.mu.Lock()
	cl.chargeComputeLocked(c.rs)
	cl.yieldLocked(c.rs)
	if i := findMatchLocked(c.rs, src, tag); i >= 0 {
		msg := c.rs.inbox[i]
		c.rs.inbox = append(c.rs.inbox[:i], c.rs.inbox[i+1:]...)
		if msg.arrival > c.rs.clock {
			c.rs.clock = msg.arrival
		}
		c.rs.clock += cl.opt.Net.RecvOverhead
		c.rs.stats.MsgsRecv++
		c.rs.stats.BytesRecv += len(msg.data)
		cl.yieldLocked(c.rs)
		c.rs.computeStart = time.Now()
		cl.mu.Unlock()
		return msg.data, Status{Source: msg.src, Tag: msg.tag}, true
	}
	c.rs.computeStart = time.Now()
	cl.mu.Unlock()
	return nil, Status{}, false
}

// Bcast distributes data from root to every rank; all ranks must call it.
// It returns the payload (root returns its own data). With a TrueBroadcast
// network the root pays the wire cost once, as on a shared-medium LAN.
func (c *Comm) Bcast(root int, data []byte) []byte {
	cl := c.cl
	if c.rs.id == root {
		cl.mu.Lock()
		cl.chargeComputeLocked(c.rs)
		m := cl.opt.Net
		if m.TrueBroadcast {
			c.rs.clock += m.SendOverhead + m.transferTime(len(data))
			for dst := 0; dst < cl.n; dst++ {
				if dst != root {
					c.sendLocked(dst, tagBcast, data, false)
				}
			}
		} else {
			for dst := 0; dst < cl.n; dst++ {
				if dst != root {
					c.sendLocked(dst, tagBcast, data, true)
				}
			}
		}
		cl.yieldLocked(c.rs)
		c.rs.computeStart = time.Now()
		cl.mu.Unlock()
		return data
	}
	payload, _ := c.Recv(root, tagBcast)
	return payload
}

// Gather collects one payload per rank at root; all ranks must call it.
// Root receives in rank order and returns the slice indexed by rank;
// non-roots return nil.
func (c *Comm) Gather(root int, data []byte) [][]byte {
	if c.rs.id != root {
		c.Send(root, tagGather, data)
		return nil
	}
	out := make([][]byte, c.cl.n)
	cp := make([]byte, len(data))
	copy(cp, data)
	out[root] = cp
	for r := 0; r < c.cl.n; r++ {
		if r == root {
			continue
		}
		payload, _ := c.Recv(r, tagGather)
		out[r] = payload
	}
	return out
}

// Barrier blocks until every rank reaches it (linear fan-in/fan-out
// through rank 0).
func (c *Comm) Barrier() {
	if c.rs.id == 0 {
		for r := 1; r < c.cl.n; r++ {
			c.Recv(r, tagBarrierUp)
		}
		for r := 1; r < c.cl.n; r++ {
			c.Send(r, tagBarrierDown, nil)
		}
		return
	}
	c.Send(0, tagBarrierUp, nil)
	c.Recv(0, tagBarrierDown)
}
