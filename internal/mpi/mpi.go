// Package mpi is a virtual-time message-passing cluster simulator.
//
// The paper ran its parallel strategies with MPICH 1.2.5 on a dedicated
// eight-node Pentium-4 cluster connected by fast Ethernet. This workspace
// has two CPU cores, so real wall-clock speedups at five ranks are
// physically impossible; instead, the cluster is simulated in virtual time
// (see DESIGN.md):
//
//   - Each rank runs in its own goroutine, but exactly one rank executes at
//     a time (a token is passed at every MPI call). While a rank holds the
//     token, its real compute time is measured with a monotonic clock and
//     charged to its private virtual clock — accurate even on a loaded box,
//     because nothing else is runnable.
//   - Message-passing costs follow a LogP-style model: per-message sender
//     overhead, bandwidth (bytes/second), and wire latency. A message
//     enqueued at virtual time t arrives at t + overheads; a Recv advances
//     the receiver's clock to max(own clock, arrival) — waiting shows up as
//     idle virtual time exactly as on a real cluster.
//   - The scheduler always resumes the runnable rank with the smallest
//     virtual clock, which keeps virtual-time causality tight.
//
// The reported runtime of a parallel phase is the maximum virtual clock
// over ranks (the makespan), which is what a wall clock would measure on
// the paper's hardware.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// AnySource matches messages from every rank in Recv.
const AnySource = -1

// AnyTag matches every non-internal tag in Recv.
const AnyTag = -1

// Internal collective tags (never matched by AnyTag).
const (
	tagBarrierUp = -(100 + iota)
	tagBarrierDown
	tagBcast
	tagGather
)

// NetModel is the LogP-style communication cost model.
type NetModel struct {
	// Latency is the wire time per message.
	Latency time.Duration
	// BytesPerSec is the link bandwidth; 0 means infinite.
	BytesPerSec float64
	// SendOverhead and RecvOverhead are per-message CPU costs charged to
	// the sender and receiver clocks.
	SendOverhead time.Duration
	RecvOverhead time.Duration
	// TrueBroadcast charges a Bcast's payload once at the root (a shared-
	// medium LAN delivers one frame burst to every station) instead of one
	// unicast per destination.
	TrueBroadcast bool
}

// FastEthernet models the paper's interconnect: 100 Mbit/s Ethernet driven
// through MPICH-1.2/TCP. One-way small-message MPI latency on that stack is
// a few hundred microseconds; bandwidth is the 12.5 MB/s wire rate.
func FastEthernet() NetModel {
	return NetModel{
		Latency:       250 * time.Microsecond,
		BytesPerSec:   12.5e6,
		SendOverhead:  50 * time.Microsecond,
		RecvOverhead:  50 * time.Microsecond,
		TrueBroadcast: true,
	}
}

// Ideal models a zero-cost interconnect (shared-memory ablation).
func Ideal() NetModel { return NetModel{} }

func (m NetModel) transferTime(bytes int) time.Duration {
	if m.BytesPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / m.BytesPerSec * float64(time.Second))
}

// Options configures a cluster.
type Options struct {
	Net NetModel
	// MeasureCompute charges real (monotonic) compute time between MPI
	// calls to the rank's virtual clock. Disable for deterministic tests
	// and charge explicitly with Comm.Charge.
	MeasureCompute bool
	// CPUScale multiplies measured compute time (models slower nodes).
	// 0 means 1.
	CPUScale float64
}

// RankStats reports one rank's accounting after Run.
type RankStats struct {
	Clock     time.Duration // final virtual time
	Compute   time.Duration // charged compute
	Comm      time.Duration // clock - compute (overheads + waiting)
	MsgsSent  int
	BytesSent int
	MsgsRecv  int
	BytesRecv int
}

type runState uint8

const (
	stateIdle runState = iota // not yet started
	stateRunnable
	stateRunning
	stateBlocked
	stateDone
)

type message struct {
	src, tag int
	data     []byte
	arrival  time.Duration
	seq      uint64
}

type rankState struct {
	id           int
	state        runState
	clock        time.Duration
	computeStart time.Time
	inbox        []message
	waitSrc      int
	waitTag      int
	resume       chan struct{}
	stats        RankStats
}

// Cluster is a one-shot virtual cluster; create one per Run.
type Cluster struct {
	n    int
	opt  Options
	mu   sync.Mutex
	rs   []*rankState
	seq  uint64
	dead bool
	ran  bool
}

// NewCluster creates a cluster with n ranks.
func NewCluster(n int, opt Options) *Cluster {
	if n < 1 {
		panic("mpi: cluster needs at least one rank")
	}
	if opt.CPUScale == 0 {
		opt.CPUScale = 1
	}
	cl := &Cluster{n: n, opt: opt}
	for i := 0; i < n; i++ {
		cl.rs = append(cl.rs, &rankState{
			id:     i,
			state:  stateIdle,
			resume: make(chan struct{}, 1),
		})
	}
	return cl
}

// Size returns the number of ranks.
func (cl *Cluster) Size() int { return cl.n }

// Run executes f once per rank and blocks until every rank returns. It can
// be called once per cluster. The returned error joins all rank errors.
func (cl *Cluster) Run(f func(c *Comm) error) error {
	cl.mu.Lock()
	if cl.ran {
		cl.mu.Unlock()
		return errors.New("mpi: cluster already ran")
	}
	cl.ran = true
	cl.mu.Unlock()

	errs := make([]error, cl.n)
	var wg sync.WaitGroup
	for i := 0; i < cl.n; i++ {
		rs := cl.rs[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[rs.id] = fmt.Errorf("mpi: rank %d panicked: %v", rs.id, r)
					cl.mu.Lock()
					rs.state = stateDone
					cl.wakeNextLocked()
					cl.mu.Unlock()
				}
			}()
			<-rs.resume // wait to be scheduled the first time
			rs.computeStart = time.Now()
			errs[rs.id] = f(&Comm{cl: cl, rs: rs})
			cl.mu.Lock()
			cl.chargeComputeLocked(rs)
			rs.state = stateDone
			cl.wakeNextLocked()
			cl.mu.Unlock()
		}()
	}

	// Mark everyone runnable and start the lowest rank.
	cl.mu.Lock()
	for _, rs := range cl.rs {
		rs.state = stateRunnable
	}
	cl.wakeNextLocked()
	cl.mu.Unlock()

	wg.Wait()
	return errors.Join(errs...)
}

// MakeSpan returns the maximum virtual clock over ranks — the simulated
// wall time of the whole run.
func (cl *Cluster) MakeSpan() time.Duration {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var max time.Duration
	for _, rs := range cl.rs {
		if rs.clock > max {
			max = rs.clock
		}
	}
	return max
}

// Stats returns per-rank accounting.
func (cl *Cluster) Stats() []RankStats {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	out := make([]RankStats, cl.n)
	for i, rs := range cl.rs {
		st := rs.stats
		st.Clock = rs.clock
		st.Comm = rs.clock - st.Compute
		out[i] = st
	}
	return out
}

// chargeComputeLocked stops the rank's compute timer and charges the
// elapsed real time to its virtual clock.
func (cl *Cluster) chargeComputeLocked(rs *rankState) {
	if !cl.opt.MeasureCompute {
		return
	}
	dt := time.Duration(float64(time.Since(rs.computeStart)) * cl.opt.CPUScale)
	if dt > 0 {
		rs.clock += dt
		rs.stats.Compute += dt
	}
}

// pickNextLocked returns the runnable rank with the smallest clock.
func (cl *Cluster) pickNextLocked() *rankState {
	var best *rankState
	for _, rs := range cl.rs {
		if rs.state != stateRunnable {
			continue
		}
		if best == nil || rs.clock < best.clock {
			best = rs
		}
	}
	return best
}

// wakeNextLocked schedules the next runnable rank, or detects termination /
// deadlock when none exists.
func (cl *Cluster) wakeNextLocked() {
	next := cl.pickNextLocked()
	if next != nil {
		next.state = stateRunning
		select {
		case next.resume <- struct{}{}:
		default: // a wakeup is already pending
		}
		return
	}
	// No runnable rank: fine if everyone is done; a deadlock otherwise.
	blocked := false
	for _, rs := range cl.rs {
		if rs.state == stateBlocked {
			blocked = true
		}
		if rs.state == stateRunning {
			return // someone is still on CPU; they will reschedule
		}
	}
	if blocked {
		cl.dead = true
		for _, rs := range cl.rs {
			if rs.state == stateBlocked {
				select {
				case rs.resume <- struct{}{}:
				default:
				}
			}
		}
	}
}

// yieldLocked hands the CPU to the lowest-clock runnable rank (possibly the
// caller). Returns with the caller scheduled again.
func (cl *Cluster) yieldLocked(rs *rankState) {
	rs.state = stateRunnable
	for {
		next := cl.pickNextLocked()
		if next == rs {
			rs.state = stateRunning
			return
		}
		// Someone else runs first.
		next.state = stateRunning
		select {
		case next.resume <- struct{}{}:
		default:
		}
		cl.mu.Unlock()
		<-rs.resume
		cl.mu.Lock()
		if cl.dead {
			cl.mu.Unlock() // the recovery handler re-locks
			panic("mpi: deadlock: all ranks blocked in Recv")
		}
		if rs.state == stateRunning {
			return
		}
		// Spurious wake (pending buffered signal); loop.
	}
}

// blockLocked parks the rank until a matching message arrives (the sender
// marks it runnable) and it is scheduled.
func (cl *Cluster) blockLocked(rs *rankState, src, tag int) {
	rs.state = stateBlocked
	rs.waitSrc, rs.waitTag = src, tag
	cl.wakeNextLocked()
	for {
		cl.mu.Unlock()
		<-rs.resume
		cl.mu.Lock()
		if cl.dead {
			cl.mu.Unlock() // the recovery handler re-locks
			panic("mpi: deadlock: all ranks blocked in Recv")
		}
		if rs.state == stateRunning {
			return
		}
	}
}

func matches(m *message, src, tag int) bool {
	if src != AnySource && m.src != src {
		return false
	}
	if tag == AnyTag {
		return m.tag >= 0 // internal tags are never matched by AnyTag
	}
	return m.tag == tag
}

// findMatchLocked returns the index of the best matching message in the
// inbox: smallest arrival time, ties broken by send sequence.
func findMatchLocked(rs *rankState, src, tag int) int {
	best := -1
	for i := range rs.inbox {
		m := &rs.inbox[i]
		if !matches(m, src, tag) {
			continue
		}
		if best < 0 || m.arrival < rs.inbox[best].arrival ||
			(m.arrival == rs.inbox[best].arrival && m.seq < rs.inbox[best].seq) {
			best = i
		}
	}
	return best
}
