package mpi

import (
	"bytes"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// detOptions returns options for deterministic virtual-time tests: no real
// compute measurement, explicit NetModel.
func detOptions(net NetModel) Options {
	return Options{Net: net, MeasureCompute: false}
}

func TestSendRecvBasic(t *testing.T) {
	cl := NewCluster(2, detOptions(Ideal()))
	var got []byte
	var st Status
	err := cl.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, []byte("hello"))
		} else {
			got, st = c.Recv(0, 7)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("payload = %q", got)
	}
	if st.Source != 0 || st.Tag != 7 {
		t.Fatalf("status = %+v", st)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	cl := NewCluster(2, detOptions(Ideal()))
	var got []byte
	err := cl.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []byte("abc")
			c.Send(1, 1, buf)
			buf[0] = 'X' // must not affect the delivered message
		} else {
			got, _ = c.Recv(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("payload mutated in flight: %q", got)
	}
}

func TestFIFOPerPair(t *testing.T) {
	cl := NewCluster(2, detOptions(Ideal()))
	var order []int
	err := cl.Run(func(c *Comm) error {
		const n = 50
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 3, []byte{byte(i)})
			}
		} else {
			for i := 0; i < n; i++ {
				data, _ := c.Recv(0, 3)
				order = append(order, int(data[0]))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("message order violated at %d: got %d", i, v)
		}
	}
}

func TestVirtualClockAccounting(t *testing.T) {
	net := NetModel{
		Latency:      5 * time.Millisecond,
		BytesPerSec:  1e6,
		SendOverhead: 1 * time.Millisecond,
		RecvOverhead: 2 * time.Millisecond,
	}
	cl := NewCluster(2, detOptions(net))
	err := cl.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Charge(10 * time.Millisecond)
			c.Send(1, 1, make([]byte, 1000)) // 1 ms transfer at 1e6 B/s
			// clock: 10 + 1 + 1 = 12 ms
			if got := c.Elapsed(); got != 12*time.Millisecond {
				return fmt.Errorf("sender clock = %v, want 12ms", got)
			}
		} else {
			c.Recv(0, 1)
			// arrival = 12 + 5 = 17; recv overhead 2 -> 19 ms
			if got := c.Elapsed(); got != 19*time.Millisecond {
				return fmt.Errorf("receiver clock = %v, want 19ms", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ms := cl.MakeSpan(); ms != 19*time.Millisecond {
		t.Fatalf("MakeSpan = %v, want 19ms", ms)
	}
}

func TestRecvDoesNotWaitWhenMessageOld(t *testing.T) {
	// If the receiver's clock is already past the arrival time, Recv only
	// charges the receive overhead.
	net := NetModel{Latency: 1 * time.Millisecond, RecvOverhead: 1 * time.Millisecond}
	cl := NewCluster(2, detOptions(net))
	err := cl.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, nil) // arrival at 1ms
		} else {
			c.Charge(100 * time.Millisecond)
			c.Recv(0, 1)
			if got := c.Elapsed(); got != 101*time.Millisecond {
				return fmt.Errorf("receiver clock = %v, want 101ms", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastDeliversToAll(t *testing.T) {
	const n = 5
	payloads := make([][]byte, n)
	cl := NewCluster(n, detOptions(FastEthernet()))
	err := cl.Run(func(c *Comm) error {
		data := c.Bcast(0, []byte("placement"))
		payloads[c.Rank()] = data
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, p := range payloads {
		if !bytes.Equal(p, []byte("placement")) {
			t.Fatalf("rank %d got %q", r, p)
		}
	}
}

func TestTrueBroadcastChargesRootOnce(t *testing.T) {
	mk := func(trueBcast bool, ranks int) time.Duration {
		net := NetModel{
			Latency:       0,
			BytesPerSec:   1e6,
			SendOverhead:  time.Millisecond,
			TrueBroadcast: trueBcast,
		}
		cl := NewCluster(ranks, detOptions(net))
		var rootClock time.Duration
		err := cl.Run(func(c *Comm) error {
			c.Bcast(0, make([]byte, 1000))
			if c.Rank() == 0 {
				rootClock = c.Elapsed()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rootClock
	}
	// True broadcast: 1 overhead + 1 transfer = 2ms regardless of ranks.
	if got := mk(true, 5); got != 2*time.Millisecond {
		t.Fatalf("true-broadcast root clock = %v, want 2ms", got)
	}
	// Unicast fan-out: 4 x 2ms.
	if got := mk(false, 5); got != 8*time.Millisecond {
		t.Fatalf("unicast root clock = %v, want 8ms", got)
	}
}

func TestGather(t *testing.T) {
	const n = 4
	var got [][]byte
	cl := NewCluster(n, detOptions(FastEthernet()))
	err := cl.Run(func(c *Comm) error {
		data := []byte(fmt.Sprintf("rank%d", c.Rank()))
		res := c.Gather(0, data)
		if c.Rank() == 0 {
			got = res
		} else if res != nil {
			return fmt.Errorf("non-root got non-nil gather result")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("gather returned %d entries", len(got))
	}
	for r, p := range got {
		if string(p) != fmt.Sprintf("rank%d", r) {
			t.Fatalf("gather[%d] = %q", r, p)
		}
	}
}

func TestBarrierAlignsClocks(t *testing.T) {
	net := NetModel{Latency: time.Millisecond}
	cl := NewCluster(3, detOptions(net))
	clocks := make([]time.Duration, 3)
	err := cl.Run(func(c *Comm) error {
		// Rank r charges (r+1)*10ms, so rank 2 arrives last at 30ms.
		c.Charge(time.Duration(c.Rank()+1) * 10 * time.Millisecond)
		c.Barrier()
		clocks[c.Rank()] = c.Elapsed()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, clk := range clocks {
		if clk < 30*time.Millisecond {
			t.Fatalf("rank %d left the barrier at %v, before the slowest arrival", r, clk)
		}
	}
}

func TestAnySourceRecv(t *testing.T) {
	cl := NewCluster(4, detOptions(Ideal()))
	var got []int
	err := cl.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 3; i++ {
				_, st := c.Recv(AnySource, 5)
				got = append(got, st.Source)
			}
			return nil
		}
		c.Send(0, 5, nil)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, s := range got {
		seen[s] = true
	}
	if len(seen) != 3 {
		t.Fatalf("AnySource received from %v, want 3 distinct sources", got)
	}
}

func TestAnyTagSkipsInternalTraffic(t *testing.T) {
	// A pending AnyTag Recv must not swallow barrier protocol messages.
	cl := NewCluster(2, detOptions(Ideal()))
	err := cl.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Barrier()
			data, st := c.Recv(AnySource, AnyTag)
			if st.Tag != 9 || string(data) != "user" {
				return fmt.Errorf("got tag %d payload %q", st.Tag, data)
			}
			return nil
		}
		c.Barrier()
		c.Send(0, 9, []byte("user"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	cl := NewCluster(2, detOptions(Ideal()))
	err := cl.Run(func(c *Comm) error {
		c.Recv(AnySource, AnyTag) // nobody ever sends
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("deadlock not reported: %v", err)
	}
}

func TestRankErrorsPropagate(t *testing.T) {
	cl := NewCluster(3, detOptions(Ideal()))
	err := cl.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return fmt.Errorf("boom-%d", c.Rank())
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom-1") {
		t.Fatalf("rank error lost: %v", err)
	}
}

func TestRankPanicBecomesError(t *testing.T) {
	cl := NewCluster(2, detOptions(Ideal()))
	err := cl.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic not converted to error: %v", err)
	}
}

func TestClusterSingleUse(t *testing.T) {
	cl := NewCluster(1, detOptions(Ideal()))
	if err := cl.Run(func(c *Comm) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(func(c *Comm) error { return nil }); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestStatsAccounting(t *testing.T) {
	cl := NewCluster(2, detOptions(FastEthernet()))
	err := cl.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, make([]byte, 100))
			c.Send(1, 1, make([]byte, 200))
		} else {
			c.Recv(0, 1)
			c.Recv(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := cl.Stats()
	if st[0].MsgsSent != 2 || st[0].BytesSent != 300 {
		t.Fatalf("sender stats = %+v", st[0])
	}
	if st[1].MsgsRecv != 2 || st[1].BytesRecv != 300 {
		t.Fatalf("receiver stats = %+v", st[1])
	}
	if st[1].Clock <= 0 || st[1].Comm <= 0 {
		t.Fatalf("receiver clock/comm not accounted: %+v", st[1])
	}
}

func TestMeasuredComputeCharges(t *testing.T) {
	cl := NewCluster(2, Options{Net: Ideal(), MeasureCompute: true})
	err := cl.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			// Busy-work for a measurable interval.
			deadline := time.Now().Add(20 * time.Millisecond)
			x := 0
			for time.Now().Before(deadline) {
				x++
			}
			_ = x
			c.Send(1, 1, nil)
		} else {
			c.Recv(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := cl.Stats()
	if st[0].Compute < 15*time.Millisecond {
		t.Fatalf("measured compute %v, want >= 15ms", st[0].Compute)
	}
	// The receiver waited for the sender in virtual time (the sender keeps
	// accruing compute after the Send, so compare against the busy-work).
	if st[1].Clock < 15*time.Millisecond {
		t.Fatalf("receiver clock %v did not wait for the sender", st[1].Clock)
	}
}

func TestManyMessagesStress(t *testing.T) {
	// All-to-one funnel with out-of-order tags; checks totals and absence
	// of deadlock under heavy traffic.
	const n, per = 6, 200
	var total atomic.Int64
	cl := NewCluster(n, detOptions(FastEthernet()))
	err := cl.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < (n-1)*per; i++ {
				data, _ := c.Recv(AnySource, AnyTag)
				total.Add(int64(data[0]))
			}
			return nil
		}
		for i := 0; i < per; i++ {
			c.Send(0, i%3, []byte{1})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := total.Load(); got != (n-1)*per {
		t.Fatalf("received sum %d, want %d", got, (n-1)*per)
	}
}

func TestPingPongClockInterleaving(t *testing.T) {
	// Two ranks alternate messages; clocks must advance monotonically and
	// end up equal to the analytic value.
	net := NetModel{Latency: time.Millisecond}
	cl := NewCluster(2, detOptions(net))
	const rounds = 10
	err := cl.Run(func(c *Comm) error {
		peer := 1 - c.Rank()
		for i := 0; i < rounds; i++ {
			if c.Rank() == 0 {
				c.Send(peer, 1, nil)
				c.Recv(peer, 2)
			} else {
				c.Recv(peer, 1)
				c.Send(peer, 2, nil)
			}
		}
		// 2*rounds messages each adding 1ms latency along the chain.
		want := time.Duration(2*rounds) * time.Millisecond
		if c.Rank() == 0 && c.Elapsed() != want {
			return fmt.Errorf("rank0 clock %v, want %v", c.Elapsed(), want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMakeSpanIsMaxClock(t *testing.T) {
	cl := NewCluster(3, detOptions(Ideal()))
	err := cl.Run(func(c *Comm) error {
		c.Charge(time.Duration(c.Rank()) * time.Second)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := cl.MakeSpan(); got != 2*time.Second {
		t.Fatalf("MakeSpan = %v, want 2s", got)
	}
}

func TestSendToSelfEnqueuesLocally(t *testing.T) {
	cl := NewCluster(2, detOptions(FastEthernet()))
	var got []byte
	var st Status
	err := cl.Run(func(c *Comm) error {
		if c.Rank() != 1 {
			return nil
		}
		c.Send(1, 9, []byte("loop"))
		got, st = c.Recv(1, 9)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "loop" {
		t.Fatalf("self-send payload = %q", got)
	}
	if st.Source != 1 || st.Tag != 9 {
		t.Fatalf("self-send status = %+v", st)
	}
}

func TestSendToSelfMatchesWildcards(t *testing.T) {
	cl := NewCluster(1, detOptions(Ideal()))
	err := cl.Run(func(c *Comm) error {
		c.Send(0, 3, []byte("a"))
		data, st := c.Recv(AnySource, AnyTag)
		if string(data) != "a" || st.Source != 0 || st.Tag != 3 {
			return fmt.Errorf("wildcard self-recv got %q %+v", data, st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
