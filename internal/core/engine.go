package core

import (
	"context"
	"math"
	"slices"
	"time"

	"simevo/internal/congest"
	"simevo/internal/cost"
	"simevo/internal/fuzzy"
	"simevo/internal/layout"
	"simevo/internal/netlist"
	"simevo/internal/rng"
	"simevo/internal/telemetry"
	"simevo/internal/wire"
)

// maxObjectives bounds the per-cell goodness accumulator arrays so the
// hot loop can keep them on the stack.
const maxObjectives = 8

// gainSrc is one objective's contribution to per-cell goodness and
// allocation trial weighting: either a per-net weight table (wirelength,
// power) or a direct per-cell scorer (delay).
type gainSrc struct {
	wIdx   int // index into Engine.gainW when weighted
	scorer cost.CellScored
}

// Engine is one SimE search: a placement plus the operator state. Engines
// are not safe for concurrent use; the parallel strategies give each rank
// its own engine (sharing the immutable Problem).
type Engine struct {
	prob  *Problem
	place *layout.Placement
	rnd   *rng.R

	ev      *wire.Evaluator
	lengths []float64

	// Objective pipeline: every active cost term behind the unified
	// cost.Objective interface, evaluated from the full length array
	// (reference / rebuild) or folded forward from the dirty-net batch.
	pipe      *cost.Pipeline
	gains     []gainSrc     // per active objective, in aggregation order
	gainW     [][]float64   // weight tables of the weighted objectives
	hasScorer bool          // a CellScored objective (delay/congestion) is active
	congGrid  *congest.Grid // congestion bin grid (nil unless Congest is active)
	gainTerms []float64   // per cell × weighted objective: cached goodness terms
	dirtyNets []netlist.NetID

	// Incremental net-cost engine (nil in DisableIncremental mode). The
	// mirror is kept in lockstep with the placement through the layout
	// coordinate journal; incStale forces a full rebuild after the
	// placement object is replaced (adopt / broadcast decode).
	inc        *wire.Incremental
	incStale   bool
	evalsSince int // evaluations since the last full-recompute checksum

	goodness   []float64 // per cell id
	goodClean  []bool    // per cell id: goodness[id] is valid for the current solution
	domain     []netlist.CellID
	allocOrder AllocOrder
	mu         float64
	costs      fuzzy.Costs

	best      *layout.Placement
	bestMu    float64
	bestCosts fuzzy.Costs
	bestIter  int

	iter      int
	noImprove int
	profile   Profile
	muTrace   []float64
	muHead    int  // ring position when the trace cap is reached
	muWrapped bool // the ring has overwritten at least one entry

	// Shared worker pool (pool.go) for the parallel phases, plus the
	// slot-keyed per-worker state both phases draw on. runCtx is the
	// context of the current RunContext call (Background otherwise); pool
	// workers retire when it is cancelled, so an engine abandoned mid-run
	// leaks no goroutines past the cancellation.
	pool       *Pool
	runCtx     context.Context
	slotViews  []*wire.View // per slot: read-only scorer over e.inc
	slotGoods  [][]float64  // per slot: goodness aggregation scratch
	scanRes    []scanResult // per slot: alloc-scan reduction inputs
	scanBound0 float64      // per-cell seed bound, written before a scan batch
	evalCells  []netlist.CellID
	evalDst    []float64
	allocKern  func(slot, lo, hi int) // bound once: scanChunk
	evalKern   func(slot, lo, hi int) // bound once: evalChunk
	flushKern  func(slot, lo, hi int) // bound once: flushChunk

	// Telemetry: tel is the per-run tally copied into Result.Telemetry;
	// scanStats / slotScan / slotEval are plain per-goroutine accumulators
	// (one per pool slot for the parallel kernels) folded into tel and the
	// process-wide registry once per phase, keeping atomics out of the
	// inner loops. Purely observational — never consulted by the search.
	tel       telemetry.EngineSnapshot
	scanStats wire.ScanStats   // serial-scan accumulator
	slotScan  []wire.ScanStats // per pool slot: parallel-scan accumulators
	slotEval  []evalTally      // per pool slot: goodness-cache tallies

	// scratch buffers
	selected []netlist.CellID
	netsBuf  []netlist.NetID
	trialW   []float64     // per-net trial weights, parallel to netsBuf
	trialKey []float64     // per-net scan-ordering keys, parallel to netsBuf
	trials   wire.TrialSet // compiled per-cell trial scorer (incremental mode)
	goodsBuf []float64     // per-objective goodness scratch (cellGoodness)
	goodsOut []float64     // per-domain goodness scratch (Step)
	vacRef   []layout.SlotRef
	// speculative-exchange scratch (SnapshotSearch / AdoptPlacementPatched)
	patchSlots  []layout.SlotRef
	patchDeltas []layout.SlotDelta
	vacs     []wire.Vacancy
	vacUsed  []bool
	buckets  wire.VacancyBuckets // row-sharded x-sorted occupancy of vacs
	rowW     []int
	rowOK    []bool // per row: adding the current cell keeps the width bound
}

func (e *Engine) init() {
	ckt := e.prob.Ckt
	cfg := &e.prob.Cfg
	e.ev = wire.NewEvaluator(ckt, cfg.WireEstimator)
	if !cfg.DisableIncremental {
		e.inc = wire.NewIncremental(ckt, cfg.WireEstimator)
		e.incStale = true
	}
	// Wire and power are always evaluated (their raw costs are reported
	// even when inactive); delay only when the objective set asks for it.
	// Goodness and allocation weighting draw only on the active set.
	var extras []cost.Objective
	if cfg.Objectives.Has(fuzzy.Congest) {
		e.congGrid = congest.New(ckt, congestSpec(ckt, cfg), nil)
		extras = append(extras, e.congGrid)
	}
	e.pipe = cost.NewPipeline(cfg.Objectives|fuzzy.WirePower, ckt, e.prob.Acts, e.prob.Lv, cfg.TimingModel, extras...)
	e.pipe.EnableTiming() // surfaced through CostPhases / simevo-bench
	for _, o := range e.pipe.Objectives() {
		if !cfg.Objectives.Has(o.Bit()) {
			continue
		}
		switch x := o.(type) {
		case cost.LengthWeighted:
			e.gains = append(e.gains, gainSrc{wIdx: len(e.gainW)})
			e.gainW = append(e.gainW, x.Weights())
		case cost.CellScored:
			e.gains = append(e.gains, gainSrc{scorer: x})
			e.hasScorer = true
		default:
			panic("core: objective " + o.Name() + " provides no goodness hook")
		}
	}
	if len(e.gains) > maxObjectives {
		panic("core: too many active objectives")
	}
	if e.hasScorer {
		e.gainTerms = make([]float64, len(ckt.Cells)*len(e.gainW))
	}
	e.goodness = make([]float64, len(ckt.Cells))
	e.goodClean = make([]bool, len(ckt.Cells))
	e.runCtx = context.Background()
	e.allocKern = e.scanChunk
	e.evalKern = e.evalChunk
	e.flushKern = e.flushChunk
	e.domain = append([]netlist.CellID(nil), ckt.Movable()...)
	e.allocOrder = cfg.AllocOrder
	e.bestMu = -1
}

// SetAllocOrder overrides the allocation processing order for this engine
// (Type III search diversification; the shared Problem stays untouched).
func (e *Engine) SetAllocOrder(o AllocOrder) { e.allocOrder = o }

// Problem returns the shared problem description.
func (e *Engine) Problem() *Problem { return e.prob }

// Placement returns the engine's current placement (live object).
func (e *Engine) Placement() *layout.Placement { return e.place }

// Mu returns μ(s) of the solution at the last evaluation.
func (e *Engine) Mu() float64 { return e.mu }

// Costs returns the raw objective costs at the last evaluation.
func (e *Engine) Costs() fuzzy.Costs { return e.costs }

// Iter returns the number of completed iterations.
func (e *Engine) Iter() int { return e.iter }

// BestMu returns the best μ(s) observed so far (-1 before any evaluation).
func (e *Engine) BestMu() float64 { return e.bestMu }

// BestPlacement returns a snapshot of the best solution found (nil before
// any evaluation). The returned placement is owned by the engine; Clone it
// before mutation.
func (e *Engine) BestPlacement() *layout.Placement { return e.best }

// Goodness returns the last evaluated goodness of a cell.
func (e *Engine) Goodness(id netlist.CellID) float64 { return e.goodness[id] }

// MuTrace returns μ(s) after every evaluation so far, oldest first. With
// Config.MuTraceCap set, only the most recent MuTraceCap values are kept;
// with Config.DisableMuTrace set, the trace is empty.
func (e *Engine) MuTrace() []float64 {
	if !e.muWrapped {
		return e.muTrace
	}
	out := make([]float64, 0, len(e.muTrace))
	out = append(out, e.muTrace[e.muHead:]...)
	out = append(out, e.muTrace[:e.muHead]...)
	return out
}

// recordMu appends to the μ trace, honoring the recording switch and the
// ring-buffer cap.
func (e *Engine) recordMu(mu float64) {
	cfg := &e.prob.Cfg
	if cfg.DisableMuTrace {
		return
	}
	if cfg.MuTraceCap > 0 && len(e.muTrace) >= cfg.MuTraceCap {
		e.muTrace[e.muHead] = mu
		e.muHead++
		if e.muHead == cfg.MuTraceCap {
			e.muHead = 0
		}
		e.muWrapped = true
		return
	}
	e.muTrace = append(e.muTrace, mu)
}

// SetDomain restricts evaluation, selection and allocation to the given
// cells (Type II domain decomposition). Pass nil to restore the full
// movable set. The engine copies and sorts the list.
func (e *Engine) SetDomain(cells []netlist.CellID) {
	if cells == nil {
		e.domain = append(e.domain[:0], e.prob.Ckt.Movable()...)
		return
	}
	e.domain = append(e.domain[:0], cells...)
	slices.Sort(e.domain)
}

// DomainFromRows restricts the domain to all cells currently placed in the
// given rows.
func (e *Engine) DomainFromRows(rows []int) {
	var cells []netlist.CellID
	for _, r := range rows {
		cells = append(cells, e.place.Row(r)...)
	}
	e.SetDomain(cells)
}

// AdoptPlacement replaces the current placement (Type III solution
// exchange). The adopted placement is cloned.
func (e *Engine) AdoptPlacement(p *layout.Placement) {
	e.place = p.Clone()
	e.place.Recompute()
	e.incStale = true
}

// SetPlacement replaces the current placement, taking ownership (no clone).
// Used by the parallel slaves after decoding a broadcast placement.
func (e *Engine) SetPlacement(p *layout.Placement) {
	e.place = p
	if e.place.Dirty() {
		e.place.Recompute()
	}
	e.incStale = true
}

// PatchPlacement applies broadcast slot deltas to the current placement and
// refreshes coordinates. Unlike SetPlacement it keeps the engine's
// incremental net-cost state warm: the coordinate journal records exactly
// the cells the patch (and row repacking) moved, so the next evaluation
// re-estimates only the dirty nets instead of rebuilding from scratch —
// the point of the Type II delta broadcasts. On error the incremental
// state is marked stale; the placement itself may be left inconsistent.
func (e *Engine) PatchPlacement(deltas []layout.SlotDelta) error {
	if err := e.place.ApplySlotDeltas(deltas); err != nil {
		e.incStale = true
		return err
	}
	e.place.Recompute()
	return nil
}

// EvaluateCosts refreshes net lengths, runs the objective pipeline
// (wirelength, power, and — when active — the incremental STA behind
// delay) and μ(s), and updates the best-solution tracking. It does not
// touch per-cell goodness.
func (e *Engine) EvaluateCosts() {
	if e.place.Dirty() {
		e.place.Recompute()
	}
	cfg := &e.prob.Cfg
	if e.congGrid != nil {
		// Rebind the congestion geometry source every evaluation: the
		// placement object can be replaced between calls (adopt /
		// broadcast decode), and in incremental mode the cached pin
		// multisets are the O(1) bounding-box source. Both sources read
		// the same committed coordinates, so the grids bin identically.
		if e.inc != nil {
			e.congGrid.SetSource(e.inc)
		} else {
			e.congGrid.SetSource(congest.PlacementSource{P: e.place})
		}
	}
	if e.inc == nil {
		// Reference mode re-derives everything from scratch, including
		// every cell's goodness and every objective's full recompute —
		// the exact semantics the cached modes are tested against.
		e.lengths = e.ev.Lengths(e.place, e.lengths)
		e.invalidateAllGoodness()
		e.costs = e.pipe.Full(e.lengths)
		e.tel.Evals++
		e.tel.FullRebuilds++
		telemetry.EngineEvalsReference.Inc()
	} else if rebuilt := e.syncIncremental(); rebuilt {
		// A full rebuild loses the dirty-net record, so every cached
		// goodness value is suspect and every objective recomputes from
		// the full length array — the periodic drift guard of the
		// pipeline (Config.FullEvalEvery) rides the same path.
		e.invalidateAllGoodness()
		e.lengths = e.inc.Lengths(e.lengths)
		e.costs = e.pipe.Full(e.lengths)
		e.tel.Evals++
		e.tel.FullRebuilds++
		telemetry.EngineEvalsRebuild.Inc()
	} else {
		// Goodness inputs for the weighted objectives are per-cell-local:
		// the lengths and pin geometry of the cell's nets (plus static
		// tables). Only cells on a net touched since the last evaluation
		// can change, so the cached terms of all other cells are reused —
		// bitwise what a recomputation would produce. (The delay score is
		// global — MaxDelay rescales every criticality — so it is
		// re-read from the refreshed STA on every aggregation instead of
		// living in the cache; see goodnessWith.) The dirty-net list is
		// snapshotted before Lengths flushes it, then folded into every
		// objective in O(dirty).
		e.dirtyNets = e.inc.DirtySnapshot(e.dirtyNets)
		e.invalidateGoodnessOnNets(e.dirtyNets)
		// Large dirty batches re-estimate across the worker pool first
		// (per-net estimates are independent and order-free, so the
		// committed lengths are bitwise the serial flush's); Lengths then
		// finds nothing left to flush and just copies.
		if w := e.evalWorkers(); w > 1 && e.inc.DirtyLen() >= flushMinDirtyNets {
			e.ensurePool().Batch(e.runCtx, w, e.inc.DirtyLen(), e.flushKern)
			e.inc.FinishFlush()
		}
		e.lengths = e.inc.Lengths(e.lengths)
		e.costs = e.pipe.ApplyDirty(e.dirtyNets, e.lengths)
		e.tel.Evals++
		e.tel.IncrementalEvals++
		e.tel.DirtyNets += uint64(len(e.dirtyNets))
		telemetry.EngineEvalsIncremental.Inc()
		telemetry.EngineDirtyNets.Observe(int64(len(e.dirtyNets)))
	}
	ratios := fuzzy.Ratio(e.costs, e.prob.Lower)
	e.mu = fuzzy.Eval(cfg.Objectives, ratios, cfg.Goals, e.prob.OWA, e.place.WidthViolation(cfg.Alpha))
	e.recordMu(e.mu)

	if e.mu > e.bestMu {
		e.bestMu = e.mu
		e.bestCosts = e.costs
		e.bestIter = e.iter
		e.best = e.place.Clone()
		e.noImprove = 0
	} else {
		e.noImprove++
	}
}

// syncIncremental brings the incremental net-cost state into lockstep with
// the placement: normally a journal drain re-estimating only the nets
// touched since the last evaluation; a full rebuild after the placement
// object was replaced, and periodically as the full-recompute checksum.
// It reports whether a full rebuild ran (the goodness cache must then be
// invalidated wholesale: the dirty-net record is gone).
func (e *Engine) syncIncremental() bool {
	if e.incStale || !e.inc.Built() || e.evalsSince >= e.prob.Cfg.FullEvalEvery {
		e.place.JournalCoords(true)
		e.place.ResetJournal()
		e.inc.Rebuild(e.place)
		e.incStale = false
		e.evalsSince = 0
		return true
	}
	e.inc.Sync(e.place)
	e.evalsSince++
	return false
}

// invalidateAllGoodness drops every cached goodness value.
func (e *Engine) invalidateAllGoodness() {
	for i := range e.goodClean {
		e.goodClean[i] = false
	}
}

// invalidateGoodnessOnNets drops the cached goodness of every cell with a
// pin on one of the given nets — exactly the cells whose goodness inputs
// (net length, excluding-length geometry) may have changed.
func (e *Engine) invalidateGoodnessOnNets(nets []netlist.NetID) {
	ckt := e.prob.Ckt
	for _, n := range nets {
		net := &ckt.Nets[n]
		if net.Driver != netlist.NoCell {
			e.goodClean[net.Driver] = false
		}
		for _, s := range net.Sinks {
			e.goodClean[s] = false
		}
	}
}

// CostPhases returns the accumulated per-objective pipeline time —
// simevo-bench records it as the per-objective phase breakdown.
func (e *Engine) CostPhases() map[string]time.Duration { return e.pipe.Phases() }

// evalMinCells is the cell count below which goodness evaluation is not
// worth fanning across the pool. Variable so tests can force the parallel
// path on small circuits.
var evalMinCells = 128

// ComputeGoodness evaluates the goodness of the given cells (which must be
// distinct) into the engine's goodness table. EvaluateCosts must have run
// for the current placement. Returning the values in cell order supports
// the Type I master/slave protocol.
//
// Cells whose goodness inputs are untouched since their last evaluation
// (no incident net dirty — see EvaluateCosts) are served from the cached
// table; recomputing them would reproduce the identical bits. With
// Config.EvalWorkers > 1 (and the incremental engine active) the remaining
// cells are partitioned across the shared worker pool, each chunk scoring
// through its own read-only view; values land in per-cell slots, so the
// result — and the selection trajectory consuming it in deterministic cell
// order — is bitwise identical to the serial reference.
func (e *Engine) ComputeGoodness(cells []netlist.CellID, dst []float64) []float64 {
	if cap(dst) < len(cells) {
		dst = make([]float64, len(cells))
	}
	dst = dst[:len(cells)]
	if w := e.evalWorkers(); w > 1 && e.inc != nil && e.inc.Built() && len(cells) >= evalMinCells {
		e.evalCells, e.evalDst = cells, dst
		e.ensurePool().Batch(e.runCtx, w, len(cells), e.evalKern)
		e.evalCells, e.evalDst = nil, nil
		e.flushEvalTallies()
		return dst
	}
	var hits, misses uint64
	for i, id := range cells {
		// With a per-cell scorer active (delay), a clean cell's cached
		// weighted terms are reused but the aggregate is re-derived: the
		// scorer term is global (MaxDelay rescales every criticality), so
		// the final goodness moves even when the cell's nets did not.
		if !e.hasScorer && e.goodClean[id] {
			dst[i] = e.goodness[id]
			hits++
			continue
		}
		g := e.cellGoodness(id)
		e.goodness[id] = g
		e.goodClean[id] = true
		dst[i] = g
		misses++
	}
	e.tel.GoodnessHits += hits
	e.tel.GoodnessMisses += misses
	telemetry.GoodnessCacheHits.Add(hits)
	telemetry.GoodnessCacheMisses.Add(misses)
	return dst
}

// evalChunk is the goodness kernel for one chunk of the cell list.
func (e *Engine) evalChunk(slot, lo, hi int) {
	view := e.slotView(slot)
	goods := e.slotGoods[slot]
	tally := &e.slotEval[slot]
	for i := lo; i < hi; i++ {
		id := e.evalCells[i]
		if !e.hasScorer && e.goodClean[id] {
			e.evalDst[i] = e.goodness[id]
			tally.hits++
			continue
		}
		var g float64
		g, goods = e.goodnessWith(id, view, goods)
		e.goodness[id] = g
		e.goodClean[id] = true
		e.evalDst[i] = g
		tally.misses++
	}
	e.slotGoods[slot] = goods
}

// SetGoodness installs externally computed goodness values (Type I master
// after gathering slave results). The values are as valid for the current
// solution as locally computed ones, so they enter the cache — except in
// delay mode, where goodClean additionally promises valid per-cell
// gainTerms (which external values do not carry); those cells stay
// unclean and recompute in full if a later evaluation ever visits them.
func (e *Engine) SetGoodness(cells []netlist.CellID, vals []float64) {
	for i, id := range cells {
		e.goodness[id] = vals[i]
		if !e.hasScorer {
			e.goodClean[id] = true
		}
	}
}

// cellGoodness computes g_i = O_i / C_i aggregated over active objectives.
//
// Each weighted objective (wirelength: unit weights; power: switching
// activities) contributes ratio01(Σ w·optimal, Σ w·current) over the
// cell's nets, where "optimal" is the net over the remaining pins plus the
// minimal attachment span (half the cell's width plus half the nearest
// remaining cell's width, which a 2-pin net needs to be non-zero). A
// CellScored objective (delay) contributes its per-cell score directly:
// 1 − timing criticality (slack-based).
func (e *Engine) cellGoodness(id netlist.CellID) float64 {
	// With the incremental engine active (and synced by the preceding
	// EvaluateCosts), the excluding lengths come from the cached sorted
	// multisets in O(log p) per net; the reference path re-collects the
	// pins. Both evaluate the canonical formulas of wire/excl.go, so the
	// goodness values — and with them selection — are bitwise identical.
	var view *wire.View
	if e.inc != nil {
		view = e.inc.BaseView()
	}
	g, goods := e.goodnessWith(id, view, e.goodsBuf)
	e.goodsBuf = goods
	return g
}

// goodnessWith computes one cell's goodness through the given read-only
// view (nil selects the from-scratch reference path, which may only run
// serially: it shares the engine's evaluator scratch). goods is the
// caller's aggregation scratch, returned with its grown capacity.
//
// When a per-cell scorer is active (delay), the weighted terms of a clean
// cell are served from the gainTerms cache — their inputs (net lengths,
// pin geometry) are untouched, so recomputing would reproduce identical
// bits — and only the global scorer term is re-read before aggregation.
func (e *Engine) goodnessWith(id netlist.CellID, view *wire.View, goods []float64) (float64, []float64) {
	nw := len(e.gainW)
	var accC, accO [maxObjectives]float64
	useCache := e.hasScorer && e.goodClean[id]
	if nw > 0 && !useCache {
		if view != nil {
			// The flat incidence already pairs each incident net with the
			// cell's pin multiplicity, in CellNets order — same summation
			// order as the reference path, without re-deriving either.
			for _, ref := range e.inc.CellPins(id) {
				n := ref.Net
				l := e.lengths[n]
				excl := view.NetLengthExcludingK(n, id, int(ref.K))
				opt := excl + e.minAttach(n, id)
				if opt > l {
					opt = l // clamp: O_i may not exceed the achieved cost
				}
				for j := 0; j < nw; j++ {
					w := e.gainW[j][n]
					accC[j] += w * l
					accO[j] += w * opt
				}
			}
		} else {
			e.netsBuf = e.prob.Ckt.CellNets(id, e.netsBuf[:0])
			for _, n := range e.netsBuf {
				l := e.lengths[n]
				excl := e.ev.NetLengthExcluding(n, id, e.place)
				opt := excl + e.minAttach(n, id)
				if opt > l {
					opt = l // clamp: O_i may not exceed the achieved cost
				}
				for j := 0; j < nw; j++ {
					w := e.gainW[j][n]
					accC[j] += w * l
					accO[j] += w * opt
				}
			}
		}
		if e.hasScorer {
			base := int(id) * nw
			for j := 0; j < nw; j++ {
				e.gainTerms[base+j] = ratio01(accO[j], accC[j])
			}
		}
	}

	goods = goods[:0]
	if e.hasScorer {
		base := int(id) * nw
		for _, g := range e.gains {
			if g.scorer != nil {
				goods = append(goods, g.scorer.CellScore(id))
			} else {
				goods = append(goods, e.gainTerms[base+g.wIdx])
			}
		}
	} else {
		for _, g := range e.gains {
			goods = append(goods, ratio01(accO[g.wIdx], accC[g.wIdx]))
		}
	}
	return e.prob.OWA.Aggregate(goods...), goods
}

// minAttach returns the minimal center-to-center span cell id needs to
// reach the closest other cell of the net: half its own width plus half
// the narrowest other pin's width (pads count as width 0 plus clearance,
// already in the net lower bound; here they contribute 0). Served from the
// problem's static attach tables in O(1): widths never change, so the only
// per-call question is whether the excluded cell is the one holding the
// net-wide minimum.
func (e *Engine) minAttach(n netlist.NetID, id netlist.CellID) float64 {
	p := e.prob
	w := p.attachW1[n]
	if p.attachC1[n] == id {
		w = p.attachW2[n]
	}
	if w < 0 {
		return 0
	}
	return float64(int32(e.prob.Ckt.Cells[id].Width)+w) / 2
}

func ratio01(o, c float64) float64 {
	if c <= 0 {
		return 1
	}
	r := o / c
	if r > 1 {
		return 1
	}
	if r < 0 {
		return 0
	}
	return r
}

// selectCells runs the Selection operator of Figure 1 over the domain:
// cell i joins S when Random > min(g_i + B, 1). The domain is iterated in
// sorted cell order so that the random stream is reproducible.
func (e *Engine) selectCells() []netlist.CellID {
	e.selected = e.selected[:0]
	bias := e.prob.Cfg.Bias
	for _, id := range e.domain {
		threshold := e.goodness[id] + bias
		if threshold > 1 {
			threshold = 1
		}
		if e.rnd.Float64() > threshold {
			e.selected = append(e.selected, id)
		}
	}
	// Sort the elements of S (Figure 1). The classic order is worst
	// goodness first; alternative orders diversify Type III threads.
	// slices.SortFunc avoids the reflection-based sort.Slice in this
	// per-iteration hot path; every comparator is a total order (ties break
	// on the cell id), so the unstable sort is still deterministic.
	cmp := func(a, b netlist.CellID) int {
		if e.goodness[a] != e.goodness[b] {
			if e.goodness[a] < e.goodness[b] {
				return -1
			}
			return 1
		}
		return int(a - b)
	}
	switch e.allocOrder {
	case BestFirst:
		cmp = func(a, b netlist.CellID) int {
			if e.goodness[a] != e.goodness[b] {
				if e.goodness[a] > e.goodness[b] {
					return -1
				}
				return 1
			}
			return int(a - b)
		}
	case WidestFirst:
		ckt := e.prob.Ckt
		cmp = func(a, b netlist.CellID) int {
			if ckt.Cells[a].Width != ckt.Cells[b].Width {
				return ckt.Cells[b].Width - ckt.Cells[a].Width
			}
			return int(a - b)
		}
	}
	slices.SortFunc(e.selected, cmp)
	return e.selected
}

// allocate runs the sorted-individual-best-fit Allocation: the selected
// cells are removed (their slots become the vacancy pool) and each cell, in
// sorted order, takes the vacancy minimizing its trial cost. The trial cost
// is the sum of the cell's net lengths with the cell at the vacancy,
// weighted per net by the active objectives (1 for wirelength, the
// switching activity for power, the timing criticality for delay), times a
// penalty when the move would violate the width constraint.
//
// With the incremental engine active, the cell's pins are lifted out of the
// cached multisets (RemoveCell) so every vacancy is scored in O(log p) per
// net through the row-sharded vacancy buckets (wire.ScanBestRows): the
// vacancy pool is bucketed per row and x-sorted once per pass, occupancy is
// journaled with O(1) commits, and each cell's scan walks outward from its
// median anchor, cutting dominated regions wholesale. Large vacancy pools
// additionally fan the per-cell scan across the bounded worker pool
// (allocscan.go) — vacancy trials for one cell are independent.
func (e *Engine) allocate(sel []netlist.CellID) {
	if len(sel) == 0 {
		return
	}
	ckt := e.prob.Ckt
	cfg := &e.prob.Cfg

	// Capture vacancies and prospective row widths.
	tCapture := time.Now()
	n := len(sel)
	numRows := e.place.NumRows()
	e.vacRef = resizeRefs(e.vacRef, n)
	e.vacs = resizeVacs(e.vacs, n)
	e.vacUsed = resizeBool(e.vacUsed, n)
	if cap(e.rowW) < numRows {
		e.rowW = make([]int, numRows)
	}
	e.rowW = e.rowW[:numRows]
	for r := range e.rowW {
		e.rowW[r] = e.place.RowWidth(r)
	}
	for i, id := range sel {
		x, y := e.place.Coord(id)
		ref := e.place.RemoveToHole(id)
		e.vacRef[i] = ref
		e.vacs[i] = wire.Vacancy{X: x, Y: y, Row: ref.Row}
		e.vacUsed[i] = false
		e.rowW[ref.Row] -= ckt.Cells[id].Width
	}

	avg := e.place.AvgRowWidth()
	limit := (1 + cfg.Alpha) * avg

	useInc := e.inc != nil && e.inc.Built()
	if useInc {
		e.buckets.Build(e.vacs, numRows)
	}
	scanW := 0
	if useInc && n >= allocScanMinVacancies {
		if w := e.scanWorkers(); w > 1 {
			scanW = w
		}
	}

	if cap(e.rowOK) < numRows {
		e.rowOK = make([]bool, numRows)
	}
	e.rowOK = e.rowOK[:numRows]

	// Sub-phase stamps: tMark carries the previous cell's end stamp into
	// the next cell's prep window, so the loop costs three clock reads per
	// cell instead of four.
	var prepD, scanD, commitD time.Duration
	tMark := time.Now()
	prepD = tMark.Sub(tCapture)
	for own, id := range sel {
		w := ckt.Cells[id].Width
		e.prepTrial(id, useInc)
		for r := range e.rowOK {
			e.rowOK[r] = float64(e.rowW[r]+w) <= limit
		}
		t1 := time.Now()
		// First pass: best width-feasible vacancy. The width bound is a
		// hard constraint (Section 2), so infeasible vacancies are only
		// considered in the fallback pass, by smallest violation.
		best := -1
		switch {
		case scanW > 1 && e.buckets.Live() >= allocScanMinVacancies:
			// The pool shrinks as cells are placed; late cells with few
			// vacancies left drop back to the serial bounded scan, which
			// picks identical winners without the per-cell synchronization.
			// The y memo fills lazily even here: entries index by
			// (item, row) and workers partition rows, so fills are disjoint.
			best, _ = e.scanCell(scanW, numRows, e.seedBound(own))
		case useInc:
			// Bounded scoring: a vacancy bails out once its partial cost
			// reaches the best so far — the winner is provably unchanged.
			// Seeding the bound with the cell's own vacated slot (index
			// `own`: vacancies were captured in selection order), when
			// still free and feasible, makes most other vacancies bail on
			// their first net; nextafter keeps equal-scoring earlier
			// vacancies admissible, so the serial first-minimum wins.
			best, _ = e.trials.ScanBestRows(e.inc.BaseView(), e.vacs, &e.buckets,
				e.rowOK, 0, numRows, e.seedBound(own), &e.scanStats)
		default:
			bestScore := 0.0
			for v := 0; v < n; v++ {
				if e.vacUsed[v] || !e.rowOK[e.vacs[v].Row] {
					continue
				}
				score := e.trialCost(id, e.vacs[v].X, e.vacs[v].Y)
				if best < 0 || score < bestScore {
					best, bestScore = v, score
				}
			}
		}
		if best < 0 {
			bestViol := 0.0
			for v := 0; v < n; v++ {
				if e.vacUsed[v] {
					continue
				}
				viol := float64(e.rowW[e.vacs[v].Row]+w) - limit
				if best < 0 || viol < bestViol {
					best, bestViol = v, viol
				}
			}
		}
		t2 := time.Now()
		e.place.FillHole(e.vacRef[best], id)
		e.place.SetCoordHint(id, e.vacs[best].X, e.vacs[best].Y)
		if useInc {
			e.inc.PlaceCell(id, e.vacs[best].X, e.vacs[best].Y)
			e.buckets.Commit(int32(best))
		}
		e.vacUsed[best] = true
		e.rowW[e.vacs[best].Row] += w
		t3 := time.Now()
		prepD += t1.Sub(tMark)
		scanD += t2.Sub(t1)
		commitD += t3.Sub(t2)
		tMark = t3
	}
	e.flushScanStats()
	e.place.Recompute()
	commitD += time.Since(tMark)
	e.tel.AllocPrepNs += uint64(prepD)
	e.tel.AllocScanNs += uint64(scanD)
	e.tel.AllocCommitNs += uint64(commitD)
	telemetry.AllocSubPrepNs.Observe(int64(prepD))
	telemetry.AllocSubScanNs.Observe(int64(scanD))
	telemetry.AllocSubCommitNs.Observe(int64(commitD))
}

// flushScanStats folds the per-goroutine ScanBest accumulators (the
// serial one plus every pool slot's) into the run snapshot and the
// process-wide counters — a handful of atomic adds per allocation pass
// instead of per vacancy.
func (e *Engine) flushScanStats() {
	agg := e.scanStats
	e.scanStats = wire.ScanStats{}
	for i := range e.slotScan {
		agg.Merge(&e.slotScan[i])
		e.slotScan[i] = wire.ScanStats{}
	}
	if agg.Vacancies == 0 {
		return
	}
	e.tel.ScanVacancies += agg.Vacancies
	e.tel.ScanPrunedBBox += agg.PrunedBBox
	e.tel.ScanPrunedSuffix += agg.PrunedSuffix
	e.tel.ScanBailedExact += agg.BailedExact
	e.tel.ScanScored += agg.Scored
	e.tel.ScanSkippedBucket += agg.SkippedBucket
	e.tel.ScanRowsVisited += agg.RowsVisited
	telemetry.ScanVacancies.Add(agg.Vacancies)
	telemetry.ScanPrunedBBox.Add(agg.PrunedBBox)
	telemetry.ScanPrunedSuffix.Add(agg.PrunedSuffix)
	telemetry.ScanBailedExact.Add(agg.BailedExact)
	telemetry.ScanScored.Add(agg.Scored)
	telemetry.ScanSkippedBucket.Add(agg.SkippedBucket)
	telemetry.ScanRowsVisited.Add(agg.RowsVisited)
}

// flushEvalTallies folds the pool slots' goodness-cache tallies after a
// parallel ComputeGoodness batch.
func (e *Engine) flushEvalTallies() {
	var hits, misses uint64
	for i := range e.slotEval {
		hits += e.slotEval[i].hits
		misses += e.slotEval[i].misses
		e.slotEval[i] = evalTally{}
	}
	e.tel.GoodnessHits += hits
	e.tel.GoodnessMisses += misses
	telemetry.GoodnessCacheHits.Add(hits)
	telemetry.GoodnessCacheMisses.Add(misses)
}

// prepTrial stages the per-cell trial state: the cell's incident nets with
// their objective weights (hoisted out of the per-vacancy loop — they do
// not depend on the candidate position), and, in incremental mode, lifts
// the cell's pins out of the cached multisets so trials need no exclusion.
// Each active objective contributes its per-net weight: the weight table
// for weighted objectives (1 for wirelength, the switching activity for
// power), NetScore for scorers (the timing criticality for delay).
func (e *Engine) prepTrial(id netlist.CellID, useInc bool) {
	e.netsBuf = e.prob.Ckt.CellNets(id, e.netsBuf[:0])
	e.trialW = e.trialW[:0]
	for _, n := range e.netsBuf {
		w := 0.0
		for _, g := range e.gains {
			if g.scorer != nil {
				w += g.scorer.NetScore(n)
			} else {
				w += e.gainW[g.wIdx][n]
			}
		}
		e.trialW = append(e.trialW, w)
	}
	if useInc {
		e.inc.RemoveCell(id)
	}
	e.orderTrials(id, useInc)
	if useInc {
		// Vacancy candidates sit on row centerlines, so the rows are the
		// y-memo classes; RowY reproduces Recompute's centerline expression
		// bit for bit. The memo fills lazily during serial scans; a
		// parallel scan prefills it first (allocate). PrepareScan derives
		// the per-row suffix bounds and the anchor the bucketed scan
		// prunes with — O(nets·rows), noise against the scan itself.
		e.inc.CompileTrials(&e.trials, e.netsBuf, e.trialW, e.place.NumRows())
		e.trials.PrepareScan(layout.RowY, e.place.NumRows())
	}
}

// orderTrials sorts the cell's nets by descending weighted remaining-pin
// half-perimeter — span times the net's aggregated objective weight, which
// in wpd mode embeds the cached timing criticality — so the bounded
// vacancy scan meets the dominant weighted contributions first and bails
// as early as possible (ties by ascending net id). The unweighted span
// orders wp scans well, but under delay weighting a short critical net
// can dominate the trial cost; weighting the key is what lets the wpd
// scan's suffix bounds bite like the wp scan's. Both evaluation modes
// order by the same (value-equal) keys — the spans are exact min/max
// arithmetic and the weights are computed identically — so the trial-cost
// accumulation, and with it the search trajectory, stays bitwise identical
// between them.
func (e *Engine) orderTrials(id netlist.CellID, useInc bool) {
	n := len(e.netsBuf)
	if n < 2 {
		return
	}
	e.trialKey = resizeF64(e.trialKey, n)
	for i, nid := range e.netsBuf {
		if useInc {
			e.trialKey[i] = e.inc.StoredSpan(nid) * e.trialW[i]
		} else {
			e.trialKey[i] = e.remainingSpan(nid, id) * e.trialW[i]
		}
	}
	for i := 1; i < n; i++ {
		k, nid, w := e.trialKey[i], e.netsBuf[i], e.trialW[i]
		j := i - 1
		for j >= 0 && (e.trialKey[j] < k || (e.trialKey[j] == k && e.netsBuf[j] > nid)) {
			e.trialKey[j+1], e.netsBuf[j+1], e.trialW[j+1] = e.trialKey[j], e.netsBuf[j], e.trialW[j]
			j--
		}
		e.trialKey[j+1], e.netsBuf[j+1], e.trialW[j+1] = k, nid, w
	}
}

// remainingSpan is the reference mode's ordering key: the half-perimeter
// of the net's pins excluding the trialled cell, read from the placement —
// exactly the span the incremental multiset holds after RemoveCell.
func (e *Engine) remainingSpan(n netlist.NetID, exclude netlist.CellID) float64 {
	net := e.prob.Ckt.Net(n)
	first := true
	var minX, maxX, minY, maxY float64
	visit := func(id netlist.CellID) {
		if id == exclude || id == netlist.NoCell {
			return
		}
		x, y := e.place.Coord(id)
		if first {
			minX, maxX, minY, maxY = x, x, y, y
			first = false
			return
		}
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	visit(net.Driver)
	for _, s := range net.Sinks {
		visit(s)
	}
	if first {
		return 0
	}
	return (maxX - minX) + (maxY - minY)
}

// seedBound returns the initial scan bound for the prepared cell: one ulp
// above its own vacated slot's trial score when that slot is still free
// and width-feasible, +Inf otherwise. Scores strictly below the bound are
// scanned normally, so the first global minimum still wins — the seed only
// lets hopeless vacancies bail earlier. The seed slot must be feasible:
// bounding by an infeasible slot could prune every feasible vacancy and
// misroute the cell into the violation fallback.
func (e *Engine) seedBound(own int) float64 {
	if e.vacUsed[own] || !e.rowOK[e.vacs[own].Row] {
		return math.Inf(1)
	}
	s := e.trials.Score(e.inc.BaseView(), e.vacs[own].X, e.vacs[own].Y, int(e.vacs[own].Row))
	return math.Nextafter(s, math.Inf(1))
}

// trialCost scores a candidate location for the cell prepared by prepTrial
// (lower is better) through the from-scratch evaluator — the reference
// mode's scorer. The incremental path scores through e.trials instead;
// both produce bitwise-identical values.
func (e *Engine) trialCost(id netlist.CellID, x, y float64) float64 {
	cost := 0.0
	for i, n := range e.netsBuf {
		cost += e.ev.NetLengthWithCellAt(n, id, x, y, e.place) * e.trialW[i]
	}
	return cost
}

// Step executes one full SimE iteration (Evaluation, Selection, Allocation)
// and returns its statistics.
func (e *Engine) Step() IterStats {
	t0 := time.Now()
	e.EvaluateCosts()
	e.goodsOut = e.ComputeGoodness(e.domain, e.goodsOut)
	d := time.Since(t0)
	e.profile.Eval += d
	e.tel.EvalNs += uint64(d)
	telemetry.EnginePhaseEvalNs.Observe(int64(d))
	return e.SelectAndAllocate()
}

// SelectAndAllocate runs the Selection and Allocation operators on the
// already-evaluated solution. The Type I master calls this directly after
// installing the goodness values gathered from the slaves; Step uses it for
// the serial path, so both follow the identical trajectory.
func (e *Engine) SelectAndAllocate() IterStats {
	t1 := time.Now()
	sel := e.selectCells()
	t2 := time.Now()
	dSel := t2.Sub(t1)
	e.profile.Select += dSel
	e.tel.SelectNs += uint64(dSel)
	telemetry.EnginePhaseSelectNs.Observe(int64(dSel))

	stats := e.currentStats(len(sel))
	e.allocate(sel)
	dAlloc := time.Since(t2)
	e.profile.Alloc += dAlloc
	e.tel.AllocNs += uint64(dAlloc)
	telemetry.EnginePhaseAllocNs.Observe(int64(dAlloc))

	e.iter++
	e.tel.Iterations++
	telemetry.EngineIterations.Inc()
	return stats
}

func (e *Engine) currentStats(selected int) IterStats {
	sum := 0.0
	for _, id := range e.domain {
		sum += e.goodness[id]
	}
	avg := 0.0
	if len(e.domain) > 0 {
		avg = sum / float64(len(e.domain))
	}
	return IterStats{
		Iter:     e.iter,
		Mu:       e.mu,
		Costs:    e.costs,
		Selected: selected,
		AvgGood:  avg,
		WidthOK:  e.place.WidthOK(e.prob.Cfg.Alpha),
	}
}

// Run executes the SimE main loop until MaxIters, the no-improvement stop,
// or the target quality is reached, then evaluates the final placement and
// returns the result.
func (e *Engine) Run() *Result { return e.RunContext(context.Background(), nil) }

// RunContext is Run with cooperative cancellation and per-iteration
// progress reporting. The context is checked between iterations: once it is
// cancelled the loop stops before starting another iteration and the
// best-so-far result is returned (inspect ctx.Err() for the reason).
// progress, when non-nil, is invoked after every completed iteration with
// that iteration's statistics.
func (e *Engine) RunContext(ctx context.Context, progress Progress) *Result {
	cfg := &e.prob.Cfg
	if ctx != nil {
		// Tie the worker pool's lifetime to the run: cancelling the
		// context retires parked workers immediately, so an engine
		// abandoned mid-run leaks no goroutines past the cancellation.
		e.runCtx = ctx
		defer func() { e.runCtx = context.Background() }()
	}
	for e.iter < cfg.MaxIters {
		if ctx.Err() != nil {
			break
		}
		st := e.Step()
		if progress != nil {
			progress(st)
		}
		if cfg.TargetMu > 0 && e.bestMu >= cfg.TargetMu {
			break
		}
		if cfg.StopAfterNoImprove > 0 && e.noImprove >= cfg.StopAfterNoImprove {
			break
		}
	}
	// The last allocation has not been evaluated yet.
	t0 := time.Now()
	e.EvaluateCosts()
	d := time.Since(t0)
	e.profile.Eval += d
	e.tel.EvalNs += uint64(d)
	telemetry.EnginePhaseEvalNs.Observe(int64(d))
	return e.result()
}

func (e *Engine) result() *Result {
	return &Result{
		Best:      e.best,
		BestMu:    e.bestMu,
		BestCosts: e.bestCosts,
		BestIter:  e.bestIter,
		Iters:     e.iter,
		Profile:   e.profile,
		MuTrace:   e.MuTrace(),
		Telemetry: e.Telemetry(),
	}
}

// Telemetry returns the engine's per-run counter snapshot, with the
// pipeline and STA work totals folded in at read time (they accumulate
// inside their own layers).
func (e *Engine) Telemetry() telemetry.EngineSnapshot {
	t := e.tel
	t.CostFull, t.CostDirty, t.CostDirtyFallback = e.pipe.Calls()
	if sta := e.pipe.Delay(); sta != nil {
		t.TimingUpdates, t.TimingRebuilds, t.TimingConeCells = sta.Stats()
	}
	if e.congGrid != nil {
		t.CongestBinUpdates, t.CongestRebuilds = e.congGrid.Stats()
	}
	return t
}

// Result snapshots the current run state without running further.
func (e *Engine) Result() *Result { return e.result() }

// Profile returns the accumulated operator timings.
func (e *Engine) Profile() Profile { return e.profile }

func resizeRefs(s []layout.SlotRef, n int) []layout.SlotRef {
	if cap(s) < n {
		return make([]layout.SlotRef, n)
	}
	return s[:n]
}

func resizeF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeVacs(s []wire.Vacancy, n int) []wire.Vacancy {
	if cap(s) < n {
		return make([]wire.Vacancy, n)
	}
	return s[:n]
}

func resizeI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func resizeBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
