package core

import (
	"testing"

	"simevo/internal/fuzzy"
	"simevo/internal/gen"
)

// TestCongestTrajectoriesAllCircuits is the congestion tentpole's
// equivalence gate: on every bundled benchmark, the incremental engine —
// integer bin grid folded forward net by net — must report bitwise the
// costs, μ, and placements of the DisableIncremental reference (grid
// rebuilt from scratch off the raw placement every evaluation) with the
// full wire+power+delay+congestion objective set active. A short
// FullEvalEvery exercises the mid-run drift-guard rebuild.
func TestCongestTrajectoriesAllCircuits(t *testing.T) {
	for _, name := range gen.Catalog() {
		name := name
		t.Run(name, func(t *testing.T) {
			ckt, err := gen.Benchmark(name)
			if err != nil {
				t.Fatal(err)
			}
			iters := 10
			mk := func(disable bool) *Engine {
				cfg := DefaultConfig(fuzzy.WirePowerDelayCongest)
				cfg.MaxIters = iters
				cfg.Seed = 2006
				cfg.DisableIncremental = disable
				cfg.FullEvalEvery = 4
				p, err := NewProblem(ckt, cfg)
				if err != nil {
					t.Fatal(err)
				}
				return p.NewEngine(0)
			}
			ref := mk(true)
			inc := mk(false)
			for i := 0; i < iters; i++ {
				ref.Step()
				inc.Step()
				if ref.Costs() != inc.Costs() {
					t.Fatalf("iter %d: costs diverged:\n reference   %+v\n incremental %+v",
						i, ref.Costs(), inc.Costs())
				}
				if ref.Mu() != inc.Mu() {
					t.Fatalf("iter %d: μ diverged: %v vs %v", i, ref.Mu(), inc.Mu())
				}
				if ref.Placement().Fingerprint() != inc.Placement().Fingerprint() {
					t.Fatalf("iter %d: placements diverged", i)
				}
			}
			if ref.Costs().Congest != inc.Costs().Congest {
				t.Fatal("congestion costs diverged")
			}
			tel := inc.Telemetry()
			if tel.CongestBinUpdates == 0 || tel.CongestRebuilds == 0 {
				t.Errorf("telemetry: congestion grid recorded no activity (%d updates, %d rebuilds)",
					tel.CongestBinUpdates, tel.CongestRebuilds)
			}
		})
	}
}

// TestCongestTrajectoryParallelEval re-runs the equivalence with the
// goodness evaluation fanned across 4 pool workers — the congestion
// CellScore reads (bin demand, peak) are shared read-only state, so the
// parallel chunks must reproduce the serial reference bitwise. The core
// package runs under -race in CI, which makes this the data-race gate
// for the grid's scorer hooks.
func TestCongestTrajectoryParallelEval(t *testing.T) {
	ckt, err := gen.Benchmark("s1196")
	if err != nil {
		t.Fatal(err)
	}
	const iters = 8
	mk := func(disable bool, workers int) *Engine {
		cfg := DefaultConfig(fuzzy.WirePowerCongest)
		cfg.MaxIters = iters
		cfg.Seed = 2006
		cfg.DisableIncremental = disable
		cfg.EvalWorkers = workers
		p, err := NewProblem(ckt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return p.NewEngine(0)
	}
	saveMin := evalMinCells
	evalMinCells = 1 // force the parallel path on the small circuit
	defer func() { evalMinCells = saveMin }()
	ref := mk(true, 0)
	par := mk(false, 4)
	for i := 0; i < iters; i++ {
		ref.Step()
		par.Step()
		if ref.Costs() != par.Costs() {
			t.Fatalf("iter %d: costs diverged: %+v vs %+v", i, ref.Costs(), par.Costs())
		}
		if ref.Mu() != par.Mu() {
			t.Fatalf("iter %d: μ diverged: %v vs %v", i, ref.Mu(), par.Mu())
		}
	}
}

// TestCongestTrajectory10k runs the incremental-vs-scratch equivalence
// on a generated 10k-cell circuit — the scale tier where the O(dirty)
// grid update, not the O(nets) rebuild, carries the run.
func TestCongestTrajectory10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-cell equivalence run skipped in -short mode")
	}
	ckt, err := gen.Generate(gen.ScaledParams("t10k", 10_000, 10))
	if err != nil {
		t.Fatal(err)
	}
	const iters = 2
	mk := func(disable bool) *Engine {
		cfg := DefaultConfig(fuzzy.WirePowerCongest)
		cfg.MaxIters = iters
		cfg.Seed = 2006
		cfg.DisableIncremental = disable
		p, err := NewProblem(ckt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return p.NewEngine(0)
	}
	ref := mk(true)
	inc := mk(false)
	for i := 0; i < iters; i++ {
		ref.Step()
		inc.Step()
		if ref.Costs() != inc.Costs() {
			t.Fatalf("iter %d: costs diverged: %+v vs %+v", i, ref.Costs(), inc.Costs())
		}
		if ref.Placement().Fingerprint() != inc.Placement().Fingerprint() {
			t.Fatalf("iter %d: placements diverged", i)
		}
	}
}
