package core

import (
	"context"
	"testing"

	"simevo/internal/fuzzy"
)

// TestRunContextCancel proves a cancelled context stops the run early and
// the best-so-far result is still returned.
func TestRunContextCancel(t *testing.T) {
	p := testProblem(t, fuzzy.WirePower, 200)
	eng := p.NewEngine(0)

	ctx, cancel := context.WithCancel(context.Background())
	const stopAfter = 3
	var calls int
	res := eng.RunContext(ctx, func(st IterStats) {
		if st.Iter != calls {
			t.Errorf("progress iter %d, want %d", st.Iter, calls)
		}
		calls++
		if calls == stopAfter {
			cancel()
		}
	})

	if calls != stopAfter {
		t.Fatalf("progress called %d times, want %d", calls, stopAfter)
	}
	if res.Iters != stopAfter {
		t.Fatalf("ran %d iterations after cancel, want %d", res.Iters, stopAfter)
	}
	if res.Best == nil || res.BestMu <= 0 {
		t.Fatalf("cancelled run lost the best-so-far result: %+v", res)
	}

	// The best-so-far must match a fresh engine stepped the same number of
	// times (identical seed, identical trajectory).
	ref := p.NewEngine(0)
	for i := 0; i < stopAfter; i++ {
		ref.Step()
	}
	ref.EvaluateCosts()
	if res.BestMu != ref.BestMu() {
		t.Fatalf("cancelled best μ %.6f, want %.6f", res.BestMu, ref.BestMu())
	}
}

// TestRunContextCompletes checks the context variant runs to the budget
// when never cancelled and reports progress every iteration.
func TestRunContextCompletes(t *testing.T) {
	p := testProblem(t, fuzzy.WirePower, 8)
	eng := p.NewEngine(0)
	var calls int
	res := eng.RunContext(context.Background(), func(IterStats) { calls++ })
	if res.Iters != 8 || calls != 8 {
		t.Fatalf("iters %d, progress calls %d, want 8 and 8", res.Iters, calls)
	}
}
