package core

import (
	"testing"

	"simevo/internal/fuzzy"
)

// TestIncrementalReproducesReferenceTrajectory asserts the tentpole
// invariant: a full run on the incremental net-cost engine follows
// bitwise the same trajectory as the from-scratch reference mode — same
// μ trace, same best solution, same best μ — for both estimator-relevant
// objective sets.
func TestIncrementalReproducesReferenceTrajectory(t *testing.T) {
	for _, obj := range []fuzzy.Objectives{fuzzy.WirePower, fuzzy.WirePowerDelay} {
		iters := 25
		if obj == fuzzy.WirePowerDelay {
			iters = 12
		}
		run := func(disable bool) *Result {
			p := testProblem(t, obj, iters)
			p.Cfg.DisableIncremental = disable
			// A short checksum interval exercises the rebuild path mid-run.
			p.Cfg.FullEvalEvery = 7
			return p.NewEngine(0).Run()
		}
		ref := run(true)
		inc := run(false)
		if ref.BestMu != inc.BestMu {
			t.Fatalf("obj %v: best μ diverged: reference %v, incremental %v", obj, ref.BestMu, inc.BestMu)
		}
		if ref.Best.Fingerprint() != inc.Best.Fingerprint() {
			t.Fatalf("obj %v: best placements diverged", obj)
		}
		if len(ref.MuTrace) != len(inc.MuTrace) {
			t.Fatalf("obj %v: trace lengths %d vs %d", obj, len(ref.MuTrace), len(inc.MuTrace))
		}
		for i := range ref.MuTrace {
			if ref.MuTrace[i] != inc.MuTrace[i] {
				t.Fatalf("obj %v: μ trace diverged at %d: %v vs %v",
					obj, i, ref.MuTrace[i], inc.MuTrace[i])
			}
		}
	}
}

// TestParallelAllocScanMatchesSerial asserts the bounded worker pool picks
// identical vacancies: with the fan-out forced on (tiny threshold, several
// workers) the trajectory must equal the serial scan's, bit for bit.
func TestParallelAllocScanMatchesSerial(t *testing.T) {
	oldMin := allocScanMinVacancies
	allocScanMinVacancies = 1
	defer func() { allocScanMinVacancies = oldMin }()

	run := func(workers int) *Result {
		p := testProblem(t, fuzzy.WirePower, 20)
		p.Cfg.AllocWorkers = workers
		return p.NewEngine(0).Run()
	}
	serial := run(-1) // negative: keep the scan serial
	par := run(4)
	if serial.BestMu != par.BestMu {
		t.Fatalf("parallel scan diverged: best μ %v vs %v", par.BestMu, serial.BestMu)
	}
	if serial.Best.Fingerprint() != par.Best.Fingerprint() {
		t.Fatal("parallel scan produced a different best placement")
	}
	for i := range serial.MuTrace {
		if serial.MuTrace[i] != par.MuTrace[i] {
			t.Fatalf("μ trace diverged at %d: %v vs %v", i, par.MuTrace[i], serial.MuTrace[i])
		}
	}
}

// TestMuTraceRingCap asserts the trace ring keeps the most recent
// evaluations in order, and that recording can be disabled entirely.
func TestMuTraceRingCap(t *testing.T) {
	full := testProblem(t, fuzzy.WirePower, 20)
	ef := full.NewEngine(0)
	rf := ef.Run()

	capped := testProblem(t, fuzzy.WirePower, 20)
	capped.Cfg.MuTraceCap = 5
	ec := capped.NewEngine(0)
	rc := ec.Run()

	if len(rc.MuTrace) != 5 {
		t.Fatalf("capped trace has %d entries, want 5", len(rc.MuTrace))
	}
	tail := rf.MuTrace[len(rf.MuTrace)-5:]
	for i := range tail {
		if rc.MuTrace[i] != tail[i] {
			t.Fatalf("ring entry %d = %v, want %v (tail of full trace)", i, rc.MuTrace[i], tail[i])
		}
	}

	off := testProblem(t, fuzzy.WirePower, 20)
	off.Cfg.DisableMuTrace = true
	ro := off.NewEngine(0).Run()
	if len(ro.MuTrace) != 0 {
		t.Fatalf("disabled trace recorded %d entries", len(ro.MuTrace))
	}
	if ro.BestMu != rf.BestMu {
		t.Fatalf("trace recording changed the trajectory: %v vs %v", ro.BestMu, rf.BestMu)
	}
}
