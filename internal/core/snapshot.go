package core

import (
	"simevo/internal/cost"
	"simevo/internal/fuzzy"
	"simevo/internal/layout"
)

// SearchSnapshot captures an engine's search position — slot assignment,
// committed net lengths, every objective's incremental state, μ, and the
// best-solution tracking — cheaply enough to take before a speculative
// solution adoption and restore on reject. It deliberately excludes the
// random stream and the iteration counter: speculated iterations consumed
// real budget and real entropy, so a rejected speculation resumes the
// search from the pre-adoption position but does not replay it.
type SearchSnapshot struct {
	slots   []layout.SlotRef   // per cell: slot at snapshot time
	place   *layout.Placement  // full clone, the restore fallback path
	objs    []cost.Snapshot    // per pipeline objective, in evaluation order
	lengths []float64          // committed per-net length estimates

	mu    float64
	costs fuzzy.Costs

	best      *layout.Placement // shared pointer: published bests are never mutated
	bestMu    float64
	bestCosts fuzzy.Costs
	bestIter  int

	noImprove  int
	evalsSince int
}

// SnapshotSearch captures the current search position. The engine must
// have evaluated at least once (so the objective pipeline state is
// consistent with the placement).
func (e *Engine) SnapshotSearch() *SearchSnapshot {
	if e.place.Dirty() {
		e.place.Recompute()
	}
	objs := e.pipe.Objectives()
	s := &SearchSnapshot{
		slots:      e.place.SnapshotSlots(nil),
		place:      e.place.Clone(),
		objs:       make([]cost.Snapshot, len(objs)),
		lengths:    append([]float64(nil), e.lengths...),
		mu:         e.mu,
		costs:      e.costs,
		best:       e.best,
		bestMu:     e.bestMu,
		bestCosts:  e.bestCosts,
		bestIter:   e.bestIter,
		noImprove:  e.noImprove,
		evalsSince: e.evalsSince,
	}
	for i, o := range objs {
		s.objs[i] = o.Snapshot()
	}
	return s
}

// RestoreSearch rewinds the engine to a snapshot taken on this engine. The
// placement is patched back through slot deltas (keeping the incremental
// net-cost mirror warm: the coordinate journal records exactly the moved
// cells, so the next evaluation re-estimates only those nets and folds
// values bitwise identical to the snapshot's into the restored objective
// trees) and every objective's state is restored instead of rebuilt —
// the O(snapshot) reject path that replaces the O(n) full rebuild.
func (e *Engine) RestoreSearch(s *SearchSnapshot) {
	restored := false
	if e.inc != nil && !e.incStale && e.inc.Built() {
		e.patchDeltas = e.place.DiffSlotsTo(s.slots, e.patchDeltas[:0])
		if err := e.PatchPlacement(e.patchDeltas); err == nil {
			restored = true
		}
	}
	if !restored {
		// Delta restore unavailable (reference mode, stale incremental
		// state, or mismatched row shapes): fall back to replacing the
		// placement wholesale. Clone so the snapshot stays restorable.
		e.place = s.place.Clone()
		e.place.Recompute()
		e.incStale = true
	}
	for i, o := range e.pipe.Objectives() {
		o.Restore(s.objs[i])
	}
	e.lengths = append(e.lengths[:0], s.lengths...)
	e.mu = s.mu
	e.costs = s.costs
	e.best = s.best
	e.bestMu = s.bestMu
	e.bestCosts = s.bestCosts
	e.bestIter = s.bestIter
	e.noImprove = s.noImprove
	e.evalsSince = s.evalsSince
	// Cached per-cell goodness refers to the speculated placement.
	e.invalidateAllGoodness()
}

// AdoptPlacementPatched replaces the current placement with p like
// AdoptPlacement, but through slot deltas when the incremental state is
// warm: only the differing cells move, the coordinate journal records
// them, and the next evaluation is O(moved nets) instead of a full
// rebuild. Falls back to AdoptPlacement when the engine has no warm
// incremental mirror or the delta application fails (e.g. row shapes
// differ, which cannot happen between placements of one run).
func (e *Engine) AdoptPlacementPatched(p *layout.Placement) {
	if e.inc == nil || e.incStale || !e.inc.Built() {
		e.AdoptPlacement(p)
		return
	}
	e.patchSlots = p.SnapshotSlots(e.patchSlots)
	e.patchDeltas = e.place.DiffSlotsTo(e.patchSlots, e.patchDeltas[:0])
	if err := e.PatchPlacement(e.patchDeltas); err != nil {
		e.AdoptPlacement(p)
	}
}
