package core

import (
	"fmt"
	"time"

	"simevo/internal/fuzzy"
	"simevo/internal/layout"
	"simevo/internal/telemetry"
)

// Profile accumulates time spent in each SimE operator. The paper's
// Section 4 reports the shares for its serial implementation (allocation
// ~98%); cmd/simevo-profile regenerates that experiment.
type Profile struct {
	Eval   time.Duration // cost + goodness evaluation
	Select time.Duration
	Alloc  time.Duration
}

// Total returns the summed operator time.
func (p Profile) Total() time.Duration { return p.Eval + p.Select + p.Alloc }

// Shares returns the fraction of total time per operator.
func (p Profile) Shares() (eval, sel, alloc float64) {
	t := p.Total()
	if t == 0 {
		return 0, 0, 0
	}
	return float64(p.Eval) / float64(t),
		float64(p.Select) / float64(t),
		float64(p.Alloc) / float64(t)
}

// String renders the profile like the paper's Section 4 summary.
func (p Profile) String() string {
	e, s, a := p.Shares()
	return fmt.Sprintf("alloc %.1f%%, eval %.1f%%, select %.1f%% (total %v)",
		a*100, e*100, s*100, p.Total().Round(time.Millisecond))
}

// IterStats reports one iteration's outcome.
type IterStats struct {
	Iter     int
	Mu       float64     // μ(s) of the current solution
	Costs    fuzzy.Costs // raw objective costs
	Selected int         // |S| in this iteration
	AvgGood  float64     // mean goodness over the evaluated domain
	WidthOK  bool
}

// Progress receives per-iteration statistics while a run is executing.
// Callbacks are invoked synchronously from the running engine — for the
// parallel strategies that means from a cluster rank goroutine — so
// implementations must be fast and safe for concurrent use, and must not
// call back into the engine. The metaheuristics reuse the type, filling
// only Iter (moves / generations / iterations) and the best-μ fields.
type Progress func(IterStats)

// Result summarizes a Run.
type Result struct {
	Best      *layout.Placement
	BestMu    float64
	BestCosts fuzzy.Costs
	BestIter  int // iteration at which the best was found
	Iters     int // iterations executed
	Profile   Profile
	MuTrace   []float64 // μ(s) after every iteration

	// Telemetry is the run's counter snapshot — the same numbers the
	// process-wide /metrics endpoint aggregates, scoped to this engine.
	Telemetry telemetry.EngineSnapshot
}
