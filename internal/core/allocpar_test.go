package core

import (
	"testing"

	"simevo/internal/fuzzy"
	"simevo/internal/gen"
)

// TestParallelWpdAllocMatchesReferenceAllCircuits is the tentpole
// equivalence test for the sharded allocation scan: on every bundled
// benchmark circuit, a wpd run with every fan-out forced on — chunked
// vacancy scans (AllocWorkers), parallel goodness evaluation
// (EvalWorkers), and the parallel dirty-net flush — must track the
// serial DisableIncremental reference bitwise, step by step. The test is
// meaningful under -race (CI runs it so): the chunked scan shares the
// trial set's lazily-filled per-row memos across workers, which is only
// sound because the row partition makes the fills disjoint.
func TestParallelWpdAllocMatchesReferenceAllCircuits(t *testing.T) {
	oldScan, oldFlush, oldEval := allocScanMinVacancies, flushMinDirtyNets, evalMinCells
	allocScanMinVacancies, flushMinDirtyNets, evalMinCells = 1, 1, 1
	defer func() {
		allocScanMinVacancies, flushMinDirtyNets, evalMinCells = oldScan, oldFlush, oldEval
	}()

	for _, name := range gen.Catalog() {
		name := name
		t.Run(name, func(t *testing.T) {
			ckt, err := gen.Benchmark(name)
			if err != nil {
				t.Fatal(err)
			}
			iters := 6
			if name == "s3330" {
				iters = 3 // the big circuit dominates the -race budget
			}
			mk := func(disable bool) *Engine {
				cfg := DefaultConfig(fuzzy.WirePowerDelay)
				cfg.MaxIters = iters
				cfg.Seed = 2006
				cfg.DisableIncremental = disable
				if !disable {
					cfg.AllocWorkers = 4
					cfg.EvalWorkers = 4
				}
				p, err := NewProblem(ckt, cfg)
				if err != nil {
					t.Fatal(err)
				}
				return p.NewEngine(0)
			}
			ref := mk(true)
			par := mk(false)
			for i := 0; i < iters; i++ {
				ref.Step()
				par.Step()
				if ref.Costs() != par.Costs() {
					t.Fatalf("iter %d: costs diverged:\n reference %+v\n parallel  %+v",
						i, ref.Costs(), par.Costs())
				}
				if ref.Mu() != par.Mu() {
					t.Fatalf("iter %d: μ diverged: %v vs %v", i, ref.Mu(), par.Mu())
				}
				if ref.Placement().Fingerprint() != par.Placement().Fingerprint() {
					t.Fatalf("iter %d: placements diverged", i)
				}
			}
		})
	}
}
