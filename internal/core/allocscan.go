package core

import (
	"runtime"

	"simevo/internal/wire"
)

// Parallel vacancy scanning for the allocation operator, running on the
// engine's shared worker pool (pool.go).
//
// For one selected cell, the trials against all free vacancies are
// independent: the row buckets are partitioned into contiguous row ranges
// and each range is scored through its own read-only wire.View (trial
// scoring never mutates the incremental state; the View carries the only
// scratch). The reduction reproduces the serial tie-breaking — the
// lowest-index vacancy with the strictly smallest score wins — so parallel
// and serial scans pick identical slots and the search trajectory is
// unchanged.

// allocScanMinVacancies is the free-vacancy count below which a cell's scan
// is not worth the per-cell synchronization. Re-measured for the bucketed
// row scan (BenchmarkAllocScanBreakEven sweeps the thresholds on a given
// host): the sharded scan skips dominated regions wholesale, so the serial
// scan does far less work per vacancy than the flat walk the previous
// floor of 160 was tuned for, and the per-cell Batch synchronization
// amortizes later — the floor moves up to 256. Variable so tests can force
// the parallel path on small circuits.
var allocScanMinVacancies = 256

// flushMinDirtyNets is the dirty-net batch size below which the committed-
// length flush stays serial: per-net re-estimation is cheap (most nets take
// the bbox fast path), so small batches lose more to the Batch barrier than
// the fan-out wins. Variable so tests can force the parallel flush on small
// circuits.
var flushMinDirtyNets = 256

type scanResult struct {
	idx   int
	score float64
}

// evalTally counts goodness-cache outcomes for one pool slot; folded by
// flushEvalTallies after each parallel batch.
type evalTally struct {
	hits, misses uint64
}

// scanWorkers resolves the configured alloc-scan fan-out (0 = auto).
func (e *Engine) scanWorkers() int {
	w := e.prob.Cfg.AllocWorkers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
		if w > 8 {
			w = 8
		}
	}
	return w
}

// evalWorkers resolves the configured goodness-evaluation fan-out.
// Unlike AllocWorkers, 0 keeps evaluation serial: the serial path is the
// reference mode the trajectory invariants are stated against, and the
// parallel path must match it bitwise (tested) before anyone opts in.
func (e *Engine) evalWorkers() int {
	if w := e.prob.Cfg.EvalWorkers; w > 1 {
		return w
	}
	return 1
}

// ensurePool returns the engine's shared worker pool, created on first use
// with room for the wider of the two parallel phases.
func (e *Engine) ensurePool() *Pool {
	if e.pool == nil {
		size := e.scanWorkers()
		if w := e.evalWorkers(); w > size {
			size = w
		}
		e.pool = NewPool(size)
		e.slotViews = make([]*wire.View, e.pool.Size())
		e.slotGoods = make([][]float64, e.pool.Size())
		e.slotScan = make([]wire.ScanStats, e.pool.Size())
		e.slotEval = make([]evalTally, e.pool.Size())
	}
	return e.pool
}

// slotView returns the per-slot read-only evaluator view, created lazily.
// Slot-keyed state needs no locking: a batch assigns each slot to exactly
// one worker, and batches are serialized by the blocking Batch call.
func (e *Engine) slotView(slot int) *wire.View {
	if e.slotViews[slot] == nil {
		e.slotViews[slot] = e.inc.View()
	}
	return e.slotViews[slot]
}

// scanCell scores every free, width-feasible vacancy for the cell prepared
// by prepTrial (feasibility via the engine's per-cell rowOK table) across
// the worker pool — each worker scans a contiguous range of the row
// buckets — and returns the serial winner: the lowest-index vacancy among
// those with the strictly smallest score. rows is the bucket row count.
func (e *Engine) scanCell(workers, rows int, bound0 float64) (int, float64) {
	pool := e.ensurePool()
	// The pool (and the slot-keyed state) is sized once; if GOMAXPROCS
	// grows mid-process the auto worker count can exceed it, and Batch
	// would clamp the chunk count — the reduction below must read exactly
	// the slots that ran.
	if workers > pool.Size() {
		workers = pool.Size()
	}
	if cap(e.scanRes) < workers {
		e.scanRes = make([]scanResult, workers)
	}
	e.scanRes = e.scanRes[:workers]
	e.scanBound0 = bound0
	pool.Batch(e.runCtx, workers, rows, e.allocKern)

	// Each chunk reports its own lowest-index strict minimum, but the row
	// partition does not order vacancy indices across chunks, so the
	// reduction breaks score ties on the index explicitly — reproducing
	// the serial scan's first-minimum winner exactly.
	best, bestScore := -1, 0.0
	for _, r := range e.scanRes {
		if r.idx < 0 {
			continue
		}
		if best < 0 || r.score < bestScore || (r.score == bestScore && r.idx < best) {
			best, bestScore = r.idx, r.score
		}
	}
	return best, bestScore
}

// scanChunk is the alloc-scan kernel body for one row range of the buckets.
func (e *Engine) scanChunk(slot, lo, hi int) {
	best, score := e.trials.ScanBestRows(e.slotView(slot), e.vacs, &e.buckets,
		e.rowOK, lo, hi, e.scanBound0, &e.slotScan[slot])
	e.scanRes[slot] = scanResult{idx: best, score: score}
}

// flushChunk is the dirty-net flush kernel: re-estimate one contiguous
// range of the incremental state's dirty list through this slot's view
// (per-worker evaluator scratch for the nets that need a full collection).
func (e *Engine) flushChunk(slot, lo, hi int) {
	e.inc.FlushChunk(e.slotView(slot), lo, hi)
}
