package core

import (
	"runtime"
	"sync"

	"simevo/internal/wire"
)

// Parallel vacancy scanning for the allocation operator.
//
// For one selected cell, the trials against all free vacancies are
// independent: each worker scores a contiguous chunk of the vacancy pool
// through its own read-only wire.View (trial scoring never mutates the
// incremental state; the View carries the only scratch). The reduction
// reproduces the serial tie-breaking — the first vacancy with the strictly
// smallest score wins — so parallel and serial scans pick identical slots
// and the search trajectory is unchanged.
//
// The pool lives for one allocate call: workers are spawned when the
// vacancy pool is large enough to amortize the per-cell synchronization
// and exit when the scan channel closes.

// allocScanMinVacancies is the vacancy-pool size below which the fan-out
// is not worth the per-cell synchronization. Variable so tests can force
// the parallel path on small circuits.
var allocScanMinVacancies = 512

type allocScan struct {
	e       *Engine
	workers int
	jobs    chan scanJob
	wg      sync.WaitGroup
	res     []scanResult
	bound0  float64 // per-cell seed bound, written before jobs are posted
}

type scanJob struct{ slot, lo, hi int }

type scanResult struct {
	idx   int
	score float64
}

// startScan spins up the bounded worker pool for this allocation, or
// returns nil when the scan should stay serial.
func (e *Engine) startScan(n int, useInc bool) *allocScan {
	if !useInc || n < allocScanMinVacancies {
		return nil
	}
	w := e.prob.Cfg.AllocWorkers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
		if w > 8 {
			w = 8
		}
	}
	if w <= 1 {
		return nil
	}
	s := &allocScan{
		e:       e,
		workers: w,
		jobs:    make(chan scanJob, w),
		res:     make([]scanResult, w),
	}
	for i := 0; i < w; i++ {
		go s.worker(e.inc.View())
	}
	return s
}

// stop winds the pool down.
func (s *allocScan) stop() { close(s.jobs) }

func (s *allocScan) worker(view *wire.View) {
	for j := range s.jobs {
		s.res[j.slot] = s.scanChunk(view, j.lo, j.hi)
		s.wg.Done()
	}
}

// scanCell scores every free, width-feasible vacancy for the cell prepared
// by prepTrial (feasibility via the engine's per-cell rowOK table) and
// returns the serial winner: the lowest-index vacancy among those with the
// strictly smallest score.
func (s *allocScan) scanCell(n int, bound0 float64) (int, float64) {
	s.bound0 = bound0
	s.wg.Add(s.workers)
	for i := 0; i < s.workers; i++ {
		s.jobs <- scanJob{slot: i, lo: i * n / s.workers, hi: (i + 1) * n / s.workers}
	}
	s.wg.Wait()

	// Chunks are index-ordered, so keeping the first strict minimum across
	// them reproduces the serial scan's winner exactly.
	best, bestScore := -1, 0.0
	for i := 0; i < s.workers; i++ {
		r := s.res[i]
		if r.idx < 0 {
			continue
		}
		if best < 0 || r.score < bestScore {
			best, bestScore = r.idx, r.score
		}
	}
	return best, bestScore
}

func (s *allocScan) scanChunk(view *wire.View, lo, hi int) scanResult {
	e := s.e
	best, bound := e.trials.ScanBest(view, e.vacs, e.freeVac,
		e.rowOK, lo, hi, s.bound0)
	return scanResult{idx: best, score: bound}
}
