package core

import (
	"runtime"
	"sync"
	"time"

	"simevo/internal/wire"
)

// Parallel vacancy scanning for the allocation operator.
//
// For one selected cell, the trials against all free vacancies are
// independent: each worker scores a contiguous chunk of the vacancy pool
// through its own read-only wire.View (trial scoring never mutates the
// incremental state; the View carries the only scratch). The reduction
// reproduces the serial tie-breaking — the first vacancy with the strictly
// smallest score wins — so parallel and serial scans pick identical slots
// and the search trajectory is unchanged.
//
// The pool is engine-lifetime: workers spawn lazily on the first eligible
// allocation, park on the job channel between cells and between iterations,
// and retire themselves after an idle period (so dropped engines leak
// nothing past it). Reusing the pool across iterations removes the
// per-allocate spawn cost that used to set the fan-out break-even; what
// remains per cell is one channel send per worker.

// allocScanMinVacancies is the free-vacancy count below which a cell's scan
// is not worth the per-cell synchronization. With the persistent pool the
// break-even sits far below the former spawn-per-allocate threshold of 512
// (see BenchmarkAllocScanBreakEven). Variable so tests can force the
// parallel path on small circuits.
var allocScanMinVacancies = 160

// allocScanIdle is how long a parked worker outlives its last job. Long
// enough to bridge the evaluation+selection phases between allocations,
// short enough to bound goroutine leakage from abandoned engines.
const allocScanIdle = 2 * time.Second

type allocScan struct {
	e       *Engine
	workers int // target pool size
	jobs    chan scanJob
	wg      sync.WaitGroup
	res     []scanResult
	bound0  float64 // per-cell seed bound, written before jobs are posted

	mu      sync.Mutex
	alive   int       // workers currently running
	lastUse time.Time // last ensure() under mu; staleness gates retirement
}

type scanJob struct{ slot, lo, hi int }

type scanResult struct {
	idx   int
	score float64
}

// scanWorkers resolves the configured pool size (0 = auto).
func (e *Engine) scanWorkers() int {
	w := e.prob.Cfg.AllocWorkers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
		if w > 8 {
			w = 8
		}
	}
	return w
}

// startScan returns the engine's persistent scan pool when this allocation
// is large enough to use it, or nil to keep the scan serial. Cheap: the
// pool is created once and workers are (re)spawned inside scanCell.
func (e *Engine) startScan(n int, useInc bool) *allocScan {
	if !useInc || n < allocScanMinVacancies {
		return nil
	}
	w := e.scanWorkers()
	if w <= 1 {
		return nil
	}
	if e.scan == nil {
		e.scan = &allocScan{
			e:       e,
			workers: w,
			jobs:    make(chan scanJob, w),
			res:     make([]scanResult, w),
		}
	}
	return e.scan
}

// ensure tops the pool back up to its target size and stamps it in-use.
// Holding mu for both linearizes against worker retirement: a worker that
// observed a stale stamp has already decremented alive (and will drain the
// channel once more before exiting), so jobs posted after ensure always
// have a live consumer.
func (s *allocScan) ensure() {
	s.mu.Lock()
	s.lastUse = time.Now()
	for s.alive < s.workers {
		s.alive++
		go s.worker(s.e.inc.View())
	}
	s.mu.Unlock()
}

func (s *allocScan) worker(view *wire.View) {
	timer := time.NewTimer(allocScanIdle)
	defer timer.Stop()
	for {
		select {
		case j := <-s.jobs:
			s.res[j.slot] = s.scanChunk(view, j.lo, j.hi)
			s.wg.Done()
		case <-timer.C:
			s.mu.Lock()
			if time.Since(s.lastUse) < allocScanIdle {
				s.mu.Unlock()
				timer.Reset(allocScanIdle)
				continue
			}
			s.alive--
			s.mu.Unlock()
			// Retired under mu; catch any job that raced the decision.
			for {
				select {
				case j := <-s.jobs:
					s.res[j.slot] = s.scanChunk(view, j.lo, j.hi)
					s.wg.Done()
				default:
					return
				}
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(allocScanIdle)
	}
}

// scanCell scores every free, width-feasible vacancy for the cell prepared
// by prepTrial (feasibility via the engine's per-cell rowOK table) and
// returns the serial winner: the lowest-index vacancy among those with the
// strictly smallest score.
func (s *allocScan) scanCell(n int, bound0 float64) (int, float64) {
	s.ensure()
	s.bound0 = bound0
	s.wg.Add(s.workers)
	for i := 0; i < s.workers; i++ {
		s.jobs <- scanJob{slot: i, lo: i * n / s.workers, hi: (i + 1) * n / s.workers}
	}
	s.wg.Wait()

	// Chunks are index-ordered, so keeping the first strict minimum across
	// them reproduces the serial scan's winner exactly.
	best, bestScore := -1, 0.0
	for i := 0; i < s.workers; i++ {
		r := s.res[i]
		if r.idx < 0 {
			continue
		}
		if best < 0 || r.score < bestScore {
			best, bestScore = r.idx, r.score
		}
	}
	return best, bestScore
}

func (s *allocScan) scanChunk(view *wire.View, lo, hi int) scanResult {
	e := s.e
	best, bound := e.trials.ScanBest(view, e.vacs, e.freeVac,
		e.rowOK, lo, hi, s.bound0)
	return scanResult{idx: best, score: bound}
}
