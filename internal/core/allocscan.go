package core

import (
	"runtime"

	"simevo/internal/wire"
)

// Parallel vacancy scanning for the allocation operator, running on the
// engine's shared worker pool (pool.go).
//
// For one selected cell, the trials against all free vacancies are
// independent: each chunk of the vacancy pool is scored through its own
// read-only wire.View (trial scoring never mutates the incremental state;
// the View carries the only scratch). The reduction reproduces the serial
// tie-breaking — the first vacancy with the strictly smallest score wins —
// so parallel and serial scans pick identical slots and the search
// trajectory is unchanged.

// allocScanMinVacancies is the free-vacancy count below which a cell's scan
// is not worth the per-cell synchronization. With the persistent pool the
// break-even sits far below the former spawn-per-allocate threshold of 512
// (see BenchmarkAllocScanBreakEven). Variable so tests can force the
// parallel path on small circuits.
var allocScanMinVacancies = 160

type scanResult struct {
	idx   int
	score float64
}

// evalTally counts goodness-cache outcomes for one pool slot; folded by
// flushEvalTallies after each parallel batch.
type evalTally struct {
	hits, misses uint64
}

// scanWorkers resolves the configured alloc-scan fan-out (0 = auto).
func (e *Engine) scanWorkers() int {
	w := e.prob.Cfg.AllocWorkers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
		if w > 8 {
			w = 8
		}
	}
	return w
}

// evalWorkers resolves the configured goodness-evaluation fan-out.
// Unlike AllocWorkers, 0 keeps evaluation serial: the serial path is the
// reference mode the trajectory invariants are stated against, and the
// parallel path must match it bitwise (tested) before anyone opts in.
func (e *Engine) evalWorkers() int {
	if w := e.prob.Cfg.EvalWorkers; w > 1 {
		return w
	}
	return 1
}

// ensurePool returns the engine's shared worker pool, created on first use
// with room for the wider of the two parallel phases.
func (e *Engine) ensurePool() *Pool {
	if e.pool == nil {
		size := e.scanWorkers()
		if w := e.evalWorkers(); w > size {
			size = w
		}
		e.pool = NewPool(size)
		e.slotViews = make([]*wire.View, e.pool.Size())
		e.slotGoods = make([][]float64, e.pool.Size())
		e.slotScan = make([]wire.ScanStats, e.pool.Size())
		e.slotEval = make([]evalTally, e.pool.Size())
	}
	return e.pool
}

// slotView returns the per-slot read-only evaluator view, created lazily.
// Slot-keyed state needs no locking: a batch assigns each slot to exactly
// one worker, and batches are serialized by the blocking Batch call.
func (e *Engine) slotView(slot int) *wire.View {
	if e.slotViews[slot] == nil {
		e.slotViews[slot] = e.inc.View()
	}
	return e.slotViews[slot]
}

// scanCell scores every free, width-feasible vacancy for the cell prepared
// by prepTrial (feasibility via the engine's per-cell rowOK table) across
// the worker pool and returns the serial winner: the lowest-index vacancy
// among those with the strictly smallest score.
func (e *Engine) scanCell(workers, n int, bound0 float64) (int, float64) {
	pool := e.ensurePool()
	// The pool (and the slot-keyed state) is sized once; if GOMAXPROCS
	// grows mid-process the auto worker count can exceed it, and Batch
	// would clamp the chunk count — the reduction below must read exactly
	// the slots that ran.
	if workers > pool.Size() {
		workers = pool.Size()
	}
	if cap(e.scanRes) < workers {
		e.scanRes = make([]scanResult, workers)
	}
	e.scanRes = e.scanRes[:workers]
	e.scanBound0 = bound0
	pool.Batch(e.runCtx, workers, n, e.allocKern)

	// Chunks are index-ordered, so keeping the first strict minimum across
	// them reproduces the serial scan's winner exactly.
	best, bestScore := -1, 0.0
	for _, r := range e.scanRes {
		if r.idx < 0 {
			continue
		}
		if best < 0 || r.score < bestScore {
			best, bestScore = r.idx, r.score
		}
	}
	return best, bestScore
}

// scanChunk is the alloc-scan kernel body for one chunk of the free list.
func (e *Engine) scanChunk(slot, lo, hi int) {
	best, bound := e.trials.ScanBest(e.slotView(slot), e.vacs, e.freeVac,
		e.rowOK, lo, hi, e.scanBound0, &e.slotScan[slot])
	e.scanRes[slot] = scanResult{idx: best, score: bound}
}
