package core

import (
	"testing"

	"simevo/internal/fuzzy"
	"simevo/internal/gen"
)

// Micro-benchmarks for the allocation hot path. Each benchmark runs in
// Incremental (default) and Scratch (DisableIncremental) modes so the
// effect of the cached net-cost engine is directly visible; the baseline
// tool (cmd/simevo-bench -baseline) records the same comparison at
// BenchmarkProfileShare scale.

func benchProblem(b *testing.B, scratch bool) *Problem {
	b.Helper()
	ckt, err := gen.Generate(gen.Params{
		Name: "core-bench", Gates: 500, DFFs: 30, PIs: 14, POs: 14, Depth: 12, Seed: 2006,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(fuzzy.WirePower)
	cfg.MaxIters = 1 << 30
	cfg.Seed = 2006
	cfg.DisableIncremental = scratch
	p, err := NewProblem(ckt, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkTrialCost measures scoring one (cell, vacancy) trial — the
// innermost allocation operation, executed O(|S|²) times per iteration.
func BenchmarkTrialCost(b *testing.B) {
	for _, mode := range []struct {
		name    string
		scratch bool
	}{{"Incremental", false}, {"Scratch", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p := benchProblem(b, mode.scratch)
			e := p.NewEngine(0)
			e.EvaluateCosts()
			id := p.Ckt.Movable()[len(p.Ckt.Movable())/2]
			useInc := !mode.scratch && e.inc != nil && e.inc.Built()
			e.prepTrial(id, useInc)
			b.ResetTimer()
			sink := 0.0
			for i := 0; i < b.N; i++ {
				x := float64(i%64) + 0.5
				if useInc {
					sink += e.trials.Score(e.inc.BaseView(), x, 7.5, -1)
				} else {
					sink += e.trialCost(id, x, 7.5)
				}
			}
			_ = sink
		})
	}
}

// BenchmarkAllocate measures complete SimE iterations and reports the
// allocation phase separately (alloc-ns/op), the quantity the paper's
// Section 4 profile is about.
func BenchmarkAllocate(b *testing.B) {
	for _, mode := range []struct {
		name    string
		scratch bool
	}{{"Incremental", false}, {"Scratch", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p := benchProblem(b, mode.scratch)
			e := p.NewEngine(0)
			e.Step() // warm scratch buffers and caches
			start := e.Profile()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
			b.StopTimer()
			d := e.Profile().Alloc - start.Alloc
			b.ReportMetric(float64(d.Nanoseconds())/float64(b.N), "alloc-ns/op")
		})
	}
}

// BenchmarkAllocScanBreakEven sweeps the parallel-scan threshold so the
// break-even of the persistent worker pool is directly measurable: Serial
// disables the fan-out entirely; the numeric variants engage it for cells
// with at least that many free vacancies. The shipped default of
// allocScanMinVacancies (256, re-tuned for the bucketed row scan — see
// its doc) is chosen from this sweep on a multi-core host; on a
// single-CPU host scanWorkers() is 1 and every variant collapses to the
// identical serial path, so the sweep only measures noise there.
func BenchmarkAllocScanBreakEven(b *testing.B) {
	thresholds := []struct {
		name string
		min  int
	}{
		{"Serial", 1 << 30},
		{"Min512", 512},
		{"Min256", 256},
		{"Min160", 160},
		{"Min96", 96},
	}
	for _, th := range thresholds {
		b.Run(th.name, func(b *testing.B) {
			old := allocScanMinVacancies
			allocScanMinVacancies = th.min
			defer func() { allocScanMinVacancies = old }()
			p := benchProblem(b, false)
			e := p.NewEngine(0)
			e.Step()
			start := e.Profile()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
			b.StopTimer()
			d := e.Profile().Alloc - start.Alloc
			b.ReportMetric(float64(d.Nanoseconds())/float64(b.N), "alloc-ns/op")
		})
	}
}
