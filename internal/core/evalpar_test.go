package core

import (
	"context"
	"runtime"
	"testing"
	"time"

	"simevo/internal/fuzzy"
	"simevo/internal/gen"
)

// TestParallelEvalMatchesReferenceAllCircuits asserts the tentpole
// invariant of the parallel goodness evaluation on every bundled
// benchmark: the incremental engine with EvalWorkers > 1 (fan-out forced
// down to a single cell) follows bitwise the trajectory of the serial
// from-scratch reference mode.
func TestParallelEvalMatchesReferenceAllCircuits(t *testing.T) {
	oldMin := evalMinCells
	evalMinCells = 1
	defer func() { evalMinCells = oldMin }()

	for _, name := range gen.Catalog() {
		ckt, err := gen.Benchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		run := func(scratch bool, evalWorkers int) *Result {
			cfg := DefaultConfig(fuzzy.WirePower)
			cfg.MaxIters = 6
			cfg.Seed = 99
			cfg.DisableIncremental = scratch
			cfg.EvalWorkers = evalWorkers
			p, err := NewProblem(ckt, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return p.NewEngine(0).Run()
		}
		ref := run(true, 0)
		par := run(false, 4)
		if ref.BestMu != par.BestMu {
			t.Fatalf("%s: best μ diverged: reference %v, parallel eval %v", name, ref.BestMu, par.BestMu)
		}
		if ref.Best.Fingerprint() != par.Best.Fingerprint() {
			t.Fatalf("%s: best placements diverged", name)
		}
		for i := range ref.MuTrace {
			if ref.MuTrace[i] != par.MuTrace[i] {
				t.Fatalf("%s: μ trace diverged at %d: %v vs %v", name, i, ref.MuTrace[i], par.MuTrace[i])
			}
		}
	}
}

// TestGoodnessCacheMatchesReference pins the dirty-cell goodness cache by
// itself (serial evaluation, incremental mode, frequent rebuild checksum)
// against the reference mode that recomputes every cell every iteration.
func TestGoodnessCacheMatchesReference(t *testing.T) {
	run := func(scratch bool) *Result {
		p := testProblem(t, fuzzy.WirePower, 30)
		p.Cfg.DisableIncremental = scratch
		p.Cfg.FullEvalEvery = 11
		return p.NewEngine(0).Run()
	}
	ref := run(true)
	inc := run(false)
	if ref.BestMu != inc.BestMu || ref.Best.Fingerprint() != inc.Best.Fingerprint() {
		t.Fatalf("goodness cache diverged: best μ %v vs %v", ref.BestMu, inc.BestMu)
	}
}

// TestPoolRetiresOnContextCancel asserts the leak fix: an engine abandoned
// mid-run retires its pool workers as soon as the run context is
// cancelled, well before the idle timer would reap them.
func TestPoolRetiresOnContextCancel(t *testing.T) {
	oldMin := allocScanMinVacancies
	allocScanMinVacancies = 1
	defer func() { allocScanMinVacancies = oldMin }()

	p := testProblem(t, fuzzy.WirePower, 1<<30)
	p.Cfg.AllocWorkers = 4
	p.Cfg.EvalWorkers = 4
	eng := p.NewEngine(0)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		eng.RunContext(ctx, nil)
		close(done)
	}()

	// Let the run spin the pool up, then abandon it.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() <= before+1 {
		if time.Now().After(deadline) {
			t.Fatal("pool workers never spawned")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done

	// Workers must exit on the cancelled context — the 2s idle timer must
	// not be what reaps them, so require quiescence well under it.
	deadline = time.Now().Add(1 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutines still alive 1s after cancel (started with %d)",
				runtime.NumGoroutine(), before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
