package core

import (
	"simevo/internal/congest"
	"simevo/internal/cost"
	"simevo/internal/fuzzy"
	"simevo/internal/layout"
	"simevo/internal/netlist"
	"simevo/internal/rng"
	"simevo/internal/wire"
)

// refStream is the RNG stream of the canonical initial placement. The
// serial engine (and the master rank of every parallel strategy) uses the
// same stream, so all strategies are normalized against — and start from —
// the same solution, exactly as the paper's runs do ("All runs were
// performed using the same starting solution").
const refStream = 0

// referenceCosts evaluates the objective costs of the canonical initial
// placement through the same cost pipeline the engines run, so the μ
// normalization and the per-iteration costs share one canonical
// definition of every objective. μ(s) memberships are then expressed as
// improvement over this reference: the per-objective lower bound is
// Ref_j / Goal_j, so membership is 0 at the initial cost and reaches 1
// when the cost has improved by the goal factor. This keeps μ comparable
// across serial and parallel runs (the paper reports parallel quality as
// a percentage of serial μ) and puts converged solutions in the 0.5-0.8
// band the paper's tables show. The levelization and activity tables are
// the problem's cached ones — they are placement-independent.
func referenceCosts(ckt *netlist.Circuit, cfg *Config, lv *netlist.Levels, acts []float64) fuzzy.Costs {
	rnd := rng.NewStream(cfg.Seed, refStream)
	place := initialPlacement(ckt, cfg, rnd)
	ev := wire.NewEvaluator(ckt, cfg.WireEstimator)
	lengths := ev.Lengths(place, nil)

	// Wire and power reference costs are always needed (they normalize
	// the always-reported raw costs); delay and congestion only when
	// active. The congestion grid here uses the same static geometry the
	// engines build (congestSpec), sourced from the reference placement.
	var extras []cost.Objective
	if cfg.Objectives.Has(fuzzy.Congest) {
		extras = append(extras, congest.New(ckt, congestSpec(ckt, cfg), congest.PlacementSource{P: place}))
	}
	pipe := cost.NewPipeline(cfg.Objectives|fuzzy.WirePower, ckt, acts, lv, cfg.TimingModel, extras...)
	return pipe.Full(lengths)
}

// initialPlacement builds a run's starting placement: uniform-random by
// default, connectivity-clustered with Config.ClusteredStart. Every
// consumer of the canonical start (reference costs, NewEngine,
// EngineFromReference) routes through here so the normalization and the
// searches always agree on the construction.
func initialPlacement(ckt *netlist.Circuit, cfg *Config, rnd *rng.R) *layout.Placement {
	if cfg.ClusteredStart {
		return layout.NewClustered(ckt, cfg.NumRows, rnd)
	}
	return layout.NewRandom(ckt, cfg.NumRows, rnd)
}

// congestSpec derives the congestion grid geometry for a run: the same
// row count the placements use and the configured bin-column count. A
// static function of circuit and config, so the reference evaluation and
// every engine of the run share one grid frame.
func congestSpec(ckt *netlist.Circuit, cfg *Config) congest.Spec {
	rows := cfg.NumRows
	if rows <= 0 {
		rows = layout.DefaultNumRows(ckt)
	}
	return congest.SpecFor(ckt, rows, cfg.CongestBins)
}

// lowerBoundsFromReference converts reference costs into the normalization
// bounds used by fuzzy.Ratio.
func lowerBoundsFromReference(ref fuzzy.Costs, goals fuzzy.Goals) fuzzy.Costs {
	div := func(c, g float64) float64 {
		if g <= 1 {
			return c
		}
		return c / g
	}
	return fuzzy.Costs{
		Wire:    div(ref.Wire, goals.Wire.Goal),
		Power:   div(ref.Power, goals.Power.Goal),
		Delay:   div(ref.Delay, goals.Delay.Goal),
		Congest: div(ref.Congest, goals.Congest.Goal),
	}
}
